# Developer entry points. Everything is stdlib Go; no tool dependencies.

GO ?= go

.PHONY: all build vet test race check cover bench quick full taxonomy examples serve-smoke clean

all: build vet test

# The full pre-commit gate: compile, static checks, tests, race detector,
# and the carbond crash-recovery smoke test.
check: build vet test race serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

cover:
	$(GO) test -cover ./...

# One benchmark per paper table/figure plus ablations and hot paths.
bench:
	$(GO) test -bench=. -benchmem ./...

# Laptop-scale reproduction of every table and figure (see EXPERIMENTS.md).
quick:
	$(GO) run carbon/cmd/blbench -all -csv results -svg results

# The paper-faithful protocol: 30 runs x 50k evaluations per level.
full:
	$(GO) run carbon/cmd/blbench -all -full -csv results-full -svg results-full

# Race the five bi-level architectures under equal budgets.
taxonomy:
	$(GO) run carbon/cmd/blbench -taxonomy

# End-to-end crash recovery gate: builds carbond, submits a job, SIGKILLs
# the server mid-run, restarts, and asserts the resumed job finishes with
# the exact bits of an uninterrupted run (then the same for SIGTERM drain).
serve-smoke:
	$(GO) run carbon/cmd/servesmoke

examples:
	$(GO) run carbon/examples/quickstart
	$(GO) run carbon/examples/linearbilevel
	$(GO) run carbon/examples/hyperheuristic
	$(GO) run carbon/examples/cloudpricing
	$(GO) run carbon/examples/multicustomer
	$(GO) run carbon/examples/trilevel
	$(GO) run carbon/examples/packing

clean:
	rm -rf results results-full test_output.txt bench_output.txt
