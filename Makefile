# Developer entry points. Everything is stdlib Go; no tool dependencies.

GO ?= go

.PHONY: all build vet lint test race check cover bench bench-preflight bench-diff bench-smoke bench-all quick full taxonomy examples serve-smoke stat-smoke chaos-smoke trace-smoke fleet-smoke obs-smoke clean

all: build vet test

# The full pre-commit gate: compile, static checks, lint, tests, race
# detector, a one-iteration pass over the hot-path benchmarks (so they
# cannot rot), the committed-capture regression diff, the carbond
# crash-recovery smoke test, the carbonstat
# analyzer self-check, the fault-injection chaos gate, the span tracing
# gate, the cluster router gate, and the observability-plane gate.
check: build vet lint test race bench-smoke bench-diff serve-smoke stat-smoke chaos-smoke trace-smoke fleet-smoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static hygiene beyond vet: gofmt cleanliness everywhere, plus
# staticcheck when it happens to be installed (never required — the
# repo stays stdlib-only).
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

cover:
	$(GO) test -cover ./...

# Hot-path benchmarks (evaluator cache + engine generations), captured
# as machine-readable JSON. BENCH_pr3.json is committed so speedups are
# reviewable: compare ns/op of EvalTreeResolve vs EvalTreeCached, and
# lp_solves/gen of EngineStep against L*S+U for the config.
# BENCH_pr4.json adds StepWithSearchStats: an observed generation
# (search-dynamics stats + lineage on) must stay within 5% of EngineStep.
# BENCH_pr6.json adds StepWithSpans: a span-traced generation must stay
# within 2% of EngineStep. BENCH_pr7.json adds RouteSubmit: the fleet
# router's own per-submission overhead (admit, route, spool, proxy) —
# microseconds against jobs that run for seconds. BENCH_pr8.json adds
# EvalProgram500x30 (compiled bytecode hot path, 0 allocs/op — compare
# against EvalTree500x30 and EvalTreeWith500x30). BENCH_pr9.json adds
# StepWithSubscribers: a generation with the live-event ring and four
# SSE-style subscribers attached must stay within 2% of EngineStep.
# BENCH_pr10.json adds EngineStepSurrogate: the surrogate-assisted
# engine on the same config as EngineStep — its lp_solves/gen metric
# must come in below EngineStep's (the whole point of the skip policy);
# it rides the same pinned -benchtime=150x core line because the
# 'EngineStep' pattern already matches it. Compare captures with
# `make bench-diff`.
#
# The engine-step benchmarks step ONE engine b.N times and GP trees grow
# across generations, so their ns/op depends on the iteration count the
# framework picks — they run at a pinned -benchtime=150x so EngineStep,
# StepWithSearchStats, StepWithSpans and StepWithSubscribers measure
# the same 150 generations and captures stay comparable across runs.
bench: bench-preflight
	$(GO) test -run XXX -bench 'EvalTree|EvalProgram|Prepare|Rotating' -benchmem \
		./internal/bcpop/ | tee bench_pr10.txt
	$(GO) test -run XXX -bench 'EngineStep|StepWithSearchStats|StepWithSpans' -benchtime=150x -benchmem \
		./internal/core/ | tee -a bench_pr10.txt
	$(GO) test -run XXX -bench 'StepWithSubscribers' -benchtime=150x -benchmem \
		./internal/serve/ | tee -a bench_pr10.txt
	$(GO) test -run XXX -bench 'RouteSubmit' -benchmem \
		./internal/cluster/ | tee -a bench_pr10.txt
	$(GO) run carbon/cmd/benchjson -out BENCH_pr10.json < bench_pr10.txt

# Refuse to benchmark while a stray daemon from an interrupted smoke run
# is eating the machine — on a small box that skews every ns/op.
bench-preflight:
	$(GO) run carbon/cmd/smokecheck

# Flag >10% ns/op regressions between the previous committed capture and
# the current one (rerun `make bench` first on a quiet machine).
bench-diff:
	$(GO) run carbon/cmd/benchjson -diff BENCH_pr9.json BENCH_pr10.json

# One-iteration benchmark pass: proves every benchmark (and the benchjson
# parser) still runs, without paying for measurement. Part of `check`.
bench-smoke: bench-preflight
	$(GO) test -run XXX -bench 'EvalTree|EvalProgram|Prepare|EngineStep|Rotating|StepWithSearchStats|StepWithSpans|StepWithSubscribers|RouteSubmit' -benchtime=1x -benchmem \
		./internal/bcpop/ ./internal/core/ ./internal/serve/ ./internal/cluster/ | $(GO) run carbon/cmd/benchjson >/dev/null

# Analyzer self-check: synthetic healthy/pathological traces through the
# whole carbonstat pipeline (parse, demux, summarize, flag, diff).
stat-smoke:
	$(GO) run carbon/cmd/carbonstat -selfcheck

# The original full sweep: every benchmark in the tree.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Laptop-scale reproduction of every table and figure (see EXPERIMENTS.md).
quick:
	$(GO) run carbon/cmd/blbench -all -csv results -svg results

# The paper-faithful protocol: 30 runs x 50k evaluations per level.
full:
	$(GO) run carbon/cmd/blbench -all -full -csv results-full -svg results-full

# Race the five bi-level architectures under equal budgets.
taxonomy:
	$(GO) run carbon/cmd/blbench -taxonomy

# End-to-end crash recovery gate: builds carbond, submits a job, SIGKILLs
# the server mid-run, restarts, and asserts the resumed job finishes with
# the exact bits of an uninterrupted run (then the same for SIGTERM drain).
serve-smoke:
	$(GO) run carbon/cmd/servesmoke

# Fault-injection gate: carbond under injected LP failures, torn
# checkpoint/spool writes and a SIGKILL must lose zero accepted jobs,
# finish every survivor bit-identical to a fault-free run, and
# dead-letter honestly under a permanent outage.
chaos-smoke:
	$(GO) run carbon/cmd/chaossmoke

# Tracing gate: a job with a caller traceparent survives an LP fault
# (retry + backoff) and a SIGKILL restart; its span file must hold one
# fully parent-linked trace whose critical path and kind breakdown
# account for the wall time, and `carbonstat -spans` must render it.
trace-smoke:
	$(GO) run carbon/cmd/tracesmoke

# Cluster gate: three carbond workers behind a carbonfleet router.
# Jobs shard round-robin, an over-quota tenant gets a 429 + Retry-After,
# SIGKILLing the worker hosting a running job must lose nothing (the job
# resumes on a survivor from the mirrored checkpoint, bit-identical), a
# revived worker's stale copies are swept, networked islands reproduce
# in-process RunIslands exactly, and the cross-node trace assembles with
# zero orphans.
fleet-smoke:
	$(GO) run carbon/cmd/fleetsmoke

# Observability gate: three workers + router with SLO rules armed.
# Every job streams over SSE and must still finish bit-identical to an
# in-process reference (zero RNG consumed, no extra LP solves); the
# victim's stream is dropped, its worker SIGKILLed, and a Last-Event-ID
# resume must replay exactly the missed tail across the failover; the
# router's federated /metrics/prometheus must conserve counter sums over
# the survivors; the routes-unfinished alert fires and clears; and
# `carbontop -once` renders the post-mortem fleet.
obs-smoke:
	$(GO) run carbon/cmd/obsmoke

examples:
	$(GO) run carbon/examples/quickstart
	$(GO) run carbon/examples/linearbilevel
	$(GO) run carbon/examples/hyperheuristic
	$(GO) run carbon/examples/cloudpricing
	$(GO) run carbon/examples/multicustomer
	$(GO) run carbon/examples/trilevel
	$(GO) run carbon/examples/packing

clean:
	rm -rf results results-full test_output.txt bench_output.txt bench_pr3.txt bench_pr4.txt bench_pr6.txt bench_pr7.txt bench_pr8.txt bench_pr9.txt bench_pr10.txt
