// Quickstart: solve a small Bi-level Cloud Pricing problem with CARBON
// in a few seconds and inspect what came out — the best pricing, the
// best evolved heuristic, and why the %-gap is the number to watch.
package main

import (
	"fmt"
	"log"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
)

func main() {
	// A market with 100 bundles, 5 service requirements; the leader owns
	// the first 10 bundles and must price them.
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 100, M: 5}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d bundles, %d services, leader owns %d bundles\n",
		mk.Bundles(), mk.Services(), mk.Leaders())

	// Table II defaults, with budgets shrunk from 50 000 to a quickstart
	// scale.
	cfg := core.DefaultConfig()
	cfg.ULPopSize, cfg.LLPopSize = 30, 30
	cfg.ULArchiveSize, cfg.LLArchiveSize = 30, 30
	cfg.ULEvalBudget, cfg.LLEvalBudget = 1500, 3000
	cfg.PreySample = 2

	res, err := core.Run(mk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nCARBON finished after %d generations (%d UL + %d LL evaluations)\n",
		res.Gens, res.ULEvals, res.LLEvals)
	fmt.Printf("best revenue forecast:   %.2f\n", res.Best.Revenue)
	fmt.Printf("forecast accuracy:       %.2f%% gap to the LP bound\n", res.Best.GapPct)
	fmt.Printf("best evolved heuristic:  %s\n", res.Best.TreeStr)
	fmt.Printf("best leader pricing:     %.1f\n", res.Best.Price)

	fmt.Println("\nWhy the gap matters: the revenue above is computed against the")
	fmt.Println("follower reaction *forecast* by the evolved heuristic. A small gap")
	fmt.Println("means the forecast is close to the true rational reaction, so the")
	fmt.Println("revenue is realistic rather than an over-estimate (paper §V, Eq. 2-3).")
}
