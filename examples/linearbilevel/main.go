// Linear bi-level didactics: the paper's Program 3 (Mersha & Dempe)
// solved exactly, with an ASCII rendering of Fig 1's discontinuous
// inducible region and the §II cautionary tale — why the leader cannot
// trust a non-rational lower-level answer.
package main

import (
	"fmt"
	"log"
	"strings"

	"carbon/internal/bilevel"
)

func main() {
	p := bilevel.MershaDempe()

	fmt.Println("Program 3 (Mersha & Dempe):")
	fmt.Println("  leader:   min F(x,y) = -x - 2y")
	fmt.Println("            s.t. 2x - 3y >= -12,  x + y <= 14")
	fmt.Println("  follower: min f(y) = -y")
	fmt.Println("            s.t. -3x + y <= -3,  3x + y <= 30,  y >= 0")
	fmt.Println()

	// The cautionary tale of §II.
	r := p.RationalReaction(6)
	fmt.Printf("leader picks x=6 hoping for y=8: F(6,8) = %.0f, UL-feasible: %v\n",
		p.F(6, 8), p.ULFeasible(6, 8))
	fmt.Printf("but the rational reaction is y*=%.0f: UL-feasible: %v  ← the leader ends infeasible\n\n",
		r.Y, p.ULFeasible(6, r.Y))

	// Exact bi-level optimum, twice: the scalar breakpoint solver and
	// the KKT single-level transformation (the §III "STA" category),
	// which enumerates complementarity patterns.
	sol, err := p.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact bi-level optimum (breakpoints): x=%.0f, y=%.0f, F=%.0f\n", sol.X, sol.Y, sol.F)
	kkt, err := p.ToLinearBilevel().SolveKKT()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact bi-level optimum (KKT):         x=%.0f, y=%.0f, F=%.0f (%d active-set patterns)\n\n",
		kkt.X[0], kkt.Y[0], kkt.F, kkt.Patterns)

	// Fig 1: sample the inducible region and draw it.
	pts := p.SampleIR(121)
	fmt.Println("inducible region (x: 0..15, '#' = bi-level feasible, '.' = rational")
	fmt.Println("reaction exists but violates UL constraints, ' ' = no reaction):")
	fmt.Println(renderIR(pts))
	fmt.Println("The feasible x values form [1,3] ∪ [8,10] — a *discontinuous*")
	fmt.Println("inducible region caused purely by upper-level constraints that the")
	fmt.Println("follower ignores (Fig 1 in the paper).")
}

// renderIR draws y*(x) over the sampled grid.
func renderIR(pts []bilevel.Point) string {
	const height = 14
	maxY := 0.0
	for _, pt := range pts {
		if pt.Y == pt.Y && pt.Y > maxY { // NaN-safe
			maxY = pt.Y
		}
	}
	rows := make([][]byte, height)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", len(pts)))
	}
	for c, pt := range pts {
		if pt.Y != pt.Y {
			continue
		}
		rIdx := int(float64(height-1) * (maxY - pt.Y) / maxY)
		ch := byte('.')
		if pt.Feasible {
			ch = '#'
		}
		rows[rIdx][c] = ch
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%5.1f ┐\n", maxY)
	for _, row := range rows {
		b.WriteString("      │")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%5.1f ┘ x: %.0f → %.0f\n", 0.0, pts[0].X, pts[len(pts)-1].X)
	return b.String()
}
