// Multi-customer cloud pricing: lifts the paper's simplification of a
// single rational customer (§IV-B: "for the sake of simplicity, we will
// consider a single rational CSC"). Several customers with different
// service requirements face the same leader prices; the lower level
// becomes a block-diagonal covering problem and the leader's revenue
// aggregates every customer's purchases.
//
// The example shows CARBON running unchanged on the extended model —
// the predator heuristics never depended on the market being a single
// block — and how the pricing that maximizes aggregate revenue differs
// from the single-customer optimum.
package main

import (
	"fmt"
	"log"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
)

func main() {
	base, err := orlib.GenerateCovering(orlib.Class{N: 80, M: 5}, 4)
	if err != nil {
		log.Fatal(err)
	}
	const leaders = 8

	cfg := core.DefaultConfig()
	cfg.ULPopSize, cfg.LLPopSize = 24, 24
	cfg.ULArchiveSize, cfg.LLArchiveSize = 24, 24
	cfg.ULEvalBudget, cfg.LLEvalBudget = 1200, 2400
	cfg.PreySample = 2

	fmt.Printf("%-10s %12s %12s %9s %s\n",
		"customers", "revenue", "rev/customer", "gap%", "best heuristic")
	for _, k := range []int{1, 2, 4} {
		mk, err := bcpop.NewMultiMarket(base, leaders, k, 0.25, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(mk, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tree := res.Best.TreeStr
		if len(tree) > 40 {
			tree = tree[:37] + "..."
		}
		fmt.Printf("%-10d %12.0f %12.0f %9.2f %s\n",
			k, res.Best.Revenue, res.Best.Revenue/float64(k), res.Best.GapPct, tree)
	}

	fmt.Println("\nWith more customers the aggregate revenue grows, while the")
	fmt.Println("heuristics keep forecasting each customer's rational basket — the")
	fmt.Println("gap stays small because Eq. 1 normalizes per induced instance,")
	fmt.Println("no matter how many follower blocks that instance contains.")
}
