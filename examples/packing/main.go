// Packing: the GP hyper-heuristic machinery on the *unflipped*
// Multidimensional Knapsack Problem — the very instances the paper's
// §V-A setup was derived from, before the ≤→≥ transformation. The same
// Table I operator set drives a packing greedy instead of a covering
// greedy, with the gap measured against the LP relaxation's upper bound.
//
// The point: nothing in the predator machinery is covering-specific.
// Burke et al.'s survey (the paper's GP hyper-heuristics foundation)
// lists cutting & packing as the flagship domain; this example is that
// domain in ~100 lines on top of the library.
package main

import (
	"fmt"
	"log"

	"carbon/internal/gp"
	"carbon/internal/knapsack"
	"carbon/internal/orlib"
	"carbon/internal/rng"
)

type dataset struct {
	in *knapsack.Instance
	rx *knapsack.Relaxation
}

func load(indices []int) []dataset {
	var out []dataset
	for _, i := range indices {
		mkp, err := orlib.GenerateMKP(rng.New(uint64(2000+i)), 60, 5, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		in, err := knapsack.FromMKP(&mkp)
		if err != nil {
			log.Fatal(err)
		}
		rx, err := in.Relax()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, dataset{in, rx})
	}
	return out
}

func meanGap(set *gp.Set, tree gp.Tree, ds []dataset) float64 {
	total := 0.0
	for _, d := range ds {
		ts := knapsack.NewTreeScorer(set, d.in, d.rx)
		res := ts.ApplyHeuristic(tree)
		total += knapsack.Gap(res.Profit, d.rx.UB)
	}
	return total / float64(len(ds))
}

func main() {
	set := knapsack.Set()
	train := load([]int{0, 1, 2})
	test := load([]int{10, 11, 12, 13})
	r := rng.New(17)

	fmt.Println("multidimensional knapsack: 60 items, 5 resources, tightness 0.4")
	fmt.Printf("%-30s %12s %12s\n", "heuristic", "train gap%", "test gap%")
	baselines := []struct{ name, expr string }{
		{"greedy by profit (p)", "p"},
		{"profit density (p/w)", "(% p w)"},
		{"dual-weighted density", "(% p (* w d))"},
		{"LP rounding bias (x̄)", "xbar"},
	}
	for _, b := range baselines {
		tree := gp.MustParse(set, b.expr)
		fmt.Printf("%-30s %12.3f %12.3f\n", b.name,
			meanGap(set, tree, train), meanGap(set, tree, test))
	}

	// A compact GP run with Table II's operator probabilities.
	const popSize, gens = 30, 20
	lim := gp.DefaultLimits()
	pop := make([]gp.Tree, popSize)
	for i := range pop {
		pop[i] = set.Ramped(r, 1, 4)
	}
	fit := make([]float64, popSize)
	best := pop[0]
	bestFit := 1e18
	for g := 0; g < gens; g++ {
		for i := range pop {
			fit[i] = meanGap(set, pop[i], train)
			if fit[i] < bestFit {
				bestFit, best = fit[i], pop[i].Clone()
			}
		}
		better := func(i, j int) bool { return fit[i] < fit[j] }
		next := []gp.Tree{best.Clone()}
		pick := func() gp.Tree {
			a, b := r.Intn(popSize), r.Intn(popSize)
			if better(b, a) {
				a = b
			}
			return pop[a]
		}
		for len(next) < popSize {
			switch u := r.Float64(); {
			case u < 0.85:
				c1, c2 := gp.OnePointCrossover(r, set, pick(), pick(), lim)
				next = append(next, c1)
				if len(next) < popSize {
					next = append(next, c2)
				}
			case u < 0.95:
				next = append(next, gp.UniformMutate(r, set, pick(), 3, lim))
			default:
				next = append(next, pick().Clone())
			}
		}
		pop = next
	}
	fmt.Printf("%-30s %12.3f %12.3f\n", "evolved (GP, 20 gens)",
		meanGap(set, best, train), meanGap(set, best, test))
	fmt.Printf("\nevolved packing heuristic: %s\n", gp.Simplify(set, best).String(set))
}
