// Cloud pricing walkthrough: the paper's motivating scenario (§IV-B)
// end to end. A Cloud Service Provider prices its bundles against a
// fixed competitive market; a rational customer solves a covering
// problem to buy the cheapest basket satisfying all service needs.
//
// The example audits a handful of pricing strategies — undercutting,
// matching, premium, and CARBON's evolved pricing — and shows for each
// one the customer's rational basket, the provider's realized revenue,
// and the danger of trusting a bad lower-level forecast.
package main

import (
	"fmt"
	"log"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/orlib"
)

func main() {
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 100, M: 10}, 1)
	if err != nil {
		log.Fatal(err)
	}
	set := covering.TableISet()
	ev, err := bcpop.NewEvaluator(mk, set)
	if err != nil {
		log.Fatal(err)
	}
	// A strong hand-written forecast heuristic: dual-weighted coverage
	// per unit cost — the LP-guided greedy expressed as a GP tree.
	forecast := gp.MustParse(set, "(% (* q d) c)")

	bounds := mk.PriceBounds()
	mean := 0.0
	for _, up := range bounds.Up {
		mean += up / bcpop.PriceCapFactor
	}
	mean /= float64(len(bounds.Up))
	fmt.Printf("market: %d bundles (%d ours), %d services, mean competitor price %.0f\n\n",
		mk.Bundles(), mk.Leaders(), mk.Services(), mean)

	strategies := []struct {
		name  string
		price func(j int) float64
	}{
		{"undercut (60% of market mean)", func(int) float64 { return 0.6 * mean }},
		{"match market mean", func(int) float64 { return mean }},
		{"premium (150% of mean)", func(int) float64 { return 1.5 * mean }},
	}
	fmt.Printf("%-32s %10s %10s %8s %8s\n", "strategy", "revenue", "cust.cost", "gap%", "bought")
	for _, st := range strategies {
		price := make([]float64, mk.Leaders())
		for j := range price {
			price[j] = st.price(j)
		}
		res, basket, err := ev.EvalTree(price, forecast)
		if err != nil {
			log.Fatal(err)
		}
		bought := 0
		for j := 0; j < mk.Leaders(); j++ {
			if basket[j] {
				bought++
			}
		}
		fmt.Printf("%-32s %10.0f %10.0f %8.2f %5d/%d\n",
			st.name, res.Revenue, res.LLCost, res.GapPct, bought, mk.Leaders())
	}

	// Now let CARBON search the pricing space while co-evolving its own
	// forecast heuristics.
	cfg := core.DefaultConfig()
	cfg.ULPopSize, cfg.LLPopSize = 30, 30
	cfg.ULArchiveSize, cfg.LLArchiveSize = 30, 30
	cfg.ULEvalBudget, cfg.LLEvalBudget = 2400, 4800
	cfg.PreySample = 2
	res, err := core.Run(mk, cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, basket, err := ev.EvalTree(res.Best.Price, res.Best.Tree)
	if err != nil {
		log.Fatal(err)
	}
	bought := 0
	for j := 0; j < mk.Leaders(); j++ {
		if basket[j] {
			bought++
		}
	}
	fmt.Printf("%-32s %10.0f %10.0f %8.2f %5d/%d\n",
		"CARBON evolved pricing", out.Revenue, out.LLCost, out.GapPct, bought, mk.Leaders())
	fmt.Printf("\nCARBON's forecast heuristic: %s\n", res.Best.TreeStr)

	// The cautionary tale: score the same CARBON pricing with a *bad*
	// forecast and watch the revenue inflate — the over-estimation
	// effect of Eq. 2/3 that makes COBRA's Table IV numbers misleading.
	bad := gp.MustParse(set, "(- b b)") // all-zero scores: index-order greedy
	outBad, _, err := ev.EvalTree(res.Best.Price, bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame pricing, bad forecast:  revenue %.0f at %.1f%% gap (inflated)\n",
		outBad.Revenue, outBad.GapPct)
	fmt.Printf("same pricing, good forecast: revenue %.0f at %.1f%% gap (realistic)\n",
		out.Revenue, out.GapPct)
}
