// GP hyper-heuristics in isolation: evolve a covering heuristic from
// scratch (Burke-style generation, §IV-A of the paper) on a fixed set of
// training instances and compare it against classic hand-written
// orderings on held-out instances.
//
// This is the predator half of CARBON without the co-evolution: a plain
// generational GP whose fitness is the mean %-gap over the training set.
package main

import (
	"fmt"
	"log"

	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
)

type instanceData struct {
	in *covering.Instance
	rx *covering.Relaxation
}

func load(cl orlib.Class, indices []int) []instanceData {
	var out []instanceData
	for _, idx := range indices {
		in, err := orlib.GenerateCovering(cl, idx)
		if err != nil {
			log.Fatal(err)
		}
		rx, err := in.Relax()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, instanceData{in, rx})
	}
	return out
}

// meanGap applies the tree-driven greedy to every instance and averages
// the %-gap to the LP bound.
func meanGap(set *gp.Set, tree gp.Tree, data []instanceData) float64 {
	total := 0.0
	for _, d := range data {
		ts := covering.NewTreeScorer(set, d.in, d.rx)
		res := ts.ApplyHeuristic(tree, true)
		if !res.Feasible {
			return 1e9
		}
		total += covering.Gap(res.Cost, d.rx.LB)
	}
	return total / float64(len(data))
}

func main() {
	cl := orlib.Class{N: 100, M: 10}
	train := load(cl, []int{0, 1, 2})
	test := load(cl, []int{10, 11, 12, 13})
	set := covering.TableISet()
	r := rng.New(7)

	// Hand-written baselines expressed in the same language.
	baselines := []struct{ name, expr string }{
		{"cheapest first (-c)", "(- (- b b) c)"},
		{"coverage/cost", "(% q c)"},
		{"dual-guided (q·d)/c", "(% (* q d) c)"},
		{"LP rounding bias (x̄)", "xbar"},
	}

	fmt.Printf("training on %d instances of %v, testing on %d\n\n", len(train), cl, len(test))
	fmt.Printf("%-28s %12s %12s\n", "heuristic", "train gap%", "test gap%")
	for _, b := range baselines {
		tree := gp.MustParse(set, b.expr)
		fmt.Printf("%-28s %12.3f %12.3f\n", b.name,
			meanGap(set, tree, train), meanGap(set, tree, test))
	}

	// Plain generational GP: tournament(3), one-point crossover 0.85,
	// uniform mutation 0.10, reproduction 0.05 (Table II's GP rows).
	const popSize, gens = 40, 25
	lim := gp.DefaultLimits()
	pop := make([]gp.Tree, popSize)
	fit := make([]float64, popSize)
	for i := range pop {
		pop[i] = set.Ramped(r, 1, 4)
	}
	best := pop[0]
	bestFit := 1e18
	for g := 0; g < gens; g++ {
		for i := range pop {
			fit[i] = meanGap(set, pop[i], train)
			if fit[i] < bestFit {
				bestFit, best = fit[i], pop[i].Clone()
			}
		}
		next := []gp.Tree{best.Clone()} // elitism
		better := func(i, j int) bool { return fit[i] < fit[j] }
		tournament := func() gp.Tree {
			bi := r.Intn(popSize)
			for k := 0; k < 2; k++ {
				c := r.Intn(popSize)
				if better(c, bi) {
					bi = c
				}
			}
			return pop[bi]
		}
		for len(next) < popSize {
			switch u := r.Float64(); {
			case u < 0.85:
				c1, c2 := gp.OnePointCrossover(r, set, tournament(), tournament(), lim)
				next = append(next, c1)
				if len(next) < popSize {
					next = append(next, c2)
				}
			case u < 0.95:
				next = append(next, gp.UniformMutate(r, set, tournament(), 3, lim))
			default:
				next = append(next, tournament().Clone())
			}
		}
		pop = next
	}

	fmt.Printf("%-28s %12.3f %12.3f\n", "evolved (GP, 25 gens)",
		meanGap(set, best, train), meanGap(set, best, test))
	fmt.Printf("\nevolved heuristic: %s\n", best.String(set))
	fmt.Println("\nThe evolved scorer is trained only on the training instances; its")
	fmt.Println("test-set gap shows the generated heuristic generalizes across")
	fmt.Println("instances of the class — the property CARBON exploits when prey")
	fmt.Println("decisions keep inducing fresh lower-level instances.")
}
