// Tri-level pricing chain: the paper's future-work direction ("deeper
// nested structure") prototyped. CSP-A prices first, CSP-B reacts with
// an evolved pricing *policy*, the customer reacts with an evolved
// covering *heuristic* — three populations co-evolving, with CARBON's
// decoupling trick applied at both reactive levels.
package main

import (
	"fmt"
	"log"

	"carbon/internal/multilevel"
	"carbon/internal/orlib"
)

func main() {
	tm, err := multilevel.NewTriMarketFromClass(orlib.Class{N: 100, M: 5}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tri-level market: CSP-A (10 bundles) → CSP-B (10 bundles) → customer")
	fmt.Printf("competitor-anchored price cap: %.0f\n\n", tm.CapB())

	cfg := multilevel.DefaultConfig()
	cfg.PopSize = 16
	cfg.Budget = 4000
	res, err := multilevel.Run(tm, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("co-evolution: %d generations, %d chain evaluations\n\n", res.Gens, res.Evals)
	fmt.Printf("A's best revenue:        %.0f\n", res.BestRevenueA)
	fmt.Printf("B's best mean revenue:   %.0f\n", res.BestRevenueB)
	fmt.Printf("customer forecast gap:   %.2f%%\n", res.BestGapPct)
	fmt.Printf("B's evolved policy:      price = clamp(|%s|)\n", res.BestPolicy)
	fmt.Printf("customer's heuristic:    %s\n", res.BestCust)

	fmt.Println("\nWhat to notice: the bottom level keeps the paper's gap fitness")
	fmt.Println("and its gap converges steadily, as in the bi-level case. The middle")
	fmt.Println("level has no LP-bound-quality normalizer for its revenue, so its")
	fmt.Println("selection signal is noisier — the co-evolution limitation the")
	fmt.Println("paper's future-work section wants analyzed, now measurable here.")
}
