package cobra

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/stats"
)

func smallMarket(t testing.TB) *bcpop.Market {
	t.Helper()
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize = 16
	cfg.ULArchiveSize = 16
	cfg.ULEvalBudget = 600
	cfg.LLPopSize = 16
	cfg.LLArchiveSize = 16
	cfg.LLEvalBudget = 600
	cfg.PhaseGens = 3
	cfg.CoevPairs = 6
	cfg.ArchiveInject = 4
	return cfg
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ULPopSize != 100 || cfg.ULArchiveSize != 100 || cfg.ULEvalBudget != 50000 {
		t.Fatalf("UL row: %+v", cfg)
	}
	if cfg.LLPopSize != 100 || cfg.LLArchiveSize != 100 || cfg.LLEvalBudget != 50000 {
		t.Fatalf("LL row: %+v", cfg)
	}
	if cfg.ULCrossoverProb != 0.85 || cfg.ULMutationProb != 0.01 || cfg.LLCrossoverProb != 0.85 {
		t.Fatalf("operator probabilities: %+v", cfg)
	}
	if cfg.LLMutationProb != 0 {
		t.Fatal("LL mutation must default to auto (1/#variables)")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.ULPopSize = 1 },
		func(c *Config) { c.LLArchiveSize = 0 },
		func(c *Config) { c.LLEvalBudget = 1 },
		func(c *Config) { c.PhaseGens = 0 },
		func(c *Config) { c.CoevPairs = -1 },
		func(c *Config) { c.Elites = 500 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRunProducesResult(t *testing.T) {
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations")
	}
	if res.ULEvals > 600 || res.LLEvals > 600 {
		t.Fatalf("budgets exceeded: %d/%d", res.ULEvals, res.LLEvals)
	}
	if len(res.BestPrice) != mk.Leaders() {
		t.Fatalf("best price length %d", len(res.BestPrice))
	}
	if res.BestLLCost <= 0 {
		t.Fatalf("best LL cost %v", res.BestLLCost)
	}
	if res.BestGapPct < 0 || res.MinGapPct < 0 {
		t.Fatalf("negative gaps: %v/%v", res.BestGapPct, res.MinGapPct)
	}
	if res.MinGapPct > res.BestGapPct {
		t.Fatalf("MinGap %v exceeds BestGap %v", res.MinGapPct, res.BestGapPct)
	}
	if len(res.ULCurve.X) == 0 || len(res.GapCurve.X) == 0 {
		t.Fatal("curves empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := smallMarket(t)
	a, err := Run(mk, smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRevenue != b.BestRevenue || a.BestGapPct != b.BestGapPct ||
		a.Gens != b.Gens || a.ULEvals != b.ULEvals || a.LLEvals != b.LLEvals {
		t.Fatal("same seed diverged")
	}
}

func TestAutoMutationRate(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(5)
	cfg.LLMutationProb = 0 // auto
	if _, err := Run(mk, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSeeSawVersusCarbonSmoothness(t *testing.T) {
	// The paper's Fig 4 vs Fig 5 contrast, in miniature: CARBON's
	// archive-driven curves are perfectly monotone; COBRA's
	// population-driven curves oscillate across phase boundaries.
	mk := smallMarket(t)
	cres, err := Run(mk, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.Seed = 8
	ccfg.ULPopSize, ccfg.LLPopSize = 16, 16
	ccfg.ULArchiveSize, ccfg.LLArchiveSize = 16, 16
	ccfg.ULEvalBudget, ccfg.LLEvalBudget = 600, 600
	ccfg.PreySample = 2
	kres, err := core.Run(mk, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	carbonSmooth := stats.Monotonicity(kres.GapCurve.Y, -1)
	cobraSmooth := stats.Monotonicity(cres.GapCurve.Y, -1)
	if carbonSmooth != 1 {
		t.Fatalf("CARBON gap curve should be monotone, got %v", carbonSmooth)
	}
	if cobraSmooth >= 1 && stats.SeeSaw(cres.GapCurve.Y) == 0 {
		t.Log("note: COBRA gap curve happened to be monotone on this tiny run")
	}
}

func TestCarbonBeatsCobraOnGap(t *testing.T) {
	// The headline Table III direction on a small market with modest
	// budgets: CARBON's archived gap below COBRA's.
	mk := smallMarket(t)

	ccfg := smallConfig(30)
	ccfg.ULEvalBudget, ccfg.LLEvalBudget = 1500, 1500
	cres, err := Run(mk, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	kcfg := core.DefaultConfig()
	kcfg.Seed = 30
	kcfg.ULPopSize, kcfg.LLPopSize = 16, 16
	kcfg.ULArchiveSize, kcfg.LLArchiveSize = 16, 16
	kcfg.ULEvalBudget, kcfg.LLEvalBudget = 1500, 1500
	kcfg.PreySample = 2
	kres, err := core.Run(mk, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	if kres.Best.GapPct >= cres.BestGapPct {
		t.Fatalf("CARBON gap %v%% not below COBRA gap %v%%",
			kres.Best.GapPct, cres.BestGapPct)
	}
}

func TestWorstIndex(t *testing.T) {
	if worstIndex([]float64{3, 1, 2}, true) != 1 {
		t.Fatal("maximize: worst should be min")
	}
	if worstIndex([]float64{3, 1, 5}, false) != 2 {
		t.Fatal("minimize: worst should be max")
	}
}

func TestBudgetBoundaryExact(t *testing.T) {
	// Budgets exactly one generation wide: COBRA must run it and stop.
	mk := smallMarket(t)
	cfg := smallConfig(40)
	cfg.ULEvalBudget = cfg.ULPopSize
	cfg.LLEvalBudget = cfg.LLPopSize
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ULEvals > cfg.ULEvalBudget || res.LLEvals > cfg.LLEvalBudget {
		t.Fatalf("boundary budgets exceeded: %d/%d", res.ULEvals, res.LLEvals)
	}
	if res.Gens == 0 {
		t.Fatal("no generation ran with exactly one generation of budget")
	}
}

func TestPhaseGensShapesCurve(t *testing.T) {
	// Longer phases mean fewer alternations: with PhaseGens equal to the
	// whole budget, the run never reaches a lower phase boundary
	// mid-stream, so the recorded curve has at most one long UL stretch.
	mk := smallMarket(t)
	long := smallConfig(41)
	long.PhaseGens = 1000
	res, err := Run(mk, long)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations")
	}
}
