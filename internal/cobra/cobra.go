// Package cobra re-implements COBRA (Legillon, Liefooghe & Talbi,
// CEC 2012), the co-evolutionary baseline the paper compares CARBON
// against, following the paper's Algorithm 1:
//
//	pop ← create_initial_pop()
//	pop_u ← copy_upper(pop);  pop_l ← copy_lower(pop)
//	while stopping criterion is not met:
//	    upper_improvement(pop_u) and lower_improvement(pop_l)
//	    upper_archiving(pop_u)  and lower_archiving(pop_l)
//	    selection(pop_u)        and selection(pop_l)
//	    coevolution(pop_u, pop_l)
//	    adding from upper archive and from lower archive
//	return lower archive
//
// The upper population evolves pricing vectors with the Table II GA
// operators; the lower population evolves raw binary baskets (two-point
// crossover, bit-swap mutation at rate 1/#variables). Each level is
// evaluated against the best-known partner from the other level — the
// nested pairing whose staleness produces the see-saw convergence the
// paper shows in Fig 5. Fitness at the lower level is the raw follower
// cost f (NOT the %-gap): this is exactly the design decision the paper
// criticizes, since f values obtained under different upper-level
// decisions are incomparable. The gap is still computed for reporting.
//
// Documented deviations from the (unpublished) reference code: raw
// binary baskets are repaired to covering feasibility by Chvátal
// completion before costing (Baldwinian repair: the genotype is not
// rewritten), and the improvement phases run a fixed number of
// generations per phase (PhaseGens).
package cobra

import (
	"errors"
	"fmt"

	"carbon/internal/archive"
	"carbon/internal/bcpop"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

// Config carries COBRA's Table II column plus the phase-length and
// co-evolution knobs Algorithm 1 leaves open.
type Config struct {
	Seed uint64

	ULPopSize       int     // 100
	ULArchiveSize   int     // 100
	ULEvalBudget    int     // 50000
	ULCrossoverProb float64 // 0.85 (SBX)
	ULMutationProb  float64 // 0.01 (polynomial, per gene)
	ULSBXEta        float64
	ULPolyEta       float64

	LLPopSize       int     // 100
	LLArchiveSize   int     // 100
	LLEvalBudget    int     // 50000
	LLCrossoverProb float64 // 0.85 (two-point)
	LLMutationProb  float64 // per bit; 0 selects 1/#variables (Table II)

	// PhaseGens is the number of generations per improvement phase at
	// each level before control alternates (Algorithm 1 line 5).
	PhaseGens int
	// CoevPairs is how many random cross-population pairs the
	// co-evolution operator evaluates per outer iteration (line 8).
	CoevPairs int
	// ArchiveInject is how many archive members are re-added to each
	// population after co-evolution (line 9).
	ArchiveInject int
	// Elites per generation within an improvement phase.
	Elites int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the paper's Table II parameter column for COBRA.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		ULPopSize:       100,
		ULArchiveSize:   100,
		ULEvalBudget:    50000,
		ULCrossoverProb: 0.85,
		ULMutationProb:  0.01,
		ULSBXEta:        15,
		ULPolyEta:       20,
		LLPopSize:       100,
		LLArchiveSize:   100,
		LLEvalBudget:    50000,
		LLCrossoverProb: 0.85,
		LLMutationProb:  0, // auto: 1/#variables
		PhaseGens:       5,
		CoevPairs:       20,
		ArchiveInject:   10,
		Elites:          1,
	}
}

// Validate rejects unusable configurations.
func (c *Config) Validate() error {
	switch {
	case c.ULPopSize < 2 || c.LLPopSize < 2:
		return errors.New("cobra: population sizes must be at least 2")
	case c.ULArchiveSize < 1 || c.LLArchiveSize < 1:
		return errors.New("cobra: archive sizes must be positive")
	case c.ULEvalBudget < c.ULPopSize || c.LLEvalBudget < c.LLPopSize:
		return errors.New("cobra: budgets must cover at least one generation")
	case c.PhaseGens < 1:
		return errors.New("cobra: PhaseGens must be at least 1")
	case c.CoevPairs < 0 || c.ArchiveInject < 0:
		return errors.New("cobra: negative co-evolution knobs")
	case c.Elites < 0 || c.Elites >= c.ULPopSize || c.Elites >= c.LLPopSize:
		return errors.New("cobra: bad elite count")
	}
	return nil
}

// llEntry is one lower-archive member: the basket, the follower cost it
// was archived at, and the gap it had on the instance it was costed on.
type llEntry struct {
	x      []bool
	gapPct float64
}

// Result summarizes one COBRA run.
type Result struct {
	BestPrice   []float64
	BestRevenue float64
	BestLLCost  float64
	BestGapPct  float64 // gap of the best (lowest-f) lower-archive entry
	MinGapPct   float64 // best gap anywhere in the lower archive
	ULEvals     int
	LLEvals     int
	Gens        int
	ULCurve     stats.Series // x: total evals, y: best F this generation
	GapCurve    stats.Series // x: total evals, y: gap of the current best basket
}

// Run executes COBRA on the market until either budget is exhausted.
func Run(mk *bcpop.Market, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LLMutationProb == 0 {
		cfg.LLMutationProb = 1 / float64(mk.Bundles())
	}
	workers := par.Workers(cfg.Workers)
	evs := make([]*bcpop.Evaluator, workers)
	for i := range evs {
		ev, err := bcpop.NewEvaluator(mk, covering.TableISet())
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	s := &state{mk: mk, cfg: cfg, evs: evs, workers: workers, r: rng.New(cfg.Seed)}
	return s.run()
}

type state struct {
	mk      *bcpop.Market
	cfg     Config
	evs     []*bcpop.Evaluator
	workers int
	r       *rng.Rand

	popU [][]float64
	popL [][]bool
	fitU []float64
	fitL []float64
	gapL []float64

	archU *archive.Archive[[]float64]
	archL *archive.Archive[llEntry]

	bestX []float64 // best-known partner for LL evaluations
	bestY []bool    // best-known partner for UL evaluations

	ulUsed, llUsed int
	res            *Result
}

func (s *state) run() (*Result, error) {
	cfg := s.cfg
	bounds := s.mk.PriceBounds()
	m := s.mk.Bundles()

	// create_initial_pop + copy_upper/copy_lower.
	s.popU = make([][]float64, cfg.ULPopSize)
	for i := range s.popU {
		s.popU[i] = bounds.RandomVector(s.r)
	}
	s.popL = make([][]bool, cfg.LLPopSize)
	for i := range s.popL {
		y := make([]bool, m)
		for j := range y {
			y[j] = s.r.Bool(0.5)
		}
		s.popL[i] = y
	}
	s.fitU = make([]float64, cfg.ULPopSize)
	s.fitL = make([]float64, cfg.LLPopSize)
	s.gapL = make([]float64, cfg.LLPopSize)
	s.archU = archive.New[[]float64](cfg.ULArchiveSize, false, nil)
	s.archL = archive.New[llEntry](cfg.LLArchiveSize, true, nil)
	s.res = &Result{}

	// Initial partners: the first individuals of each population.
	s.bestX = append([]float64(nil), s.popU[0]...)
	s.bestY = append([]bool(nil), s.popL[0]...)

	for s.ulBudgetLeft(cfg.ULPopSize) && s.llBudgetLeft(cfg.LLPopSize) {
		// Line 5: upper improvement then lower improvement.
		for g := 0; g < cfg.PhaseGens && s.ulBudgetLeft(cfg.ULPopSize); g++ {
			s.upperGeneration()
		}
		for g := 0; g < cfg.PhaseGens && s.llBudgetLeft(cfg.LLPopSize); g++ {
			s.lowerGeneration()
		}
		// Line 8: co-evolution — random cross pairings.
		s.coevolution()
		// Line 9: re-inject archive members.
		s.injectFromArchives()
	}

	s.res.ULEvals, s.res.LLEvals = s.ulUsed, s.llUsed
	if be, ok := s.archU.Best(); ok {
		s.res.BestPrice = be.Item
		s.res.BestRevenue = be.Fitness
	}
	if be, ok := s.archL.Best(); ok {
		s.res.BestLLCost = be.Fitness
		s.res.BestGapPct = be.Item.gapPct
	}
	s.res.MinGapPct = s.res.BestGapPct
	for _, e := range s.archL.Entries() {
		if e.Item.gapPct < s.res.MinGapPct {
			s.res.MinGapPct = e.Item.gapPct
		}
	}
	return s.res, nil
}

func (s *state) ulBudgetLeft(n int) bool { return s.ulUsed+n <= s.cfg.ULEvalBudget }
func (s *state) llBudgetLeft(n int) bool { return s.llUsed+n <= s.cfg.LLEvalBudget }

// evalUpper scores every upper individual against the frozen best
// basket.
func (s *state) evalUpper() {
	partner := s.bestY
	evalStriped(len(s.popU), s.workers, func(i, w int) {
		out, _, err := s.evs[w].EvalSelection(s.popU[i], partner)
		if err != nil {
			panic(fmt.Sprintf("cobra: upper evaluation: %v", err))
		}
		s.fitU[i] = out.Revenue
	})
	s.ulUsed += len(s.popU)
}

// evalLower scores every lower individual against the frozen best
// pricing. Fitness is the repaired follower cost f — deliberately NOT
// the gap (see the package comment).
func (s *state) evalLower() {
	partner := s.bestX
	evalStriped(len(s.popL), s.workers, func(i, w int) {
		out, _, err := s.evs[w].EvalSelection(partner, s.popL[i])
		if err != nil {
			panic(fmt.Sprintf("cobra: lower evaluation: %v", err))
		}
		s.fitL[i] = out.LLCost
		s.gapL[i] = out.GapPct
	})
	s.llUsed += len(s.popL)
}

func (s *state) upperGeneration() {
	cfg := s.cfg
	s.evalUpper()
	bestI := 0
	for i := range s.fitU {
		if s.fitU[i] > s.fitU[bestI] {
			bestI = i
		}
	}
	s.bestX = append(s.bestX[:0], s.popU[bestI]...)
	for i, x := range s.popU {
		s.archU.Add(append([]float64(nil), x...), s.fitU[i])
	}
	s.record()
	s.popU = breedUpper(s.r, s.popU, s.fitU, s.mk.PriceBounds(), cfg)
	s.res.Gens++
}

func (s *state) lowerGeneration() {
	cfg := s.cfg
	s.evalLower()
	bestI := 0
	for i := range s.fitL {
		if s.fitL[i] < s.fitL[bestI] {
			bestI = i
		}
	}
	s.bestY = append(s.bestY[:0], s.popL[bestI]...)
	for i, y := range s.popL {
		s.archL.Add(llEntry{x: append([]bool(nil), y...), gapPct: s.gapL[i]}, s.fitL[i])
	}
	s.record()
	s.popL = breedLower(s.r, s.popL, s.fitL, cfg)
	s.res.Gens++
}

// coevolution evaluates random cross pairings (x_i, y_j) of the two
// populations and archives what it finds — the "random co-evolutionary
// operator" of [32].
func (s *state) coevolution() {
	cfg := s.cfg
	type pair struct{ u, l int }
	pairs := make([]pair, 0, cfg.CoevPairs)
	for k := 0; k < cfg.CoevPairs; k++ {
		if !s.ulBudgetLeft(len(pairs)+1) || !s.llBudgetLeft(len(pairs)+1) {
			break
		}
		pairs = append(pairs, pair{s.r.Intn(len(s.popU)), s.r.Intn(len(s.popL))})
	}
	if len(pairs) == 0 {
		return
	}
	type outcome struct {
		rev, cost, gap float64
	}
	outs := make([]outcome, len(pairs))
	evalStriped(len(pairs), s.workers, func(i, w int) {
		p := pairs[i]
		out, _, err := s.evs[w].EvalSelection(s.popU[p.u], s.popL[p.l])
		if err != nil {
			panic(fmt.Sprintf("cobra: coevolution: %v", err))
		}
		outs[i] = outcome{rev: out.Revenue, cost: out.LLCost, gap: out.GapPct}
	})
	s.ulUsed += len(pairs)
	s.llUsed += len(pairs)
	for i, p := range pairs {
		s.archU.Add(append([]float64(nil), s.popU[p.u]...), outs[i].rev)
		s.archL.Add(llEntry{x: append([]bool(nil), s.popL[p.l]...), gapPct: outs[i].gap}, outs[i].cost)
		if outs[i].rev > s.bestRevenueSoFar() {
			s.bestX = append(s.bestX[:0], s.popU[p.u]...)
		}
	}
}

func (s *state) bestRevenueSoFar() float64 {
	if be, ok := s.archU.Best(); ok {
		return be.Fitness
	}
	return -1
}

// injectFromArchives overwrites the worst members of each population
// with the top archive entries (Algorithm 1 line 9).
func (s *state) injectFromArchives() {
	k := s.cfg.ArchiveInject
	for i := 0; i < k && i < s.archU.Len(); i++ {
		worst := worstIndex(s.fitU, true)
		s.popU[worst] = append([]float64(nil), s.archU.At(i).Item...)
		s.fitU[worst] = s.archU.At(i).Fitness
	}
	for i := 0; i < k && i < s.archL.Len(); i++ {
		worst := worstIndex(s.fitL, false)
		s.popL[worst] = append([]bool(nil), s.archL.At(i).Item.x...)
		s.fitL[worst] = s.archL.At(i).Fitness
	}
}

// worstIndex finds the worst member (maximize=true means fitness is
// maximized, so worst is the minimum).
func worstIndex(fit []float64, maximize bool) int {
	w := 0
	for i := range fit {
		if maximize && fit[i] < fit[w] || !maximize && fit[i] > fit[w] {
			w = i
		}
	}
	return w
}

// record appends the per-generation curves: the best revenue observed in
// the current upper population and the gap of the current best basket
// re-measured against the current best pricing. The re-measurement is
// charged to the LL budget (1 evaluation) to keep accounting honest.
func (s *state) record() {
	x := float64(s.ulUsed + s.llUsed)
	bestF := s.fitU[0]
	for _, f := range s.fitU {
		if f > bestF {
			bestF = f
		}
	}
	s.res.ULCurve.X = append(s.res.ULCurve.X, x)
	s.res.ULCurve.Y = append(s.res.ULCurve.Y, bestF)

	if s.llBudgetLeft(1) {
		out, _, err := s.evs[0].EvalSelection(s.bestX, s.bestY)
		if err == nil {
			s.llUsed++
			s.res.GapCurve.X = append(s.res.GapCurve.X, x)
			s.res.GapCurve.Y = append(s.res.GapCurve.Y, out.GapPct)
		}
	}
}

func breedUpper(r *rng.Rand, pop [][]float64, fit []float64, bounds ga.Bounds, cfg Config) [][]float64 {
	better := func(i, j int) bool { return fit[i] > fit[j] }
	next := make([][]float64, 0, len(pop))
	for _, e := range topK(fit, cfg.Elites, better) {
		next = append(next, append([]float64(nil), pop[e]...))
	}
	for len(next) < len(pop) {
		p1 := pop[ga.BinaryTournament(r, len(pop), better)]
		p2 := pop[ga.BinaryTournament(r, len(pop), better)]
		var c1, c2 []float64
		if r.Bool(cfg.ULCrossoverProb) {
			c1, c2 = ga.SBX(r, p1, p2, bounds, cfg.ULSBXEta)
		} else {
			c1 = append([]float64(nil), p1...)
			c2 = append([]float64(nil), p2...)
		}
		ga.PolynomialMutateInPlace(r, c1, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		ga.PolynomialMutateInPlace(r, c2, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		next = append(next, c1)
		if len(next) < len(pop) {
			next = append(next, c2)
		}
	}
	return next
}

func breedLower(r *rng.Rand, pop [][]bool, fit []float64, cfg Config) [][]bool {
	better := func(i, j int) bool { return fit[i] < fit[j] }
	next := make([][]bool, 0, len(pop))
	for _, e := range topK(fit, cfg.Elites, better) {
		next = append(next, append([]bool(nil), pop[e]...))
	}
	for len(next) < len(pop) {
		p1 := pop[ga.BinaryTournament(r, len(pop), better)]
		p2 := pop[ga.BinaryTournament(r, len(pop), better)]
		var c1, c2 []bool
		if r.Bool(cfg.LLCrossoverProb) {
			c1, c2 = ga.TwoPointCrossover(r, p1, p2)
		} else {
			c1 = append([]bool(nil), p1...)
			c2 = append([]bool(nil), p2...)
		}
		ga.SwapMutateInPlace(r, c1, cfg.LLMutationProb)
		ga.SwapMutateInPlace(r, c2, cfg.LLMutationProb)
		next = append(next, c1)
		if len(next) < len(pop) {
			next = append(next, c2)
		}
	}
	return next
}

// topK returns the indices of the k best individuals under better.
func topK(fit []float64, k int, better func(i, j int) bool) []int {
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	for sel := 0; sel < k && sel < len(idx); sel++ {
		best := sel
		for i := sel + 1; i < len(idx); i++ {
			if better(idx[i], idx[best]) {
				best = i
			}
		}
		idx[sel], idx[best] = idx[best], idx[sel]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// evalStriped mirrors core.evalStriped: one contiguous stripe per worker
// so each stripe owns its warm LP solver; results land by index.
func evalStriped(n, workers int, fn func(i, worker int)) {
	if workers > n {
		workers = n
	}
	par.ForEach(workers, workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		for i := lo; i < hi; i++ {
			fn(i, w)
		}
	})
}
