package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(300, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sampleChart() *Chart {
	return &Chart{
		Title:  "CARBON convergence",
		XLabel: "evaluations",
		YLabel: "best F",
		Series: []Series{
			{Label: "UL fitness", X: []float64{0, 100, 200, 300}, Y: []float64{1, 4, 8, 9}},
			{Label: "gap", X: []float64{0, 100, 200, 300}, Y: []float64{9, 5, 3, 2}, Dash: true},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	wellFormed(t, sampleChart().SVG())
}

func TestSVGContainsContent(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{
		"CARBON convergence", "evaluations", "best F",
		"UL fitness", "gap", "polyline", "stroke-dasharray",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("%d polylines, want 2", got)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`, Series: []Series{{Label: "x>y", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Fatal("title not escaped")
	}
}

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	wellFormed(t, c.SVG())
}

func TestFlatSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Label: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}}}
	wellFormed(t, c.SVG())
}

func TestNaNPointsSkipped(t *testing.T) {
	c := &Chart{Series: []Series{{
		Label: "holes",
		X:     []float64{0, 1, 2, 3},
		Y:     []float64{1, math.NaN(), 3, 4},
	}}}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestStack(t *testing.T) {
	svg := Stack(640, 280, sampleChart(), sampleChart())
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Fatalf("%d polylines in stack, want 4", got)
	}
	if got := strings.Count(svg, "<svg"); got != 1 {
		t.Fatalf("stack must be a single SVG document, got %d roots", got)
	}
}

func TestTicksCoverRange(t *testing.T) {
	cases := []struct{ lo, hi float64 }{
		{0, 10}, {0, 1}, {-5, 5}, {3, 3.001}, {0, 1e6}, {-1e-4, 1e-4}, {17, 93},
	}
	for _, c := range cases {
		ticks := Ticks(c.lo, c.hi, 6)
		if len(ticks) < 2 {
			t.Fatalf("[%v,%v]: only %d ticks", c.lo, c.hi, len(ticks))
		}
		for _, v := range ticks {
			if v < c.lo-1e-9*(math.Abs(c.lo)+1) || v > c.hi+1e-9*(math.Abs(c.hi)+1) {
				t.Fatalf("[%v,%v]: tick %v out of range", c.lo, c.hi, v)
			}
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Fatalf("ticks not increasing: %v", ticks)
			}
		}
	}
}

func TestTicksDegenerate(t *testing.T) {
	if got := Ticks(5, 5, 6); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate ticks: %v", got)
	}
	if got := Ticks(10, 0, 4); len(got) < 2 {
		t.Fatalf("swapped range: %v", got)
	}
}

func TestTicksProperty(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		lo, hi := float64(aRaw), float64(bRaw)
		ticks := Ticks(lo, hi, 5)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, v := range ticks {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return len(ticks) >= 1 && len(ticks) <= 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1.2: 2, 3: 5, 7: 10, 15: 20, 42: 50, 99: 100, 0.03: 0.05,
	}
	for raw, want := range cases {
		if got := niceStep(raw); math.Abs(got-want) > 1e-12*want {
			t.Fatalf("niceStep(%v) = %v, want %v", raw, got, want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.5e+06",
		250:     "250",
		0.5:     "0.5",
		2:       "2",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
