// Package plot renders line charts as standalone SVG documents using
// only the standard library. It exists so cmd/blbench can write the
// paper's Figures 4 and 5 (convergence curves) as real graphics next to
// the CSV and ASCII outputs.
//
// The feature set is deliberately small — axes with nice ticks, multiple
// polyline series with a legend, optional dashing — but the output is
// well-formed XML (tests parse it back) and renders in any browser.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Label string
	X, Y  []float64
	Color string // CSS color; defaults cycle through a palette
	Dash  bool   // dashed stroke
}

// Chart is a single XY line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int // pixel size; defaults 640×360
	Series []Series
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Line builds a single-series chart — the common case for quick looks
// at a telemetry trace or any other (x, y) series.
func Line(title, xlabel, ylabel, label string, x, y []float64) *Chart {
	return &Chart{
		Title:  title,
		XLabel: xlabel,
		YLabel: ylabel,
		Series: []Series{{Label: label, X: x, Y: y}},
	}
}

const (
	marginL = 64
	marginR = 16
	marginT = 32
	marginB = 44
)

// SVG renders the chart. Charts with no drawable points render an empty
// frame with the title, never invalid output.
func (c *Chart) SVG() string {
	w, h := c.W, c.H
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	c.render(&b, 0, 0, w, h)
	b.WriteString(`</svg>`)
	return b.String()
}

// render draws the chart into the rectangle (x0,y0,w,h) of an open SVG.
func (c *Chart) render(b *strings.Builder, x0, y0, w, h int) {
	plotX0 := x0 + marginL
	plotY0 := y0 + marginT
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB

	xmin, xmax, ymin, ymax := c.dataRange()
	haveData := !math.IsInf(xmin, 1)
	if !haveData {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 {
		return float64(plotX0) + (x-xmin)/(xmax-xmin)*float64(plotW)
	}
	py := func(y float64) float64 {
		return float64(plotY0) + (ymax-y)/(ymax-ymin)*float64(plotH)
	}

	// Title and axis labels.
	if c.Title != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
			plotX0, y0+18, escape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
			plotX0+plotW/2, y0+h-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		cx, cy := x0+14, plotY0+plotH/2
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 %d %d)">%s</text>`,
			cx, cy, cx, cy, escape(c.YLabel))
	}

	// Frame.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333" stroke-width="1"/>`,
		plotX0, plotY0, plotW, plotH)

	// Ticks and grid lines.
	for _, tx := range Ticks(xmin, xmax, 6) {
		X := px(tx)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`,
			X, plotY0, X, plotY0+plotH)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			X, plotY0+plotH+14, formatTick(tx))
	}
	for _, ty := range Ticks(ymin, ymax, 5) {
		Y := py(ty)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			plotX0, Y, plotX0+plotW, Y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			plotX0-6, Y+3, formatTick(ty))
	}

	// Series polylines.
	for si, s := range c.Series {
		if len(s.X) == 0 {
			continue
		}
		color := s.Color
		if color == "" {
			color = palette[si%len(palette)]
		}
		dash := ""
		if s.Dash {
			dash = ` stroke-dasharray="6 3"`
		}
		var pts strings.Builder
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"%s/>`,
			strings.TrimSpace(pts.String()), color, dash)
		// Legend.
		lx, ly := plotX0+plotW-150, plotY0+14+16*si
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`,
			lx, ly-4, lx+22, ly-4, color, dash)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`,
			lx+28, ly, escape(s.Label))
	}
}

func (c *Chart) dataRange() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	return
}

// Stack renders several charts stacked vertically into one SVG document.
func Stack(w, hEach int, charts ...*Chart) string {
	if w <= 0 {
		w = 640
	}
	if hEach <= 0 {
		hEach = 300
	}
	var b strings.Builder
	total := hEach * len(charts)
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, total, w, total)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	for i, c := range charts {
		c.render(&b, 0, i*hEach, w, hEach)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Ticks returns ~n "nice" tick positions covering [lo, hi].
func Ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return []float64{lo}
	}
	step := niceStep(span / float64(n))
	start := math.Ceil(lo/step) * step
	var out []float64
	for v := start; v <= hi+step*1e-9; v += step {
		// Snap near-zero ticks produced by float drift.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		out = append(out, v)
	}
	return out
}

// niceStep rounds a raw step to 1, 2 or 5 times a power of ten.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch frac := raw / mag; {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
