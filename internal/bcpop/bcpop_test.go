package bcpop

import (
	"math"
	"testing"

	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
)

// testMarket builds a small deterministic market.
func testMarket(t testing.TB, n, m, l int) *Market {
	t.Helper()
	in, err := orlib.GenerateCovering(orlib.Class{N: n, M: m}, 7)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := NewMarket(in, l)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func TestNewMarketValidation(t *testing.T) {
	in, err := orlib.GenerateCovering(orlib.Class{N: 20, M: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMarket(nil, 2); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := NewMarket(in, 0); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := NewMarket(in, 20); err == nil {
		t.Fatal("L=M accepted")
	}
	if _, err := NewMarket(in, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMarketGeometry(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	if mk.Leaders() != 3 || mk.Bundles() != 30 || mk.Services() != 5 {
		t.Fatalf("geometry %d/%d/%d", mk.Leaders(), mk.Bundles(), mk.Services())
	}
	b := mk.PriceBounds()
	if err := b.Validate(3); err != nil {
		t.Fatal(err)
	}
	// Upper bound anchored at twice the mean competitor price.
	mean := 0.0
	for j := 3; j < 30; j++ {
		mean += mk.Template().C[j]
	}
	mean /= 27
	for j := 0; j < 3; j++ {
		if b.Lo[j] != 0 {
			t.Fatalf("price lower bound %v", b.Lo[j])
		}
		if math.Abs(b.Up[j]-2*mean) > 1e-9 {
			t.Fatalf("price cap %v, want %v", b.Up[j], 2*mean)
		}
	}
}

func TestNewMarketFromClass(t *testing.T) {
	mk, err := NewMarketFromClass(orlib.Class{N: 100, M: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Leaders() != 10 {
		t.Fatalf("L = %d, want 10%% of 100", mk.Leaders())
	}
}

func TestCostsComposition(t *testing.T) {
	mk := testMarket(t, 25, 5, 4)
	price := []float64{1.5, 2.5, 3.5, 4.5}
	costs, err := mk.Costs(price, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if costs[j] != price[j] {
			t.Fatalf("leader price %d not applied", j)
		}
	}
	for j := 4; j < 25; j++ {
		if costs[j] != mk.Template().C[j] {
			t.Fatalf("competitor price %d changed", j)
		}
	}
	if _, err := mk.Costs([]float64{1}, nil); err == nil {
		t.Fatal("wrong-length prices accepted")
	}
	// Buffer reuse path.
	buf := make([]float64, 25)
	costs2, err := mk.Costs(price, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &costs2[0] != &buf[0] {
		t.Fatal("provided buffer not reused")
	}
}

func TestInducedInstanceIndependence(t *testing.T) {
	mk := testMarket(t, 25, 5, 4)
	a, err := mk.Induced([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bIn, err := mk.Induced([]float64{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.C[0] != 1 || bIn.C[0] != 9 {
		t.Fatal("induced instances share cost storage")
	}
	if &a.Q[0][0] != &bIn.Q[0][0] {
		t.Fatal("induced instances should share the matrix")
	}
}

func TestRevenueCountsOnlyLeaderBundles(t *testing.T) {
	mk := testMarket(t, 25, 5, 4)
	price := []float64{10, 20, 30, 40}
	x := make([]bool, 25)
	x[0] = true  // leader bundle: counts
	x[2] = true  // leader bundle: counts
	x[10] = true // competitor: ignored
	if got := mk.Revenue(price, x); got != 40 {
		t.Fatalf("Revenue = %v, want 40", got)
	}
}

func TestEvalTree(t *testing.T) {
	mk := testMarket(t, 40, 5, 4)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	price := mk.PriceBounds().RandomVector(r)
	tree := gp.MustParse(set, "(% (* q d) c)")
	res, basket, err := ev.EvalTree(price, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("dual-guided heuristic infeasible on feasible market")
	}
	if res.GapPct < -1e-9 {
		t.Fatalf("negative gap %v", res.GapPct)
	}
	if res.LB <= 0 {
		t.Fatalf("LB = %v", res.LB)
	}
	if res.LLCost < res.LB-1e-6 {
		t.Fatalf("LL cost %v below bound %v", res.LLCost, res.LB)
	}
	// Revenue must equal the hand-computed priced basket.
	if got := mk.Revenue(price, basket); math.Abs(got-res.Revenue) > 1e-9 {
		t.Fatalf("revenue %v vs recomputed %v", res.Revenue, got)
	}
	if ev.Evals != 1 {
		t.Fatalf("eval counter = %d", ev.Evals)
	}
}

func TestEvalSelectionRepairs(t *testing.T) {
	mk := testMarket(t, 40, 5, 4)
	ev, err := NewEvaluator(mk, covering.TableISet())
	if err != nil {
		t.Fatal(err)
	}
	price := make([]float64, 4)
	for j := range price {
		price[j] = 5
	}
	empty := make([]bool, 40)
	res, basket, err := ev.EvalSelection(price, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("repair failed")
	}
	induced, err := mk.Induced(price)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.SelectionFeasible(basket) {
		t.Fatal("repaired basket infeasible on induced instance")
	}
	if math.Abs(res.LLCost-induced.SelectionCost(basket)) > 1e-9 {
		t.Fatalf("LL cost %v vs %v", res.LLCost, induced.SelectionCost(basket))
	}
}

func TestCheaperLeaderEarnsMoreRevenueOnAverage(t *testing.T) {
	// Economic sanity: pricing leader bundles at the cap prices them out
	// of most baskets; pricing below the market mean gets them bought.
	mk := testMarket(t, 60, 5, 6)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	tree := gp.MustParse(set, "(% (* q d) c)")
	b := mk.PriceBounds()
	cheap := make([]float64, 6)
	expensive := make([]float64, 6)
	for j := range cheap {
		cheap[j] = b.Up[j] * 0.25
		expensive[j] = b.Up[j] * 0.999
	}
	rc, basketCheap, err := ev.EvalTree(cheap, tree)
	if err != nil {
		t.Fatal(err)
	}
	re, basketExp, err := ev.EvalTree(expensive, tree)
	if err != nil {
		t.Fatal(err)
	}
	nCheap, nExp := 0, 0
	for j := 0; j < 6; j++ {
		if basketCheap[j] {
			nCheap++
		}
		if basketExp[j] {
			nExp++
		}
	}
	if nCheap < nExp {
		t.Fatalf("cheap leader sold %d bundles, expensive sold %d", nCheap, nExp)
	}
	_ = rc
	_ = re
}

func TestGapDependsOnHeuristicNotPrice(t *testing.T) {
	// The same heuristic applied across different prices should keep
	// gaps in a comparable (small) range — the paper's core argument for
	// gap-based predator fitness.
	mk := testMarket(t, 50, 10, 5)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	tree := gp.MustParse(set, "(% (* q d) c)")
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		price := mk.PriceBounds().RandomVector(r)
		res, _, err := ev.EvalTree(price, tree)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatal("infeasible")
		}
		if res.GapPct > 100 {
			t.Fatalf("dual-guided gap blew up: %v%%", res.GapPct)
		}
	}
}

func BenchmarkEvalTree500x30(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	tree := set.Ramped(r, 2, 5)
	price := mk.PriceBounds().RandomVector(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.EvalTree(price, tree); err != nil {
			b.Fatal(err)
		}
	}
}
