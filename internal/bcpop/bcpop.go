// Package bcpop models the Bi-level Cloud Pricing Optimization Problem
// (Program 2 in the paper):
//
//	max  F = Σ_{j≤L} cⱼ·xⱼ          (leader: revenue on its own bundles)
//	s.t. min f = Σ_{j≤M} cⱼ·xⱼ      (follower: cheapest covering basket)
//	     s.t. Σⱼ qⱼᵏ·xⱼ ≥ bᵏ  ∀k
//	          cⱼ ≥ 0 for j ≤ L,  xⱼ ∈ {0,1}
//
// A Market fixes the covering matrix Q, the requirements b and the
// competitors' bundle prices; the leader's decision vector re-prices the
// first L bundles. Every pricing decision therefore *induces* a fresh
// lower-level covering instance — the epistatic coupling the paper's
// co-evolution must cope with.
//
// The Evaluator bundles the warm LP relaxer, the GP scorer and the
// greedy into the single operation both CARBON and COBRA account as one
// fitness evaluation: pair an upper-level pricing with a lower-level
// answer (a generated heuristic's basket, or a raw binary vector) and
// report leader revenue F, follower cost f, the LP bound LB(x) and the
// paper's Eq. 1 %-gap.
package bcpop

import (
	"errors"
	"fmt"
	"time"

	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
	"carbon/internal/telemetry"
)

// Market is a BCPOP instance: a covering template in which some columns
// are leader-owned and re-priced by the decision vector. The template's
// costs give the competitors' (fixed) prices; leader entries of the
// template cost vector only serve as the anchor for price bounds.
//
// priceMap generalizes "the first L columns are the leader's": column c
// is priced by decision gene priceMap[c] (−1 marks competitor columns).
// The single-customer market of Program 2 maps columns 0..L−1 to genes
// 0..L−1; the multi-customer extension maps each customer's copy of
// leader bundle j to the same gene j, so one price is quoted to every
// customer and revenue counts every purchase.
type Market struct {
	template  *covering.Instance
	L         int       // number of price genes
	priceMap  []int     // per column: price gene or -1
	customers int       // block count (1 for the paper's single-CSC model)
	bounds    ga.Bounds // leader price bounds, length L
}

// PriceCapFactor scales the upper bound of leader prices: each leader
// bundle may be priced up to PriceCapFactor times the mean competitor
// price. Prices far above every alternative are never bought, so the
// cap keeps the search space meaningful without cutting off the optimum.
const PriceCapFactor = 2.0

// LeaderShare is the fraction of market bundles owned by the leader
// (L = max(1, N·LeaderShare)); the paper does not state L, see DESIGN.md.
const LeaderShare = 0.10

// NewMarket wraps a covering instance as a single-customer BCPOP market
// whose first leaderBundles columns are the leader's (Program 2).
func NewMarket(in *covering.Instance, leaderBundles int) (*Market, error) {
	if in == nil {
		return nil, errors.New("bcpop: nil instance")
	}
	if leaderBundles <= 0 || leaderBundles >= in.M() {
		return nil, fmt.Errorf("bcpop: leader bundles %d outside (0,%d)", leaderBundles, in.M())
	}
	priceMap := make([]int, in.M())
	for c := range priceMap {
		if c < leaderBundles {
			priceMap[c] = c
		} else {
			priceMap[c] = -1
		}
	}
	return newMarket(in, leaderBundles, priceMap, 1)
}

// newMarket finishes construction: feasibility check and price bounds
// anchored at the mean competitor price.
func newMarket(in *covering.Instance, nPrices int, priceMap []int, customers int) (*Market, error) {
	if !in.FullSelectionFeasible() {
		return nil, errors.New("bcpop: market cannot cover the requirements")
	}
	mean, n := 0.0, 0
	for c, g := range priceMap {
		if g < 0 {
			mean += in.C[c]
			n++
		}
	}
	if n == 0 {
		return nil, errors.New("bcpop: no competitor bundles to anchor price bounds")
	}
	mean /= float64(n)
	lo := make([]float64, nPrices)
	up := make([]float64, nPrices)
	for j := range up {
		up[j] = PriceCapFactor * mean
	}
	return &Market{
		template:  in,
		L:         nPrices,
		priceMap:  priceMap,
		customers: customers,
		bounds:    ga.Bounds{Lo: lo, Up: up},
	}, nil
}

// NewMultiMarket builds the multi-customer extension of Program 2
// (lifting the paper's "for the sake of simplicity, we will consider a
// single rational CSC"): `customers` independent rational CSCs share the
// same market and see the same leader prices, but each has its own
// requirement vector — the base requirements perturbed per-entry by a
// uniform factor in [1−variation, 1+variation], clamped to keep every
// customer's block coverable.
//
// The combined lower level is one block-diagonal covering instance:
// customer i owns columns [i·M, (i+1)·M) and rows [i·N, (i+1)·N). A
// leader bundle bought by several customers earns its price once per
// purchase.
func NewMultiMarket(in *covering.Instance, leaderBundles, customers int, variation float64, seed uint64) (*Market, error) {
	if in == nil {
		return nil, errors.New("bcpop: nil instance")
	}
	if leaderBundles <= 0 || leaderBundles >= in.M() {
		return nil, fmt.Errorf("bcpop: leader bundles %d outside (0,%d)", leaderBundles, in.M())
	}
	if customers < 1 {
		return nil, fmt.Errorf("bcpop: %d customers", customers)
	}
	if variation < 0 || variation >= 1 {
		return nil, fmt.Errorf("bcpop: variation %v outside [0,1)", variation)
	}
	m, n := in.M(), in.N()
	r := rng.New(seed)

	cTot := make([]float64, customers*m)
	qTot := make([][]float64, customers*n)
	bTot := make([]float64, customers*n)
	priceMap := make([]int, customers*m)
	for i := 0; i < customers; i++ {
		copy(cTot[i*m:(i+1)*m], in.C)
		for j := 0; j < m; j++ {
			if j < leaderBundles {
				priceMap[i*m+j] = j
			} else {
				priceMap[i*m+j] = -1
			}
		}
		for k := 0; k < n; k++ {
			row := make([]float64, customers*m)
			copy(row[i*m:(i+1)*m], in.Q[k])
			qTot[i*n+k] = row
			rowSum := 0.0
			for _, v := range in.Q[k] {
				rowSum += v
			}
			b := in.B[k] * r.Range(1-variation, 1+variation)
			if b < 1 {
				b = 1
			}
			if b > rowSum {
				b = rowSum // keep the block coverable
			}
			bTot[i*n+k] = b
		}
	}
	block, err := covering.New(cTot, qTot, bTot)
	if err != nil {
		return nil, err
	}
	return newMarket(block, leaderBundles, priceMap, customers)
}

// NewMarketFromClass generates the market for one of the paper's nine
// classes: the class instance with L = N·LeaderShare leader bundles.
func NewMarketFromClass(cl orlib.Class, index int) (*Market, error) {
	in, err := orlib.GenerateCovering(cl, index)
	if err != nil {
		return nil, err
	}
	l := int(float64(cl.N) * LeaderShare)
	if l < 1 {
		l = 1
	}
	return NewMarket(in, l)
}

// Leaders returns L, the length of the leader's price vector.
func (mk *Market) Leaders() int { return mk.L }

// Customers returns the number of independent follower blocks (1 for
// the paper's single-CSC model).
func (mk *Market) Customers() int { return mk.customers }

// Bundles returns M, the total number of bundles on the market.
func (mk *Market) Bundles() int { return mk.template.M() }

// Services returns N, the number of service requirements.
func (mk *Market) Services() int { return mk.template.N() }

// PriceBounds returns the box constraints of the leader's price vector.
func (mk *Market) PriceBounds() ga.Bounds { return mk.bounds }

// Template exposes the underlying covering instance (competitor costs in
// C[L:], leader placeholders in C[:L]).
func (mk *Market) Template() *covering.Instance { return mk.template }

// Costs writes the full lower-level cost vector for a pricing decision
// into dst (allocating when dst is short) and returns it.
func (mk *Market) Costs(price []float64, dst []float64) ([]float64, error) {
	if len(price) != mk.L {
		return nil, fmt.Errorf("bcpop: got %d prices, want %d", len(price), mk.L)
	}
	m := mk.template.M()
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	for c, g := range mk.priceMap {
		if g >= 0 {
			dst[c] = price[g]
		} else {
			dst[c] = mk.template.C[c]
		}
	}
	return dst, nil
}

// Induced returns the lower-level covering instance for a pricing
// decision (a fresh cost vector sharing the market matrix).
func (mk *Market) Induced(price []float64) (*covering.Instance, error) {
	costs, err := mk.Costs(price, nil)
	if err != nil {
		return nil, err
	}
	return mk.template.WithCosts(costs)
}

// Revenue computes the leader objective F: the priced value of leader
// bundles inside the follower basket(s). With multiple customers a
// bundle earns its price once per purchasing customer.
func (mk *Market) Revenue(price []float64, x []bool) float64 {
	f := 0.0
	for c, g := range mk.priceMap {
		if g >= 0 && x[c] {
			f += price[g]
		}
	}
	return f
}

// Result is one paired bi-level evaluation.
type Result struct {
	Revenue  float64 // F(x,y): leader revenue under the follower basket
	LLCost   float64 // f(x,y): follower total cost
	LB       float64 // LB(x): LP-relaxation lower bound of the induced LL
	GapPct   float64 // Eq. 1: 100·(f−LB)/LB
	Feasible bool    // the follower answer covers all requirements
}

// EvalMetrics aggregates evaluator hot-path telemetry. All fields are
// atomic, so one EvalMetrics is deliberately shared by every per-worker
// evaluator of a run — the counters report whole-run totals. A nil
// *EvalMetrics disables instrumentation (no clock reads on the hot
// path).
type EvalMetrics struct {
	TreeEvals   *telemetry.Counter   // EvalTree/EvalTreeWith calls (GP tree walks + greedy)
	GraspEvals  *telemetry.Counter   // GRASP starts charged as LL evals
	SelEvals    *telemetry.Counter   // raw-selection (COBRA-style) evaluations
	LPSolves    *telemetry.Counter   // real LP relaxation solves of induced instances
	CacheHits   *telemetry.Counter   // evaluations served from a Prepared context (no solve)
	CacheMisses *telemetry.Counter   // Prepared contexts built (one real solve each)
	Elims       *telemetry.Counter   // redundancy-elimination passes run
	Infeasible  *telemetry.Counter   // follower answers that failed to cover
	EvalTime    *telemetry.Timer     // latency of one paired evaluation
	EvalLatency *telemetry.Histogram // same latency, µs buckets
	GapPct      *telemetry.Histogram // %-gap distribution of feasible answers
	Faults      *telemetry.Counter   // evaluations quarantined after an LP/heuristic failure
}

// NewEvalMetrics registers the evaluator instruments in reg under the
// "bcpop." prefix. A nil registry yields nil (telemetry off).
func NewEvalMetrics(reg *telemetry.Registry) *EvalMetrics {
	if reg == nil {
		return nil
	}
	return &EvalMetrics{
		TreeEvals:   reg.Counter("bcpop.tree_evals"),
		GraspEvals:  reg.Counter("bcpop.grasp_evals"),
		SelEvals:    reg.Counter("bcpop.selection_evals"),
		LPSolves:    reg.Counter("bcpop.lp_solves"),
		CacheHits:   reg.Counter("bcpop.cache_hits"),
		CacheMisses: reg.Counter("bcpop.cache_misses"),
		Elims:       reg.Counter("bcpop.eliminations"),
		Infeasible:  reg.Counter("bcpop.infeasible"),
		EvalTime:    reg.Timer("bcpop.eval_time"),
		EvalLatency: reg.Histogram("bcpop.eval_latency_us", telemetry.ExpBuckets(10, 2, 16)...),
		GapPct:      reg.Histogram("bcpop.gap_pct", 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500),
		Faults:      reg.Counter("bcpop.eval_faults"),
	}
}

// observe records one finished paired evaluation.
func (m *EvalMetrics) observe(t0 time.Time, out Result) {
	d := time.Since(t0)
	m.EvalTime.Observe(d)
	m.EvalLatency.Observe(float64(d) / float64(time.Microsecond))
	if out.Feasible {
		m.GapPct.Observe(out.GapPct)
	} else {
		m.Infeasible.Inc()
	}
}

// Evaluator performs paired evaluations against one market. It owns a
// warm LP relaxer and scratch buffers, so it is not safe for concurrent
// use — create one per worker (NewEvaluator is cheap relative to a run).
type Evaluator struct {
	mk      *Market
	relaxer *covering.Relaxer
	set     *gp.Set
	costs   []float64
	scores  []float64

	// Compiled-path scratch (DESIGN.md §5j): the bytecode VM, a program
	// arena reused by CompileTree, and the greedy's working buffers.
	// All grow once and are reused, so EvalProgramWith allocates
	// nothing in steady state.
	vm     *gp.VM
	prog   gp.Program
	greedy covering.GreedyScratch

	// Eliminate controls the greedy's redundancy-elimination pass
	// (default on; the ablation benchmark turns it off).
	Eliminate bool

	// Evals counts lower-level heuristic applications (the paper's LL
	// fitness evaluation unit).
	Evals int

	// Metrics, when non-nil, receives hot-path telemetry. It may be
	// shared with other evaluators (all updates are atomic).
	Metrics *EvalMetrics

	// EvalFault, when non-nil, is consulted at the start of every
	// cached paired evaluation (EvalTreeWith); a non-nil return aborts
	// that evaluation. It models heuristic-side failures the same way
	// the relaxer's fault hook models LP failures — fault injection
	// only, nil in production.
	EvalFault func() error
}

// NewEvaluator builds an evaluator for the market using the Table I
// primitive set semantics (set may extend Table I; its terminal layout
// must match covering.TableITerms).
func NewEvaluator(mk *Market, set *gp.Set) (*Evaluator, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	// The scorer hands every tree a covering.EnvLen-float environment.
	// A set declaring more terminals would let a (possibly decoded)
	// tree index past it at evaluation time, so reject it here — before
	// any tree over it can be evaluated.
	if len(set.Terms) > covering.EnvLen {
		return nil, fmt.Errorf("bcpop: primitive set declares %d terminals but the Table I scorer environment holds %d", len(set.Terms), covering.EnvLen)
	}
	relaxer, err := covering.NewRelaxer(mk.template)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		mk:        mk,
		relaxer:   relaxer,
		set:       set,
		costs:     make([]float64, mk.template.M()),
		scores:    make([]float64, mk.template.M()),
		vm:        gp.NewVM(),
		Eliminate: true,
	}, nil
}

// Market returns the evaluator's market.
func (ev *Evaluator) Market() *Market { return ev.mk }

// ResetWarm discards the warm-start LP basis so the next evaluation
// solves cold. Called by the engine at generation boundaries to keep
// evaluation results independent of earlier generations' solver history
// (the checkpoint/resume determinism contract).
func (ev *Evaluator) ResetWarm() { ev.relaxer.Reset() }

// SetLPFault installs (or, with nil, clears) a fault hook on the
// evaluator's warm LP relaxer: consulted before every relaxation solve,
// a non-nil return fails that solve without disturbing solver state.
// Fault injection only; never set in production.
func (ev *Evaluator) SetLPFault(h func() error) { ev.relaxer.SetFault(h) }

// Relax computes the LP relaxation of the induced instance for a pricing
// decision. The returned Relaxation aliases solver state that is
// overwritten by the next Relax call.
func (ev *Evaluator) Relax(price []float64) (*covering.Relaxation, error) {
	if _, err := ev.mk.Costs(price, ev.costs); err != nil {
		return nil, err
	}
	if ev.Metrics != nil {
		ev.Metrics.LPSolves.Inc()
	}
	return ev.relaxer.Relax(ev.costs)
}

// EvalTree pairs a pricing decision with a generated heuristic: it
// relaxes the induced instance, scores items with the tree, runs the
// greedy and reports the paired Result plus the follower basket.
func (ev *Evaluator) EvalTree(price []float64, tree gp.Tree) (Result, []bool, error) {
	var t0 time.Time
	if ev.Metrics != nil {
		t0 = time.Now()
	}
	rx, err := ev.Relax(price)
	if err != nil {
		return Result{}, nil, err
	}
	work, err := ev.mk.template.WithCosts(ev.costs)
	if err != nil {
		return Result{}, nil, err
	}
	ts := covering.NewTreeScorer(ev.set, work, rx)
	ts.Score(tree, ev.scores)
	res := work.GreedyByScore(ev.scores, ev.Eliminate)
	ev.Evals++
	out := ev.result(price, rx, res)
	if m := ev.Metrics; m != nil {
		m.TreeEvals.Inc()
		if ev.Eliminate {
			m.Elims.Inc()
		}
		m.observe(t0, out)
	}
	return out, res.X, nil
}

// EvalGRASP pairs a pricing decision with a GRASP answer: `starts`
// randomized adaptive constructions (plus local search) on the induced
// instance, best kept. Each start is charged as one LL evaluation.
func (ev *Evaluator) EvalGRASP(price []float64, r *rng.Rand, starts int, alpha float64) (Result, []bool, error) {
	var t0 time.Time
	if ev.Metrics != nil {
		t0 = time.Now()
	}
	rx, err := ev.Relax(price)
	if err != nil {
		return Result{}, nil, err
	}
	work, err := ev.mk.template.WithCosts(ev.costs)
	if err != nil {
		return Result{}, nil, err
	}
	if starts < 1 {
		starts = 1
	}
	res := work.GRASPWithLS(r, starts, alpha)
	ev.Evals += starts
	out := ev.result(price, rx, res)
	if m := ev.Metrics; m != nil {
		m.GraspEvals.Add(int64(starts))
		m.observe(t0, out)
	}
	return out, res.X, nil
}

// EvalSelection pairs a pricing decision with an explicit follower
// selection (COBRA's raw binary vectors), repairing it to feasibility
// first. It returns the result and the (repaired) basket.
func (ev *Evaluator) EvalSelection(price []float64, x []bool) (Result, []bool, error) {
	var t0 time.Time
	if ev.Metrics != nil {
		t0 = time.Now()
	}
	rx, err := ev.Relax(price)
	if err != nil {
		return Result{}, nil, err
	}
	work, err := ev.mk.template.WithCosts(ev.costs)
	if err != nil {
		return Result{}, nil, err
	}
	res := work.Repair(x)
	ev.Evals++
	out := ev.result(price, rx, res)
	if m := ev.Metrics; m != nil {
		m.SelEvals.Inc()
		m.observe(t0, out)
	}
	return out, res.X, nil
}

func (ev *Evaluator) result(price []float64, rx *covering.Relaxation, res covering.GreedyResult) Result {
	out := Result{
		LLCost:   res.Cost,
		LB:       rx.LB,
		Feasible: res.Feasible,
	}
	if res.Feasible {
		out.GapPct = covering.Gap(res.Cost, rx.LB)
		out.Revenue = ev.mk.Revenue(price, res.X)
	} else {
		// An infeasible follower answer forecasts nothing: worst gap,
		// no revenue.
		out.GapPct = covering.Gap(res.Cost+1e9, rx.LB)
	}
	return out
}
