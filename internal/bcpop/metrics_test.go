package bcpop

import (
	"testing"

	"carbon/internal/covering"
	"carbon/internal/rng"
	"carbon/internal/telemetry"
)

// TestEvaluatorMetrics checks that the hot-path instruments count what
// actually happened, and that an uninstrumented evaluator (nil Metrics)
// behaves identically.
func TestEvaluatorMetrics(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	plain, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	metered, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	metered.Metrics = NewEvalMetrics(reg)

	r := rng.New(1)
	price := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(rng.New(2), 1, 3)

	outPlain, _, err := plain.EvalTree(price, tree)
	if err != nil {
		t.Fatal(err)
	}
	outMetered, _, err := metered.EvalTree(price, tree)
	if err != nil {
		t.Fatal(err)
	}
	if outPlain != outMetered {
		t.Fatalf("metrics changed the evaluation: %+v vs %+v", outPlain, outMetered)
	}
	if _, _, err := metered.EvalGRASP(price, rng.New(3), 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := metered.EvalSelection(price, make([]bool, mk.Bundles())); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("bcpop.tree_evals").Load(); got != 1 {
		t.Fatalf("tree_evals = %d, want 1", got)
	}
	if got := reg.Counter("bcpop.grasp_evals").Load(); got != 2 {
		t.Fatalf("grasp_evals = %d, want 2 (one per start)", got)
	}
	if got := reg.Counter("bcpop.selection_evals").Load(); got != 1 {
		t.Fatalf("selection_evals = %d, want 1", got)
	}
	if got := reg.Counter("bcpop.lp_solves").Load(); got != 3 {
		t.Fatalf("lp_solves = %d, want 3 (one per paired evaluation)", got)
	}
	if got := reg.Counter("bcpop.eliminations").Load(); got != 1 {
		t.Fatalf("eliminations = %d, want 1 (EvalTree with Eliminate on)", got)
	}
	if got := reg.Timer("bcpop.eval_time").Count(); got != 3 {
		t.Fatalf("eval_time observations = %d, want 3 (GRASP is one timed call)", got)
	}
	hist := reg.Histogram("bcpop.eval_latency_us").Snapshot()
	if hist.Count != 3 {
		t.Fatalf("latency histogram count = %d, want 3", hist.Count)
	}
	feasible := reg.Histogram("bcpop.gap_pct").Snapshot().Count
	infeasible := reg.Counter("bcpop.infeasible").Load()
	if feasible+infeasible != 3 {
		t.Fatalf("gap histogram (%d) + infeasible (%d) must cover all 3 paired evaluations",
			feasible, infeasible)
	}
}
