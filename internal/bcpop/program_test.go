package bcpop

import (
	"math"
	"testing"

	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/rng"
	"carbon/internal/telemetry"
)

// The compiled path must reproduce the interpreted path exactly:
// identical Result bits and identical baskets, across many random
// trees and pricing decisions.
func TestEvalProgramWithMatchesEvalTreeWith(t *testing.T) {
	mk := testMarket(t, 40, 25, 5)
	set := covering.TableISet()
	set.ConstProb, set.ConstMin, set.ConstMax = 0.25, -3, 3
	evTree, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	evProg, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		price := mk.PriceBounds().RandomVector(r)
		p, err := evTree.Prepare(price)
		if err != nil {
			t.Fatal(err)
		}
		tree := set.Ramped(r, 1, 5)
		want, wantX, err := evTree.EvalTreeWith(p, tree)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := evProg.CompileTree(tree)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		got, gotX, err := evProg.EvalProgramWith(p, prog)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want.Revenue) != math.Float64bits(got.Revenue) ||
			math.Float64bits(want.LLCost) != math.Float64bits(got.LLCost) ||
			math.Float64bits(want.LB) != math.Float64bits(got.LB) ||
			math.Float64bits(want.GapPct) != math.Float64bits(got.GapPct) ||
			want.Feasible != got.Feasible {
			t.Fatalf("trial %d (%s): interpreted %+v, compiled %+v",
				trial, tree.String(set), want, got)
		}
		if len(wantX) != len(gotX) {
			t.Fatalf("trial %d: basket lengths %d vs %d", trial, len(wantX), len(gotX))
		}
		for j := range wantX {
			if wantX[j] != gotX[j] {
				t.Fatalf("trial %d: baskets diverge at item %d", trial, j)
			}
		}
	}
}

// EvalProgramWith must charge the same accounting as EvalTreeWith: one
// LL evaluation, one tree_evals, one cache_hits, no LP solve.
func TestEvalProgramWithMetricsParity(t *testing.T) {
	mk := testMarket(t, 30, 20, 4)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ev.Metrics = NewEvalMetrics(reg)
	r := rng.New(5)
	price := mk.PriceBounds().RandomVector(r)
	p, err := ev.Prepare(price)
	if err != nil {
		t.Fatal(err)
	}
	tree := set.Ramped(r, 1, 4)
	prog, err := ev.CompileTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	const evals = 7
	for i := 0; i < evals; i++ {
		if _, _, err := ev.EvalProgramWith(p, prog); err != nil {
			t.Fatal(err)
		}
	}
	m := ev.Metrics
	if got := m.TreeEvals.Load(); got != evals {
		t.Errorf("tree_evals = %d, want %d", got, evals)
	}
	if got := m.CacheHits.Load(); got != evals {
		t.Errorf("cache_hits = %d, want %d", got, evals)
	}
	if got := m.LPSolves.Load(); got != 1 {
		t.Errorf("lp_solves = %d, want 1 (the Prepare)", got)
	}
	if got := m.CacheMisses.Load(); got != 1 {
		t.Errorf("cache_misses = %d, want 1", got)
	}
	if ev.Evals != evals+0 {
		t.Errorf("Evals = %d, want %d", ev.Evals, evals)
	}
}

// A tree decoded against a bigger terminal set than the evaluator's
// must fail CompileTree (not read past the environment), and a set
// with more terminals than the scorer environment must be rejected at
// evaluator construction.
func TestHostileTerminalSetsRejected(t *testing.T) {
	mk := testMarket(t, 20, 10, 2)
	wide := covering.TableISet() // 5 terminals
	narrow := &gp.Set{Ops: gp.TableIOps(), Terms: []string{"c", "q"}}
	ev, err := NewEvaluator(mk, narrow)
	if err != nil {
		t.Fatal(err)
	}
	// "xbar" is terminal index 4 in the wide set — out of range for the
	// narrow evaluator.
	hostile, err := gp.Parse(wide, "(+ c xbar)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.CompileTree(hostile); err == nil {
		t.Fatal("CompileTree accepted a tree over a larger terminal set")
	}

	over := &gp.Set{Ops: gp.TableIOps(), Terms: []string{"t0", "t1", "t2", "t3", "t4", "t5"}}
	if _, err := NewEvaluator(mk, over); err == nil {
		t.Fatalf("NewEvaluator accepted a set with %d terminals (scorer env holds %d)",
			len(over.Terms), covering.EnvLen)
	}
}

// The steady-state hot path must not allocate: compile once, then
// every cached paired evaluation reuses the VM stack and greedy
// scratch.
func TestEvalProgramWithZeroAlloc(t *testing.T) {
	mk := testMarket(t, 40, 25, 5)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	price := mk.PriceBounds().RandomVector(r)
	p, err := ev.Prepare(price)
	if err != nil {
		t.Fatal(err)
	}
	tree := set.Ramped(r, 2, 5)
	prog, err := ev.CompileTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	ev.EvalProgramWith(p, prog) // warm up scratch
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := ev.EvalProgramWith(p, prog); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("EvalProgramWith allocates %v per call, want 0", allocs)
	}
}

// BenchmarkEvalProgram500x30 is the compiled batched hot path at paper
// scale: one Prepare + one CompileTree, then repeated cached paired
// evaluations. Compare against BenchmarkEvalTree500x30 (uncached
// interpreter, the PR 7 baseline) and BenchmarkEvalTreeWith500x30
// (cached interpreter) in BENCH_pr8.json.
func BenchmarkEvalProgram500x30(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	tree := set.Ramped(r, 2, 5)
	price := mk.PriceBounds().RandomVector(r)
	p, err := ev.Prepare(price)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ev.CompileTree(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.EvalProgramWith(p, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalTreeWith500x30 is the same workload on the interpreted
// cached path, isolating the compiler's contribution from the
// relaxation cache's.
func BenchmarkEvalTreeWith500x30(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	tree := set.Ramped(r, 2, 5)
	price := mk.PriceBounds().RandomVector(r)
	p, err := ev.Prepare(price)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.EvalTreeWith(p, tree); err != nil {
			b.Fatal(err)
		}
	}
}
