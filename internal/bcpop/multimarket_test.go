package bcpop

import (
	"math"
	"testing"

	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
)

func baseInstance(t testing.TB, n, m int) *covering.Instance {
	t.Helper()
	in, err := orlib.GenerateCovering(orlib.Class{N: n, M: m}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewMultiMarketValidation(t *testing.T) {
	in := baseInstance(t, 30, 5)
	if _, err := NewMultiMarket(nil, 3, 2, 0.1, 1); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := NewMultiMarket(in, 0, 2, 0.1, 1); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := NewMultiMarket(in, 3, 0, 0.1, 1); err == nil {
		t.Fatal("0 customers accepted")
	}
	if _, err := NewMultiMarket(in, 3, 2, 1.0, 1); err == nil {
		t.Fatal("variation=1 accepted")
	}
	if _, err := NewMultiMarket(in, 3, 2, -0.1, 1); err == nil {
		t.Fatal("negative variation accepted")
	}
}

func TestMultiMarketGeometry(t *testing.T) {
	in := baseInstance(t, 30, 5)
	const K, L = 3, 4
	mk, err := NewMultiMarket(in, L, K, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Customers() != K {
		t.Fatalf("Customers = %d", mk.Customers())
	}
	if mk.Leaders() != L {
		t.Fatalf("Leaders = %d (one price per leader bundle, shared)", mk.Leaders())
	}
	if mk.Bundles() != K*30 || mk.Services() != K*5 {
		t.Fatalf("block dims %dx%d", mk.Bundles(), mk.Services())
	}
}

func TestMultiMarketBlockStructure(t *testing.T) {
	in := baseInstance(t, 20, 4)
	const K, L = 2, 3
	mk, err := NewMultiMarket(in, L, K, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	tpl := mk.Template()
	// Customer i's rows touch only customer i's columns.
	for i := 0; i < K; i++ {
		for k := 0; k < 4; k++ {
			row := tpl.Q[i*4+k]
			for c, v := range row {
				inBlock := c >= i*20 && c < (i+1)*20
				if !inBlock && v != 0 {
					t.Fatalf("row %d leaks into column %d", i*4+k, c)
				}
				if inBlock && v != in.Q[k][c-i*20] {
					t.Fatalf("row %d column %d: %v != base %v", i*4+k, c, v, in.Q[k][c-i*20])
				}
			}
		}
	}
	// Competitor prices replicated.
	for i := 0; i < K; i++ {
		for j := L; j < 20; j++ {
			if tpl.C[i*20+j] != in.C[j] {
				t.Fatal("competitor price not replicated")
			}
		}
	}
}

func TestMultiMarketCostsAndRevenue(t *testing.T) {
	in := baseInstance(t, 20, 4)
	const K, L = 2, 3
	mk, err := NewMultiMarket(in, L, K, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	price := []float64{10, 20, 30}
	costs, err := mk.Costs(price, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same price gene must land on every customer's copy.
	for i := 0; i < K; i++ {
		for j := 0; j < L; j++ {
			if costs[i*20+j] != price[j] {
				t.Fatalf("customer %d bundle %d priced %v", i, j, costs[i*20+j])
			}
		}
	}
	// Revenue counts each customer's purchase.
	x := make([]bool, K*20)
	x[0] = true    // customer 0 buys leader bundle 0 → +10
	x[20+0] = true // customer 1 buys leader bundle 0 → +10
	x[20+2] = true // customer 1 buys leader bundle 2 → +30
	x[5] = true    // competitor bundle: no revenue
	if got := mk.Revenue(price, x); got != 50 {
		t.Fatalf("Revenue = %v, want 50", got)
	}
}

func TestMultiMarketRequirementVariation(t *testing.T) {
	in := baseInstance(t, 20, 4)
	mk, err := NewMultiMarket(in, 3, 3, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	tpl := mk.Template()
	differ := false
	for k := 0; k < 4; k++ {
		if tpl.B[k] != tpl.B[4+k] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("customer requirements are identical despite variation")
	}
	// Zero variation → identical blocks.
	mk0, err := NewMultiMarket(in, 3, 2, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	tpl0 := mk0.Template()
	for k := 0; k < 4; k++ {
		if tpl0.B[k] != tpl0.B[4+k] {
			t.Fatal("zero variation produced different requirements")
		}
	}
}

func TestMultiMarketEndToEndEvaluation(t *testing.T) {
	in := baseInstance(t, 40, 5)
	mk, err := NewMultiMarket(in, 4, 3, 0.2, 17)
	if err != nil {
		t.Fatal(err)
	}
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	tree := gp.MustParse(set, "(% (* q d) c)")
	r := rng.New(1)
	price := mk.PriceBounds().RandomVector(r)
	res, basket, err := ev.EvalTree(price, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible on feasible multi-market")
	}
	if res.GapPct < -1e-9 || res.GapPct > 100 {
		t.Fatalf("gap %v", res.GapPct)
	}
	if math.Abs(mk.Revenue(price, basket)-res.Revenue) > 1e-9 {
		t.Fatal("revenue mismatch")
	}
	// Every customer block must be individually covered.
	induced, err := mk.Induced(price)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.SelectionFeasible(basket) {
		t.Fatal("basket does not cover all customers")
	}
}

func TestMultiMarketSingleCustomerMatchesNewMarket(t *testing.T) {
	in := baseInstance(t, 30, 5)
	single, err := NewMarket(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	multi1, err := NewMultiMarket(in, 3, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Bundles() != multi1.Bundles() || single.Leaders() != multi1.Leaders() {
		t.Fatal("K=1 multi-market geometry differs from single market")
	}
	price := []float64{5, 6, 7}
	cs, err := single.Costs(price, nil)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := multi1.Costs(price, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cs {
		if cs[j] != cm[j] {
			t.Fatal("cost vectors differ")
		}
	}
}
