// Compiled-predator evaluation (DESIGN.md §5j).
//
// EvalTreeWith re-decodes the predator's prefix nodes for every one of
// the M×N (item, service) pairs of a prepared context and zeroes a
// 4KiB interpreter stack per pair. The compiled path lowers the tree
// to bytecode once (CompileTree) and sweeps the program across the
// whole context with reused scratch (EvalProgramWith): same results
// bit-for-bit — the VM replays the interpreter's exact operation
// sequence and the greedy runs the identical algorithm on identical
// scores — but with zero steady-state allocations. The engine compiles
// each predator once per generation and evaluates it against every
// cached prey context; the interpreter remains the golden reference
// behind core's Interpret flag.
package bcpop

import (
	"time"

	"carbon/internal/covering"
	"carbon/internal/gp"
)

// CompileTree lowers a predator tree to bytecode, reusing this
// evaluator's program arena: one CompileTree per (predator, worker,
// generation), after which the evaluation wave allocates nothing. The
// returned program aliases evaluator-owned storage and is valid until
// the next CompileTree on this evaluator — use gp.Compile directly for
// a program that must outlive that (e.g. one shared read-only across
// workers).
func (ev *Evaluator) CompileTree(tree gp.Tree) (*gp.Program, error) {
	if err := ev.prog.Compile(ev.set, tree); err != nil {
		return nil, err
	}
	return &ev.prog, nil
}

// EvalProgramWith is EvalTreeWith for a compiled predator: it scores
// items by replaying the program against the cached relaxation, runs
// the greedy and reports the paired Result plus the follower basket.
// Results are bit-identical to EvalTreeWith on the program's source
// tree, and the metrics accounting is the same — one LL evaluation
// (Evals), one TreeEvals, one CacheHits, no LP solve. Unlike
// EvalTreeWith, the returned basket aliases evaluator scratch and is
// only valid until the next evaluation on this evaluator; copy it to
// retain it.
func (ev *Evaluator) EvalProgramWith(p *Prepared, prog *gp.Program) (Result, []bool, error) {
	if p == nil {
		return Result{}, nil, ErrNotPrepared
	}
	if ev.EvalFault != nil {
		if err := ev.EvalFault(); err != nil {
			return Result{}, nil, err
		}
	}
	var t0 time.Time
	if ev.Metrics != nil {
		t0 = time.Now()
	}
	covering.ScoreProgramInto(p.In, p.Rx, ev.vm, prog, ev.scores)
	res := p.In.GreedyByScoreInto(ev.scores, ev.Eliminate, &ev.greedy)
	ev.Evals++
	out := ev.result(p.Price, p.Rx, res)
	if m := ev.Metrics; m != nil {
		m.TreeEvals.Inc()
		m.CacheHits.Inc()
		if ev.Eliminate {
			m.Elims.Inc()
		}
		m.observe(t0, out)
	}
	return out, res.X, nil
}
