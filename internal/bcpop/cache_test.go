package bcpop

import (
	"errors"
	"math"
	"sync"
	"testing"

	"carbon/internal/covering"
	"carbon/internal/rng"
	"carbon/internal/telemetry"
)

func TestKeyExactBitsIdentity(t *testing.T) {
	a := []float64{1.5, 0, 3.25}
	b := []float64{1.5, 0, 3.25}
	if Key(a) != Key(b) {
		t.Fatal("bit-identical vectors got different keys")
	}
	c := append([]float64(nil), a...)
	c[2] = math.Nextafter(c[2], 4) // one ulp off
	if Key(a) == Key(c) {
		t.Fatal("one-ulp difference collided")
	}
	if Key([]float64{0}) == Key([]float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 must not collide (distinct bits)")
	}
	if Key(nil) != "" || Key([]float64{}) != "" {
		t.Fatal("empty vector key must be empty")
	}
}

// TestEvalTreeWithMatchesEvalTree pins the semantic contract: a cached
// evaluation is EvalTree minus the redundant solve — bit-identical
// Result and basket for the same (price, tree) pairing.
func TestEvalTreeWithMatchesEvalTree(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for trial := 0; trial < 5; trial++ {
		price := mk.PriceBounds().RandomVector(r)
		tree := set.Ramped(r, 1, 3)

		// Reset before each solve so both start from the same solver
		// state — the relaxation must then match bit-for-bit.
		ev.ResetWarm()
		direct, basketD, err := ev.EvalTree(price, tree)
		if err != nil {
			t.Fatal(err)
		}
		ev.ResetWarm()
		p, err := ev.Prepare(price)
		if err != nil {
			t.Fatal(err)
		}
		cached, basketC, err := ev.EvalTreeWith(p, tree)
		if err != nil {
			t.Fatal(err)
		}
		if direct != cached {
			t.Fatalf("trial %d: cached evaluation diverged: %+v vs %+v", trial, cached, direct)
		}
		for j := range basketD {
			if basketD[j] != basketC[j] {
				t.Fatalf("trial %d: baskets differ at item %d", trial, j)
			}
		}
	}
}

// TestPreparedSurvivesLaterSolves: a Prepared context must stay valid
// after the producing evaluator solves other instances — it owns its
// costs, duals and x̄, aliasing no evaluator scratch.
func TestPreparedSurvivesLaterSolves(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	priceA := mk.PriceBounds().RandomVector(r)
	priceB := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(r, 2, 3)

	pA, err := ev.Prepare(priceA)
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := ev.EvalTreeWith(pA, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the evaluator's scratch with other work.
	if _, err := ev.Prepare(priceB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.EvalTree(priceB, tree); err != nil {
		t.Fatal(err)
	}
	after, _, err := ev.EvalTreeWith(pA, tree)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("prepared context was corrupted by later solves: %+v vs %+v", before, after)
	}
}

// TestPreparedConcurrentReaders: one Prepared context, many workers —
// the -race gate for the engine's fan-out of cached contexts across
// evaluation workers.
func TestPreparedConcurrentReaders(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	ev0, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	price := mk.PriceBounds().RandomVector(rng.New(2))
	tree := set.Ramped(rng.New(3), 1, 3)
	p, err := ev0.Prepare(price)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := ev0.EvalTreeWith(p, tree)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	results := make([]Result, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		ev, err := NewEvaluator(mk, set)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, ev *Evaluator) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				out, _, err := ev.EvalTreeWith(p, tree)
				if err != nil {
					errs[w] = err
					return
				}
				results[w] = out
			}
		}(w, ev)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if results[w] != ref {
			t.Fatalf("worker %d diverged: %+v vs %+v", w, results[w], ref)
		}
	}
}

func TestCacheSlotLifecycle(t *testing.T) {
	c := NewCache()
	a := []float64{1, 2}
	b := []float64{3, 4}

	sa, fresh := c.Slot(a)
	if !fresh || sa != 0 {
		t.Fatalf("first Slot = (%d, %v), want (0, true)", sa, fresh)
	}
	if s, fresh := c.Slot(append([]float64(nil), a...)); fresh || s != sa {
		t.Fatalf("duplicate Slot = (%d, %v), want (%d, false)", s, fresh, sa)
	}
	sb, fresh := c.Slot(b)
	if !fresh || sb != 1 {
		t.Fatalf("second Slot = (%d, %v), want (1, true)", sb, fresh)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.At(sa) != nil {
		t.Fatal("unfilled slot must read nil")
	}
	p := &Prepared{Price: a}
	c.Fill(sa, p)
	if c.At(sa) != p {
		t.Fatal("Fill/At round trip failed")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if s, fresh := c.Slot(a); !fresh || s != 0 {
		t.Fatalf("post-Reset Slot = (%d, %v), want (0, true)", s, fresh)
	}
}

// TestCacheCounters pins the metrics semantics of the cache layer:
// every Prepare is one real solve (lp_solves and cache_misses), every
// EvalTreeWith is one served evaluation (cache_hits, tree_evals, no
// solve).
func TestCacheCounters(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ev.Metrics = NewEvalMetrics(reg)
	r := rng.New(5)
	price := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(r, 1, 3)

	p, err := ev.Prepare(price)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := ev.EvalTreeWith(p, tree); err != nil {
			t.Fatal(err)
		}
	}
	read := func(name string) int64 { return reg.Counter(name).Load() }
	if got := read("bcpop.lp_solves"); got != 1 {
		t.Fatalf("lp_solves = %d, want 1 (one Prepare)", got)
	}
	if got := read("bcpop.cache_misses"); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
	if got := read("bcpop.cache_hits"); got != 3 {
		t.Fatalf("cache_hits = %d, want 3 (one per cached evaluation)", got)
	}
	if got := read("bcpop.tree_evals"); got != 3 {
		t.Fatalf("tree_evals = %d, want 3", got)
	}
	if ev.Evals != 3 {
		t.Fatalf("Evals = %d, want 3 (Prepare is not an LL evaluation)", ev.Evals)
	}
}

var benchSink Result

// BenchmarkEvalTreeResolve is the pre-cache hot path: every paired
// evaluation re-solves the (warm) LP relaxation of its induced
// instance.
func BenchmarkEvalTreeResolve(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	price := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(r, 2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := ev.EvalTree(price, tree)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = out
	}
}

// BenchmarkEvalTreeCached is the post-cache hot path: the relaxation is
// prepared once and every evaluation reuses it.
func BenchmarkEvalTreeCached(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	price := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(r, 2, 4)
	p, err := ev.Prepare(price)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := ev.EvalTreeWith(p, tree)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = out
	}
}

// benchPrices returns n random price vectors for rotating-solve
// benchmarks, mimicking a generation's stream of distinct genotypes.
func benchPrices(b *testing.B, mk *Market, n int) [][]float64 {
	r := rng.New(7)
	out := make([][]float64, n)
	for i := range out {
		out[i] = mk.PriceBounds().RandomVector(r)
	}
	return out
}

// BenchmarkPrepare prices the cache's cost side as the engine pays it:
// a warm-chained solve per distinct genotype plus the context copies.
func BenchmarkPrepare(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	prices := benchPrices(b, mk, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Prepare(prices[i%len(prices)]); err != nil {
			b.Fatal(err)
		}
	}
}

// The pair below justifies warm-chaining Prepare instead of solving
// cold: rotating through 16 distinct genotypes, a warm-started solve is
// 2-3x cheaper than a cold one on the 500x30 class.
func BenchmarkRelaxColdRotating(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	prices := benchPrices(b, mk, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.ResetWarm()
		if _, err := ev.Relax(prices[i%len(prices)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelaxWarmRotating(b *testing.B) {
	mk := testMarket(b, 500, 30, 50)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	prices := benchPrices(b, mk, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Relax(prices[i%len(prices)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnpreparedSlotTypedError drives the fault-injected path that used
// to nil-deref: an LP fault quarantines Prepare, the slot stays empty,
// and every reader of that slot must fail with ErrNotPrepared — typed,
// catchable, and panic-free — rather than crash inside the scorer.
func TestUnpreparedSlotTypedError(t *testing.T) {
	mk := testMarket(t, 30, 5, 3)
	set := covering.TableISet()
	ev, err := NewEvaluator(mk, set)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	price := mk.PriceBounds().RandomVector(r)
	tree := set.Ramped(r, 1, 3)

	// Fault-injected Prepare: the solve fails, so the cache slot
	// allocated for this prey is never filled.
	c := NewCache()
	slot, fresh := c.Slot(price)
	if !fresh {
		t.Fatal("first slot not fresh")
	}
	ev.SetLPFault(func() error { return errors.New("injected LP outage") })
	if _, err := ev.Prepare(price); err == nil {
		t.Fatal("fault-injected Prepare succeeded")
	}
	ev.SetLPFault(nil)

	// Cache.Get reports the unfilled slot with the typed error; At keeps
	// its historical nil-return contract for callers that check.
	if p, err := c.Get(slot); !errors.Is(err, ErrNotPrepared) || p != nil {
		t.Fatalf("Get on unfilled slot: p=%v err=%v, want ErrNotPrepared", p, err)
	}
	if _, err := c.Get(slot + 1); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("Get out of range: err=%v, want ErrNotPrepared", err)
	}
	if _, err := c.Get(-1); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("Get(-1): err=%v, want ErrNotPrepared", err)
	}
	if c.At(slot) != nil {
		t.Fatal("At on unfilled slot must stay nil")
	}

	// Both evaluation entry points must reject the nil context instead
	// of dereferencing it.
	if _, _, err := ev.EvalTreeWith(nil, tree); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("EvalTreeWith(nil): err=%v, want ErrNotPrepared", err)
	}
	prog, err := ev.CompileTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.EvalProgramWith(nil, prog); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("EvalProgramWith(nil): err=%v, want ErrNotPrepared", err)
	}

	// After the outage clears, the same slot can be filled and read.
	p, err := ev.Prepare(price)
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(slot, p)
	got, err := c.Get(slot)
	if err != nil || got != p {
		t.Fatalf("Get after Fill: p=%v err=%v", got, err)
	}
	if _, _, err := ev.EvalProgramWith(got, prog); err != nil {
		t.Fatalf("recovered evaluation failed: %v", err)
	}
}
