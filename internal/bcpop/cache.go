// Shared-relaxation evaluation cache.
//
// The quantities the predator fitness (Eq. 1 %-gap) needs — LB(x), the
// duals and x̄ of the induced instance — depend only on the prey
// decision x, never on the predator being scored. A generation that
// pairs every predator with every sampled prey therefore needs only
// |distinct prey| LP solves, not LLPopSize×|sample|. Prepare performs
// that one solve and freezes the result into an immutable Prepared
// context; EvalTreeWith evaluates any number of heuristics against it
// without touching the solver; Cache deduplicates bit-identical price
// vectors (elitism and GP reproduction copy genotypes verbatim) so a
// whole evaluation wave shares one solve per distinct genotype.
package bcpop

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"carbon/internal/covering"
	"carbon/internal/gp"
)

// ErrNotPrepared reports an evaluation against a cache slot that was
// allocated by Slot but never filled — the telltale of a Prepare that
// failed (e.g. an injected LP fault quarantined the solve) while a
// reader still tried to pair against the slot. It surfaces as a typed,
// per-pairing error instead of a nil-pointer crash deep in the scorer.
var ErrNotPrepared = errors.New("bcpop: cache slot not prepared")

// Key returns the exact identity of a price vector: the little-endian
// IEEE-754 bits of every coordinate, concatenated. Two vectors share a
// key iff they are bit-identical — the right equality for memoizing
// exact LP results, since elitism/cloning copies vectors bit-for-bit
// while variation operators virtually never reproduce exact bits.
// (+0 and −0 get distinct keys; prices are non-negative so the
// distinction never conflates real decisions.)
func Key(price []float64) string {
	b := make([]byte, len(price)*8)
	for i, v := range price {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return string(b)
}

// Prepared is a frozen evaluation context for one pricing decision: the
// induced lower-level instance (owning its cost vector) and its LP
// relaxation (owning its dual/x̄ copies), plus the price vector that
// induced them. A Prepared is immutable after Prepare returns, so any
// number of workers may evaluate heuristics against it concurrently.
type Prepared struct {
	Price []float64
	In    *covering.Instance
	Rx    *covering.Relaxation
}

// Prepare solves the LP relaxation of the instance induced by price and
// freezes the result into a Prepared context. The solve warm-starts
// from the evaluator's current basis — consecutive Prepares on one
// evaluator chain their bases exactly like consecutive EvalTrees did,
// which is 2-3x cheaper than solving cold (see
// BenchmarkRelaxWarmRotating vs BenchmarkRelaxColdRotating). The
// returned context is therefore a function of (price, this evaluator's
// solve history); callers that need reproducible contexts must control
// that history — the engine does so by calling ResetWarm on every
// evaluator at each generation boundary and striping the solve wave
// deterministically.
//
// Each Prepare is one real LP solve: it increments Metrics.LPSolves and
// Metrics.CacheMisses.
func (ev *Evaluator) Prepare(price []float64) (*Prepared, error) {
	rx, err := ev.Relax(price)
	if err != nil {
		return nil, err
	}
	costs := append([]float64(nil), ev.costs...)
	work, err := ev.mk.template.WithCosts(costs)
	if err != nil {
		return nil, err
	}
	if m := ev.Metrics; m != nil {
		m.CacheMisses.Inc()
	}
	return &Prepared{
		Price: append([]float64(nil), price...),
		In:    work,
		Rx:    rx.Clone(),
	}, nil
}

// EvalTreeWith pairs a prepared pricing context with a generated
// heuristic: it scores items with the tree against the cached
// relaxation, runs the greedy and reports the paired Result plus the
// follower basket. No LP is solved — the relaxation was computed once
// by Prepare — so the call increments Metrics.CacheHits instead of
// Metrics.LPSolves. Semantically it is EvalTree(p.Price, tree) minus
// the redundant solve: both charge one LL evaluation (Evals).
func (ev *Evaluator) EvalTreeWith(p *Prepared, tree gp.Tree) (Result, []bool, error) {
	if p == nil {
		return Result{}, nil, ErrNotPrepared
	}
	if ev.EvalFault != nil {
		if err := ev.EvalFault(); err != nil {
			return Result{}, nil, err
		}
	}
	var t0 time.Time
	if ev.Metrics != nil {
		t0 = time.Now()
	}
	ts := covering.NewTreeScorer(ev.set, p.In, p.Rx)
	ts.Score(tree, ev.scores)
	res := p.In.GreedyByScore(ev.scores, ev.Eliminate)
	ev.Evals++
	out := ev.result(p.Price, p.Rx, res)
	if m := ev.Metrics; m != nil {
		m.TreeEvals.Inc()
		m.CacheHits.Inc()
		if ev.Eliminate {
			m.Elims.Inc()
		}
		m.observe(t0, out)
	}
	return out, res.X, nil
}

// Cache deduplicates Prepared contexts within one evaluation wave,
// keyed by exact price bits. The lifecycle each generation:
//
//	c.Reset()                      // coordinator
//	slot, fresh := c.Slot(price)   // coordinator, per individual
//	c.Fill(slot, prepared)         // workers, distinct slots in parallel
//	c.At(slot)                     // workers, read-only after the fill wave
//
// Slot and Reset must run on one goroutine; Fill may run concurrently
// on distinct slots (it only writes the slot's entry); At is safe for
// any number of concurrent readers once the fill wave has joined.
type Cache struct {
	slots   map[string]int
	entries []*Prepared
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{slots: make(map[string]int)}
}

// Reset empties the cache, keeping allocated capacity for the next wave.
func (c *Cache) Reset() {
	clear(c.slots)
	c.entries = c.entries[:0]
}

// Slot returns the cache slot for price, allocating an empty slot on
// first sight. fresh reports whether the slot is new — a miss the
// caller must Fill before reading it back with At.
func (c *Cache) Slot(price []float64) (slot int, fresh bool) {
	k := Key(price)
	if s, ok := c.slots[k]; ok {
		return s, false
	}
	s := len(c.entries)
	c.slots[k] = s
	c.entries = append(c.entries, nil)
	return s, true
}

// Fill stores the prepared context of slot s.
func (c *Cache) Fill(s int, p *Prepared) { c.entries[s] = p }

// At returns the prepared context of slot s (nil until filled). Prefer
// Get when a nil context is a reachable state — e.g. after a
// fault-quarantined Prepare — so the failure carries a typed error
// instead of surfacing as a nil-deref at the eventual read.
func (c *Cache) At(s int) *Prepared { return c.entries[s] }

// Get returns the prepared context of slot s, or ErrNotPrepared if the
// slot was allocated but never filled.
func (c *Cache) Get(s int) (*Prepared, error) {
	if s < 0 || s >= len(c.entries) {
		return nil, fmt.Errorf("bcpop: cache slot %d out of range [0,%d): %w",
			s, len(c.entries), ErrNotPrepared)
	}
	if p := c.entries[s]; p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("bcpop: slot %d: %w", s, ErrNotPrepared)
}

// Len returns the number of distinct price vectors seen since Reset.
func (c *Cache) Len() int { return len(c.entries) }
