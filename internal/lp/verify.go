package lp

import (
	"fmt"
	"math"
)

// CheckKKT verifies that sol is an optimal solution of p by checking the
// Karush–Kuhn–Tucker conditions within tolerance eps:
//
//  1. primal feasibility (rows and bounds),
//  2. dual feasibility (row dual signs consistent with row senses for a
//     minimization problem: y ≥ 0 on ≥-rows, y ≤ 0 on ≤-rows; reduced
//     costs ≥ 0 at lower bounds, ≤ 0 at upper bounds, ≈ 0 strictly
//     between bounds),
//  3. complementary slackness on rows (yᵢ·(Aᵢx−bᵢ) ≈ 0),
//  4. strong duality via the Lagrangian: c·x = y·b + Σⱼ dⱼ·xⱼ* where dⱼ
//     is the reduced cost and xⱼ* the bound it is pinned at.
//
// It returns nil when all conditions hold. Together these conditions
// certify optimality, so tests can validate the solver without an
// external reference implementation.
func CheckKKT(p *Problem, sol *Solution, eps float64) error {
	if sol.Status != Optimal {
		return fmt.Errorf("lp: CheckKKT on non-optimal solution (%v)", sol.Status)
	}
	m, n := len(p.B), len(p.C)
	lo := p.Lo
	if lo == nil {
		lo = make([]float64, n)
	}
	up := p.Up
	if up == nil {
		up = make([]float64, n)
		for j := range up {
			up[j] = math.Inf(1)
		}
	}
	scale := 1.0
	for j := 0; j < n; j++ {
		if a := math.Abs(sol.X[j]); a > scale {
			scale = a
		}
	}
	tolv := eps * scale

	// 1. Primal feasibility.
	for j := 0; j < n; j++ {
		if sol.X[j] < lo[j]-tolv || sol.X[j] > up[j]+tolv {
			return fmt.Errorf("lp: x[%d]=%v violates bounds [%v,%v]", j, sol.X[j], lo[j], up[j])
		}
	}
	act := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			act[i] += p.A[i][j] * sol.X[j]
		}
		rowScale := math.Abs(p.B[i]) + 1
		switch p.Rel[i] {
		case GE:
			if act[i] < p.B[i]-eps*rowScale {
				return fmt.Errorf("lp: row %d: %v < %v", i, act[i], p.B[i])
			}
		case LE:
			if act[i] > p.B[i]+eps*rowScale {
				return fmt.Errorf("lp: row %d: %v > %v", i, act[i], p.B[i])
			}
		case EQ:
			if math.Abs(act[i]-p.B[i]) > eps*rowScale {
				return fmt.Errorf("lp: row %d: %v != %v", i, act[i], p.B[i])
			}
		}
	}

	// 2. Dual feasibility: row dual signs.
	for i := 0; i < m; i++ {
		y := sol.Dual[i]
		switch p.Rel[i] {
		case GE:
			if y < -eps {
				return fmt.Errorf("lp: dual %d = %v < 0 on >= row", i, y)
			}
		case LE:
			if y > eps {
				return fmt.Errorf("lp: dual %d = %v > 0 on <= row", i, y)
			}
		}
	}
	// Reduced-cost consistency with bound status.
	for j := 0; j < n; j++ {
		d := p.C[j]
		for i := 0; i < m; i++ {
			d -= sol.Dual[i] * p.A[i][j]
		}
		if math.Abs(d-sol.ReducedCost[j]) > eps*(1+math.Abs(d)) {
			return fmt.Errorf("lp: reported reduced cost %v != recomputed %v for var %d",
				sol.ReducedCost[j], d, j)
		}
		atLo := sol.X[j] <= lo[j]+tolv
		atUp := !math.IsInf(up[j], 1) && sol.X[j] >= up[j]-tolv
		switch {
		case atLo && atUp: // fixed variable: any reduced cost is fine
		case atLo:
			if d < -eps {
				return fmt.Errorf("lp: var %d at lower bound with reduced cost %v < 0", j, d)
			}
		case atUp:
			if d > eps {
				return fmt.Errorf("lp: var %d at upper bound with reduced cost %v > 0", j, d)
			}
		default:
			if math.Abs(d) > eps {
				return fmt.Errorf("lp: interior var %d has reduced cost %v != 0", j, d)
			}
		}
	}

	// 3. Complementary slackness on rows.
	for i := 0; i < m; i++ {
		slack := act[i] - p.B[i]
		if math.Abs(sol.Dual[i]*slack) > eps*(1+math.Abs(p.B[i]))*(1+math.Abs(sol.Dual[i])) {
			return fmt.Errorf("lp: complementary slackness violated on row %d: y=%v slack=%v",
				i, sol.Dual[i], slack)
		}
	}

	// 4. Strong duality through the Lagrangian.
	dualObj := 0.0
	for i := 0; i < m; i++ {
		dualObj += sol.Dual[i] * p.B[i]
	}
	for j := 0; j < n; j++ {
		d := sol.ReducedCost[j]
		switch {
		case d > eps:
			dualObj += d * lo[j]
		case d < -eps:
			dualObj += d * up[j] // finite, else dual infeasible above
		}
	}
	if math.Abs(dualObj-sol.Obj) > eps*(1+math.Abs(sol.Obj)) {
		return fmt.Errorf("lp: duality gap: primal %v vs dual %v", sol.Obj, dualObj)
	}
	return nil
}
