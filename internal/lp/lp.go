// Package lp implements a dense, two-phase, bounded-variable revised
// simplex method for linear programs of the form
//
//	min  c·x
//	s.t. Aᵢ·x  {≥, ≤, =}  bᵢ        i = 1..m
//	     loⱼ ≤ xⱼ ≤ upⱼ             j = 1..n   (upⱼ may be +Inf)
//
// It returns the primal solution, the objective, the row dual values and
// the structural reduced costs. The solver exists because the paper's
// %-gap metric (Eq. 1) and two of its GP terminals (Table I: dual values
// d_k and relaxed solution values x̄_j) require the LP relaxation of
// every induced lower-level covering instance.
//
// Design notes. The relaxations solved here have very few rows
// (m ∈ {5,10,30}) and up to ~1000 columns, so a dense basis inverse
// (m×m) with full pricing over sparse columns is both simple and fast:
// each iteration is O(m² + nnz). Bounded variables are handled natively
// (nonbasic-at-upper status and bound flips) rather than by adding n
// explicit bound rows, which keeps the basis tiny. Cycling is prevented
// by switching from Dantzig to Bland's rule after a burst of degenerate
// pivots.
//
// Two fast paths matter for the co-evolutionary workload:
//
//   - a crash basis: when setting every structural variable at one of
//     its bounds already satisfies all rows through the slacks (true for
//     covering instances, where x = 1 is feasible), phase 1 is skipped
//     entirely;
//   - WarmSolver: the BCPOP leader only changes *costs* between
//     evaluations (the covering matrix and requirements are fixed), so
//     the previous optimal basis stays primal feasible and re-solving
//     needs only a handful of phase-2 pivots.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint row.
type Relation int8

const (
	GE Relation = iota // Aᵢ·x ≥ bᵢ
	LE                 // Aᵢ·x ≤ bᵢ
	EQ                 // Aᵢ·x = bᵢ
)

func (r Relation) String() string {
	switch r {
	case GE:
		return ">="
	case LE:
		return "<="
	case EQ:
		return "="
	}
	return "?"
}

// Problem is a dense LP. All slices must be fully populated; A is m rows
// by n columns. Lo/Up are per-variable bounds; Up entries may be
// math.Inf(1). A nil Lo means all zeros; a nil Up means all +Inf.
type Problem struct {
	C   []float64
	A   [][]float64
	Rel []Relation
	B   []float64
	Lo  []float64
	Up  []float64
}

// Status reports how a solve terminated.
type Status int8

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of Solve.
type Solution struct {
	Status      Status
	Obj         float64
	X           []float64 // structural variable values, length n
	Dual        []float64 // row duals y, length m
	ReducedCost []float64 // structural reduced costs c_j - y·A_j, length n
	Iterations  int
}

const (
	tol          = 1e-9
	feasTol      = 1e-7
	blandTrigger = 64 // consecutive degenerate pivots before Bland's rule
)

// Solve runs the two-phase bounded-variable simplex. It returns an error
// for malformed input (dimension mismatches, NaN, inverted bounds); model
// outcomes (infeasible/unbounded) are reported via Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	lo, up, err := validate(p)
	if err != nil {
		return nil, err
	}
	s := newSolver(p, lo, up)
	return s.run(), nil
}

func validate(p *Problem) (lo, up []float64, err error) {
	m := len(p.B)
	n := len(p.C)
	if len(p.A) != m || len(p.Rel) != m {
		return nil, nil, fmt.Errorf("lp: %d rows in B but %d in A, %d in Rel", m, len(p.A), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, nil, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	lo = p.Lo
	if lo == nil {
		lo = make([]float64, n)
	}
	up = p.Up
	if up == nil {
		up = make([]float64, n)
		for j := range up {
			up[j] = math.Inf(1)
		}
	}
	if len(lo) != n || len(up) != n {
		return nil, nil, errors.New("lp: bound vector length mismatch")
	}
	for j := 0; j < n; j++ {
		if math.IsNaN(lo[j]) || math.IsNaN(up[j]) || math.IsInf(lo[j], 0) {
			return nil, nil, fmt.Errorf("lp: bad bounds on variable %d: [%v,%v]", j, lo[j], up[j])
		}
		if up[j] < lo[j] {
			return nil, nil, fmt.Errorf("lp: inverted bounds on variable %d: [%v,%v]", j, lo[j], up[j])
		}
	}
	for j, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, nil, fmt.Errorf("lp: bad cost on variable %d: %v", j, c)
		}
	}
	for i := 0; i < m; i++ {
		if math.IsNaN(p.B[i]) || math.IsInf(p.B[i], 0) {
			return nil, nil, fmt.Errorf("lp: bad rhs on row %d: %v", i, p.B[i])
		}
		for j, a := range p.A[i] {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return nil, nil, fmt.Errorf("lp: bad coefficient at (%d,%d): %v", i, j, a)
			}
		}
	}
	return lo, up, nil
}

// solver holds the working state of one solve. Column layout:
// [0,n) structural, [n,n+m) slack/surplus, [n+m,n+2m) artificial.
type solver struct {
	m, n  int
	nTot  int       // n + m + m
	cols  []colVec  // sparse columns of the full constraint matrix
	cost  []float64 // phase-2 costs (0 for slack & artificial)
	lo    []float64
	up    []float64
	b     []float64
	x     []float64 // current value of every variable
	atUp  []bool    // nonbasic-at-upper flag
	inB   []bool    // basic flag
	basis []int     // basic variable per row
	binv  []float64 // m×m row-major basis inverse
	xB    []float64 // values of basic variables (mirror of x[basis[i]])
	yBuf  []float64 // scratch: duals
	wBuf  []float64 // scratch: B⁻¹·A_enter
	iters int
	degen int // consecutive degenerate pivots (Bland trigger)
}

// colVec is a sparse column: parallel index/value slices.
type colVec struct {
	idx []int32
	val []float64
}

func newSolver(p *Problem, lo, up []float64) *solver {
	m, n := len(p.B), len(p.C)
	s := &solver{
		m: m, n: n, nTot: n + 2*m,
		cost:  make([]float64, n+2*m),
		lo:    make([]float64, n+2*m),
		up:    make([]float64, n+2*m),
		b:     append([]float64(nil), p.B...),
		x:     make([]float64, n+2*m),
		atUp:  make([]bool, n+2*m),
		inB:   make([]bool, n+2*m),
		basis: make([]int, m),
		binv:  make([]float64, m*m),
		xB:    make([]float64, m),
		yBuf:  make([]float64, m),
		wBuf:  make([]float64, m),
	}
	copy(s.cost[:n], p.C)
	copy(s.lo[:n], lo)
	copy(s.up[:n], up)

	// Build sparse columns for structurals.
	s.cols = make([]colVec, s.nTot)
	for j := 0; j < n; j++ {
		var c colVec
		for i := 0; i < m; i++ {
			if a := p.A[i][j]; a != 0 {
				c.idx = append(c.idx, int32(i))
				c.val = append(c.val, a)
			}
		}
		s.cols[j] = c
	}
	// Slack/surplus columns: ≤ gets +1 slack in [0,∞); ≥ gets a -1
	// coefficient so the slack variable itself stays ≥ 0; = gets a slack
	// fixed to [0,0].
	for i := 0; i < m; i++ {
		j := n + i
		coef := 1.0
		switch p.Rel[i] {
		case GE:
			coef = -1
			s.up[j] = math.Inf(1)
		case LE:
			s.up[j] = math.Inf(1)
		case EQ:
			s.up[j] = 0
		}
		s.cols[j] = colVec{idx: []int32{int32(i)}, val: []float64{coef}}
	}
	// Artificial columns get their sign fixed in phase-1 setup.
	return s
}

// run executes (crash basis | phase 1) then phase 2.
func (s *solver) run() *Solution {
	if !s.crash() {
		if st, ok := s.phase1(); !ok {
			return s.failedSolution(st)
		}
	}
	return s.phase2()
}

// crash tries to start from a pure slack basis: put every structural
// variable at one of its bounds (all-lower first, then all-upper) and
// check whether the implied slack values are within the slack bounds.
// On success the basis inverse is diagonal (±1) and phase 1 is skipped.
func (s *solver) crash() bool {
	for _, upper := range []bool{false, true} {
		if upper {
			allFinite := true
			for j := 0; j < s.n; j++ {
				if math.IsInf(s.up[j], 1) {
					allFinite = false
					break
				}
			}
			if !allFinite {
				continue
			}
		}
		// Row activity with the chosen nonbasic point.
		act := make([]float64, s.m)
		for j := 0; j < s.n; j++ {
			v := s.lo[j]
			if upper {
				v = s.up[j]
			}
			if v != 0 {
				c := s.cols[j]
				for k, i := range c.idx {
					act[i] += c.val[k] * v
				}
			}
		}
		ok := true
		slack := make([]float64, s.m)
		for i := 0; i < s.m; i++ {
			j := s.n + i
			coef := s.cols[j].val[0] // ±1
			// Row: act + coef·slack = b  →  slack = (b-act)/coef.
			sv := (s.b[i] - act[i]) / coef
			if sv < s.lo[j]-feasTol || sv > s.up[j]+feasTol {
				ok = false
				break
			}
			slack[i] = math.Max(sv, s.lo[j])
		}
		if !ok {
			continue
		}
		// Install the slack basis.
		for j := 0; j < s.n; j++ {
			s.atUp[j] = upper
			if upper {
				s.x[j] = s.up[j]
			} else {
				s.x[j] = s.lo[j]
			}
			s.inB[j] = false
		}
		for i := 0; i < s.m; i++ {
			j := s.n + i
			s.basis[i] = j
			s.inB[j] = true
			s.xB[i] = slack[i]
			s.x[j] = slack[i]
			coef := s.cols[j].val[0]
			row := s.binv[i*s.m : (i+1)*s.m]
			for k := range row {
				row[k] = 0
			}
			row[i] = 1 / coef
		}
		// Artificials stay out of the basis and locked at zero.
		for i := 0; i < s.m; i++ {
			j := s.n + s.m + i
			s.cols[j] = colVec{idx: []int32{int32(i)}, val: []float64{1}}
			s.lo[j], s.up[j] = 0, 0
			s.x[j] = 0
			s.inB[j] = false
		}
		return true
	}
	return false
}

// phase1 installs an artificial basis and minimizes total infeasibility.
// It reports the terminal status and whether a feasible basis was found.
func (s *solver) phase1() (Status, bool) {
	// Initial point: every structural and slack variable at its lower
	// bound (finite by validation).
	for j := 0; j < s.n+s.m; j++ {
		s.x[j] = s.lo[j]
		s.atUp[j] = false
		s.inB[j] = false
	}
	// Residual r = b - A·x determines artificial signs and values.
	r := make([]float64, s.m)
	copy(r, s.b)
	for j := 0; j < s.n+s.m; j++ {
		if s.x[j] != 0 {
			c := s.cols[j]
			for k, i := range c.idx {
				r[i] -= c.val[k] * s.x[j]
			}
		}
	}
	phase1 := make([]float64, s.nTot)
	for i := range s.binv {
		s.binv[i] = 0
	}
	for i := 0; i < s.m; i++ {
		j := s.n + s.m + i
		coef := 1.0
		if r[i] < 0 {
			coef = -1
		}
		s.cols[j] = colVec{idx: []int32{int32(i)}, val: []float64{coef}}
		s.lo[j], s.up[j] = 0, math.Inf(1)
		s.x[j] = math.Abs(r[i])
		s.basis[i] = j
		s.inB[j] = true
		s.atUp[j] = false
		s.xB[i] = s.x[j]
		s.binv[i*s.m+i] = 1 / coef
		phase1[j] = 1
	}

	st := s.iterate(phase1, true)
	if st == IterLimit {
		return IterLimit, false
	}
	infeas := 0.0
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= s.n+s.m {
			infeas += s.xB[i]
		}
	}
	if infeas > feasTol {
		return Infeasible, false
	}
	// Lock artificials at zero for phase 2. Basic artificials stuck at
	// value 0 are harmless; they just can't re-grow.
	for i := 0; i < s.m; i++ {
		j := s.n + s.m + i
		s.up[j] = 0
		if !s.inB[j] {
			s.x[j] = 0
		}
	}
	return Optimal, true
}

// phase2 minimizes the true objective from the current feasible basis
// and assembles the Solution.
func (s *solver) phase2() *Solution {
	st := s.iterate(s.cost, false)
	if st != Optimal {
		return s.failedSolution(st)
	}
	sol := &Solution{
		Status:      Optimal,
		X:           make([]float64, s.n),
		Dual:        make([]float64, s.m),
		ReducedCost: make([]float64, s.n),
		Iterations:  s.iters,
	}
	for i := 0; i < s.m; i++ {
		s.x[s.basis[i]] = s.xB[i]
	}
	copy(sol.X, s.x[:s.n])
	y := s.duals(s.cost)
	copy(sol.Dual, y)
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.cost[j] * s.x[j]
		d := s.cost[j]
		c := s.cols[j]
		for k, i := range c.idx {
			d -= y[i] * c.val[k]
		}
		sol.ReducedCost[j] = d
	}
	sol.Obj = obj
	return sol
}

func (s *solver) failedSolution(st Status) *Solution {
	return &Solution{
		Status:      st,
		X:           make([]float64, s.n),
		Dual:        make([]float64, s.m),
		ReducedCost: make([]float64, s.n),
		Iterations:  s.iters,
	}
}

// duals computes y = c_B·B⁻¹ for the given cost vector into the shared
// scratch buffer.
func (s *solver) duals(cost []float64) []float64 {
	y := s.yBuf
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < s.m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*s.m : (i+1)*s.m]
		for k, v := range row {
			y[k] += cb * v
		}
	}
	return y
}

// iterate runs primal simplex iterations with cost vector `cost` until
// optimality, unboundedness or the iteration cap. In phase 1 artificial
// columns may price; afterwards they are excluded.
func (s *solver) iterate(cost []float64, phase1 bool) Status {
	maxIter := s.iters + 5000 + 50*(s.n+s.m)
	w := s.wBuf
	for {
		if s.iters >= maxIter {
			return IterLimit
		}
		s.iters++
		y := s.duals(cost)

		// Pricing: pick the entering variable.
		limit := s.nTot
		if !phase1 {
			limit = s.n + s.m
		}
		bland := s.degen >= blandTrigger
		enter, dir := -1, 0.0
		best := -tol
		for j := 0; j < limit; j++ {
			if s.inB[j] || s.lo[j] == s.up[j] {
				continue
			}
			d := cost[j]
			c := s.cols[j]
			for k, i := range c.idx {
				d -= y[i] * c.val[k]
			}
			var score, dj float64
			if !s.atUp[j] {
				// At lower bound: attractive to increase if d < 0.
				score, dj = d, 1
			} else {
				// At upper bound: attractive to decrease if d > 0.
				score, dj = -d, -1
			}
			if score < best {
				if bland {
					enter, dir = j, dj
					break
				}
				best = score
				enter, dir = j, dj
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Direction through the basis: w = B⁻¹·A_enter.
		for i := range w {
			w[i] = 0
		}
		ec := s.cols[enter]
		for k, i := range ec.idx {
			v := ec.val[k]
			col := int(i)
			for r := 0; r < s.m; r++ {
				w[r] += s.binv[r*s.m+col] * v
			}
		}

		// Ratio test. Basic variable i moves by -t·dir·w[i].
		tMax := s.up[enter] - s.lo[enter] // bound-flip cap (may be +Inf)
		leave, leaveToUp := -1, false
		consider := func(i int, t float64, toUp bool) {
			switch {
			case t < tMax-tol:
				tMax, leave, leaveToUp = t, i, toUp
			case t <= tMax+tol:
				// Tie within tolerance: under Bland's rule prefer the
				// smallest leaving variable index (anti-cycling);
				// otherwise keep the first hit.
				if leave < 0 || (bland && s.basis[i] < s.basis[leave]) {
					if t < tMax {
						tMax = t
					}
					leave, leaveToUp = i, toUp
				}
			}
		}
		for i := 0; i < s.m; i++ {
			delta := -dir * w[i]
			bi := s.basis[i]
			switch {
			case delta < -tol:
				consider(i, (s.xB[i]-s.lo[bi])/(-delta), false)
			case delta > tol:
				if !math.IsInf(s.up[bi], 1) {
					consider(i, (s.up[bi]-s.xB[i])/delta, true)
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < tol {
			s.degen++
		} else {
			s.degen = 0
		}
		if tMax < 0 {
			tMax = 0
		}

		// Apply the step to the basic values.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= tMax * dir * w[i]
		}

		if leave < 0 {
			// Pure bound flip: the entering variable crosses to its
			// opposite bound; the basis is unchanged.
			if dir > 0 {
				s.x[enter] = s.up[enter]
				s.atUp[enter] = true
			} else {
				s.x[enter] = s.lo[enter]
				s.atUp[enter] = false
			}
			continue
		}

		// Pivot: `enter` becomes basic in row `leave`.
		out := s.basis[leave]
		s.inB[out] = false
		if leaveToUp {
			s.x[out] = s.up[out]
			s.atUp[out] = true
		} else {
			s.x[out] = s.lo[out]
			s.atUp[out] = false
		}
		var enterVal float64
		if dir > 0 {
			enterVal = s.lo[enter] + tMax
		} else {
			enterVal = s.up[enter] - tMax
		}
		s.basis[leave] = enter
		s.inB[enter] = true
		s.atUp[enter] = false
		s.xB[leave] = enterVal

		// Update B⁻¹: eliminate w in all rows but `leave`.
		piv := w[leave]
		prow := s.binv[leave*s.m : (leave+1)*s.m]
		inv := 1 / piv
		for k := range prow {
			prow[k] *= inv
		}
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*s.m : (i+1)*s.m]
			for k := range row {
				row[k] -= f * prow[k]
			}
		}
	}
}

// WarmSolver solves a sequence of LPs that share A, b, Rel and bounds
// and differ only in the cost vector — the access pattern of the BCPOP
// workload, where every upper-level pricing decision re-prices the same
// covering matrix. After the first solve the optimal basis remains
// primal feasible for any new costs, so subsequent solves run phase 2
// only, typically converging in a few pivots.
type WarmSolver struct {
	s      *solver
	n      int
	solved bool // a feasible basis is installed
	infeas bool // the feasible region is empty regardless of costs

	// Fault, when non-nil, is consulted before every solve; a non-nil
	// return aborts the solve with that error and leaves the solver
	// state (warm basis, infeasibility latch) untouched, so a later
	// retry behaves as if the faulted call never happened. Used by the
	// fault-injection layer; nil in production.
	Fault func() error
}

// NewWarmSolver validates the problem shape and prepares a reusable
// solver. p.C provides the initial costs. A WarmSolver is not safe for
// concurrent use; clone one per goroutine via NewWarmSolver.
func NewWarmSolver(p *Problem) (*WarmSolver, error) {
	lo, up, err := validate(p)
	if err != nil {
		return nil, err
	}
	return &WarmSolver{s: newSolver(p, lo, up), n: len(p.C)}, nil
}

// SolveWithCosts solves with a fresh cost vector (length n). The
// returned Solution is freshly allocated and remains valid across later
// calls.
func (ws *WarmSolver) SolveWithCosts(c []float64) (*Solution, error) {
	if len(c) != ws.n {
		return nil, fmt.Errorf("lp: got %d costs, want %d", len(c), ws.n)
	}
	for j, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("lp: bad cost on variable %d: %v", j, v)
		}
	}
	if ws.Fault != nil {
		if err := ws.Fault(); err != nil {
			return nil, fmt.Errorf("lp: %w", err)
		}
	}
	s := ws.s
	copy(s.cost[:s.n], c)
	if ws.infeas {
		return s.failedSolution(Infeasible), nil
	}
	if !ws.solved {
		sol := s.run()
		switch sol.Status {
		case Optimal:
			ws.solved = true
		case Infeasible:
			ws.infeas = true
		}
		return sol, nil
	}
	// Warm path: current basis is primal feasible; re-optimize.
	s.degen = 0
	sol := s.phase2()
	if sol.Status != Optimal {
		// Numerical trouble on the warm path (e.g. accumulated basis
		// drift): fall back to a cold solve once.
		ws.solved = false
		sol = s.run()
		if sol.Status == Optimal {
			ws.solved = true
		} else if sol.Status == Infeasible {
			ws.infeas = true
		}
	}
	return sol, nil
}

// Iterations returns the cumulative simplex iterations across all solves.
func (ws *WarmSolver) Iterations() int { return ws.s.iters }

// Reset discards the installed warm basis, so the next SolveWithCosts
// runs cold, exactly like the first solve of a fresh WarmSolver. The
// infeasibility latch is kept — an empty feasible region is a property
// of the matrix, not the costs.
//
// Solvers accumulate basis state (and its floating-point history) across
// solves; callers that need solve results to depend only on the current
// cost vector and not on which solves came before — e.g. checkpointed
// runs that must replay bit-identically after a restore — call Reset at
// their replay boundaries.
func (ws *WarmSolver) Reset() { ws.solved = false }
