package lp

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return sol
}

func requireOptimal(t *testing.T, p *Problem, wantObj float64) *Solution {
	t.Helper()
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Obj-wantObj) > 1e-7*(1+math.Abs(wantObj)) {
		t.Fatalf("obj = %v, want %v", sol.Obj, wantObj)
	}
	if err := CheckKKT(p, sol, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}
	return sol
}

func TestSimpleMaximization(t *testing.T) {
	// max x1+x2 s.t. x1+x2 <= 1  ≡  min -x1-x2.
	p := &Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 1}},
		Rel: []Relation{LE},
		B:   []float64{1},
	}
	requireOptimal(t, p, -1)
}

func TestSingleGERow(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}},
		Rel: []Relation{GE},
		B:   []float64{2},
	}
	sol := requireOptimal(t, p, 2)
	if math.Abs(sol.Dual[0]-1) > 1e-7 {
		t.Fatalf("dual = %v, want 1", sol.Dual[0])
	}
}

func TestDiagonalCoveringDuals(t *testing.T) {
	// min Σ c_i x_i s.t. x_i >= b_i: duals must equal c_i.
	c := []float64{3, 5, 7}
	b := []float64{1, 2, 4}
	p := &Problem{
		C:   c,
		A:   [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Rel: []Relation{GE, GE, GE},
		B:   b,
	}
	sol := requireOptimal(t, p, 3*1+5*2+7*4)
	for i := range c {
		if math.Abs(sol.Dual[i]-c[i]) > 1e-7 {
			t.Fatalf("dual[%d] = %v, want %v", i, sol.Dual[i], c[i])
		}
	}
}

func TestEqualityRows(t *testing.T) {
	// x1+2x2 = 4, x1-x2 = 1 → x = (2,1), obj 3.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 2}, {1, -1}},
		Rel: []Relation{EQ, EQ},
		B:   []float64{4, 1},
	}
	sol := requireOptimal(t, p, 3)
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want (2,1)", sol.X)
	}
}

func TestNoRowsBoundedByUpperBound(t *testing.T) {
	// min -x with x in [0,5] and no rows: solved purely by a bound flip.
	p := &Problem{
		C:  []float64{-1},
		A:  [][]float64{},
		B:  []float64{},
		Lo: []float64{0}, Up: []float64{5},
		Rel: []Relation{},
	}
	sol := requireOptimal(t, p, -5)
	if sol.X[0] != 5 {
		t.Fatalf("x = %v, want 5", sol.X[0])
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{0}},
		Rel: []Relation{GE},
		B:   []float64{0},
	}
	if sol := mustSolve(t, p); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		Rel: []Relation{GE, LE},
		B:   []float64{2, 1},
	}
	if sol := mustSolve(t, p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBoundsVsRow(t *testing.T) {
	// Row requires x1+x2 >= 10 but upper bounds cap at 2.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}},
		Rel: []Relation{GE},
		B:   []float64{10},
		Lo:  []float64{0, 0}, Up: []float64{1, 1},
	}
	if sol := mustSolve(t, p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestNonZeroLowerBounds(t *testing.T) {
	// min x1+x2, x1 >= 3 (bound), x1+x2 >= 5.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}},
		Rel: []Relation{GE},
		B:   []float64{5},
		Lo:  []float64{3, 0}, Up: []float64{math.Inf(1), math.Inf(1)},
	}
	sol := requireOptimal(t, p, 5)
	if sol.X[0] < 3-1e-9 {
		t.Fatalf("x1 = %v violates lower bound 3", sol.X[0])
	}
}

func TestFixedVariable(t *testing.T) {
	// x2 fixed at 2 by bounds; min x1 s.t. x1 + x2 >= 5 → x1 = 3.
	p := &Problem{
		C:   []float64{1, 0},
		A:   [][]float64{{1, 1}},
		Rel: []Relation{GE},
		B:   []float64{5},
		Lo:  []float64{0, 2}, Up: []float64{math.Inf(1), 2},
	}
	sol := requireOptimal(t, p, 3)
	if math.Abs(sol.X[1]-2) > 1e-9 {
		t.Fatalf("fixed variable moved: %v", sol.X[1])
	}
}

func TestDegenerateLP(t *testing.T) {
	// Multiple constraints active at the optimum (degenerate vertex).
	p := &Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 0}, {0, 1}, {1, 1}},
		Rel: []Relation{LE, LE, LE},
		B:   []float64{1, 1, 2},
	}
	requireOptimal(t, p, -2)
}

func TestKleeMintyLike(t *testing.T) {
	// A 4-D Klee–Minty cube variant stresses pivoting rules.
	n := 4
	c := make([]float64, n)
	A := make([][]float64, n)
	b := make([]float64, n)
	rel := make([]Relation, n)
	for i := 0; i < n; i++ {
		c[i] = -math.Pow(2, float64(n-1-i))
		A[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			A[i][j] = math.Pow(2, float64(i-j+1))
		}
		A[i][i] = 1
		b[i] = math.Pow(5, float64(i+1))
		rel[i] = LE
	}
	p := &Problem{C: c, A: A, Rel: rel, B: b}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := CheckKKT(p, sol, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}
	// Known optimum: x_n = 5^n, everything else 0 → obj = -5^n.
	want := -math.Pow(5, float64(n))
	if math.Abs(sol.Obj-want) > 1e-6*math.Abs(want) {
		t.Fatalf("obj = %v, want %v", sol.Obj, want)
	}
}

func TestInputValidation(t *testing.T) {
	bad := []*Problem{
		{C: []float64{1}, A: [][]float64{{1, 2}}, Rel: []Relation{GE}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, Rel: []Relation{GE}, B: []float64{1, 2}},
		{C: []float64{math.NaN()}, A: [][]float64{{1}}, Rel: []Relation{GE}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{math.Inf(1)}}, Rel: []Relation{GE}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, Rel: []Relation{GE}, B: []float64{math.NaN()}},
		{C: []float64{1}, A: [][]float64{{1}}, Rel: []Relation{GE}, B: []float64{1},
			Lo: []float64{2}, Up: []float64{1}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

// randomCoveringLP builds a feasible covering relaxation
// min c·x, Qx >= b, 0 <= x <= 1 with integer-ish data like the BCPOP
// lower level.
func randomCoveringLP(r *rng.Rand, n, m int) *Problem {
	p := &Problem{
		C:   make([]float64, n),
		A:   make([][]float64, m),
		Rel: make([]Relation, m),
		B:   make([]float64, m),
		Lo:  make([]float64, n),
		Up:  make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = r.Range(1, 100)
		p.Up[j] = 1
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if r.Bool(0.6) {
				p.A[i][j] = float64(r.IntRange(1, 10))
				rowSum += p.A[i][j]
			}
		}
		p.Rel[i] = GE
		// Guarantee feasibility: x = 1 satisfies every row.
		p.B[i] = math.Max(1, math.Floor(rowSum*r.Range(0.2, 0.8)))
	}
	return p
}

func TestRandomCoveringKKT(t *testing.T) {
	r := rng.New(99)
	sizes := []struct{ n, m int }{{5, 2}, {10, 5}, {30, 10}, {60, 30}, {100, 5}}
	for _, sz := range sizes {
		for trial := 0; trial < 20; trial++ {
			p := randomCoveringLP(r, sz.n, sz.m)
			sol := mustSolve(t, p)
			if sol.Status != Optimal {
				t.Fatalf("n=%d m=%d trial=%d: status %v", sz.n, sz.m, trial, sol.Status)
			}
			if err := CheckKKT(p, sol, 1e-6); err != nil {
				t.Fatalf("n=%d m=%d trial=%d: %v", sz.n, sz.m, trial, err)
			}
			// The all-ones point is feasible, so its cost upper-bounds
			// the LP optimum.
			allOnes := 0.0
			for _, c := range p.C {
				allOnes += c
			}
			if sol.Obj > allOnes+1e-6 {
				t.Fatalf("LP obj %v exceeds all-ones cost %v", sol.Obj, allOnes)
			}
			if sol.Obj < -1e-9 {
				t.Fatalf("covering LP with positive costs has negative obj %v", sol.Obj)
			}
		}
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	r := rng.New(7)
	p := randomCoveringLP(r, 40, 10)
	a := mustSolve(t, p)
	b := mustSolve(t, p)
	if a.Obj != b.Obj || a.Iterations != b.Iterations {
		t.Fatal("solver is not deterministic")
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatal("solutions differ between identical solves")
		}
	}
}

func TestLargeCovering(t *testing.T) {
	r := rng.New(1234)
	p := randomCoveringLP(r, 500, 30)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := CheckKKT(p, sol, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}
}

func TestRelationString(t *testing.T) {
	if GE.String() != ">=" || LE.String() != "<=" || EQ.String() != "=" {
		t.Fatal("Relation.String broken")
	}
	if Relation(9).String() != "?" {
		t.Fatal("unknown relation should print ?")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q", s, s.String())
		}
	}
	if Status(9).String() != "unknown" {
		t.Fatal("unknown status should print unknown")
	}
}

func BenchmarkSolveCovering100x5(b *testing.B)  { benchCovering(b, 100, 5) }
func BenchmarkSolveCovering250x10(b *testing.B) { benchCovering(b, 250, 10) }
func BenchmarkSolveCovering500x30(b *testing.B) { benchCovering(b, 500, 30) }

func benchCovering(b *testing.B, n, m int) {
	r := rng.New(5)
	p := randomCoveringLP(r, n, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("solve failed: %v %v", err, sol.Status)
		}
	}
}
