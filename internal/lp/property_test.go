package lp

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

// randomMixedLP generates a bounded LP with mixed row senses and signed
// coefficients. Boundedness is forced by finite variable bounds, so
// every generated problem is either optimal or infeasible — never
// unbounded — which lets the property check run KKT on all solved cases.
func randomMixedLP(r *rng.Rand) *Problem {
	n := r.IntRange(2, 8)
	m := r.IntRange(1, 6)
	p := &Problem{
		C:   make([]float64, n),
		A:   make([][]float64, m),
		Rel: make([]Relation, m),
		B:   make([]float64, m),
		Lo:  make([]float64, n),
		Up:  make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = r.Range(-5, 5)
		p.Lo[j] = r.Range(-3, 0)
		p.Up[j] = p.Lo[j] + r.Range(0.5, 6)
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if r.Bool(0.7) {
				p.A[i][j] = r.Range(-4, 4)
			}
		}
		p.Rel[i] = []Relation{GE, LE, EQ}[r.Intn(3)]
		p.B[i] = r.Range(-6, 6)
	}
	return p
}

func TestMixedRelationLPsSatisfyKKT(t *testing.T) {
	r := rng.New(163)
	solved, infeasible := 0, 0
	for trial := 0; trial < 400; trial++ {
		p := randomMixedLP(r)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		switch sol.Status {
		case Optimal:
			if err := CheckKKT(p, sol, 1e-6); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			solved++
		case Infeasible:
			infeasible++
		case Unbounded:
			t.Fatalf("trial %d: bounded variables cannot yield unbounded LP", trial)
		case IterLimit:
			t.Fatalf("trial %d: iteration limit on a tiny LP", trial)
		}
	}
	if solved < 50 {
		t.Fatalf("only %d/400 solvable — generator too restrictive to be meaningful", solved)
	}
	if infeasible == 0 {
		t.Fatal("generator never produced infeasible programs; EQ handling untested")
	}
}

func TestObjectiveMonotoneInCosts(t *testing.T) {
	// Raising one cost coefficient can only raise (or keep) the optimal
	// value of a minimization LP when that variable's lower bound is
	// nonnegative.
	r := rng.New(167)
	for trial := 0; trial < 60; trial++ {
		p := randomCoveringLP(r, 20, 5)
		base, err := Solve(p)
		if err != nil || base.Status != Optimal {
			t.Fatal("base solve failed")
		}
		j := r.Intn(len(p.C))
		bumped := &Problem{C: append([]float64(nil), p.C...), A: p.A, Rel: p.Rel, B: p.B, Lo: p.Lo, Up: p.Up}
		bumped.C[j] += r.Range(0.1, 10)
		after, err := Solve(bumped)
		if err != nil || after.Status != Optimal {
			t.Fatal("bumped solve failed")
		}
		if after.Obj < base.Obj-1e-7*(1+math.Abs(base.Obj)) {
			t.Fatalf("trial %d: raising c[%d] lowered the optimum %v → %v",
				trial, j, base.Obj, after.Obj)
		}
	}
}

func TestObjectiveMonotoneInRHS(t *testing.T) {
	// Tightening a covering requirement (raising b) can only raise the
	// optimal cost.
	r := rng.New(173)
	for trial := 0; trial < 60; trial++ {
		p := randomCoveringLP(r, 20, 5)
		base, err := Solve(p)
		if err != nil || base.Status != Optimal {
			t.Fatal("base solve failed")
		}
		k := r.Intn(len(p.B))
		tightened := &Problem{C: p.C, A: p.A, Rel: p.Rel, B: append([]float64(nil), p.B...), Lo: p.Lo, Up: p.Up}
		tightened.B[k] += r.Range(0.1, 2)
		after, err := Solve(tightened)
		if err != nil {
			t.Fatal(err)
		}
		if after.Status == Infeasible {
			continue // pushed past coverability: fine
		}
		if after.Obj < base.Obj-1e-7*(1+math.Abs(base.Obj)) {
			t.Fatalf("trial %d: tightening b[%d] lowered the optimum %v → %v",
				trial, k, base.Obj, after.Obj)
		}
	}
}

func TestDualsPriceRHSPerturbations(t *testing.T) {
	// Local sensitivity: for a small db on row k, the optimum moves by
	// approximately y_k·db (exact while the basis stays optimal).
	r := rng.New(179)
	checked := 0
	for trial := 0; trial < 40; trial++ {
		p := randomCoveringLP(r, 25, 4)
		base, err := Solve(p)
		if err != nil || base.Status != Optimal {
			t.Fatal("base solve failed")
		}
		k := r.Intn(len(p.B))
		const db = 1e-4
		pert := &Problem{C: p.C, A: p.A, Rel: p.Rel, B: append([]float64(nil), p.B...), Lo: p.Lo, Up: p.Up}
		pert.B[k] += db
		after, err := Solve(pert)
		if err != nil || after.Status != Optimal {
			continue
		}
		predicted := base.Obj + base.Dual[k]*db
		if math.Abs(after.Obj-predicted) > 1e-6*(1+math.Abs(base.Obj)) {
			t.Fatalf("trial %d: dual prediction %v vs actual %v (y=%v)",
				trial, predicted, after.Obj, base.Dual[k])
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d sensitivity checks ran", checked)
	}
}
