package lp

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestNegativeRHSPhase1Signs(t *testing.T) {
	// x1 - x2 = -3 with x >= 0 forces a negative phase-1 residual,
	// exercising the sign handling of the artificial basis inverse.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, -1}},
		Rel: []Relation{EQ},
		B:   []float64{-3},
	}
	sol := requireOptimal(t, p, 3)
	if math.Abs(sol.X[1]-3) > 1e-7 {
		t.Fatalf("x = %v, want (0,3)", sol.X)
	}
}

func TestNegativeRHSLERow(t *testing.T) {
	// -x <= -2  ≡  x >= 2.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		Rel: []Relation{LE},
		B:   []float64{-2},
	}
	requireOptimal(t, p, 2)
}

func TestCrashBasisSkipsPhase1(t *testing.T) {
	// A covering LP where x=1 is feasible: the all-upper crash basis
	// should produce far fewer iterations than problem size would
	// suggest, and identical answers either way.
	r := rng.New(21)
	p := randomCoveringLP(r, 200, 10)
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := CheckKKT(p, sol, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestWarmSolverMatchesColdSolves(t *testing.T) {
	r := rng.New(33)
	p := randomCoveringLP(r, 120, 10)
	ws, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		c := make([]float64, len(p.C))
		for j := range c {
			c[j] = r.Range(1, 100)
		}
		warm, err := ws.SolveWithCosts(c)
		if err != nil {
			t.Fatal(err)
		}
		cold := mustSolve(t, &Problem{C: c, A: p.A, Rel: p.Rel, B: p.B, Lo: p.Lo, Up: p.Up})
		if warm.Status != Optimal || cold.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v", trial, warm.Status, cold.Status)
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: warm obj %v != cold obj %v", trial, warm.Obj, cold.Obj)
		}
		pc := &Problem{C: c, A: p.A, Rel: p.Rel, B: p.B, Lo: p.Lo, Up: p.Up}
		if err := CheckKKT(pc, warm, 1e-6); err != nil {
			t.Fatalf("trial %d warm KKT: %v", trial, err)
		}
	}
}

func TestWarmSolverInfeasibleSticks(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		Rel: []Relation{GE, LE},
		B:   []float64{2, 1},
	}
	ws, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		sol, err := ws.SolveWithCosts([]float64{float64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Infeasible {
			t.Fatalf("trial %d: status %v, want infeasible", trial, sol.Status)
		}
	}
}

func TestWarmSolverRejectsBadCosts(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1}}, Rel: []Relation{GE}, B: []float64{1}}
	ws, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.SolveWithCosts([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length costs accepted")
	}
	if _, err := ws.SolveWithCosts([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN cost accepted")
	}
}

func TestWarmSolverSolutionsIndependent(t *testing.T) {
	r := rng.New(55)
	p := randomCoveringLP(r, 30, 5)
	ws, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	c1 := make([]float64, len(p.C))
	c2 := make([]float64, len(p.C))
	for j := range c1 {
		c1[j] = r.Range(1, 100)
		c2[j] = r.Range(1, 100)
	}
	s1, _ := ws.SolveWithCosts(c1)
	x1 := append([]float64(nil), s1.X...)
	if _, err := ws.SolveWithCosts(c2); err != nil {
		t.Fatal(err)
	}
	for j := range x1 {
		if s1.X[j] != x1[j] {
			t.Fatal("earlier Solution mutated by later solve")
		}
	}
}

func BenchmarkWarmResolve500x30(b *testing.B) {
	r := rng.New(77)
	p := randomCoveringLP(r, 500, 30)
	ws, err := NewWarmSolver(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ws.SolveWithCosts(p.C); err != nil {
		b.Fatal(err)
	}
	// Perturb a small leader-sized block of costs each resolve, like a
	// BCPOP pricing move.
	c := append([]float64(nil), p.C...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 50; j++ {
			c[j] = r.Range(1, 100)
		}
		sol, err := ws.SolveWithCosts(c)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("resolve failed: %v %v", err, sol.Status)
		}
	}
}
