package core

import (
	"reflect"
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/rng"
	"carbon/internal/telemetry"
)

// distinctPrey counts the distinct genotypes (exact price bits) in the
// engine's current prey population — the number of LP solves the
// shared-relaxation cache must perform for the next generation.
func distinctPrey(e *Engine) int {
	seen := make(map[string]struct{}, len(e.prey))
	for _, x := range e.prey {
		seen[bcpop.Key(x)] = struct{}{}
	}
	return len(seen)
}

// TestGenerationLPSolveCounts is the cache's accounting contract: a
// generation at LLPopSize=L, sample=S, ULPopSize=U performs exactly
// (distinct prey) LP solves — at most U, and strictly below the issue's
// S+U bound because the prey wave reuses the sampled relaxations.
// Before the cache it was L×S + U.
func TestGenerationLPSolveCounts(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(17)
	cfg.Workers = 2
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	L, U := cfg.LLPopSize, cfg.ULPopSize
	S := cfg.EffectiveSample()
	gens := 0
	wantSolves := int64(0)
	for gens < 4 {
		distinct := distinctPrey(e)
		if distinct > U {
			t.Fatalf("distinct prey %d exceeds population %d", distinct, U)
		}
		if !e.Step() {
			t.Fatal(e.Err())
		}
		gens++
		wantSolves += int64(distinct)
	}

	read := func(name string) int64 { return reg.Counter(name).Load() }
	if got := read("bcpop.lp_solves"); got != wantSolves {
		t.Fatalf("lp_solves = %d, want %d (Σ distinct prey per generation)", got, wantSolves)
	}
	if got := read("bcpop.cache_misses"); got != wantSolves {
		t.Fatalf("cache_misses = %d, want %d", got, wantSolves)
	}
	wantEvals := int64(gens) * int64(L*S+U)
	if got := read("bcpop.tree_evals"); got != wantEvals {
		t.Fatalf("tree_evals = %d, want %d (budget accounting is unchanged)", got, wantEvals)
	}
	if got := read("bcpop.cache_hits"); got != wantEvals {
		t.Fatalf("cache_hits = %d, want %d (every evaluation served from the cache)", got, wantEvals)
	}
	// The pre-cache hot path would have solved L×S + U times per
	// generation; the issue's post-cache bound is S + U. Both must
	// dominate the measured count.
	if bound := int64(gens) * int64(S+U); wantSolves > bound {
		t.Fatalf("solves %d exceed the S+U bound %d", wantSolves, bound)
	}
}

// TestDuplicatePreyShareOneSolve: bit-identical genotypes (elitism,
// cloning) must hash to a single LP solve per generation.
func TestDuplicatePreyShareOneSolve(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(23)
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse the whole population onto one genotype.
	for i := range e.prey {
		e.prey[i] = append([]float64(nil), e.prey[0]...)
	}
	if !e.Step() {
		t.Fatal(e.Err())
	}
	if got := reg.Counter("bcpop.lp_solves").Load(); got != 1 {
		t.Fatalf("lp_solves = %d, want 1 (all prey share one genotype)", got)
	}
	L, U := cfg.LLPopSize, cfg.ULPopSize
	S := cfg.EffectiveSample()
	if got := reg.Counter("bcpop.cache_hits").Load(); got != int64(L*S+U) {
		t.Fatalf("cache_hits = %d, want %d", got, L*S+U)
	}
	// All predators saw identical samples, all prey identical contexts.
	for i := 1; i < len(e.preyFit); i++ {
		if e.preyFit[i] != e.preyFit[0] {
			t.Fatalf("identical prey got different fitness: %v vs %v", e.preyFit[i], e.preyFit[0])
		}
	}
}

func TestEffectiveSampleClamp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreySample = 4
	if got := cfg.EffectiveSample(); got != 4 {
		t.Fatalf("EffectiveSample = %d, want 4", got)
	}
	cfg.PreySample = cfg.ULPopSize + 50
	if got := cfg.EffectiveSample(); got != cfg.ULPopSize {
		t.Fatalf("EffectiveSample = %d, want %d (clamped)", got, cfg.ULPopSize)
	}
}

// TestPreySampleBudgetClamp is the budget-accounting regression test:
// with PreySample > ULPopSize, CanStep used to charge the unclamped
// product and stop early with lower-level budget to spare. The run must
// spend the full budget at the clamped per-generation cost.
func TestPreySampleBudgetClamp(t *testing.T) {
	mk := smallMarket(t)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.ULPopSize, cfg.LLPopSize = 4, 4
	cfg.ULArchiveSize, cfg.LLArchiveSize = 4, 4
	cfg.PreySample = 10 // > ULPopSize: effective sample is 4
	cfg.ULEvalBudget = 12
	cfg.LLEvalBudget = 48 // exactly 3 generations at 4×4 LL evals each
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens != 3 {
		t.Fatalf("ran %d generations, want 3 (budget must be spent, not stranded)", res.Gens)
	}
	if res.LLEvals != 48 || res.ULEvals != 12 {
		t.Fatalf("consumed UL=%d LL=%d, want 12 and 48", res.ULEvals, res.LLEvals)
	}
}

// TestResultMidRunDoesNotPerturbRun is the Result/RNG regression test:
// under CostFitness, Result re-measures the best tree's gap on a prey
// sample. Drawing that sample from the live RNG stream perturbed every
// subsequent Step; with the derived RNG, {step k, Result, step to
// completion} must equal an uninterrupted run exactly.
func TestResultMidRunDoesNotPerturbRun(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(21)
	cfg.CostFitness = true

	ref, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2 && e.Step(); k++ {
	}
	mid, err := e.Result() // must be a pure observation
	if err != nil {
		t.Fatal(err)
	}
	mid2, err := e.Result() // and idempotent
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultKey(mid), resultKey(mid2)) {
		t.Fatal("repeated mid-run Result calls disagree")
	}
	for e.Step() {
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultKey(res), resultKey(ref)) {
		t.Fatalf("mid-run Result perturbed the run:\ninterrupted:   %+v\nuninterrupted: %+v",
			resultKey(res), resultKey(ref))
	}
}

// TestInjectAtMaxElites: the degenerate island-migration configuration
// (Elites = PopSize−1, the largest Validate accepts) must inject into
// the single non-elite slot without panicking.
func TestInjectAtMaxElites(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(8)
	cfg.ULPopSize, cfg.LLPopSize = 3, 3
	cfg.ULArchiveSize, cfg.LLArchiveSize = 3, 3
	cfg.Elites = 2
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	migrant := mk.PriceBounds().RandomVector(rng.New(99))
	if err := e.InjectPrey(migrant); err != nil {
		t.Fatal(err)
	}
	for i, v := range migrant {
		if e.prey[2][i] != v {
			t.Fatal("migrant prey not placed in the non-elite slot")
		}
	}
	tree := e.set.Ramped(rng.New(100), 1, 2)
	if err := e.InjectPredator(tree); err != nil {
		t.Fatal(err)
	}
	if e.predators[2].String(e.set) != tree.String(e.set) {
		t.Fatal("migrant predator not placed in the non-elite slot")
	}
	if !e.Step() {
		t.Fatal(e.Err())
	}

	// Validate must keep rejecting Elites == PopSize — the guard that
	// makes the slot arithmetic above safe.
	bad := cfg
	bad.Elites = bad.ULPopSize
	if err := bad.Validate(); err == nil {
		t.Fatal("Elites == ULPopSize accepted")
	}
	bad = cfg
	bad.LLPopSize = 5
	bad.Elites = 5 // == LLPopSize while < ULPopSize is impossible here; check LL side directly
	bad.ULPopSize = 8
	if err := bad.Validate(); err == nil {
		t.Fatal("Elites == LLPopSize accepted")
	}
}

// BenchmarkEngineStep times whole generations on a mid-size market and
// reports the measured LP solves per generation — the headline number
// of the shared-relaxation cache (was L×S+U = 48 per generation at
// this configuration; now at most U = 16).
func BenchmarkEngineStep(b *testing.B) {
	mk := smallMarket(b)
	cfg := smallConfig(1)
	cfg.ULEvalBudget = 1 << 30
	cfg.LLEvalBudget = 1 << 30
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	e, err := NewEngine(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal(e.Err())
		}
	}
	b.StopTimer()
	solves := reg.Counter("bcpop.lp_solves").Load()
	b.ReportMetric(float64(solves)/float64(b.N), "lp_solves/gen")
}
