package core

import (
	"math"
	"reflect"
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/orlib"
	"carbon/internal/stats"
)

func smallMarket(t testing.TB) *bcpop.Market {
	t.Helper()
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

// smallConfig shrinks Table II budgets so integration tests stay fast.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize = 16
	cfg.ULArchiveSize = 16
	cfg.ULEvalBudget = 200
	cfg.LLPopSize = 16
	cfg.LLArchiveSize = 16
	cfg.LLEvalBudget = 600
	cfg.PreySample = 2
	return cfg
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ULPopSize != 100 || cfg.ULArchiveSize != 100 || cfg.ULEvalBudget != 50000 {
		t.Fatalf("UL row mismatch: %+v", cfg)
	}
	if cfg.ULCrossoverProb != 0.85 || cfg.ULMutationProb != 0.01 {
		t.Fatalf("UL operator probabilities: %+v", cfg)
	}
	if cfg.LLPopSize != 100 || cfg.LLArchiveSize != 100 || cfg.LLEvalBudget != 50000 {
		t.Fatalf("LL row mismatch: %+v", cfg)
	}
	if cfg.LLCrossoverProb != 0.85 || cfg.LLMutationProb != 0.10 || cfg.LLReproProb != 0.05 {
		t.Fatalf("GP operator probabilities: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.ULPopSize = 1 },
		func(c *Config) { c.LLPopSize = 0 },
		func(c *Config) { c.ULArchiveSize = 0 },
		func(c *Config) { c.ULEvalBudget = 10 },
		func(c *Config) { c.LLCrossoverProb = 0.9; c.LLMutationProb = 0.2 },
		func(c *Config) { c.PreySample = 0 },
		func(c *Config) { c.Elites = -1 },
		func(c *Config) { c.Elites = 200 },
		// Elites must stay strictly below BOTH population sizes, or
		// island migration has no non-elite slot to inject into.
		func(c *Config) { c.Elites = c.ULPopSize },
		func(c *Config) { c.Elites = c.LLPopSize },
		func(c *Config) { c.InitDepthMax = 0; c.InitDepthMin = 3 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRunProducesResult(t *testing.T) {
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations ran")
	}
	if res.ULEvals > 200 || res.LLEvals > 600 {
		t.Fatalf("budget exceeded: UL=%d LL=%d", res.ULEvals, res.LLEvals)
	}
	if res.ULEvals == 0 || res.LLEvals == 0 {
		t.Fatal("no evaluations recorded")
	}
	if len(res.Best.Price) != mk.Leaders() {
		t.Fatalf("best price has %d genes, want %d", len(res.Best.Price), mk.Leaders())
	}
	if res.Best.TreeStr == "" {
		t.Fatal("no best heuristic recorded")
	}
	if res.Best.GapPct < 0 {
		t.Fatalf("negative best gap %v", res.Best.GapPct)
	}
	if res.Best.Revenue < 0 {
		t.Fatalf("negative revenue %v", res.Best.Revenue)
	}
	if len(res.ULArchive) == 0 || len(res.GPArchive) == 0 {
		t.Fatal("archives empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := smallMarket(t)
	a, err := Run(mk, smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Revenue != b.Best.Revenue || a.Best.GapPct != b.Best.GapPct {
		t.Fatalf("same seed diverged: (%v,%v) vs (%v,%v)",
			a.Best.Revenue, a.Best.GapPct, b.Best.Revenue, b.Best.GapPct)
	}
	if a.Best.TreeStr != b.Best.TreeStr {
		t.Fatalf("best trees differ: %s vs %s", a.Best.TreeStr, b.Best.TreeStr)
	}
	if a.Gens != b.Gens || a.ULEvals != b.ULEvals || a.LLEvals != b.LLEvals {
		t.Fatal("accounting diverged")
	}
}

func TestRunReproduciblePerWorkerCount(t *testing.T) {
	// Determinism contract: identical (seed, workers) pairs reproduce
	// bit-for-bit — the precompute wave stripes the distinct prey
	// genotypes contiguously and each worker warm-chains its stripe in
	// order. Across *different* worker counts the chains re-stripe and
	// the warm solvers may return alternative optimal bases (different
	// duals, same bound), so only same-worker-count reproducibility is
	// promised. See DESIGN.md §5e.
	mk := smallMarket(t)
	for _, workers := range []int{1, 3, 4} {
		cfg := smallConfig(9)
		cfg.Workers = workers
		a, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resultKey(a), resultKey(b)) {
			t.Fatalf("workers=%d: same config diverged", workers)
		}
	}
}

func TestSeedsProduceDifferentRuns(t *testing.T) {
	mk := smallMarket(t)
	a, err := Run(mk, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Revenue == b.Best.Revenue && a.Best.TreeStr == b.Best.TreeStr &&
		a.Best.GapPct == b.Best.GapPct {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestCurvesAreArchiveMonotone(t *testing.T) {
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Monotonicity(res.ULCurve.Y, +1); m != 1 {
		t.Fatalf("UL curve not nondecreasing: monotonicity %v", m)
	}
	if m := stats.Monotonicity(res.GapCurve.Y, -1); m != 1 {
		t.Fatalf("gap curve not nonincreasing: monotonicity %v", m)
	}
	// Curves advance along the evaluation axis.
	for i := 1; i < len(res.ULCurve.X); i++ {
		if res.ULCurve.X[i] <= res.ULCurve.X[i-1] {
			t.Fatal("UL curve x-axis not increasing")
		}
	}
}

func TestEvolutionImprovesOverInitialGeneration(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(11)
	cfg.ULEvalBudget = 600
	cfg.LLEvalBudget = 2400
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstGap := res.GapCurve.Y[0]
	lastGap := res.GapCurve.Y[len(res.GapCurve.Y)-1]
	if lastGap > firstGap {
		t.Fatalf("gap worsened: %v → %v", firstGap, lastGap)
	}
	firstF := res.ULCurve.Y[0]
	lastF := res.ULCurve.Y[len(res.ULCurve.Y)-1]
	if lastF < firstF {
		t.Fatalf("revenue worsened: %v → %v", firstF, lastF)
	}
	if math.IsNaN(lastGap) || math.IsNaN(lastF) {
		t.Fatal("NaN in curves")
	}
}

func TestBestHeuristicBeatsRandomTree(t *testing.T) {
	// The evolved best gap should be competitive with (usually beat) the
	// median random-tree gap on this market; at minimum it must be
	// dramatically below the worst-case.
	mk := smallMarket(t)
	cfg := smallConfig(13)
	cfg.LLEvalBudget = 2000
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.GapPct > 50 {
		t.Fatalf("evolved heuristic gap %v%% is not credible", res.Best.GapPct)
	}
}

func TestTopK(t *testing.T) {
	fit := []float64{5, 1, 9, 3}
	better := func(i, j int) bool { return fit[i] < fit[j] }
	got := topK(fit, 2, better)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("topK = %v", got)
	}
	if topK(fit, 0, better) != nil {
		t.Fatal("topK(0) should be nil")
	}
	all := topK(fit, 10, better)
	if len(all) != 4 {
		t.Fatalf("topK over-asking returned %d", len(all))
	}
}

func BenchmarkCarbonGeneration(b *testing.B) {
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 100, M: 5}, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ULPopSize = 20
	cfg.LLPopSize = 20
	cfg.PreySample = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One generation's worth of budget.
		cfg.Seed = uint64(i + 1)
		cfg.ULEvalBudget = 20
		cfg.LLEvalBudget = 40
		if _, err := Run(mk, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
