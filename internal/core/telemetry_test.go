package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"carbon/internal/telemetry"
)

// TestResultDoesNotAliasArchive is the regression test for the Result
// aliasing bug: Best.Price (and the archive entries) must be defensive
// copies, so a caller mutating the returned result cannot corrupt the
// live archives of a still-running engine.
func TestResultDoesNotAliasArchive(t *testing.T) {
	e, err := NewEngine(smallMarket(t), smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && e.Step(); i++ {
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best.Price) == 0 || len(res.ULArchive) == 0 {
		t.Fatal("run produced no archived best")
	}
	for i := range res.Best.Price {
		res.Best.Price[i] = -1e9
	}
	for i := range res.ULArchive {
		for j := range res.ULArchive[i].Item {
			res.ULArchive[i].Item[j] = -1e9
		}
	}
	for i := range res.ULCurve.Y {
		res.ULCurve.Y[i] = -1e9
	}
	best, _, ok := e.BestPrey()
	if !ok {
		t.Fatal("archive lost its best")
	}
	for _, v := range best {
		if v == -1e9 {
			t.Fatal("mutating Result.Best.Price corrupted the archive")
		}
	}
	res2, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res2.Best.Price {
		if v == -1e9 {
			t.Fatal("archive best price was aliased by the first Result")
		}
	}
	for _, v := range res2.ULCurve.Y {
		if v == -1e9 {
			t.Fatal("convergence curve was aliased by the first Result")
		}
	}
}

// resultKey extracts the deterministic parts of a Result (wall-clock
// telemetry never lives in Result, so the whole comparison is exact).
func resultKey(res *Result) map[string]any {
	return map[string]any{
		"gens":    res.Gens,
		"ulevals": res.ULEvals,
		"llevals": res.LLEvals,
		"price":   res.Best.Price,
		"revenue": res.Best.Revenue,
		"gap":     res.Best.GapPct,
		"tree":    res.Best.TreeStr,
		"ulcurve": res.ULCurve,
		"gapcrv":  res.GapCurve,
	}
}

// TestDeterminismUnderTelemetry is the golden determinism contract:
// a seeded Run with an observer, a JSONL trace sink and a metrics
// registry attached produces a byte-identical Result to the same Run
// with telemetry off.
func TestDeterminismUnderTelemetry(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(42)

	bare, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	obs := NewJSONLObserver(&trace)
	gens := 0
	cfg2 := cfg
	cfg2.Observer = MultiObserver(obs, FuncObserver{Generation: func(GenStats) { gens++ }})
	cfg2.Metrics = telemetry.NewRegistry()
	cfg2.RunLabel = "golden"
	instrumented, err := Run(mk, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(resultKey(bare), resultKey(instrumented)) {
		t.Fatalf("telemetry perturbed the run:\nbare:         %+v\ninstrumented: %+v",
			resultKey(bare), resultKey(instrumented))
	}
	if gens != bare.Gens {
		t.Fatalf("observer saw %d generations, run had %d", gens, bare.Gens)
	}
	if got := cfg2.Metrics.Counter("core.generations").Load(); got != int64(bare.Gens) {
		t.Fatalf("metrics counted %d generations, want %d", got, bare.Gens)
	}
	if got := cfg2.Metrics.Counter("bcpop.tree_evals").Load(); got <= 0 {
		t.Fatal("evaluator metrics never incremented")
	}
}

// TestTraceRoundTrip validates the JSONL schema: one well-formed
// generation event per generation, a final done event, and lossless
// decode through ReadTrace.
func TestTraceRoundTrip(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(7)
	var buf bytes.Buffer
	obs := NewJSONLObserver(&buf)
	cfg.Observer = obs
	cfg.RunLabel = "roundtrip"
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var genEvents []GenStats
	var done *DoneStats
	for _, ev := range events {
		switch ev.Event {
		case "generation":
			genEvents = append(genEvents, *ev.Gen)
		case "done":
			done = ev.Done
		}
	}
	if len(genEvents) != res.Gens {
		t.Fatalf("trace holds %d generation events, run had %d generations", len(genEvents), res.Gens)
	}
	for i, gs := range genEvents {
		if gs.Gen != i+1 {
			t.Fatalf("event %d has gen %d", i, gs.Gen)
		}
		if gs.Label != "roundtrip" || gs.Island != 0 {
			t.Fatalf("event %d mislabeled: %+v", i, gs)
		}
		if gs.ULEvals <= 0 || gs.LLEvals <= 0 || gs.ULEvals > gs.ULBudget || gs.LLEvals > gs.LLBudget {
			t.Fatalf("event %d budget accounting wrong: %+v", i, gs)
		}
		if gs.ULArchive <= 0 || gs.GPArchive <= 0 {
			t.Fatalf("event %d archive sizes missing: %+v", i, gs)
		}
		if math.IsNaN(gs.PreyMean) || math.IsNaN(gs.PredMean) || gs.PreyStd < 0 {
			t.Fatalf("event %d population stats invalid: %+v", i, gs)
		}
	}
	last := genEvents[len(genEvents)-1]
	if last.BestRevenue != res.Best.Revenue {
		t.Fatalf("last event best revenue %v, result %v", last.BestRevenue, res.Best.Revenue)
	}
	if done == nil {
		t.Fatal("trace has no done event")
	}
	if done.Gens != res.Gens || done.BestRevenue != res.Best.Revenue || done.BestTree != res.Best.TreeStr {
		t.Fatalf("done event %+v disagrees with result", done)
	}

	// Unknown schemas must be rejected, not silently misread.
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"schema":"bogus/v9","event":"generation","gen":{}}` + "\n"))); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestStepErrorPropagation: a corrupted population must surface through
// Err()/Run as an error, not a cross-goroutine panic.
func TestStepErrorPropagation(t *testing.T) {
	e, err := NewEngine(smallMarket(t), smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal("healthy engine refused to step")
	}
	for i := range e.prey {
		e.prey[i] = []float64{1} // wrong dimension: every evaluation fails
	}
	if e.Step() {
		t.Fatal("Step succeeded with a corrupt population")
	}
	if e.Err() == nil {
		t.Fatal("Err() is nil after a failed Step")
	}
	if e.Step() {
		t.Fatal("engine stepped again after a terminal error")
	}
	// Run must return the error, not panic.
	mk := smallMarket(t)
	cfg := smallConfig(3)
	cfg.PreySample = 1
	e2, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e2.prey {
		e2.prey[i] = []float64{1}
	}
	for e2.Step() {
	}
	if e2.Err() == nil {
		t.Fatal("corrupted engine finished without error")
	}
}

// TestIslandsObserverAndMetrics attaches a shared observer and registry
// to a concurrent island run — under -race this is the concurrency
// check for the observer path; functionally it verifies island
// labeling, migration events and error-free aggregation.
func TestIslandsObserverAndMetrics(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(5)
	cfg.ULEvalBudget, cfg.LLEvalBudget = 400, 1200
	var trace bytes.Buffer
	obs := NewJSONLObserver(&trace)
	cfg.Observer = obs
	cfg.Metrics = telemetry.NewRegistry()
	ic := IslandConfig{Islands: 2, MigrateEvery: 2, Migrants: 1}

	res, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	genByIsland := map[int]int{}
	migrations := 0
	for _, ev := range events {
		switch ev.Event {
		case "generation":
			if ev.Gen.Island < 0 || ev.Gen.Island >= ic.Islands {
				t.Fatalf("generation event from island %d", ev.Gen.Island)
			}
			genByIsland[ev.Gen.Island]++
		case "migration":
			migrations++
		}
	}
	for i := 0; i < ic.Islands; i++ {
		if genByIsland[i] == 0 {
			t.Fatalf("island %d emitted no generation events (%v)", i, genByIsland)
		}
	}
	if want := res.Migrations * ic.Islands; migrations != want {
		t.Fatalf("trace holds %d migration events, want %d", migrations, want)
	}
	if got := cfg.Metrics.Counter("core.generations").Load(); got <= 0 {
		t.Fatal("shared registry aggregated nothing")
	}
}

// TestObserverAdapters covers the FuncObserver nil-hook tolerance and
// MultiObserver fan-out (including nil members).
func TestObserverAdapters(t *testing.T) {
	var gens, dones int
	a := FuncObserver{Generation: func(GenStats) { gens++ }}
	b := FuncObserver{Done: func(*Result) { dones++ }}
	m := MultiObserver(a, nil, b)
	m.OnGeneration(GenStats{})
	m.OnMigration(MigrationStats{}) // no hooks set anywhere: must not panic
	m.OnDone(&Result{})
	if gens != 1 || dones != 1 {
		t.Fatalf("fan-out gens=%d dones=%d", gens, dones)
	}
}
