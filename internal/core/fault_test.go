package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"carbon/internal/fault"
)

// lpFaultAfter returns an LP-fault hook that fails `limit` solves,
// starting after the first `after` succeed — the canonical "finite
// failure window" used throughout these tests.
func lpFaultAfter(after, limit int) func() error {
	return fault.New(1).Site(fault.SiteLPSolve, fault.Rule{Every: 1, After: after, Limit: limit}).Strike
}

// TestPartialFaultQuarantines pins the tentpole's graceful-degradation
// contract: a failed LP solve quarantines the affected prey for the
// generation — worst-known fitness, fault counted — and the run keeps
// going instead of dying.
func TestPartialFaultQuarantines(t *testing.T) {
	cfg := smallConfig(41)
	// Let generation 1's solve wave (≤16 distinct prey) succeed, then
	// fail exactly one solve of generation 2.
	cfg.LPFault = lpFaultAfter(16, 1)
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for e.Step() {
		gens++
	}
	if err := e.Err(); err != nil {
		t.Fatalf("partial fault killed the run: %v", err)
	}
	if gens < 2 {
		t.Fatalf("run stopped after %d generations", gens)
	}
	if f := e.Faults(); f < 1 {
		t.Fatalf("Faults() = %d, want ≥ 1", f)
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != e.Faults() {
		t.Fatalf("Result.Faults = %d, Engine.Faults = %d", res.Faults, e.Faults())
	}
}

// TestFaultHooksWithoutStrikesAreBitIdentical is the determinism half
// of the quarantine contract: the whole quarantine machinery (installed
// hooks, slot-error bookkeeping, NaN prefill, per-index scratch)
// consumes no RNG and perturbs nothing — an engine whose hooks never
// fire is bit-identical, generation by generation, to one without them.
func TestFaultHooksWithoutStrikesAreBitIdentical(t *testing.T) {
	mk := smallMarket(t)

	clean, err := NewEngine(mk, smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(43)
	// Installed but inert: the failure window opens far past the run.
	cfg.LPFault = lpFaultAfter(1_000_000, 1)
	cfg.EvalFault = fault.New(1).Site("eval", fault.Rule{Every: 1, After: 1_000_000}).Strike
	hooked, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for gen := 1; ; gen++ {
		a, b := clean.Step(), hooked.Step()
		if a != b {
			t.Fatalf("generation %d: clean stepped=%v, hooked stepped=%v", gen, a, b)
		}
		if !a {
			break
		}
		if clean.r.State() != hooked.r.State() {
			t.Fatalf("generation %d: RNG streams diverged", gen)
		}
	}
	cr, err := clean.Result()
	if err != nil {
		t.Fatal(err)
	}
	hr, err := hooked.Result()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Best.Revenue != hr.Best.Revenue || cr.Best.TreeStr != hr.Best.TreeStr {
		t.Fatalf("inert hooks changed the result: %v/%q vs %v/%q",
			cr.Best.Revenue, cr.Best.TreeStr, hr.Best.Revenue, hr.Best.TreeStr)
	}
}

// TestFaultedRunDeterministic: the same seed with the same fault
// pattern reproduces bit-for-bit — injected failures are part of the
// deterministic replay, which is what lets a chaos run assert exact
// results rather than "it did not crash". (A faulted run may legally
// differ from a fault-free one: selection responds to the substituted
// worst-known fitness, as it must.)
func TestFaultedRunDeterministic(t *testing.T) {
	mk := smallMarket(t)
	run := func() (*Engine, *Result) {
		cfg := smallConfig(43)
		cfg.LPFault = lpFaultAfter(16, 2)
		e, err := NewEngine(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e.Step() {
		}
		if err := e.Err(); err != nil {
			t.Fatalf("faulted run died: %v", err)
		}
		res, err := e.Result()
		if err != nil {
			t.Fatal(err)
		}
		return e, res
	}
	e1, r1 := run()
	e2, r2 := run()
	if e1.Faults() == 0 {
		t.Fatal("fault window never fired — the test exercised nothing")
	}
	if e1.Faults() != e2.Faults() {
		t.Fatalf("fault counts diverged: %d vs %d", e1.Faults(), e2.Faults())
	}
	if e1.r.State() != e2.r.State() {
		t.Fatal("RNG streams diverged between identical faulted runs")
	}
	if r1.Best.Revenue != r2.Best.Revenue || r1.Best.TreeStr != r2.Best.TreeStr || r1.Gens != r2.Gens {
		t.Fatalf("results diverged: %v/%q/%d vs %v/%q/%d",
			r1.Best.Revenue, r1.Best.TreeStr, r1.Gens, r2.Best.Revenue, r2.Best.TreeStr, r2.Gens)
	}
}

// TestAllFaultTerminal: a wave with zero successful evaluations has no
// fitness signal, so it is terminal — and the first error wins, with
// later Steps as no-ops.
func TestAllFaultTerminal(t *testing.T) {
	injected := errors.New("boom")
	cfg := smallConfig(47)
	cfg.LPFault = func() error { return injected }
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Step() {
		t.Fatal("fully faulted engine stepped successfully")
	}
	first := e.Err()
	if !errors.Is(first, injected) {
		t.Fatalf("Err = %v, want wrap of the injected error", first)
	}
	for i := 0; i < 3; i++ {
		if e.Step() {
			t.Fatalf("Step %d after terminal fault returned true", i)
		}
	}
	if e.Err() != first {
		t.Fatalf("terminal error changed: %v → %v", first, e.Err())
	}
	if e.Faults() != 0 {
		t.Fatalf("terminal failure also counted %d faults", e.Faults())
	}
}

// TestSnapshotOnDegradedEngineRefused: a degraded engine (Faults > 0)
// keeps running but cannot snapshot — its quarantined generations
// evolved on substituted fitness, so a resume could never replay
// bit-identically (the property carbond's retries rely on).
func TestSnapshotOnDegradedEngineRefused(t *testing.T) {
	cfg := smallConfig(53)
	cfg.LPFault = lpFaultAfter(16, 1)
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e.Step() {
	}
	if e.Faults() == 0 {
		t.Fatal("fault window never fired")
	}
	st, err := e.Snapshot()
	if st != nil || err == nil {
		t.Fatalf("degraded engine produced a snapshot (%v, %v)", st, err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("snapshot error %v is not ErrDegraded", err)
	}
}

// TestEvalFaultQuarantinesPredator covers the heuristic-side hook: a
// failed paired evaluation quarantines the predator (worst-known
// fitness, no archive entry) without touching the LP layer.
func TestEvalFaultQuarantinesPredator(t *testing.T) {
	cfg := smallConfig(59)
	// The predator wave is the first EvalTreeWith consumer each
	// generation; failing call 1 hits predator 0's first pairing.
	cfg.EvalFault = fault.New(1).Site("eval", fault.Rule{Every: 1, Limit: 1}).Strike
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatalf("single eval fault killed generation 1: %v", e.Err())
	}
	if f := e.Faults(); f != 1 {
		t.Fatalf("Faults() = %d, want exactly 1", f)
	}
	// The quarantined predator carries the worst (largest) fitness of
	// the generation. predFit still describes generation 1 here —
	// breeding builds new populations without rewriting fitness arrays.
	worst := math.Inf(-1)
	for _, f := range e.predFit {
		worst = math.Max(worst, f)
	}
	if e.predFit[0] != worst {
		t.Fatalf("quarantined predator fitness %v, want the generation's worst %v", e.predFit[0], worst)
	}
	if e.Step(); e.Err() != nil {
		t.Fatalf("engine did not recover after the fault window: %v", e.Err())
	}
}

// TestConcurrentStepAndErrPolling races Err/Faults against a stepping
// engine — the serving front end polls exactly like this while a job
// runs. Run under -race (make race) this pins the locking.
func TestConcurrentStepAndErrPolling(t *testing.T) {
	cfg := smallConfig(61)
	cfg.LPFault = lpFaultAfter(20, 3)
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Err()
				_ = e.Faults()
			}
		}
	}()
	for e.Step() {
	}
	close(stop)
	wg.Wait()
	if err := e.Err(); err != nil {
		t.Fatalf("run died: %v", err)
	}
}

// TestGenStatsReportFaults: the observer stream carries the cumulative
// fault count, so traces show degradation as it happens.
func TestGenStatsReportFaults(t *testing.T) {
	var mu sync.Mutex
	var last GenStats
	cfg := smallConfig(67)
	cfg.LPFault = lpFaultAfter(16, 1)
	cfg.Observer = FuncObserver{Generation: func(gs GenStats) {
		mu.Lock()
		last = gs
		mu.Unlock()
	}}
	e, err := NewEngine(smallMarket(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e.Step() {
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Faults != e.Faults() || last.Faults == 0 {
		t.Fatalf("final GenStats.Faults = %d, Engine.Faults = %d", last.Faults, e.Faults())
	}
}

// TestTraceSinkFaultDoesNotPerturbRun: a dying trace sink drops events
// but never changes the optimization — observer failures are strictly
// non-intrusive.
func TestTraceSinkFaultDoesNotPerturbRun(t *testing.T) {
	mk := smallMarket(t)
	run := func(sinkFault func() error) *Result {
		obs := NewJSONLObserver(discardWriter{})
		obs.SetFault(sinkFault)
		cfg := smallConfig(71)
		cfg.Observer = obs
		res, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	faulted := run(fault.New(1).Site(fault.SiteTraceEmit, fault.Rule{Every: 2}).Strike)
	if clean.Best.Revenue != faulted.Best.Revenue || clean.Best.TreeStr != faulted.Best.TreeStr {
		t.Fatalf("failing trace sink changed the run: %v/%q vs %v/%q",
			clean.Best.Revenue, clean.Best.TreeStr, faulted.Best.Revenue, faulted.Best.TreeStr)
	}
	if clean.Gens != faulted.Gens {
		t.Fatalf("generation counts diverged: %d vs %d", clean.Gens, faulted.Gens)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
