package core

import (
	"encoding/json"
	"fmt"
	"io"

	"carbon/internal/telemetry"
)

// TraceSchema versions the JSONL run-log format. Readers must reject
// events from a schema they do not understand; writers stamp it on
// every line so a trace file is self-describing. v2 added the optional
// GenStats.Search block, migration labels and the done-event
// label/island/ancestry fields — all additive, so readers accept v1
// and v2 alike (TraceSchemaV1).
const (
	TraceSchema   = "carbon.trace/v2"
	TraceSchemaV1 = "carbon.trace/v1"
)

// GenStats is the per-generation snapshot delivered to observers and
// written to trace files. All population statistics refer to the
// generation that was just evaluated (the pre-breeding populations);
// the timing fields are wall-clock and therefore vary run to run, while
// everything else is deterministic per (seed, workers).
type GenStats struct {
	Label  string `json:"label,omitempty"` // Config.RunLabel, tags multi-run traces
	Island int    `json:"island"`          // island index; 0 for single-engine runs
	Gen    int    `json:"gen"`             // 1-based completed generation count

	ULEvals  int `json:"ul_evals"`  // upper-level budget consumed so far
	LLEvals  int `json:"ll_evals"`  // lower-level budget consumed so far
	ULBudget int `json:"ul_budget"` // configured upper-level budget
	LLBudget int `json:"ll_budget"` // configured lower-level budget

	BestRevenue float64 `json:"best_revenue"` // best archived leader revenue
	BestGap     float64 `json:"best_gap"`     // best archived predator fitness

	PreyBest float64 `json:"prey_best"` // population best revenue this generation
	PreyMean float64 `json:"prey_mean"`
	PreyStd  float64 `json:"prey_std"`
	PredBest float64 `json:"pred_best"` // population best predator fitness (lower = better)
	PredMean float64 `json:"pred_mean"`

	ULArchive int `json:"ul_archive"` // archive sizes after this generation
	GPArchive int `json:"gp_archive"`

	EvalNanos  int64 `json:"eval_ns"`  // wall time spent in paired evaluations
	BreedNanos int64 `json:"breed_ns"` // wall time spent breeding both populations

	// Faults is the cumulative count of quarantined evaluations (see
	// Engine.Faults); 0 — and omitted from traces — on healthy runs.
	Faults int `json:"faults,omitempty"`

	// Search holds the generation's search-dynamics snapshot (trace
	// schema v2); nil in v1 traces and when the engine has no observer
	// computing it.
	Search *SearchStats `json:"search,omitempty"`

	// Surr holds the generation's surrogate telemetry; nil unless the
	// engine was built with Config.Surrogate.Enabled. An additive v2
	// field: older readers ignore it, older traces simply lack it.
	Surr *SurrStats `json:"surr,omitempty"`
}

// SurrStats is the per-generation surrogate-assisted-skipping snapshot
// (DESIGN.md §5l). Skips+Exact equals the generation's distinct prey
// genotypes; Err is the mean relative revenue residual of the
// generation's pre-update predictions on exactly-evaluated genotypes —
// the out-of-sample error of the scores the skip plan acted on, and the
// signal the tracestat drift detector watches.
type SurrStats struct {
	Skips  int     `json:"skips"`  // LP solves avoided this generation
	Exact  int     `json:"exact"`  // genotypes solved exactly this generation
	Err    float64 `json:"err"`    // mean relative revenue residual
	ErrLB  float64 `json:"err_lb"` // mean relative LB residual — the drift signal
	Active bool    `json:"active"` // skip policy was in effect
}

// MigrationStats describes one ring edge of an island-model migration.
type MigrationStats struct {
	Label    string `json:"label,omitempty"` // Config.RunLabel, tags multi-run traces
	Gen      int    `json:"gen"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	Migrants int    `json:"migrants"`
}

// Observer receives live run events. Observers must not mutate engine
// state and must be safe for concurrent use when attached to an island
// run (islands step — and therefore call OnGeneration — concurrently).
// Telemetry is strictly read-only: an observer cannot perturb the RNG
// stream, so results are identical with and without one attached.
type Observer interface {
	OnGeneration(GenStats)
	OnMigration(MigrationStats)
	OnDone(*Result)
}

// FuncObserver adapts bare functions to Observer; nil fields are
// skipped, so callers set only the hooks they need.
type FuncObserver struct {
	Generation func(GenStats)
	Migration  func(MigrationStats)
	Done       func(*Result)
}

func (f FuncObserver) OnGeneration(gs GenStats) {
	if f.Generation != nil {
		f.Generation(gs)
	}
}

func (f FuncObserver) OnMigration(ms MigrationStats) {
	if f.Migration != nil {
		f.Migration(ms)
	}
}

func (f FuncObserver) OnDone(res *Result) {
	if f.Done != nil {
		f.Done(res)
	}
}

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return multiObserver(kept)
}

type multiObserver []Observer

func (m multiObserver) OnGeneration(gs GenStats) {
	for _, o := range m {
		o.OnGeneration(gs)
	}
}

func (m multiObserver) OnMigration(ms MigrationStats) {
	for _, o := range m {
		o.OnMigration(ms)
	}
}

func (m multiObserver) OnDone(res *Result) {
	for _, o := range m {
		o.OnDone(res)
	}
}

// DoneStats is the trace-file summary of a finished run — the Result
// fields that serialize compactly (archives and trees stay out of the
// event stream; the best tree travels as its S-expression).
type DoneStats struct {
	Label       string  `json:"label,omitempty"`
	Island      int     `json:"island"`
	Gens        int     `json:"gens"`
	ULEvals     int     `json:"ul_evals"`
	LLEvals     int     `json:"ll_evals"`
	BestRevenue float64 `json:"best_revenue"`
	BestGap     float64 `json:"best_gap"`
	BestTree    string  `json:"best_tree"`

	// Ancestry is the champion predator's provenance chain (schema v2;
	// BFS order, champion first), present when lineage tracking ran.
	Ancestry []LineageRecord `json:"ancestry,omitempty"`
}

// TraceEvent is one line of a JSONL run log. Exactly one of Gen,
// Migration, Done is set, matching Event.
type TraceEvent struct {
	Schema    string          `json:"schema"`
	Event     string          `json:"event"` // "generation" | "migration" | "done"
	Gen       *GenStats       `json:"gen,omitempty"`
	Migration *MigrationStats `json:"migration,omitempty"`
	Done      *DoneStats      `json:"done,omitempty"`
}

// JSONLObserver streams run events as schema-versioned JSONL — one
// event per generation plus migration and completion records. It is
// safe for concurrent use (the underlying emitter serializes lines), so
// one observer can log a whole island run or experiment sweep.
type JSONLObserver struct {
	out *telemetry.JSONL
}

// NewJSONLObserver writes trace events to w. Every event is flushed as
// it is written, so a run killed mid-flight (SIGKILL, OOM) leaves a
// parseable trace missing at most the line being written — pair with
// ReadTraceLenient to read such a tail-truncated file. One small write
// per generation is noise next to a generation's evaluation cost. Call
// Close after the run when w should be closed too.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{out: telemetry.NewJSONL(w).AutoFlush(true)}
}

func (o *JSONLObserver) OnGeneration(gs GenStats) {
	_ = o.out.Emit(TraceEvent{Schema: TraceSchema, Event: "generation", Gen: &gs})
}

func (o *JSONLObserver) OnMigration(ms MigrationStats) {
	_ = o.out.Emit(TraceEvent{Schema: TraceSchema, Event: "migration", Migration: &ms})
}

func (o *JSONLObserver) OnDone(res *Result) {
	ds := DoneStats{
		Label:       res.Label,
		Island:      res.Island,
		Gens:        res.Gens,
		ULEvals:     res.ULEvals,
		LLEvals:     res.LLEvals,
		BestRevenue: res.Best.Revenue,
		BestGap:     res.Best.GapPct,
		BestTree:    res.Best.TreeStr,
		Ancestry:    res.Ancestry,
	}
	_ = o.out.Emit(TraceEvent{Schema: TraceSchema, Event: "done", Done: &ds})
}

// SetFault installs (or, with nil, clears) a fault hook on the
// underlying trace emitter; see telemetry.JSONL.SetFault. A failing
// trace sink drops events but never perturbs the run — observer errors
// are swallowed by design.
func (o *JSONLObserver) SetFault(h func() error) { o.out.SetFault(h) }

// Flush pushes buffered trace lines to the underlying writer.
func (o *JSONLObserver) Flush() error { return o.out.Flush() }

// Close flushes and closes the underlying writer when it is closable.
func (o *JSONLObserver) Close() error { return o.out.Close() }

// ReadTrace parses a JSONL run log written by JSONLObserver, validating
// the schema stamp and the event/payload pairing of every line. Both
// trace schema versions (v1 and v2) are accepted — v2 is a strict
// superset, so v1 events simply decode with their new fields absent.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	events, _, err := readTrace(r, false)
	return events, err
}

// ReadTraceLenient is ReadTrace for traces whose writer may have been
// killed mid-line (JSONLObserver flushes per event, so a SIGKILLed run
// leaves at most one torn final line). A corrupt final line missing its
// terminating newline is dropped and reported via truncated; interior
// corruption still fails.
func ReadTraceLenient(r io.Reader) (events []TraceEvent, truncated bool, err error) {
	return readTrace(r, true)
}

func readTrace(r io.Reader, lenient bool) ([]TraceEvent, bool, error) {
	var events []TraceEvent
	parse := func(raw json.RawMessage) error {
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("core: trace line %d: %w", len(events)+1, err)
		}
		if ev.Schema != TraceSchema && ev.Schema != TraceSchemaV1 {
			return fmt.Errorf("core: trace line %d: schema %q, want %q or %q",
				len(events)+1, ev.Schema, TraceSchema, TraceSchemaV1)
		}
		switch ev.Event {
		case "generation":
			if ev.Gen == nil {
				return fmt.Errorf("core: trace line %d: generation event without payload", len(events)+1)
			}
		case "migration":
			if ev.Migration == nil {
				return fmt.Errorf("core: trace line %d: migration event without payload", len(events)+1)
			}
		case "done":
			if ev.Done == nil {
				return fmt.Errorf("core: trace line %d: done event without payload", len(events)+1)
			}
		default:
			return fmt.Errorf("core: trace line %d: unknown event %q", len(events)+1, ev.Event)
		}
		events = append(events, ev)
		return nil
	}
	if lenient {
		truncated, err := telemetry.DecodeLinesLenient(r, parse)
		if err != nil {
			return nil, false, err
		}
		return events, truncated, nil
	}
	if err := telemetry.DecodeLines(r, parse); err != nil {
		return nil, false, err
	}
	return events, false, nil
}
