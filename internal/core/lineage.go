package core

import "carbon/internal/gp"

// Breeding provenance opcodes. Every individual of both populations is
// stamped at creation with the operator that produced it; origin values
// flow out of the breeding functions and into the lineage ledger.
const (
	opInit    uint8 = iota // initial random population
	opRestore              // population restored from a checkpoint (ancestry unknown)
	opElite                // copied unchanged by elitism
	opSBX                  // SBX crossover + polynomial mutation (prey)
	opULMut                // tournament clone + polynomial mutation only (prey)
	opDE                   // DE/best/1/bin trial (prey ablation)
	opGPCross              // GP one-point subtree crossover
	opGPMut                // GP uniform (subtree-replacement) mutation
	opGPRepro              // GP reproduction (tournament clone)
	opGPPoint              // shape-preserving point mutation pass (ablation)
	opMigrant              // injected by island migration
)

var opNames = [...]string{
	"init", "restore", "elite", "sbx", "polymut", "de",
	"gp_cross", "gp_mut", "gp_repro", "gp_point", "migrant",
}

// breedingOp reports whether code is a variation operator whose
// offspring-vs-parent improvement is worth tallying (copies and
// unparented arrivals are excluded: an elite trivially ties its parent,
// a migrant has no local parent to beat).
func breedingOp(code uint8) bool {
	switch code {
	case opSBX, opULMut, opDE, opGPCross, opGPMut, opGPRepro, opGPPoint:
		return true
	}
	return false
}

// origin records how one offspring was produced: the operator and the
// parent indices into the generation that bred it (-1 = no such
// parent). Breeding functions return one origin per individual; the
// ledger turns indices into persistent IDs.
type origin struct {
	op     uint8
	p1, p2 int
}

// LineageRecord is one node of the provenance DAG: an individual's
// identity, the operator that created it, its parents' IDs and the
// fitness it was evaluated at. Expr is set only on champion records
// (the S-expression at the moment the individual became champion), so
// traces stay compact.
type LineageRecord struct {
	ID      uint64   `json:"id"`
	Parents []uint64 `json:"parents,omitempty"`
	Op      string   `json:"op"`
	Gen     int      `json:"gen"`
	Fitness float64  `json:"fitness"`
	Expr    string   `json:"expr,omitempty"`
}

// maxAncestry bounds the records championAncestry returns (BFS order,
// champion first), keeping the done-event of very long runs bounded.
const maxAncestry = 256

// ledgerHighWater triggers a mark-and-sweep prune of dead records. The
// champion's ancestry is always kept in full; other live individuals
// keep a bounded window of ancestors (ledgerLiveDepth generations), so
// ledger memory stays O(populations) instead of O(generations).
const (
	ledgerHighWater = 8192
	ledgerLiveDepth = 8
)

// lineage is the engine's provenance ledger. It is pure bookkeeping:
// it never touches the RNG or the populations, so attaching it cannot
// perturb a run. IDs are assigned from a per-engine counter in
// deterministic order.
type lineage struct {
	nextID   uint64
	preyIDs  []uint64 // aligned with Engine.prey
	predIDs  []uint64 // aligned with Engine.predators
	recs     map[uint64]*LineageRecord
	champID  uint64
	champFit float64
	champOK  bool
}

func newLineage() *lineage {
	return &lineage{recs: make(map[uint64]*LineageRecord)}
}

func (l *lineage) next() uint64 {
	l.nextID++
	return l.nextID
}

// assign mints n fresh unparented records (initial populations,
// restored checkpoints).
func (l *lineage) assign(n int, op uint8, gen int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		id := l.next()
		l.recs[id] = &LineageRecord{ID: id, Op: opNames[op], Gen: gen}
		ids[i] = id
	}
	return ids
}

// advance replaces both populations' IDs with their offsprings',
// recording each child's operator and parents, then prunes dead
// records if the ledger has grown past its high-water mark.
func (l *lineage) advance(preyOr, predOr []origin, gen int) {
	l.preyIDs = l.rebirth(l.preyIDs, preyOr, gen)
	l.predIDs = l.rebirth(l.predIDs, predOr, gen)
	l.maybePrune()
}

func (l *lineage) rebirth(old []uint64, origins []origin, gen int) []uint64 {
	ids := make([]uint64, len(origins))
	for i, o := range origins {
		id := l.next()
		rec := &LineageRecord{ID: id, Op: opNames[o.op], Gen: gen}
		if o.p1 >= 0 && o.p1 < len(old) {
			rec.Parents = append(rec.Parents, old[o.p1])
		}
		if o.p2 >= 0 && o.p2 < len(old) && o.p2 != o.p1 {
			rec.Parents = append(rec.Parents, old[o.p2])
		}
		l.recs[id] = rec
		ids[i] = id
	}
	return ids
}

// replace stamps a fresh unparented record onto one population slot
// (island migration).
func (l *lineage) replace(ids []uint64, slot int, op uint8, gen int) {
	if slot < 0 || slot >= len(ids) {
		return
	}
	id := l.next()
	l.recs[id] = &LineageRecord{ID: id, Op: opNames[op], Gen: gen}
	ids[slot] = id
}

// setFitness writes evaluated fitness onto the live records.
func (l *lineage) setFitness(ids []uint64, fit []float64) {
	for i, id := range ids {
		if rec := l.recs[id]; rec != nil && i < len(fit) {
			rec.Fitness = fit[i]
		}
	}
}

// noteChampion promotes the generation's best predator to champion when
// it strictly beats the incumbent (ties keep the earlier achiever,
// matching the archive's insertion-order tie-breaking), capturing its
// expression so the ancestry is self-describing.
func (l *lineage) noteChampion(fit []float64, pop []gp.Tree, set *gp.Set) {
	if len(fit) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(fit); i++ {
		if fit[i] < fit[best] {
			best = i
		}
	}
	if l.champOK && fit[best] >= l.champFit {
		return
	}
	l.champOK = true
	l.champFit = fit[best]
	l.champID = l.predIDs[best]
	if rec := l.recs[l.champID]; rec != nil {
		rec.Expr = pop[best].String(set)
	}
}

// championAncestry reconstructs the champion's provenance DAG in BFS
// order (champion first), bounded by maxAncestry records. A nil ledger
// or a run with no champion yet returns nil.
func (l *lineage) championAncestry() []LineageRecord {
	if l == nil || !l.champOK {
		return nil
	}
	seen := make(map[uint64]bool)
	queue := []uint64{l.champID}
	var out []LineageRecord
	for len(queue) > 0 && len(out) < maxAncestry {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		rec := l.recs[id]
		if rec == nil {
			continue // pruned beyond the retained window
		}
		out = append(out, *rec)
		queue = append(queue, rec.Parents...)
	}
	return out
}

func (l *lineage) maybePrune() {
	if len(l.recs) <= ledgerHighWater {
		return
	}
	keep := make(map[uint64]bool)
	// Champion ancestry survives in full.
	queue := []uint64{}
	if l.champOK {
		queue = append(queue, l.champID)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if keep[id] {
			continue
		}
		rec := l.recs[id]
		if rec == nil {
			continue
		}
		keep[id] = true
		queue = append(queue, rec.Parents...)
	}
	// Live individuals keep a bounded ancestor window.
	frontier := append(append([]uint64(nil), l.preyIDs...), l.predIDs...)
	for depth := 0; depth <= ledgerLiveDepth && len(frontier) > 0; depth++ {
		var next []uint64
		for _, id := range frontier {
			if keep[id] {
				continue
			}
			rec := l.recs[id]
			if rec == nil {
				continue
			}
			keep[id] = true
			next = append(next, rec.Parents...)
		}
		frontier = next
	}
	for id := range l.recs {
		if !keep[id] {
			delete(l.recs, id)
		}
	}
}
