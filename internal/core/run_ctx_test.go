package core

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextCancel cancels mid-run (from the generation observer, so
// the test is schedule-independent) and checks the loop stops at the
// next generation boundary with a context error.
func TestRunContextCancel(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(21)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Observer = FuncObserver{Generation: func(gs GenStats) {
		if gs.Gen == 2 {
			cancel()
		}
	}}
	res, err := RunContext(ctx, mk, cfg)
	if err == nil {
		t.Fatalf("canceled run returned result: %+v", res.Best)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestRunContextUncanceledMatchesRun(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(22)
	ref, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Revenue != ref.Best.Revenue || res.Best.TreeStr != ref.Best.TreeStr {
		t.Fatal("context plumbing perturbed the seeded result")
	}
}

func TestRunIslandsContextCancel(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(23)
	cfg.ULEvalBudget *= 2
	cfg.LLEvalBudget *= 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunIslandsContext(ctx, mk, cfg, DefaultIslandConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
