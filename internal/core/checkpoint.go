package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"carbon/internal/bcpop"
	"carbon/internal/gp"
)

// Checkpoint is a serializable snapshot of an Engine between
// generations. Resuming from a checkpoint continues the run *exactly* as
// if it had never stopped: populations, archives, budget counters,
// curves and the PRNG stream are all restored. Trees travel as
// S-expressions, so checkpoints are human-inspectable JSON.
//
// What is NOT stored: the market (supply it again — instances are
// regenerable from (class, index) or loadable from OR-library files) and
// the warm-LP solver states (they are caches; the first generation after
// resume re-warms them, which can produce different-but-equally-optimal
// dual vectors than an uninterrupted run — the same caveat as changing
// Workers).
type Checkpoint struct {
	Fingerprint string      `json:"fingerprint"`
	RngState    [4]uint64   `json:"rng_state"`
	Prey        [][]float64 `json:"prey"`
	Predators   []string    `json:"predators"`
	ULUsed      int         `json:"ul_used"`
	LLUsed      int         `json:"ll_used"`
	Gens        int         `json:"gens"`
	ULArchP     [][]float64 `json:"ul_arch_prices"`
	ULArchF     []float64   `json:"ul_arch_fitness"`
	GPArchT     []string    `json:"gp_arch_trees"`
	GPArchF     []float64   `json:"gp_arch_fitness"`
	ULCurveX    []float64   `json:"ul_curve_x"`
	ULCurveY    []float64   `json:"ul_curve_y"`
	GapCurveX   []float64   `json:"gap_curve_x"`
	GapCurveY   []float64   `json:"gap_curve_y"`
}

// fingerprint identifies the configuration a checkpoint belongs to; a
// mismatch at resume time means the caller changed something that makes
// the state meaningless (population sizes, operators, the market shape).
// Budgets are deliberately NOT part of the fingerprint: extending the
// budget and resuming is the intended way to continue a finished run.
func (c *Config) fingerprint(mk *bcpop.Market) string {
	return fmt.Sprintf("v1|pop=%d/%d|arch=%d/%d|probs=%.3f/%.3f/%.3f/%.3f/%.3f|sample=%d|market=%dx%dx%d|cost=%t|elim=%t|var=%s",
		c.ULPopSize, c.LLPopSize, c.ULArchiveSize, c.LLArchiveSize,
		c.ULCrossoverProb, c.ULMutationProb, c.LLCrossoverProb, c.LLMutationProb, c.LLReproProb,
		c.PreySample, mk.Bundles(), mk.Services(), mk.Leaders(),
		c.CostFitness, !c.NoElimination, c.ULVariation)
}

// Checkpoint snapshots the engine. Call it between Steps.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Fingerprint: e.cfg.fingerprint(e.mk),
		RngState:    e.r.State(),
		ULUsed:      e.ulUsed,
		LLUsed:      e.llUsed,
		Gens:        e.res.Gens,
	}
	for _, x := range e.prey {
		cp.Prey = append(cp.Prey, append([]float64(nil), x...))
	}
	for _, t := range e.predators {
		cp.Predators = append(cp.Predators, t.String(e.set))
	}
	for _, en := range e.ulArch.Entries() {
		cp.ULArchP = append(cp.ULArchP, append([]float64(nil), en.Item...))
		cp.ULArchF = append(cp.ULArchF, en.Fitness)
	}
	for _, en := range e.gpArch.Entries() {
		cp.GPArchT = append(cp.GPArchT, en.Item.String(e.set))
		cp.GPArchF = append(cp.GPArchF, en.Fitness)
	}
	cp.ULCurveX = append([]float64(nil), e.res.ULCurve.X...)
	cp.ULCurveY = append([]float64(nil), e.res.ULCurve.Y...)
	cp.GapCurveX = append([]float64(nil), e.res.GapCurve.X...)
	cp.GapCurveY = append([]float64(nil), e.res.GapCurve.Y...)
	return cp
}

// Write emits the checkpoint as indented JSON.
func (cp *Checkpoint) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// LoadCheckpoint parses a checkpoint written by Write.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint: %w", err)
	}
	return &cp, nil
}

// ResumeEngine rebuilds an engine from a checkpoint taken under the same
// market and configuration. The resumed run produces the same breeding
// and sampling decisions as the uninterrupted one (the PRNG stream
// continues exactly); evaluation results may differ within
// alternative-LP-optima tolerance because warm-solver caches restart
// cold (see the Checkpoint doc comment).
func ResumeEngine(mk *bcpop.Market, cfg Config, cp *Checkpoint) (*Engine, error) {
	if cp == nil {
		return nil, errors.New("core: nil checkpoint")
	}
	if got := cfg.fingerprint(mk); got != cp.Fingerprint {
		return nil, fmt.Errorf("core: checkpoint fingerprint mismatch:\n  have %s\n  want %s",
			got, cp.Fingerprint)
	}
	e, err := NewEngine(mk, cfg)
	if err != nil {
		return nil, err
	}
	if len(cp.Prey) != cfg.ULPopSize || len(cp.Predators) != cfg.LLPopSize {
		return nil, errors.New("core: checkpoint population sizes disagree with config")
	}
	if err := e.r.Restore(cp.RngState); err != nil {
		return nil, err
	}
	for i, x := range cp.Prey {
		if len(x) != mk.Leaders() {
			return nil, fmt.Errorf("core: checkpoint prey %d has %d genes, want %d",
				i, len(x), mk.Leaders())
		}
		e.prey[i] = append([]float64(nil), x...)
	}
	for i, src := range cp.Predators {
		t, err := gp.Parse(e.set, src)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint predator %d: %w", i, err)
		}
		e.predators[i] = t
	}
	if len(cp.ULArchP) != len(cp.ULArchF) || len(cp.GPArchT) != len(cp.GPArchF) {
		return nil, errors.New("core: checkpoint archive arrays disagree")
	}
	// Re-add archive entries worst-first so insertion order cannot evict
	// better entries.
	for i := len(cp.ULArchP) - 1; i >= 0; i-- {
		e.ulArch.Add(append([]float64(nil), cp.ULArchP[i]...), cp.ULArchF[i])
	}
	for i := len(cp.GPArchT) - 1; i >= 0; i-- {
		t, err := gp.Parse(e.set, cp.GPArchT[i])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint archive tree %d: %w", i, err)
		}
		e.gpArch.Add(t, cp.GPArchF[i])
	}
	e.ulUsed, e.llUsed = cp.ULUsed, cp.LLUsed
	e.res.Gens = cp.Gens
	e.res.ULCurve.X = append([]float64(nil), cp.ULCurveX...)
	e.res.ULCurve.Y = append([]float64(nil), cp.ULCurveY...)
	e.res.GapCurve.X = append([]float64(nil), cp.GapCurveX...)
	e.res.GapCurve.Y = append([]float64(nil), cp.GapCurveY...)
	return e, nil
}
