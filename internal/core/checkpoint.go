package core

import (
	"errors"
	"fmt"

	"carbon/internal/bcpop"
	"carbon/internal/checkpoint"
	"carbon/internal/gp"
	"carbon/internal/surrogate"
)

// fingerprint identifies the configuration a snapshot belongs to; a
// mismatch at restore time means the caller changed something that makes
// the state meaningless (population sizes, operators, the market shape).
// Budgets are deliberately NOT part of the fingerprint: extending the
// budget and resuming is the intended way to continue a finished run.
func (c *Config) fingerprint(mk *bcpop.Market) string {
	return fmt.Sprintf("v1|pop=%d/%d|arch=%d/%d|probs=%.3f/%.3f/%.3f/%.3f/%.3f|sample=%d|market=%dx%dx%d|cost=%t|elim=%t|var=%s",
		c.ULPopSize, c.LLPopSize, c.ULArchiveSize, c.LLArchiveSize,
		c.ULCrossoverProb, c.ULMutationProb, c.LLCrossoverProb, c.LLMutationProb, c.LLReproProb,
		c.PreySample, mk.Bundles(), mk.Services(), mk.Leaders(),
		c.CostFitness, !c.NoElimination, c.ULVariation)
}

// ErrDegraded marks an engine whose run quarantined at least one
// evaluation (Engine.Faults > 0). Such an engine keeps running —
// degradation is graceful — but it refuses to Snapshot: the quarantined
// generations evolved on substituted worst-known fitness, so resuming
// from the snapshot could never replay bit-identically against a
// fault-free run. Callers that need exact resumability (carbond) treat
// ErrDegraded as "retry from the last clean checkpoint".
var ErrDegraded = errors.New("core: engine degraded by quarantined evaluations")

// Snapshot captures the engine between Steps as a serializable
// checkpoint.State. Restoring the state continues the run *exactly* as
// if it had never stopped: populations, archives, budget counters,
// curves and the PRNG stream all resume in place. A failed engine
// (Err() != nil) refuses to snapshot — its state is whatever the failing
// generation left behind, not a resumable frontier — and so does a
// degraded one (Faults() > 0, see ErrDegraded).
func (e *Engine) Snapshot() (*checkpoint.State, error) {
	if err := e.Err(); err != nil {
		return nil, fmt.Errorf("core: snapshot of failed engine: %w", err)
	}
	if n := e.Faults(); n > 0 {
		return nil, fmt.Errorf("core: snapshot after %d quarantined evaluations: %w", n, ErrDegraded)
	}
	st := &checkpoint.State{
		Fingerprint: e.cfg.fingerprint(e.mk),
		RngState:    e.r.State(),
		ULUsed:      e.ulUsed,
		LLUsed:      e.llUsed,
		Gens:        e.res.Gens,
	}
	for _, x := range e.prey {
		st.Prey = append(st.Prey, append([]float64(nil), x...))
	}
	for _, t := range e.predators {
		st.Predators = append(st.Predators, t.String(e.set))
	}
	for _, en := range e.ulArch.Entries() {
		st.ULArchP = append(st.ULArchP, append([]float64(nil), en.Item...))
		st.ULArchF = append(st.ULArchF, en.Fitness)
	}
	for _, en := range e.gpArch.Entries() {
		st.GPArchT = append(st.GPArchT, en.Item.String(e.set))
		st.GPArchF = append(st.GPArchF, en.Fitness)
	}
	st.ULCurveX = append([]float64(nil), e.res.ULCurve.X...)
	st.ULCurveY = append([]float64(nil), e.res.ULCurve.Y...)
	st.GapCurveX = append([]float64(nil), e.res.GapCurve.X...)
	st.GapCurveY = append([]float64(nil), e.res.GapCurve.Y...)
	if e.surr != nil {
		st.Surrogate = e.surr.State()
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// Restore rebuilds an engine from a snapshot taken under the same market
// and configuration. For a fixed (Config.Seed, Config.Workers) pair the
// restored run is bit-identical to the uninterrupted one: the PRNG
// stream continues exactly, and Step resets the warm-LP bases at every
// generation boundary, so no solver history leaks across the snapshot
// (see TestSnapshotRestoreGolden). Changing Workers between snapshot and
// restore re-stripes evaluation and voids the guarantee, exactly as it
// does for a fresh run.
//
// Restore lives in core rather than package checkpoint because it needs
// the whole engine; checkpoint stays pure data so spool tooling can link
// it without the evolutionary machinery.
func Restore(mk *bcpop.Market, cfg Config, st *checkpoint.State) (*Engine, error) {
	if st == nil {
		return nil, errors.New("core: nil checkpoint state")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if got := cfg.fingerprint(mk); got != st.Fingerprint {
		return nil, fmt.Errorf("core: checkpoint fingerprint mismatch:\n  have %s\n  want %s",
			got, st.Fingerprint)
	}
	e, err := NewEngine(mk, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Prey) != cfg.ULPopSize || len(st.Predators) != cfg.LLPopSize {
		return nil, errors.New("core: checkpoint population sizes disagree with config")
	}
	if err := e.r.Restore(st.RngState); err != nil {
		return nil, err
	}
	for i, x := range st.Prey {
		if len(x) != mk.Leaders() {
			return nil, fmt.Errorf("core: checkpoint prey %d has %d genes, want %d",
				i, len(x), mk.Leaders())
		}
		e.prey[i] = append([]float64(nil), x...)
	}
	for i, src := range st.Predators {
		t, err := gp.Parse(e.set, src)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint predator %d: %w", i, err)
		}
		e.predators[i] = t
	}
	// Re-add archive entries best-first — their stored order. Each entry
	// is no better than the ones before it, so every Add appends at the
	// tail and the rebuilt archive reproduces the snapshot's order
	// exactly, *including* equal-fitness ties, which the archive keeps
	// in insertion order and which Best() and later tie-breaking
	// inserts are sensitive to. (Re-adding worst-first reversed tie
	// groups and could change the continuation of a restored run.)
	// Nothing can be evicted during the rebuild: the archive holds at
	// most cap entries and only fills up on the last Add.
	for i := range st.ULArchP {
		e.ulArch.Add(append([]float64(nil), st.ULArchP[i]...), st.ULArchF[i])
	}
	for i := range st.GPArchT {
		t, err := gp.Parse(e.set, st.GPArchT[i])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint archive tree %d: %w", i, err)
		}
		e.gpArch.Add(t, st.GPArchF[i])
	}
	// Surrogate model state. Like Interpret, the surrogate knobs are not
	// fingerprinted, so all four combinations restore:
	//   - enabled→enabled: rebuild the model exactly (bit-identical resume);
	//   - exact→enabled:   no stored state, keep the fresh model — it
	//     re-warms itself (MinFit) before skipping starts;
	//   - enabled→exact:   stored state ignored, the engine solves
	//     everything exactly;
	//   - exact→exact:     nothing to do.
	if e.surr != nil && st.Surrogate != nil {
		if st.Surrogate.Dim != mk.Leaders() {
			return nil, fmt.Errorf("core: checkpoint surrogate dimension %d, market has %d leaders",
				st.Surrogate.Dim, mk.Leaders())
		}
		m, err := surrogate.FromState(e.surrCfg, st.Surrogate)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint surrogate: %w", err)
		}
		e.surr = m
	}
	e.ulUsed, e.llUsed = st.ULUsed, st.LLUsed
	e.res.Gens = st.Gens
	e.res.ULCurve.X = append([]float64(nil), st.ULCurveX...)
	e.res.ULCurve.Y = append([]float64(nil), st.ULCurveY...)
	e.res.GapCurve.X = append([]float64(nil), st.GapCurveX...)
	e.res.GapCurve.Y = append([]float64(nil), st.GapCurveY...)
	return e, nil
}
