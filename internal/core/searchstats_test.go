package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"carbon/internal/telemetry"
)

var knownOps = map[string]bool{
	"init": true, "restore": true, "elite": true, "sbx": true,
	"polymut": true, "de": true, "gp_cross": true, "gp_mut": true,
	"gp_repro": true, "gp_point": true, "migrant": true,
}

// TestSearchStatsEmitted checks the tentpole end to end: every observed
// generation carries a well-formed SearchStats block, and from the
// second generation on the operator tallies and selection-pressure
// correlations are populated.
func TestSearchStatsEmitted(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(9)
	var got []GenStats
	cfg.Observer = FuncObserver{Generation: func(gs GenStats) { got = append(got, gs) }}
	if _, err := Run(mk, cfg); err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("run too short for the test: %d generations", len(got))
	}
	for i, gs := range got {
		st := gs.Search
		if st == nil {
			t.Fatalf("generation %d has no SearchStats", gs.Gen)
		}
		if st.PreyDiversity < 0 || st.PreyDiversity > 1 || st.PreyEntropy < 0 || st.PreyEntropy > 1 {
			t.Fatalf("gen %d diversity out of range: %+v", gs.Gen, st)
		}
		if st.PredSizeMean <= 0 || st.PredSizeMax <= 0 || st.PredSizeMean > float64(st.PredSizeMax) {
			t.Fatalf("gen %d tree sizes implausible: %+v", gs.Gen, st)
		}
		if st.PredDepthMean > float64(st.PredDepthMax) {
			t.Fatalf("gen %d tree depths implausible: %+v", gs.Gen, st)
		}
		if !(st.GapMin <= st.GapP10 && st.GapP10 <= st.GapP50 &&
			st.GapP50 <= st.GapP90 && st.GapP90 <= st.GapMax) {
			t.Fatalf("gen %d gap quantiles disordered: %+v", gs.Gen, st)
		}
		if st.PreySelCorr < -1 || st.PreySelCorr > 1 || st.PredSelCorr < -1 || st.PredSelCorr > 1 {
			t.Fatalf("gen %d correlation out of [-1,1]: %+v", gs.Gen, st)
		}
		if st.ULArchiveAdds < 0 || st.GPArchiveAdds < 0 {
			t.Fatalf("gen %d negative archive churn: %+v", gs.Gen, st)
		}
		if i == 0 {
			// First observed generation has no parent fitness yet.
			if len(st.Ops) != 0 {
				t.Fatalf("gen 1 tallied operators without parents: %+v", st.Ops)
			}
			if st.ULArchiveAdds == 0 {
				t.Fatal("first generation filled no archive slots")
			}
			continue
		}
		if len(st.Ops) == 0 {
			t.Fatalf("gen %d tallied no operators", gs.Gen)
		}
		for _, op := range st.Ops {
			if !knownOps[op.Op] {
				t.Fatalf("gen %d unknown operator %q", gs.Gen, op.Op)
			}
			if op.Count <= 0 || op.Improved < 0 || op.Improved > op.Count {
				t.Fatalf("gen %d operator tally implausible: %+v", gs.Gen, op)
			}
		}
	}
}

// TestSearchStatsDeterministic: two identical instrumented runs must
// produce byte-identical SearchStats streams — the introspection layer
// rides the same (Seed, Workers) contract as the engine.
func TestSearchStatsDeterministic(t *testing.T) {
	mk := smallMarket(t)
	collect := func() []byte {
		cfg := smallConfig(23)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		cfg.Observer = FuncObserver{Generation: func(gs GenStats) {
			if err := enc.Encode(gs.Search); err != nil {
				t.Fatal(err)
			}
		}}
		if _, err := Run(mk, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := collect(), collect()
	if !bytes.Equal(a, b) {
		t.Fatalf("SearchStats streams diverged:\n%s\n---\n%s", a, b)
	}
}

// TestChampionAncestry: the champion predator's provenance must be
// reconstructable — champion first, expression attached, every parent
// edge pointing at an older record.
func TestChampionAncestry(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(31)
	var trace bytes.Buffer
	obs := NewJSONLObserver(&trace)
	cfg.Observer = obs
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ancestry) == 0 {
		t.Fatal("observed run produced no ancestry")
	}
	champ := res.Ancestry[0]
	if champ.Expr == "" {
		t.Fatalf("champion record has no expression: %+v", champ)
	}
	byID := map[uint64]LineageRecord{}
	for _, rec := range res.Ancestry {
		if !knownOps[rec.Op] {
			t.Fatalf("ancestry record with unknown op %q", rec.Op)
		}
		byID[rec.ID] = rec
	}
	for _, rec := range res.Ancestry {
		for _, p := range rec.Parents {
			parent, ok := byID[p]
			if !ok {
				continue // beyond the maxAncestry window
			}
			if parent.ID >= rec.ID {
				t.Fatalf("parent %d not older than child %d", parent.ID, rec.ID)
			}
			if parent.Gen > rec.Gen {
				t.Fatalf("parent from gen %d, child from gen %d", parent.Gen, rec.Gen)
			}
		}
	}
	// The ancestry also travels in the trace's done event.
	events, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var done *DoneStats
	for _, ev := range events {
		if ev.Event == "done" {
			done = ev.Done
		}
	}
	if done == nil || len(done.Ancestry) != len(res.Ancestry) {
		t.Fatalf("done event ancestry mismatch: %+v", done)
	}
	if done.Ancestry[0].Expr != champ.Expr {
		t.Fatal("done event champion expression disagrees with Result")
	}
}

// TestTraceVersionSniffing: the reader accepts v1 and v2 events in one
// stream (v1 files predate SearchStats) and still rejects unknown
// schemas.
func TestTraceVersionSniffing(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	v1 := TraceEvent{Schema: TraceSchemaV1, Event: "generation", Gen: &GenStats{Gen: 1, Label: "old"}}
	v2 := TraceEvent{Schema: TraceSchema, Event: "generation",
		Gen: &GenStats{Gen: 2, Label: "new", Search: &SearchStats{PreyDiversity: 0.5}}}
	doneV1 := TraceEvent{Schema: TraceSchemaV1, Event: "done", Done: &DoneStats{Gens: 2}}
	for _, ev := range []TraceEvent{v1, v2, doneV1} {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0].Gen.Search != nil {
		t.Fatal("v1 event grew a Search block")
	}
	if events[1].Gen.Search == nil || events[1].Gen.Search.PreyDiversity != 0.5 {
		t.Fatal("v2 Search block lost in round-trip")
	}
	if _, err := ReadTrace(strings.NewReader(`{"schema":"carbon.trace/v3","event":"done","done":{}}` + "\n")); err == nil {
		t.Fatal("future schema accepted")
	}
}

// TestReadTraceLenientTruncated: a trace cut mid-line (SIGKILLed run)
// must parse leniently up to the cut; the strict reader must refuse it.
func TestReadTraceLenientTruncated(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(13)
	var buf bytes.Buffer
	obs := NewJSONLObserver(&buf)
	cfg.Observer = obs
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	cut := whole[:len(whole)-40] // tear the final (done) line mid-JSON

	events, truncated, err := ReadTraceLenient(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("torn tail not reported")
	}
	if len(events) != res.Gens {
		t.Fatalf("lenient read kept %d events, want the %d whole generations", len(events), res.Gens)
	}
	if _, err := ReadTrace(bytes.NewReader(cut)); err == nil {
		t.Fatal("strict reader accepted a torn trace")
	}
	// An intact trace reads identically through both paths.
	strict, err := ReadTrace(bytes.NewReader(whole))
	if err != nil {
		t.Fatal(err)
	}
	lenient, truncated, err := ReadTraceLenient(bytes.NewReader(whole))
	if err != nil || truncated {
		t.Fatalf("lenient read of intact trace: truncated=%v err=%v", truncated, err)
	}
	if !reflect.DeepEqual(strict, lenient) {
		t.Fatal("strict and lenient reads of an intact trace disagree")
	}
}

// TestIslandEventsFullyLabeled: with a shared observer on an island
// run, every event — generation, migration, done — must carry the run
// label, and generation events must cover all islands.
func TestIslandEventsFullyLabeled(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(17)
	cfg.ULEvalBudget, cfg.LLEvalBudget = 400, 1200
	cfg.RunLabel = "archipelago"
	var trace bytes.Buffer
	obs := NewJSONLObserver(&trace)
	cfg.Observer = obs
	ic := IslandConfig{Islands: 2, MigrateEvery: 2, Migrants: 1}
	res, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	islands := map[int]bool{}
	var migrations, dones int
	for _, ev := range events {
		switch ev.Event {
		case "generation":
			if ev.Gen.Label != "archipelago" {
				t.Fatalf("generation event unlabeled: %+v", ev.Gen)
			}
			if ev.Gen.Search == nil {
				t.Fatalf("island generation event missing SearchStats: %+v", ev.Gen)
			}
			islands[ev.Gen.Island] = true
		case "migration":
			if ev.Migration.Label != "archipelago" {
				t.Fatalf("migration event unlabeled: %+v", ev.Migration)
			}
			migrations++
		case "done":
			if ev.Done.Label != "archipelago" {
				t.Fatalf("done event unlabeled: %+v", ev.Done)
			}
			if ev.Done.Island != res.BestIsland {
				t.Fatalf("done event from island %d, best island %d", ev.Done.Island, res.BestIsland)
			}
			dones++
		}
	}
	for i := 0; i < ic.Islands; i++ {
		if !islands[i] {
			t.Fatalf("island %d emitted no labeled generation events", i)
		}
	}
	if migrations == 0 || dones != 1 {
		t.Fatalf("migrations=%d dones=%d", migrations, dones)
	}
}

// TestSnapshotRestoreWithStats: the restore bit-identity contract must
// survive with the introspection layer on — stats consume no RNG, so an
// interrupted instrumented run continues exactly like an uninterrupted
// one.
func TestSnapshotRestoreWithStats(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(19)
	obs := FuncObserver{Generation: func(GenStats) {}}
	cfg.Observer = obs

	ref, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ref.Step() {
	}
	refRes, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && e.Step(); i++ {
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(mk, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	for e2.Step() {
	}
	res, err := e2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultKey(refRes), resultKey(res)) {
		t.Fatalf("restored instrumented run diverged:\nref:      %+v\nrestored: %+v",
			resultKey(refRes), resultKey(res))
	}
	// The restored engine's lineage restarts from "restore" roots but
	// must still crown a champion.
	if len(res.Ancestry) == 0 {
		t.Fatal("restored run produced no ancestry")
	}
}

// BenchmarkStepWithSearchStats is BenchmarkEngineStep with the full
// introspection layer on (observer + lineage + SearchStats). Compare
// against BenchmarkEngineStep: the acceptance bar for the PR is <5%
// overhead.
func BenchmarkStepWithSearchStats(b *testing.B) {
	mk := smallMarket(b)
	cfg := smallConfig(1)
	cfg.ULEvalBudget = 1 << 30
	cfg.LLEvalBudget = 1 << 30
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	gens := 0
	cfg.Observer = FuncObserver{Generation: func(gs GenStats) {
		if gs.Search != nil {
			gens++
		}
	}}
	e, err := NewEngine(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal(e.Err())
		}
	}
	b.StopTimer()
	if gens != b.N {
		b.Fatalf("observer saw %d stats blocks over %d steps", gens, b.N)
	}
	solves := reg.Counter("bcpop.lp_solves").Load()
	b.ReportMetric(float64(solves)/float64(b.N), "lp_solves/gen")
}
