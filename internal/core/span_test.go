package core

import (
	"io"
	"reflect"
	"testing"

	"carbon/internal/span"
	"carbon/internal/telemetry"
)

// TestRunBitIdenticalWithSpans is the determinism gate for the tracing
// layer: a traced run must be byte-for-byte the same search as an
// untraced one. Span IDs come from the tracer's private splitmix64
// stream, never from the algorithm RNG, so everything in Result —
// champion, curves, archives — must match exactly.
func TestRunBitIdenticalWithSpans(t *testing.T) {
	mk := smallMarket(t)

	plain, err := Run(mk, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}

	traced := smallConfig(7)
	traced.Spans = span.New(span.NewWriterExporter(io.Discard))
	traced.SpanLPEvery = 1 // span every solve: maximum tracing pressure
	got, err := Run(mk, traced)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("tracing perturbed the run:\n--- plain ---\n%+v\n--- traced ---\n%+v", plain, got)
	}
}

// TestStepSpanStructure pins the per-generation span tree: one "gen"
// root per Step, the four wave children parented to it, and sampled
// lp.solve spans parented to the relax wave.
func TestStepSpanStructure(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(3)
	var c span.Collector
	cfg.Spans = span.New(&c)
	cfg.SpanLPEvery = 1
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const gens = 3
	for g := 0; g < gens; g++ {
		if !e.Step() {
			t.Fatalf("step %d: %v", g, e.Err())
		}
	}

	byID := map[string]span.Record{}
	count := map[string]int{}
	for _, r := range c.Records() {
		byID[r.Span] = r
		count[r.Name]++
	}
	if count["gen"] != gens {
		t.Fatalf("got %d gen spans, want %d", count["gen"], gens)
	}
	for _, wave := range []string{"relax", "pred_eval", "prey_eval", "breed"} {
		if count[wave] != gens {
			t.Fatalf("got %d %q spans, want %d", count[wave], wave, gens)
		}
	}
	if count["lp.solve"] == 0 {
		t.Fatal("no lp.solve spans despite SpanLPEvery=1")
	}
	for _, r := range c.Records() {
		switch r.Name {
		case "gen":
			if r.Parent != "" {
				t.Fatalf("gen span has parent %q (no SpanParent set)", r.Parent)
			}
			if r.Attrs["island"] != 0 {
				t.Fatalf("gen span island attr: %+v", r.Attrs)
			}
		case "relax", "pred_eval", "prey_eval", "breed":
			p, ok := byID[r.Parent]
			if !ok || p.Name != "gen" || p.Trace != r.Trace {
				t.Fatalf("wave %q not parented to a gen span: %+v", r.Name, r)
			}
			if r.EndNS < r.StartNS || r.StartNS < p.StartNS {
				t.Fatalf("wave %q outside its gen: wave %+v gen %+v", r.Name, r, p)
			}
		case "lp.solve":
			p, ok := byID[r.Parent]
			if !ok || p.Name != "relax" || p.Trace != r.Trace {
				t.Fatalf("lp.solve not parented to relax: %+v", r)
			}
		default:
			t.Fatalf("unexpected span %q", r.Name)
		}
	}
}

// TestStepSpanParent: a SpanParent contexts every gen span into the
// caller's trace — the serve layer's attempt span becomes the parent.
func TestStepSpanParent(t *testing.T) {
	mk := smallMarket(t)
	var c span.Collector
	tr := span.New(&c)
	root := tr.Start(span.Context{}, "attempt")

	cfg := smallConfig(3)
	cfg.Spans = tr
	cfg.SpanParent = root.Context()
	cfg.SpanLPEvery = -1 // negative disables lp.solve sampling entirely
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal(e.Err())
	}
	root.End()

	sawGen := false
	for _, r := range c.Records() {
		if r.Name == "lp.solve" {
			t.Fatalf("lp.solve span emitted with SpanLPEvery=-1: %+v", r)
		}
		if r.Name == "gen" {
			sawGen = true
			if r.Trace != root.Context().Trace.String() || r.Parent != root.Context().Span.String() {
				t.Fatalf("gen span not parented into caller trace: %+v", r)
			}
		}
	}
	if !sawGen {
		t.Fatal("no gen span recorded")
	}
}

// TestIslandMigrationSpans: the island model emits one "migration" span
// per ring migration, and traced island runs stay deterministic.
func TestIslandMigrationSpans(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(5)
	ic := IslandConfig{Islands: 2, MigrateEvery: 1, Migrants: 1, Workers: 2}

	plain, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}

	var c span.Collector
	traced := cfg
	traced.Spans = span.New(&c)
	got, err := RunIslands(mk, traced, ic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("tracing perturbed the island run")
	}

	migrations := 0
	islands := map[float64]bool{}
	for _, r := range c.Records() {
		switch r.Name {
		case "migration":
			migrations++
		case "gen":
			if v, ok := r.Attrs["island"].(int); ok {
				islands[float64(v)] = true
			} else if v, ok := r.Attrs["island"].(float64); ok {
				islands[v] = true
			}
		}
	}
	if migrations != got.Migrations {
		t.Fatalf("got %d migration spans, want %d", migrations, got.Migrations)
	}
	if got.Migrations == 0 {
		t.Fatal("island run performed no migrations; test is vacuous")
	}
	if len(islands) != ic.Islands {
		t.Fatalf("gen spans tag %d distinct islands, want %d", len(islands), ic.Islands)
	}
}

// BenchmarkStepWithSpans is BenchmarkEngineStep with tracing on — the
// acceptance gate is staying within ~2% of the untraced benchmark.
func BenchmarkStepWithSpans(b *testing.B) {
	mk := smallMarket(b)
	cfg := smallConfig(1)
	cfg.ULEvalBudget = 1 << 30
	cfg.LLEvalBudget = 1 << 30
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	cfg.Spans = span.New(span.NewWriterExporter(io.Discard))
	e, err := NewEngine(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal(e.Err())
		}
	}
	b.StopTimer()
	solves := reg.Counter("bcpop.lp_solves").Load()
	b.ReportMetric(float64(solves)/float64(b.N), "lp_solves/gen")
}
