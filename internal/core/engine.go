package core

import (
	"errors"
	"fmt"

	"carbon/internal/archive"
	"carbon/internal/bcpop"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/par"
	"carbon/internal/rng"
)

// Engine is a steppable CARBON run: one Step is one co-evolutionary
// generation (predator evaluation → prey evaluation → archive updates →
// breeding). Run wraps it in the usual budget loop; the island model
// (RunIslands) steps several engines side by side and migrates elites
// between them; user code can step an engine directly for custom
// stopping rules or live monitoring.
type Engine struct {
	mk      *bcpop.Market
	cfg     Config
	set     *gp.Set
	evs     []*bcpop.Evaluator
	workers int
	r       *rng.Rand
	bounds  ga.Bounds

	prey      [][]float64
	predators []gp.Tree
	preyFit   []float64
	predFit   []float64
	preyGap   []float64

	ulArch *archive.Archive[[]float64]
	gpArch *archive.Archive[gp.Tree]

	res            *Result
	ulUsed, llUsed int
}

// NewEngine validates the configuration and initializes populations,
// archives and per-worker evaluators.
func NewEngine(mk *bcpop.Market, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	set := cfg.PrimitiveSet
	if set == nil {
		set = covering.TableISet()
	}
	workers := par.Workers(cfg.Workers)
	evs := make([]*bcpop.Evaluator, workers)
	for i := range evs {
		ev, err := bcpop.NewEvaluator(mk, set)
		if err != nil {
			return nil, err
		}
		ev.Eliminate = !cfg.NoElimination
		evs[i] = ev
	}
	e := &Engine{
		mk: mk, cfg: cfg, set: set, evs: evs, workers: workers,
		r:      rng.New(cfg.Seed),
		bounds: mk.PriceBounds(),
		res:    &Result{},
	}
	e.prey = make([][]float64, cfg.ULPopSize)
	for i := range e.prey {
		e.prey[i] = e.bounds.RandomVector(e.r)
	}
	e.predators = make([]gp.Tree, cfg.LLPopSize)
	for i := range e.predators {
		e.predators[i] = set.Ramped(e.r, cfg.InitDepthMin, cfg.InitDepthMax)
	}
	e.preyFit = make([]float64, cfg.ULPopSize)
	e.predFit = make([]float64, cfg.LLPopSize)
	e.preyGap = make([]float64, cfg.ULPopSize)
	e.ulArch = archive.New[[]float64](cfg.ULArchiveSize, false, priceKey)
	e.gpArch = archive.New[gp.Tree](cfg.LLArchiveSize, true,
		func(t gp.Tree) string { return t.String(set) })
	return e, nil
}

// CanStep reports whether another generation fits in both budgets.
func (e *Engine) CanStep() bool {
	return e.ulUsed+e.cfg.ULPopSize <= e.cfg.ULEvalBudget &&
		e.llUsed+e.cfg.LLPopSize*e.cfg.PreySample <= e.cfg.LLEvalBudget
}

// Gens returns the number of completed generations.
func (e *Engine) Gens() int { return e.res.Gens }

// Step runs one generation. It returns false (and does nothing) when
// the budgets are exhausted.
func (e *Engine) Step() bool {
	if !e.CanStep() {
		return false
	}
	cfg := e.cfg

	// --- Predator evaluation: mean gap over a fresh prey sample ---
	sample := e.r.SampleDistinct(min(cfg.PreySample, len(e.prey)), len(e.prey))
	evalStriped(len(e.predators), e.workers, func(i, worker int) {
		ev := e.evs[worker]
		total := 0.0
		for _, s := range sample {
			out, _, err := ev.EvalTree(e.prey[s], e.predators[i])
			if err != nil {
				panic(fmt.Sprintf("core: predator evaluation: %v", err))
			}
			if cfg.CostFitness {
				total += out.LLCost // ablation: COBRA-style objective
			} else {
				total += out.GapPct // paper: Eq. 1
			}
		}
		e.predFit[i] = total / float64(len(sample))
	})
	e.llUsed += len(e.predators) * len(sample)

	bestPred := 0
	for i := 1; i < len(e.predators); i++ {
		if e.predFit[i] < e.predFit[bestPred] {
			bestPred = i
		}
	}
	for i, t := range e.predators {
		e.gpArch.Add(t.Clone(), e.predFit[i])
	}

	// --- Prey evaluation: revenue under the best current forecast ---
	hunter := e.predators[bestPred]
	evalStriped(len(e.prey), e.workers, func(i, worker int) {
		out, _, err := e.evs[worker].EvalTree(e.prey[i], hunter)
		if err != nil {
			panic(fmt.Sprintf("core: prey evaluation: %v", err))
		}
		if out.Feasible {
			e.preyFit[i] = out.Revenue
		} else {
			e.preyFit[i] = 0
		}
		e.preyGap[i] = out.GapPct
	})
	e.ulUsed += len(e.prey)

	for i, x := range e.prey {
		e.ulArch.Add(append([]float64(nil), x...), e.preyFit[i])
	}

	// --- Record convergence ---
	e.res.Gens++
	x := float64(e.ulUsed + e.llUsed)
	if be, ok := e.ulArch.Best(); ok {
		e.res.ULCurve.X = append(e.res.ULCurve.X, x)
		e.res.ULCurve.Y = append(e.res.ULCurve.Y, be.Fitness)
	}
	if be, ok := e.gpArch.Best(); ok {
		e.res.GapCurve.X = append(e.res.GapCurve.X, x)
		e.res.GapCurve.Y = append(e.res.GapCurve.Y, be.Fitness)
	}

	// --- Breed next generations ---
	e.prey = breedPrey(e.r, e.prey, e.preyFit, e.bounds, cfg)
	e.predators = breedPredators(e.r, e.set, e.predators, e.predFit, cfg)
	return true
}

// BestPrey returns a copy of the best archived pricing and its revenue.
func (e *Engine) BestPrey() ([]float64, float64, bool) {
	be, ok := e.ulArch.Best()
	if !ok {
		return nil, 0, false
	}
	return append([]float64(nil), be.Item...), be.Fitness, true
}

// BestPredator returns a copy of the best archived heuristic and its
// fitness.
func (e *Engine) BestPredator() (gp.Tree, float64, bool) {
	be, ok := e.gpArch.Best()
	if !ok {
		return gp.Tree{}, 0, false
	}
	return be.Item.Clone(), be.Fitness, true
}

// InjectPrey replaces a random non-elite slot of the prey population
// with a copy of x (island-model migration). The archive is untouched —
// the migrant must earn its place at the next evaluation.
func (e *Engine) InjectPrey(x []float64) error {
	if len(x) != e.mk.Leaders() {
		return errors.New("core: migrant prey has wrong dimension")
	}
	slot := e.cfg.Elites
	if len(e.prey) > e.cfg.Elites+1 {
		slot = e.cfg.Elites + e.r.Intn(len(e.prey)-e.cfg.Elites)
	}
	e.prey[slot] = append([]float64(nil), x...)
	return nil
}

// InjectPredator replaces a random non-elite slot of the predator
// population with a copy of t.
func (e *Engine) InjectPredator(t gp.Tree) error {
	if err := t.Check(e.set); err != nil {
		return err
	}
	slot := e.cfg.Elites
	if len(e.predators) > e.cfg.Elites+1 {
		slot = e.cfg.Elites + e.r.Intn(len(e.predators)-e.cfg.Elites)
	}
	e.predators[slot] = t.Clone()
	return nil
}

// Result finalizes and returns the run summary. The engine may continue
// stepping afterwards; each call snapshots the current state.
func (e *Engine) Result() (*Result, error) {
	res := &Result{
		Gens:     e.res.Gens,
		ULEvals:  e.ulUsed,
		LLEvals:  e.llUsed,
		ULCurve:  e.res.ULCurve,
		GapCurve: e.res.GapCurve,
	}
	res.ULArchive = e.ulArch.Entries()
	res.GPArchive = e.gpArch.Entries()
	if be, ok := e.ulArch.Best(); ok {
		res.Best.Price = be.Item
		res.Best.Revenue = be.Fitness
	}
	if be, ok := e.gpArch.Best(); ok {
		res.Best.Tree = be.Item
		res.Best.TreeStr = be.Item.String(e.set)
		res.Best.Simplified = gp.Simplify(e.set, be.Item).String(e.set)
		res.Best.GapPct = be.Fitness
		if e.cfg.CostFitness {
			// Under the ablation the archive fitness is a raw cost, so
			// re-measure the actual gap of the selected tree on a fresh
			// prey sample (reporting only — budgets are spent).
			sample := e.r.SampleDistinct(min(e.cfg.PreySample, len(e.prey)), len(e.prey))
			total := 0.0
			for _, s := range sample {
				out, _, err := e.evs[0].EvalTree(e.prey[s], be.Item)
				if err != nil {
					return nil, err
				}
				total += out.GapPct
			}
			res.Best.GapPct = total / float64(len(sample))
		}
	}
	return res, nil
}

// Run executes CARBON on the market until either evaluation budget is
// exhausted.
func Run(mk *bcpop.Market, cfg Config) (*Result, error) {
	e, err := NewEngine(mk, cfg)
	if err != nil {
		return nil, err
	}
	for e.Step() {
	}
	return e.Result()
}
