package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"carbon/internal/archive"
	"carbon/internal/bcpop"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/span"
	"carbon/internal/stats"
	"carbon/internal/surrogate"
	"carbon/internal/telemetry"
)

// Engine is a steppable CARBON run: one Step is one co-evolutionary
// generation (predator evaluation → prey evaluation → archive updates →
// breeding). Run wraps it in the usual budget loop; the island model
// (RunIslands) steps several engines side by side and migrates elites
// between them; user code can step an engine directly for custom
// stopping rules or live monitoring.
type Engine struct {
	mk      *bcpop.Market
	cfg     Config
	set     *gp.Set
	evs     []*bcpop.Evaluator
	workers int
	r       *rng.Rand
	bounds  ga.Bounds

	prey      [][]float64
	predators []gp.Tree
	preyFit   []float64
	predFit   []float64
	preyGap   []float64

	// Shared-relaxation cache: per generation, one LP solve per
	// distinct prey genotype feeds every (predator, prey) pairing of
	// both evaluation waves. preySlot[i] is prey i's slot in cache;
	// missing is the fill wave's scratch (first-occurrence prey index
	// per fresh slot).
	cache    *bcpop.Cache
	preySlot []int
	missing  []int

	// Surrogate-assisted LP skipping (DESIGN.md §5l). surr is nil
	// unless Config.Surrogate.Enabled — the exact path then compiles to
	// exactly the pre-surrogate engine (gated branches only). All the
	// per-slot scratch is coordinator-owned: the skip plan is frozen
	// before the relax wave starts, and the wave closures only read it.
	surr     *surrogate.Model
	surrCfg  surrogate.Config // resolved knobs; meaningful iff surr != nil
	slotSkip []bool           // per slot: surrogate-scored, no LP this gen
	slotPred []float64        // per slot: predicted revenue
	slotUnc  []float64        // per slot: model leverage (uncertainty)
	slotRank []int            // sort scratch for the skip plan
	exactIdx []int            // relax worklist under skipping (first-occurrence prey indices)

	ulArch *archive.Archive[[]float64]
	gpArch *archive.Archive[gp.Tree]

	res            *Result
	ulUsed, llUsed int

	// Telemetry and failure state. obs/met/spans are nil when telemetry
	// is off — the hot path then takes the uninstrumented branch with no
	// clock reads and no allocations.
	obs    Observer
	met    *engineMetrics
	island int

	// Span tracing (Config.Spans). spanParent roots each generation
	// span; spanLPEvery is the resolved lp.solve sampling stride.
	spans       *span.Tracer
	spanParent  span.Context
	spanLPEvery int

	// Failure state. An evaluation that fails mid-wave no longer kills
	// the run: the affected individual is quarantined for the
	// generation (worst-known fitness, kept out of the archives) and
	// faults counts every quarantine. Only a generation with zero
	// successful evaluations in a wave is terminal — err records that
	// cause and Step refuses to run again. mu guards err and faults so
	// Err/Faults may be polled concurrently with Step (a serving
	// front end watching a live engine).
	mu     sync.Mutex
	err    error
	faults int

	// Per-generation quarantine scratch, reused every Step. slotErr is
	// indexed by cache slot (relaxation failures); preyErr/predErr by
	// population index. Wave closures write disjoint indices, so the
	// slices need no locking.
	slotErr  []error
	preyErr  []error
	predErr  []error
	predQuar []bool

	// Search-dynamics introspection (DESIGN.md §5f). Everything below
	// is inert until the first Step with an observer attached, consumes
	// no RNG and issues no extra LP solves, so a run is bit-identical
	// with it on or off. led is the provenance ledger; gapMat collects
	// the paired-evaluation %-gap matrix in pairing-index order;
	// preyOrigins/predOrigins describe how the CURRENT populations were
	// bred from the previous ones, whose fitness is kept in
	// prevPreyFit/prevPredFit for operator-success accounting.
	led          *lineage
	gapMat       []float64
	gapSketch    *telemetry.QuantileSketch
	prevPreyFit  []float64
	prevPredFit  []float64
	preyOrigins  []origin
	predOrigins  []origin
	prevSizeMean float64
}

// engineMetrics holds the engine's registered instruments. All handles
// come from one telemetry.Registry, so islands sharing a registry
// aggregate into the same counters.
type engineMetrics struct {
	gens      *telemetry.Counter
	ulEvals   *telemetry.Counter
	llEvals   *telemetry.Counter
	surrSkips *telemetry.Counter
	surrExact *telemetry.Counter
	relax     *telemetry.Timer
	predEval  *telemetry.Timer
	preyEval  *telemetry.Timer
	breed     *telemetry.Timer
	wave      *par.WaveMetrics
}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		gens:      reg.Counter("core.generations"),
		ulEvals:   reg.Counter("core.ul_evals"),
		llEvals:   reg.Counter("core.ll_evals"),
		surrSkips: reg.Counter("core.surrogate_skips"),
		surrExact: reg.Counter("core.surrogate_exact_solves"),
		relax:     reg.Timer("core.relax_precompute"),
		predEval:  reg.Timer("core.predator_eval"),
		preyEval:  reg.Timer("core.prey_eval"),
		breed:     reg.Timer("core.breed"),
		wave:      par.NewWaveMetrics(reg, "par.eval"),
	}
}

// NewEngine validates the configuration and initializes populations,
// archives and per-worker evaluators.
func NewEngine(mk *bcpop.Market, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	set := cfg.PrimitiveSet
	if set == nil {
		set = covering.TableISet()
	}
	workers := par.Workers(cfg.Workers)
	evs := make([]*bcpop.Evaluator, workers)
	for i := range evs {
		ev, err := bcpop.NewEvaluator(mk, set)
		if err != nil {
			return nil, err
		}
		ev.Eliminate = !cfg.NoElimination
		evs[i] = ev
	}
	e := &Engine{
		mk: mk, cfg: cfg, set: set, evs: evs, workers: workers,
		r:          rng.New(cfg.Seed),
		bounds:     mk.PriceBounds(),
		res:        &Result{},
		obs:        cfg.Observer,
		met:        newEngineMetrics(cfg.Metrics),
		spans:      cfg.Spans,
		spanParent: cfg.SpanParent,
	}
	switch {
	case cfg.SpanLPEvery > 0:
		e.spanLPEvery = cfg.SpanLPEvery
	case cfg.SpanLPEvery == 0:
		e.spanLPEvery = 8
	}
	if em := bcpop.NewEvalMetrics(cfg.Metrics); em != nil {
		for _, ev := range evs {
			ev.Metrics = em
		}
	}
	if cfg.LPFault != nil || cfg.EvalFault != nil {
		for _, ev := range evs {
			ev.SetLPFault(cfg.LPFault)
			ev.EvalFault = cfg.EvalFault
		}
	}
	e.prey = make([][]float64, cfg.ULPopSize)
	for i := range e.prey {
		e.prey[i] = e.bounds.RandomVector(e.r)
	}
	e.predators = make([]gp.Tree, cfg.LLPopSize)
	for i := range e.predators {
		e.predators[i] = set.Ramped(e.r, cfg.InitDepthMin, cfg.InitDepthMax)
	}
	e.preyFit = make([]float64, cfg.ULPopSize)
	e.predFit = make([]float64, cfg.LLPopSize)
	e.preyGap = make([]float64, cfg.ULPopSize)
	e.cache = bcpop.NewCache()
	e.preySlot = make([]int, cfg.ULPopSize)
	e.missing = make([]int, 0, cfg.ULPopSize)
	e.slotErr = make([]error, 0, cfg.ULPopSize)
	e.preyErr = make([]error, cfg.ULPopSize)
	e.predErr = make([]error, cfg.LLPopSize)
	e.predQuar = make([]bool, cfg.LLPopSize)
	e.ulArch = archive.New[[]float64](cfg.ULArchiveSize, false, priceKey)
	e.gpArch = archive.New[gp.Tree](cfg.LLArchiveSize, true,
		func(t gp.Tree) string { return t.String(set) })
	if cfg.Surrogate.Enabled {
		e.surrCfg = cfg.Surrogate.Resolved(cfg.ULPopSize, mk.Leaders())
		e.surr = surrogate.New(mk.Leaders(), e.surrCfg)
	}
	return e, nil
}

// CanStep reports whether another generation fits in both budgets. The
// lower-level charge uses Config.EffectiveSample — what Step actually
// spends — not the raw PreySample: charging the unclamped value used to
// stop PreySample > ULPopSize runs early with budget to spare.
func (e *Engine) CanStep() bool {
	return e.ulUsed+e.cfg.ULPopSize <= e.cfg.ULEvalBudget &&
		e.llUsed+e.cfg.LLPopSize*e.cfg.EffectiveSample() <= e.cfg.LLEvalBudget
}

// Gens returns the number of completed generations.
func (e *Engine) Gens() int { return e.res.Gens }

// SetObserver installs (or, with nil, removes) the per-generation hook
// after construction. Prefer Config.Observer; this exists so callers
// stepping an engine directly can attach monitoring mid-run.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// Err returns the terminal error of a failed Step, or nil. Once set the
// engine refuses to step further. Individual evaluation failures are
// NOT terminal — they quarantine the affected individual for the
// generation and show up in Faults; a Step is terminal only when an
// entire evaluation wave produced zero successful evaluations (every
// relaxation failed, every predator pairing failed, or every prey
// evaluation failed), because then the generation has no fitness signal
// at all. Safe to call concurrently with Step.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Faults returns the cumulative number of quarantined evaluations: prey
// whose relaxation or evaluation failed plus predators none of whose
// pairings survived. A fault-free run reports 0. Safe to call
// concurrently with Step.
func (e *Engine) Faults() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.faults
}

// fail records the terminal error of the current Step. The first fail
// wins: Step checks err at entry, so a later generation can never
// overwrite the original cause.
func (e *Engine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

func (e *Engine) addFaults(n int) {
	e.mu.Lock()
	e.faults += n
	e.mu.Unlock()
}

// Step runs one generation. It returns false (and does nothing) when
// the budgets are exhausted or a previous Step failed terminally; in
// the failure case Err reports the cause.
func (e *Engine) Step() bool {
	if e.Err() != nil || !e.CanStep() {
		return false
	}
	// Generation boundaries are warm-start boundaries. Prepare warm-
	// starts from its evaluator's current basis, so resetting every
	// evaluator here makes the generation's solve sequence a pure
	// function of (prey genotypes, worker striping): no solver history —
	// from earlier generations, from a mid-run Result() call, or from
	// compatibility paths like EvalTree used by external callers between
	// Steps — can leak in. This is what keeps a restored run bit-
	// identical to an uninterrupted one (TestSnapshotRestoreGolden).
	for _, ev := range e.evs {
		ev.ResetWarm()
	}
	cfg := e.cfg
	// Predators are evaluated compiled by default: each is lowered to
	// bytecode once per generation (per worker stripe) and swept across
	// the cached prey contexts with that worker's reused VM and greedy
	// scratch — zero allocations in steady state, results bit-identical
	// to the interpreter (cfg.Interpret keeps the tree walker available
	// as the golden reference).
	compiled := !cfg.Interpret
	spansOn := e.spans != nil
	observing := e.obs != nil || e.met != nil || spansOn
	statsOn := e.obs != nil
	if statsOn && e.led == nil {
		e.initLineage()
	}
	var wave *par.WaveMetrics
	if e.met != nil {
		wave = e.met.wave
	}
	// The gen span covers the whole Step (deferred End, so terminal
	// failure paths close it too); each wave gets a child span ended at
	// its barrier. All of it rides the observer switch: an untraced
	// engine pays one nil check.
	var genSpan *span.Span
	if spansOn {
		genSpan = e.spans.Start(e.spanParent, "gen").Kind(span.KindCompute).
			Attr("gen", e.res.Gens+1).Attr("island", e.island)
		defer genSpan.End()
	}
	var evalNanos, breedNanos int64
	var t0 time.Time
	if observing {
		t0 = time.Now()
	}

	// --- Relaxation precompute: one LP solve per distinct prey ---
	// Every quantity the pairings below need from the LP (LB, duals, x̄)
	// depends only on the prey, so the |sample| predator pairings and
	// the prey wave share one Prepared context per distinct genotype.
	// Slots are assigned in prey-index order and the fill wave is
	// striped contiguously, so each worker warm-chains a deterministic
	// subsequence of the missing genotypes: for a fixed (Seed, Workers)
	// the wave reproduces bit-for-bit (see
	// TestRunReproduciblePerWorkerCount).
	sample := e.r.SampleDistinct(cfg.EffectiveSample(), len(e.prey))
	e.cache.Reset()
	missing := e.missing[:0]
	for i, x := range e.prey {
		slot, fresh := e.cache.Slot(x)
		e.preySlot[i] = slot
		if fresh {
			missing = append(missing, i)
		}
	}
	e.missing = missing
	// Surrogate skip plan (DESIGN.md §5l): once the model is warmed up
	// and trusted, only the sampled + predicted-top-k + high-uncertainty
	// genotypes get exact LP solves; the rest are surrogate-scored. The
	// plan is frozen here, on the coordinator, from model state that
	// predates this generation — the exact subset is a deterministic
	// rule over frozen scores, and the scoring consumes zero RNG, so
	// determinism per (Seed, Workers) is untouched. With the surrogate
	// disabled, skipping is false and relaxList is exactly missing: the
	// paper-faithful path, bit-identical to the pre-surrogate engine.
	skipping := e.planSurrogate(sample)
	relaxList := missing
	if skipping {
		ex := e.exactIdx[:0]
		for s, skip := range e.slotSkip {
			if !skip {
				ex = append(ex, missing[s])
			}
		}
		e.exactIdx = ex
		relaxList = ex
	}
	// A failed solve quarantines its slot (slotErr) instead of aborting
	// the wave: the slot's Prepared stays nil, and every prey sharing it
	// is quarantined for this generation. Writes are per-slot disjoint.
	slotErr := e.slotErr[:0]
	for range e.cache.Len() {
		slotErr = append(slotErr, nil)
	}
	e.slotErr = slotErr
	var waveSpan *span.Span
	if spansOn {
		waveSpan = e.spans.Start(genSpan.Context(), "relax").Kind(span.KindCompute).
			Attr("solves", len(relaxList))
	}
	relaxCtx := waveSpan.Context()
	lpEvery := e.spanLPEvery
	e.phase(observing, "relax", func() {
		evalStriped(len(relaxList), e.workers, wave, func(i, worker int) {
			// Sampled lp.solve child spans: every lpEvery-th distinct
			// genotype, so the waterfall shows representative solve
			// latencies without a span per solve. sp is nil off-sample
			// and when tracing is off; every path below ends it.
			var sp *span.Span
			if spansOn && lpEvery > 0 && i%lpEvery == 0 {
				sp = e.spans.Start(relaxCtx, "lp.solve").Kind(span.KindCompute).
					Attr("prey", relaxList[i]).Attr("worker", worker)
			}
			p, err := e.evs[worker].Prepare(e.prey[relaxList[i]])
			if err != nil {
				sp.Attr("error", true).End()
				slotErr[e.preySlot[relaxList[i]]] = fmt.Errorf("core: prey %d relaxation: %w", relaxList[i], err)
				return
			}
			e.cache.Fill(e.preySlot[relaxList[i]], p)
			sp.End()
		})
	})
	waveSpan.End()
	badSlots := 0
	var firstSlotErr error
	for _, serr := range slotErr {
		if serr != nil {
			badSlots++
			if firstSlotErr == nil {
				firstSlotErr = serr
			}
		}
	}
	if badSlots == len(relaxList) {
		// Not one relaxation survived: the generation has no fitness
		// signal and continuing would evolve on noise. Terminal.
		e.fail(fmt.Errorf("core: generation %d: every relaxation failed: %w", e.res.Gens+1, firstSlotErr))
		return false
	}
	// preyErr carries each prey's quarantine cause across the waves
	// (nil = healthy so far). Relaxation failures propagate through the
	// shared slot; the prey wave below may add evaluation failures.
	for i := range e.prey {
		e.preyErr[i] = slotErr[e.preySlot[i]]
	}
	if observing {
		d := time.Since(t0)
		evalNanos += int64(d)
		if e.met != nil {
			e.met.relax.Observe(d)
		}
		t0 = time.Now()
	}

	// --- Predator evaluation: mean gap over a fresh prey sample ---
	// With stats on, the per-pairing gaps land in gapMat by pairing
	// index: writes are disjoint, so the matrix is identical regardless
	// of worker scheduling and can be folded sequentially afterwards.
	var gm []float64
	ns := len(sample)
	if statsOn {
		if cap(e.gapMat) < len(e.predators)*ns {
			e.gapMat = make([]float64, len(e.predators)*ns)
		}
		gm = e.gapMat[:len(e.predators)*ns]
		// Quarantined pairings leave their cell untouched, so prefill
		// with NaN — the quantile sketch ignores NaN, keeping the gap
		// percentiles an honest summary of the pairings that ran.
		for i := range gm {
			gm[i] = math.NaN()
		}
	}
	// A predator is quarantined when it has no fitness this generation:
	// either one of its pairings failed (predErr) or every sampled prey
	// was already quarantined (pairs == 0). Healthy pairings against
	// quarantined prey are skipped; the mean gap averages over the
	// pairings that ran, which equals the usual mean when nothing
	// faulted. Writes are per-index disjoint.
	if spansOn {
		waveSpan = e.spans.Start(genSpan.Context(), "pred_eval").Kind(span.KindCompute).
			Attr("pairings", len(e.predators)*ns)
	}
	e.phase(observing, "pred_eval", func() {
		evalStriped(len(e.predators), e.workers, wave, func(i, worker int) {
			ev := e.evs[worker]
			e.predErr[i] = nil
			e.predQuar[i] = true
			// Compile once, evaluate against every sampled context. A
			// compile failure (a hostile injected tree, say) quarantines
			// the predator exactly like an evaluation failure would.
			var prog *gp.Program
			if compiled {
				var cerr error
				prog, cerr = ev.CompileTree(e.predators[i])
				if cerr != nil {
					e.predErr[i] = fmt.Errorf("core: predator %d compile: %w", i, cerr)
					return
				}
			}
			total := 0.0
			pairs := 0
			for si, s := range sample {
				p := e.cache.At(e.preySlot[s])
				if p == nil {
					continue // prey s's relaxation faulted this generation
				}
				var out bcpop.Result
				var err error
				if compiled {
					out, _, err = ev.EvalProgramWith(p, prog)
				} else {
					out, _, err = ev.EvalTreeWith(p, e.predators[i])
				}
				if err != nil {
					e.predErr[i] = fmt.Errorf("core: predator %d evaluation: %w", i, err)
					return
				}
				if gm != nil {
					gm[i*ns+si] = out.GapPct
				}
				if cfg.CostFitness {
					total += out.LLCost // ablation: COBRA-style objective
				} else {
					total += out.GapPct // paper: Eq. 1
				}
				pairs++
			}
			if pairs == 0 {
				return
			}
			e.predQuar[i] = false
			e.predFit[i] = total / float64(pairs)
		})
	})
	waveSpan.End()
	quarPred := 0
	var firstPredErr error
	for i := range e.predators {
		if e.predQuar[i] {
			quarPred++
			if firstPredErr == nil && e.predErr[i] != nil {
				firstPredErr = e.predErr[i]
			}
		}
	}
	if quarPred == len(e.predators) {
		if firstPredErr == nil {
			firstPredErr = firstSlotErr
		}
		e.fail(fmt.Errorf("core: generation %d: every predator evaluation failed: %w", e.res.Gens+1, firstPredErr))
		return false
	}
	if quarPred > 0 {
		// Worst-known fitness (predators minimize mean gap) keeps the
		// quarantined out of selection without skewing anyone else. The
		// substitution itself draws no RNG, so faulted runs replay
		// deterministically per (Seed, Workers, fault pattern).
		worst := math.Inf(-1)
		for i := range e.predators {
			if !e.predQuar[i] && e.predFit[i] > worst {
				worst = e.predFit[i]
			}
		}
		for i := range e.predators {
			if e.predQuar[i] {
				e.predFit[i] = worst
			}
		}
	}
	e.llUsed += len(e.predators) * len(sample)
	if observing {
		d := time.Since(t0)
		evalNanos += int64(d)
		if e.met != nil {
			e.met.predEval.Observe(d)
		}
	}

	// Best forecast and archive additions consider only predators that
	// actually earned a fitness this generation — a quarantined predator
	// can neither hunt nor enter the archive on its assigned worst value.
	bestPred := -1
	for i := range e.predators {
		if e.predQuar[i] {
			continue
		}
		if bestPred < 0 || e.predFit[i] < e.predFit[bestPred] {
			bestPred = i
		}
	}
	gpAdds := 0
	for i, t := range e.predators {
		if e.predQuar[i] {
			continue
		}
		if e.gpArch.Add(t.Clone(), e.predFit[i]) {
			gpAdds++
		}
	}

	// --- Prey evaluation: revenue under the best current forecast ---
	if observing {
		t0 = time.Now()
	}
	hunter := e.predators[bestPred]
	// One hunter scores every prey, so compile it once and share the
	// immutable program read-only across workers (each worker executes
	// it on its own VM). The hunter was just compiled and evaluated in
	// the predator wave, so a compile failure here is impossible short
	// of memory corruption — treat it as terminal.
	var hunterProg *gp.Program
	if compiled {
		hp, cerr := gp.Compile(e.set, hunter)
		if cerr != nil {
			e.fail(fmt.Errorf("core: generation %d: hunter compile: %w", e.res.Gens+1, cerr))
			return false
		}
		hunterProg = hp
	}
	if spansOn {
		waveSpan = e.spans.Start(genSpan.Context(), "prey_eval").Kind(span.KindCompute).
			Attr("prey", len(e.prey))
	}
	e.phase(observing, "prey_eval", func() {
		evalStriped(len(e.prey), e.workers, wave, func(i, worker int) {
			if e.preyErr[i] != nil {
				return // relaxation already quarantined this prey
			}
			if skipping && e.slotSkip[e.preySlot[i]] {
				// Surrogate-scored prey: no Prepared context exists, so
				// the predicted revenue stands in as selection fitness
				// (floored at 0, the engine's revenue floor). The NaN
				// gap keeps the skipped pairing out of the gap stats,
				// and the archive pass below refuses surrogate scores —
				// only exactly-evaluated prey can enter the archive.
				rev := e.slotPred[e.preySlot[i]]
				if rev < 0 {
					rev = 0
				}
				e.preyFit[i] = rev
				e.preyGap[i] = math.NaN()
				return
			}
			var out bcpop.Result
			var err error
			if compiled {
				out, _, err = e.evs[worker].EvalProgramWith(e.cache.At(e.preySlot[i]), hunterProg)
			} else {
				out, _, err = e.evs[worker].EvalTreeWith(e.cache.At(e.preySlot[i]), hunter)
			}
			if err != nil {
				e.preyErr[i] = fmt.Errorf("core: prey %d evaluation: %w", i, err)
				return
			}
			if out.Feasible {
				e.preyFit[i] = out.Revenue
			} else {
				e.preyFit[i] = 0
			}
			e.preyGap[i] = out.GapPct
		})
	})
	waveSpan.End()
	quarPrey := 0
	var firstPreyErr error
	for i := range e.prey {
		if e.preyErr[i] == nil {
			continue
		}
		quarPrey++
		if firstPreyErr == nil {
			firstPreyErr = e.preyErr[i]
		}
		// Worst-known fitness: revenue is maximized and never negative,
		// so 0 is the floor (shared with infeasible follower answers).
		// NaN gap keeps the quarantined pairing out of the gap stats.
		e.preyFit[i] = 0
		e.preyGap[i] = math.NaN()
	}
	if quarPrey == len(e.prey) {
		e.fail(fmt.Errorf("core: generation %d: every prey evaluation failed: %w", e.res.Gens+1, firstPreyErr))
		return false
	}
	e.ulUsed += len(e.prey)
	if observing {
		d := time.Since(t0)
		evalNanos += int64(d)
		if e.met != nil {
			e.met.preyEval.Observe(d)
		}
	}

	ulAdds := 0
	for i, x := range e.prey {
		if e.preyErr[i] != nil {
			continue // quarantined: no archive entry on a made-up fitness
		}
		if skipping && e.slotSkip[e.preySlot[i]] {
			continue // surrogate-scored: no archive entry on a predicted fitness
		}
		if e.ulArch.Add(append([]float64(nil), x...), e.preyFit[i]) {
			ulAdds++
		}
	}

	// --- Surrogate residual feedback ---
	// Every exactly-evaluated genotype becomes a training observation:
	// LB from its Prepared relaxation, revenue from the prey wave. Runs
	// sequentially on the coordinator in slot order, so the model state
	// entering the next generation's skip plan is deterministic.
	var surrStats *SurrStats
	if e.surr != nil {
		surrStats = e.feedSurrogate(skipping)
	}

	// --- Fault accounting for the generation ---
	if genFaults := quarPred + quarPrey; genFaults > 0 {
		e.addFaults(genFaults)
		if em := e.evs[0].Metrics; em != nil {
			em.Faults.Add(int64(genFaults))
		}
	}

	// --- Record convergence ---
	e.res.Gens++
	x := float64(e.ulUsed + e.llUsed)
	if be, ok := e.ulArch.Best(); ok {
		e.res.ULCurve.X = append(e.res.ULCurve.X, x)
		e.res.ULCurve.Y = append(e.res.ULCurve.Y, be.Fitness)
	}
	if be, ok := e.gpArch.Best(); ok {
		e.res.GapCurve.X = append(e.res.GapCurve.X, x)
		e.res.GapCurve.Y = append(e.res.GapCurve.Y, be.Fitness)
	}

	// --- Search-dynamics snapshot (observer runs only) ---
	// Computed before breeding, while the fitness arrays still describe
	// the evaluated populations; consumes no RNG and re-uses the
	// generation's own evaluation results.
	var search *SearchStats
	if statsOn {
		search = e.computeSearchStats(gm, ulAdds, gpAdds)
	}

	// --- Breed next generations ---
	if observing {
		t0 = time.Now()
	}
	if spansOn {
		waveSpan = e.spans.Start(genSpan.Context(), "breed").Kind(span.KindCompute)
	}
	var newPrey [][]float64
	var newPred []gp.Tree
	var preyOr, predOr []origin
	e.phase(observing, "breed", func() {
		newPrey, preyOr = breedPrey(e.r, e.prey, e.preyFit, e.bounds, cfg)
		newPred, predOr = breedPredators(e.r, e.set, e.predators, e.predFit, cfg)
	})
	if statsOn {
		e.prevPreyFit = append(e.prevPreyFit[:0], e.preyFit...)
		e.prevPredFit = append(e.prevPredFit[:0], e.predFit...)
		e.led.advance(preyOr, predOr, e.res.Gens)
		e.preyOrigins, e.predOrigins = preyOr, predOr
	}
	e.prey = newPrey
	e.predators = newPred
	waveSpan.End()
	if observing {
		d := time.Since(t0)
		breedNanos = int64(d)
		if e.met != nil {
			e.met.breed.Observe(d)
			e.met.gens.Inc()
			e.met.ulEvals.Add(int64(cfg.ULPopSize))
			e.met.llEvals.Add(int64(cfg.LLPopSize * len(sample)))
		}
	}
	if e.obs != nil {
		e.obs.OnGeneration(e.genStats(evalNanos, breedNanos, search, surrStats))
	}
	return true
}

// planSurrogate freezes this generation's skip plan. It returns false —
// solve everything, the pre-surrogate behavior — until the model is
// past warmup AND has digested enough observations to rank; after that
// it predicts every distinct genotype (in slot order, consuming no RNG)
// and marks as exact: the slots of sampled prey (the predator wave
// needs their Prepared contexts), the TopK slots by predicted revenue
// (the likely winners must be exactly scored — archives never accept
// predictions), and the Uncertain highest-leverage slots among the rest
// (exploration keeps the model honest on new price regions). All ties
// break by slot index, i.e. first-occurrence prey order: the exact
// subset is a deterministic rule over frozen scores.
func (e *Engine) planSurrogate(sample []int) bool {
	if e.surr == nil || e.res.Gens < e.surrCfg.Warmup || !e.surr.Ready() {
		return false
	}
	n := e.cache.Len()
	if cap(e.slotSkip) < n {
		e.slotSkip = make([]bool, n)
		e.slotPred = make([]float64, n)
		e.slotUnc = make([]float64, n)
		e.slotRank = make([]int, n)
		e.exactIdx = make([]int, 0, n)
	}
	skip := e.slotSkip[:n]
	pred := e.slotPred[:n]
	unc := e.slotUnc[:n]
	rank := e.slotRank[:n]
	e.slotSkip, e.slotPred, e.slotUnc, e.slotRank = skip, pred, unc, rank
	for s := 0; s < n; s++ {
		p := e.surr.Predict(e.prey[e.missing[s]])
		pred[s], unc[s] = p.Rev, p.Unc
		skip[s] = true
		rank[s] = s
	}
	for _, i := range sample {
		skip[e.preySlot[i]] = false
	}
	sort.Slice(rank, func(a, b int) bool {
		if pred[rank[a]] != pred[rank[b]] {
			return pred[rank[a]] > pred[rank[b]]
		}
		return rank[a] < rank[b]
	})
	for _, s := range rank[:min(e.surrCfg.TopK, n)] {
		skip[s] = false
	}
	for s := range rank {
		rank[s] = s
	}
	sort.Slice(rank, func(a, b int) bool {
		if unc[rank[a]] != unc[rank[b]] {
			return unc[rank[a]] > unc[rank[b]]
		}
		return rank[a] < rank[b]
	})
	picked := 0
	for _, s := range rank {
		if picked >= e.surrCfg.Uncertain {
			break
		}
		if skip[s] {
			skip[s] = false
			picked++
		}
	}
	return true
}

// feedSurrogate runs the residual feedback pass after the prey wave and
// returns the generation's surrogate telemetry. Observations go in slot
// order; quarantined or unfilled slots contribute nothing. The reported
// error is the mean relative revenue residual of the generation's
// *pre-update* predictions — the honest out-of-sample error of exactly
// the scores the skip plan acted on — which is what the tracestat drift
// detector watches.
func (e *Engine) feedSurrogate(skipping bool) *SurrStats {
	st := &SurrStats{Active: skipping}
	errSum, lbSum, errN := 0.0, 0.0, 0
	for s := 0; s < e.cache.Len(); s++ {
		if skipping && e.slotSkip[s] {
			st.Skips++
			continue
		}
		st.Exact++
		i := e.missing[s]
		if e.preyErr[i] != nil {
			continue // quarantined: no ground truth this generation
		}
		p := e.cache.At(s)
		if p == nil {
			continue
		}
		rev := e.preyFit[i]
		lb := p.Rx.LB
		revErr, lbErr := e.surr.Observe(e.prey[i], lb, rev)
		den := math.Abs(rev)
		if den < 1 {
			den = 1
		}
		errSum += revErr / den
		den = math.Abs(lb)
		if den < 1 {
			den = 1
		}
		lbSum += lbErr / den
		errN++
	}
	if errN > 0 {
		st.Err = errSum / float64(errN)
		st.ErrLB = lbSum / float64(errN)
	}
	if e.met != nil {
		e.met.surrSkips.Add(int64(st.Skips))
		e.met.surrExact.Add(int64(st.Exact))
	}
	return st
}

// phase runs fn under pprof labels naming the wave ("relax",
// "pred_eval", "prey_eval", "breed") and the island, so CPU and
// goroutine profiles attribute samples to engine phases — worker
// goroutines spawned inside fn inherit the labels. Unobserved engines
// skip the label plumbing entirely, keeping the hot path label-free.
func (e *Engine) phase(observing bool, name string, fn func()) {
	if !observing {
		fn()
		return
	}
	pprof.Do(context.Background(),
		pprof.Labels("phase", name, "island", strconv.Itoa(e.island)),
		func(context.Context) { fn() })
}

// genStats snapshots the generation that just finished. The fitness
// arrays still describe the pre-breeding populations at this point
// (breeding builds fresh slices and never writes the fitness arrays).
func (e *Engine) genStats(evalNanos, breedNanos int64, search *SearchStats, surr *SurrStats) GenStats {
	gs := GenStats{
		Label:      e.cfg.RunLabel,
		Island:     e.island,
		Search:     search,
		Surr:       surr,
		Gen:        e.res.Gens,
		Faults:     e.Faults(),
		ULEvals:    e.ulUsed,
		LLEvals:    e.llUsed,
		ULBudget:   e.cfg.ULEvalBudget,
		LLBudget:   e.cfg.LLEvalBudget,
		ULArchive:  e.ulArch.Len(),
		GPArchive:  e.gpArch.Len(),
		EvalNanos:  evalNanos,
		BreedNanos: breedNanos,
	}
	if be, ok := e.ulArch.Best(); ok {
		gs.BestRevenue = be.Fitness
	}
	if be, ok := e.gpArch.Best(); ok {
		gs.BestGap = be.Fitness
	}
	sum, sq := 0.0, 0.0
	gs.PreyBest = e.preyFit[0]
	for _, f := range e.preyFit {
		sum += f
		sq += f * f
		if f > gs.PreyBest {
			gs.PreyBest = f
		}
	}
	n := float64(len(e.preyFit))
	gs.PreyMean = sum / n
	if v := sq/n - gs.PreyMean*gs.PreyMean; v > 0 {
		gs.PreyStd = math.Sqrt(v)
	}
	sum = 0.0
	gs.PredBest = e.predFit[0]
	for _, f := range e.predFit {
		sum += f
		if f < gs.PredBest {
			gs.PredBest = f
		}
	}
	gs.PredMean = sum / float64(len(e.predFit))
	return gs
}

// BestPrey returns a copy of the best archived pricing and its revenue.
func (e *Engine) BestPrey() ([]float64, float64, bool) {
	be, ok := e.ulArch.Best()
	if !ok {
		return nil, 0, false
	}
	return append([]float64(nil), be.Item...), be.Fitness, true
}

// BestPredator returns a copy of the best archived heuristic and its
// fitness.
func (e *Engine) BestPredator() (gp.Tree, float64, bool) {
	be, ok := e.gpArch.Best()
	if !ok {
		return gp.Tree{}, 0, false
	}
	return be.Item.Clone(), be.Fitness, true
}

// InjectPrey replaces a random non-elite slot of the prey population
// with a copy of x (island-model migration). The archive is untouched —
// the migrant must earn its place at the next evaluation.
func (e *Engine) InjectPrey(x []float64) error {
	if len(x) != e.mk.Leaders() {
		return errors.New("core: migrant prey has wrong dimension")
	}
	slot := e.cfg.Elites
	if len(e.prey) > e.cfg.Elites+1 {
		slot = e.cfg.Elites + e.r.Intn(len(e.prey)-e.cfg.Elites)
	}
	e.prey[slot] = append([]float64(nil), x...)
	if e.led != nil {
		e.led.replace(e.led.preyIDs, slot, opMigrant, e.res.Gens)
		if slot < len(e.preyOrigins) {
			e.preyOrigins[slot] = origin{op: opMigrant, p1: -1, p2: -1}
		}
	}
	return nil
}

// InjectPredator replaces a random non-elite slot of the predator
// population with a copy of t.
func (e *Engine) InjectPredator(t gp.Tree) error {
	if err := t.Check(e.set); err != nil {
		return err
	}
	slot := e.cfg.Elites
	if len(e.predators) > e.cfg.Elites+1 {
		slot = e.cfg.Elites + e.r.Intn(len(e.predators)-e.cfg.Elites)
	}
	e.predators[slot] = t.Clone()
	if e.led != nil {
		e.led.replace(e.led.predIDs, slot, opMigrant, e.res.Gens)
		if slot < len(e.predOrigins) {
			e.predOrigins[slot] = origin{op: opMigrant, p1: -1, p2: -1}
		}
	}
	return nil
}

// Result finalizes and returns the run summary. The engine may continue
// stepping afterwards; each call snapshots the current state. Every
// slice in the result is a defensive copy — mutating a returned Result
// can never corrupt the live archives (see TestResultDoesNotAliasArchive).
func (e *Engine) Result() (*Result, error) {
	res := &Result{
		Gens:     e.res.Gens,
		Faults:   e.Faults(),
		ULEvals:  e.ulUsed,
		LLEvals:  e.llUsed,
		Label:    e.cfg.RunLabel,
		Island:   e.island,
		Ancestry: e.led.championAncestry(),
		ULCurve: stats.Series{
			X: append([]float64(nil), e.res.ULCurve.X...),
			Y: append([]float64(nil), e.res.ULCurve.Y...),
		},
		GapCurve: stats.Series{
			X: append([]float64(nil), e.res.GapCurve.X...),
			Y: append([]float64(nil), e.res.GapCurve.Y...),
		},
	}
	res.ULArchive = e.ulArch.Entries()
	for i := range res.ULArchive {
		res.ULArchive[i].Item = append([]float64(nil), res.ULArchive[i].Item...)
	}
	res.GPArchive = e.gpArch.Entries()
	for i := range res.GPArchive {
		res.GPArchive[i].Item = res.GPArchive[i].Item.Clone()
	}
	if be, ok := e.ulArch.Best(); ok {
		res.Best.Price = append([]float64(nil), be.Item...)
		res.Best.Revenue = be.Fitness
	}
	if be, ok := e.gpArch.Best(); ok {
		res.Best.Tree = be.Item.Clone()
		res.Best.TreeStr = be.Item.String(e.set)
		res.Best.Simplified = gp.Simplify(e.set, be.Item).String(e.set)
		res.Best.GapPct = be.Fitness
		if e.cfg.CostFitness {
			// Under the ablation the archive fitness is a raw cost, so
			// re-measure the actual gap of the selected tree on a fresh
			// prey sample (reporting only — budgets are spent). The
			// sample comes from an RNG derived from the seed, NOT the
			// live stream: Result may be called mid-run, and consuming
			// e.r here would perturb every subsequent Step, breaking
			// the "engine may continue stepping afterwards" contract
			// (see TestResultMidRunDoesNotPerturbRun). Resetting the
			// warm basis first makes the measurement a pure function of
			// the current populations — repeated calls agree exactly —
			// and the leftover basis cannot leak into a later Step
			// because Step resets every evaluator at entry.
			e.evs[0].ResetWarm()
			r := rng.New(e.cfg.Seed).Split()
			sample := r.SampleDistinct(e.cfg.EffectiveSample(), len(e.prey))
			total := 0.0
			for _, s := range sample {
				p, err := e.evs[0].Prepare(e.prey[s])
				if err != nil {
					return nil, err
				}
				out, _, err := e.evs[0].EvalTreeWith(p, be.Item)
				if err != nil {
					return nil, err
				}
				total += out.GapPct
			}
			res.Best.GapPct = total / float64(len(sample))
		}
	}
	return res, nil
}

// Run executes CARBON on the market until either evaluation budget is
// exhausted. A mid-run evaluation failure (Engine.Err) is returned as
// an error instead of panicking, so long batch sweeps survive one bad
// configuration.
func Run(mk *bcpop.Market, cfg Config) (*Result, error) {
	return RunContext(context.Background(), mk, cfg)
}

// RunContext is Run with cooperative cancellation: the context is
// checked between generations, so cancellation (Ctrl-C, a job deadline,
// a server drain) stops the run at the next generation boundary with an
// error satisfying errors.Is(err, ctx.Err()). Cancellation does not
// perturb determinism — a run that is not canceled is bit-identical to
// one launched without a context.
func RunContext(ctx context.Context, mk *bcpop.Market, cfg Config) (*Result, error) {
	e, err := NewEngine(mk, cfg)
	if err != nil {
		return nil, err
	}
	for e.Step() {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: run canceled after generation %d: %w", e.Gens(), cerr)
		}
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	res, err := e.Result()
	if err != nil {
		return nil, err
	}
	if e.obs != nil {
		e.obs.OnDone(res)
	}
	return res, nil
}
