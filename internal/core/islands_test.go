package core

import (
	"errors"
	"regexp"
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/fault"
	"carbon/internal/orlib"
)

func islandConfig() (Config, IslandConfig) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.ULPopSize, cfg.LLPopSize = 10, 10
	cfg.ULArchiveSize, cfg.LLArchiveSize = 10, 10
	cfg.ULEvalBudget, cfg.LLEvalBudget = 800, 1600
	cfg.PreySample = 2
	ic := IslandConfig{Islands: 4, MigrateEvery: 3, Migrants: 1}
	return cfg, ic
}

func TestIslandConfigValidation(t *testing.T) {
	mutate := []func(*IslandConfig){
		func(c *IslandConfig) { c.Islands = 1 },
		func(c *IslandConfig) { c.MigrateEvery = 0 },
		func(c *IslandConfig) { c.Migrants = 0 },
	}
	for i, m := range mutate {
		ic := DefaultIslandConfig()
		m(&ic)
		if err := ic.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	def := DefaultIslandConfig()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIslands(t *testing.T) {
	mk := smallMarket(t)
	cfg, ic := islandConfig()
	res, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIsland) != 4 {
		t.Fatalf("%d island results", len(res.PerIsland))
	}
	totalUL, totalLL := 0, 0
	for i, r := range res.PerIsland {
		if r.Gens == 0 {
			t.Fatalf("island %d did no work", i)
		}
		totalUL += r.ULEvals
		totalLL += r.LLEvals
	}
	// The combined spend must respect the original budgets.
	if totalUL > cfg.ULEvalBudget || totalLL > cfg.LLEvalBudget {
		t.Fatalf("islands overspent: UL %d/%d, LL %d/%d",
			totalUL, cfg.ULEvalBudget, totalLL, cfg.LLEvalBudget)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	if res.Best.GapPct < 0 || len(res.Best.Price) != mk.Leaders() {
		t.Fatalf("bad merged best: %+v", res.Best)
	}
	if res.BestIsland < 0 || res.BestIsland >= 4 {
		t.Fatalf("BestIsland = %d", res.BestIsland)
	}
}

func TestRunIslandsDeterministic(t *testing.T) {
	mk := smallMarket(t)
	cfg, ic := islandConfig()
	a, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIslands(mk, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Revenue != b.Best.Revenue || a.Best.GapPct != b.Best.GapPct ||
		a.Migrations != b.Migrations {
		t.Fatal("island run not reproducible")
	}
}

func TestRunIslandsBudgetTooSmall(t *testing.T) {
	mk := smallMarket(t)
	cfg, ic := islandConfig()
	cfg.ULEvalBudget = 30 // 30/4 < population size
	if _, err := RunIslands(mk, cfg, ic); err == nil {
		t.Fatal("undersized budgets accepted")
	}
}

func TestEngineStepByStep(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(3)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for e.Step() {
		steps++
		if steps > 10000 {
			t.Fatal("runaway engine")
		}
	}
	if e.Step() {
		t.Fatal("Step after exhaustion should be a no-op returning false")
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens != steps || e.Gens() != steps {
		t.Fatalf("generation accounting: %d vs %d", res.Gens, steps)
	}
	// Engine-driven runs must equal Run with the same config.
	direct, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Best.Revenue != res.Best.Revenue || direct.Best.TreeStr != res.Best.TreeStr {
		t.Fatal("Engine loop and Run diverged")
	}
}

// TestMigrateWrapsInjectionError is the regression test for the
// bare-error migration path: when a migrant is rejected mid-wave, the
// error must carry the island context exactly like the step-failure
// path two loops above it did all along.
func TestMigrateWrapsInjectionError(t *testing.T) {
	mkA := smallMarket(t)
	// A market with a different leader count: prey migrating from an
	// island on mkB into one on mkA have the wrong dimension.
	mkB, err := bcpop.NewMarketFromClass(orlib.Class{N: 100, M: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mkA.Leaders() == mkB.Leaders() {
		t.Fatalf("markets share leader count %d; test needs a mismatch", mkA.Leaders())
	}
	eA, err := NewEngine(mkA, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	eB, err := NewEngine(mkB, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	eA.island, eB.island = 0, 1
	// One generation each so both archives hold a migratable best.
	if !eA.Step() || !eB.Step() {
		t.Fatal("engines refused to step")
	}
	migrations := 0
	obs := FuncObserver{Migration: func(MigrationStats) { migrations++ }}
	ic := IslandConfig{Islands: 2, MigrateEvery: 1, Migrants: 1}
	err = migrateShard([]int{0, 1}, []*Engine{eA, eB}, ic, NewLocalTransport(1), obs, "", 1)
	if err == nil {
		t.Fatal("cross-market migration succeeded")
	}
	// Receivers are processed in ascending order, so island 0 rejecting
	// island 1's wrong-dimension prey is the first (and aborting) edge.
	if !regexp.MustCompile(`island 0: migrant prey from island 1`).MatchString(err.Error()) {
		t.Fatalf("error %q lacks the island context", err)
	}
	// The wave aborts at the failing edge: no migration event may be
	// reported for an edge that did not complete.
	if migrations != 0 {
		t.Fatalf("%d migration events reported for an aborted wave", migrations)
	}
}

// TestRunIslandsFailsIslandMidWave: a terminal island failure surfaces
// through RunIslands with the island index wrapped, instead of the
// surviving islands evolving on as if nothing happened.
func TestRunIslandsFailsIslandMidWave(t *testing.T) {
	mk := smallMarket(t)
	cfg, ic := islandConfig()
	// The failure window opens mid-run and never closes, so whichever
	// island crosses it first fails its whole relaxation wave (Every: 1
	// with no Limit) while the others are mid-generation.
	injected := fault.New(9).Site(fault.SiteLPSolve, fault.Rule{Every: 1, After: 120})
	cfg.LPFault = injected.Strike
	_, err := RunIslands(mk, cfg, ic)
	if err == nil {
		t.Fatal("island run survived a permanent LP outage")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
	if !regexp.MustCompile(`core: island \d+:`).MatchString(err.Error()) {
		t.Fatalf("error %q lacks the island wrap", err)
	}
}

func TestInjectValidation(t *testing.T) {
	mk := smallMarket(t)
	e, err := NewEngine(mk, smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPrey([]float64{1}); err == nil {
		t.Fatal("wrong-dimension migrant accepted")
	}
	x, _, ok := func() ([]float64, float64, bool) {
		e.Step()
		return e.BestPrey()
	}()
	if !ok {
		t.Fatal("no best prey after a step")
	}
	if err := e.InjectPrey(x); err != nil {
		t.Fatal(err)
	}
	tr, _, ok := e.BestPredator()
	if !ok {
		t.Fatal("no best predator after a step")
	}
	if err := e.InjectPredator(tr); err != nil {
		t.Fatal(err)
	}
}
