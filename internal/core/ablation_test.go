package core

import (
	"strings"
	"testing"

	"carbon/internal/covering"
	"carbon/internal/gp"
)

// blindSet is Table I without the LP-derived terminals d and x̄ — the
// heuristic can only see raw instance data. Layout padding keeps the
// environment indices aligned with covering.TableITerms by reusing the
// raw terminals in the LP slots.
func blindSet(t testing.TB) *gp.Set {
	t.Helper()
	// Terminal index i reads environment slot i, and the Table I env
	// layout is [c, q, b, d, x̄] — so truncating the terminal list to the
	// first three names removes all access to the LP-derived slots.
	s := covering.TableISet()
	s.Terms = s.Terms[:3]
	return s
}

func TestGapFitnessBeatsCostFitness(t *testing.T) {
	// The paper's central design argument (§V discussion of Table III):
	// minimizing the raw LL objective across different induced instances
	// is incoherent; minimizing the gap is not. The ablation must show
	// the gap-driven predators reaching better real gaps.
	mk := smallMarket(t)
	base := smallConfig(17)
	base.ULEvalBudget, base.LLEvalBudget = 1200, 2400

	gapCfg := base
	costCfg := base
	costCfg.CostFitness = true

	gapRes, err := Run(mk, gapCfg)
	if err != nil {
		t.Fatal(err)
	}
	costRes, err := Run(mk, costCfg)
	if err != nil {
		t.Fatal(err)
	}
	if gapRes.Best.GapPct > costRes.Best.GapPct {
		t.Fatalf("gap fitness (%v%%) did not beat cost fitness (%v%%)",
			gapRes.Best.GapPct, costRes.Best.GapPct)
	}
}

func TestNoEliminationRuns(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(19)
	cfg.NoElimination = true
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.GapPct < 0 {
		t.Fatalf("gap %v", res.Best.GapPct)
	}
}

func TestCustomPrimitiveSet(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(23)
	set := covering.TableISet()
	set.Ops = append(set.Ops, gp.Min, gp.Max) // extension operators
	cfg.PrimitiveSet = set
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.TreeStr == "" {
		t.Fatal("no best tree")
	}
}

func TestBlindSetCannotSeeLPTerminals(t *testing.T) {
	// Plumbing check for the terminal ablation: runs complete, and the
	// evolved trees never mention the LP-derived terminals. The quality
	// comparison lives in the ablation benchmark.
	mk := smallMarket(t)
	cfg := smallConfig(29)
	cfg.PrimitiveSet = blindSet(t)
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"d", "xbar"} {
		for _, tok := range strings.Fields(strings.NewReplacer("(", " ", ")", " ").Replace(res.Best.TreeStr)) {
			if tok == bad {
				t.Fatalf("blind tree references %q: %s", bad, res.Best.TreeStr)
			}
		}
	}
}

func TestDEVariationRuns(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(31)
	cfg.ULVariation = "de"
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.GapPct < 0 || res.Gens == 0 {
		t.Fatalf("bad DE run: %+v", res.Best)
	}
}

func TestPointMutationRuns(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(33)
	cfg.LLPointMutProb = 0.2
	if _, err := Run(mk, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBadULVariationRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ULVariation = "pso"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown variation accepted")
	}
	cfg = DefaultConfig()
	cfg.LLPointMutProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad point-mutation probability accepted")
	}
}
