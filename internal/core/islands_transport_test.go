package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// flatIsland is a Result reduced to its comparable surface: everything
// DeepEqual can judge bit for bit (trees compare as their canonical
// encodings — gp.Tree itself holds pointers).
type flatIsland struct {
	Gens, ULEvals, LLEvals, Faults int
	Revenue, Gap                   float64
	Tree, Simplified               string
	Price                          []float64
	ULX, ULY, GapX, GapY           []float64
}

type flatRun struct {
	BestRevenue float64
	BestGap     float64
	BestTree    string
	BestPrice   []float64
	BestIsland  int
	Migrations  int
	PerIsland   []flatIsland
}

func flattenIsland(r *Result) flatIsland {
	return flatIsland{
		Gens: r.Gens, ULEvals: r.ULEvals, LLEvals: r.LLEvals, Faults: r.Faults,
		Revenue: r.Best.Revenue, Gap: r.Best.GapPct,
		Tree: r.Best.TreeStr, Simplified: r.Best.Simplified,
		Price: r.Best.Price,
		ULX:   r.ULCurve.X, ULY: r.ULCurve.Y, GapX: r.GapCurve.X, GapY: r.GapCurve.Y,
	}
}

func flattenRun(r *IslandResult) flatRun {
	f := flatRun{
		BestRevenue: r.Best.Revenue, BestGap: r.Best.GapPct,
		BestTree: r.Best.TreeStr, BestPrice: r.Best.Price,
		BestIsland: r.BestIsland, Migrations: r.Migrations,
	}
	for _, pr := range r.PerIsland {
		f.PerIsland = append(f.PerIsland, flattenIsland(pr))
	}
	return f
}

// TestTransportGolden: routing the in-process island model through the
// Transport seam — including a full JSON wire round-trip of every
// migrant batch — must reproduce RunIslands bit for bit, for both
// topologies. This is the contract the HTTP transport inherits: deliver
// batches intact and the distributed run cannot diverge.
func TestTransportGolden(t *testing.T) {
	mk := smallMarket(t)
	for _, topo := range []Topology{TopologyRing, TopologyBroadcast} {
		t.Run(string(topo), func(t *testing.T) {
			cfg, ic := islandConfig()
			ic.Topology = topo
			ref, err := RunIslands(mk, cfg, ic)
			if err != nil {
				t.Fatal(err)
			}
			wired, err := RunIslandsTransport(context.Background(), mk, cfg, ic,
				WireRoundTrip(NewLocalTransport(1)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(flattenRun(ref), flattenRun(wired)) {
				t.Fatalf("wire round-trip diverged from RunIslands:\n got  %+v\n want %+v",
					flattenRun(wired), flattenRun(ref))
			}
		})
	}
}

// TestShardedGolden splits one 4-island run across two concurrent
// shards rendezvousing over a shared LocalTransport — the whole
// distributed machinery (per-shard engines, liveness barrier, migration
// send/recv phases, shard merge) with the network factored out. The
// merged result must equal RunIslands exactly.
func TestShardedGolden(t *testing.T) {
	mk := smallMarket(t)
	for _, topo := range []Topology{TopologyRing, TopologyBroadcast} {
		t.Run(string(topo), func(t *testing.T) {
			cfg, ic := islandConfig()
			ic.Topology = topo
			ref, err := RunIslands(mk, cfg, ic)
			if err != nil {
				t.Fatal(err)
			}

			tr := NewLocalTransport(2)
			assign := [][]int{{0, 2}, {1, 3}}
			shards := make([]*ShardResult, 2)
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for s := range assign {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					shards[s], errs[s] = RunIslandsShard(
						context.Background(), mk, cfg, ic, assign[s], WireRoundTrip(tr))
				}(s)
			}
			wg.Wait()
			for s, err := range errs {
				if err != nil {
					t.Fatalf("shard %d: %v", s, err)
				}
			}
			merged := MergeShards(shards...)
			if !reflect.DeepEqual(flattenRun(ref), flattenRun(merged)) {
				t.Fatalf("sharded run diverged from RunIslands:\n got  %+v\n want %+v",
					flattenRun(merged), flattenRun(ref))
			}
		})
	}
}

// TestShardValidation pins the shard-list contract.
func TestShardValidation(t *testing.T) {
	mk := smallMarket(t)
	cfg, ic := islandConfig()
	bad := [][]int{nil, {}, {0, 0}, {1, 0}, {0, 9}, {-1}}
	for _, islands := range bad {
		if _, err := RunIslandsShard(context.Background(), mk, cfg, ic, islands, NewLocalTransport(1)); err == nil {
			t.Fatalf("shard list %v accepted", islands)
		}
	}
	if _, err := RunIslandsShard(context.Background(), mk, cfg, ic, []int{0, 1, 2, 3}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
	ic.Topology = "mesh"
	if err := ic.Validate(); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
