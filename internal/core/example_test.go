package core_test

import (
	"fmt"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
)

// A complete CARBON run at toy scale: Table II defaults with shrunk
// budgets on a 60-bundle market. Exact revenues depend on the evolved
// programs, so the example prints invariants rather than values.
func Example() {
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 0)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.ULPopSize, cfg.LLPopSize = 12, 12
	cfg.ULArchiveSize, cfg.LLArchiveSize = 12, 12
	cfg.ULEvalBudget, cfg.LLEvalBudget = 240, 480
	cfg.PreySample = 2

	res, err := core.Run(mk, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("budgets respected: %v\n", res.ULEvals <= 240 && res.LLEvals <= 480)
	fmt.Printf("evolved a heuristic: %v\n", res.Best.TreeStr != "")
	fmt.Printf("gap is a percentage: %v\n", res.Best.GapPct >= 0)
	// Output:
	// budgets respected: true
	// evolved a heuristic: true
	// gap is a percentage: true
}

// The steppable engine: run five generations by hand, checkpoint, and
// resume into a fresh engine.
func Example_engine() {
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 0)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.ULPopSize, cfg.LLPopSize = 12, 12
	cfg.ULArchiveSize, cfg.LLArchiveSize = 12, 12
	cfg.ULEvalBudget, cfg.LLEvalBudget = 600, 1200
	cfg.PreySample = 2

	e, err := core.NewEngine(mk, cfg)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5 && e.Step(); i++ {
	}
	st, err := e.Snapshot()
	if err != nil {
		panic(err)
	}
	resumed, err := core.Restore(mk, cfg, st)
	if err != nil {
		panic(err)
	}
	fmt.Printf("resumed at generation %d\n", resumed.Gens())
	// Output:
	// resumed at generation 5
}
