package core

import (
	"reflect"
	"strings"
	"testing"

	"carbon/internal/telemetry"
)

// TestCompiledMatchesInterpreted is the determinism golden of the
// bytecode path: for every (Seed, Workers) pair, a full run on the
// compiled default must be bit-identical to the same run forced onto
// the tree-walking interpreter (cfg.Interpret). This is what licenses
// shipping the compiled path as the default while keeping the
// interpreter as the golden reference.
func TestCompiledMatchesInterpreted(t *testing.T) {
	mk := smallMarket(t)
	for _, seed := range []uint64{3, 17} {
		for _, workers := range []int{1, 3} {
			cfg := smallConfig(seed)
			cfg.Workers = workers

			compiled, err := Run(mk, cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d compiled: %v", seed, workers, err)
			}
			cfg.Interpret = true
			interpreted, err := Run(mk, cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d interpreted: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(resultKey(compiled), resultKey(interpreted)) {
				t.Fatalf("seed %d workers %d: compiled and interpreted runs diverge:\n%+v\nvs\n%+v",
					seed, workers, resultKey(compiled), resultKey(interpreted))
			}
		}
	}
}

// TestCacheMetricsConservationPerGeneration pins the cache accounting
// invariants generation by generation, on both evaluation paths:
// every LP solve is a cache miss and vice versa (the Prepare wave is
// the only solver entry point), and every tree evaluation is a cache
// hit (the L×S predator pairings plus the U prey evaluations all run
// against Prepared contexts). A Prepare/Relax double-count regression
// breaks a delta immediately instead of hiding in whole-run totals.
func TestCacheMetricsConservationPerGeneration(t *testing.T) {
	for _, interpret := range []bool{false, true} {
		name := "compiled"
		if interpret {
			name = "interpreted"
		}
		t.Run(name, func(t *testing.T) {
			mk := smallMarket(t)
			cfg := smallConfig(29)
			cfg.Workers = 2
			cfg.Interpret = interpret
			reg := telemetry.NewRegistry()
			cfg.Metrics = reg
			e, err := NewEngine(mk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			read := func(name string) int64 { return reg.Counter(name).Load() }
			perGen := int64(cfg.LLPopSize*cfg.EffectiveSample() + cfg.ULPopSize)
			var prevSolves, prevMisses, prevHits, prevEvals int64
			for gen := 1; gen <= 5; gen++ {
				if !e.Step() {
					t.Fatal(e.Err())
				}
				solves, misses := read("bcpop.lp_solves"), read("bcpop.cache_misses")
				hits, evals := read("bcpop.cache_hits"), read("bcpop.tree_evals")
				if dS, dM := solves-prevSolves, misses-prevMisses; dS != dM {
					t.Fatalf("gen %d: Δlp_solves %d != Δcache_misses %d", gen, dS, dM)
				}
				if dH, dE := hits-prevHits, evals-prevEvals; dH != dE {
					t.Fatalf("gen %d: Δcache_hits %d != Δtree_evals %d", gen, dH, dE)
				}
				if dE := evals - prevEvals; dE != perGen {
					t.Fatalf("gen %d: Δtree_evals %d, want L·S+U = %d", gen, dE, perGen)
				}
				if dS := solves - prevSolves; dS < 1 || dS > int64(cfg.ULPopSize) {
					t.Fatalf("gen %d: Δlp_solves %d outside [1, ULPopSize=%d]", gen, dS, cfg.ULPopSize)
				}
				prevSolves, prevMisses, prevHits, prevEvals = solves, misses, hits, evals
			}
		})
	}
}

// TestRestoreRejectsHostileTrees covers the checkpoint decode path: a
// state carrying a hostile predator encoding — oversize (513 nodes) or
// referencing an unknown terminal — must make Restore return an error,
// never panic. serve's manager turns that error into checkpoint
// quarantine + fresh start (TestHostileCheckpointQuarantined).
func TestRestoreRejectsHostileTrees(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(7)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal(e.Err())
	}
	// 256 "+" ops over 257 "c" leaves: 513 nodes, one past gp.MaxNodes.
	oversize := strings.Repeat("(+ ", 256) + "c" + strings.Repeat(" c)", 256)
	hostile := map[string]string{
		"oversize tree":    oversize,
		"unknown terminal": "(+ c zz)",
		"unknown operator": "(exp c c)",
		"truncated":        "(+ c",
	}
	for name, src := range hostile {
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st.Predators[0] = src
		if _, err := Restore(mk, cfg, st); err == nil {
			t.Errorf("%s: Restore accepted a hostile predator encoding", name)
		}
	}
	// The same hostile encodings in the GP archive must be rejected too.
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.GPArchT) == 0 {
		t.Fatal("snapshot has no archived trees")
	}
	st.GPArchT[0] = oversize
	if _, err := Restore(mk, cfg, st); err == nil {
		t.Error("Restore accepted an oversize archived tree")
	}
}
