package core

import (
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/stats"
	"carbon/internal/telemetry"
)

// SearchStats is the per-generation search-dynamics snapshot: how
// converged the prey are, how the predator trees are growing, how the
// paired %-gap matrix is distributed, which operators are earning their
// keep, and how hard selection is pulling. Everything here is computed
// from values the generation already produced — no extra LP solves, no
// RNG draws — and only when an observer is attached, so the
// uninstrumented hot path and the determinism contract are untouched.
// All fields are deterministic per (Seed, Workers).
type SearchStats struct {
	// Prey genotype diversity: normalized mean pairwise distance and
	// mean per-gene price entropy (both in [0,1]; see ga.MeanPairwiseDistance
	// and ga.Entropy).
	PreyDiversity float64 `json:"prey_diversity"`
	PreyEntropy   float64 `json:"prey_entropy"`

	// Predator tree shape and bloat: population size/depth distribution
	// and the relative growth of mean size vs the previous generation.
	PredSizeMean  float64 `json:"pred_size_mean"`
	PredSizeMax   int     `json:"pred_size_max"`
	PredDepthMean float64 `json:"pred_depth_mean"`
	PredDepthMax  int     `json:"pred_depth_max"`
	BloatRate     float64 `json:"bloat_rate"`

	// %-gap distribution over the full paired-evaluation matrix
	// (every predator × every sampled prey), via a deterministic
	// streaming quantile sketch. Min/Max are exact.
	GapP10 float64 `json:"gap_p10"`
	GapP50 float64 `json:"gap_p50"`
	GapP90 float64 `json:"gap_p90"`
	GapMin float64 `json:"gap_min"`
	GapMax float64 `json:"gap_max"`

	// Selection pressure: Spearman rank correlation between parent
	// fitness and offspring fitness within this generation (0 when no
	// parented offspring exist yet).
	PreySelCorr float64 `json:"prey_sel_corr"`
	PredSelCorr float64 `json:"pred_sel_corr"`

	// Archive churn: how many offers actually changed each archive this
	// generation.
	ULArchiveAdds int `json:"ul_archive_adds"`
	GPArchiveAdds int `json:"gp_archive_adds"`

	// Per-operator success: of the offspring each variation operator
	// produced, how many strictly beat their best parent. Sorted by
	// operator name; empty on the first observed generation.
	Ops []OperatorStats `json:"ops,omitempty"`
}

// OperatorStats tallies one variation operator's offspring for one
// generation.
type OperatorStats struct {
	Op       string `json:"op"`
	Count    int    `json:"count"`
	Improved int    `json:"improved"`
}

// initLineage lazily turns on introspection the first time Step runs
// with an observer attached. A population that has already evolved (or
// was restored from a checkpoint) gets unparented "restore" records —
// its earlier ancestry was never tracked.
func (e *Engine) initLineage() {
	op := opInit
	if e.res.Gens > 0 {
		op = opRestore
	}
	e.led = newLineage()
	e.led.preyIDs = e.led.assign(len(e.prey), op, e.res.Gens)
	e.led.predIDs = e.led.assign(len(e.predators), op, e.res.Gens)
	e.gapSketch = telemetry.NewQuantileSketch(telemetry.DefaultSketchSize)
}

// computeSearchStats builds the generation's SearchStats from the
// evaluation results already in hand. gapMat is the paired-evaluation
// %-gap matrix in pairing-index order (fed to the sketch sequentially,
// so the quantiles are deterministic). Called on the coordinating
// goroutine between evaluation and breeding.
func (e *Engine) computeSearchStats(gapMat []float64, ulAdds, gpAdds int) *SearchStats {
	st := &SearchStats{ULArchiveAdds: ulAdds, GPArchiveAdds: gpAdds}

	st.PreyDiversity = ga.MeanPairwiseDistance(e.prey, e.bounds)
	st.PreyEntropy = ga.Entropy(e.prey, e.bounds)

	sh := gp.PopulationShape(e.set, e.predators)
	st.PredSizeMean, st.PredSizeMax = sh.SizeMean, sh.SizeMax
	st.PredDepthMean, st.PredDepthMax = sh.DepthMean, sh.DepthMax
	if e.prevSizeMean > 0 {
		st.BloatRate = (sh.SizeMean - e.prevSizeMean) / e.prevSizeMean
	}
	e.prevSizeMean = sh.SizeMean

	s := e.gapSketch
	s.Reset()
	for _, g := range gapMat {
		s.Add(g)
	}
	if s.Count() > 0 {
		st.GapP10 = s.Quantile(0.10)
		st.GapP50 = s.Quantile(0.50)
		st.GapP90 = s.Quantile(0.90)
		st.GapMin, st.GapMax = s.Min(), s.Max()
	}

	// Provenance: evaluated fitness onto the ledger, champion check.
	e.led.setFitness(e.led.preyIDs, e.preyFit)
	e.led.setFitness(e.led.predIDs, e.predFit)
	e.led.noteChampion(e.predFit, e.predators, e.set)

	// Operator success and selection pressure need the parents'
	// fitness, known only from the second observed generation on.
	var tally [len(opNames)]OperatorStats
	px, py := opSuccess(&tally, e.preyOrigins, e.prevPreyFit, e.preyFit, false)
	qx, qy := opSuccess(&tally, e.predOrigins, e.prevPredFit, e.predFit, true)
	st.PreySelCorr = stats.Spearman(px, py)
	st.PredSelCorr = stats.Spearman(qx, qy)
	for code := range tally {
		if tally[code].Count > 0 {
			tally[code].Op = opNames[code]
			st.Ops = append(st.Ops, tally[code])
		}
	}
	return st
}

// opSuccess walks one population's origins, tallying per-operator
// improvement against the best parent and collecting (parent fitness,
// child fitness) pairs for the selection-pressure correlation. minimize
// selects the fitness direction (predators minimize gap, prey maximize
// revenue).
func opSuccess(tally *[len(opNames)]OperatorStats, origins []origin, prevFit, fit []float64, minimize bool) (parents, children []float64) {
	for i, o := range origins {
		if o.p1 < 0 || o.p1 >= len(prevFit) || i >= len(fit) {
			continue
		}
		pf := prevFit[o.p1]
		if o.p2 >= 0 && o.p2 < len(prevFit) {
			if minimize && prevFit[o.p2] < pf {
				pf = prevFit[o.p2]
			} else if !minimize && prevFit[o.p2] > pf {
				pf = prevFit[o.p2]
			}
		}
		parents = append(parents, pf)
		children = append(children, fit[i])
		if !breedingOp(o.op) {
			continue
		}
		tally[o.op].Count++
		if (minimize && fit[i] < pf) || (!minimize && fit[i] > pf) {
			tally[o.op].Improved++
		}
	}
	return parents, children
}
