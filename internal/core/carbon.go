// Package core implements CARBON, the paper's hybrid competitive
// co-evolutionary algorithm for bi-level optimization (§IV, Fig 3).
//
// Two populations evolve against each other:
//
//   - the *prey*: upper-level pricing decisions (continuous vectors),
//     evolved with the GA operators of Table II (binary tournament, SBX,
//     polynomial mutation);
//   - the *predators*: greedy lower-level heuristics encoded as GP
//     syntax trees over the Table I primitive set, evolved with GP
//     operators (tournament, one-point subtree crossover, uniform
//     mutation, reproduction).
//
// The competitive coupling: each generation the predators are scored by
// their mean %-gap to LP optimality (Eq. 1) across a fresh sample of the
// *current prey population's* induced instances — predators chase
// whatever lower-level instances the prey currently create. Each prey is
// then scored by the leader revenue it obtains under the most accurate
// predator's forecast of the rational reaction. Because the gap is
// relative to each induced instance's own bound, predator quality is
// comparable across arbitrary upper-level decisions, which is what lets
// the two populations evolve independently — the paper's answer to the
// epistasis that breaks naive two-population co-evolution.
//
// Determinism: a run is reproducible bit-for-bit for a fixed
// (Config.Seed, Config.Workers) pair. Every generation's LP relaxations
// are solved once per distinct prey genotype (the shared-relaxation
// cache, DESIGN.md §5e) in a warm-chained wave whose striping across
// workers is deterministic; warm bases are discarded at every
// generation boundary, so no solver history crosses generations and a
// restored snapshot continues exactly. Changing Workers re-stripes the
// warm chains and may select alternative optimal LP bases — same
// bounds, different duals — so cross-worker-count bit-identity is not
// promised.
package core

import (
	"errors"
	"fmt"

	"carbon/internal/archive"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/span"
	"carbon/internal/stats"
	"carbon/internal/surrogate"
	"carbon/internal/telemetry"
)

// Config carries the Table II parameters for CARBON plus the
// implementation knobs the paper leaves open (documented in DESIGN.md).
type Config struct {
	Seed uint64

	// Upper level (prey): Table II left column.
	ULPopSize       int     // population size (100)
	ULArchiveSize   int     // archive size (100)
	ULEvalBudget    int     // UL fitness evaluations (50000)
	ULCrossoverProb float64 // SBX probability (0.85)
	ULMutationProb  float64 // polynomial mutation, per gene (0.01)
	ULSBXEta        float64 // SBX distribution index
	ULPolyEta       float64 // polynomial-mutation distribution index

	// Lower level (predators).
	LLPopSize       int     // population size (100)
	LLArchiveSize   int     // archive size (100)
	LLEvalBudget    int     // LL fitness evaluations (50000)
	LLCrossoverProb float64 // GP one-point crossover (0.85)
	LLMutationProb  float64 // GP uniform mutation (0.10)
	LLReproProb     float64 // GP reproduction (0.05)
	LLTournamentK   int     // GP tournament size ("Tournament": k=3)

	// GP shape control.
	InitDepthMin int // ramped half-and-half minimum depth
	InitDepthMax int // ramped half-and-half maximum depth
	MutGrowDepth int // grow depth of uniform-mutation subtrees
	Limits       gp.Limits

	// PreySample is how many prey decisions each predator is scored
	// against per generation (fresh sample each generation).
	PreySample int

	// Elites is the number of best individuals copied unchanged into
	// the next generation of each population.
	Elites int

	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int

	// --- Ablation hooks (DESIGN.md §7). Defaults reproduce the paper. ---

	// CostFitness switches predator fitness from the %-gap (Eq. 1) to
	// the raw follower cost — the COBRA-style objective the paper argues
	// is incomparable across induced instances. Exists to measure that
	// argument.
	CostFitness bool

	// PrimitiveSet overrides the GP primitive set (nil = the paper's
	// Table I). The terminal layout must match covering.TableITerms.
	// Used by the terminal-ablation benchmark (e.g. dropping the LP
	// terminals d and x̄).
	PrimitiveSet *gp.Set

	// NoElimination disables the greedy's redundancy-removal pass.
	NoElimination bool

	// Interpret evaluates predators with the tree-walking interpreter
	// (gp.Tree.Eval) instead of the compiled bytecode path. The two are
	// bit-identical (TestCompiledMatchesInterpreted), so this is a
	// golden-reference/debugging switch, not a semantic one — it is
	// deliberately excluded from the checkpoint fingerprint and a
	// checkpoint taken under either mode restores under the other.
	Interpret bool

	// ULVariation selects the upper-level variation suite: "" or "sbx"
	// for Table II's SBX + polynomial mutation, "de" for DE/best/1/bin
	// trials (DE-based bi-level solvers appear in the paper's related
	// work; the ablation benchmark compares the suites).
	ULVariation string
	// DEF and DECR are the differential weight and crossover rate used
	// when ULVariation is "de" (defaults 0.5 and 0.9).
	DEF, DECR float64

	// LLPointMutProb additionally applies a shape-preserving point
	// mutation to each bred predator with this probability (0 = off,
	// the paper's configuration).
	LLPointMutProb float64

	// Surrogate configures surrogate-assisted LP skipping (DESIGN.md
	// §5l): an online model of LB(x) and prey revenue fit from the
	// solved-LP history surrogate-scores every prey, and only the
	// sampled + predicted-top-k + high-uncertainty genotypes get exact
	// LP solves. Disabled (the zero value) keeps the paper-faithful
	// exact path bit-identical to the pre-surrogate engine — this is
	// the `-exact` golden reference. Like Interpret, every Surrogate
	// knob is deliberately excluded from the checkpoint fingerprint: a
	// checkpoint taken under either mode restores under the other (the
	// model state travels in the checkpoint and is ignored or rebuilt
	// as needed).
	Surrogate surrogate.Config

	// --- Telemetry (all optional; zero-cost and determinism-neutral
	// when unset — same seed, same result, with or without them). ---

	// Observer receives per-generation snapshots, migration events and
	// the final result (nil = off). With islands it is called from
	// several goroutines and must be safe for concurrent use.
	Observer Observer

	// Metrics, when non-nil, registers hot-path counters, timers and
	// histograms (evaluator costs, worker occupancy, breeding time)
	// into the registry. Shared registries aggregate across engines.
	Metrics *telemetry.Registry

	// RunLabel tags this run's trace events (GenStats.Label) so
	// interleaved multi-run traces can be demultiplexed.
	RunLabel string

	// Spans, when non-nil, emits latency-attribution spans: one "gen"
	// span per Step with "relax"/"pred_eval"/"prey_eval"/"breed"
	// children and sampled "lp.solve" grandchildren inside the
	// relaxation wave. Span identity comes from the tracer's private
	// stream, never the run RNG, so — like Observer and Metrics — a run
	// is bit-identical with spans on or off.
	Spans *span.Tracer

	// SpanParent parents every generation span into an existing trace
	// (a served job's attempt span, say). The zero context makes each
	// generation span the root of its own trace.
	SpanParent span.Context

	// SpanLPEvery samples every Nth relaxation solve of each generation
	// as an "lp.solve" child span (0 = the default of 8 when Spans is
	// set; negative disables the per-solve samples, keeping only waves).
	SpanLPEvery int

	// --- Fault injection (testing/chaos only; nil in production). ---

	// LPFault, when non-nil, is installed on every worker evaluator's
	// warm LP solver and consulted before each relaxation solve; a
	// non-nil return fails that solve. The engine quarantines the
	// affected prey for the generation instead of failing the run (see
	// Engine.Faults).
	LPFault func() error

	// EvalFault, like LPFault, but consulted at the start of every
	// cached paired evaluation — it models heuristic-side failures. A
	// strike quarantines the predator (or prey) being evaluated.
	EvalFault func() error
}

// DefaultConfig returns the paper's Table II parameter column for CARBON.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		ULPopSize:       100,
		ULArchiveSize:   100,
		ULEvalBudget:    50000,
		ULCrossoverProb: 0.85,
		ULMutationProb:  0.01,
		ULSBXEta:        15,
		ULPolyEta:       20,
		LLPopSize:       100,
		LLArchiveSize:   100,
		LLEvalBudget:    50000,
		LLCrossoverProb: 0.85,
		LLMutationProb:  0.10,
		LLReproProb:     0.05,
		LLTournamentK:   3,
		InitDepthMin:    1,
		InitDepthMax:    4,
		MutGrowDepth:    3,
		Limits:          gp.DefaultLimits(),
		PreySample:      4,
		Elites:          1,
	}
}

// EffectiveSample returns the number of prey decisions each predator is
// actually scored against per generation: PreySample clamped to the
// prey population size (a sample of distinct prey indices cannot exceed
// ULPopSize). CanStep, Step and Result all use this one clamp so the
// budget pre-check charges exactly what evaluation spends — charging
// the raw PreySample made runs with PreySample > ULPopSize stop early
// with lower-level budget to spare.
func (c *Config) EffectiveSample() int {
	if c.PreySample < c.ULPopSize {
		return c.PreySample
	}
	return c.ULPopSize
}

// Validate rejects unusable configurations. The elite bound
// (0 ≤ Elites < min(ULPopSize, LLPopSize)) is load-bearing beyond
// breeding: InjectPrey/InjectPredator place island migrants at
// population slot Elites, so an accepted configuration can never index
// past either population during migration.
func (c *Config) Validate() error {
	switch {
	case c.ULPopSize < 2 || c.LLPopSize < 2:
		return errors.New("core: population sizes must be at least 2")
	case c.ULArchiveSize < 1 || c.LLArchiveSize < 1:
		return errors.New("core: archive sizes must be positive")
	case c.ULEvalBudget < c.ULPopSize || c.LLEvalBudget < c.LLPopSize:
		return errors.New("core: budgets must cover at least one generation")
	case c.LLCrossoverProb+c.LLMutationProb+c.LLReproProb > 1+1e-9:
		return errors.New("core: GP operator probabilities exceed 1")
	case c.PreySample < 1:
		return errors.New("core: PreySample must be at least 1")
	case c.Elites < 0 || c.Elites >= c.ULPopSize || c.Elites >= c.LLPopSize:
		return errors.New("core: bad elite count")
	case c.InitDepthMin < 0 || c.InitDepthMax < c.InitDepthMin:
		return errors.New("core: bad ramped depth range")
	case c.ULVariation != "" && c.ULVariation != "sbx" && c.ULVariation != "de":
		return fmt.Errorf("core: unknown ULVariation %q", c.ULVariation)
	case c.LLPointMutProb < 0 || c.LLPointMutProb > 1:
		return errors.New("core: LLPointMutProb outside [0,1]")
	}
	return c.Surrogate.Validate()
}

// BestPair is the reported solution: the best archived pricing and the
// best archived heuristic.
type BestPair struct {
	Price      []float64
	Revenue    float64 // F under the best forecast at archive time
	Tree       gp.Tree
	TreeStr    string  // raw evolved form
	Simplified string  // algebraically simplified form (gp.Simplify)
	GapPct     float64 // mean %-gap of the best heuristic
}

// Result summarizes one CARBON run.
type Result struct {
	Best      BestPair
	ULEvals   int
	LLEvals   int
	Gens      int
	Faults    int          // evaluations quarantined over the run (0 unless faults were injected or the LP misbehaved)
	Label     string       // Config.RunLabel, tags multi-run outputs
	Island    int          // island index; 0 for single-engine runs
	ULCurve   stats.Series // x: total evals consumed, y: best archived F
	GapCurve  stats.Series // x: total evals consumed, y: best archived mean gap
	ULArchive []archive.Entry[[]float64]
	GPArchive []archive.Entry[gp.Tree]

	// Ancestry is the champion predator's provenance DAG (BFS order,
	// champion first), populated only when the run had an observer
	// attached — lineage tracking rides the same switch as the rest of
	// the introspection layer.
	Ancestry []LineageRecord
}

// evalStriped splits [0,n) into one contiguous stripe per worker so each
// stripe can own per-worker scratch (warm LP solvers). Results land by
// index, so the outcome is deterministic regardless of scheduling. wm
// (nil = off) records per-stripe busy time and wave wall time.
func evalStriped(n, workers int, wm *par.WaveMetrics, fn func(i, worker int)) {
	if workers > n {
		workers = n
	}
	par.ForEachTimed(workers, workers, wm, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		for i := lo; i < hi; i++ {
			fn(i, w)
		}
	})
}

// breedPrey builds the next prey generation: elitism, then either
// Table II's binary-tournament + SBX + polynomial mutation suite or
// DE/best/1/bin trials (cfg.ULVariation). The second return value is
// each offspring's provenance (operator + parent indices into pop);
// recording it draws nothing from r, so the RNG sequence — and
// therefore every bred genotype — is identical to the untracked code.
func breedPrey(r *rng.Rand, pop [][]float64, fit []float64, bounds ga.Bounds, cfg Config) ([][]float64, []origin) {
	better := func(i, j int) bool { return fit[i] > fit[j] }
	next := make([][]float64, 0, len(pop))
	origins := make([]origin, 0, len(pop))
	for _, e := range topK(fit, cfg.Elites, better) {
		next = append(next, append([]float64(nil), pop[e]...))
		origins = append(origins, origin{op: opElite, p1: e, p2: -1})
	}
	if cfg.ULVariation == "de" {
		f, cr := cfg.DEF, cfg.DECR
		if f == 0 {
			f = 0.5
		}
		if cr == 0 {
			cr = 0.9
		}
		bestIdx := topK(fit, 1, better)[0]
		for target := 0; len(next) < len(pop); target++ {
			next = append(next, ga.DEBest1Bin(r, pop, bestIdx, target%len(pop), f, cr, bounds))
			origins = append(origins, origin{op: opDE, p1: target % len(pop), p2: bestIdx})
		}
		return next, origins
	}
	for len(next) < len(pop) {
		i1 := ga.BinaryTournament(r, len(pop), better)
		i2 := ga.BinaryTournament(r, len(pop), better)
		p1, p2 := pop[i1], pop[i2]
		var c1, c2 []float64
		o1 := origin{op: opULMut, p1: i1, p2: -1}
		o2 := origin{op: opULMut, p1: i2, p2: -1}
		if r.Bool(cfg.ULCrossoverProb) {
			c1, c2 = ga.SBX(r, p1, p2, bounds, cfg.ULSBXEta)
			o1 = origin{op: opSBX, p1: i1, p2: i2}
			o2 = o1
		} else {
			c1 = append([]float64(nil), p1...)
			c2 = append([]float64(nil), p2...)
		}
		ga.PolynomialMutateInPlace(r, c1, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		ga.PolynomialMutateInPlace(r, c2, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		next = append(next, c1)
		origins = append(origins, o1)
		if len(next) < len(pop) {
			next = append(next, c2)
			origins = append(origins, o2)
		}
	}
	return next, origins
}

// breedPredators builds the next predator generation with DEAP's varOr
// semantics over Table II's GP probabilities: each offspring is produced
// by crossover (0.85), uniform mutation (0.10) or reproduction (0.05).
// Like breedPrey it also returns per-offspring provenance, recorded
// without touching r.
func breedPredators(r *rng.Rand, set *gp.Set, pop []gp.Tree, fit []float64, cfg Config) ([]gp.Tree, []origin) {
	better := func(i, j int) bool { return fit[i] < fit[j] }
	next := make([]gp.Tree, 0, len(pop))
	origins := make([]origin, 0, len(pop))
	for _, e := range topK(fit, cfg.Elites, better) {
		next = append(next, pop[e].Clone())
		origins = append(origins, origin{op: opElite, p1: e, p2: -1})
	}
	for len(next) < len(pop) {
		u := r.Float64()
		switch {
		case u < cfg.LLCrossoverProb:
			i1 := ga.Tournament(r, len(pop), cfg.LLTournamentK, better)
			i2 := ga.Tournament(r, len(pop), cfg.LLTournamentK, better)
			c1, c2 := gp.OnePointCrossover(r, set, pop[i1], pop[i2], cfg.Limits)
			next = append(next, c1)
			origins = append(origins, origin{op: opGPCross, p1: i1, p2: i2})
			if len(next) < len(pop) {
				next = append(next, c2)
				origins = append(origins, origin{op: opGPCross, p1: i1, p2: i2})
			}
		case u < cfg.LLCrossoverProb+cfg.LLMutationProb:
			i1 := ga.Tournament(r, len(pop), cfg.LLTournamentK, better)
			next = append(next, gp.UniformMutate(r, set, pop[i1], cfg.MutGrowDepth, cfg.Limits))
			origins = append(origins, origin{op: opGPMut, p1: i1, p2: -1})
		default:
			i1 := ga.Tournament(r, len(pop), cfg.LLTournamentK, better)
			next = append(next, pop[i1].Clone())
			origins = append(origins, origin{op: opGPRepro, p1: i1, p2: -1})
		}
	}
	if cfg.LLPointMutProb > 0 {
		for i := cfg.Elites; i < len(next); i++ {
			if r.Bool(cfg.LLPointMutProb) {
				next[i] = gp.PointMutate(r, set, next[i])
				origins[i].op = opGPPoint
			}
		}
	}
	return next, origins
}

// topK returns the indices of the k best individuals under better.
func topK(fit []float64, k int, better func(i, j int) bool) []int {
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is tiny (elitism).
	for sel := 0; sel < k && sel < len(idx); sel++ {
		best := sel
		for i := sel + 1; i < len(idx); i++ {
			if better(idx[i], idx[best]) {
				best = i
			}
		}
		idx[sel], idx[best] = idx[best], idx[sel]
	}
	return idx[:min(k, len(idx))]
}

func priceKey(p []float64) string {
	// Cheap stable key for archive dedup of price vectors.
	b := make([]byte, 0, len(p)*8)
	for _, v := range p {
		u := uint64(v * 1e6)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(u>>s))
		}
	}
	return string(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
