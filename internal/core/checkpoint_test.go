package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"carbon/internal/checkpoint"
	"carbon/internal/rng"
)

func TestRngStateRoundTrip(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	a := make([]uint64, 20)
	for i := range a {
		a[i] = r.Uint64()
	}
	r2 := rng.New(1)
	if err := r2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got := r2.Uint64(); got != a[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
	if err := r2.Restore([4]uint64{}); err == nil {
		t.Fatal("zero state accepted")
	}
}

// TestSnapshotRestoreGolden is the determinism-under-interruption
// contract: for a fixed seed, {run to generation k, snapshot through the
// full serialized format, restore, run to completion} must yield a
// Result identical to the uninterrupted run — same best pairing, same
// fitnesses, same convergence curves, same budget accounting.
func TestSnapshotRestoreGolden(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(77)
	cfg.Workers = 1

	// Uninterrupted reference.
	ref, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted at every quarter of the run: snapshot through the
	// on-disk envelope, restore, finish, compare.
	for _, k := range []int{1, ref.Gens / 4, ref.Gens / 2, 3 * ref.Gens / 4} {
		if k < 1 {
			continue
		}
		e, err := NewEngine(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e.Gens() < k && e.Step() {
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := checkpoint.Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Restore(mk, cfg, loaded)
		if err != nil {
			t.Fatal(err)
		}
		if e2.Gens() != k {
			t.Fatalf("k=%d: restored at generation %d", k, e2.Gens())
		}
		for e2.Step() {
		}
		res, err := e2.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Gens != ref.Gens || res.ULEvals != ref.ULEvals || res.LLEvals != ref.LLEvals {
			t.Fatalf("k=%d: accounting differs: gens %d/%d evals %d+%d vs %d+%d",
				k, res.Gens, ref.Gens, res.ULEvals, res.LLEvals, ref.ULEvals, ref.LLEvals)
		}
		if res.Best.Revenue != ref.Best.Revenue || res.Best.TreeStr != ref.Best.TreeStr ||
			res.Best.GapPct != ref.Best.GapPct {
			t.Fatalf("k=%d: best pairing diverged: (%v, %q, %v) vs (%v, %q, %v)",
				k, res.Best.Revenue, res.Best.TreeStr, res.Best.GapPct,
				ref.Best.Revenue, ref.Best.TreeStr, ref.Best.GapPct)
		}
		if !reflect.DeepEqual(res.Best.Price, ref.Best.Price) {
			t.Fatalf("k=%d: best price diverged", k)
		}
		if !reflect.DeepEqual(res.ULCurve, ref.ULCurve) || !reflect.DeepEqual(res.GapCurve, ref.GapCurve) {
			t.Fatalf("k=%d: convergence curves diverged", k)
		}
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(5)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.ULPopSize = cfg.ULPopSize * 2
	other.ULEvalBudget = cfg.ULEvalBudget * 2
	if _, err := Restore(mk, other, st); err == nil {
		t.Fatal("mismatched config accepted")
	}
	if _, err := Restore(mk, cfg, nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(6)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	snap := func() *checkpoint.State {
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := snap()
	st.Predators[0] = "(+ broken"
	if _, err := Restore(mk, cfg, st); err == nil {
		t.Fatal("corrupt predator accepted")
	}

	st = snap()
	st.Prey[0] = []float64{1}
	if _, err := Restore(mk, cfg, st); err == nil {
		t.Fatal("corrupt prey accepted")
	}

	st = snap()
	st.ULArchF = st.ULArchF[:1]
	if len(st.ULArchP) > 1 {
		if _, err := Restore(mk, cfg, st); err == nil {
			t.Fatal("ragged archive accepted")
		}
	}

	st = snap()
	st.GPArchT[0] = "(mod q"
	if _, err := Restore(mk, cfg, st); err == nil {
		t.Fatal("corrupt archive tree accepted")
	}
}

func TestSnapshotArchivePreserved(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(9)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && e.CanStep(); i++ {
		e.Step()
	}
	before, beforeRev, ok := e.BestPrey()
	if !ok {
		t.Fatal("no archive before snapshot")
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(mk, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	after, afterRev, ok := e2.BestPrey()
	if !ok {
		t.Fatal("archive lost")
	}
	if afterRev != beforeRev {
		t.Fatalf("best fitness changed: %v vs %v", afterRev, beforeRev)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("best item changed across snapshot")
		}
	}
}

// failEngine returns an engine whose next Step fails terminally: every
// prey vector is corrupted to the wrong dimension, so the whole
// relaxation wave fails — a single bad individual would merely be
// quarantined (see fault_test.go), but a wave with zero successes has
// no fitness signal and Step records it as Engine.Err.
func failEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(smallMarket(t), smallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal("healthy engine refused to step")
	}
	for i := range e.prey {
		e.prey[i] = []float64{0.5} // wrong dimension → evaluator error
	}
	if e.Step() {
		t.Fatal("corrupted engine stepped successfully")
	}
	if e.Err() == nil {
		t.Fatal("corrupted step recorded no error")
	}
	return e
}

// TestStepAfterErrIsNoOp pins the failure semantics: once Err() is
// non-nil, Step is a no-op returning false (no budget consumed, no
// generation counted) and Snapshot refuses to serialize the wreck.
func TestStepAfterErrIsNoOp(t *testing.T) {
	e := failEngine(t)
	firstErr := e.Err()
	gens, ul, ll := e.Gens(), e.ulUsed, e.llUsed
	for i := 0; i < 3; i++ {
		if e.Step() {
			t.Fatalf("Step %d after Err returned true", i)
		}
	}
	if e.Gens() != gens || e.ulUsed != ul || e.llUsed != ll {
		t.Fatalf("no-op Step mutated counters: gens %d→%d evals %d+%d→%d+%d",
			gens, e.Gens(), ul, ll, e.ulUsed, e.llUsed)
	}
	if e.Err() != firstErr {
		t.Fatalf("terminal error changed: %v → %v", firstErr, e.Err())
	}
}

func TestSnapshotOnFailedEngineErrors(t *testing.T) {
	e := failEngine(t)
	st, err := e.Snapshot()
	if err == nil {
		t.Fatal("failed engine produced a snapshot")
	}
	if st != nil {
		t.Fatal("failed snapshot returned non-nil state")
	}
	if !errors.Is(err, e.Err()) {
		t.Fatalf("snapshot error %v does not wrap engine error %v", err, e.Err())
	}
}

// FuzzRestore feeds arbitrary bytes through the full decode → Restore
// pipeline: corruption must surface as an error, never a panic and
// never a half-restored engine.
func FuzzRestore(f *testing.F) {
	mk := smallMarket(f)
	cfg := smallConfig(13)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		f.Fatal(err)
	}
	e.Step()
	st, err := e.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("{}"))
	f.Add(good[:len(good)*2/3])
	f.Add(bytes.Replace(good, []byte("(+"), []byte("(?"), 1))
	f.Add(bytes.Replace(good, []byte(`"prey"`), []byte(`"pray"`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := checkpoint.DecodeBytes(data)
		if err != nil {
			return
		}
		e, err := Restore(mk, cfg, st)
		if err != nil {
			return
		}
		// A state that restores must leave a steppable engine.
		if e.Err() != nil {
			t.Fatalf("restored engine born failed: %v", e.Err())
		}
		e.Step()
	})
}
