package core

import (
	"bytes"
	"testing"

	"carbon/internal/rng"
)

func TestRngStateRoundTrip(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	a := make([]uint64, 20)
	for i := range a {
		a[i] = r.Uint64()
	}
	r2 := rng.New(1)
	if err := r2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got := r2.Uint64(); got != a[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
	if err := r2.Restore([4]uint64{}); err == nil {
		t.Fatal("zero state accepted")
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(77)
	cfg.Workers = 1

	// Uninterrupted reference.
	ref, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: step half, checkpoint through JSON, resume, finish.
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := 0
	for e.CanStep() && half < ref.Gens/2 {
		e.Step()
		half++
	}
	var buf bytes.Buffer
	if err := e.Checkpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ResumeEngine(mk, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	for e2.Step() {
	}
	res, err := e2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens != ref.Gens {
		t.Fatalf("generations %d vs %d", res.Gens, ref.Gens)
	}
	if res.ULEvals != ref.ULEvals || res.LLEvals != ref.LLEvals {
		t.Fatalf("budget accounting differs: %d/%d vs %d/%d",
			res.ULEvals, res.LLEvals, ref.ULEvals, ref.LLEvals)
	}
	// The PRNG stream continues exactly; evaluation results are
	// identical here because the resumed warm solvers see the same
	// first-solve-per-cost behavior on this small market. Allow exact
	// equality to flag any real state leak.
	if res.Best.Revenue != ref.Best.Revenue || res.Best.TreeStr != ref.Best.TreeStr {
		t.Fatalf("resume diverged: (%v, %s) vs (%v, %s)",
			res.Best.Revenue, res.Best.TreeStr, ref.Best.Revenue, ref.Best.TreeStr)
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(5)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	cp := e.Checkpoint()

	other := cfg
	other.ULPopSize = cfg.ULPopSize * 2
	other.ULEvalBudget = cfg.ULEvalBudget * 2
	if _, err := ResumeEngine(mk, other, cp); err == nil {
		t.Fatal("mismatched config accepted")
	}
	if _, err := ResumeEngine(mk, cfg, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(6)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()

	cp := e.Checkpoint()
	cp.Predators[0] = "(+ broken"
	if _, err := ResumeEngine(mk, cfg, cp); err == nil {
		t.Fatal("corrupt predator accepted")
	}

	cp = e.Checkpoint()
	cp.Prey[0] = []float64{1}
	if _, err := ResumeEngine(mk, cfg, cp); err == nil {
		t.Fatal("corrupt prey accepted")
	}

	cp = e.Checkpoint()
	cp.ULArchF = cp.ULArchF[:1]
	if len(cp.ULArchP) > 1 {
		if _, err := ResumeEngine(mk, cfg, cp); err == nil {
			t.Fatal("ragged archive accepted")
		}
	}
}

func TestLoadCheckpointBadJSON(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewBufferString("{oops")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestCheckpointArchivePreserved(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(9)
	e, err := NewEngine(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && e.CanStep(); i++ {
		e.Step()
	}
	before, _, _ := e.BestPrey()
	beforeRev := 0.0
	if _, rev, ok := e.BestPrey(); ok {
		beforeRev = rev
	}
	cp := e.Checkpoint()
	e2, err := ResumeEngine(mk, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	after, afterRev, ok := e2.BestPrey()
	if !ok {
		t.Fatal("archive lost")
	}
	if afterRev != beforeRev {
		t.Fatalf("best fitness changed: %v vs %v", afterRev, beforeRev)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("best item changed across checkpoint")
		}
	}
}
