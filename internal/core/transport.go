package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"carbon/internal/gp"
)

// Topology names the migration pattern between islands. The zero value
// is the ring the paper-era island model always used.
type Topology string

const (
	// TopologyRing sends island i's elites to island (i+1) mod K.
	TopologyRing Topology = "ring"
	// TopologyBroadcast sends island i's elites to every other island.
	TopologyBroadcast Topology = "broadcast"
)

// valid reports whether t names a known topology ("" counts as ring).
func (t Topology) valid() bool {
	return t == "" || t == TopologyRing || t == TopologyBroadcast
}

// MigrantBatch is one island-to-island migration payload in its wire
// form: the sender's best archived prey and predator, with the predator
// traveling as its canonical text encoding (gp.Encode) so the payload
// is pure JSON — no pointers, no process-local state. Copies preserves
// IslandConfig.Migrants semantics: the receiver injects the same elites
// that many times, exactly as the in-process exchange always did.
type MigrantBatch struct {
	Run      string    `json:"run,omitempty"` // distributed-run identifier (empty in-process)
	Gen      int       `json:"gen"`
	From     int       `json:"from"`
	To       int       `json:"to"`
	Copies   int       `json:"copies"`
	Prey     []float64 `json:"prey,omitempty"`     // nil when the sender has no archived prey yet
	Predator string    `json:"predator,omitempty"` // "" when the sender has no archived predator yet
}

// Transport carries migrants and the per-generation liveness barrier
// between islands. The in-process implementation is LocalTransport; an
// HTTP/JSON implementation lives in internal/cluster/netmigrate so one
// run's islands can live on different carbond peers. The determinism
// contract: as long as a Transport delivers every batch intact and
// Barrier returns the same global OR on every shard, a sharded run is
// bit-identical to the single-process one per (seed, topology).
type Transport interface {
	// Send delivers one batch toward the shard hosting island b.To.
	Send(b MigrantBatch) error
	// Recv returns the batch island `to` (local) is owed from island
	// `from` at generation gen, blocking until it arrives or the
	// transport's wait budget expires.
	Recv(from, to, gen int) (MigrantBatch, error)
	// Barrier publishes this shard's progress flag for the generation
	// and returns the OR across every shard — the global "anyone still
	// has budget" signal the run loop breaks on. It must not return
	// until every shard has reported, which is what keeps migration
	// rounds aligned across machines.
	Barrier(gen int, progressed bool) (bool, error)
}

// destinations lists the islands that receive island i's elites, in the
// order they are sent.
func (ic IslandConfig) destinations(i int) []int {
	switch ic.Topology {
	case TopologyBroadcast:
		out := make([]int, 0, ic.Islands-1)
		for j := 0; j < ic.Islands; j++ {
			if j != i {
				out = append(out, j)
			}
		}
		return out
	default: // ring
		return []int{(i + 1) % ic.Islands}
	}
}

// sources lists the islands island j receives from, in ascending order —
// the injection order every implementation must honor, because the
// receiving engine's RNG consumption (and therefore the whole run's
// bit-identity) depends on it.
func (ic IslandConfig) sources(j int) []int {
	switch ic.Topology {
	case TopologyBroadcast:
		out := make([]int, 0, ic.Islands-1)
		for i := 0; i < ic.Islands; i++ {
			if i != j {
				out = append(out, i)
			}
		}
		return out
	default: // ring
		return []int{(j - 1 + ic.Islands) % ic.Islands}
	}
}

// Receive injects one migrant batch into the engine, replaying the
// exact injection sequence of the historical in-process exchange:
// Copies iterations of prey-then-predator. The predator is decoded
// against this engine's primitive set, so a set mismatch surfaces as
// the same typed error a direct InjectPredator would raise.
func (e *Engine) Receive(b MigrantBatch) error {
	var tree gp.Tree
	haveTree := false
	if b.Predator != "" {
		t, err := gp.Decode(e.set, b.Predator)
		if err != nil {
			return fmt.Errorf("core: island %d: migrant predator from island %d: %w", b.To, b.From, err)
		}
		tree = t
		haveTree = true
	}
	for m := 0; m < b.Copies; m++ {
		if b.Prey != nil {
			if err := e.InjectPrey(b.Prey); err != nil {
				return fmt.Errorf("core: island %d: migrant prey from island %d: %w", b.To, b.From, err)
			}
		}
		if haveTree {
			if err := e.InjectPredator(tree); err != nil {
				return fmt.Errorf("core: island %d: migrant predator from island %d: %w", b.To, b.From, err)
			}
		}
	}
	return nil
}

// outgoing snapshots the engine's best elites as a wire batch.
func (e *Engine) outgoing(gen, from, copies int) MigrantBatch {
	b := MigrantBatch{Gen: gen, From: from, Copies: copies}
	if x, _, ok := e.BestPrey(); ok {
		b.Prey = x
	}
	if t, _, ok := e.BestPredator(); ok {
		b.Predator = gp.Encode(e.set, t)
	}
	return b
}

// LocalTransport is the in-process Transport: a mailbox keyed by
// (from, to, gen) plus a counting barrier. One party (the default for
// RunIslands, where every island is local) makes Send/Recv a same-
// goroutine handoff and Barrier a no-op; several parties turn it into a
// shared-memory rendezvous for testing sharded runs without a network.
type LocalTransport struct {
	parties int
	timeout time.Duration

	mu     sync.Mutex
	notify chan struct{}
	box    map[[3]int]MigrantBatch
	rounds map[int]*localRound
}

type localRound struct {
	arrived int
	any     bool
	settled bool // every party reported; `any` is final
}

// NewLocalTransport returns an in-process transport shared by `parties`
// concurrent shards (1 for a fully local run). Waits are bounded at two
// minutes so a protocol bug fails loudly instead of deadlocking a test.
func NewLocalTransport(parties int) *LocalTransport {
	if parties < 1 {
		parties = 1
	}
	return &LocalTransport{
		parties: parties,
		timeout: 2 * time.Minute,
		notify:  make(chan struct{}),
		box:     make(map[[3]int]MigrantBatch),
		rounds:  make(map[int]*localRound),
	}
}

// wake releases every waiter to re-check its predicate.
func (t *LocalTransport) wake() {
	close(t.notify)
	t.notify = make(chan struct{})
}

// wait blocks until pred (called under the lock) reports done.
func (t *LocalTransport) wait(what string, pred func() bool) error {
	deadline := time.Now().Add(t.timeout)
	t.mu.Lock()
	for !pred() {
		ch := t.notify
		t.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("core: local transport: timed out waiting for %s", what)
		}
		t.mu.Lock()
	}
	t.mu.Unlock()
	return nil
}

// Send stores the batch for its addressee.
func (t *LocalTransport) Send(b MigrantBatch) error {
	t.mu.Lock()
	t.box[[3]int{b.From, b.To, b.Gen}] = b
	t.wake()
	t.mu.Unlock()
	return nil
}

// Recv pops the (from, to, gen) batch, blocking until Send delivers it.
func (t *LocalTransport) Recv(from, to, gen int) (MigrantBatch, error) {
	key := [3]int{from, to, gen}
	if err := t.wait(fmt.Sprintf("migrants %d→%d gen %d", from, to, gen), func() bool {
		_, ok := t.box[key]
		return ok
	}); err != nil {
		return MigrantBatch{}, err
	}
	t.mu.Lock()
	b := t.box[key]
	delete(t.box, key)
	t.mu.Unlock()
	return b, nil
}

// Barrier accumulates each party's progress flag for the generation and
// releases everyone with the OR once all parties have reported.
func (t *LocalTransport) Barrier(gen int, progressed bool) (bool, error) {
	t.mu.Lock()
	r := t.rounds[gen]
	if r == nil {
		r = &localRound{}
		t.rounds[gen] = r
	}
	r.arrived++
	r.any = r.any || progressed
	if r.arrived == t.parties {
		r.settled = true
		t.wake()
	}
	t.mu.Unlock()
	if err := t.wait(fmt.Sprintf("barrier gen %d", gen), func() bool { return r.settled }); err != nil {
		return false, err
	}
	t.mu.Lock()
	any := r.any
	// The round stays in the map until every party has read it; a tiny
	// sweep keeps the map from growing without bound.
	delete(t.rounds, gen-2)
	t.mu.Unlock()
	return any, nil
}

// WireRoundTrip wraps a Transport so every batch is encoded to JSON and
// decoded back before delivery — exactly what the HTTP transport does to
// it. Running the island model over this wrapper and getting DeepEqual
// results proves the wire format lossless (float64 price vectors survive
// encoding/json's shortest-round-trip rendering exactly; predators
// travel as their canonical gp encoding).
func WireRoundTrip(next Transport) Transport { return &wireTransport{next: next} }

type wireTransport struct{ next Transport }

func (w *wireTransport) roundTrip(b MigrantBatch) (MigrantBatch, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(b); err != nil {
		return MigrantBatch{}, err
	}
	var out MigrantBatch
	if err := json.NewDecoder(&buf).Decode(&out); err != nil {
		return MigrantBatch{}, err
	}
	return out, nil
}

func (w *wireTransport) Send(b MigrantBatch) error {
	rb, err := w.roundTrip(b)
	if err != nil {
		return err
	}
	return w.next.Send(rb)
}

func (w *wireTransport) Recv(from, to, gen int) (MigrantBatch, error) {
	b, err := w.next.Recv(from, to, gen)
	if err != nil {
		return MigrantBatch{}, err
	}
	return w.roundTrip(b)
}

func (w *wireTransport) Barrier(gen int, progressed bool) (bool, error) {
	return w.next.Barrier(gen, progressed)
}
