package core

import (
	"context"
	"errors"
	"fmt"

	"carbon/internal/bcpop"
	"carbon/internal/par"
	"carbon/internal/span"
)

// IslandConfig parameterizes the island-model variant of CARBON: K
// independent engines evolve in parallel and periodically migrate their
// archived elites along a ring. Islands are the classic coarse-grained
// parallelization of evolutionary algorithms — each island is internally
// sequential (deterministic per seed), and the only synchronization is
// the migration barrier, so the model scales to one core per island.
type IslandConfig struct {
	Islands      int // number of islands (≥ 2)
	MigrateEvery int // generations between migrations (≥ 1)
	Migrants     int // elites of each kind sent per migration (≥ 1)
	Workers      int // islands stepped concurrently (0 = GOMAXPROCS)
}

// DefaultIslandConfig returns a 4-island ring migrating its best prey
// and predator every 5 generations.
func DefaultIslandConfig() IslandConfig {
	return IslandConfig{Islands: 4, MigrateEvery: 5, Migrants: 1}
}

// Validate rejects unusable island configurations.
func (ic *IslandConfig) Validate() error {
	switch {
	case ic.Islands < 2:
		return errors.New("core: island model needs at least 2 islands")
	case ic.MigrateEvery < 1:
		return errors.New("core: MigrateEvery must be at least 1")
	case ic.Migrants < 1:
		return errors.New("core: Migrants must be at least 1")
	}
	return nil
}

// IslandResult is the outcome of an island-model run.
type IslandResult struct {
	Best       BestPair  // best pairing across all islands
	BestIsland int       // which island produced it
	PerIsland  []*Result // each island's own summary
	Migrations int
}

// migrateRing performs one ring migration: island i sends copies of its
// archived elites to island (i+1) mod K. It runs on the coordinating
// goroutine while every island is quiescent, so the run stays
// deterministic. Errors carry the receiving island's index — an
// injection can only fail because the destination engine rejected the
// migrant (wrong dimension, primitive-set mismatch), which points at
// that island's configuration.
func migrateRing(engines []*Engine, ic IslandConfig, obs Observer, label string, gen int) error {
	for i, e := range engines {
		di := (i + 1) % len(engines)
		dst := engines[di]
		for m := 0; m < ic.Migrants; m++ {
			if x, _, ok := e.BestPrey(); ok {
				if err := dst.InjectPrey(x); err != nil {
					return fmt.Errorf("core: island %d: migrant prey from island %d: %w", di, i, err)
				}
			}
			if t, _, ok := e.BestPredator(); ok {
				if err := dst.InjectPredator(t); err != nil {
					return fmt.Errorf("core: island %d: migrant predator from island %d: %w", di, i, err)
				}
			}
		}
		if obs != nil {
			obs.OnMigration(MigrationStats{
				Label: label,
				Gen:   gen, From: i, To: di, Migrants: ic.Migrants,
			})
		}
	}
	return nil
}

// RunIslands executes the island model. The per-level evaluation budgets
// of cfg are split evenly across the islands, so an island run is
// budget-comparable to a single Run with the same cfg. Each island gets
// a distinct seed derived from cfg.Seed; reproducibility follows the
// usual per-(seed, workers) contract with Workers pinned to 1 inside
// each island (parallelism comes from stepping islands concurrently).
func RunIslands(mk *bcpop.Market, cfg Config, ic IslandConfig) (*IslandResult, error) {
	return RunIslandsContext(context.Background(), mk, cfg, ic)
}

// RunIslandsContext is RunIslands with cooperative cancellation, checked
// at the per-generation migration barrier (the only point where all
// islands are quiescent). See RunContext for the cancellation contract.
func RunIslandsContext(ctx context.Context, mk *bcpop.Market, cfg Config, ic IslandConfig) (*IslandResult, error) {
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	islandCfg := cfg
	islandCfg.ULEvalBudget = cfg.ULEvalBudget / ic.Islands
	islandCfg.LLEvalBudget = cfg.LLEvalBudget / ic.Islands
	islandCfg.Workers = 1
	if err := islandCfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: budgets too small for %d islands: %w", ic.Islands, err)
	}

	engines := make([]*Engine, ic.Islands)
	for i := range engines {
		c := islandCfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003 + 17
		e, err := NewEngine(mk, c)
		if err != nil {
			return nil, err
		}
		e.island = i // tags this engine's GenStats for the shared observer
		engines[i] = e
	}

	res := &IslandResult{}
	gen := 0
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: island run canceled after generation %d: %w", gen, cerr)
		}
		// Step every live island concurrently; the engines share no
		// state, so the only synchronization is this barrier. The
		// shared observer (cfg.Observer) is called from these
		// goroutines and must be safe for concurrent use.
		progressed := make([]bool, len(engines))
		par.ForEach(len(engines), ic.Workers, func(i int) {
			progressed[i] = engines[i].Step()
		})
		// A terminally failed island aborts the run before `progressed`
		// is consulted: its false is "failed", not "budget exhausted",
		// and treating the two alike would let the surviving islands
		// keep evolving (and migrating stale elites out of the dead
		// island's archives) as if nothing happened.
		for i, e := range engines {
			if err := e.Err(); err != nil {
				return nil, fmt.Errorf("core: island %d: %w", i, err)
			}
		}
		any := false
		for _, p := range progressed {
			any = any || p
		}
		if !any {
			break
		}
		gen++
		if gen%ic.MigrateEvery != 0 {
			continue
		}
		// The migration barrier is the only cross-island phase, so it
		// gets its own span (parented like the gen spans) rather than
		// hiding inside some island's generation.
		msp := cfg.Spans.Start(cfg.SpanParent, "migration").Kind(span.KindCompute).
			Attr("gen", gen).Attr("migrants", ic.Migrants*ic.Islands)
		err := migrateRing(engines, ic, cfg.Observer, cfg.RunLabel, gen)
		msp.End()
		if err != nil {
			return nil, err
		}
		res.Migrations++
	}

	res.PerIsland = make([]*Result, len(engines))
	bestRevenue := -1.0
	bestGap := -1.0
	for i, e := range engines {
		r, err := e.Result()
		if err != nil {
			return nil, err
		}
		res.PerIsland[i] = r
		if r.Best.Revenue > bestRevenue {
			bestRevenue = r.Best.Revenue
			res.Best.Price = r.Best.Price
			res.Best.Revenue = r.Best.Revenue
			res.BestIsland = i
		}
		if bestGap < 0 || r.Best.GapPct < bestGap {
			bestGap = r.Best.GapPct
			res.Best.Tree = r.Best.Tree
			res.Best.TreeStr = r.Best.TreeStr
			res.Best.Simplified = r.Best.Simplified
			res.Best.GapPct = r.Best.GapPct
		}
	}
	if cfg.Observer != nil {
		// The completion event reports the winning island's summary
		// (the cross-island Best may mix islands; per-island results
		// are in PerIsland).
		cfg.Observer.OnDone(res.PerIsland[res.BestIsland])
	}
	return res, nil
}
