package core

import (
	"context"
	"errors"
	"fmt"

	"carbon/internal/bcpop"
	"carbon/internal/par"
	"carbon/internal/span"
)

// IslandConfig parameterizes the island-model variant of CARBON: K
// independent engines evolve in parallel and periodically migrate their
// archived elites along a topology. Islands are the classic
// coarse-grained parallelization of evolutionary algorithms — each
// island is internally sequential (deterministic per seed), and the only
// synchronization is the migration barrier, so the model scales to one
// core per island — or, through a Transport, to one *machine* per group
// of islands (see RunIslandsShard and internal/cluster/netmigrate).
type IslandConfig struct {
	Islands      int      // number of islands (≥ 2)
	MigrateEvery int      // generations between migrations (≥ 1)
	Migrants     int      // elites of each kind sent per migration (≥ 1)
	Workers      int      // islands stepped concurrently (0 = GOMAXPROCS)
	Topology     Topology // migration pattern ("" = ring)
}

// DefaultIslandConfig returns a 4-island ring migrating its best prey
// and predator every 5 generations.
func DefaultIslandConfig() IslandConfig {
	return IslandConfig{Islands: 4, MigrateEvery: 5, Migrants: 1, Topology: TopologyRing}
}

// Validate rejects unusable island configurations.
func (ic *IslandConfig) Validate() error {
	switch {
	case ic.Islands < 2:
		return errors.New("core: island model needs at least 2 islands")
	case ic.MigrateEvery < 1:
		return errors.New("core: MigrateEvery must be at least 1")
	case ic.Migrants < 1:
		return errors.New("core: Migrants must be at least 1")
	case !ic.Topology.valid():
		return fmt.Errorf("core: unknown island topology %q", ic.Topology)
	}
	return nil
}

// IslandResult is the outcome of an island-model run.
type IslandResult struct {
	Best       BestPair  // best pairing across all islands
	BestIsland int       // which island produced it
	PerIsland  []*Result // each island's own summary
	Migrations int
}

// ShardResult is one shard's share of a distributed island run: the
// summaries of the islands it hosted, in the order of Islands.
type ShardResult struct {
	Islands    []int // global island indices this shard ran (ascending)
	PerIsland  []*Result
	Migrations int
}

// migrateShard performs one migration round for the local islands: the
// send phase ships every local island's elites to its topology
// destinations through the transport, then the receive phase collects
// what each local island is owed — sources in ascending island order,
// the order the receiving engine's RNG consumption is defined by — and
// injects it. OnMigration fires on the receive side after a successful
// injection, so an aborted edge never reports an event (and in a
// distributed run each shard observes exactly the migrants that reached
// it). Errors carry the island context: an injection can only fail
// because the destination engine rejected the migrant (wrong dimension,
// primitive-set mismatch), which points at that island's configuration.
func migrateShard(islands []int, engines []*Engine, ic IslandConfig, tr Transport, obs Observer, label string, gen int) error {
	for k, i := range islands {
		b := engines[k].outgoing(gen, i, ic.Migrants)
		for _, dst := range ic.destinations(i) {
			eb := b
			eb.To = dst
			if err := tr.Send(eb); err != nil {
				return fmt.Errorf("core: island %d: send migrants to island %d: %w", i, dst, err)
			}
		}
	}
	for k, j := range islands {
		dst := engines[k]
		for _, src := range ic.sources(j) {
			b, err := tr.Recv(src, j, gen)
			if err != nil {
				return fmt.Errorf("core: island %d: receive migrants from island %d: %w", j, src, err)
			}
			if err := dst.Receive(b); err != nil {
				return err
			}
			if obs != nil {
				obs.OnMigration(MigrationStats{
					Label: label,
					Gen:   gen, From: src, To: j, Migrants: ic.Migrants,
				})
			}
		}
	}
	return nil
}

// RunIslands executes the island model. The per-level evaluation budgets
// of cfg are split evenly across the islands, so an island run is
// budget-comparable to a single Run with the same cfg. Each island gets
// a distinct seed derived from cfg.Seed; reproducibility follows the
// usual per-(seed, workers) contract with Workers pinned to 1 inside
// each island (parallelism comes from stepping islands concurrently).
func RunIslands(mk *bcpop.Market, cfg Config, ic IslandConfig) (*IslandResult, error) {
	return RunIslandsContext(context.Background(), mk, cfg, ic)
}

// RunIslandsContext is RunIslands with cooperative cancellation, checked
// at the per-generation migration barrier (the only point where all
// islands are quiescent). See RunContext for the cancellation contract.
func RunIslandsContext(ctx context.Context, mk *bcpop.Market, cfg Config, ic IslandConfig) (*IslandResult, error) {
	return RunIslandsTransport(ctx, mk, cfg, ic, NewLocalTransport(1))
}

// RunIslandsTransport is RunIslandsContext with an explicit migrant
// transport — the seam the golden tests and the networked island model
// hang off. With NewLocalTransport(1) it is exactly RunIslands.
func RunIslandsTransport(ctx context.Context, mk *bcpop.Market, cfg Config, ic IslandConfig, tr Transport) (*IslandResult, error) {
	all := make([]int, 0, ic.Islands)
	for i := 0; i < ic.Islands; i++ {
		all = append(all, i)
	}
	sh, err := RunIslandsShard(ctx, mk, cfg, ic, all, tr)
	if err != nil {
		return nil, err
	}
	res := MergeShards(sh)
	if cfg.Observer != nil {
		// The completion event reports the winning island's summary
		// (the cross-island Best may mix islands; per-island results
		// are in PerIsland).
		cfg.Observer.OnDone(res.PerIsland[res.BestIsland])
	}
	return res, nil
}

// RunIslandsShard runs the given subset of a K-island model's islands in
// this process, exchanging migrants and liveness over the transport.
// Every shard of one run must be started with the same (mk-producing
// spec, cfg, ic) and a disjoint cover of {0..K-1}; each island derives
// its seed from its *global* index, so how islands are grouped onto
// shards cannot change any island's stream — a sharded run is
// bit-identical to RunIslands with the same seed and topology.
func RunIslandsShard(ctx context.Context, mk *bcpop.Market, cfg Config, ic IslandConfig, islands []int, tr Transport) (*ShardResult, error) {
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(islands) == 0 {
		return nil, errors.New("core: shard hosts no islands")
	}
	seen := make(map[int]bool)
	for k, i := range islands {
		if i < 0 || i >= ic.Islands || seen[i] || (k > 0 && islands[k-1] > i) {
			return nil, fmt.Errorf("core: shard island list %v must be ascending, unique and within [0,%d)", islands, ic.Islands)
		}
		seen[i] = true
	}
	if tr == nil {
		return nil, errors.New("core: shard needs a transport")
	}
	islandCfg := cfg
	islandCfg.ULEvalBudget = cfg.ULEvalBudget / ic.Islands
	islandCfg.LLEvalBudget = cfg.LLEvalBudget / ic.Islands
	islandCfg.Workers = 1
	if err := islandCfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: budgets too small for %d islands: %w", ic.Islands, err)
	}

	engines := make([]*Engine, len(islands))
	for k, i := range islands {
		c := islandCfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003 + 17
		e, err := NewEngine(mk, c)
		if err != nil {
			return nil, err
		}
		e.island = i // tags this engine's GenStats for the shared observer
		engines[k] = e
	}

	// links is how many topology edges originate on this shard — the
	// migrant count the migration span advertises.
	links := 0
	for _, i := range islands {
		links += len(ic.destinations(i))
	}

	res := &ShardResult{Islands: append([]int(nil), islands...)}
	gen := 0
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: island run canceled after generation %d: %w", gen, cerr)
		}
		// Step every live local island concurrently; the engines share
		// no state, so the only synchronization is this barrier. The
		// shared observer (cfg.Observer) is called from these
		// goroutines and must be safe for concurrent use.
		progressed := make([]bool, len(engines))
		par.ForEach(len(engines), ic.Workers, func(i int) {
			progressed[i] = engines[i].Step()
		})
		// A terminally failed island aborts the run before `progressed`
		// is consulted: its false is "failed", not "budget exhausted",
		// and treating the two alike would let the surviving islands
		// keep evolving (and migrating stale elites out of the dead
		// island's archives) as if nothing happened.
		for k, e := range engines {
			if err := e.Err(); err != nil {
				return nil, fmt.Errorf("core: island %d: %w", islands[k], err)
			}
		}
		local := false
		for _, p := range progressed {
			local = local || p
		}
		// The liveness barrier: every shard publishes whether any of
		// its islands still had budget this generation, and the run
		// continues while anyone anywhere does. Exhausted islands keep
		// attending barriers and migrations (a Step on them is a no-op)
		// so migration rounds stay aligned across shards — exactly the
		// behavior the single-process loop always had for islands that
		// ran out of budget before their neighbors.
		any, err := tr.Barrier(gen+1, local)
		if err != nil {
			return nil, fmt.Errorf("core: liveness barrier after generation %d: %w", gen+1, err)
		}
		if !any {
			break
		}
		gen++
		if gen%ic.MigrateEvery != 0 {
			continue
		}
		// The migration barrier is the only cross-island phase, so it
		// gets its own span (parented like the gen spans) rather than
		// hiding inside some island's generation.
		msp := cfg.Spans.Start(cfg.SpanParent, "migration").Kind(span.KindCompute).
			Attr("gen", gen).Attr("migrants", ic.Migrants*links)
		err = migrateShard(islands, engines, ic, tr, cfg.Observer, cfg.RunLabel, gen)
		msp.End()
		if err != nil {
			return nil, err
		}
		res.Migrations++
	}

	res.PerIsland = make([]*Result, len(engines))
	for k, e := range engines {
		r, err := e.Result()
		if err != nil {
			return nil, err
		}
		res.PerIsland[k] = r
	}
	return res, nil
}

// MergeShards combines shard results into the run summary, selecting
// the cross-island best exactly the way the single-process island loop
// always did: islands considered in ascending global order, best
// revenue wins price, best (lowest) gap wins heuristic. Passing shards
// that together cover islands 0..K-1 of one run reproduces RunIslands'
// IslandResult bit for bit.
func MergeShards(shards ...*ShardResult) *IslandResult {
	byIsland := make(map[int]*Result)
	islands := 0
	migrations := 0
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		for k, i := range sh.Islands {
			byIsland[i] = sh.PerIsland[k]
			if i+1 > islands {
				islands = i + 1
			}
		}
		if sh.Migrations > migrations {
			migrations = sh.Migrations
		}
	}
	res := &IslandResult{Migrations: migrations, PerIsland: make([]*Result, islands)}
	bestRevenue := -1.0
	bestGap := -1.0
	for i := 0; i < islands; i++ {
		r := byIsland[i]
		if r == nil {
			continue
		}
		res.PerIsland[i] = r
		if r.Best.Revenue > bestRevenue {
			bestRevenue = r.Best.Revenue
			res.Best.Price = r.Best.Price
			res.Best.Revenue = r.Best.Revenue
			res.BestIsland = i
		}
		if bestGap < 0 || r.Best.GapPct < bestGap {
			bestGap = r.Best.GapPct
			res.Best.Tree = r.Best.Tree
			res.Best.TreeStr = r.Best.TreeStr
			res.Best.Simplified = r.Best.Simplified
			res.Best.GapPct = r.Best.GapPct
		}
	}
	return res
}
