package core

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/checkpoint"
	"carbon/internal/orlib"
	"carbon/internal/telemetry"
)

func surrogateConfig(seed uint64) Config {
	cfg := smallConfig(seed)
	cfg.Surrogate.Enabled = true
	return cfg
}

// TestExactModeGoldenBitIdentical pins the paper-faithful path to the
// engine as it existed before surrogate-assisted skipping: the final
// Result of a whole run must reproduce the pre-surrogate engine
// bit-for-bit, across seeds and worker counts, with the surrogate knob
// at its zero value (the `-exact` mode). The hex constants are
// math.Float64bits of Best.Revenue / Best.GapPct captured from the
// pre-surrogate engine on this exact (market, config) pair — if this
// test fails, the default path changed behavior, which PR-scoped
// refactors must never do.
func TestExactModeGoldenBitIdentical(t *testing.T) {
	golden := []struct {
		seed     uint64
		workers  int
		gens     int
		revBits  uint64
		gapBits  uint64
		bestTree string
	}{
		{7, 1, 12, 0x40a40149693b4ae7, 0x4018d9b5fc683eda, "(- (% (* c xbar) (- b q)) (* (mod b xbar) (% d d)))"},
		{41, 1, 12, 0x40a0e267b5f2dfb0, 0x40146402a48796eb, "xbar"},
		{7, 2, 12, 0x40a40149693b4ae7, 0x4018d9b5fc683eda, "(- (% (* c xbar) (- b q)) (* (mod b xbar) (% d d)))"},
		{41, 2, 12, 0x40a0e267b5f2dfb0, 0x40146402a48796eb, "xbar"},
	}
	mk := smallMarket(t)
	for _, g := range golden {
		cfg := smallConfig(g.seed)
		cfg.Workers = g.workers
		if cfg.Surrogate.Enabled {
			t.Fatal("golden must run the exact path")
		}
		res, err := Run(mk, cfg)
		if err != nil {
			t.Fatalf("seed=%d workers=%d: %v", g.seed, g.workers, err)
		}
		if res.Gens != g.gens {
			t.Errorf("seed=%d workers=%d: gens=%d, want %d", g.seed, g.workers, res.Gens, g.gens)
		}
		if bits := math.Float64bits(res.Best.Revenue); bits != g.revBits {
			t.Errorf("seed=%d workers=%d: revenue bits %#x (%v), want %#x",
				g.seed, g.workers, bits, res.Best.Revenue, g.revBits)
		}
		if bits := math.Float64bits(res.Best.GapPct); bits != g.gapBits {
			t.Errorf("seed=%d workers=%d: gap bits %#x (%v), want %#x",
				g.seed, g.workers, bits, res.Best.GapPct, g.gapBits)
		}
		if res.Best.TreeStr != g.bestTree {
			t.Errorf("seed=%d workers=%d: tree %q, want %q", g.seed, g.workers, res.Best.TreeStr, g.bestTree)
		}
	}
}

// TestSurrogateReducesLPSolves is the headline counter assertion: the
// same run in surrogate mode must spend measurably fewer exact LP
// solves than the exact reference, on the identical generation
// schedule (budget charging is mode-independent by design, so both
// modes run the same number of generations).
func TestSurrogateReducesLPSolves(t *testing.T) {
	mk := smallMarket(t)
	solvesOf := func(cfg Config) (*Result, int64, int64) {
		// Run long enough for steady-state skipping to dominate the
		// warmup generations (~30 generations, skipping from gen 6).
		cfg.ULEvalBudget = 16 * 30
		cfg.LLEvalBudget = 16 * 2 * 30
		reg := telemetry.NewRegistry()
		cfg.Metrics = reg
		res, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Counter("bcpop.lp_solves").Load(), reg.Counter("core.surrogate_skips").Load()
	}
	exact, exactSolves, exactSkips := solvesOf(smallConfig(7))
	surr, surrSolves, surrSkips := solvesOf(surrogateConfig(7))

	if surr.Gens != exact.Gens {
		t.Fatalf("generation schedules diverged: surrogate %d, exact %d (budget charging must be mode-independent)",
			surr.Gens, exact.Gens)
	}
	if exactSkips != 0 {
		t.Errorf("exact mode reported %d surrogate skips, want 0", exactSkips)
	}
	if surrSkips == 0 {
		t.Error("surrogate mode never skipped a solve")
	}
	if surrSolves >= exactSolves*8/10 {
		t.Errorf("surrogate mode solved %d LPs, exact %d — want a >20%% drop", surrSolves, exactSolves)
	}
	t.Logf("lp_solves: exact=%d surrogate=%d (%.0f%%), %d skips",
		exactSolves, surrSolves, 100*float64(surrSolves)/float64(exactSolves), surrSkips)
}

// TestSurrogateRankTolerance is the documented closeness golden
// (DESIGN.md §5l): surrogate selection runs on predicted fitness, so
// the trajectory diverges from exact mode — in either direction, since
// archives only ever hold exactly-evaluated prey (the surrogate can
// miss a winner but never fabricate one). Per seed the divergence is
// bounded by run-to-run variance; what must hold across a seed panel
// is that the typical divergence is small and carries no systematic
// revenue loss: median |drift| ≤ 5%, mean signed drift within ±10%.
func TestSurrogateRankTolerance(t *testing.T) {
	mk := smallMarket(t)
	seeds := []uint64{1, 3, 7, 11, 23, 41}
	drifts := make([]float64, 0, len(seeds))
	signed := 0.0
	for _, seed := range seeds {
		exact, err := Run(mk, smallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		surr, err := Run(mk, surrogateConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		d := (surr.Best.Revenue - exact.Best.Revenue) / exact.Best.Revenue
		drifts = append(drifts, math.Abs(d))
		signed += d
		t.Logf("seed=%d exact=%.1f surrogate=%.1f drift=%+.2f%%", seed, exact.Best.Revenue, surr.Best.Revenue, 100*d)
	}
	sort.Float64s(drifts)
	median := drifts[len(drifts)/2]
	if len(drifts)%2 == 0 {
		median = (drifts[len(drifts)/2-1] + drifts[len(drifts)/2]) / 2
	}
	mean := signed / float64(len(seeds))
	if median > 0.05 {
		t.Errorf("median |revenue drift| %.2f%% exceeds the documented 5%% rank-tolerance", 100*median)
	}
	if math.Abs(mean) > 0.10 {
		t.Errorf("mean signed revenue drift %+.2f%% exceeds ±10%% — systematic bias", 100*mean)
	}
	t.Logf("median |drift| %.2f%%, mean signed drift %+.2f%%", 100*median, 100*mean)
}

// TestSurrogateDeterministicPerSeed: surrogate mode keeps the
// determinism contract — two runs with the same (Seed, Workers) are
// bit-identical, because surrogate scoring consumes no algorithm RNG
// and the exact-LP subset is a deterministic rule over frozen scores.
func TestSurrogateDeterministicPerSeed(t *testing.T) {
	mk := smallMarket(t)
	for _, workers := range []int{1, 2} {
		cfg := surrogateConfig(11)
		cfg.Workers = workers
		a, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a.Best.Revenue) != math.Float64bits(b.Best.Revenue) ||
			math.Float64bits(a.Best.GapPct) != math.Float64bits(b.Best.GapPct) ||
			a.Best.TreeStr != b.Best.TreeStr || a.Gens != b.Gens {
			t.Errorf("workers=%d: surrogate runs diverged: (%v,%v,%q) vs (%v,%v,%q)",
				workers, a.Best.Revenue, a.Best.GapPct, a.Best.TreeStr,
				b.Best.Revenue, b.Best.GapPct, b.Best.TreeStr)
		}
	}
}

// TestSurrogateSnapshotRestoreBitIdentical: interrupting a surrogate
// run mid-stream — after skipping is active, so the model state is
// load-bearing — and restoring through a full Encode/Decode round trip
// must finish bit-identical to the uninterrupted reference.
func TestSurrogateSnapshotRestoreBitIdentical(t *testing.T) {
	mk := smallMarket(t)
	cfg := surrogateConfig(7)

	ref, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, stopAfter := range []int{3, 8} { // before and after skipping activates
		e, err := NewEngine(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < stopAfter; g++ {
			if !e.Step() {
				t.Fatalf("engine stopped at gen %d", g)
			}
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if stopAfter >= 8 && st.Surrogate == nil {
			t.Fatal("active surrogate run snapshot lacks model state")
		}
		var buf bytes.Buffer
		if err := st.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		st2, err := checkpoint.Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Restore(mk, cfg, st2)
		if err != nil {
			t.Fatal(err)
		}
		for r.Step() {
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		got, err := r.Result()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Best.Revenue) != math.Float64bits(ref.Best.Revenue) ||
			math.Float64bits(got.Best.GapPct) != math.Float64bits(ref.Best.GapPct) ||
			got.Best.TreeStr != ref.Best.TreeStr || got.Gens != ref.Gens {
			t.Errorf("stop@%d: restored run diverged: (%v,%v,%q,%d) vs (%v,%v,%q,%d)",
				stopAfter, got.Best.Revenue, got.Best.GapPct, got.Best.TreeStr, got.Gens,
				ref.Best.Revenue, ref.Best.GapPct, ref.Best.TreeStr, ref.Gens)
		}
	}
}

// TestRestoreFlipsSurrogateMode pins the fingerprint contract: like
// Interpret, the surrogate knobs are excluded from the checkpoint
// fingerprint, so a resume can flip surrogate on or off (or retune
// top-k) without a mismatch — in both directions.
func TestRestoreFlipsSurrogateMode(t *testing.T) {
	mk := smallMarket(t)

	runHalf := func(cfg Config) *checkpoint.State {
		e, err := NewEngine(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 6; g++ {
			if !e.Step() {
				t.Fatalf("engine stopped at gen %d", g)
			}
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// exact → surrogate: no stored model state; the fresh model re-warms.
	st := runHalf(smallConfig(7))
	if st.Surrogate != nil {
		t.Fatal("exact-mode snapshot carries surrogate state")
	}
	surrCfg := surrogateConfig(7)
	e, err := Restore(mk, surrCfg, st)
	if err != nil {
		t.Fatalf("exact snapshot refused under surrogate config: %v", err)
	}
	for e.Step() {
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	// surrogate → exact: stored model state is ignored.
	st = runHalf(surrogateConfig(7))
	if st.Surrogate == nil {
		t.Fatal("surrogate-mode snapshot lacks model state")
	}
	e, err = Restore(mk, smallConfig(7), st)
	if err != nil {
		t.Fatalf("surrogate snapshot refused under exact config: %v", err)
	}
	for e.Step() {
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	// surrogate → retuned surrogate: same fingerprint, different knobs.
	st = runHalf(surrogateConfig(7))
	tuned := surrogateConfig(7)
	tuned.Surrogate.TopK = 8
	tuned.Surrogate.Uncertain = 1
	if _, err := Restore(mk, tuned, st); err != nil {
		t.Fatalf("surrogate snapshot refused under retuned knobs: %v", err)
	}
}

// TestSurrogateDriftRaisesError: a market shift mid-stream — restore
// the snapshot on a same-shape but different instance, which the
// fingerprint deliberately accepts — must show up as a surrogate-error
// spike in the telemetry, because the model keeps predicting the old
// market's value landscape. ErrLB is the drift signal: the LP bound is
// nearly linear in price, so the model tracks it tightly
// in-distribution (~1% here) and a cost shift throws it off by an
// order of magnitude. This is the engine-side half of the drift story;
// tracestat turns the spike into a "surrogate-drift" anomaly flag (see
// tracestat's own tests).
func TestSurrogateDriftRaisesError(t *testing.T) {
	mkA := smallMarket(t)
	mkB, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 9)
	if err != nil {
		t.Fatal(err)
	}

	var baseline []float64 // active-generation ErrLB on market A
	cfg := surrogateConfig(7)
	cfg.Observer = FuncObserver{Generation: func(gs GenStats) {
		if gs.Surr != nil && gs.Surr.Active {
			baseline = append(baseline, gs.Surr.ErrLB)
		}
	}}
	e, err := NewEngine(mkA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		if !e.Step() {
			t.Fatalf("engine stopped at gen %d", g)
		}
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("skipping never activated on market A")
	}
	baseMean := 0.0
	for _, v := range baseline {
		baseMean += v
	}
	baseMean /= float64(len(baseline))

	var shifted []float64
	cfg2 := surrogateConfig(7)
	cfg2.ULEvalBudget = 16 * 14 // headroom to keep stepping past the snapshot
	cfg2.LLEvalBudget = 16 * 2 * 14
	cfg2.Observer = FuncObserver{Generation: func(gs GenStats) {
		if gs.Surr != nil && gs.Surr.Active {
			shifted = append(shifted, gs.Surr.ErrLB)
		}
	}}
	r, err := Restore(mkB, cfg2, st)
	if err != nil {
		t.Fatalf("same-shape market shift refused: %v", err)
	}
	for g := 0; g < 2; g++ {
		if !r.Step() {
			t.Fatalf("restored engine stopped at gen %d: %v", g, r.Err())
		}
	}
	if len(shifted) == 0 {
		t.Fatal("skipping not active after restore")
	}
	if shifted[0] <= 3*baseMean || shifted[0] <= 0.05 {
		t.Errorf("market shift did not spike surrogate LB error: first shifted gen %.4f vs baseline mean %.4f",
			shifted[0], baseMean)
	}
	t.Logf("baseline mean errlb %.4f over %d gens; post-shift errlb %.4f", baseMean, len(baseline), shifted[0])
}

// BenchmarkEngineStepSurrogate is BenchmarkEngineStep with skipping
// on: the lp_solves/gen metric shows how many exact solves the skip
// policy leaves in steady state (compare against EngineStep's).
func BenchmarkEngineStepSurrogate(b *testing.B) {
	mk := smallMarket(b)
	cfg := surrogateConfig(1)
	cfg.ULEvalBudget = 1 << 30
	cfg.LLEvalBudget = 1 << 30
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	e, err := NewEngine(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal(e.Err())
		}
	}
	b.StopTimer()
	solves := reg.Counter("bcpop.lp_solves").Load()
	b.ReportMetric(float64(solves)/float64(b.N), "lp_solves/gen")
	skips := reg.Counter("core.surrogate_skips").Load()
	b.ReportMetric(float64(skips)/float64(b.N), "skips/gen")
}
