package telemetry

import (
	"math"
	"sort"
)

// QuantileSketch is a deterministic fixed-memory streaming quantile
// estimator. Values are held as (value, weight) pairs; when the buffer
// fills it is re-summarized: sorted by value, then collapsed to
// capacity/2 representatives placed at evenly spaced mass midpoints of
// the weighted distribution, each carrying an equal share of the total
// weight. Each compaction perturbs ranks by at most one representative
// share, and because the stream at least doubles between compactions
// the accumulated rank error stays O(1/capacity) of the total count.
// Answers depend only on the insertion sequence — never on timing,
// goroutine scheduling or map order — which is what lets the engine
// publish %-gap quantiles without breaking its bit-reproducibility
// contract (values must still be fed in a deterministic order; the
// engine feeds them in pairing-index order).
//
// Exact count, min and max are tracked on the side, so Quantile(0) and
// Quantile(1) are always exact. For streams no longer than the capacity
// every quantile is exact.
type QuantileSketch struct {
	capacity int
	items    []qItem
	sorted   bool
	count    int64
	min, max float64
}

type qItem struct {
	v float64
	w float64
}

// DefaultSketchSize is the buffer capacity used when NewQuantileSketch
// is given a non-positive one: exact up to 512 values, ~1% rank error
// far beyond that.
const DefaultSketchSize = 512

// NewQuantileSketch returns an empty sketch with the given buffer
// capacity (values held before the first compaction).
func NewQuantileSketch(capacity int) *QuantileSketch {
	if capacity <= 0 {
		capacity = DefaultSketchSize
	}
	if capacity < 8 {
		capacity = 8
	}
	return &QuantileSketch{capacity: capacity}
}

// Reset empties the sketch for reuse without releasing its buffer.
func (s *QuantileSketch) Reset() {
	if s == nil {
		return
	}
	s.items = s.items[:0]
	s.sorted = false
	s.count = 0
	s.min, s.max = 0, 0
}

// Add records one value. NaN values are ignored (they have no place in
// an order statistic). A nil sketch ignores the update.
func (s *QuantileSketch) Add(x float64) {
	if s == nil || math.IsNaN(x) {
		return
	}
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.items = append(s.items, qItem{v: x, w: 1})
	s.sorted = false
	if len(s.items) >= s.capacity {
		s.compact()
	}
}

// compact halves the buffer: sort by value, then replace the weighted
// point set with capacity/2 equi-weight representatives, the j-th taken
// at the value covering mass (j+0.5)/k of the sorted distribution.
// Total weight is preserved.
func (s *QuantileSketch) compact() {
	s.sortItems()
	var total float64
	for _, it := range s.items {
		total += it.w
	}
	k := s.capacity / 2
	out := make([]qItem, 0, k)
	share := total / float64(k)
	idx := 0
	cum := 0.0
	for j := 0; j < k; j++ {
		target := (float64(j) + 0.5) * share
		for idx < len(s.items)-1 && cum+s.items[idx].w < target {
			cum += s.items[idx].w
			idx++
		}
		out = append(out, qItem{v: s.items[idx].v, w: share})
	}
	s.items = append(s.items[:0], out...)
	s.sorted = true
}

func (s *QuantileSketch) sortItems() {
	if s.sorted {
		return
	}
	sort.Slice(s.items, func(i, j int) bool { return s.items[i].v < s.items[j].v })
	s.sorted = true
}

// Count returns the number of values added; a nil sketch reads as zero.
func (s *QuantileSketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Min returns the smallest value added (exact; zero when empty).
func (s *QuantileSketch) Min() float64 {
	if s == nil {
		return 0
	}
	return s.min
}

// Max returns the largest value added (exact; zero when empty).
func (s *QuantileSketch) Max() float64 {
	if s == nil {
		return 0
	}
	return s.max
}

// Quantile returns an estimate of the q-quantile (q clamped to [0,1]).
// Quantile(0) and Quantile(1) return the exact min and max. An empty or
// nil sketch returns zero.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	s.sortItems()
	var total float64
	for _, it := range s.items {
		total += it.w
	}
	target := q * total
	cum := 0.0
	for _, it := range s.items {
		cum += it.w
		if cum >= target {
			return it.v
		}
	}
	return s.max
}
