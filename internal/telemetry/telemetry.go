// Package telemetry provides the observability primitives used across
// the repository: lock-free atomic counters, gauges, timers and
// fixed-bucket histograms, grouped into named registries, plus a
// schema-agnostic JSONL event writer and an HTTP endpoint (expvar +
// pprof + JSON snapshots) for live run introspection.
//
// Design rules:
//
//   - Hot paths pay nothing when telemetry is off. Every instrument is
//     nil-safe: a nil *Counter/*Gauge/*Timer/*Histogram ignores updates
//     and reads as zero, and a nil *Registry hands out nil instruments.
//     Instrumented code therefore keeps a single pointer it obtained at
//     setup time and updates it unconditionally — the disabled case is
//     one predictable nil check, no allocation, no branch on every
//     metric individually.
//   - Updates are lock-free (sync/atomic) so counters can be shared by
//     all evaluation workers without serializing the hot loop.
//   - Telemetry never touches RNG state or algorithm data, so a run is
//     bit-identical with and without instrumentation (the determinism
//     contract of internal/core is unaffected).
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. A nil counter ignores the update.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; a nil counter reads as zero.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level (e.g. current occupancy).
type Gauge struct{ bits atomic.Uint64 }

// Set stores x. A nil gauge ignores the update.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(x))
	}
}

// Load returns the current level; a nil gauge reads as zero.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates durations: an event count and a total. Mean() is
// the running average latency of the timed section.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe records one duration. A nil timer ignores the update.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.n.Add(1)
		t.ns.Add(int64(d))
	}
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Mean returns the average observed duration (zero before the first
// observation).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive
// upper edge of bucket i, and one extra overflow bucket catches values
// above the last bound. Updates are lock-free; the value sum uses a
// CAS loop (contention on it is negligible next to the bucket adds).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on empty or unsorted bounds — bucket layouts are
// static configuration, not data.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend")
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n bounds starting at start and growing by factor —
// the usual layout for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. A nil histogram ignores the update.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the current bucket counts. A nil histogram yields the
// zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
