package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromTarget is one labeled registry to render in Prometheus text
// exposition format. Name prefixes every metric (after sanitization),
// so targets with the same Name and different Labels merge into one
// metric family with one series per target — the shape carbond uses
// for per-job labels.
type PromTarget struct {
	Name     string            // metric-name prefix, e.g. "carbon" or "carbond_job"
	Labels   map[string]string // extra labels stamped on every series
	Registry *Registry         // nil renders nothing for this target
}

// WritePrometheus renders the targets in the Prometheus text exposition
// format (version 0.0.4), hand-rolled over Registry.Snapshot — no
// client library involved:
//
//   - counters      → TYPE counter
//   - gauges        → TYPE gauge
//   - timers        → TYPE summary: <name>_seconds_count / _seconds_sum
//   - histograms    → TYPE histogram: cumulative <name>_bucket{le=...},
//     an explicit le="+Inf" bucket, <name>_sum and <name>_count
//
// Metric names are sanitized to [a-zA-Z0-9_:] and label values escaped
// per the format spec. Families are emitted in sorted name order with
// exactly one HELP/TYPE header each, so output is deterministic and
// scrapes cleanly.
func WritePrometheus(w io.Writer, targets ...PromTarget) error {
	type series struct {
		target PromTarget
		value  any
	}
	families := map[string]*struct {
		orig string
		kind string
		ss   []series
	}{}
	names := []string{}
	for _, t := range targets {
		snap := t.Registry.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := snap[k]
			kind := promKind(v)
			if kind == "" {
				continue
			}
			full := promName(t.Name + "_" + k)
			if kind == "summary" {
				full += "_seconds"
			}
			fam, ok := families[full]
			if !ok {
				fam = &struct {
					orig string
					kind string
					ss   []series
				}{orig: t.Name + "/" + k, kind: kind}
				families[full] = fam
				names = append(names, full)
			}
			if fam.kind != kind {
				continue // name collision across incompatible kinds: keep the first
			}
			fam.ss = append(fam.ss, series{target: t, value: v})
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fam := families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s CARBON metric %s.\n# TYPE %s %s\n",
			name, promEscapeHelp(fam.orig), name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.ss {
			if err := writePromSeries(w, name, s.target.Labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// promKind maps a Snapshot value onto its exposition type.
func promKind(v any) string {
	switch v.(type) {
	case int64:
		return "counter"
	case float64:
		return "gauge"
	case map[string]int64:
		return "summary"
	case HistSnapshot:
		return "histogram"
	}
	return ""
}

func writePromSeries(w io.Writer, name string, labels map[string]string, v any) error {
	lbl := promLabels(labels)
	switch x := v.(type) {
	case int64:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, lbl, x)
		return err
	case float64:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbl, promFloat(x))
		return err
	case map[string]int64:
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, x["count"]); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, promFloat(float64(x["total_ns"])/1e9))
		return err
	case HistSnapshot:
		cum := int64(0)
		for i, bound := range x.Bounds {
			cum += x.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, promLabelsWith(labels, "le", promFloat(bound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, promLabelsWith(labels, "le", "+Inf"), x.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, promFloat(x.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, x.Count)
		return err
	}
	return nil
}

// promName sanitizes a dotted instrument name into the exposition
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelName sanitizes a label key into the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*. Unlike metric names (promName), label names
// may NOT contain ':' — colons are reserved for recording rules — so
// label keys get their own sanitizer rather than reusing promName,
// which used to leak colons into label names and produce output
// Prometheus refuses to scrape.
func promLabelName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabels renders {k="v",...} with keys sorted, or "" when empty.
func promLabels(labels map[string]string) string {
	return promLabelsWith(labels, "", "")
}

// promLabelsWith is promLabels plus one extra pair appended last (used
// for histogram le labels). extraKey=="" omits the extra pair.
func promLabelsWith(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(k))
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscapeLabel escapes a label value: backslash, double quote and
// line feed, per the exposition format.
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// promEscapeHelp escapes a HELP text: backslash and line feed only.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func promFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
