package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONL writes one JSON document per line — the run-log format emitted
// by core's trace observer and consumed by internal/exp and the CLIs.
// Emit is safe for concurrent use (island engines log from several
// goroutines); output is buffered, so call Flush (or Close) before
// reading the underlying file.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONL wraps w in a line-oriented JSON emitter. If w is also an
// io.Closer, Close will close it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit appends v as one JSON line. A nil emitter ignores the event.
func (j *JSONL) Emit(v any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(v)
}

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// DecodeLines parses a JSONL stream, invoking fn on every non-empty
// line's raw JSON. It stops at the first error.
func DecodeLines(r io.Reader, fn func(json.RawMessage) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		raw := make(json.RawMessage, len(line))
		copy(raw, line)
		if err := fn(raw); err != nil {
			return err
		}
	}
	return sc.Err()
}
