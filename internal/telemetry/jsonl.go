package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// JSONL writes one JSON document per line — the run-log format emitted
// by core's trace observer and consumed by internal/exp and the CLIs.
// Emit is safe for concurrent use (island engines log from several
// goroutines); output is buffered, so call Flush (or Close) before
// reading the underlying file — or enable AutoFlush to push every event
// as it is written.
type JSONL struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	c     io.Closer
	auto  bool
	fault func() error
}

// NewJSONL wraps w in a line-oriented JSON emitter. If w is also an
// io.Closer, Close will close it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// AutoFlush toggles flush-per-event. With it on, an abruptly killed
// process (SIGKILL, OOM) loses at most the line being written — the
// durability mode trace observers use, since one small write per
// generation is noise next to a generation's evaluation cost. It
// returns j for chaining.
func (j *JSONL) AutoFlush(on bool) *JSONL {
	if j != nil {
		j.mu.Lock()
		j.auto = on
		j.mu.Unlock()
	}
	return j
}

// SetFault installs (or, with nil, clears) a fault hook consulted at
// the top of every Emit; a non-nil return drops the event with that
// error before anything reaches the writer. Lets fault-injection runs
// exercise a failing trace sink without a broken io.Writer stand-in.
func (j *JSONL) SetFault(h func() error) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.fault = h
	j.mu.Unlock()
}

// Emit appends v as one JSON line. A nil emitter ignores the event.
func (j *JSONL) Emit(v any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fault != nil {
		if err := j.fault(); err != nil {
			return err
		}
	}
	if err := j.enc.Encode(v); err != nil {
		return err
	}
	if j.auto {
		return j.bw.Flush()
	}
	return nil
}

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// DecodeLines parses a JSONL stream, invoking fn on every non-empty
// line's raw JSON. It stops at the first error, including one from the
// stream's final line even if that line is unterminated.
func DecodeLines(r io.Reader, fn func(json.RawMessage) error) error {
	_, err := decodeLines(r, fn, false)
	return err
}

// DecodeLinesLenient is DecodeLines for streams that may have been cut
// off mid-write (a SIGKILLed emitter, a torn copy): an error from fn on
// the final line is tolerated — but only when that line is missing its
// terminating newline AND is not itself well-formed JSON, the signature
// of a truncated tail. It reports whether such a tail was dropped.
// Everything else still fails: mid-file corruption is corruption, not
// truncation, and a complete, syntactically valid final line that fn
// rejects (wrong schema, bad payload) is a real error the writer
// produced on purpose — dropping it would hide the corruption the
// caller asked fn to detect.
func DecodeLinesLenient(r io.Reader, fn func(json.RawMessage) error) (truncated bool, err error) {
	return decodeLines(r, fn, true)
}

func decodeLines(r io.Reader, fn func(json.RawMessage) error, lenient bool) (bool, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return false, err
		}
		final := false
		if atEOF {
			final = true // no newline on this chunk: the stream ended mid-line
		}
		line = bytes.TrimSuffix(line, []byte{'\n'})
		line = bytes.TrimSuffix(line, []byte{'\r'})
		if len(line) > 0 {
			raw := make(json.RawMessage, len(line))
			copy(raw, line)
			if ferr := fn(raw); ferr != nil {
				if lenient && final && !json.Valid(raw) {
					return true, nil
				}
				return false, ferr
			}
		}
		if atEOF {
			return false, nil
		}
	}
}
