package telemetry

import (
	"math"
	"testing"
)

func TestQuantileSketchExactSmall(t *testing.T) {
	s := NewQuantileSketch(128)
	for i := 100; i >= 1; i-- { // 1..100, fed in reverse
		s.Add(float64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("count %d, want 100", s.Count())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.9, 90}, {1, 100},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1 {
			t.Fatalf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSketchApproximate streams far more values than the buffer
// holds and checks the rank error stays small on a uniform ramp.
func TestQuantileSketchApproximate(t *testing.T) {
	s := NewQuantileSketch(256)
	n := 50_000
	for i := 0; i < n; i++ {
		// A deterministic scrambled order (multiplicative hash walk).
		v := float64((i*2654435761)%n) / float64(n)
		s.Add(v)
	}
	if s.Count() != int64(n) {
		t.Fatalf("count %d, want %d", s.Count(), n)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := s.Quantile(q)
		if math.Abs(got-q) > 0.05 {
			t.Fatalf("q%.2f = %v, want within 0.05", q, got)
		}
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Fatal("extremes are not exact")
	}
}

// TestQuantileSketchDeterministic: identical insertion sequences must
// produce identical estimates — the property the engine's determinism
// contract rides on.
func TestQuantileSketchDeterministic(t *testing.T) {
	build := func() *QuantileSketch {
		s := NewQuantileSketch(64)
		for i := 0; i < 10_000; i++ {
			s.Add(math.Sin(float64(i)))
		}
		return s
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%.1f differs between identical streams", q)
		}
	}
}

func TestQuantileSketchResetAndNil(t *testing.T) {
	s := NewQuantileSketch(32)
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("reset sketch not empty")
	}
	s.Add(7)
	if s.Quantile(0.5) != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Fatal("sketch unusable after reset")
	}
	s.Add(math.NaN())
	if s.Count() != 1 {
		t.Fatal("NaN was counted")
	}
	var nilSketch *QuantileSketch
	nilSketch.Add(1)
	nilSketch.Reset()
	if nilSketch.Quantile(0.5) != 0 || nilSketch.Count() != 0 {
		t.Fatal("nil sketch must read as zero")
	}
}
