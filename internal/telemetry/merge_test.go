package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// scrapeOf renders a registry through WritePrometheus and parses it
// back — the exact path federation takes over HTTP, minus the socket.
func scrapeOf(t *testing.T, worker, prefix string, reg *Registry) Scrape {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, PromTarget{Name: prefix, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseFamilies(&buf)
	if err != nil {
		t.Fatalf("parse %s scrape: %v", worker, err)
	}
	return Scrape{Worker: worker, Families: fams}
}

func TestParseFamiliesRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lp_solves").Add(42)
	reg.Gauge("queue_depth").Set(3.5)
	reg.Timer("gen").Observe(1500 * time.Millisecond)
	reg.Timer("gen").Observe(500 * time.Millisecond)
	reg.Histogram("wait_ms", 1, 10, 100).Observe(0.5)
	reg.Histogram("wait_ms", 1, 10, 100).Observe(55)
	reg.Histogram("wait_ms", 1, 10, 100).Observe(1e6) // overflow bucket

	sc := scrapeOf(t, "w0", "carbon", reg)

	ctr := FindFamily(sc.Families, "carbon_lp_solves")
	if ctr == nil || ctr.Kind != "counter" || len(ctr.Series) != 1 || ctr.Series[0].Value != 42 {
		t.Fatalf("counter family mangled: %+v", ctr)
	}
	g := FindFamily(sc.Families, "carbon_queue_depth")
	if g == nil || g.Kind != "gauge" || g.Series[0].Value != 3.5 {
		t.Fatalf("gauge family mangled: %+v", g)
	}
	tm := FindFamily(sc.Families, "carbon_gen_seconds")
	if tm == nil || tm.Kind != "summary" || tm.Series[0].Count != 2 || tm.Series[0].Sum != 2.0 {
		t.Fatalf("summary family mangled: %+v", tm)
	}
	h := FindFamily(sc.Families, "carbon_wait_ms")
	if h == nil || h.Kind != "histogram" {
		t.Fatalf("histogram family missing: %+v", h)
	}
	s := h.Series[0]
	if !boundsEqual(s.Bounds, []float64{1, 10, 100}) {
		t.Fatalf("bounds %v, want [1 10 100]", s.Bounds)
	}
	// Cumulative: one obs <=1, none in (1,10], one in (10,100], one overflow.
	if !boundsEqual(s.Buckets, []float64{1, 1, 2}) || s.Count != 3 {
		t.Fatalf("buckets %v count %v, want [1 1 2] 3", s.Buckets, s.Count)
	}
	if math.Abs(s.Sum-(0.5+55+1e6)) > 1e-9 {
		t.Fatalf("sum %v", s.Sum)
	}
}

func TestParseFamiliesEscapesAndLabels(t *testing.T) {
	text := "# HELP f_g CARBON metric f/g.\n" +
		"# TYPE f_g gauge\n" +
		"f_g{job=\"j1\",evil=\"a\\\\b\\\"c\\nd\"} 7\n" +
		"no_type_metric 1.5\n"
	fams, err := ParseFamilies(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	g := FindFamily(fams, "f_g")
	if g == nil || len(g.Series) != 1 {
		t.Fatalf("gauge not parsed: %+v", fams)
	}
	if got := g.Series[0].Labels["evil"]; got != "a\\b\"c\nd" {
		t.Fatalf("label unescape got %q", got)
	}
	u := FindFamily(fams, "no_type_metric")
	if u == nil || u.Kind != "untyped" || u.Series[0].Value != 1.5 {
		t.Fatalf("untyped sample mangled: %+v", u)
	}
}

func TestParseFamiliesRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"metric not_a_number\n",
		"# TYPE h histogram\nh_bucket{job=\"x\"} 3\n", // bucket without le
		"{\"json\": true}\n",
	} {
		if _, err := ParseFamilies(strings.NewReader(bad)); err == nil {
			t.Fatalf("parsed %q without error", bad)
		}
	}
}

func TestMergeSumsCountersAcrossWorkers(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("lp_solves").Add(10)
	regB.Counter("lp_solves").Add(32)
	regA.Timer("gen").Observe(time.Second)
	regB.Timer("gen").Observe(3 * time.Second)

	fams, err := Merge(scrapeOf(t, "w0", "carbon", regA), scrapeOf(t, "w1", "carbon", regB))
	if err != nil {
		t.Fatal(err)
	}
	ctr := FindFamily(fams, "carbon_lp_solves")
	if ctr == nil || len(ctr.Series) != 1 || ctr.Series[0].Value != 42 {
		t.Fatalf("counter sum: %+v", ctr)
	}
	if len(ctr.Series[0].Labels) != 0 {
		t.Fatalf("summed counter grew labels: %+v", ctr.Series[0].Labels)
	}
	sum := FindFamily(fams, "carbon_gen_seconds")
	if sum == nil || sum.Series[0].Count != 2 || sum.Series[0].Sum != 4.0 {
		t.Fatalf("summary sum: %+v", sum)
	}
}

func TestMergeKeepsGaugesPerWorker(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Gauge("queue_depth").Set(2)
	regB.Gauge("queue_depth").Set(5)

	fams, err := Merge(scrapeOf(t, "http://w0", "carbon", regA), scrapeOf(t, "http://w1", "carbon", regB))
	if err != nil {
		t.Fatal(err)
	}
	g := FindFamily(fams, "carbon_queue_depth")
	if g == nil || len(g.Series) != 2 {
		t.Fatalf("want 2 per-worker gauge series: %+v", g)
	}
	byWorker := map[string]float64{}
	for _, s := range g.Series {
		byWorker[s.Labels[WorkerLabel]] = s.Value
	}
	if byWorker["http://w0"] != 2 || byWorker["http://w1"] != 5 {
		t.Fatalf("per-worker gauges: %v", byWorker)
	}
}

func TestMergeHistogramBuckets(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	for _, v := range []float64{0.5, 20} {
		regA.Histogram("wait_ms", 1, 10, 100).Observe(v)
	}
	for _, v := range []float64{5, 500} {
		regB.Histogram("wait_ms", 1, 10, 100).Observe(v)
	}
	fams, err := Merge(scrapeOf(t, "w0", "carbon", regA), scrapeOf(t, "w1", "carbon", regB))
	if err != nil {
		t.Fatal(err)
	}
	h := FindFamily(fams, "carbon_wait_ms")
	if h == nil || len(h.Series) != 1 {
		t.Fatalf("histogram merge: %+v", h)
	}
	s := h.Series[0]
	// A: one <=1, one (10,100]. B: one (1,10], one overflow. Cumulative [1 2 4]... count 4.
	if !boundsEqual(s.Buckets, []float64{1, 2, 3}) || s.Count != 4 {
		t.Fatalf("merged buckets %v count %v, want [1 2 3] 4", s.Buckets, s.Count)
	}
	if math.Abs(s.Sum-(0.5+20+5+500)) > 1e-9 {
		t.Fatalf("merged sum %v", s.Sum)
	}
	if p90, ok := HistogramQuantile(s, 0.9); !ok || p90 != 100 {
		t.Fatalf("p90 of merged histogram = %v ok=%v, want 100 (overflow rank)", p90, ok)
	}
}

func TestMergeMismatchedBucketBoundsError(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Histogram("wait_ms", 1, 10, 100).Observe(5)
	regB.Histogram("wait_ms", 1, 50).Observe(5)
	_, err := Merge(scrapeOf(t, "w0", "carbon", regA), scrapeOf(t, "w1", "carbon", regB))
	if err == nil {
		t.Fatal("mismatched bucket bounds merged without error")
	}
	if !strings.Contains(err.Error(), "wait_ms") {
		t.Fatalf("error does not name the offending family: %v", err)
	}
}

func TestMergeKindConflictError(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("thing").Add(1)
	regB.Gauge("thing").Set(1)
	if _, err := Merge(scrapeOf(t, "w0", "carbon", regA), scrapeOf(t, "w1", "carbon", regB)); err == nil {
		t.Fatal("counter-vs-gauge kind conflict merged without error")
	}
}

// TestMergeHostileWorkerLabel pins the identity rule: a series arriving
// with its own "worker" label cannot impersonate another worker — the
// federator's stamp overwrites it on per-worker series, and on summed
// series the hostile label keeps it from polluting the clean aggregate
// (label sets must match exactly to sum).
func TestMergeHostileWorkerLabel(t *testing.T) {
	hostileGauge := Scrape{Worker: "w0", Families: []Family{{
		Name: "carbon_depth", Kind: "gauge",
		Series: []Series{{Labels: map[string]string{WorkerLabel: "w1"}, Value: 9}},
	}}}
	honest := Scrape{Worker: "w1", Families: []Family{{
		Name: "carbon_depth", Kind: "gauge",
		Series: []Series{{Value: 4}},
	}}}
	fams, err := Merge(hostileGauge, honest)
	if err != nil {
		t.Fatal(err)
	}
	g := FindFamily(fams, "carbon_depth")
	if g == nil || len(g.Series) != 2 {
		t.Fatalf("hostile merge shape: %+v", g)
	}
	vals := map[string]float64{}
	for _, s := range g.Series {
		vals[s.Labels[WorkerLabel]] = s.Value
	}
	if vals["w0"] != 9 {
		t.Fatalf("hostile worker label not overwritten by federator stamp: %v", vals)
	}
	if vals["w1"] != 4 {
		t.Fatalf("honest worker's series lost: %v", vals)
	}

	// Hostile label on a summed kind: the label-set identity keeps the
	// impostor series separate instead of corrupting the true total.
	hostileCtr := Scrape{Worker: "w0", Families: []Family{{
		Name: "carbon_solves", Kind: "counter",
		Series: []Series{{Labels: map[string]string{"job": "j1\"},evil=\"x"}, Value: 5}},
	}}}
	honestCtr := Scrape{Worker: "w1", Families: []Family{{
		Name: "carbon_solves", Kind: "counter",
		Series: []Series{{Labels: map[string]string{"job": "j1"}, Value: 7}},
	}}}
	fams, err = Merge(hostileCtr, honestCtr)
	if err != nil {
		t.Fatal(err)
	}
	ctr := FindFamily(fams, "carbon_solves")
	if ctr == nil || len(ctr.Series) != 2 {
		t.Fatalf("hostile counter collapsed into honest series: %+v", ctr)
	}
	// The merged set must re-render without producing unparseable text
	// (label escaping contains the injection attempt).
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, fams); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFamilies(&buf); err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
}

// TestWriteFamiliesRoundTrip pins render → parse → render stability:
// the federated endpoint must serve text that scrapes like first-party
// WritePrometheus output.
func TestWriteFamiliesRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(1.25)
	reg.Histogram("c_ms", 1, 2).Observe(1.5)
	sc := scrapeOf(t, "w0", "carbon", reg)

	var first bytes.Buffer
	if err := WriteFamilies(&first, sc.Families); err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseFamilies(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteFamilies(&second, reparsed); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("render not stable:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	s := Series{
		Bounds:  []float64{10, 20, 40},
		Buckets: []float64{0, 10, 10},
		Count:   10,
		Sum:     150,
	}
	// All 10 observations sit in (10,20]: p50 interpolates to 15.
	if p50, ok := HistogramQuantile(s, 0.5); !ok || math.Abs(p50-15) > 1e-9 {
		t.Fatalf("p50 = %v, want 15", p50)
	}
	if _, ok := HistogramQuantile(Series{}, 0.5); ok {
		t.Fatal("empty series produced a quantile")
	}
}
