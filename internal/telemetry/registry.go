package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of instruments. Lookup is
// get-or-create under a mutex (setup cost only); the instruments
// themselves stay lock-free. A nil *Registry is the "telemetry off"
// registry: it hands out nil instruments, whose updates are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds and return the
// existing histogram).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a point-in-time copy of every instrument, keyed by
// name. Counters map to int64, gauges to float64, timers to a
// {count, total_ns, mean_ns} map and histograms to HistSnapshot —
// everything JSON-marshalable, which is what expvar and the /metrics
// endpoint serve.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	for name, t := range r.timers {
		out[name] = map[string]int64{
			"count":    t.Count(),
			"total_ns": int64(t.Total()),
			"mean_ns":  int64(t.Mean()),
		}
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines — the
// human-readable dump used by tests and end-of-run summaries.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var err error
		switch v := snap[name].(type) {
		case map[string]int64:
			_, err = fmt.Fprintf(w, "%s count=%d total=%v mean=%v\n", name,
				v["count"], time.Duration(v["total_ns"]), time.Duration(v["mean_ns"]))
		case HistSnapshot:
			_, err = fmt.Fprintf(w, "%s count=%d sum=%g\n", name, v.Count, v.Sum)
		default:
			_, err = fmt.Fprintf(w, "%s %v\n", name, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar exposes the registry under the given expvar name (as a
// Func re-snapshotting on every read). Republishing an already-taken
// name is a no-op rather than the expvar panic, so tests and repeated
// runs in one process stay safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
