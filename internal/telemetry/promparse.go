package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Family is one metric family parsed from (or destined for) the
// Prometheus text exposition format — the wire model of metrics
// federation. WritePrometheus renders registries straight to text for
// a single process; a federating router instead parses each worker's
// text into []Family (ParseFamilies), merges them (Merge) and renders
// the aggregate (WriteFamilies). The JSON tags make a Family set
// directly servable as the /v1/fleet/metrics rollup.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"` // counter | gauge | summary | histogram | untyped
	Series []Series `json:"series"`
}

// Series is one labeled sample set within a family. Counter, gauge and
// untyped series carry Value; summary series carry Count and Sum;
// histogram series carry Bounds (ascending finite upper edges), the
// cumulative Buckets counts aligned with them, and Count/Sum (Count is
// also the implicit le="+Inf" bucket).
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`

	Value float64 `json:"value,omitempty"`

	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []float64 `json:"buckets,omitempty"`
	Count   float64   `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// labelKey is the series' identity inside a family: its label set
// serialized with sorted keys. Histogram bucket samples drop "le"
// before keying, so one histogram's bucket/sum/count lines group into
// one Series.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x00')
		b.WriteString(labels[k])
		b.WriteByte('\x00')
	}
	return b.String()
}

// ParseFamilies reads a Prometheus text exposition stream (format
// 0.0.4 — what WritePrometheus emits) back into its family model.
// Samples with no preceding TYPE line become "untyped" families;
// histogram and summary component samples (_bucket/_sum/_count) are
// grouped back into structured series. Malformed lines fail the parse:
// a federator must never mis-add samples it half-understood.
func ParseFamilies(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	fams := map[string]*Family{}
	var order []string
	get := func(name, kind string) *Family {
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name, Kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	// series lookup within a family, creating on first sight.
	series := func(f *Family, labels map[string]string) *Series {
		key := labelKey(labels)
		for i := range f.Series {
			if labelKey(f.Series[i].Labels) == key {
				return &f.Series[i]
			}
		}
		f.Series = append(f.Series, Series{Labels: labels})
		return &f.Series[len(f.Series)-1]
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) == 4 && fields[1] == "TYPE" {
				kind := strings.TrimSpace(fields[3])
				f := get(fields[2], kind)
				f.Kind = kind
			} else if len(fields) == 4 && fields[1] == "HELP" {
				f := get(fields[2], "untyped")
				f.Help = unescapeHelp(fields[3])
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: prom line %d: %w", lineNo, err)
		}
		// Attribute the sample: exact family name first, then the
		// histogram/summary component suffixes against a declared family.
		if f, ok := fams[name]; ok && f.Kind != "histogram" && f.Kind != "summary" {
			s := series(f, labels)
			s.Value = value
			continue
		}
		if base, suffix, ok := componentOf(fams, name); ok {
			f := fams[base]
			switch suffix {
			case "bucket":
				le, hasLE := labels["le"]
				if !hasLE {
					return nil, fmt.Errorf("telemetry: prom line %d: bucket sample without le", lineNo)
				}
				rest := make(map[string]string, len(labels)-1)
				for k, v := range labels {
					if k != "le" {
						rest[k] = v
					}
				}
				s := series(f, rest)
				if le == "+Inf" {
					s.Count = value
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("telemetry: prom line %d: bad le %q", lineNo, le)
				}
				s.Bounds = append(s.Bounds, bound)
				s.Buckets = append(s.Buckets, value)
			case "sum":
				series(f, labels).Sum = value
			case "count":
				series(f, labels).Count = value
			}
			continue
		}
		// No TYPE line seen: an untyped scalar.
		f := get(name, "untyped")
		if f.Kind == "" {
			f.Kind = "untyped"
		}
		s := series(f, labels)
		s.Value = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, 0, len(order))
	for _, name := range order {
		f := fams[name]
		sortSeries(f.Series)
		// The exposition format guarantees ascending le within a series,
		// but sort defensively — merge relies on aligned bounds.
		for i := range f.Series {
			sortBuckets(&f.Series[i])
		}
		out = append(out, *f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// componentOf resolves a histogram/summary component sample name
// ("x_bucket", "x_sum", "x_count") to its declared family.
func componentOf(fams map[string]*Family, name string) (base, suffix string, ok bool) {
	for _, suf := range []string{"bucket", "sum", "count"} {
		b, found := strings.CutSuffix(name, "_"+suf)
		if !found {
			continue
		}
		if f, exists := fams[b]; exists && (f.Kind == "histogram" || f.Kind == "summary") {
			return b, suf, true
		}
	}
	return "", "", false
}

func sortSeries(ss []Series) {
	sort.Slice(ss, func(a, b int) bool { return labelKey(ss[a].Labels) < labelKey(ss[b].Labels) })
}

func sortBuckets(s *Series) {
	if len(s.Bounds) < 2 || sort.Float64sAreSorted(s.Bounds) {
		return
	}
	idx := make([]int, len(s.Bounds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.Bounds[idx[a]] < s.Bounds[idx[b]] })
	bounds := make([]float64, len(idx))
	buckets := make([]float64, len(idx))
	for i, j := range idx {
		bounds[i], buckets[i] = s.Bounds[j], s.Buckets[j]
	}
	s.Bounds, s.Buckets = bounds, buckets
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels map[string]string
	if rest[0] == '{' {
		end, lbls, err := parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
		labels = lbls
		rest = rest[end:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; we never emit
	// one, but tolerate it by taking the first field only.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// parseLabels decodes a {k="v",...} block starting at s[0]=='{',
// returning the index one past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("malformed labels %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("malformed label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// WriteFamilies renders families in the text exposition format,
// matching WritePrometheus byte conventions (one HELP/TYPE header per
// family, sorted series, escaped labels) so federated output scrapes
// exactly like first-party output.
func WriteFamilies(w io.Writer, fams []Family) error {
	sorted := append([]Family(nil), fams...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Name < sorted[b].Name })
	for _, f := range sorted {
		help := f.Help
		if help == "" {
			help = "CARBON federated metric."
		}
		kind := f.Kind
		if kind == "" {
			kind = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.Name, promEscapeHelp(help), f.Name, kind); err != nil {
			return err
		}
		ss := append([]Series(nil), f.Series...)
		sortSeries(ss)
		for _, s := range ss {
			if err := writeFamilySeries(w, f.Name, kind, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFamilySeries(w io.Writer, name, kind string, s Series) error {
	lbl := promLabels(s.Labels)
	switch kind {
	case "histogram":
		for i, bound := range s.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n",
				name, promLabelsWith(s.Labels, "le", promFloat(bound)), promFloat(s.Buckets[i])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n",
			name, promLabelsWith(s.Labels, "le", "+Inf"), promFloat(s.Count)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, promFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %s\n", name, lbl, promFloat(s.Count))
		return err
	case "summary":
		if _, err := fmt.Fprintf(w, "%s_count%s %s\n", name, lbl, promFloat(s.Count)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, promFloat(s.Sum))
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbl, promFloat(s.Value))
		return err
	}
}
