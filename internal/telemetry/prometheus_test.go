package telemetry

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGoldenFormat pins the exposition format byte-for-byte:
// HELP/TYPE headers, name sanitization, sorted families, label
// escaping, summary and histogram encodings.
func TestPrometheusGoldenFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.generations").Add(42)
	reg.Gauge("par.occupancy").Set(0.75)
	reg.Timer("core.breed").Observe(1500 * time.Millisecond)
	reg.Timer("core.breed").Observe(500 * time.Millisecond)
	h := reg.Histogram("bcpop.cost", 1, 2, 4)
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	err := WritePrometheus(&b, PromTarget{
		Name:     "carbon",
		Labels:   map[string]string{"job": `j1"x\y` + "\n"},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP carbon_bcpop_cost CARBON metric carbon/bcpop.cost.
# TYPE carbon_bcpop_cost histogram
carbon_bcpop_cost_bucket{job="j1\"x\\y\n",le="1"} 1
carbon_bcpop_cost_bucket{job="j1\"x\\y\n",le="2"} 1
carbon_bcpop_cost_bucket{job="j1\"x\\y\n",le="4"} 2
carbon_bcpop_cost_bucket{job="j1\"x\\y\n",le="+Inf"} 3
carbon_bcpop_cost_sum{job="j1\"x\\y\n"} 103.5
carbon_bcpop_cost_count{job="j1\"x\\y\n"} 3
# HELP carbon_core_breed_seconds CARBON metric carbon/core.breed.
# TYPE carbon_core_breed_seconds summary
carbon_core_breed_seconds_count{job="j1\"x\\y\n"} 2
carbon_core_breed_seconds_sum{job="j1\"x\\y\n"} 2
# HELP carbon_core_generations CARBON metric carbon/core.generations.
# TYPE carbon_core_generations counter
carbon_core_generations{job="j1\"x\\y\n"} 42
# HELP carbon_par_occupancy CARBON metric carbon/par.occupancy.
# TYPE carbon_par_occupancy gauge
carbon_par_occupancy{job="j1\"x\\y\n"} 0.75
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestPrometheusMultiTargetFamilies: two targets sharing a Name merge
// into single families (one HELP/TYPE header, one series per target) —
// the per-job label shape carbond serves.
func TestPrometheusMultiTargetFamilies(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("job.gens").Add(3)
	r2.Counter("job.gens").Add(8)
	var b strings.Builder
	err := WritePrometheus(&b,
		PromTarget{Name: "carbond_job", Labels: map[string]string{"job": "j000001"}, Registry: r1},
		PromTarget{Name: "carbond_job", Labels: map[string]string{"job": "j000002"}, Registry: r2},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE carbond_job_job_gens counter") != 1 {
		t.Fatalf("want exactly one TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `carbond_job_job_gens{job="j000001"} 3`) ||
		!strings.Contains(out, `carbond_job_job_gens{job="j000002"} 8`) {
		t.Fatalf("missing per-job series:\n%s", out)
	}
}

// TestPrometheusHistogramMonotonic checks cumulative bucket counts never
// decrease and end at the total count, for an adversarial value spread.
func TestPrometheusHistogramMonotonic(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", ExpBuckets(0.001, 4, 8)...)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%13) * 0.037)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, PromTarget{Name: "t", Registry: reg}); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	var total, bucketInf int64
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "t_lat_bucket"):
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < last {
				t.Fatalf("bucket counts decreased: %q after %d", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				bucketInf = v
			}
		case strings.HasPrefix(line, "t_lat_count"):
			total, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if total != 1000 || bucketInf != total {
		t.Fatalf("+Inf bucket %d, count %d, want both 1000", bucketInf, total)
	}
}

// TestPrometheusEndpointRace scrapes /metrics/prometheus while writers
// hammer every instrument kind — the -race gate for the exposition path.
func TestPrometheusEndpointRace(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(map[string]*Registry{"live": reg}))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hot.counter")
			g := reg.Gauge("hot.gauge")
			tm := reg.Timer("hot.timer")
			h := reg.Histogram("hot.hist", 1, 10, 100)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				tm.Observe(time.Duration(i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		resp, err := srv.Client().Get(srv.URL + "/metrics/prometheus")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		if i > 2 && !strings.Contains(string(body), "live_hot_counter") {
			t.Fatalf("scrape %d missing counter:\n%s", i, body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPromHostileLabels pins the output for adversarial label NAMES and
// values. Label names have a stricter grammar than metric names — no
// colon — and used to be sanitized with promName, which let "run:id"
// through as a label name Prometheus rejects at scrape time. Values get
// the full backslash/newline/quote escaping in the order the exposition
// format 0.0.4 requires (backslash first, or the escapes themselves get
// re-escaped).
func TestPromHostileLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(1)
	var b strings.Builder
	err := WritePrometheus(&b, PromTarget{
		Name: "carbond",
		Labels: map[string]string{
			"run:id":   `back\slash`,
			"9job.val": "line1\nline2",
			"ok_name":  `quote"both\` + "\n",
			"":         "empty-key",
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP carbond_hits CARBON metric carbond/hits.
# TYPE carbond_hits counter
carbond_hits{_="empty-key",_job_val="line1\nline2",ok_name="quote\"both\\\n",run_id="back\\slash"} 1
`
	if b.String() != want {
		t.Fatalf("hostile-label exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
	for _, tc := range []struct{ in, want string }{
		{"run:id", "run_id"}, // colon legal in metric names, not label names
		{"9lives", "_lives"}, // no leading digit
		{"a.b-c", "a_b_c"},   // dots and dashes flattened
		{"_ok_9", "_ok_9"},   // already legal
		{"", "_"},            // never emit an empty label name
		{"héllo", "h_llo"},   // non-ASCII flattened
	} {
		if got := promLabelName(tc.in); got != tc.want {
			t.Fatalf("promLabelName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPromNameSanitization covers the metric-name grammar edge cases.
func TestPromNameSanitization(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"core.generations", "core_generations"},
		{"9lives", "_lives"},
		{"a-b c/d", "a_b_c_d"},
		{"", "_"},
		{"ok_name:x9", "ok_name:x9"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Fatalf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	var b strings.Builder
	if err := WritePrometheus(&b, PromTarget{Name: "x", Registry: nil}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}
