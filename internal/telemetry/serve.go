package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Handler exposes live introspection over HTTP:
//
//	/metrics              JSON snapshot of every passed registry
//	/metrics/prometheus   the same registries in Prometheus text format
//	/debug/vars           expvar (includes registries published via PublishExpvar)
//	/debug/pprof/         the full pprof suite (profile, heap, trace, ...)
//
// The pprof handlers are wired explicitly onto a private mux, so
// importing this package never mutates http.DefaultServeMux.
func Handler(regs map[string]*Registry) http.Handler {
	return DynamicHandler(func() map[string]*Registry { return regs }, nil)
}

// DynamicHandler is Handler with late-bound sources: snap is re-invoked
// on every request (so the registry set can grow while serving — e.g.
// carbond jobs appearing), and prom, when non-nil, supplies the labeled
// targets for /metrics/prometheus. A nil prom derives unlabeled targets
// from snap, one per registry, named by its map key.
func DynamicHandler(snap func() map[string]*Registry, prom func() []PromTarget) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		regs := snap()
		out := make(map[string]map[string]any, len(regs))
		for name, r := range regs {
			out[name] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, _ *http.Request) {
		var targets []PromTarget
		if prom != nil {
			targets = prom()
		} else {
			regs := snap()
			names := make([]string, 0, len(regs))
			for name := range regs {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				targets = append(targets, PromTarget{Name: name, Registry: regs[name]})
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, targets...)
	})
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. ":8080") in a
// background goroutine, publishing every registry to expvar under its
// map key first. It returns the bound address (useful with ":0") and a
// stop function.
func Serve(addr string, regs map[string]*Registry) (string, func() error, error) {
	for name, r := range regs {
		r.PublishExpvar(name)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(regs)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
