package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler exposes live introspection over HTTP:
//
//	/metrics       JSON snapshot of every passed registry
//	/debug/vars    expvar (includes registries published via PublishExpvar)
//	/debug/pprof/  the full pprof suite (profile, heap, trace, ...)
//
// The pprof handlers are wired explicitly onto a private mux, so
// importing this package never mutates http.DefaultServeMux.
func Handler(regs map[string]*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := make(map[string]map[string]any, len(regs))
		for name, r := range regs {
			snap[name] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(snap)
	})
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. ":8080") in a
// background goroutine, publishing every registry to expvar under its
// map key first. It returns the bound address (useful with ":0") and a
// stop function.
func Serve(addr string, regs map[string]*Registry) (string, func() error, error) {
	for name, r := range regs {
		r.PublishExpvar(name)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(regs)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
