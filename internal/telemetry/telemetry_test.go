package telemetry_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carbon/internal/par"
	"carbon/internal/telemetry"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Load() != 4 {
		t.Fatalf("counter = %d, want 4", c.Load())
	}
	if reg.Counter("c") != c {
		t.Fatal("lookup is not get-or-create")
	}
	g := reg.Gauge("g")
	g.Set(2.5)
	if g.Load() != 2.5 {
		t.Fatalf("gauge = %v", g.Load())
	}
	tm := reg.Timer("t")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 40*time.Millisecond || tm.Mean() != 20*time.Millisecond {
		t.Fatalf("timer count=%d total=%v mean=%v", tm.Count(), tm.Total(), tm.Mean())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var reg *telemetry.Registry // telemetry off
	c := reg.Counter("x")
	g := reg.Gauge("x")
	tm := reg.Timer("x")
	h := reg.Histogram("x", 1, 2)
	c.Add(5)
	g.Set(1)
	tm.Observe(time.Second)
	h.Observe(1.5)
	if c.Load() != 0 || g.Load() != 0 || tm.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if got := reg.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := telemetry.NewHistogram(1, 10, 100)
	for _, x := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(x)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 2} // (≤1)=0.5,1  (≤10)=5  (≤100)=50  overflow=500,5000
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 5556.5 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := telemetry.ExpBuckets(10, 2, 4)
	want := []float64{10, 20, 40, 80}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
}

// TestConcurrentUpdatesFromWorkers exercises shared instruments from
// all par workers simultaneously — the island/evaluator sharing
// pattern. Run under -race (make race) this is the data-race check for
// the whole metrics layer.
func TestConcurrentUpdatesFromWorkers(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("hits")
	tm := reg.Timer("lat")
	h := reg.Histogram("v", telemetry.ExpBuckets(1, 10, 6)...)
	const n = 4096
	par.ForEach(n, 8, func(i int) {
		c.Inc()
		tm.Observe(time.Duration(i))
		h.Observe(float64(i % 1000))
		// Racing get-or-create lookups must also be safe.
		reg.Counter("hits").Add(0)
	})
	if c.Load() != n {
		t.Fatalf("counter = %d, want %d", c.Load(), n)
	}
	if tm.Count() != n {
		t.Fatalf("timer count = %d, want %d", tm.Count(), n)
	}
	if s := h.Snapshot(); s.Count != n {
		t.Fatalf("hist count = %d, want %d", s.Count, n)
	}
}

func TestSnapshotAndWriteText(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("a").Add(7)
	reg.Timer("b").Observe(time.Millisecond)
	reg.Histogram("h", 1, 2).Observe(1.5)
	snap := reg.Snapshot()
	if snap["a"] != int64(7) {
		t.Fatalf("snapshot a = %v", snap["a"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a 7", "b count=1", "h count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := telemetry.NewJSONL(&buf)
	type ev struct {
		K string `json:"k"`
		N int    `json:"n"`
	}
	for i := 0; i < 3; i++ {
		if err := j.Emit(ev{K: "gen", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []ev
	err := telemetry.DecodeLines(&buf, func(raw json.RawMessage) error {
		var e ev
		if err := json.Unmarshal(raw, &e); err != nil {
			return err
		}
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].N != 2 {
		t.Fatalf("decoded %v", got)
	}
	var nilJ *telemetry.JSONL
	if err := nilJ.Emit(ev{}); err != nil {
		t.Fatal("nil emitter should no-op")
	}
}

func TestHandlerServesMetricsExpvarAndPprof(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("core.generations").Add(42)
	reg.PublishExpvar("telemetry_test_reg")
	reg.PublishExpvar("telemetry_test_reg") // republish must not panic
	srv := httptest.NewServer(telemetry.Handler(map[string]*telemetry.Registry{"run": reg}))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	metrics := get("/metrics")
	var parsed map[string]map[string]any
	if err := json.Unmarshal([]byte(metrics), &parsed); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, metrics)
	}
	if parsed["run"]["core.generations"] != float64(42) {
		t.Fatalf("/metrics = %v", parsed)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "telemetry_test_reg") {
		t.Fatalf("/debug/vars missing published registry:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
}

func TestForEachTimedOccupancy(t *testing.T) {
	reg := telemetry.NewRegistry()
	wm := par.NewWaveMetrics(reg, "wave")
	par.ForEachTimed(64, 4, wm, func(i int) { time.Sleep(100 * time.Microsecond) })
	if wm.Waves.Load() != 1 || wm.Items.Load() != 64 {
		t.Fatalf("waves=%d items=%d", wm.Waves.Load(), wm.Items.Load())
	}
	if wm.Busy.Count() != 64 {
		t.Fatalf("busy observations = %d", wm.Busy.Count())
	}
	if occ := wm.Occupancy(); occ <= 0 {
		t.Fatalf("occupancy = %v", occ)
	}
	// nil metrics must behave exactly like ForEach.
	total := 0
	par.ForEachTimed(10, 1, nil, func(i int) { total += i })
	if total != 45 {
		t.Fatalf("nil-metrics ForEachTimed total = %d", total)
	}
	if par.NewWaveMetrics(nil, "x") != nil {
		t.Fatal("NewWaveMetrics(nil) should be nil")
	}
}
