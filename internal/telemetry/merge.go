package telemetry

import (
	"fmt"
	"sort"
)

// Scrape is one worker's parsed metrics, tagged with the identity the
// federator knows it by (its base URL or a short name). Worker becomes
// the "worker" label value on series that stay per-worker.
type Scrape struct {
	Worker   string   `json:"worker"`
	Families []Family `json:"families"`
}

// WorkerLabel is the label Merge stamps on per-worker series. A
// hostile series arriving with its own "worker" label is overwritten —
// the federator's identity assignment wins, so one worker can never
// impersonate (or hide behind) another in the aggregate.
const WorkerLabel = "worker"

// Merge federates scrapes from several workers into one family set —
// the core of fleet metrics federation:
//
//   - counters and summaries: series with identical label sets are
//     summed across workers (counts and sums independently), so fleet
//     totals conserve worker totals.
//   - histograms: bucket counts, sum and count are summed per series.
//     Bucket bounds must align exactly across workers; mismatched
//     layouts ERROR rather than mis-add — a histogram merged across
//     different bucket edges is silently wrong, which is worse than
//     absent.
//   - gauges (and untyped samples): levels from different workers must
//     not be added, so each series is kept per-worker under a
//     worker="<name>" label.
//
// A family whose kind differs across workers is an error for the same
// reason as bucket misalignment: there is no honest way to combine a
// counter with a gauge. Families and series in the result are sorted,
// so federated output is deterministic given the scrape set.
func Merge(scrapes ...Scrape) ([]Family, error) {
	agg := map[string]*famAgg{}
	var order []string

	for _, sc := range scrapes {
		for _, f := range sc.Families {
			fa, ok := agg[f.Name]
			if !ok {
				fa = &famAgg{
					fam:    &Family{Name: f.Name, Help: f.Help, Kind: f.Kind},
					origin: sc.Worker,
					series: map[string]*Series{},
				}
				agg[f.Name] = fa
				order = append(order, f.Name)
			}
			if fa.fam.Kind != f.Kind {
				return nil, fmt.Errorf("telemetry: merge: family %q is %s on %s but %s on %s",
					f.Name, fa.fam.Kind, fa.origin, f.Kind, sc.Worker)
			}
			for _, s := range f.Series {
				switch f.Kind {
				case "counter":
					t := mergedSeries(fa, s.Labels, nil)
					t.Value += s.Value
				case "summary":
					t := mergedSeries(fa, s.Labels, nil)
					t.Count += s.Count
					t.Sum += s.Sum
				case "histogram":
					t := mergedSeries(fa, s.Labels, nil)
					if t.Bounds == nil {
						t.Bounds = append([]float64(nil), s.Bounds...)
						t.Buckets = make([]float64, len(s.Buckets))
					}
					if !boundsEqual(t.Bounds, s.Bounds) {
						return nil, fmt.Errorf(
							"telemetry: merge: histogram %q bucket bounds on %s do not align with %s — refusing to mis-add",
							f.Name, sc.Worker, fa.origin)
					}
					for i := range s.Buckets {
						t.Buckets[i] += s.Buckets[i]
					}
					t.Count += s.Count
					t.Sum += s.Sum
				default: // gauge, untyped: one series per worker
					t := mergedSeries(fa, s.Labels, map[string]string{WorkerLabel: sc.Worker})
					t.Value = s.Value
				}
			}
		}
	}

	out := make([]Family, 0, len(order))
	for _, name := range order {
		fa := agg[name]
		keys := make([]string, 0, len(fa.series))
		for k := range fa.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fa.fam.Series = append(fa.fam.Series, *fa.series[k])
		}
		out = append(out, *fa.fam)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// famAgg accumulates one family across scrapes.
type famAgg struct {
	fam    *Family
	origin string // worker that established the kind, for error messages
	series map[string]*Series
}

// mergedSeries returns the aggregate series for the given label set,
// with extra labels overlaid (the per-worker stamp), creating it on
// first sight. Overlay wins on collision — see WorkerLabel.
func mergedSeries(fa *famAgg, labels, extra map[string]string) *Series {
	merged := labels
	if len(extra) > 0 {
		merged = make(map[string]string, len(labels)+len(extra))
		for k, v := range labels {
			merged[k] = v
		}
		for k, v := range extra {
			merged[k] = v
		}
	}
	key := labelKey(merged)
	s, ok := fa.series[key]
	if !ok {
		var copied map[string]string
		if len(merged) > 0 {
			copied = make(map[string]string, len(merged))
			for k, v := range merged {
				copied[k] = v
			}
		}
		s = &Series{Labels: copied}
		fa.series[key] = s
	}
	return s
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FindFamily returns the named family, or nil — the lookup alert rules
// and rollup consumers use.
func FindFamily(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// HistogramQuantile estimates quantile q (in [0,1]) from a merged
// histogram series by linear interpolation inside the owning bucket —
// the standard Prometheus histogram_quantile estimator. The lowest
// bucket interpolates from zero; ranks landing in the overflow bucket
// report the highest finite bound (there is no upper edge to
// interpolate toward). Returns false when the series has no
// observations or no buckets.
func HistogramQuantile(s Series, q float64) (float64, bool) {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * s.Count
	if rank > s.Buckets[len(s.Buckets)-1] {
		return s.Bounds[len(s.Bounds)-1], true // overflow bucket
	}
	prevCum, prevBound := 0.0, 0.0
	for i, cum := range s.Buckets {
		if rank <= cum {
			inBucket := cum - prevCum
			if inBucket <= 0 {
				return s.Bounds[i], true
			}
			return prevBound + (s.Bounds[i]-prevBound)*(rank-prevCum)/inBucket, true
		}
		prevCum, prevBound = cum, s.Bounds[i]
	}
	return s.Bounds[len(s.Bounds)-1], true
}
