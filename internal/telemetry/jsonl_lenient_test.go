package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func collectLines(t *testing.T, src string, lenient bool) (n int, truncated bool, err error) {
	t.Helper()
	fn := func(raw json.RawMessage) error {
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			return err
		}
		n++
		return nil
	}
	if lenient {
		truncated, err = DecodeLinesLenient(strings.NewReader(src), fn)
		return
	}
	err = DecodeLines(strings.NewReader(src), fn)
	return
}

// TestDecodeLinesLenientTruncatedTail: a stream cut mid-line (the
// signature a SIGKILLed emitter leaves) parses up to the cut, reports
// the truncation, and returns no error.
func TestDecodeLinesLenientTruncatedTail(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2}` + "\n" + `{"gen":3,"best":12.`
	n, truncated, err := collectLines(t, src, true)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("truncated tail not reported")
	}
	if n != 2 {
		t.Fatalf("parsed %d lines, want 2", n)
	}

	// The strict decoder must still reject the same stream.
	if _, _, err := collectLines(t, src, false); err == nil {
		t.Fatal("strict DecodeLines accepted a truncated tail")
	}
}

// TestDecodeLinesLenientMidFileCorruption: garbage on an interior line
// is corruption, not truncation — lenient mode still fails.
func TestDecodeLinesLenientMidFileCorruption(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2,"bro` + "\n" + `{"gen":3}` + "\n"
	if _, _, err := collectLines(t, src, true); err == nil {
		t.Fatal("interior corruption tolerated")
	}
}

// TestDecodeLinesLenientCompleteFinalLineNoNewline: a final line that is
// valid JSON but lost only its newline is accepted, not dropped.
func TestDecodeLinesLenientCompleteFinalLineNoNewline(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2}`
	n, truncated, err := collectLines(t, src, true)
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if n != 2 {
		t.Fatalf("parsed %d lines, want 2", n)
	}
}

// TestDecodeLinesLenientTruncatedThenAppended: a torn tail that a later
// writer appended after (crash, restart, append without repair) turns
// the tear into an interior corrupt line — `{"gen":3,"best":12.` fused
// with the next record. The lenient reader must report it, not parse
// past it: the trace's generation sequence is broken at that point.
func TestDecodeLinesLenientTruncatedThenAppended(t *testing.T) {
	torn := `{"gen":1}` + "\n" + `{"gen":2,"best":12.`
	appended := torn + `{"gen":3}` + "\n" + `{"gen":4}` + "\n"
	if _, _, err := collectLines(t, appended, true); err == nil {
		t.Fatal("truncated-then-appended trace tolerated")
	}
	// Sanity: before the append the same tear was tolerable truncation.
	n, truncated, err := collectLines(t, torn, true)
	if err != nil || !truncated || n != 1 {
		t.Fatalf("pre-append tear: n=%d truncated=%v err=%v", n, truncated, err)
	}
}

// TestDecodeLinesLenientValidFinalLineRejectedByFn pins the EOF-only
// tolerance boundary: an unterminated final line that is syntactically
// complete JSON is NOT a truncation signature, so an error from fn
// (wrong schema, bad payload) must surface instead of being dropped.
func TestDecodeLinesLenientValidFinalLineRejectedByFn(t *testing.T) {
	bad := errors.New("schema mismatch")
	fn := func(raw json.RawMessage) error {
		var v struct {
			Gen int `json:"gen"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			return err
		}
		if v.Gen == 0 {
			return bad
		}
		return nil
	}
	src := `{"gen":1}` + "\n" + `{"wrong":true}`
	truncated, err := DecodeLinesLenient(strings.NewReader(src), fn)
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want the fn rejection", err)
	}
	if truncated {
		t.Fatal("a complete final line reported as truncated")
	}
}

// TestJSONLSetFault: an installed fault hook drops events with its
// error before they reach the writer; clearing it restores emission.
func TestJSONLSetFault(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf).AutoFlush(true)
	boom := errors.New("sink down")
	j.SetFault(func() error { return boom })
	if err := j.Emit(map[string]int{"i": 1}); !errors.Is(err, boom) {
		t.Fatalf("Emit = %v, want the injected error", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("faulted emit wrote %d bytes", buf.Len())
	}
	j.SetFault(nil)
	if err := j.Emit(map[string]int{"i": 2}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("cleared fault hook still suppressing writes")
	}
	var nilJ *JSONL
	nilJ.SetFault(func() error { return boom }) // must not panic
}

func TestDecodeLinesBlankAndCRLF(t *testing.T) {
	src := "\n" + `{"a":1}` + "\r\n" + "\n" + `{"b":2}` + "\n"
	n, truncated, err := collectLines(t, src, true)
	if err != nil || truncated || n != 2 {
		t.Fatalf("n=%d truncated=%v err=%v", n, truncated, err)
	}
}

// TestJSONLAutoFlush: with AutoFlush on, every emitted event is visible
// in the sink without Flush — so a kill between generations loses
// nothing already emitted.
func TestJSONLAutoFlush(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf).AutoFlush(true)
	for i := 0; i < 3; i++ {
		if err := j.Emit(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(buf.String(), "\n"); got != i+1 {
			t.Fatalf("after emit %d the sink holds %d lines", i, got)
		}
	}
	// Default (no AutoFlush): buffered until Flush.
	var buf2 bytes.Buffer
	j2 := NewJSONL(&buf2)
	if err := j2.Emit(map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() != 0 {
		t.Fatal("unflushed emitter wrote through")
	}
	if err := j2.Flush(); err != nil || buf2.Len() == 0 {
		t.Fatalf("flush failed: %v", err)
	}
	var nilJ *JSONL
	if nilJ.AutoFlush(true) != nil || nilJ.Emit(1) != nil {
		t.Fatal("nil emitter must no-op")
	}
	if errors.Is(nilJ.Close(), errors.New("x")) {
		t.Fatal("unreachable")
	}
}
