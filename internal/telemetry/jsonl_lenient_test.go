package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func collectLines(t *testing.T, src string, lenient bool) (n int, truncated bool, err error) {
	t.Helper()
	fn := func(raw json.RawMessage) error {
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			return err
		}
		n++
		return nil
	}
	if lenient {
		truncated, err = DecodeLinesLenient(strings.NewReader(src), fn)
		return
	}
	err = DecodeLines(strings.NewReader(src), fn)
	return
}

// TestDecodeLinesLenientTruncatedTail: a stream cut mid-line (the
// signature a SIGKILLed emitter leaves) parses up to the cut, reports
// the truncation, and returns no error.
func TestDecodeLinesLenientTruncatedTail(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2}` + "\n" + `{"gen":3,"best":12.`
	n, truncated, err := collectLines(t, src, true)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("truncated tail not reported")
	}
	if n != 2 {
		t.Fatalf("parsed %d lines, want 2", n)
	}

	// The strict decoder must still reject the same stream.
	if _, _, err := collectLines(t, src, false); err == nil {
		t.Fatal("strict DecodeLines accepted a truncated tail")
	}
}

// TestDecodeLinesLenientMidFileCorruption: garbage on an interior line
// is corruption, not truncation — lenient mode still fails.
func TestDecodeLinesLenientMidFileCorruption(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2,"bro` + "\n" + `{"gen":3}` + "\n"
	if _, _, err := collectLines(t, src, true); err == nil {
		t.Fatal("interior corruption tolerated")
	}
}

// TestDecodeLinesLenientCompleteFinalLineNoNewline: a final line that is
// valid JSON but lost only its newline is accepted, not dropped.
func TestDecodeLinesLenientCompleteFinalLineNoNewline(t *testing.T) {
	src := `{"gen":1}` + "\n" + `{"gen":2}`
	n, truncated, err := collectLines(t, src, true)
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if n != 2 {
		t.Fatalf("parsed %d lines, want 2", n)
	}
}

func TestDecodeLinesBlankAndCRLF(t *testing.T) {
	src := "\n" + `{"a":1}` + "\r\n" + "\n" + `{"b":2}` + "\n"
	n, truncated, err := collectLines(t, src, true)
	if err != nil || truncated || n != 2 {
		t.Fatalf("n=%d truncated=%v err=%v", n, truncated, err)
	}
}

// TestJSONLAutoFlush: with AutoFlush on, every emitted event is visible
// in the sink without Flush — so a kill between generations loses
// nothing already emitted.
func TestJSONLAutoFlush(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf).AutoFlush(true)
	for i := 0; i < 3; i++ {
		if err := j.Emit(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(buf.String(), "\n"); got != i+1 {
			t.Fatalf("after emit %d the sink holds %d lines", i, got)
		}
	}
	// Default (no AutoFlush): buffered until Flush.
	var buf2 bytes.Buffer
	j2 := NewJSONL(&buf2)
	if err := j2.Emit(map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() != 0 {
		t.Fatal("unflushed emitter wrote through")
	}
	if err := j2.Flush(); err != nil || buf2.Len() == 0 {
		t.Fatalf("flush failed: %v", err)
	}
	var nilJ *JSONL
	if nilJ.AutoFlush(true) != nil || nilJ.Emit(1) != nil {
		t.Fatal("nil emitter must no-op")
	}
	if errors.Is(nilJ.Close(), errors.New("x")) {
		t.Fatal("unreachable")
	}
}
