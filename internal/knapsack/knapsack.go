// Package knapsack is the covering substrate's mirror image: the
// *unflipped* Multidimensional Knapsack Problem the paper's instances
// were derived from (§V-A takes OR-library MKP files and turns every ≤
// into ≥). It exists to demonstrate that the GP hyper-heuristic
// machinery generalizes beyond the paper's lower level: the same Table I
// operator set and terminal shape drive a packing greedy instead of a
// covering greedy, with the %-gap measured against the LP relaxation's
// *upper* bound
//
//	gap%(x) = 100 · (UB(x) − A(x)) / UB(x)
//
// (maximization flips Eq. 1's direction). The Burke et al. GP
// hyper-heuristics line the paper builds on (§IV-A) reports exactly this
// cutting/packing use case.
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"carbon/internal/gp"
	"carbon/internal/lp"
	"carbon/internal/orlib"
)

// Instance is one MKP: max p·x s.t. W·x ≤ cap, x binary.
type Instance struct {
	P    []float64   // profits, length M
	W    [][]float64 // N×M weights (row per resource)
	Cap  []float64   // capacities, length N
	Cols [][]float64 // M×N column view (derived)
}

// New validates and builds the column cache.
func New(p []float64, w [][]float64, cap []float64) (*Instance, error) {
	in := &Instance{P: p, W: w, Cap: cap}
	if err := in.validate(); err != nil {
		return nil, err
	}
	in.buildCols()
	return in, nil
}

// FromMKP adapts a parsed/generated OR-library instance.
func FromMKP(m *orlib.MKP) (*Instance, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return New(m.Profit, m.W, m.Cap)
}

// M returns the item count; N the resource count.
func (in *Instance) M() int { return len(in.P) }

// N returns the number of resource constraints.
func (in *Instance) N() int { return len(in.Cap) }

func (in *Instance) validate() error {
	m, n := len(in.P), len(in.Cap)
	if m == 0 || n == 0 {
		return errors.New("knapsack: empty instance")
	}
	if len(in.W) != n {
		return fmt.Errorf("knapsack: %d weight rows, want %d", len(in.W), n)
	}
	for k, row := range in.W {
		if len(row) != m {
			return fmt.Errorf("knapsack: row %d has %d entries, want %d", k, len(row), m)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("knapsack: bad weight w[%d][%d] = %v", k, j, v)
			}
		}
	}
	for j, p := range in.P {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("knapsack: bad profit p[%d] = %v", j, p)
		}
	}
	for k, c := range in.Cap {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("knapsack: bad capacity cap[%d] = %v", k, c)
		}
	}
	return nil
}

func (in *Instance) buildCols() {
	m, n := in.M(), in.N()
	flat := make([]float64, m*n)
	in.Cols = make([][]float64, m)
	for j := 0; j < m; j++ {
		col := flat[j*n : (j+1)*n]
		for k := 0; k < n; k++ {
			col[k] = in.W[k][j]
		}
		in.Cols[j] = col
	}
}

// SelectionFeasible reports whether the packing respects every capacity.
func (in *Instance) SelectionFeasible(x []bool) bool {
	for k, row := range in.W {
		used := 0.0
		for j, sel := range x {
			if sel {
				used += row[j]
			}
		}
		if used > in.Cap[k]+1e-9 {
			return false
		}
	}
	return true
}

// SelectionProfit returns the packed profit.
func (in *Instance) SelectionProfit(x []bool) float64 {
	total := 0.0
	for j, sel := range x {
		if sel {
			total += in.P[j]
		}
	}
	return total
}

// Relaxation carries the LP data: the upper bound and the Table-I-style
// terminals (duals per resource, relaxed solution per item).
type Relaxation struct {
	UB     float64
	Dual   []float64
	XBar   []float64
	Status lp.Status
}

// Relax solves the LP relaxation max p·x, W·x ≤ cap, 0 ≤ x ≤ 1.
func (in *Instance) Relax() (*Relaxation, error) {
	m, n := in.M(), in.N()
	c := make([]float64, m)
	for j := range c {
		c[j] = -in.P[j] // maximize via negated minimization
	}
	rel := make([]lp.Relation, n)
	for k := range rel {
		rel[k] = lp.LE
	}
	up := make([]float64, m)
	for j := range up {
		up[j] = 1
	}
	sol, err := lp.Solve(&lp.Problem{C: c, A: in.W, Rel: rel, B: in.Cap,
		Lo: make([]float64, m), Up: up})
	if err != nil {
		return nil, err
	}
	duals := make([]float64, n)
	for k, y := range sol.Dual {
		duals[k] = -y // flip back to the maximization convention (≥ 0)
	}
	return &Relaxation{UB: -sol.Obj, Dual: duals, XBar: sol.X, Status: sol.Status}, nil
}

// Gap returns the maximization gap 100·(UB − value)/UB, the packing
// analogue of the paper's Eq. 1.
func Gap(value, ub float64) float64 {
	if ub <= 1e-12 {
		if value <= 1e-12 {
			return 0
		}
		return 100 * value
	}
	return 100 * (ub - value) / ub
}

// GreedyResult is one packing run.
type GreedyResult struct {
	X      []bool
	Profit float64
	Added  int
}

// GreedyByScore packs items in descending score order, skipping any item
// that would violate a capacity — the packing mirror of the covering
// sweep. It always terminates feasible (the empty packing is feasible).
func (in *Instance) GreedyByScore(scores []float64) GreedyResult {
	m, n := in.M(), in.N()
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	slack := append([]float64(nil), in.Cap...)
	x := make([]bool, m)
	res := GreedyResult{X: x}
	for _, j := range order {
		col := in.Cols[j]
		fits := true
		for k := 0; k < n; k++ {
			if col[k] > slack[k]+1e-9 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		x[j] = true
		res.Profit += in.P[j]
		res.Added++
		for k := 0; k < n; k++ {
			slack[k] -= col[k]
		}
	}
	return res
}

// Terms is the packing terminal set, mirroring covering.TableITerms:
// profit, weight, capacity, dual, relaxed value.
var Terms = []string{"p", "w", "cap", "d", "xbar"}

// Set returns the GP primitive set for packing heuristics.
func Set() *gp.Set {
	return &gp.Set{Ops: gp.TableIOps(), Terms: append([]string(nil), Terms...)}
}

// TreeScorer evaluates a GP tree into per-item packing scores,
// aggregating over resources exactly like the covering scorer:
// score(j) = Σₖ tree(pⱼ, wⱼᵏ, capᵏ, d_k, x̄ⱼ).
type TreeScorer struct {
	Set *gp.Set
	in  *Instance
	rx  *Relaxation
	env [5]float64
}

// NewTreeScorer binds a scorer to an instance and its relaxation.
func NewTreeScorer(set *gp.Set, in *Instance, rx *Relaxation) *TreeScorer {
	return &TreeScorer{Set: set, in: in, rx: rx}
}

// Score fills scores[j] for every item.
func (ts *TreeScorer) Score(tree gp.Tree, scores []float64) {
	in, rx := ts.in, ts.rx
	n := in.N()
	for j := range scores {
		col := in.Cols[j]
		ts.env[0] = in.P[j]
		ts.env[4] = rx.XBar[j]
		total := 0.0
		for k := 0; k < n; k++ {
			ts.env[1] = col[k]
			ts.env[2] = in.Cap[k]
			ts.env[3] = rx.Dual[k]
			total += tree.Eval(ts.Set, ts.env[:])
		}
		scores[j] = total
	}
}

// ApplyHeuristic scores with the tree and packs greedily.
func (ts *TreeScorer) ApplyHeuristic(tree gp.Tree) GreedyResult {
	scores := make([]float64, ts.in.M())
	ts.Score(tree, scores)
	return ts.in.GreedyByScore(scores)
}

// SolveExact finds a provably optimal packing by LP-based branch and
// bound (test oracle for small instances). maxNodes caps the search;
// Optimal reports whether the proof completed.
func (in *Instance) SolveExact(maxNodes int) (x []bool, profit float64, optimal bool) {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	m, n := in.M(), in.N()
	c := make([]float64, m)
	for j := range c {
		c[j] = -in.P[j]
	}
	rel := make([]lp.Relation, n)
	for k := range rel {
		rel[k] = lp.LE
	}
	lo := make([]float64, m)
	up := make([]float64, m)
	for j := range up {
		up[j] = 1
	}
	// Incumbent: density greedy.
	scores := make([]float64, m)
	for j := 0; j < m; j++ {
		wsum := 0.0
		for k := 0; k < n; k++ {
			wsum += in.Cols[j][k] / math.Max(in.Cap[k], 1)
		}
		scores[j] = in.P[j] / math.Max(wsum, 1e-9)
	}
	inc := in.GreedyByScore(scores)
	bestX := append([]bool(nil), inc.X...)
	bestP := inc.Profit

	nodes := 0
	proven := true
	var dfs func()
	dfs = func() {
		if nodes >= maxNodes {
			proven = false
			return
		}
		nodes++
		sol, err := lp.Solve(&lp.Problem{C: c, A: in.W, Rel: rel, B: in.Cap, Lo: lo, Up: up})
		if err != nil || sol.Status == lp.Infeasible {
			return
		}
		if sol.Status != lp.Optimal {
			proven = false
			return
		}
		ub := -sol.Obj
		if ub <= bestP+1e-9 {
			return
		}
		branch, frac := -1, 0.0
		for j := 0; j < m; j++ {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > 1e-6 && f > frac {
				branch, frac = j, f
			}
		}
		if branch < 0 {
			bestP = ub
			for j := 0; j < m; j++ {
				bestX[j] = sol.X[j] > 0.5
			}
			return
		}
		lo[branch], up[branch] = 1, 1
		dfs()
		lo[branch], up[branch] = 0, 0
		dfs()
		lo[branch], up[branch] = 0, 1
	}
	dfs()
	return bestX, bestP, proven
}
