package knapsack

import (
	"math"
	"testing"

	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
)

// tinyKnap: item 0 (p=10, w=5), item 1 (p=6, w=3), item 2 (p=5, w=3),
// capacity 6: optimum picks items 1+2 (p=11) over item 0 (p=10).
func tinyKnap(t *testing.T) *Instance {
	t.Helper()
	in, err := New(
		[]float64{10, 6, 5},
		[][]float64{{5, 3, 3}},
		[]float64{6},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func randomKnap(t testing.TB, r *rng.Rand, m, n int) *Instance {
	t.Helper()
	mkp, err := orlib.GenerateMKP(r, m, n, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	in, err := FromMKP(&mkp)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := New([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := New([]float64{-1}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("negative profit accepted")
	}
}

func TestFeasibilityAndProfit(t *testing.T) {
	in := tinyKnap(t)
	if !in.SelectionFeasible([]bool{false, true, true}) {
		t.Fatal("items 1+2 fit in capacity 6")
	}
	if in.SelectionFeasible([]bool{true, true, false}) {
		t.Fatal("items 0+1 weigh 8 > 6")
	}
	if got := in.SelectionProfit([]bool{false, true, true}); got != 11 {
		t.Fatalf("profit %v", got)
	}
}

func TestExactTiny(t *testing.T) {
	in := tinyKnap(t)
	x, p, optimal := in.SolveExact(0)
	if !optimal || p != 11 {
		t.Fatalf("exact = %v profit %v", x, p)
	}
	if x[0] || !x[1] || !x[2] {
		t.Fatalf("exact packing %v", x)
	}
}

func TestRelaxUpperBounds(t *testing.T) {
	r := rng.New(141)
	for trial := 0; trial < 15; trial++ {
		in := randomKnap(t, r, 12, 3)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		_, p, optimal := in.SolveExact(0)
		if !optimal {
			t.Fatal("exact failed")
		}
		if rx.UB < p-1e-6 {
			t.Fatalf("trial %d: LP upper bound %v below optimum %v", trial, rx.UB, p)
		}
		for k, d := range rx.Dual {
			if d < -1e-9 {
				t.Fatalf("dual %d = %v should be ≥ 0 in max convention", k, d)
			}
		}
		for _, xb := range rx.XBar {
			if xb < -1e-9 || xb > 1+1e-9 {
				t.Fatalf("x̄ = %v", xb)
			}
		}
	}
}

func TestGreedyAlwaysFeasible(t *testing.T) {
	r := rng.New(143)
	for trial := 0; trial < 30; trial++ {
		in := randomKnap(t, r, 30, 5)
		scores := make([]float64, in.M())
		for j := range scores {
			scores[j] = r.Range(-5, 5)
		}
		res := in.GreedyByScore(scores)
		if !in.SelectionFeasible(res.X) {
			t.Fatal("greedy packed an infeasible selection")
		}
		if math.Abs(res.Profit-in.SelectionProfit(res.X)) > 1e-9 {
			t.Fatal("profit accounting broke")
		}
	}
}

func TestGapDirection(t *testing.T) {
	if g := Gap(90, 100); math.Abs(g-10) > 1e-12 {
		t.Fatalf("Gap(90,100) = %v", g)
	}
	if g := Gap(100, 100); g != 0 {
		t.Fatalf("Gap(100,100) = %v", g)
	}
	if g := Gap(0, 0); g != 0 {
		t.Fatalf("Gap(0,0) = %v", g)
	}
}

func TestDensityTreeBeatsAntiTree(t *testing.T) {
	// The profit-per-dual-weighted-load tree should pack far better than
	// a constant-score tree (index order).
	r := rng.New(147)
	set := Set()
	density := gp.MustParse(set, "(% p (* w d))")
	flat := gp.MustParse(set, "(- cap cap)")
	wins := 0
	for trial := 0; trial < 15; trial++ {
		in := randomKnap(t, r, 40, 5)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		ts := NewTreeScorer(set, in, rx)
		d := ts.ApplyHeuristic(density)
		f := ts.ApplyHeuristic(flat)
		if d.Profit > f.Profit {
			wins++
		}
	}
	if wins < 10 {
		t.Fatalf("density tree won only %d/15", wins)
	}
}

func TestEvolvePackingHeuristic(t *testing.T) {
	// A short GP run must find a heuristic whose mean gap on held-out
	// instances is small — the machinery generalizes to packing.
	r := rng.New(149)
	set := Set()
	type data struct {
		in *Instance
		rx *Relaxation
	}
	load := func(indices []int) []data {
		var out []data
		for _, i := range indices {
			mkp, err := orlib.GenerateMKP(rng.New(uint64(1000+i)), 30, 5, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			in, err := FromMKP(&mkp)
			if err != nil {
				t.Fatal(err)
			}
			rx, err := in.Relax()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, data{in, rx})
		}
		return out
	}
	train := load([]int{0, 1})
	test := load([]int{5, 6, 7})
	meanGap := func(tree gp.Tree, ds []data) float64 {
		total := 0.0
		for _, d := range ds {
			ts := NewTreeScorer(set, d.in, d.rx)
			res := ts.ApplyHeuristic(tree)
			total += Gap(res.Profit, d.rx.UB)
		}
		return total / float64(len(ds))
	}

	const popSize, gens = 24, 12
	lim := gp.DefaultLimits()
	pop := make([]gp.Tree, popSize)
	for i := range pop {
		pop[i] = set.Ramped(r, 1, 4)
	}
	best := pop[0]
	bestFit := math.Inf(1)
	fit := make([]float64, popSize)
	for g := 0; g < gens; g++ {
		for i := range pop {
			fit[i] = meanGap(pop[i], train)
			if fit[i] < bestFit {
				bestFit, best = fit[i], pop[i].Clone()
			}
		}
		better := func(i, j int) bool { return fit[i] < fit[j] }
		next := []gp.Tree{best.Clone()}
		pick := func() gp.Tree {
			bi := r.Intn(popSize)
			c := r.Intn(popSize)
			if better(c, bi) {
				bi = c
			}
			return pop[bi]
		}
		for len(next) < popSize {
			if r.Bool(0.85) {
				c1, c2 := gp.OnePointCrossover(r, set, pick(), pick(), lim)
				next = append(next, c1)
				if len(next) < popSize {
					next = append(next, c2)
				}
			} else {
				next = append(next, gp.UniformMutate(r, set, pick(), 3, lim))
			}
		}
		pop = next
	}
	testGap := meanGap(best, test)
	if testGap > 20 {
		t.Fatalf("evolved packing heuristic test gap %v%% not credible", testGap)
	}
}
