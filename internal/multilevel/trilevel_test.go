package multilevel

import (
	"math"
	"testing"

	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

func testTriMarket(t testing.TB) *TriMarket {
	t.Helper()
	tm, err := NewTriMarketFromClass(orlib.Class{N: 60, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNewTriMarketValidation(t *testing.T) {
	in, err := orlib.GenerateCovering(orlib.Class{N: 30, M: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTriMarket(nil, 2, 2); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := NewTriMarket(in, 0, 2); err == nil {
		t.Fatal("LA=0 accepted")
	}
	if _, err := NewTriMarket(in, 15, 15); err == nil {
		t.Fatal("LA+LB=M accepted")
	}
	if _, err := NewTriMarket(in, 3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPolicySetValid(t *testing.T) {
	s := PolicySet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Terms) != 5 {
		t.Fatalf("policy terminals: %v", s.Terms)
	}
}

func TestApplyPolicyClampsAndResponds(t *testing.T) {
	tm := testTriMarket(t)
	set := PolicySet()
	// A constant policy prices every bundle the same; a c0 policy tracks
	// the template cost.
	constPolicy := gp.MustParse(set, "(+ 1 1)") // price 2 everywhere
	prices := make([]float64, tm.LB)
	priceA := make([]float64, tm.LA)
	tm.ApplyPolicy(set, constPolicy, priceA, prices)
	for _, p := range prices {
		if p != 2 {
			t.Fatalf("constant policy gave %v", p)
		}
	}
	// A huge policy output must clamp to CapB.
	big := gp.MustParse(set, "(* (* cbar cbar) cbar)")
	tm.ApplyPolicy(set, big, priceA, prices)
	for _, p := range prices {
		if p > tm.CapB()+1e-9 {
			t.Fatalf("policy output %v above cap %v", p, tm.CapB())
		}
		if p < 0 {
			t.Fatalf("negative price %v", p)
		}
	}
	// The abar terminal must see A's mean price.
	echo := gp.MustParse(set, "abar")
	for j := range priceA {
		priceA[j] = 3
	}
	tm.ApplyPolicy(set, echo, priceA, prices)
	for _, p := range prices {
		if math.Abs(p-3) > 1e-9 {
			t.Fatalf("abar policy gave %v, want 3", p)
		}
	}
}

func TestEvaluatorChain(t *testing.T) {
	tm := testTriMarket(t)
	ev, err := NewEvaluator(tm)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	priceA := tm.BoundsA().RandomVector(r)
	policy := gp.MustParse(ev.PolicySetRef(), "cbar") // price at competitor mean
	cust := gp.MustParse(ev.CustomerSetRef(), "(% (* q d) c)")
	out, err := ev.Eval(priceA, policy, cust)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("chain produced infeasible basket")
	}
	if out.GapPct < -1e-9 || out.GapPct > 100 {
		t.Fatalf("gap %v", out.GapPct)
	}
	if out.RevenueA < 0 || out.RevenueB < 0 {
		t.Fatalf("negative revenue: %v %v", out.RevenueA, out.RevenueB)
	}
	if len(out.PriceB) != tm.LB {
		t.Fatalf("PriceB length %d", len(out.PriceB))
	}
	if ev.Evals != 1 {
		t.Fatalf("eval count %d", ev.Evals)
	}
}

func TestEvalRejectsWrongLengths(t *testing.T) {
	tm := testTriMarket(t)
	ev, err := NewEvaluator(tm)
	if err != nil {
		t.Fatal(err)
	}
	policy := gp.MustParse(ev.PolicySetRef(), "cbar")
	cust := gp.MustParse(ev.CustomerSetRef(), "c")
	if _, err := ev.Eval([]float64{1}, policy, cust); err == nil {
		t.Fatal("wrong-length priceA accepted")
	}
}

func TestCheaperMiddlePolicyGetsBought(t *testing.T) {
	// A policy that undercuts the competitor mean should put more B
	// bundles into the basket than one pricing at the cap.
	tm := testTriMarket(t)
	ev, err := NewEvaluator(tm)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	priceA := tm.BoundsA().RandomVector(r)
	cust := gp.MustParse(ev.CustomerSetRef(), "(% (* q d) c)")
	cheap := gp.MustParse(ev.PolicySetRef(), "(% cbar (+ 1 1))")  // half the mean
	expensive := gp.MustParse(ev.PolicySetRef(), "(+ cbar cbar)") // the cap
	oc, err := ev.Eval(priceA, cheap, cust)
	if err != nil {
		t.Fatal(err)
	}
	oe, err := ev.Eval(priceA, expensive, cust)
	if err != nil {
		t.Fatal(err)
	}
	if oc.RevenueB == 0 && oe.RevenueB > 0 {
		t.Fatalf("undercutting earned 0 while cap pricing earned %v", oe.RevenueB)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.PopSize = 1 },
		func(c *Config) { c.Sample = 0 },
		func(c *Config) { c.Budget = 10 },
		func(c *Config) { c.Elites = 99 },
		func(c *Config) { c.CrossProb, c.MutProb = 0.9, 0.2 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRunTriLevel(t *testing.T) {
	tm := testTriMarket(t)
	cfg := DefaultConfig()
	cfg.PopSize = 8
	cfg.Budget = 800
	res, err := Run(tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations")
	}
	if res.Evals > cfg.Budget {
		t.Fatalf("budget exceeded: %d", res.Evals)
	}
	if len(res.BestPriceA) != tm.LA {
		t.Fatalf("priceA length %d", len(res.BestPriceA))
	}
	if res.BestPolicy == "" || res.BestCust == "" {
		t.Fatal("missing evolved programs")
	}
	if res.BestGapPct < 0 || math.IsInf(res.BestGapPct, 0) {
		t.Fatalf("gap %v", res.BestGapPct)
	}
	if m := stats.Monotonicity(res.ACurve.Y, +1); m != 1 {
		t.Fatalf("A archive curve not monotone: %v", m)
	}
	if m := stats.Monotonicity(res.GapCurve.Y, -1); m != 1 {
		t.Fatalf("best-gap-seen curve not monotone: %v", m)
	}
}

func TestRunDeterministic(t *testing.T) {
	tm := testTriMarket(t)
	cfg := DefaultConfig()
	cfg.PopSize = 8
	cfg.Budget = 500
	cfg.Seed = 11
	a, err := Run(tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRevenueA != b.BestRevenueA || a.BestPolicy != b.BestPolicy ||
		a.BestGapPct != b.BestGapPct {
		t.Fatal("same seed diverged")
	}
}
