package multilevel

import (
	"errors"
	"fmt"
	"math"

	"carbon/internal/archive"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

// ChainMarket generalizes TriMarket to an arbitrary pricing chain: the
// leader owns the first group of bundles, then D middle players price
// their groups in sequence (each observing everything upstream), and a
// rational customer covers from the whole market. TriMarket is the
// D = 1 case; the paper's BCPOP is D = 0.
//
// Each middle player's reaction is a GP pricing policy over per-bundle
// features (PolicyTerms); the "abar" slot carries the mean of all
// *upstream* prices (leader plus earlier middles), so deeper levels see
// the accumulated pricing climate they react to.
type ChainMarket struct {
	template *covering.Instance
	groups   []int // groups[0] = leader bundles, groups[1..] = middles
	offsets  []int // column offset of each group
	boundsA  ga.Bounds
	capB     float64
	feat     [][]feature // per middle level, per bundle in that group
}

// NewChainMarket slices the instance into leader, D middle groups and
// competitors. groups must leave at least one competitor column.
func NewChainMarket(in *covering.Instance, groups []int) (*ChainMarket, error) {
	if in == nil {
		return nil, errors.New("multilevel: nil instance")
	}
	if len(groups) < 1 {
		return nil, errors.New("multilevel: need at least the leader group")
	}
	total := 0
	for i, g := range groups {
		if g <= 0 {
			return nil, fmt.Errorf("multilevel: group %d has size %d", i, g)
		}
		total += g
	}
	if total >= in.M() {
		return nil, fmt.Errorf("multilevel: groups cover %d of %d columns; no competitors left", total, in.M())
	}
	if !in.FullSelectionFeasible() {
		return nil, errors.New("multilevel: market cannot cover the requirements")
	}
	meanComp := 0.0
	for j := total; j < in.M(); j++ {
		meanComp += in.C[j]
	}
	meanComp /= float64(in.M() - total)
	meanReq := 0.0
	for _, b := range in.B {
		meanReq += b
	}
	meanReq /= float64(in.N())

	cm := &ChainMarket{
		template: in,
		groups:   append([]int(nil), groups...),
		capB:     2 * meanComp,
	}
	cm.offsets = make([]int, len(groups))
	off := 0
	for i, g := range groups {
		cm.offsets[i] = off
		off += g
	}
	lo := make([]float64, groups[0])
	up := make([]float64, groups[0])
	for j := range up {
		up[j] = cm.capB
	}
	cm.boundsA = ga.Bounds{Lo: lo, Up: up}

	cm.feat = make([][]feature, len(groups)-1)
	for lvl := 1; lvl < len(groups); lvl++ {
		fs := make([]feature, groups[lvl])
		for j := 0; j < groups[lvl]; j++ {
			col := in.Cols[cm.offsets[lvl]+j]
			qbar := 0.0
			for _, v := range col {
				qbar += v
			}
			qbar /= float64(in.N())
			fs[j] = feature{in.C[cm.offsets[lvl]+j], qbar, meanReq, meanComp, 0}
		}
		cm.feat[lvl-1] = fs
	}
	return cm, nil
}

// Depth returns the number of middle levels D.
func (cm *ChainMarket) Depth() int { return len(cm.groups) - 1 }

// LeaderSize returns the leader's price-vector length.
func (cm *ChainMarket) LeaderSize() int { return cm.groups[0] }

// BoundsA returns the leader's price box.
func (cm *ChainMarket) BoundsA() ga.Bounds { return cm.boundsA }

// ChainOutcome is one full chain evaluation: the customer data plus one
// revenue per player (index 0 = leader, 1..D = middles).
type ChainOutcome struct {
	Revenues []float64
	LLCost   float64
	GapPct   float64
	Feasible bool
}

// ChainEvaluator runs full chain evaluations against one market.
// Not safe for concurrent use.
type ChainEvaluator struct {
	cm        *ChainMarket
	relaxer   *covering.Relaxer
	policySet *gp.Set
	custSet   *gp.Set
	costs     []float64
	scores    []float64
	// Evals counts bottom-level evaluations (the chain's unit of work).
	Evals int
}

// NewChainEvaluator prepares an evaluator with the default sets.
func NewChainEvaluator(cm *ChainMarket) (*ChainEvaluator, error) {
	relaxer, err := covering.NewRelaxer(cm.template)
	if err != nil {
		return nil, err
	}
	return &ChainEvaluator{
		cm:        cm,
		relaxer:   relaxer,
		policySet: PolicySet(),
		custSet:   covering.TableISet(),
		costs:     make([]float64, cm.template.M()),
		scores:    make([]float64, cm.template.M()),
	}, nil
}

// Eval cascades the chain: leader prices, then each middle policy in
// order (seeing the mean of all upstream prices), then the customer's
// tree-driven greedy.
func (ce *ChainEvaluator) Eval(priceA []float64, policies []gp.Tree, cust gp.Tree) (ChainOutcome, error) {
	cm := ce.cm
	if len(priceA) != cm.groups[0] {
		return ChainOutcome{}, fmt.Errorf("multilevel: got %d leader prices, want %d", len(priceA), cm.groups[0])
	}
	if len(policies) != cm.Depth() {
		return ChainOutcome{}, fmt.Errorf("multilevel: got %d policies, want %d", len(policies), cm.Depth())
	}
	copy(ce.costs[:cm.groups[0]], priceA)
	upstreamSum := 0.0
	for _, p := range priceA {
		upstreamSum += p
	}
	upstreamN := len(priceA)
	var env [5]float64
	for lvl := 1; lvl <= cm.Depth(); lvl++ {
		abar := upstreamSum / float64(upstreamN)
		off := cm.offsets[lvl]
		for j := 0; j < cm.groups[lvl]; j++ {
			env = cm.feat[lvl-1][j]
			env[4] = abar
			v := math.Abs(policies[lvl-1].Eval(ce.policySet, env[:]))
			if v > cm.capB {
				v = cm.capB
			}
			ce.costs[off+j] = v
			upstreamSum += v
			upstreamN++
		}
	}
	total := cm.offsets[cm.Depth()] + cm.groups[cm.Depth()]
	copy(ce.costs[total:], cm.template.C[total:])

	rx, err := ce.relaxer.Relax(ce.costs)
	if err != nil {
		return ChainOutcome{}, err
	}
	work, err := cm.template.WithCosts(ce.costs)
	if err != nil {
		return ChainOutcome{}, err
	}
	ts := covering.NewTreeScorer(ce.custSet, work, rx)
	ts.Score(cust, ce.scores)
	res := work.GreedyByScore(ce.scores, true)
	ce.Evals++

	out := ChainOutcome{
		Revenues: make([]float64, len(cm.groups)),
		LLCost:   res.Cost,
		Feasible: res.Feasible,
	}
	if !res.Feasible {
		out.GapPct = covering.Gap(res.Cost+1e9, rx.LB)
		return out, nil
	}
	out.GapPct = covering.Gap(res.Cost, rx.LB)
	for lvl := 0; lvl < len(cm.groups); lvl++ {
		off := cm.offsets[lvl]
		for j := 0; j < cm.groups[lvl]; j++ {
			if res.X[off+j] {
				out.Revenues[lvl] += ce.costs[off+j]
			}
		}
	}
	return out, nil
}

// ChainResult summarizes one chain co-evolution run.
type ChainResult struct {
	BestPriceA   []float64
	BestRevenues []float64 // revenue per level under the final elites
	BestGapPct   float64
	BestPolicies []string
	BestCust     string
	Gens         int
	Evals        int
	GapCurve     stats.Series
	LeaderCurve  stats.Series
}

// RunChain co-evolves 2+D populations: the leader's prices, one policy
// population per middle level, and the customer heuristics. Per
// generation every reactive population is scored against a fresh sample
// of leader decisions with the other levels pinned to their current
// elites (the tri-level scheme applied level by level, deepest first so
// forecasts improve bottom-up within a generation).
func RunChain(cm *ChainMarket, cfg Config) (*ChainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ce, err := NewChainEvaluator(cm)
	if err != nil {
		return nil, err
	}
	d := cm.Depth()
	r := rng.New(cfg.Seed)
	bounds := cm.BoundsA()

	popA := make([][]float64, cfg.PopSize)
	for i := range popA {
		popA[i] = bounds.RandomVector(r)
	}
	popP := make([][]gp.Tree, d)
	bestP := make([]gp.Tree, d)
	for lvl := 0; lvl < d; lvl++ {
		popP[lvl] = make([]gp.Tree, cfg.PopSize)
		for i := range popP[lvl] {
			popP[lvl][i] = ce.policySet.Ramped(r, 1, cfg.InitDepth)
		}
		bestP[lvl] = popP[lvl][0].Clone()
	}
	popC := make([]gp.Tree, cfg.PopSize)
	for i := range popC {
		popC[i] = ce.custSet.Ramped(r, 1, cfg.InitDepth)
	}
	bestC := popC[0].Clone()

	fit := make([]float64, cfg.PopSize)
	archA := archive.New[[]float64](cfg.PopSize, false, nil)
	res := &ChainResult{BestRevenues: make([]float64, d+1)}
	bestGapSeen := math.Inf(1)

	perGen := cfg.PopSize * ((d+1)*cfg.Sample + 1)
	for ce.Evals+perGen <= cfg.Budget {
		sample := r.SampleDistinct(minInt(cfg.Sample, len(popA)), len(popA))

		// Customer heuristics first (deepest level).
		for i, tr := range popC {
			total := 0.0
			for _, s := range sample {
				out, err := ce.Eval(popA[s], bestP, tr)
				if err != nil {
					return nil, err
				}
				total += out.GapPct
			}
			fit[i] = total / float64(len(sample))
		}
		bc := argbest(fit, func(a, b float64) bool { return a < b })
		bestC = popC[bc].Clone()
		if fit[bc] < bestGapSeen {
			bestGapSeen = fit[bc]
		}
		popC = breedGP(r, ce.custSet, popC, fit, func(a, b float64) bool { return a < b }, cfg)

		// Middle policies, deepest first.
		for lvl := d - 1; lvl >= 0; lvl-- {
			for i, tr := range popP[lvl] {
				cand := append([]gp.Tree(nil), bestP...)
				cand[lvl] = tr
				total := 0.0
				for _, s := range sample {
					out, err := ce.Eval(popA[s], cand, bestC)
					if err != nil {
						return nil, err
					}
					total += out.Revenues[lvl+1]
				}
				fit[i] = total / float64(len(sample))
			}
			bb := argbest(fit, func(a, b float64) bool { return a > b })
			bestP[lvl] = popP[lvl][bb].Clone()
			popP[lvl] = breedGP(r, ce.policySet, popP[lvl], fit, func(a, b float64) bool { return a > b }, cfg)
		}

		// Leader.
		for i, x := range popA {
			out, err := ce.Eval(x, bestP, bestC)
			if err != nil {
				return nil, err
			}
			if out.Feasible {
				fit[i] = out.Revenues[0]
			} else {
				fit[i] = 0
			}
		}
		for i, x := range popA {
			archA.Add(append([]float64(nil), x...), fit[i])
		}
		popA = breedA(r, popA, fit, bounds, cfg)

		res.Gens++
		xAxis := float64(ce.Evals)
		if be, ok := archA.Best(); ok {
			res.LeaderCurve.X = append(res.LeaderCurve.X, xAxis)
			res.LeaderCurve.Y = append(res.LeaderCurve.Y, be.Fitness)
		}
		res.GapCurve.X = append(res.GapCurve.X, xAxis)
		res.GapCurve.Y = append(res.GapCurve.Y, bestGapSeen)
	}

	res.Evals = ce.Evals
	res.BestGapPct = bestGapSeen
	if be, ok := archA.Best(); ok {
		res.BestPriceA = be.Item
		out, err := ce.Eval(be.Item, bestP, bestC)
		if err != nil {
			return nil, err
		}
		copy(res.BestRevenues, out.Revenues)
	}
	for _, p := range bestP {
		res.BestPolicies = append(res.BestPolicies, gp.Simplify(ce.policySet, p).String(ce.policySet))
	}
	res.BestCust = gp.Simplify(ce.custSet, bestC).String(ce.custSet)
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
