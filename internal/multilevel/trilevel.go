// Package multilevel prototypes the paper's stated future work:
// "multiple-level problems with deeper nested structure in order to
// analyze the limitations of CARBON in terms of co-evolution."
//
// The model is a tri-level pricing chain (TLPOP):
//
//	level A (leader):  CSP-A prices its L_A bundles first
//	level B (middle):  CSP-B observes A's prices and prices its L_B
//	                   bundles
//	level C (bottom):  a rational customer buys the cheapest basket
//	                   covering all service requirements from the full
//	                   market (A's, B's and the competitors' bundles)
//
// CARBON's decoupling trick is applied twice. The bottom level keeps the
// paper's GP *scoring heuristics* scored by the Eq. 1 %-gap. The middle
// level cannot be a population of price vectors (each A decision induces
// a different B instance — the same epistasis one level up), so it
// becomes a population of GP *pricing policies*: trees mapping per-bundle
// features to a price, applicable to any induced middle-level instance.
// Three populations co-evolve:
//
//	A: price vectors (GA, Table II operators), fitness = A's revenue
//	   under the best B policy and the best C heuristic;
//	B: pricing policies (GP), fitness = mean B revenue across a fresh
//	   sample of A's current decisions;
//	C: scoring heuristics (GP), fitness = mean %-gap across the same
//	   sample (with the best B policy fixing the middle prices).
//
// The known limitation this prototype makes measurable: B's fitness has
// no per-instance normalizer as good as the LP bound (revenue upper
// bounds are loose), so the middle population's selection is noisier
// than the bottom one's — exactly the "limitation in terms of
// co-evolution" the paper wants analyzed. See the package tests and
// BenchmarkTriLevel.
package multilevel

import (
	"errors"
	"fmt"
	"math"

	"carbon/internal/archive"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

// TriMarket is a tri-level pricing market over one covering template:
// columns [0, LA) belong to leader A, [LA, LA+LB) to middle player B,
// the rest are fixed competitors.
type TriMarket struct {
	template *covering.Instance
	LA, LB   int
	boundsA  ga.Bounds
	capB     float64   // price cap for B's policy output
	feat     []feature // per-B-bundle policy features (precomputed)
}

// feature is the policy environment for one B bundle, layout PolicyTerms.
type feature [5]float64

// PolicyTerms names the middle-level policy terminal set, in env order:
// the bundle's template cost, its mean coverage per service, the mean
// service requirement, the mean competitor price, and the mean of A's
// current prices (the only context-dependent slot).
var PolicyTerms = []string{"c0", "qbar", "bbar", "cbar", "abar"}

// PolicySet returns the GP primitive set for pricing policies: Table I
// operators over PolicyTerms, with ERCs enabled so policies can express
// absolute price levels.
func PolicySet() *gp.Set {
	return &gp.Set{
		Ops:       gp.TableIOps(),
		Terms:     append([]string(nil), PolicyTerms...),
		ConstProb: 0.2, ConstMin: 0, ConstMax: 2,
	}
}

// NewTriMarket slices a covering instance into the three ownership
// groups and precomputes policy features.
func NewTriMarket(in *covering.Instance, la, lb int) (*TriMarket, error) {
	if in == nil {
		return nil, errors.New("multilevel: nil instance")
	}
	if la <= 0 || lb <= 0 || la+lb >= in.M() {
		return nil, fmt.Errorf("multilevel: bad split LA=%d LB=%d of M=%d", la, lb, in.M())
	}
	if !in.FullSelectionFeasible() {
		return nil, errors.New("multilevel: market cannot cover the requirements")
	}
	comp := in.M() - la - lb
	meanComp := 0.0
	for j := la + lb; j < in.M(); j++ {
		meanComp += in.C[j]
	}
	meanComp /= float64(comp)
	meanReq := 0.0
	for _, b := range in.B {
		meanReq += b
	}
	meanReq /= float64(in.N())

	cap := 2 * meanComp
	loA := make([]float64, la)
	upA := make([]float64, la)
	for j := range upA {
		upA[j] = cap
	}
	tm := &TriMarket{
		template: in, LA: la, LB: lb,
		boundsA: ga.Bounds{Lo: loA, Up: upA},
		capB:    cap,
		feat:    make([]feature, lb),
	}
	for j := 0; j < lb; j++ {
		col := in.Cols[la+j]
		qbar := 0.0
		for _, v := range col {
			qbar += v
		}
		qbar /= float64(in.N())
		tm.feat[j] = feature{in.C[la+j], qbar, meanReq, meanComp, 0 /* abar filled per context */}
	}
	return tm, nil
}

// NewTriMarketFromClass builds the tri-market for a paper class with
// A and B each owning LeaderShare of the bundles.
func NewTriMarketFromClass(cl orlib.Class, index int) (*TriMarket, error) {
	in, err := orlib.GenerateCovering(cl, index)
	if err != nil {
		return nil, err
	}
	l := cl.N / 10
	if l < 1 {
		l = 1
	}
	return NewTriMarket(in, l, l)
}

// BoundsA returns the leader's price box.
func (tm *TriMarket) BoundsA() ga.Bounds { return tm.boundsA }

// CapB returns the cap applied to policy-produced middle prices.
func (tm *TriMarket) CapB() float64 { return tm.capB }

// ApplyPolicy computes B's prices for the given leader prices: the
// policy tree evaluated per B bundle, folded through |·| and clamped to
// [0, CapB]. dst must have length LB.
func (tm *TriMarket) ApplyPolicy(set *gp.Set, policy gp.Tree, priceA []float64, dst []float64) {
	abar := 0.0
	for _, p := range priceA {
		abar += p
	}
	abar /= float64(len(priceA))
	var env [5]float64
	for j := 0; j < tm.LB; j++ {
		env = tm.feat[j]
		env[4] = abar
		v := math.Abs(policy.Eval(set, env[:]))
		if v > tm.capB {
			v = tm.capB
		}
		dst[j] = v
	}
}

// Outcome is one full tri-level evaluation.
type Outcome struct {
	RevenueA float64
	RevenueB float64
	LLCost   float64
	GapPct   float64
	Feasible bool
	PriceB   []float64
}

// Evaluator owns the warm relaxer and scratch for tri-level evaluations.
// Not safe for concurrent use; create one per worker.
type Evaluator struct {
	tm        *TriMarket
	relaxer   *covering.Relaxer
	policySet *gp.Set
	custSet   *gp.Set
	costs     []float64
	scores    []float64
	priceB    []float64
	// Evals counts full bottom-level evaluations.
	Evals int
}

// NewEvaluator prepares an evaluator with the default primitive sets.
func NewEvaluator(tm *TriMarket) (*Evaluator, error) {
	relaxer, err := covering.NewRelaxer(tm.template)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		tm:        tm,
		relaxer:   relaxer,
		policySet: PolicySet(),
		custSet:   covering.TableISet(),
		costs:     make([]float64, tm.template.M()),
		scores:    make([]float64, tm.template.M()),
		priceB:    make([]float64, tm.LB),
	}, nil
}

// PolicySetRef returns the evaluator's policy primitive set.
func (ev *Evaluator) PolicySetRef() *gp.Set { return ev.policySet }

// CustomerSetRef returns the evaluator's customer primitive set.
func (ev *Evaluator) CustomerSetRef() *gp.Set { return ev.custSet }

// Eval runs the full chain: apply B's policy to A's prices, induce the
// customer instance, relax, score with the customer heuristic, run the
// greedy, and account revenues along the chain.
func (ev *Evaluator) Eval(priceA []float64, policy gp.Tree, cust gp.Tree) (Outcome, error) {
	tm := ev.tm
	if len(priceA) != tm.LA {
		return Outcome{}, fmt.Errorf("multilevel: got %d A prices, want %d", len(priceA), tm.LA)
	}
	tm.ApplyPolicy(ev.policySet, policy, priceA, ev.priceB)
	copy(ev.costs[:tm.LA], priceA)
	copy(ev.costs[tm.LA:tm.LA+tm.LB], ev.priceB)
	copy(ev.costs[tm.LA+tm.LB:], tm.template.C[tm.LA+tm.LB:])

	rx, err := ev.relaxer.Relax(ev.costs)
	if err != nil {
		return Outcome{}, err
	}
	work, err := ev.tm.template.WithCosts(ev.costs)
	if err != nil {
		return Outcome{}, err
	}
	ts := covering.NewTreeScorer(ev.custSet, work, rx)
	ts.Score(cust, ev.scores)
	res := work.GreedyByScore(ev.scores, true)
	ev.Evals++

	out := Outcome{LLCost: res.Cost, Feasible: res.Feasible,
		PriceB: append([]float64(nil), ev.priceB...)}
	if !res.Feasible {
		out.GapPct = covering.Gap(res.Cost+1e9, rx.LB)
		return out, nil
	}
	out.GapPct = covering.Gap(res.Cost, rx.LB)
	for j := 0; j < tm.LA; j++ {
		if res.X[j] {
			out.RevenueA += priceA[j]
		}
	}
	for j := 0; j < tm.LB; j++ {
		if res.X[tm.LA+j] {
			out.RevenueB += ev.priceB[j]
		}
	}
	return out, nil
}

// Config parameterizes the tri-level co-evolution. The three populations
// share a size and per-level budgets; GP operators reuse Table II's
// probabilities.
type Config struct {
	Seed      uint64
	PopSize   int
	Budget    int // bottom-level evaluations (the chain's unit of work)
	Sample    int // A-decisions sampled per policy/heuristic evaluation
	Elites    int
	Limits    gp.Limits
	InitDepth int
	TournK    int
	CrossProb float64
	MutProb   float64
	ReproProb float64
	SBXEta    float64
	PolyEta   float64
	ULMutProb float64
}

// DefaultConfig returns Table II-aligned parameters at prototype scale.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		PopSize:   24,
		Budget:    6000,
		Sample:    2,
		Elites:    1,
		Limits:    gp.DefaultLimits(),
		InitDepth: 4,
		TournK:    3,
		CrossProb: 0.85,
		MutProb:   0.10,
		ReproProb: 0.05,
		SBXEta:    15,
		PolyEta:   20,
		ULMutProb: 0.05,
	}
}

// Validate rejects unusable configurations.
func (c *Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return errors.New("multilevel: PopSize must be at least 2")
	case c.Sample < 1:
		return errors.New("multilevel: Sample must be at least 1")
	case c.Budget < c.PopSize*(2*c.Sample+1):
		return errors.New("multilevel: budget below one generation")
	case c.Elites < 0 || c.Elites >= c.PopSize:
		return errors.New("multilevel: bad elite count")
	case c.CrossProb+c.MutProb+c.ReproProb > 1+1e-9:
		return errors.New("multilevel: GP probabilities exceed 1")
	}
	return nil
}

// Result summarizes one tri-level co-evolution run.
type Result struct {
	BestPriceA   []float64
	BestRevenueA float64
	BestRevenueB float64
	BestPolicy   string
	BestCust     string
	BestGapPct   float64
	Gens         int
	Evals        int
	ACurve       stats.Series // best archived A revenue
	GapCurve     stats.Series // best customer-heuristic gap
}

// Run executes the three-population co-evolution until the bottom-level
// budget is exhausted.
func Run(tm *TriMarket, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ev, err := NewEvaluator(tm)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	boundsA := tm.BoundsA()

	popA := make([][]float64, cfg.PopSize)
	for i := range popA {
		popA[i] = boundsA.RandomVector(r)
	}
	popB := make([]gp.Tree, cfg.PopSize)
	popC := make([]gp.Tree, cfg.PopSize)
	for i := range popB {
		popB[i] = ev.policySet.Ramped(r, 1, cfg.InitDepth)
		popC[i] = ev.custSet.Ramped(r, 1, cfg.InitDepth)
	}
	fitA := make([]float64, cfg.PopSize)
	fitB := make([]float64, cfg.PopSize)
	fitC := make([]float64, cfg.PopSize)

	archA := archive.New[[]float64](cfg.PopSize, false, nil)
	bestPolicy := popB[0].Clone()
	bestCust := popC[0].Clone()
	res := &Result{}
	bestGapSeen := math.Inf(1)
	bestRevB := 0.0

	perGen := cfg.PopSize * (2*cfg.Sample + 1)
	for ev.Evals+perGen <= cfg.Budget {
		sample := r.SampleDistinct(min(cfg.Sample, len(popA)), len(popA))

		// Bottom level: heuristics chase low gaps across the sampled
		// contexts, middle prices fixed by the best policy.
		for i, tr := range popC {
			total := 0.0
			for _, s := range sample {
				out, err := ev.Eval(popA[s], bestPolicy, tr)
				if err != nil {
					return nil, err
				}
				total += out.GapPct
			}
			fitC[i] = total / float64(len(sample))
		}
		bc := argbest(fitC, func(a, b float64) bool { return a < b })
		bestCust = popC[bc].Clone()
		if fitC[bc] < bestGapSeen {
			bestGapSeen = fitC[bc]
		}

		// Middle level: policies chase revenue across the same contexts,
		// customer fixed to the freshly selected best heuristic.
		for i, tr := range popB {
			total := 0.0
			for _, s := range sample {
				out, err := ev.Eval(popA[s], tr, bestCust)
				if err != nil {
					return nil, err
				}
				total += out.RevenueB
			}
			fitB[i] = total / float64(len(sample))
		}
		bb := argbest(fitB, func(a, b float64) bool { return a > b })
		bestPolicy = popB[bb].Clone()
		if fitB[bb] > bestRevB {
			bestRevB = fitB[bb]
		}

		// Top level: A's prices against the reactive chain.
		for i, x := range popA {
			out, err := ev.Eval(x, bestPolicy, bestCust)
			if err != nil {
				return nil, err
			}
			if out.Feasible {
				fitA[i] = out.RevenueA
			} else {
				fitA[i] = 0
			}
		}
		for i, x := range popA {
			archA.Add(append([]float64(nil), x...), fitA[i])
		}

		res.Gens++
		xAxis := float64(ev.Evals)
		if be, ok := archA.Best(); ok {
			res.ACurve.X = append(res.ACurve.X, xAxis)
			res.ACurve.Y = append(res.ACurve.Y, be.Fitness)
		}
		res.GapCurve.X = append(res.GapCurve.X, xAxis)
		res.GapCurve.Y = append(res.GapCurve.Y, bestGapSeen)

		popA = breedA(r, popA, fitA, boundsA, cfg)
		popB = breedGP(r, ev.policySet, popB, fitB, func(a, b float64) bool { return a > b }, cfg)
		popC = breedGP(r, ev.custSet, popC, fitC, func(a, b float64) bool { return a < b }, cfg)
	}

	res.Evals = ev.Evals
	if be, ok := archA.Best(); ok {
		res.BestPriceA = be.Item
		res.BestRevenueA = be.Fitness
	}
	res.BestRevenueB = bestRevB
	res.BestPolicy = gp.Simplify(ev.policySet, bestPolicy).String(ev.policySet)
	res.BestCust = gp.Simplify(ev.custSet, bestCust).String(ev.custSet)
	res.BestGapPct = bestGapSeen
	return res, nil
}

func argbest(fit []float64, better func(a, b float64) bool) int {
	b := 0
	for i := range fit {
		if better(fit[i], fit[b]) {
			b = i
		}
	}
	return b
}

func breedA(r *rng.Rand, pop [][]float64, fit []float64, bounds ga.Bounds, cfg Config) [][]float64 {
	better := func(i, j int) bool { return fit[i] > fit[j] }
	next := make([][]float64, 0, len(pop))
	bi := argbest(fit, func(a, b float64) bool { return a > b })
	for e := 0; e < cfg.Elites; e++ {
		next = append(next, append([]float64(nil), pop[bi]...))
	}
	for len(next) < len(pop) {
		p1 := pop[ga.BinaryTournament(r, len(pop), better)]
		p2 := pop[ga.BinaryTournament(r, len(pop), better)]
		var c1, c2 []float64
		if r.Bool(cfg.CrossProb) {
			c1, c2 = ga.SBX(r, p1, p2, bounds, cfg.SBXEta)
		} else {
			c1 = append([]float64(nil), p1...)
			c2 = append([]float64(nil), p2...)
		}
		ga.PolynomialMutateInPlace(r, c1, bounds, cfg.PolyEta, cfg.ULMutProb)
		ga.PolynomialMutateInPlace(r, c2, bounds, cfg.PolyEta, cfg.ULMutProb)
		next = append(next, c1)
		if len(next) < len(pop) {
			next = append(next, c2)
		}
	}
	return next
}

func breedGP(r *rng.Rand, set *gp.Set, pop []gp.Tree, fit []float64,
	betterVal func(a, b float64) bool, cfg Config) []gp.Tree {

	better := func(i, j int) bool { return betterVal(fit[i], fit[j]) }
	next := make([]gp.Tree, 0, len(pop))
	bi := argbest(fit, betterVal)
	for e := 0; e < cfg.Elites; e++ {
		next = append(next, pop[bi].Clone())
	}
	for len(next) < len(pop) {
		u := r.Float64()
		switch {
		case u < cfg.CrossProb:
			p1 := pop[ga.Tournament(r, len(pop), cfg.TournK, better)]
			p2 := pop[ga.Tournament(r, len(pop), cfg.TournK, better)]
			c1, c2 := gp.OnePointCrossover(r, set, p1, p2, cfg.Limits)
			next = append(next, c1)
			if len(next) < len(pop) {
				next = append(next, c2)
			}
		case u < cfg.CrossProb+cfg.MutProb:
			p := pop[ga.Tournament(r, len(pop), cfg.TournK, better)]
			next = append(next, gp.UniformMutate(r, set, p, 3, cfg.Limits))
		default:
			p := pop[ga.Tournament(r, len(pop), cfg.TournK, better)]
			next = append(next, p.Clone())
		}
	}
	return next
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
