package multilevel

import (
	"math"
	"testing"

	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

func chainInstance(t testing.TB) *ChainMarket {
	t.Helper()
	in, err := orlib.GenerateCovering(orlib.Class{N: 80, M: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewChainMarket(in, []int{6, 6, 6}) // leader + 2 middles
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestNewChainMarketValidation(t *testing.T) {
	in, err := orlib.GenerateCovering(orlib.Class{N: 30, M: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChainMarket(nil, []int{3}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := NewChainMarket(in, nil); err == nil {
		t.Fatal("no groups accepted")
	}
	if _, err := NewChainMarket(in, []int{3, 0}); err == nil {
		t.Fatal("zero-size group accepted")
	}
	if _, err := NewChainMarket(in, []int{15, 15}); err == nil {
		t.Fatal("no-competitor split accepted")
	}
	cm, err := NewChainMarket(in, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Depth() != 2 || cm.LeaderSize() != 3 {
		t.Fatalf("geometry: depth %d leader %d", cm.Depth(), cm.LeaderSize())
	}
}

func TestChainEvalCascade(t *testing.T) {
	cm := chainInstance(t)
	ce, err := NewChainEvaluator(cm)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	priceA := cm.BoundsA().RandomVector(r)
	policies := []gp.Tree{
		gp.MustParse(ce.policySet, "cbar"),
		gp.MustParse(ce.policySet, "(% cbar (+ 1 1))"),
	}
	cust := gp.MustParse(ce.custSet, "(% (* q d) c)")
	out, err := ce.Eval(priceA, policies, cust)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("chain infeasible on feasible market")
	}
	if len(out.Revenues) != 3 {
		t.Fatalf("revenues per level: %v", out.Revenues)
	}
	for lvl, rev := range out.Revenues {
		if rev < 0 {
			t.Fatalf("level %d negative revenue %v", lvl, rev)
		}
	}
	if out.GapPct < -1e-9 || out.GapPct > 100 {
		t.Fatalf("gap %v", out.GapPct)
	}
}

func TestChainEvalValidation(t *testing.T) {
	cm := chainInstance(t)
	ce, err := NewChainEvaluator(cm)
	if err != nil {
		t.Fatal(err)
	}
	cust := gp.MustParse(ce.custSet, "c")
	pol := gp.MustParse(ce.policySet, "cbar")
	if _, err := ce.Eval([]float64{1}, []gp.Tree{pol, pol}, cust); err == nil {
		t.Fatal("wrong leader size accepted")
	}
	priceA := make([]float64, cm.LeaderSize())
	if _, err := ce.Eval(priceA, []gp.Tree{pol}, cust); err == nil {
		t.Fatal("wrong policy count accepted")
	}
}

func TestChainAbarSeesUpstream(t *testing.T) {
	// The second middle level's "abar" must include the first middle's
	// prices: with an echo policy at both levels and constant leader
	// prices, level 2's output equals the mean of (leader + level-1).
	in, err := orlib.GenerateCovering(orlib.Class{N: 40, M: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewChainMarket(in, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewChainEvaluator(cm)
	if err != nil {
		t.Fatal(err)
	}
	echo := gp.MustParse(ce.policySet, "abar")
	cust := gp.MustParse(ce.custSet, "c")
	priceA := []float64{4, 4}
	out, err := ce.Eval(priceA, []gp.Tree{echo, echo}, cust)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	// Level 1 echoes abar = 4 → prices (4,4). Level 2's abar over
	// (4,4,4,4) = 4 again. Verify through the cost vector side effects:
	// re-run and inspect ce.costs (white-box but stable).
	for j := 2; j < 6; j++ {
		if math.Abs(ce.costs[j]-4) > 1e-9 {
			t.Fatalf("cascaded cost[%d] = %v, want 4", j, ce.costs[j])
		}
	}
}

func TestRunChain(t *testing.T) {
	cm := chainInstance(t)
	cfg := DefaultConfig()
	cfg.PopSize = 6
	cfg.Budget = 700
	res, err := RunChain(cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations")
	}
	if res.Evals > cfg.Budget {
		t.Fatalf("budget exceeded: %d", res.Evals)
	}
	if len(res.BestPolicies) != 2 || res.BestCust == "" {
		t.Fatalf("programs missing: %v / %q", res.BestPolicies, res.BestCust)
	}
	if len(res.BestRevenues) != 3 {
		t.Fatalf("revenues: %v", res.BestRevenues)
	}
	if m := stats.Monotonicity(res.LeaderCurve.Y, +1); m != 1 {
		t.Fatalf("leader archive curve not monotone: %v", m)
	}
	if m := stats.Monotonicity(res.GapCurve.Y, -1); m != 1 {
		t.Fatalf("gap curve not monotone: %v", m)
	}
}

func TestRunChainDeterministic(t *testing.T) {
	cm := chainInstance(t)
	cfg := DefaultConfig()
	cfg.PopSize = 6
	cfg.Budget = 500
	cfg.Seed = 23
	a, err := RunChain(cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChain(cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestGapPct != b.BestGapPct || a.BestCust != b.BestCust {
		t.Fatal("same seed diverged")
	}
}

func TestChainDepthZeroIsBilevel(t *testing.T) {
	// D = 0: just a leader and the customer — the BCPOP shape through
	// the chain machinery.
	in, err := orlib.GenerateCovering(orlib.Class{N: 40, M: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewChainMarket(in, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewChainEvaluator(cm)
	if err != nil {
		t.Fatal(err)
	}
	cust := gp.MustParse(ce.custSet, "(% (* q d) c)")
	priceA := make([]float64, 4)
	for j := range priceA {
		priceA[j] = 5
	}
	out, err := ce.Eval(priceA, nil, cust)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible || len(out.Revenues) != 1 {
		t.Fatalf("depth-0 chain: %+v", out)
	}
}
