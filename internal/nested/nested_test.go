package nested

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/orlib"
	"carbon/internal/stats"
)

func smallMarket(t testing.TB) *bcpop.Market {
	t.Helper()
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.PopSize = 16
	cfg.ArchiveSize = 16
	cfg.ULEvalBudget = 320
	cfg.LLEvalBudget = 320
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CrossoverProb != 0.85 || cfg.MutationProb != 0.01 {
		t.Fatalf("Table II operators: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.PopSize = 1 },
		func(c *Config) { c.ArchiveSize = 0 },
		func(c *Config) { c.ULEvalBudget = 3 },
		func(c *Config) { c.Elites = -1 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRun(t *testing.T) {
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 || res.ULEvals == 0 {
		t.Fatalf("no work done: %+v", res)
	}
	if res.ULEvals != res.LLEvals {
		t.Fatalf("nested scheme must drain budgets in lockstep: %d/%d",
			res.ULEvals, res.LLEvals)
	}
	if res.ULEvals > 320 {
		t.Fatal("budget exceeded")
	}
	if len(res.BestPrice) != mk.Leaders() {
		t.Fatalf("price length %d", len(res.BestPrice))
	}
	if res.BestGapPct < 0 {
		t.Fatalf("gap %v", res.BestGapPct)
	}
	if m := stats.Monotonicity(res.ULCurve.Y, +1); m != 1 {
		t.Fatalf("archive curve not monotone: %v", m)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := smallMarket(t)
	a, err := Run(mk, smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRevenue != b.BestRevenue || a.BestGapPct != b.BestGapPct {
		t.Fatal("same seed diverged")
	}
}

func TestChvatalGapIsConstantQuality(t *testing.T) {
	// The fixed heuristic's gap should be moderate and stable — the
	// nested baseline trades adaptivity for per-evaluation cost.
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGapPct > 50 {
		t.Fatalf("Chvátal gap %v%% not credible", res.BestGapPct)
	}
}

func TestGraspVariantBeatsChvatalGap(t *testing.T) {
	// GRASP multistart at the lower level yields better per-candidate
	// answers than the single deterministic Chvátal pass, at the cost of
	// proportionally fewer upper-level candidates.
	mk := smallMarket(t)
	base := smallConfig(13)
	base.LLEvalBudget = base.ULEvalBudget * 5

	chv, err := Run(mk, base)
	if err != nil {
		t.Fatal(err)
	}
	grasped := base
	grasped.GraspStarts = 5
	grasped.GraspAlpha = 0.2
	gr, err := Run(mk, grasped)
	if err != nil {
		t.Fatal(err)
	}
	if gr.LLEvals <= gr.ULEvals {
		t.Fatalf("GRASP variant must burn LL faster: UL=%d LL=%d", gr.ULEvals, gr.LLEvals)
	}
	if gr.BestGapPct > chv.BestGapPct+1e-9 {
		t.Fatalf("GRASP gap %v%% worse than Chvátal %v%%", gr.BestGapPct, chv.BestGapPct)
	}
}

func TestGraspVariantDeterministic(t *testing.T) {
	mk := smallMarket(t)
	cfg := smallConfig(15)
	cfg.GraspStarts = 3
	cfg.GraspAlpha = 0.3
	cfg.LLEvalBudget = cfg.ULEvalBudget * 3
	a, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRevenue != b.BestRevenue || a.BestGapPct != b.BestGapPct {
		t.Fatal("GRASP variant not reproducible")
	}
}
