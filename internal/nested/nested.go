// Package nested implements the legacy "nested sequential" baseline
// (category NSQ/CST in the paper's §III taxonomy, Fig 2): a single
// genetic algorithm over upper-level decisions where *every* fitness
// evaluation solves the induced lower-level instance from scratch with a
// fixed hand-written heuristic (Chvátal's ratio greedy).
//
// This is the scheme the paper calls "very time consuming": accuracy at
// the lower level is bought per-evaluation instead of being learned once
// and amortized, so under an equal lower-level evaluation budget the
// upper-level search sees far fewer candidate pricings than CARBON. The
// package exists as the third comparison point for the taxonomy
// benchmarks (see bench_test.go and EXPERIMENTS.md).
package nested

import (
	"errors"
	"fmt"

	"carbon/internal/archive"
	"carbon/internal/bcpop"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

// Config parameterizes the nested GA. The upper level reuses the
// Table II GA operator suite so comparisons isolate the *architecture*
// (nested vs co-evolutionary), not the operators.
type Config struct {
	Seed            uint64
	PopSize         int
	ArchiveSize     int
	ULEvalBudget    int     // upper-level evaluations
	LLEvalBudget    int     // lower-level solves (one per UL evaluation)
	CrossoverProb   float64 // SBX
	MutationProb    float64 // polynomial, per gene
	SBXEta, PolyEta float64
	Elites          int
	Workers         int

	// GraspStarts switches the fixed lower-level solver from the
	// deterministic Chvátal greedy to GRASP with this many randomized
	// starts (GraspAlpha is the restricted-candidate-list looseness).
	// Each start is charged as one lower-level evaluation, so GRASP buys
	// better per-candidate answers at the price of proportionally fewer
	// upper-level candidates — the nested trade-off dial.
	GraspStarts int
	GraspAlpha  float64
}

// DefaultConfig mirrors the Table II upper-level column.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		PopSize:       100,
		ArchiveSize:   100,
		ULEvalBudget:  50000,
		LLEvalBudget:  50000,
		CrossoverProb: 0.85,
		MutationProb:  0.01,
		SBXEta:        15,
		PolyEta:       20,
		Elites:        1,
	}
}

// Validate rejects unusable configurations.
func (c *Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return errors.New("nested: population size must be at least 2")
	case c.ArchiveSize < 1:
		return errors.New("nested: archive size must be positive")
	case c.ULEvalBudget < c.PopSize || c.LLEvalBudget < c.PopSize:
		return errors.New("nested: budgets must cover one generation")
	case c.Elites < 0 || c.Elites >= c.PopSize:
		return errors.New("nested: bad elite count")
	}
	return nil
}

// Result summarizes one nested-GA run.
type Result struct {
	BestPrice   []float64
	BestRevenue float64
	BestGapPct  float64 // gap of the Chvátal answer on the best pricing
	ULEvals     int
	LLEvals     int
	Gens        int
	ULCurve     stats.Series
	GapCurve    stats.Series
}

// Run executes the nested GA: each upper-level fitness evaluation costs
// one lower-level solve (Chvátal greedy on the induced instance), so
// both budgets drain in lockstep.
func Run(mk *bcpop.Market, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := par.Workers(cfg.Workers)
	evs := make([]*bcpop.Evaluator, workers)
	for i := range evs {
		ev, err := bcpop.NewEvaluator(mk, covering.TableISet())
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	r := rng.New(cfg.Seed)
	bounds := mk.PriceBounds()

	pop := make([][]float64, cfg.PopSize)
	for i := range pop {
		pop[i] = bounds.RandomVector(r)
	}
	fit := make([]float64, cfg.PopSize)
	gaps := make([]float64, cfg.PopSize)
	arch := archive.New[[]float64](cfg.ArchiveSize, false, nil)

	res := &Result{}
	ulUsed, llUsed := 0, 0
	bestGap := 0.0
	llPerCand := 1
	if cfg.GraspStarts > 0 {
		llPerCand = cfg.GraspStarts
	}
	for ulUsed+cfg.PopSize <= cfg.ULEvalBudget && llUsed+cfg.PopSize*llPerCand <= cfg.LLEvalBudget {
		// Pre-draw per-candidate seeds on the main goroutine so the
		// GRASP path stays deterministic under striped evaluation.
		var seeds []uint64
		if cfg.GraspStarts > 0 {
			seeds = make([]uint64, len(pop))
			for i := range seeds {
				seeds[i] = r.Uint64()
			}
		}
		evalStriped(len(pop), workers, func(i, w int) {
			var out bcpop.Result
			var err error
			if cfg.GraspStarts > 0 {
				out, _, err = evs[w].EvalGRASP(pop[i], rng.New(seeds[i]), cfg.GraspStarts, cfg.GraspAlpha)
			} else {
				out, err = evalChvatal(evs[w], pop[i])
			}
			if err != nil {
				panic(fmt.Sprintf("nested: %v", err))
			}
			if out.Feasible {
				fit[i] = out.Revenue
			} else {
				fit[i] = 0
			}
			gaps[i] = out.GapPct
		})
		ulUsed += len(pop)
		llUsed += len(pop) * llPerCand

		bestI := 0
		for i := range fit {
			if fit[i] > fit[bestI] {
				bestI = i
			}
		}
		for i, x := range pop {
			if arch.Add(append([]float64(nil), x...), fit[i]) && i == bestI {
				bestGap = gaps[i]
			}
		}
		res.Gens++
		x := float64(ulUsed + llUsed)
		if be, ok := arch.Best(); ok {
			res.ULCurve.X = append(res.ULCurve.X, x)
			res.ULCurve.Y = append(res.ULCurve.Y, be.Fitness)
		}
		res.GapCurve.X = append(res.GapCurve.X, x)
		res.GapCurve.Y = append(res.GapCurve.Y, gaps[bestI])

		pop = breed(r, pop, fit, bounds, cfg)
	}
	res.ULEvals, res.LLEvals = ulUsed, llUsed
	if be, ok := arch.Best(); ok {
		res.BestPrice = be.Item
		res.BestRevenue = be.Fitness
		res.BestGapPct = bestGap
	}
	return res, nil
}

// evalChvatal prices the market and answers with the fixed ratio greedy.
func evalChvatal(ev *bcpop.Evaluator, price []float64) (bcpop.Result, error) {
	// An empty selection repaired by Chvátal completion IS the Chvátal
	// greedy, so reuse the selection path.
	empty := make([]bool, ev.Market().Bundles())
	out, _, err := ev.EvalSelection(price, empty)
	return out, err
}

func breed(r *rng.Rand, pop [][]float64, fit []float64, bounds ga.Bounds, cfg Config) [][]float64 {
	better := func(i, j int) bool { return fit[i] > fit[j] }
	next := make([][]float64, 0, len(pop))
	// Elitism by partial selection.
	order := make([]int, len(pop))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < cfg.Elites; e++ {
		best := e
		for i := e + 1; i < len(order); i++ {
			if better(order[i], order[best]) {
				best = i
			}
		}
		order[e], order[best] = order[best], order[e]
		next = append(next, append([]float64(nil), pop[order[e]]...))
	}
	for len(next) < len(pop) {
		p1 := pop[ga.BinaryTournament(r, len(pop), better)]
		p2 := pop[ga.BinaryTournament(r, len(pop), better)]
		var c1, c2 []float64
		if r.Bool(cfg.CrossoverProb) {
			c1, c2 = ga.SBX(r, p1, p2, bounds, cfg.SBXEta)
		} else {
			c1 = append([]float64(nil), p1...)
			c2 = append([]float64(nil), p2...)
		}
		ga.PolynomialMutateInPlace(r, c1, bounds, cfg.PolyEta, cfg.MutationProb)
		ga.PolynomialMutateInPlace(r, c2, bounds, cfg.PolyEta, cfg.MutationProb)
		next = append(next, c1)
		if len(next) < len(pop) {
			next = append(next, c2)
		}
	}
	return next
}

// evalStriped mirrors core.evalStriped.
func evalStriped(n, workers int, fn func(i, worker int)) {
	if workers > n {
		workers = n
	}
	par.ForEach(workers, workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		for i := lo; i < hi; i++ {
			fn(i, w)
		}
	})
}
