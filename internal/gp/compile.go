// Tree compiler and bytecode VM (DESIGN.md §5j).
//
// Tree.Eval walks the flat prefix encoding backwards with a value
// stack; the scan order is a pure function of the tree, so it can be
// recorded once and replayed without re-decoding nodes. Compile lowers
// a validated tree into exactly that instruction sequence — flat
// postfix bytecode with an inline constant pool — and VM replays it
// against any number of environment vectors with caller-owned scratch.
// Steady-state evaluation allocates nothing: the interpreter zeroes a
// 4KiB operand array per call, the VM reuses a slice sized to the
// program's real high-water mark.
//
// Determinism: the VM executes the same float64 operations in the same
// order as Tree.Eval — Table I operators are specialized to dedicated
// opcodes whose bodies are copies of the builtin functions (same
// protected-division/modulo epsilon and fallback), custom operators
// fall back to calling the Op function itself, intermediate NaN/±Inf
// values propagate untouched, and only the root value collapses NaN to
// 0 exactly like Eval. Results are therefore bit-identical to the
// interpreter (FuzzCompiledEval proves it differentially).
package gp

import (
	"fmt"
	"math"
	"reflect"
)

// opcode selects one VM instruction. Table I operators (plus the
// extension builtins) get dedicated opcodes so the hot loop never
// makes an indirect call; opCall1/opCall2 cover custom operators.
type opcode uint8

const (
	opConst opcode = iota // push val
	opTerm                // push env[idx]
	opAdd
	opSub
	opMul
	opDivP // protected division, x/0 → 1
	opModP // protected modulo, mod(x,0) → 1
	opNeg
	opMin
	opMax
	opCall1 // ops[idx].F1
	opCall2 // ops[idx].F2
)

// instr is one bytecode instruction. Constants are carried inline
// (val), terminals and custom-operator calls index via idx.
type instr struct {
	op  opcode
	idx uint8
	val float64
}

// Program is a compiled tree: the instruction stream in execution
// order, the operator table for custom-op fallback, and the exact
// operand-stack requirement. A Program is immutable once Compile
// returns, so any number of VMs may execute it concurrently; the
// engine compiles each predator once per generation and shares the
// program across workers.
type Program struct {
	code  []instr
	ops   []Op // the compile set's operators, for opCall fallback
	terms int  // required environment length (len(set.Terms) at compile)
	depth int  // operand-stack high-water mark
	size  int  // node count of the source tree
}

// Size returns the node count of the compiled tree.
func (p *Program) Size() int { return p.size }

// StackDepth returns the operand-stack high-water mark of the program.
func (p *Program) StackDepth() int { return p.depth }

// Terms returns the environment length the program requires.
func (p *Program) Terms() int { return p.terms }

// builtinOps maps an Op function's code pointer to its dedicated
// opcode. Identity by function pointer is exact: a set whose operator
// IS the builtin (shared function value) specializes, anything else —
// even a same-named reimplementation — takes the generic call path, so
// specialization can never change semantics.
var builtin1 = map[uintptr]opcode{
	reflect.ValueOf(Neg.F1).Pointer(): opNeg,
}

var builtin2 = map[uintptr]opcode{
	reflect.ValueOf(Add.F2).Pointer(): opAdd,
	reflect.ValueOf(Sub.F2).Pointer(): opSub,
	reflect.ValueOf(Mul.F2).Pointer(): opMul,
	reflect.ValueOf(Div.F2).Pointer(): opDivP,
	reflect.ValueOf(Mod.F2).Pointer(): opModP,
	reflect.ValueOf(Min.F2).Pointer(): opMin,
	reflect.ValueOf(Max.F2).Pointer(): opMax,
}

// Compile lowers a validated tree to bytecode. It rejects anything
// Check rejects (including trees over MaxNodes), so a compiled program
// can never index outside an environment of len(s.Terms) or overflow
// its declared stack depth.
func Compile(s *Set, t Tree) (*Program, error) {
	p := &Program{}
	if err := p.Compile(s, t); err != nil {
		return nil, err
	}
	return p, nil
}

// Compile recompiles the program in place, reusing the instruction
// buffer. One Program per worker plus one Compile per (predator,
// generation) makes the evaluation wave allocation-free in steady
// state. The program must not be executing concurrently.
func (p *Program) Compile(s *Set, t Tree) error {
	if err := t.Check(s); err != nil {
		return err
	}
	code := p.code[:0]
	// Emit in the interpreter's execution order: the prefix encoding
	// scanned backwards. This is postfix of the mirrored tree — every
	// operator sees its LEFT operand on top of the stack, matching
	// Eval's a=stack[top], b=stack[top-1] convention.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		switch n.kind {
		case kTerm:
			code = append(code, instr{op: opTerm, idx: n.idx})
		case kConst:
			code = append(code, instr{op: opConst, val: n.val})
		default:
			op := &s.Ops[n.idx]
			if op.Arity == 1 {
				if oc, ok := builtin1[reflect.ValueOf(op.F1).Pointer()]; ok {
					code = append(code, instr{op: oc})
				} else {
					code = append(code, instr{op: opCall1, idx: n.idx})
				}
			} else {
				if oc, ok := builtin2[reflect.ValueOf(op.F2).Pointer()]; ok {
					code = append(code, instr{op: oc})
				} else {
					code = append(code, instr{op: opCall2, idx: n.idx})
				}
			}
		}
	}
	// Simulate the stack to record the true high-water mark (Check
	// already proved well-formedness, so cur ends at exactly 1).
	cur, depth := 0, 0
	for _, ins := range code {
		switch ins.op {
		case opConst, opTerm:
			cur++
			if cur > depth {
				depth = cur
			}
		case opNeg, opCall1:
			// unary: replaces the top operand
		default:
			cur--
		}
	}
	if cur != 1 {
		return fmt.Errorf("gp: compile stack imbalance %d", cur)
	}
	p.code = code
	p.ops = s.Ops
	p.terms = len(s.Terms)
	p.depth = depth
	p.size = len(t.nodes)
	return nil
}

// VM executes compiled programs. It owns the operand stack, so it is
// not safe for concurrent use — create one per worker and reuse it;
// after the stack grows to the largest program seen, evaluation
// allocates nothing.
type VM struct {
	stack []float64
}

// NewVM returns an empty VM; the operand stack grows on first use.
func NewVM() *VM { return &VM{} }

// Eval executes the program against one environment vector, whose
// layout must match the terminal set the program was compiled over.
// The result is bit-identical to Tree.Eval on the source tree: same
// operation order, same protected-operator semantics, same root-only
// NaN→0 sanitization.
func (vm *VM) Eval(p *Program, env []float64) float64 {
	if len(p.code) == 0 {
		panic("gp: evaluating an empty program")
	}
	if len(env) < p.terms {
		panic(fmt.Sprintf("gp: environment length %d below program requirement %d", len(env), p.terms))
	}
	if cap(vm.stack) < p.depth {
		vm.stack = make([]float64, p.depth)
	}
	return vm.run(p, env)
}

// run is the dispatch loop; callers have validated env and stack
// capacity.
func (vm *VM) run(p *Program, env []float64) float64 {
	st := vm.stack[:cap(vm.stack)]
	top := -1
	for _, ins := range p.code {
		switch ins.op {
		case opTerm:
			top++
			st[top] = env[ins.idx]
		case opConst:
			top++
			st[top] = ins.val
		case opAdd:
			a, b := st[top], st[top-1]
			top--
			st[top] = a + b
		case opSub:
			a, b := st[top], st[top-1]
			top--
			st[top] = a - b
		case opMul:
			a, b := st[top], st[top-1]
			top--
			st[top] = a * b
		case opDivP:
			a, b := st[top], st[top-1]
			top--
			if math.Abs(b) < protEps {
				st[top] = 1
			} else {
				st[top] = a / b
			}
		case opModP:
			a, b := st[top], st[top-1]
			top--
			if math.Abs(b) < protEps {
				st[top] = 1
			} else {
				st[top] = math.Mod(a, b)
			}
		case opMin:
			a, b := st[top], st[top-1]
			top--
			st[top] = math.Min(a, b)
		case opMax:
			a, b := st[top], st[top-1]
			top--
			st[top] = math.Max(a, b)
		case opNeg:
			st[top] = -st[top]
		case opCall1:
			st[top] = p.ops[ins.idx].F1(st[top])
		default: // opCall2
			a, b := st[top], st[top-1]
			top--
			st[top] = p.ops[ins.idx].F2(a, b)
		}
	}
	v := st[0]
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// EvalBatch executes one program against many environment vectors in a
// single pass: envs is row-major with the given stride (≥ p.Terms()),
// and out[i] receives the result for row i — len(out) rows are
// evaluated. This is the batched shape of the evaluation wave: compile
// a predator once, sweep it across every cached prey context without
// re-decoding the tree or allocating.
func (vm *VM) EvalBatch(p *Program, envs []float64, stride int, out []float64) {
	if len(p.code) == 0 {
		panic("gp: evaluating an empty program")
	}
	if stride < p.terms {
		panic(fmt.Sprintf("gp: batch stride %d below program requirement %d", stride, p.terms))
	}
	if len(envs) < stride*len(out) {
		panic(fmt.Sprintf("gp: batch of %d rows needs %d floats, got %d", len(out), stride*len(out), len(envs)))
	}
	if cap(vm.stack) < p.depth {
		vm.stack = make([]float64, p.depth)
	}
	for i := range out {
		out[i] = vm.run(p, envs[i*stride:(i+1)*stride])
	}
}
