package gp

// Shape summarizes the size and depth distribution of a GP population —
// the quantities bloat control watches. Sizes are node counts; depths
// use the same definition as Tree.Depth (a lone terminal has depth 0).
type Shape struct {
	SizeMean  float64
	SizeMax   int
	DepthMean float64
	DepthMax  int
}

// PopulationShape computes the Shape of pop. An empty population
// returns the zero Shape.
func PopulationShape(s *Set, pop []Tree) Shape {
	var sh Shape
	if len(pop) == 0 {
		return sh
	}
	var sizeSum, depthSum int
	for _, t := range pop {
		sz := t.Size()
		d := t.Depth(s)
		sizeSum += sz
		depthSum += d
		if sz > sh.SizeMax {
			sh.SizeMax = sz
		}
		if d > sh.DepthMax {
			sh.DepthMax = d
		}
	}
	n := float64(len(pop))
	sh.SizeMean = float64(sizeSum) / n
	sh.DepthMean = float64(depthSum) / n
	return sh
}
