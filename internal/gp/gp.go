// Package gp is a genetic-programming engine for evolving arithmetic
// scoring functions, the predator encoding of CARBON (§IV of the paper).
//
// Trees are stored in flat prefix order (the representation DEAP uses),
// which makes the paper's operators natural: a subtree is a contiguous
// span, so one-point crossover swaps spans and uniform mutation replaces
// a span with a freshly grown one. Evaluation walks the prefix backwards
// with a value stack — no recursion, no allocation.
//
// A primitive Set pairs an operator set with a named terminal set
// (Table I in the paper): terminals are indices into a caller-supplied
// environment vector, so the same engine serves any problem whose
// features fit in a []float64.
package gp

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Op is a primitive operator. Exactly one of F1/F2 must be set,
// matching Arity.
type Op struct {
	Name  string
	Arity int
	F1    func(a float64) float64
	F2    func(a, b float64) float64
}

// protEps guards protected division and modulo: denominators smaller in
// magnitude yield the conventional fallback value 1.
const protEps = 1e-12

// Predefined arithmetic operators: the paper's Table I operator set.
var (
	Add = Op{Name: "+", Arity: 2, F2: func(a, b float64) float64 { return a + b }}
	Sub = Op{Name: "-", Arity: 2, F2: func(a, b float64) float64 { return a - b }}
	Mul = Op{Name: "*", Arity: 2, F2: func(a, b float64) float64 { return a * b }}
	// Div is protected division: x/0 → 1.
	Div = Op{Name: "%", Arity: 2, F2: func(a, b float64) float64 {
		if math.Abs(b) < protEps {
			return 1
		}
		return a / b
	}}
	// Mod is protected modulo: mod(x, 0) → 1.
	Mod = Op{Name: "mod", Arity: 2, F2: func(a, b float64) float64 {
		if math.Abs(b) < protEps {
			return 1
		}
		return math.Mod(a, b)
	}}
	// Neg and Min/Max are extension operators (not in Table I) used by
	// the ablation benchmarks.
	Neg = Op{Name: "neg", Arity: 1, F1: func(a float64) float64 { return -a }}
	Min = Op{Name: "min", Arity: 2, F2: math.Min}
	Max = Op{Name: "max", Arity: 2, F2: math.Max}
)

// TableIOps returns the paper's exact operator set {+, -, *, %, mod}.
func TableIOps() []Op { return []Op{Add, Sub, Mul, Div, Mod} }

// Set is a primitive set: the operators and the named terminals trees
// may reference. Terminal i reads env[i] at evaluation time.
//
// Setting ConstProb > 0 enables ephemeral random constants (ERCs, an
// extension beyond the paper's Table I): during generation a leaf is,
// with that probability, a literal constant drawn uniformly from
// [ConstMin, ConstMax] instead of a named terminal. Constants print as
// numbers and Parse reads numeric tokens back as constants.
type Set struct {
	Ops   []Op
	Terms []string

	ConstProb          float64
	ConstMin, ConstMax float64
}

// Validate checks the set is usable for generation and evaluation.
func (s *Set) Validate() error {
	if len(s.Terms) == 0 {
		return errors.New("gp: set has no terminals")
	}
	if len(s.Ops) == 0 {
		return errors.New("gp: set has no operators")
	}
	if len(s.Ops) > 120 || len(s.Terms) > 120 {
		return errors.New("gp: set too large for compact node encoding")
	}
	opNames := make(map[string]int, len(s.Ops))
	for i, op := range s.Ops {
		switch op.Arity {
		case 1:
			if op.F1 == nil {
				return fmt.Errorf("gp: op %d (%s) has arity 1 but no F1", i, op.Name)
			}
		case 2:
			if op.F2 == nil {
				return fmt.Errorf("gp: op %d (%s) has arity 2 but no F2", i, op.Name)
			}
		default:
			return fmt.Errorf("gp: op %d (%s) has unsupported arity %d", i, op.Name, op.Arity)
		}
		if err := checkName("op", i, op.Name); err != nil {
			return err
		}
		if j, dup := opNames[op.Name]; dup {
			return fmt.Errorf("gp: ops %d and %d share the name %q", j, i, op.Name)
		}
		opNames[op.Name] = i
	}
	termNames := make(map[string]int, len(s.Terms))
	for i, t := range s.Terms {
		if err := checkName("terminal", i, t); err != nil {
			return err
		}
		if j, dup := termNames[t]; dup {
			return fmt.Errorf("gp: terminals %d and %d share the name %q", j, i, t)
		}
		termNames[t] = i
		// A terminal that tokenizes as a number would shadow constants
		// of that value in Parse, breaking Decode(Encode(t)) == t.
		if _, err := strconv.ParseFloat(t, 64); err == nil {
			return fmt.Errorf("gp: terminal %d (%s) is ambiguous with a numeric constant", i, t)
		}
	}
	if s.ConstProb < 0 || s.ConstProb > 1 || math.IsNaN(s.ConstProb) {
		return fmt.Errorf("gp: ConstProb %v outside [0,1]", s.ConstProb)
	}
	if s.ConstProb > 0 {
		if math.IsNaN(s.ConstMin) || math.IsNaN(s.ConstMax) ||
			math.IsInf(s.ConstMin, 0) || math.IsInf(s.ConstMax, 0) ||
			s.ConstMax < s.ConstMin {
			return fmt.Errorf("gp: bad ERC range [%v,%v]", s.ConstMin, s.ConstMax)
		}
	}
	return nil
}

// checkName rejects primitive names the S-expression codec cannot
// round-trip: empty names and names containing the tokenizer's
// separator characters (whitespace and parentheses).
func checkName(kind string, i int, name string) error {
	if name == "" {
		return fmt.Errorf("gp: %s %d has empty name", kind, i)
	}
	if strings.ContainsAny(name, "() \t\n\r") {
		return fmt.Errorf("gp: %s %d (%q) contains S-expression separator characters", kind, i, name)
	}
	return nil
}

// nodeKind discriminates prefix-order entries.
type nodeKind uint8

const (
	kOp    nodeKind = iota // operator; idx into Set.Ops
	kTerm                  // named terminal; idx into Set.Terms / env
	kConst                 // ephemeral random constant; value in val
)

// node is one prefix-order entry. Constants carry their value inline so
// subtree splicing between trees needs no table fix-ups.
type node struct {
	kind nodeKind
	idx  uint8
	val  float64
}

// leaf reports whether the node consumes no operands.
func (n node) leaf() bool { return n.kind != kOp }

// Tree is an expression tree in flat prefix order. The zero Tree is
// invalid; build trees with Set generation methods or Parse.
type Tree struct {
	nodes []node
}

// Size returns the number of nodes.
func (t Tree) Size() int { return len(t.nodes) }

// Clone returns a deep copy.
func (t Tree) Clone() Tree {
	return Tree{nodes: append([]node(nil), t.nodes...)}
}

// Equal reports structural equality.
func (t Tree) Equal(o Tree) bool {
	if len(t.nodes) != len(o.nodes) {
		return false
	}
	for i := range t.nodes {
		if t.nodes[i] != o.nodes[i] {
			return false
		}
	}
	return true
}

// spanEnd returns the index one past the subtree rooted at i.
func (t Tree) spanEnd(s *Set, i int) int {
	need := 1
	for j := i; j < len(t.nodes); j++ {
		n := t.nodes[j]
		need--
		if !n.leaf() {
			need += s.Ops[n.idx].Arity
		}
		if need == 0 {
			return j + 1
		}
	}
	return len(t.nodes) // malformed; Check catches this
}

// Depth returns the tree height (a lone terminal has depth 0).
func (t Tree) Depth(s *Set) int {
	max, depth := 0, 0
	rem := make([]int, 0, 32) // stack of remaining-children counters
	for _, n := range t.nodes {
		if depth > max {
			max = depth
		}
		if !n.leaf() {
			rem = append(rem, s.Ops[n.idx].Arity)
			depth++
			continue
		}
		for len(rem) > 0 {
			rem[len(rem)-1]--
			if rem[len(rem)-1] > 0 {
				break
			}
			rem = rem[:len(rem)-1]
			depth--
		}
	}
	return max
}

// MaxNodes is the hard node-count ceiling for evaluable trees: the
// operand stack of Eval (and the bytecode VM's high-water bound) is
// sized for it. Check rejects bigger trees, so every decode path —
// checkpoint restore, job specs, migrant injection — degrades to an
// error on hostile input instead of overflowing the evaluation stack.
// Breeding stays far below it (Limits.MaxSize is clamped to MaxNodes).
const MaxNodes = 512

// Check verifies the tree is a single well-formed expression over s.
func (t Tree) Check(s *Set) error {
	if len(t.nodes) == 0 {
		return errors.New("gp: empty tree")
	}
	if len(t.nodes) > MaxNodes {
		return fmt.Errorf("gp: tree size %d exceeds the %d-node evaluation limit", len(t.nodes), MaxNodes)
	}
	need := 1
	for i, n := range t.nodes {
		if need == 0 {
			return fmt.Errorf("gp: trailing nodes at %d", i)
		}
		need--
		switch n.kind {
		case kTerm:
			if int(n.idx) >= len(s.Terms) {
				return fmt.Errorf("gp: terminal index %d out of range at %d", n.idx, i)
			}
		case kConst:
			if math.IsNaN(n.val) || math.IsInf(n.val, 0) {
				return fmt.Errorf("gp: bad constant %v at %d", n.val, i)
			}
		case kOp:
			if int(n.idx) >= len(s.Ops) {
				return fmt.Errorf("gp: op index %d out of range at %d", n.idx, i)
			}
			need += s.Ops[n.idx].Arity
		default:
			return fmt.Errorf("gp: unknown node kind %d at %d", n.kind, i)
		}
	}
	if need != 0 {
		return fmt.Errorf("gp: truncated tree, %d operands missing", need)
	}
	return nil
}

// evalStackSize bounds the operand stack. A prefix expression scanned
// backwards never stacks more operands than its node count, and Check
// rejects trees above MaxNodes — so every tree built by the public
// constructors (generation, Parse/Decode, breeding) fits. The panic in
// Eval is a last-resort guard against hand-built Tree values that
// skipped Check.
const evalStackSize = MaxNodes

// Eval evaluates the tree against the environment vector env, whose
// layout must match s.Terms. The result is sanitized: NaN collapses to 0
// so downstream sorting comparators stay total.
func (t Tree) Eval(s *Set, env []float64) float64 {
	if len(t.nodes) > evalStackSize {
		panic(fmt.Sprintf("gp: tree size %d exceeds evaluation stack %d", len(t.nodes), evalStackSize))
	}
	var stack [evalStackSize]float64
	top := -1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.kind == kTerm {
			top++
			stack[top] = env[n.idx]
			continue
		}
		if n.kind == kConst {
			top++
			stack[top] = n.val
			continue
		}
		op := &s.Ops[n.idx]
		if op.Arity == 1 {
			stack[top] = op.F1(stack[top])
		} else {
			a, b := stack[top], stack[top-1]
			top--
			stack[top] = op.F2(a, b)
		}
	}
	v := stack[0]
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// String renders the tree as an S-expression, e.g. (+ c (* d b)).
func (t Tree) String(s *Set) string {
	var b strings.Builder
	t.write(&b, s, 0)
	return b.String()
}

func (t Tree) write(b *strings.Builder, s *Set, i int) int {
	n := t.nodes[i]
	if n.kind == kTerm {
		b.WriteString(s.Terms[n.idx])
		return i + 1
	}
	if n.kind == kConst {
		b.WriteString(strconv.FormatFloat(n.val, 'g', -1, 64))
		return i + 1
	}
	op := s.Ops[n.idx]
	b.WriteByte('(')
	b.WriteString(op.Name)
	j := i + 1
	for k := 0; k < op.Arity; k++ {
		b.WriteByte(' ')
		j = t.write(b, s, j)
	}
	b.WriteByte(')')
	return j
}

// Encode renders the tree in the canonical text encoding: the
// S-expression produced by String. For every well-formed tree t over a
// valid set s, Decode(s, Encode(s, t)) reproduces t exactly — Set.
// Validate rejects primitive names that would break that property
// (separator characters, duplicates, number-like terminals), and
// constants print with strconv's shortest exact float64 representation.
// This is the wire format used by checkpoints and trace files.
func Encode(s *Set, t Tree) string { return t.String(s) }

// Decode is the inverse of Encode: it parses the canonical text
// encoding back into a Tree over set s, rejecting anything malformed.
func Decode(s *Set, src string) (Tree, error) { return Parse(s, src) }

// Parse reads an S-expression produced by String (or hand-written) back
// into a Tree over set s.
func Parse(s *Set, src string) (Tree, error) {
	toks := tokenize(src)
	var t Tree
	rest, err := parseExpr(s, toks, &t)
	if err != nil {
		return Tree{}, err
	}
	if len(rest) != 0 {
		return Tree{}, fmt.Errorf("gp: trailing tokens %v", rest)
	}
	if err := t.Check(s); err != nil {
		return Tree{}, err
	}
	return t, nil
}

func tokenize(src string) []string {
	src = strings.ReplaceAll(src, "(", " ( ")
	src = strings.ReplaceAll(src, ")", " ) ")
	return strings.Fields(src)
}

func parseExpr(s *Set, toks []string, t *Tree) ([]string, error) {
	if len(toks) == 0 {
		return nil, errors.New("gp: unexpected end of input")
	}
	tok := toks[0]
	if tok == "(" {
		if len(toks) < 2 {
			return nil, errors.New("gp: dangling (")
		}
		name := toks[1]
		opIdx := -1
		for i, op := range s.Ops {
			if op.Name == name {
				opIdx = i
				break
			}
		}
		if opIdx < 0 {
			return nil, fmt.Errorf("gp: unknown operator %q", name)
		}
		t.nodes = append(t.nodes, node{idx: uint8(opIdx)})
		rest := toks[2:]
		var err error
		for k := 0; k < s.Ops[opIdx].Arity; k++ {
			rest, err = parseExpr(s, rest, t)
			if err != nil {
				return nil, err
			}
		}
		if len(rest) == 0 || rest[0] != ")" {
			return nil, fmt.Errorf("gp: missing ) after %s", name)
		}
		return rest[1:], nil
	}
	if tok == ")" {
		return nil, errors.New("gp: unexpected )")
	}
	for i, term := range s.Terms {
		if term == tok {
			t.nodes = append(t.nodes, node{kind: kTerm, idx: uint8(i)})
			return toks[1:], nil
		}
	}
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		t.nodes = append(t.nodes, node{kind: kConst, val: v})
		return toks[1:], nil
	}
	return nil, fmt.Errorf("gp: unknown terminal %q", tok)
}
