package gp

import (
	"strings"
	"testing"
)

// FuzzParse hammers the S-expression parser: arbitrary input must never
// panic, and whenever it parses, the tree must Check, print, and
// re-parse to an equal tree.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"c", "(+ c q)", "(% b (- c c))", "(mod x d)",
		"(+ (* c q) (% d x))", "((", "))", "(+ c", "2.5", "(- a -3)",
		"(+ 1e308 1e308)", "(", "", "()", "(+ () c)", "(unknown c q)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	set := &Set{Ops: TableIOps(), Terms: []string{"c", "q", "b", "d", "x"},
		ConstProb: 0.2, ConstMin: -5, ConstMax: 5}
	env := []float64{1, 2, 3, 4, 5}
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(set, src)
		if err != nil {
			return
		}
		if err := tr.Check(set); err != nil {
			t.Fatalf("parsed tree fails Check: %v (input %q)", err, src)
		}
		if tr.Size() > MaxNodes {
			t.Fatalf("Parse accepted %d nodes, above the %d-node limit", tr.Size(), MaxNodes)
		}
		_ = tr.Eval(set, env)
		printed := tr.String(set)
		again, err := Parse(set, printed)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", printed, err)
		}
		if !again.Equal(tr) {
			t.Fatalf("round trip changed %q → %q", src, printed)
		}
		// Simplification must keep validity on anything parseable.
		simp := Simplify(set, tr)
		if err := simp.Check(set); err != nil {
			t.Fatalf("Simplify broke tree from %q: %v", src, err)
		}
		if strings.Contains(printed, "NaN") {
			t.Fatalf("printed NaN constant from %q", src)
		}
	})
}
