package gp

import (
	"math"
	"testing"
	"testing/quick"

	"carbon/internal/rng"
)

func ercSet() *Set {
	return &Set{
		Ops:       append(TableIOps(), Neg, Min, Max),
		Terms:     []string{"a", "b"},
		ConstProb: 0.3, ConstMin: -5, ConstMax: 5,
	}
}

func TestERCGeneration(t *testing.T) {
	s := ercSet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	consts, terms := 0, 0
	for i := 0; i < 200; i++ {
		tr := s.Ramped(r, 1, 4)
		if err := tr.Check(s); err != nil {
			t.Fatal(err)
		}
		for _, n := range tr.nodes {
			switch n.kind {
			case kConst:
				consts++
				if n.val < -5 || n.val > 5 {
					t.Fatalf("ERC %v outside range", n.val)
				}
			case kTerm:
				terms++
			}
		}
	}
	if consts == 0 {
		t.Fatal("no constants generated with ConstProb 0.3")
	}
	if terms == 0 {
		t.Fatal("no named terminals generated")
	}
}

func TestERCValidation(t *testing.T) {
	s := ercSet()
	s.ConstProb = 1.5
	if err := s.Validate(); err == nil {
		t.Fatal("ConstProb > 1 accepted")
	}
	s = ercSet()
	s.ConstMin, s.ConstMax = 5, -5
	if err := s.Validate(); err == nil {
		t.Fatal("inverted ERC range accepted")
	}
	s = ercSet()
	s.ConstMax = math.Inf(1)
	if err := s.Validate(); err == nil {
		t.Fatal("infinite ERC range accepted")
	}
}

func TestConstParsePrintRoundTrip(t *testing.T) {
	s := ercSet()
	tr := MustParse(s, "(+ a 2.5)")
	if got := tr.Eval(s, []float64{1, 0}); got != 3.5 {
		t.Fatalf("(+ 1 2.5) = %v", got)
	}
	str := tr.String(s)
	if str != "(+ a 2.5)" {
		t.Fatalf("String = %q", str)
	}
	again := MustParse(s, str)
	if !again.Equal(tr) {
		t.Fatal("round trip changed tree")
	}
	neg := MustParse(s, "(- a -3)")
	if got := neg.Eval(s, []float64{0, 0}); got != 3 {
		t.Fatalf("(- 0 -3) = %v", got)
	}
}

func TestSimplifyCases(t *testing.T) {
	s := ercSet()
	cases := []struct{ in, want string }{
		{"(+ a 0)", "a"},
		{"(+ 0 a)", "a"},
		{"(- a 0)", "a"},
		{"(- a a)", "0"},
		{"(- (+ a b) (+ a b))", "0"},
		{"(* a 1)", "a"},
		{"(* 1 a)", "a"},
		{"(* a 0)", "0"},
		{"(* 0 a)", "0"},
		{"(% a a)", "1"},
		{"(% a 1)", "a"},
		{"(+ 2 3)", "5"},
		{"(* 4 -2)", "-8"},
		{"(% 7 0)", "1"}, // protected division folds through the op
		{"(mod 7 3)", "1"},
		{"(min a a)", "a"},
		{"(max (+ a b) (+ a b))", "(+ a b)"},
		{"(neg (neg a))", "a"},
		{"(neg 2)", "-2"},
		{"(+ (- a a) (* b 1))", "b"},       // cascading rewrites
		{"(* (+ 1 1) (% b b))", "2"},       // fold after identity
		{"(+ (* a 0) (+ 0 (- b 0)))", "b"}, // deep cleanup
		{"(mod a b)", "(mod a b)"},         // nothing safe to do
		{"(% 0 a)", "(% 0 a)"},             // unsafe: a may be ~0
		{"(+ a b)", "(+ a b)"},
	}
	for _, c := range cases {
		tr := MustParse(s, c.in)
		got := Simplify(s, tr)
		if err := got.Check(s); err != nil {
			t.Fatalf("%s: simplified tree invalid: %v", c.in, err)
		}
		if got.String(s) != c.want {
			t.Fatalf("Simplify(%s) = %s, want %s", c.in, got.String(s), c.want)
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	s := ercSet()
	r := rng.New(9)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		tr := s.Ramped(rr, 0, 5)
		simp := Simplify(s, tr)
		if simp.Check(s) != nil {
			return false
		}
		if simp.Size() > tr.Size() {
			return false // simplification must never grow the tree
		}
		for trial := 0; trial < 20; trial++ {
			env := []float64{r.Range(-10, 10), r.Range(-10, 10)}
			a := tr.Eval(s, env)
			b := simp.Eval(s, env)
			if math.IsNaN(a) && math.IsNaN(b) {
				continue
			}
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyDoesNotMutateInput(t *testing.T) {
	s := ercSet()
	tr := MustParse(s, "(+ (- a a) b)")
	cp := tr.Clone()
	Simplify(s, tr)
	if !tr.Equal(cp) {
		t.Fatal("Simplify mutated its input")
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	s := ercSet()
	r := rng.New(11)
	for i := 0; i < 100; i++ {
		tr := s.Ramped(r, 0, 5)
		once := Simplify(s, tr)
		twice := Simplify(s, once)
		if !once.Equal(twice) {
			t.Fatalf("not idempotent: %s → %s", once.String(s), twice.String(s))
		}
	}
}

func TestCrossoverWithConstants(t *testing.T) {
	s := ercSet()
	r := rng.New(13)
	lim := DefaultLimits()
	for i := 0; i < 200; i++ {
		a := s.Ramped(r, 1, 4)
		b := s.Ramped(r, 1, 4)
		ca, cb := OnePointCrossover(r, s, a, b, lim)
		if ca.Check(s) != nil || cb.Check(s) != nil {
			t.Fatal("invalid child with constants")
		}
		m := UniformMutate(r, s, ca, 3, lim)
		if m.Check(s) != nil {
			t.Fatal("invalid mutant with constants")
		}
	}
}
