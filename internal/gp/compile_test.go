package gp

import (
	"math"
	"strings"
	"testing"

	"carbon/internal/rng"
)

func compileSet() *Set {
	return &Set{
		Ops:       []Op{Add, Sub, Mul, Div, Mod, Neg, Min, Max},
		Terms:     []string{"c", "q", "b", "d", "x"},
		ConstProb: 0.25, ConstMin: -3, ConstMax: 3,
	}
}

// mustCompile parses src over s and compiles it.
func mustCompile(t *testing.T, s *Set, src string) (Tree, *Program) {
	t.Helper()
	tr, err := Parse(s, src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p, err := Compile(s, tr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return tr, p
}

func TestCompiledMatchesInterpreterOnFixtures(t *testing.T) {
	s := compileSet()
	vm := NewVM()
	exprs := []string{
		"c",
		"-2.5",
		"(+ c q)",
		"(- (* c q) (% d x))",
		"(% c (- q q))",   // protected division fallback
		"(mod d (- x x))", // protected modulo fallback
		"(neg (min c (max q b)))",
		"(+ (% 1 0.0000000000001) c)", // denominator just above protEps
		"(* (+ c (* q (- b (% d (mod x c))))) (neg q))",
	}
	envs := [][]float64{
		{1, 2, 3, 4, 5},
		{0, 0, 0, 0, 0},
		{math.Inf(1), math.Inf(-1), 1e308, -1e308, 1e-308},
		{math.NaN(), 1, math.NaN(), -0.0, 2},
		{-1.5, 2.5, -3.5, 4.5, -5.5},
	}
	for _, src := range exprs {
		tr, p := mustCompile(t, s, src)
		if p.Size() != tr.Size() {
			t.Errorf("%q: program size %d, tree size %d", src, p.Size(), tr.Size())
		}
		for _, env := range envs {
			want := tr.Eval(s, env)
			got := vm.Eval(p, env)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Errorf("%q on %v: interpreter %v (%x), VM %v (%x)",
					src, env, want, math.Float64bits(want), got, math.Float64bits(got))
			}
		}
	}
}

// Custom operators (not the builtin function values) must take the
// generic call path and still match the interpreter exactly.
func TestCompileCustomOpsFallBackToCalls(t *testing.T) {
	s := &Set{
		Ops: []Op{
			{Name: "sq", Arity: 1, F1: func(a float64) float64 { return a * a }},
			{Name: "hyp", Arity: 2, F2: math.Hypot},
			Add,
		},
		Terms: []string{"u", "v"},
	}
	tr, p := mustCompile(t, s, "(+ (sq u) (hyp u v))")
	vm := NewVM()
	for _, env := range [][]float64{{3, 4}, {-1, 1e154}, {math.NaN(), 2}} {
		want := tr.Eval(s, env)
		got := vm.Eval(p, env)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("env %v: interpreter %v, VM %v", env, want, got)
		}
	}
}

func TestProgramRecompileReusesStorage(t *testing.T) {
	s := compileSet()
	r := rng.New(11)
	var p Program
	vm := NewVM()
	env := []float64{1, 2, 3, 4, 5}
	for i := 0; i < 50; i++ {
		tr := s.Ramped(r, 0, 6)
		if err := p.Compile(s, tr); err != nil {
			t.Fatalf("recompile %d: %v", i, err)
		}
		want := tr.Eval(s, env)
		got := vm.Eval(&p, env)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("recompile %d: interpreter %v, VM %v", i, want, got)
		}
	}
}

func TestEvalBatchMatchesEval(t *testing.T) {
	s := compileSet()
	tr, p := mustCompile(t, s, "(- (* c q) (% d (mod x b)))")
	vm := NewVM()
	const rows = 7
	stride := p.Terms()
	envs := make([]float64, rows*stride)
	r := rng.New(3)
	for i := range envs {
		envs[i] = r.Range(-10, 10)
	}
	out := make([]float64, rows)
	vm.EvalBatch(p, envs, stride, out)
	for i := 0; i < rows; i++ {
		want := tr.Eval(s, envs[i*stride:(i+1)*stride])
		if math.Float64bits(want) != math.Float64bits(out[i]) {
			t.Fatalf("row %d: interpreter %v, batch %v", i, want, out[i])
		}
	}
}

// oversizeExpr builds a left-deep S-expression of exactly 2k+1 nodes
// (k "+" ops over k+1 "c" leaves).
func oversizeExpr(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		b.WriteString("(+ ")
	}
	b.WriteString("c")
	for i := 0; i < k; i++ {
		b.WriteString(" c)")
	}
	return b.String()
}

// A 513-node tree — one past MaxNodes — must be rejected by Parse (and
// hence every decode path) and by Compile, not crash Eval.
func TestOversizeTreeRejected(t *testing.T) {
	s := compileSet()
	// 256 ops + 257 leaves = 513 nodes.
	src := oversizeExpr(256)
	if _, err := Parse(s, src); err == nil {
		t.Fatal("Parse accepted a 513-node tree")
	}
	// Exactly at the limit still parses, evaluates and compiles.
	ok, err := Parse(s, oversizeExpr(255))
	if err != nil {
		t.Fatalf("Parse rejected a 511-node tree: %v", err)
	}
	if got := ok.Size(); got != 511 {
		t.Fatalf("expected 511 nodes, got %d", got)
	}
	p, err := Compile(s, ok)
	if err != nil {
		t.Fatalf("Compile rejected a legal tree: %v", err)
	}
	env := []float64{1, 2, 3, 4, 5}
	want := ok.Eval(s, env)
	if got := NewVM().Eval(p, env); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("deep tree: interpreter %v, VM %v", want, got)
	}
	// A hand-built oversize Tree value (bypassing Parse) must fail
	// Check and Compile the same way.
	big := Tree{}
	for i := 0; i < 256; i++ {
		big.nodes = append(big.nodes, node{idx: 0}) // "+"
	}
	for i := 0; i < 257; i++ {
		big.nodes = append(big.nodes, node{kind: kTerm, idx: 0})
	}
	if err := big.Check(s); err == nil {
		t.Fatal("Check accepted a 513-node tree")
	}
	if _, err := Compile(s, big); err == nil {
		t.Fatal("Compile accepted a 513-node tree")
	}
}

func TestCompileRejectsMalformedTrees(t *testing.T) {
	s := compileSet()
	bad := []Tree{
		{},                                      // empty
		{nodes: []node{{idx: 0}}},               // truncated (+ with no operands)
		{nodes: []node{{kind: kTerm, idx: 99}}}, // terminal out of range
	}
	for i, tr := range bad {
		if _, err := Compile(s, tr); err == nil {
			t.Errorf("case %d: Compile accepted a malformed tree", i)
		}
	}
}

func TestVMEvalZeroAlloc(t *testing.T) {
	s := compileSet()
	tr, p := mustCompile(t, s, "(* (+ c (% q d)) (- b (mod x c)))")
	vm := NewVM()
	env := []float64{1, 2, 3, 4, 5}
	vm.Eval(p, env) // grow the stack once
	allocs := testing.AllocsPerRun(200, func() {
		vm.Eval(p, env)
	})
	if allocs != 0 {
		t.Fatalf("VM.Eval allocates %v per call, want 0", allocs)
	}
	_ = tr
}

// FuzzCompiledEval is the differential fuzz of the tentpole contract:
// for any valid tree and any environment — including NaN, ±Inf and
// protected-division edge cases — the compiled VM must return the
// bit-identical float64 the interpreter returns.
func FuzzCompiledEval(f *testing.F) {
	f.Add(uint64(1), 1.0, 2.0, 3.0, 4.0, 5.0)
	f.Add(uint64(7), math.Inf(1), math.Inf(-1), 0.0, math.Copysign(0, -1), 1e-300)
	f.Add(uint64(3), math.NaN(), 1e308, -1e308, 1e-13, -1e-13)
	f.Add(uint64(42), 0.5, -0.5, protEps, -protEps, 2*protEps)
	set := compileSet()
	f.Fuzz(func(t *testing.T, seed uint64, a, b, c, d, e float64) {
		r := rng.New(seed)
		tree := set.Ramped(r, 0, 6)
		prog, err := Compile(set, tree)
		if err != nil {
			t.Fatalf("valid tree failed to compile: %v", err)
		}
		env := []float64{a, b, c, d, e}
		want := tree.Eval(set, env)
		vm := NewVM()
		got := vm.Eval(prog, env)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("tree %s on %v: interpreter %v (%x), VM %v (%x)",
				tree.String(set), env, want, math.Float64bits(want), got, math.Float64bits(got))
		}
		// The batched entry point must agree with the scalar one.
		envs := make([]float64, 0, 3*len(env))
		for i := 0; i < 3; i++ {
			envs = append(envs, env...)
		}
		out := make([]float64, 3)
		vm.EvalBatch(prog, envs, len(env), out)
		for i, v := range out {
			if math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("batch row %d: got %v, want %v", i, v, want)
			}
		}
	})
}
