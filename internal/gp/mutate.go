package gp

import "carbon/internal/rng"

// PointMutate replaces a single uniformly chosen node in place of kind:
// an operator becomes another operator of the same arity, a named
// terminal becomes another named terminal (or an ERC when the set
// enables them), a constant becomes a fresh ERC draw. Tree shape is
// preserved, so no limit checks are needed. The input is not mutated.
//
// Point mutation is the gentler companion of the paper's uniform
// (subtree) mutation; it is exposed for the operator-suite ablation
// (core.Config.LLPointMutProb).
func PointMutate(r *rng.Rand, s *Set, t Tree) Tree {
	out := t.Clone()
	i := r.Intn(len(out.nodes))
	n := out.nodes[i]
	switch n.kind {
	case kOp:
		arity := s.Ops[n.idx].Arity
		// Collect compatible replacements.
		var cands []uint8
		for oi, op := range s.Ops {
			if op.Arity == arity && uint8(oi) != n.idx {
				cands = append(cands, uint8(oi))
			}
		}
		if len(cands) > 0 {
			out.nodes[i].idx = cands[r.Intn(len(cands))]
		}
	case kTerm:
		out.nodes[i] = s.randomLeaf(r)
	case kConst:
		if s.ConstProb > 0 {
			out.nodes[i].val = r.Range(s.ConstMin, s.ConstMax)
		} else {
			out.nodes[i] = node{kind: kTerm, idx: uint8(r.Intn(len(s.Terms)))}
		}
	}
	return out
}

// JitterConsts perturbs every constant in the tree by Gaussian noise of
// the given standard deviation, clamped to the set's ERC range. Trees
// without constants are returned as unmodified clones. The input is not
// mutated.
func JitterConsts(r *rng.Rand, s *Set, t Tree, sigma float64) Tree {
	out := t.Clone()
	for i, n := range out.nodes {
		if n.kind != kConst {
			continue
		}
		v := n.val + sigma*r.NormFloat64()
		if s.ConstProb > 0 {
			if v < s.ConstMin {
				v = s.ConstMin
			}
			if v > s.ConstMax {
				v = s.ConstMax
			}
		}
		out.nodes[i].val = v
	}
	return out
}

// ConstCount returns the number of ERC nodes in the tree.
func (t Tree) ConstCount() int {
	c := 0
	for _, n := range t.nodes {
		if n.kind == kConst {
			c++
		}
	}
	return c
}
