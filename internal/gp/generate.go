package gp

import (
	"fmt"

	"carbon/internal/rng"
)

// Limits bound tree growth during generation and breeding. The defaults
// follow Koza's conventions (max depth 17) with a size cap that keeps
// evaluation stack-allocated.
type Limits struct {
	MaxDepth int // maximum height after any operator
	MaxSize  int // maximum node count after any operator
}

const maxDepthHard = 17

// DefaultLimits are the limits used throughout the paper reproduction.
func DefaultLimits() Limits { return Limits{MaxDepth: maxDepthHard, MaxSize: 256} }

func (l Limits) normalized() Limits {
	if l.MaxDepth <= 0 {
		l.MaxDepth = maxDepthHard
	}
	if l.MaxSize <= 0 {
		l.MaxSize = 256
	}
	if l.MaxSize > evalStackSize {
		l.MaxSize = evalStackSize
	}
	return l
}

// Full generates a tree where every leaf sits at exactly depth `depth`
// (Koza's "full" method).
func (s *Set) Full(r *rng.Rand, depth int) Tree {
	var t Tree
	s.generate(r, &t, depth, true)
	return t
}

// Grow generates a tree where branches may terminate early (Koza's
// "grow" method): at interior depths a node is a terminal with
// probability proportional to the terminal share of the primitive set.
func (s *Set) Grow(r *rng.Rand, depth int) Tree {
	var t Tree
	s.generate(r, &t, depth, false)
	return t
}

// randomLeaf draws a leaf: an ERC with probability ConstProb, otherwise
// a uniform named terminal.
func (s *Set) randomLeaf(r *rng.Rand) node {
	if s.ConstProb > 0 && r.Bool(s.ConstProb) {
		return node{kind: kConst, val: r.Range(s.ConstMin, s.ConstMax)}
	}
	return node{kind: kTerm, idx: uint8(r.Intn(len(s.Terms)))}
}

func (s *Set) generate(r *rng.Rand, t *Tree, depth int, full bool) {
	if depth <= 0 {
		t.nodes = append(t.nodes, s.randomLeaf(r))
		return
	}
	pickOp := true
	if !full {
		// Grow: terminal probability = |T| / (|T| + |O|), DEAP's rule.
		total := len(s.Terms) + len(s.Ops)
		pickOp = r.Intn(total) >= len(s.Terms)
	}
	if !pickOp {
		t.nodes = append(t.nodes, s.randomLeaf(r))
		return
	}
	opIdx := r.Intn(len(s.Ops))
	t.nodes = append(t.nodes, node{idx: uint8(opIdx)})
	for k := 0; k < s.Ops[opIdx].Arity; k++ {
		s.generate(r, t, depth-1, full)
	}
}

// Ramped generates a tree by ramped half-and-half: a uniform depth in
// [minDepth, maxDepth] and a coin flip between Full and Grow. It is the
// standard GP initialization (used for the paper's LL population).
func (s *Set) Ramped(r *rng.Rand, minDepth, maxDepth int) Tree {
	if minDepth < 0 || maxDepth < minDepth {
		panic(fmt.Sprintf("gp: bad ramp [%d,%d]", minDepth, maxDepth))
	}
	d := r.IntRange(minDepth, maxDepth)
	if r.Bool(0.5) {
		return s.Full(r, d)
	}
	return s.Grow(r, d)
}

// RandomSubtreeIndex picks a uniform node index; with probability 0.9 it
// restricts the choice to interior nodes when any exist (Koza's 90/10
// node-selection bias, which avoids degenerate leaf-only crossover).
func (t Tree) RandomSubtreeIndex(r *rng.Rand, s *Set) int {
	if len(t.nodes) == 1 {
		return 0
	}
	if r.Bool(0.9) {
		interior := 0
		for _, n := range t.nodes {
			if !n.leaf() {
				interior++
			}
		}
		if interior > 0 {
			k := r.Intn(interior)
			for i, n := range t.nodes {
				if !n.leaf() {
					if k == 0 {
						return i
					}
					k--
				}
			}
		}
	}
	return r.Intn(len(t.nodes))
}

// OnePointCrossover swaps a random subtree of a with a random subtree of
// b (the paper's "(GP) One-point" crossover, GP subtree exchange). If an
// offspring would exceed the limits, the corresponding parent is
// returned unchanged instead — the standard static-limit policy.
func OnePointCrossover(r *rng.Rand, s *Set, a, b Tree, lim Limits) (Tree, Tree) {
	lim = lim.normalized()
	ia := a.RandomSubtreeIndex(r, s)
	ib := b.RandomSubtreeIndex(r, s)
	ea := a.spanEnd(s, ia)
	eb := b.spanEnd(s, ib)

	childA := spliceTree(a, ia, ea, b.nodes[ib:eb])
	childB := spliceTree(b, ib, eb, a.nodes[ia:ea])
	if childA.Size() > lim.MaxSize || childA.Depth(s) > lim.MaxDepth {
		childA = a.Clone()
	}
	if childB.Size() > lim.MaxSize || childB.Depth(s) > lim.MaxDepth {
		childB = b.Clone()
	}
	return childA, childB
}

// spliceTree returns base with base[lo:hi] replaced by repl.
func spliceTree(base Tree, lo, hi int, repl []node) Tree {
	out := make([]node, 0, len(base.nodes)-(hi-lo)+len(repl))
	out = append(out, base.nodes[:lo]...)
	out = append(out, repl...)
	out = append(out, base.nodes[hi:]...)
	return Tree{nodes: out}
}

// UniformMutate replaces a uniformly chosen subtree with a fresh Grow
// tree of depth up to `growDepth` (the paper's "(GP) uniform" mutation).
// The limit policy matches crossover: an oversized child collapses back
// to a copy of the parent.
func UniformMutate(r *rng.Rand, s *Set, t Tree, growDepth int, lim Limits) Tree {
	lim = lim.normalized()
	i := r.Intn(t.Size())
	e := t.spanEnd(s, i)
	var repl Tree
	s.generate(r, &repl, r.IntRange(0, growDepth), false)
	child := spliceTree(t, i, e, repl.nodes)
	if child.Size() > lim.MaxSize || child.Depth(s) > lim.MaxDepth {
		return t.Clone()
	}
	return child
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(s *Set, src string) Tree {
	t, err := Parse(s, src)
	if err != nil {
		panic(err)
	}
	return t
}
