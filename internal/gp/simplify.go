package gp

import "math"

// Simplify rewrites the tree into an equivalent, usually smaller form.
// Evolved trees accumulate dead code (introns); simplification makes the
// reported heuristics readable without changing what they compute.
//
// Only rewrites that are exact under the *protected* operator semantics
// are applied:
//
//	constant folding     (op k₁ k₂)  →  k          (using the op itself)
//	(- X X)              →  0                      (always)
//	(%  X X)             →  1                      (x/x, and 0/0 → 1 by protection)
//	(+ X 0), (+ 0 X)     →  X
//	(- X 0)              →  X
//	(* X 1), (* 1 X)     →  X
//	(* X 0), (* 0 X)     →  0
//	(% X 1)              →  X
//	(min X X), (max X X) →  X                      (and neg(neg X) → X)
//
// Notably absent: (% 0 X) → 0 is wrong when X ≈ 0 (protection yields 1),
// and (mod X 1) ≠ X. Rewrites run to a fixed point. Operators are
// recognized by name ("+", "-", "*", "%", "mod", "neg", "min", "max"),
// so custom sets keep their own exotic operators unsimplified.
func Simplify(s *Set, t Tree) Tree {
	cur := t.Clone()
	for {
		next, changed := simplifyOnce(s, cur)
		if !changed {
			return next
		}
		cur = next
	}
}

// simplifyOnce applies one bottom-up rewrite pass.
func simplifyOnce(s *Set, t Tree) (Tree, bool) {
	var out Tree
	changed := false
	var walk func(i int) int // returns index past the subtree, appends rewritten form
	walk = func(i int) int {
		n := t.nodes[i]
		if n.leaf() {
			out.nodes = append(out.nodes, n)
			return i + 1
		}
		op := s.Ops[n.idx]
		// Rewrite children first (into out), remembering where each
		// child's rewritten span starts.
		opPos := len(out.nodes)
		out.nodes = append(out.nodes, n)
		starts := make([]int, op.Arity+1)
		j := i + 1
		for k := 0; k < op.Arity; k++ {
			starts[k] = len(out.nodes)
			j = walk(j)
		}
		starts[op.Arity] = len(out.nodes)

		replace := func(repl []node) {
			// Copy before truncating: repl may alias out.nodes.
			cp := append([]node(nil), repl...)
			out.nodes = append(out.nodes[:opPos], cp...)
			changed = true
		}
		constAt := func(k int) (float64, bool) {
			if starts[k+1]-starts[k] == 1 && out.nodes[starts[k]].kind == kConst {
				return out.nodes[starts[k]].val, true
			}
			return 0, false
		}
		child := func(k int) []node { return out.nodes[starts[k]:starts[k+1]] }
		sameChildren := func() bool {
			a, b := child(0), child(1)
			if len(a) != len(b) {
				return false
			}
			for x := range a {
				if a[x] != b[x] {
					return false
				}
			}
			return true
		}

		// Constant folding for any operator.
		switch op.Arity {
		case 1:
			if v, ok := constAt(0); ok {
				if f := sanitize(op.F1(v)); f == f { // not NaN
					replace([]node{{kind: kConst, val: f}})
					return j
				}
			}
		case 2:
			va, aok := constAt(0)
			vb, bok := constAt(1)
			if aok && bok {
				if f := sanitize(op.F2(va, vb)); f == f {
					replace([]node{{kind: kConst, val: f}})
					return j
				}
			}
		}
		if op.Arity != 2 {
			if op.Name == "neg" && starts[1]-starts[0] >= 1 {
				c := child(0)
				if c[0].kind == kOp && s.Ops[c[0].idx].Name == "neg" {
					replace(c[1:]) // neg(neg X) → X
					return j
				}
			}
			return j
		}

		va, aok := constAt(0)
		vb, bok := constAt(1)
		switch op.Name {
		case "-":
			if sameChildren() {
				replace([]node{{kind: kConst, val: 0}})
				return j
			}
			if bok && vb == 0 {
				replace(child(0))
				return j
			}
		case "%":
			if sameChildren() {
				replace([]node{{kind: kConst, val: 1}})
				return j
			}
			if bok && vb == 1 {
				replace(child(0))
				return j
			}
		case "+":
			if aok && va == 0 {
				replace(child(1))
				return j
			}
			if bok && vb == 0 {
				replace(child(0))
				return j
			}
		case "*":
			if aok && va == 1 {
				replace(child(1))
				return j
			}
			if bok && vb == 1 {
				replace(child(0))
				return j
			}
			if (aok && va == 0) || (bok && vb == 0) {
				replace([]node{{kind: kConst, val: 0}})
				return j
			}
		case "min", "max":
			if sameChildren() {
				replace(child(0))
				return j
			}
		}
		return j
	}
	walk(0)
	return out, changed
}

// sanitize maps Inf to NaN so folding never bakes an Inf constant in
// (Check rejects them); NaN results block the rewrite.
func sanitize(v float64) float64 {
	if math.IsInf(v, 0) {
		return math.NaN()
	}
	return v
}
