package gp_test

import (
	"fmt"

	"carbon/internal/gp"
)

// Build the paper's Table I language, parse a hand-written scoring
// function, evaluate it against one (item, service) feature vector and
// simplify a redundant expression.
func Example() {
	set := &gp.Set{
		Ops:   gp.TableIOps(),
		Terms: []string{"c", "q", "b", "d", "xbar"},
	}
	// The LP-guided ordering: dual-weighted coverage per unit cost.
	tree := gp.MustParse(set, "(% (* q d) c)")
	env := []float64{4, 2, 10, 3, 0.5} // c=4, q=2, b=10, d=3, x̄=0.5
	fmt.Printf("score contribution: %.2f\n", tree.Eval(set, env))

	messy := gp.MustParse(set, "(+ (- c c) (* q (% d d)))")
	fmt.Printf("simplified: %s\n", gp.Simplify(set, messy).String(set))
	// Output:
	// score contribution: 1.50
	// simplified: q
}

// Protected operators keep every expression total: division and modulo
// by (near-)zero return 1 instead of NaN/Inf.
func Example_protectedDivision() {
	set := &gp.Set{Ops: gp.TableIOps(), Terms: []string{"x", "y"}}
	tree := gp.MustParse(set, "(% x y)")
	fmt.Println(tree.Eval(set, []float64{7, 0}))
	// Output:
	// 1
}
