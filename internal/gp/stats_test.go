package gp

import "testing"

func TestPopulationShape(t *testing.T) {
	s := testSet()
	parse := func(src string) Tree {
		tr, err := Parse(s, src)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	pop := []Tree{
		parse("c"),             // size 1, depth 0
		parse("(+ c q)"),       // size 3, depth 1
		parse("(+ (* c q) d)"), // size 5, depth 2
	}
	sh := PopulationShape(s, pop)
	if sh.SizeMean != 3 || sh.SizeMax != 5 {
		t.Fatalf("sizes: %+v", sh)
	}
	if sh.DepthMean != 1 || sh.DepthMax != 2 {
		t.Fatalf("depths: %+v", sh)
	}
	if got := PopulationShape(s, nil); got != (Shape{}) {
		t.Fatalf("empty population shape %+v", got)
	}
}
