package gp

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestPointMutatePreservesShape(t *testing.T) {
	s := ercSet()
	r := rng.New(71)
	for trial := 0; trial < 300; trial++ {
		tr := s.Ramped(r, 1, 5)
		mu := PointMutate(r, s, tr)
		if err := mu.Check(s); err != nil {
			t.Fatalf("invalid mutant: %v", err)
		}
		if mu.Size() != tr.Size() {
			t.Fatalf("point mutation changed size %d → %d", tr.Size(), mu.Size())
		}
		if mu.Depth(s) != tr.Depth(s) {
			t.Fatal("point mutation changed depth")
		}
		// At most one position differs.
		diffs := 0
		for i := range tr.nodes {
			if tr.nodes[i] != mu.nodes[i] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("%d positions changed", diffs)
		}
	}
}

func TestPointMutateDoesNotMutateInput(t *testing.T) {
	s := ercSet()
	r := rng.New(73)
	tr := s.Ramped(r, 2, 4)
	cp := tr.Clone()
	for i := 0; i < 50; i++ {
		PointMutate(r, s, tr)
	}
	if !tr.Equal(cp) {
		t.Fatal("input mutated")
	}
}

func TestPointMutateOperatorKeepsArity(t *testing.T) {
	s := &Set{Ops: []Op{Add, Sub, Neg}, Terms: []string{"a"}}
	r := rng.New(75)
	tr := MustParse(s, "(+ (neg a) a)")
	for trial := 0; trial < 200; trial++ {
		mu := PointMutate(r, s, tr)
		if err := mu.Check(s); err != nil {
			t.Fatalf("arity broke: %v (%s)", err, mu.String(s))
		}
	}
}

func TestPointMutateConstWithoutERC(t *testing.T) {
	// A constant in a set without ERCs (e.g. parsed) must mutate into a
	// named terminal, not a fresh constant.
	s := &Set{Ops: TableIOps(), Terms: []string{"a", "b"}}
	tr := MustParse(s, "2.5")
	r := rng.New(77)
	mutatedToTerm := false
	for trial := 0; trial < 50; trial++ {
		mu := PointMutate(r, s, tr)
		if mu.ConstCount() == 0 {
			mutatedToTerm = true
		}
	}
	if !mutatedToTerm {
		t.Fatal("constant never became a terminal")
	}
}

func TestJitterConsts(t *testing.T) {
	s := ercSet()
	r := rng.New(79)
	tr := MustParse(s, "(+ (* a 2) 3)")
	if tr.ConstCount() != 2 {
		t.Fatalf("ConstCount = %d", tr.ConstCount())
	}
	jit := JitterConsts(r, s, tr, 0.5)
	if err := jit.Check(s); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range tr.nodes {
		if tr.nodes[i] != jit.nodes[i] {
			if jit.nodes[i].kind != kConst {
				t.Fatal("jitter touched a non-constant")
			}
			if jit.nodes[i].val < s.ConstMin || jit.nodes[i].val > s.ConstMax {
				t.Fatalf("jittered constant %v outside ERC range", jit.nodes[i].val)
			}
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("jitter changed nothing")
	}
	// Structure preserved.
	if jit.Size() != tr.Size() || jit.Depth(s) != tr.Depth(s) {
		t.Fatal("jitter changed tree shape")
	}
}

func TestJitterConstsNoConstants(t *testing.T) {
	s := ercSet()
	r := rng.New(81)
	tr := MustParse(s, "(+ a b)")
	jit := JitterConsts(r, s, tr, 1.0)
	if !jit.Equal(tr) {
		t.Fatal("constant-free tree changed")
	}
}

func TestJitterZeroSigma(t *testing.T) {
	s := ercSet()
	r := rng.New(83)
	tr := MustParse(s, "(+ a 1.5)")
	jit := JitterConsts(r, s, tr, 0)
	for i := range tr.nodes {
		if tr.nodes[i].kind == kConst &&
			math.Abs(tr.nodes[i].val-jit.nodes[i].val) > 1e-12 {
			t.Fatal("sigma 0 moved a constant")
		}
	}
}
