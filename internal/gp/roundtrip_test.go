package gp

import (
	"testing"

	"carbon/internal/rng"
)

// TestEncodeDecodeProperty is the codec contract required by the
// checkpoint subsystem: Decode(Encode(t)) == t for random trees — fresh
// ramped trees and trees churned through every breeding operator, over
// sets with and without ephemeral constants.
func TestEncodeDecodeProperty(t *testing.T) {
	sets := map[string]*Set{
		"tableI": {Ops: TableIOps(), Terms: []string{"c", "q", "b", "d", "xbar"}},
		"erc": {Ops: append(TableIOps(), Neg, Min, Max),
			Terms: []string{"c", "q"}, ConstProb: 0.3, ConstMin: -1e3, ConstMax: 1e3},
		"tinyConsts": {Ops: TableIOps(), Terms: []string{"v"},
			ConstProb: 0.5, ConstMin: -1e-9, ConstMax: 1e-9},
	}
	for name, set := range sets {
		t.Run(name, func(t *testing.T) {
			if err := set.Validate(); err != nil {
				t.Fatal(err)
			}
			r := rng.New(0xC0DEC)
			lim := DefaultLimits()
			var prev Tree
			for i := 0; i < 400; i++ {
				tr := set.Ramped(r, 0, 5)
				switch i % 4 {
				case 1:
					tr = UniformMutate(r, set, tr, 3, lim)
				case 2:
					tr = PointMutate(r, set, tr)
				case 3:
					if prev.Size() > 0 {
						tr, _ = OnePointCrossover(r, set, tr, prev, lim)
					}
				}
				prev = tr
				if err := tr.Check(set); err != nil {
					t.Fatalf("tree %d invalid before encoding: %v", i, err)
				}
				src := Encode(set, tr)
				back, err := Decode(set, src)
				if err != nil {
					t.Fatalf("tree %d: Decode(%q) failed: %v", i, src, err)
				}
				if !back.Equal(tr) {
					t.Fatalf("tree %d: round trip changed tree:\n encoded %q\n decoded %q",
						i, src, Encode(set, back))
				}
			}
		})
	}
}

// TestValidateRejectsAmbiguousCodecNames pins the Set.Validate rules
// that make the text encoding canonical: any name the tokenizer would
// split, collide, or misread as a constant is rejected up front.
func TestValidateRejectsAmbiguousCodecNames(t *testing.T) {
	bad := map[string]*Set{
		"term with space":   {Ops: TableIOps(), Terms: []string{"a b"}},
		"term with paren":   {Ops: TableIOps(), Terms: []string{"a("}},
		"numeric term":      {Ops: TableIOps(), Terms: []string{"1.5"}},
		"scientific term":   {Ops: TableIOps(), Terms: []string{"1e3"}},
		"duplicate terms":   {Ops: TableIOps(), Terms: []string{"a", "a"}},
		"op with space":     {Ops: append(TableIOps(), Op{Name: "my op", Arity: 1, F1: func(a float64) float64 { return a }}), Terms: []string{"a"}},
		"op with newline":   {Ops: append(TableIOps(), Op{Name: "f\n", Arity: 1, F1: func(a float64) float64 { return a }}), Terms: []string{"a"}},
		"duplicate op name": {Ops: append(TableIOps(), Add), Terms: []string{"a"}},
	}
	for name, set := range bad {
		if err := set.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The sets actually used across the repo must stay valid.
	good := &Set{Ops: TableIOps(), Terms: []string{"c", "q", "b", "d", "xbar"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Table I set rejected: %v", err)
	}
}
