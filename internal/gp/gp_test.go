package gp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"carbon/internal/rng"
)

func testSet() *Set {
	return &Set{Ops: TableIOps(), Terms: []string{"c", "q", "b", "d", "x"}}
}

func TestTableIOperatorSet(t *testing.T) {
	// The paper's Table I operator set, by name and arity.
	ops := TableIOps()
	want := []string{"+", "-", "*", "%", "mod"}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops", len(ops))
	}
	for i, op := range ops {
		if op.Name != want[i] {
			t.Fatalf("op %d = %q, want %q", i, op.Name, want[i])
		}
		if op.Arity != 2 {
			t.Fatalf("op %q arity %d", op.Name, op.Arity)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := testSet().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Set{
		{Ops: TableIOps()},     // no terminals
		{Terms: []string{"a"}}, // no ops
		{Ops: []Op{{Name: "h", Arity: 3}}, Terms: []string{"a"}},    // bad arity
		{Ops: []Op{{Name: "h", Arity: 2}}, Terms: []string{"a"}},    // missing F2
		{Ops: []Op{{Name: "h", Arity: 1}}, Terms: []string{"a"}},    // missing F1
		{Ops: []Op{{Arity: 2, F2: math.Max}}, Terms: []string{"a"}}, // empty name
		{Ops: TableIOps(), Terms: []string{""}},                     // empty terminal
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid set accepted", i)
		}
	}
}

func TestProtectedOperators(t *testing.T) {
	if got := Div.F2(5, 0); got != 1 {
		t.Fatalf("5 %% 0 = %v, want 1", got)
	}
	if got := Div.F2(6, 2); got != 3 {
		t.Fatalf("6 %% 2 = %v", got)
	}
	if got := Mod.F2(7, 0); got != 1 {
		t.Fatalf("mod(7,0) = %v, want 1", got)
	}
	if got := Mod.F2(7, 3); got != 1 {
		t.Fatalf("mod(7,3) = %v, want 1", got)
	}
}

func TestParseEvalRoundTrip(t *testing.T) {
	s := testSet()
	env := []float64{2, 3, 5, 7, 11}
	cases := []struct {
		src  string
		want float64
	}{
		{"c", 2},
		{"x", 11},
		{"(+ c q)", 5},
		{"(- b d)", -2},
		{"(* q b)", 15},
		{"(% b q)", 5.0 / 3.0},
		{"(% b (- c c))", 1}, // protected: denominator 0
		{"(mod x d)", 4},
		{"(+ (* c q) (% d x))", 6 + 7.0/11.0},
	}
	for _, c := range cases {
		tree := MustParse(s, c.src)
		if err := tree.Check(s); err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := tree.Eval(s, env); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", c.src, got, c.want)
		}
		// String → Parse → String must be stable.
		str := tree.String(s)
		again := MustParse(s, str)
		if !again.Equal(tree) {
			t.Fatalf("%s: round trip changed tree to %s", c.src, again.String(s))
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := testSet()
	bad := []string{
		"", "(", ")", "(+ c)", "(+ c q b)", "(unknown c q)", "zzz",
		"(+ c q) extra", "(+ c", "((+ c q))",
	}
	for _, src := range bad {
		if _, err := Parse(s, src); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestUnaryOperator(t *testing.T) {
	s := &Set{Ops: []Op{Add, Neg}, Terms: []string{"a", "b"}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tree := MustParse(s, "(+ (neg a) b)")
	if got := tree.Eval(s, []float64{3, 10}); got != 7 {
		t.Fatalf("(+ (neg 3) 10) = %v", got)
	}
	if d := tree.Depth(s); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestDepthAndSize(t *testing.T) {
	s := testSet()
	cases := []struct {
		src         string
		size, depth int
	}{
		{"c", 1, 0},
		{"(+ c q)", 3, 1},
		{"(+ (+ c q) b)", 5, 2},
		{"(+ c (+ q (+ b d)))", 7, 3},
	}
	for _, c := range cases {
		tree := MustParse(s, c.src)
		if tree.Size() != c.size {
			t.Fatalf("%s: size %d, want %d", c.src, tree.Size(), c.size)
		}
		if d := tree.Depth(s); d != c.depth {
			t.Fatalf("%s: depth %d, want %d", c.src, d, c.depth)
		}
	}
}

func TestFullGeneratesExactDepth(t *testing.T) {
	s := testSet()
	r := rng.New(1)
	for d := 0; d <= 6; d++ {
		for trial := 0; trial < 20; trial++ {
			tree := s.Full(r, d)
			if err := tree.Check(s); err != nil {
				t.Fatal(err)
			}
			if got := tree.Depth(s); got != d {
				t.Fatalf("Full(%d) depth = %d", d, got)
			}
		}
	}
}

func TestGrowRespectsDepthBound(t *testing.T) {
	s := testSet()
	r := rng.New(2)
	for d := 0; d <= 8; d++ {
		for trial := 0; trial < 20; trial++ {
			tree := s.Grow(r, d)
			if err := tree.Check(s); err != nil {
				t.Fatal(err)
			}
			if got := tree.Depth(s); got > d {
				t.Fatalf("Grow(%d) depth = %d", d, got)
			}
		}
	}
}

func TestRampedValidAndVaried(t *testing.T) {
	s := testSet()
	r := rng.New(3)
	depths := map[int]int{}
	for i := 0; i < 300; i++ {
		tree := s.Ramped(r, 1, 4)
		if err := tree.Check(s); err != nil {
			t.Fatal(err)
		}
		d := tree.Depth(s)
		if d > 4 {
			t.Fatalf("ramped depth %d > 4", d)
		}
		depths[d]++
	}
	if len(depths) < 3 {
		t.Fatalf("ramped initialization lacks depth diversity: %v", depths)
	}
}

func TestRampedPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	testSet().Ramped(rng.New(1), 3, 1)
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	s := testSet()
	r := rng.New(4)
	lim := DefaultLimits()
	for trial := 0; trial < 500; trial++ {
		a := s.Ramped(r, 1, 5)
		b := s.Ramped(r, 1, 5)
		ca, cb := OnePointCrossover(r, s, a, b, lim)
		for _, c := range []Tree{ca, cb} {
			if err := c.Check(s); err != nil {
				t.Fatalf("trial %d: invalid child: %v", trial, err)
			}
			if c.Depth(s) > lim.MaxDepth || c.Size() > lim.MaxSize {
				t.Fatalf("trial %d: child exceeds limits", trial)
			}
		}
	}
}

func TestCrossoverDoesNotMutateParents(t *testing.T) {
	s := testSet()
	r := rng.New(5)
	a := s.Ramped(r, 2, 4)
	b := s.Ramped(r, 2, 4)
	ac, bc := a.Clone(), b.Clone()
	for i := 0; i < 50; i++ {
		OnePointCrossover(r, s, a, b, DefaultLimits())
	}
	if !a.Equal(ac) || !b.Equal(bc) {
		t.Fatal("crossover mutated a parent")
	}
}

func TestCrossoverTightLimitFallsBackToParents(t *testing.T) {
	s := testSet()
	r := rng.New(6)
	// Both parents sit within the tight limits, so every child (spliced
	// or fallen back to a parent copy) must too.
	lim := Limits{MaxDepth: 2, MaxSize: 5}
	a := MustParse(s, "(+ (+ c q) b)") // size 5, depth 2: at the limit
	b := MustParse(s, "(+ q d)")
	for i := 0; i < 100; i++ {
		ca, cb := OnePointCrossover(r, s, a, b, lim)
		if ca.Depth(s) > 2 || ca.Size() > 5 {
			t.Fatal("child a exceeds tight limits")
		}
		if cb.Depth(s) > 2 || cb.Size() > 5 {
			t.Fatal("child b exceeds tight limits")
		}
	}
}

func TestUniformMutateValid(t *testing.T) {
	s := testSet()
	r := rng.New(7)
	lim := DefaultLimits()
	changed := 0
	for trial := 0; trial < 300; trial++ {
		tr := s.Ramped(r, 1, 5)
		mu := UniformMutate(r, s, tr, 3, lim)
		if err := mu.Check(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mu.Depth(s) > lim.MaxDepth || mu.Size() > lim.MaxSize {
			t.Fatal("mutant exceeds limits")
		}
		if !mu.Equal(tr) {
			changed++
		}
	}
	if changed < 150 {
		t.Fatalf("mutation changed only %d/300 trees", changed)
	}
}

func TestEvalNaNSanitized(t *testing.T) {
	// mod(inf-producing, x) can yield NaN; Eval must return 0, never NaN.
	s := &Set{Ops: []Op{Mul, Mod}, Terms: []string{"big"}}
	tree := MustParse(s, "(mod (* big big) big)")
	big := math.MaxFloat64
	got := tree.Eval(s, []float64{big})
	if math.IsNaN(got) {
		t.Fatal("Eval returned NaN")
	}
}

func TestEvalPanicsOnOversizedTree(t *testing.T) {
	s := &Set{Ops: []Op{Add}, Terms: []string{"a"}}
	// Build a pathological tree larger than the eval stack.
	var tr Tree
	for i := 0; i < evalStackSize; i++ {
		tr.nodes = append(tr.nodes, node{idx: 0})
	}
	for i := 0; i < evalStackSize+1; i++ {
		tr.nodes = append(tr.nodes, node{kind: kTerm, idx: 0})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized tree")
		}
	}()
	tr.Eval(s, []float64{1})
}

func TestGeneticOpsPropertyValidity(t *testing.T) {
	s := testSet()
	r := rng.New(8)
	// Parents from Ramped(0,6) have at most 2^7-1 = 127 nodes and depth
	// 6, within these limits, so every offspring must satisfy them too
	// (either by splice or by the fallback-to-parent policy).
	lim := Limits{MaxDepth: 8, MaxSize: 128}
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		a := s.Ramped(rr, 0, 6)
		b := s.Ramped(rr, 0, 6)
		ca, cb := OnePointCrossover(rr, s, a, b, lim)
		m := UniformMutate(rr, s, ca, 4, lim)
		return a.Check(s) == nil && b.Check(s) == nil &&
			ca.Check(s) == nil && cb.Check(s) == nil && m.Check(s) == nil &&
			m.Depth(s) <= lim.MaxDepth && m.Size() <= lim.MaxSize &&
			ca.Depth(s) <= lim.MaxDepth && ca.Size() <= lim.MaxSize &&
			cb.Depth(s) <= lim.MaxDepth && cb.Size() <= lim.MaxSize
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsOnlyKnownSymbols(t *testing.T) {
	s := testSet()
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		tr := s.Ramped(r, 1, 5)
		str := tr.String(s)
		for _, f := range strings.Fields(strings.ReplaceAll(strings.ReplaceAll(str, "(", " "), ")", " ")) {
			known := false
			for _, op := range s.Ops {
				if op.Name == f {
					known = true
				}
			}
			for _, term := range s.Terms {
				if term == f {
					known = true
				}
			}
			if !known {
				t.Fatalf("unknown symbol %q in %q", f, str)
			}
		}
	}
}

func BenchmarkEvalDepth5(b *testing.B) {
	s := testSet()
	r := rng.New(10)
	tr := s.Full(r, 5)
	env := []float64{1, 2, 3, 4, 5}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tr.Eval(s, env)
	}
	_ = sink
}

func BenchmarkCrossover(b *testing.B) {
	s := testSet()
	r := rng.New(11)
	t1 := s.Ramped(r, 2, 6)
	t2 := s.Ramped(r, 2, 6)
	lim := DefaultLimits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1, t2 = OnePointCrossover(r, s, t1, t2, lim)
	}
}
