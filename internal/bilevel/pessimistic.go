package bilevel

import (
	"errors"
	"math"
)

// The paper (§II) distinguishes two positions when the follower's
// rational set P(x) is not a singleton:
//
//	optimistic:  ŷ = argmin { F(x,y) : y ∈ P(x) }
//	pessimistic: ŷ = argmax { F(x,y) : y ∈ P(x) }
//
// and adopts the optimistic case ("no optimality guaranties exist in the
// pessimistic case"). For the scalar linear programs of this package the
// distinction is decidable exactly: P(x) is a point when Gy ≠ 0 and the
// whole feasible interval when Gy = 0, so the two positions only differ
// for indifferent followers — which this file makes inspectable.

// ReactionSet is the follower's full rational set for one leader
// decision: the interval [YLo, YHi] of lower-level optimal responses.
type ReactionSet struct {
	YLo, YHi float64
	Feasible bool
}

// RationalReactionSet computes P(x) exactly: a single point when the
// follower has a strict preference (Gy ≠ 0), the whole feasible interval
// when the follower is indifferent (Gy = 0).
func (p *Linear1D) RationalReactionSet(x float64) ReactionSet {
	ylo, yhi := 0.0, math.Inf(1)
	for _, c := range p.LL {
		switch {
		case c.B > eps:
			if v := (c.C - c.A*x) / c.B; v < yhi {
				yhi = v
			}
		case c.B < -eps:
			if v := (c.C - c.A*x) / c.B; v > ylo {
				ylo = v
			}
		default:
			if c.A*x-c.C > eps {
				return ReactionSet{}
			}
		}
	}
	if ylo > yhi+eps {
		return ReactionSet{}
	}
	switch {
	case p.Gy < 0:
		if math.IsInf(yhi, 1) {
			return ReactionSet{}
		}
		return ReactionSet{YLo: yhi, YHi: yhi, Feasible: true}
	case p.Gy > 0:
		return ReactionSet{YLo: ylo, YHi: ylo, Feasible: true}
	default:
		if math.IsInf(yhi, 1) {
			return ReactionSet{} // indifferent over an unbounded set
		}
		return ReactionSet{YLo: ylo, YHi: yhi, Feasible: true}
	}
}

// pessimisticPick selects the follower answer the pessimistic leader
// must plan for: the UL-feasible point of P(x) maximizing F — and when
// *no* point of P(x) is UL-feasible, the pessimistic leader cannot use
// x at all.
func (p *Linear1D) pessimisticPick(x float64, rs ReactionSet) (float64, bool) {
	if !rs.Feasible {
		return 0, false
	}
	// F is linear in y, so the max over [YLo, YHi] is at an endpoint;
	// but the pessimistic follower may also pick a UL-infeasible point,
	// which kills x entirely. Check the whole interval stays UL-feasible
	// by checking both endpoints (UL constraints are linear in y too, so
	// feasibility over an interval is equivalent to endpoint
	// feasibility).
	if !p.ULFeasible(x, rs.YLo) || !p.ULFeasible(x, rs.YHi) {
		return 0, false
	}
	if p.Fy*rs.YHi > p.Fy*rs.YLo {
		return rs.YHi, true
	}
	return rs.YLo, true
}

// SolvePessimistic computes the exact pessimistic bi-level optimum:
// min over x of max { F(x,y) : y ∈ P(x) }, with x discarded whenever any
// rational follower answer violates the upper-level constraints. The
// candidate enumeration reuses the breakpoint analysis of Solve.
func (p *Linear1D) SolvePessimistic() (Solution, error) {
	if p.XHi < p.XLo {
		return Solution{}, errors.New("bilevel: empty x box")
	}
	cands := p.candidateXs()
	best := Solution{F: math.Inf(1)}
	found := false
	for _, x := range cands {
		if x < p.XLo-eps || x > p.XHi+eps {
			continue
		}
		x = math.Max(p.XLo, math.Min(p.XHi, x))
		rs := p.RationalReactionSet(x)
		y, ok := p.pessimisticPick(x, rs)
		if !ok {
			continue
		}
		f := p.F(x, y)
		if f < best.F-eps {
			best = Solution{X: x, Y: y, F: f}
			found = true
		}
	}
	if !found {
		return Solution{}, errors.New("bilevel: no pessimistically feasible point")
	}
	return best, nil
}

// OptimismGap returns the difference between the pessimistic and
// optimistic optimal values, F_pess − F_opt ≥ 0: the price the leader
// pays for not being able to assume a benevolent follower. Both
// subproblems must be solvable.
func (p *Linear1D) OptimismGap() (float64, error) {
	opt, err := p.Solve()
	if err != nil {
		return 0, err
	}
	pess, err := p.SolvePessimistic()
	if err != nil {
		return 0, err
	}
	return pess.F - opt.F, nil
}
