package bilevel

import (
	"errors"
	"fmt"
	"math"

	"carbon/internal/lp"
)

// LinearBilevel is a general continuous linear bi-level program with
// vector decisions x ∈ ℝᵖ (leader) and y ∈ ℝ^q (follower):
//
//	min  Fx·x + Fy·y
//	s.t. AGx·x + AGy·y ≤ BG          (upper-level constraints)
//	     x ≥ 0
//	     min  Gy·y
//	     s.t. ACx·x + ACy·y ≤ D      (lower-level constraints)
//	          y ≥ 0
//
// SolveKKT implements the paper's STA taxonomy category (§III,
// "single-level transformation"): the convex lower level is replaced by
// its Karush–Kuhn–Tucker conditions, and the complementarity
// disjunctions are resolved by enumerating active sets. Exact for small
// programs; the pattern count is 2^(len(D)+q), so this is a reference
// solver for verification, not a scalable method — precisely the
// motivation the paper gives for metaheuristics.
type LinearBilevel struct {
	Fx, Fy []float64
	AGx    [][]float64
	AGy    [][]float64
	BG     []float64
	Gy     []float64
	ACx    [][]float64
	ACy    [][]float64
	D      []float64
}

// VectorSolution is the optimum found by SolveKKT.
type VectorSolution struct {
	X, Y     []float64
	F        float64
	Patterns int // active-set patterns enumerated
}

// Validate checks dimensional consistency.
func (p *LinearBilevel) Validate() error {
	px, qy := len(p.Fx), len(p.Fy)
	if px == 0 || qy == 0 {
		return errors.New("bilevel: empty decision vectors")
	}
	if len(p.Gy) != qy {
		return fmt.Errorf("bilevel: Gy has %d entries, want %d", len(p.Gy), qy)
	}
	if len(p.AGx) != len(p.BG) || len(p.AGy) != len(p.BG) {
		return errors.New("bilevel: UL constraint blocks disagree")
	}
	for i := range p.AGx {
		if len(p.AGx[i]) != px || len(p.AGy[i]) != qy {
			return fmt.Errorf("bilevel: UL row %d has wrong width", i)
		}
	}
	if len(p.ACx) != len(p.D) || len(p.ACy) != len(p.D) {
		return errors.New("bilevel: LL constraint blocks disagree")
	}
	for i := range p.ACx {
		if len(p.ACx[i]) != px || len(p.ACy[i]) != qy {
			return fmt.Errorf("bilevel: LL row %d has wrong width", i)
		}
	}
	return nil
}

// maxKKTPatterns caps the enumeration (2^22 ≈ 4M LPs would be absurd;
// we refuse far earlier).
const maxKKTPatterns = 1 << 16

// SolveKKT enumerates lower-level active sets, solving one LP per
// pattern over the variables (x, y, μ, ν):
//
//	stationarity   Gy + ACyᵀ·μ − ν = 0
//	primal         ACx·x + ACy·y {=, ≤} D   (= on the active set S)
//	complementarity μᵢ = 0 for i ∉ S,  νⱼ = 0 for j ∉ T,  yⱼ = 0 for j ∈ T
//	plus the upper-level constraints, all variables ≥ 0
//
// and returns the feasible pattern minimizing the leader objective — the
// optimistic bi-level optimum.
func (p *LinearBilevel) SolveKKT() (VectorSolution, error) {
	if err := p.Validate(); err != nil {
		return VectorSolution{}, err
	}
	px, qy := len(p.Fx), len(p.Fy)
	mLL := len(p.D)
	bits := mLL + qy
	if bits > 20 || 1<<bits > maxKKTPatterns {
		return VectorSolution{}, fmt.Errorf("bilevel: %d complementarity bits exceed the enumeration cap", bits)
	}

	// Variable layout: x [0,px) | y [px,px+qy) | μ [.., +mLL) | ν [.., +qy).
	nv := px + qy + mLL + qy
	muOff := px + qy
	nuOff := muOff + mLL

	best := VectorSolution{F: math.Inf(1)}
	found := false
	patterns := 0
	for mask := 0; mask < 1<<bits; mask++ {
		patterns++
		activeLL := mask & (1<<mLL - 1) // bit i: LL row i forced active
		zeroY := mask >> mLL            // bit j: y_j forced to 0

		c := make([]float64, nv)
		copy(c[:px], p.Fx)
		copy(c[px:px+qy], p.Fy)
		lo := make([]float64, nv)
		up := make([]float64, nv)
		for j := range up {
			up[j] = math.Inf(1)
		}
		for i := 0; i < mLL; i++ {
			if activeLL&(1<<i) == 0 {
				up[muOff+i] = 0 // inactive row: μ_i = 0
			}
		}
		for j := 0; j < qy; j++ {
			if zeroY&(1<<j) != 0 {
				up[px+j] = 0 // y_j = 0
			} else {
				up[nuOff+j] = 0 // interior y_j: ν_j = 0
			}
		}

		var A [][]float64
		var rel []lp.Relation
		var b []float64
		// Upper-level rows.
		for i := range p.BG {
			row := make([]float64, nv)
			copy(row[:px], p.AGx[i])
			copy(row[px:px+qy], p.AGy[i])
			A = append(A, row)
			rel = append(rel, lp.LE)
			b = append(b, p.BG[i])
		}
		// Lower-level primal rows.
		for i := 0; i < mLL; i++ {
			row := make([]float64, nv)
			copy(row[:px], p.ACx[i])
			copy(row[px:px+qy], p.ACy[i])
			A = append(A, row)
			if activeLL&(1<<i) != 0 {
				rel = append(rel, lp.EQ)
			} else {
				rel = append(rel, lp.LE)
			}
			b = append(b, p.D[i])
		}
		// Stationarity rows: Σᵢ ACy[i][j]·μᵢ − νⱼ = −Gy[j].
		for j := 0; j < qy; j++ {
			row := make([]float64, nv)
			for i := 0; i < mLL; i++ {
				row[muOff+i] = p.ACy[i][j]
			}
			row[nuOff+j] = -1
			A = append(A, row)
			rel = append(rel, lp.EQ)
			b = append(b, -p.Gy[j])
		}

		sol, err := lp.Solve(&lp.Problem{C: c, A: A, Rel: rel, B: b, Lo: lo, Up: up})
		if err != nil {
			return VectorSolution{}, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		if sol.Obj < best.F-1e-9 {
			best = VectorSolution{
				X: append([]float64(nil), sol.X[:px]...),
				Y: append([]float64(nil), sol.X[px:px+qy]...),
				F: sol.Obj,
			}
			found = true
		}
	}
	best.Patterns = patterns
	if !found {
		return best, errors.New("bilevel: no bi-level feasible point")
	}
	return best, nil
}

// ToLinearBilevel lifts a scalar Linear1D program into the vector form
// (p = q = 1), translating the x box into upper-level rows so the two
// solvers can cross-check each other.
func (p1 *Linear1D) ToLinearBilevel() *LinearBilevel {
	lb := &LinearBilevel{
		Fx: []float64{p1.Fx},
		Fy: []float64{p1.Fy},
		Gy: []float64{p1.Gy},
	}
	for _, c := range p1.UL {
		lb.AGx = append(lb.AGx, []float64{c.A})
		lb.AGy = append(lb.AGy, []float64{c.B})
		lb.BG = append(lb.BG, c.C)
	}
	// x box: x ≤ XHi and −x ≤ −XLo.
	lb.AGx = append(lb.AGx, []float64{1})
	lb.AGy = append(lb.AGy, []float64{0})
	lb.BG = append(lb.BG, p1.XHi)
	lb.AGx = append(lb.AGx, []float64{-1})
	lb.AGy = append(lb.AGy, []float64{0})
	lb.BG = append(lb.BG, -p1.XLo)
	for _, c := range p1.LL {
		lb.ACx = append(lb.ACx, []float64{c.A})
		lb.ACy = append(lb.ACy, []float64{c.B})
		lb.D = append(lb.D, c.C)
	}
	return lb
}
