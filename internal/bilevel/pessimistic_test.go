package bilevel

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

// indifferentFollower builds a program where the follower does not care
// (Gy = 0) and is feasible on y ∈ [0, 10−x]: the optimistic leader gets
// to choose y, the pessimistic one suffers the worst choice.
// Leader: min −x + y, x ∈ [0, 5].
// Optimistic: y = 0, best x = 5 → F = −5.
// Pessimistic: y = 10−x, F = −x + 10 − x = 10 − 2x → x = 5, F = 0.
func indifferentFollower() *Linear1D {
	return &Linear1D{
		Fx: -1, Fy: 1,
		Gy:  0,
		LL:  []LinCon{{A: 1, B: 1, C: 10}}, // x + y ≤ 10
		XLo: 0, XHi: 5,
	}
}

func TestRationalReactionSetStrictFollower(t *testing.T) {
	p := MershaDempe()
	rs := p.RationalReactionSet(6)
	if !rs.Feasible || rs.YLo != rs.YHi || rs.YLo != 12 {
		t.Fatalf("strict follower should have singleton P(x): %+v", rs)
	}
}

func TestRationalReactionSetIndifferent(t *testing.T) {
	p := indifferentFollower()
	rs := p.RationalReactionSet(3)
	if !rs.Feasible || rs.YLo != 0 || math.Abs(rs.YHi-7) > 1e-9 {
		t.Fatalf("P(3) = %+v, want [0,7]", rs)
	}
}

func TestRationalReactionSetIndifferentUnbounded(t *testing.T) {
	p := &Linear1D{Gy: 0, LL: nil, XLo: 0, XHi: 1}
	if rs := p.RationalReactionSet(0.5); rs.Feasible {
		t.Fatalf("unbounded indifference should not be feasible: %+v", rs)
	}
}

func TestOptimisticVsPessimistic(t *testing.T) {
	p := indifferentFollower()
	opt, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.F-(-5)) > 1e-6 || math.Abs(opt.X-5) > 1e-6 || math.Abs(opt.Y) > 1e-6 {
		t.Fatalf("optimistic = %+v, want (5, 0, -5)", opt)
	}
	pess, err := p.SolvePessimistic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pess.F-0) > 1e-6 || math.Abs(pess.X-5) > 1e-6 || math.Abs(pess.Y-5) > 1e-6 {
		t.Fatalf("pessimistic = %+v, want (5, 5, 0)", pess)
	}
	gap, err := p.OptimismGap()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-5) > 1e-6 {
		t.Fatalf("optimism gap = %v, want 5", gap)
	}
}

func TestPessimisticEqualsOptimisticForStrictFollower(t *testing.T) {
	// With a singleton P(x) the two positions coincide.
	p := MershaDempe()
	opt, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pess, err := p.SolvePessimistic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.F-pess.F) > 1e-6 {
		t.Fatalf("strict follower: optimistic %v != pessimistic %v", opt.F, pess.F)
	}
}

func TestPessimisticNeverBeatsOptimistic(t *testing.T) {
	// F_pess ≥ F_opt on every random solvable program.
	r := rng.New(131)
	checked := 0
	for trial := 0; trial < 80; trial++ {
		p := randomScalarBilevel(r)
		if r.Bool(0.3) {
			p.Gy = 0 // force indifference sometimes
		}
		opt, err1 := p.Solve()
		pess, err2 := p.SolvePessimistic()
		if err1 != nil || err2 != nil {
			continue
		}
		if pess.F < opt.F-1e-6 {
			t.Fatalf("trial %d: pessimistic %v beats optimistic %v (%+v)",
				trial, pess.F, opt.F, p)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d solvable programs", checked)
	}
}

func TestPessimisticDiscardsDangerousX(t *testing.T) {
	// An indifferent follower whose P(x) sticks out of the UL region
	// makes x pessimistically unusable even though the optimistic leader
	// would happily use it. UL: y ≤ 4; follower indifferent on
	// [0, 10−x]. For x < 6, P(x) contains points y > 4 → pessimistically
	// infeasible; for x ∈ [6, 5]... XHi=5 < 6, so nothing is feasible.
	p := indifferentFollower()
	p.UL = []LinCon{{A: 0, B: 1, C: 4}} // y ≤ 4
	if _, err := p.Solve(); err != nil {
		t.Fatalf("optimistic should be solvable: %v", err)
	}
	if _, err := p.SolvePessimistic(); err == nil {
		t.Fatal("pessimistic should be infeasible when P(x) always leaves the UL region")
	}
}

func TestPessimisticEmptyBox(t *testing.T) {
	p := &Linear1D{XLo: 1, XHi: 0}
	if _, err := p.SolvePessimistic(); err == nil {
		t.Fatal("empty box accepted")
	}
}
