// Package bilevel holds the general bi-level optimization vocabulary of
// the paper's §II (Program 1) and an exact solver for the class of
// small linear bi-level programs the paper uses didactically
// (Program 3 / Fig 1, the Mersha–Dempe example with a discontinuous
// inducible region).
//
// The scalar-variable solver is deliberately specialized: both decision
// vectors are one-dimensional, which covers the paper's example and
// makes exactness cheap (the rational reaction y*(x) is piecewise
// linear, so the upper-level optimum sits at one of finitely many
// breakpoints). The combinatorial machinery for BCPOP lives in
// internal/bcpop; this package is the didactic/verification counterpart.
package bilevel

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinCon is a linear constraint a·x + b·y ≤ c in the two scalar
// decisions.
type LinCon struct {
	A, B, C float64
}

// Eval returns a·x + b·y − c (≤ 0 means satisfied).
func (l LinCon) Eval(x, y float64) float64 { return l.A*x + l.B*y - l.C }

func (l LinCon) String() string {
	return fmt.Sprintf("%g·x + %g·y <= %g", l.A, l.B, l.C)
}

// Linear1D is a linear bi-level program with scalar upper decision x and
// scalar lower decision y:
//
//	min  Fx·x + Fy·y
//	s.t. UL constraints (in x and y)
//	     x ∈ [XLo, XHi]
//	     min  Gy·y
//	     s.t. LL constraints (in x and y), y ≥ 0
//
// The follower ignores the UL constraints (the paper's §II point: the
// leader may end up infeasible at the induced reaction).
type Linear1D struct {
	Fx, Fy float64
	UL     []LinCon
	Gy     float64
	LL     []LinCon
	XLo    float64
	XHi    float64
}

const eps = 1e-9

// Reaction is the follower's rational answer to one leader decision.
type Reaction struct {
	Y        float64
	Feasible bool // the LL problem has a feasible y for this x
}

// RationalReaction solves the lower level for a fixed x: the feasible
// interval for y is intersected from the LL constraints and y ≥ 0, and
// the optimum is the interval endpoint selected by the sign of Gy
// (Gy < 0 maximizes y, Gy > 0 minimizes y, Gy = 0 returns the smallest
// feasible y — the optimistic tie-break toward the leader would require
// the leader objective; for the paper's example Gy ≠ 0).
func (p *Linear1D) RationalReaction(x float64) Reaction {
	ylo, yhi := 0.0, math.Inf(1)
	for _, c := range p.LL {
		switch {
		case c.B > eps:
			// y ≤ (C − A·x)/B
			if v := (c.C - c.A*x) / c.B; v < yhi {
				yhi = v
			}
		case c.B < -eps:
			// y ≥ (C − A·x)/B (division by negative flips)
			if v := (c.C - c.A*x) / c.B; v > ylo {
				ylo = v
			}
		default:
			// Constraint on x alone: infeasible x kills the LL problem.
			if c.A*x-c.C > eps {
				return Reaction{Feasible: false}
			}
		}
	}
	if ylo > yhi+eps {
		return Reaction{Feasible: false}
	}
	switch {
	case p.Gy < 0:
		if math.IsInf(yhi, 1) {
			return Reaction{Feasible: false} // unbounded LL
		}
		return Reaction{Y: yhi, Feasible: true}
	case p.Gy > 0:
		return Reaction{Y: ylo, Feasible: true}
	default:
		return Reaction{Y: ylo, Feasible: true}
	}
}

// ULFeasible reports whether (x, y) satisfies the upper-level
// constraints and the x box.
func (p *Linear1D) ULFeasible(x, y float64) bool {
	if x < p.XLo-eps || x > p.XHi+eps {
		return false
	}
	for _, c := range p.UL {
		if c.Eval(x, y) > eps {
			return false
		}
	}
	return true
}

// F evaluates the leader objective.
func (p *Linear1D) F(x, y float64) float64 { return p.Fx*x + p.Fy*y }

// Point is one inducible-region sample: the leader decision, the
// rational reaction, and whether the pair is bi-level feasible
// (LL-optimal *and* UL-feasible).
type Point struct {
	X, Y     float64
	Feasible bool
}

// SampleIR samples the inducible region on a uniform x grid — the data
// behind Fig 1: pairs (x, y*(x)) marked UL-feasible or not, exposing the
// discontinuity.
func (p *Linear1D) SampleIR(points int) []Point {
	if points < 2 {
		points = 2
	}
	out := make([]Point, 0, points)
	for i := 0; i < points; i++ {
		x := p.XLo + (p.XHi-p.XLo)*float64(i)/float64(points-1)
		r := p.RationalReaction(x)
		if !r.Feasible {
			out = append(out, Point{X: x, Y: math.NaN(), Feasible: false})
			continue
		}
		out = append(out, Point{X: x, Y: r.Y, Feasible: p.ULFeasible(x, r.Y)})
	}
	return out
}

// Solution is the bi-level optimum of a Linear1D program.
type Solution struct {
	X, Y, F float64
}

// Solve computes the exact bi-level optimum. Along each linear piece of
// y*(x) both F and the UL constraints are linear in x, so the optimum
// lies at a breakpoint: an intersection of LL constraint boundaries, an
// x where a UL constraint becomes active along a piece, or a box end.
// All candidates are enumerated and the best feasible one returned.
func (p *Linear1D) Solve() (Solution, error) {
	if p.XHi < p.XLo {
		return Solution{}, errors.New("bilevel: empty x box")
	}
	cands := p.candidateXs()
	best := Solution{F: math.Inf(1)}
	found := false
	for _, x := range cands {
		if x < p.XLo-eps || x > p.XHi+eps {
			continue
		}
		// Nudge candidates inside numeric noise of the box.
		x = math.Max(p.XLo, math.Min(p.XHi, x))
		r := p.RationalReaction(x)
		if !r.Feasible || !p.ULFeasible(x, r.Y) {
			continue
		}
		f := p.F(x, r.Y)
		if f < best.F-eps {
			best = Solution{X: x, Y: r.Y, F: f}
			found = true
		}
	}
	if !found {
		return Solution{}, errors.New("bilevel: no bi-level feasible point")
	}
	return best, nil
}

// candidateXs enumerates breakpoint x values: box ends, pairwise
// intersections of LL boundary lines (including y = 0), and x values
// where a UL constraint is active along each LL boundary line.
func (p *Linear1D) candidateXs() []float64 {
	// LL boundary lines as a·x + b·y = c, plus y = 0.
	lines := append([]LinCon(nil), p.LL...)
	lines = append(lines, LinCon{A: 0, B: 1, C: 0})
	var xs []float64
	xs = append(xs, p.XLo, p.XHi)
	// Pairwise intersections.
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			if x, ok := intersectX(lines[i], lines[j]); ok {
				xs = append(xs, x)
			}
		}
	}
	// UL activity changes along LL lines: substitute y = (c−a·x)/b of
	// each LL line with b ≠ 0 into each UL constraint equality.
	for _, ll := range lines {
		if math.Abs(ll.B) < eps {
			if math.Abs(ll.A) > eps {
				xs = append(xs, ll.C/ll.A)
			}
			continue
		}
		for _, ul := range p.UL {
			// ul.A·x + ul.B·(ll.C − ll.A·x)/ll.B = ul.C
			den := ul.A - ul.B*ll.A/ll.B
			if math.Abs(den) < eps {
				continue
			}
			xs = append(xs, (ul.C-ul.B*ll.C/ll.B)/den)
		}
	}
	sort.Float64s(xs)
	return xs
}

// intersectX returns the x-coordinate where two boundary lines meet.
func intersectX(l1, l2 LinCon) (float64, bool) {
	det := l1.A*l2.B - l2.A*l1.B
	if math.Abs(det) < eps {
		return 0, false
	}
	return (l1.C*l2.B - l2.C*l1.B) / det, true
}

// MershaDempe returns the paper's Program 3 (the Introduction example
// from Mersha & Dempe): the inducible region is the union [1,3] ∪ [8,10]
// with optimum (x,y,F) = (8, 6, −20), and the naive choice x = 6 induces
// y = 12 which violates the upper-level constraints.
func MershaDempe() *Linear1D {
	return &Linear1D{
		Fx: -1, Fy: -2,
		UL: []LinCon{
			{A: -2, B: 3, C: 12}, // 2x − 3y ≥ −12
			{A: 1, B: 1, C: 14},  // x + y ≤ 14
		},
		Gy: -1,
		LL: []LinCon{
			{A: -3, B: 1, C: -3}, // −3x + y ≤ −3
			{A: 3, B: 1, C: 30},  // 3x + y ≤ 30
		},
		XLo: 0, XHi: 15,
	}
}
