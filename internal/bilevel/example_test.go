package bilevel_test

import (
	"fmt"

	"carbon/internal/bilevel"
)

// The paper's §II example (Program 3): the rational reaction to x=6
// violates the leader's constraints, and the true optimum sits on the
// second piece of a discontinuous inducible region.
func Example() {
	p := bilevel.MershaDempe()

	r := p.RationalReaction(6)
	fmt.Printf("y*(6) = %.0f, UL-feasible: %v\n", r.Y, p.ULFeasible(6, r.Y))

	sol, _ := p.Solve()
	fmt.Printf("optimistic optimum: x=%.0f y=%.0f F=%.0f\n", sol.X, sol.Y, sol.F)

	kkt, _ := p.ToLinearBilevel().SolveKKT()
	fmt.Printf("KKT reformulation agrees: F=%.0f\n", kkt.F)
	// Output:
	// y*(6) = 12, UL-feasible: false
	// optimistic optimum: x=8 y=6 F=-20
	// KKT reformulation agrees: F=-20
}
