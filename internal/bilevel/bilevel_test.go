package bilevel

import (
	"math"
	"testing"
)

func TestMershaDempeRationalReaction(t *testing.T) {
	p := MershaDempe()
	// The paper's §V discussion: x=2 → y*=3, x=6 → y*=12.
	cases := []struct{ x, y float64 }{
		{2, 3}, {6, 12}, {8, 6}, {3, 6}, {10, 0},
	}
	for _, c := range cases {
		r := p.RationalReaction(c.x)
		if !r.Feasible {
			t.Fatalf("x=%v: LL infeasible", c.x)
		}
		if math.Abs(r.Y-c.y) > 1e-9 {
			t.Fatalf("y*(%v) = %v, want %v", c.x, r.Y, c.y)
		}
	}
}

func TestMershaDempeLLInfeasibleOutsideRange(t *testing.T) {
	p := MershaDempe()
	// For x < 1, y ≤ 3x−3 < 0 conflicts with y ≥ 0.
	if r := p.RationalReaction(0.5); r.Feasible {
		t.Fatalf("x=0.5 should have an empty LL feasible set, got y=%v", r.Y)
	}
	// For x > 10, y ≤ 30−3x < 0.
	if r := p.RationalReaction(10.5); r.Feasible {
		t.Fatalf("x=10.5 should have an empty LL feasible set, got y=%v", r.Y)
	}
}

func TestMershaDempeNaiveChoiceInfeasible(t *testing.T) {
	// The paper's central cautionary example: the leader picks x=6
	// hoping for y=8, but the rational reaction is y=12, which violates
	// the UL constraint 2x − 3y ≥ −12.
	p := MershaDempe()
	r := p.RationalReaction(6)
	if !r.Feasible || r.Y != 12 {
		t.Fatalf("reaction = %+v", r)
	}
	if p.ULFeasible(6, 12) {
		t.Fatal("(6,12) must be UL-infeasible")
	}
	if !p.ULFeasible(6, 8) {
		t.Fatal("(6,8) is inside the UL constraints (the leader's wrong hope)")
	}
}

func TestMershaDempeSolve(t *testing.T) {
	p := MershaDempe()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X-8) > 1e-6 || math.Abs(sol.Y-6) > 1e-6 || math.Abs(sol.F-(-20)) > 1e-6 {
		t.Fatalf("optimum = %+v, want (8, 6, -20)", sol)
	}
}

func TestMershaDempeIRDiscontinuous(t *testing.T) {
	// Bi-level feasible x values form [1,3] ∪ [8,10] — Fig 1's
	// discontinuous inducible region.
	p := MershaDempe()
	pts := p.SampleIR(301) // x grid step 0.05 on [0,15]
	inFirst, inGap, inSecond := 0, 0, 0
	for _, pt := range pts {
		if !pt.Feasible {
			continue
		}
		switch {
		case pt.X >= 1-1e-6 && pt.X <= 3+1e-6:
			inFirst++
		case pt.X > 3+1e-6 && pt.X < 8-1e-6:
			inGap++
		case pt.X >= 8-1e-6 && pt.X <= 10+1e-6:
			inSecond++
		default:
			t.Fatalf("feasible point outside known IR: %+v", pt)
		}
	}
	if inFirst == 0 || inSecond == 0 {
		t.Fatalf("IR pieces missing: first=%d second=%d", inFirst, inSecond)
	}
	if inGap != 0 {
		t.Fatalf("%d feasible points in the (3,8) gap", inGap)
	}
}

func TestRationalReactionMinimizingFollower(t *testing.T) {
	// Gy > 0: the follower minimizes y, reaction is the lower endpoint.
	p := &Linear1D{
		Gy: 1,
		LL: []LinCon{
			{A: -1, B: -1, C: -4}, // x + y ≥ 4 → y ≥ 4 − x
			{A: 0, B: 1, C: 10},   // y ≤ 10
		},
		XLo: 0, XHi: 10,
	}
	r := p.RationalReaction(1)
	if !r.Feasible || math.Abs(r.Y-3) > 1e-9 {
		t.Fatalf("reaction %+v, want y=3", r)
	}
	// y ≥ 0 binds once x ≥ 4.
	r = p.RationalReaction(7)
	if !r.Feasible || r.Y != 0 {
		t.Fatalf("reaction %+v, want y=0", r)
	}
}

func TestRationalReactionUnboundedLL(t *testing.T) {
	// Follower maximizes y with no upper limit: no rational reaction.
	p := &Linear1D{Gy: -1, LL: nil, XLo: 0, XHi: 1}
	if r := p.RationalReaction(0.5); r.Feasible {
		t.Fatalf("unbounded LL reported feasible: %+v", r)
	}
}

func TestRationalReactionXOnlyConstraint(t *testing.T) {
	p := &Linear1D{
		Gy:  1,
		LL:  []LinCon{{A: 1, B: 0, C: 5}}, // x ≤ 5, no y involvement
		XLo: 0, XHi: 10,
	}
	if r := p.RationalReaction(6); r.Feasible {
		t.Fatal("x-only LL constraint violation not detected")
	}
	if r := p.RationalReaction(4); !r.Feasible || r.Y != 0 {
		t.Fatalf("reaction %+v", r)
	}
}

func TestSolveEmptyBox(t *testing.T) {
	p := &Linear1D{XLo: 2, XHi: 1}
	if _, err := p.Solve(); err == nil {
		t.Fatal("empty box accepted")
	}
}

func TestSolveNoFeasiblePoint(t *testing.T) {
	p := &Linear1D{
		Fx:  1,
		UL:  []LinCon{{A: 0, B: 1, C: -1}}, // y ≤ −1 never holds with y ≥ 0
		Gy:  1,
		LL:  []LinCon{{A: 0, B: 1, C: 5}},
		XLo: 0, XHi: 1,
	}
	if _, err := p.Solve(); err == nil {
		t.Fatal("infeasible bi-level program solved")
	}
}

func TestSolveSimpleAlignedProgram(t *testing.T) {
	// Leader min −x−y, follower min y with y ≥ x−1: y*(x) = max(0, x−1).
	// UL: y ≤ 2 → with y* = x−1, x ≤ 3. F = −x−y = −x−(x−1) = 1−2x →
	// optimum at x=3, y=2, F=−5.
	p := &Linear1D{
		Fx: -1, Fy: -1,
		UL:  []LinCon{{A: 0, B: 1, C: 2}},
		Gy:  1,
		LL:  []LinCon{{A: -1, B: -1, C: -1} /* x + y ≥ 1 → y ≥ 1 − x */},
		XLo: 0, XHi: 10,
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// y*(x) = max(0, 1−x); F = −x − max(0,1−x). For x ≥ 1 F = −x,
	// minimized at the box end x=10, y=0, F=−10.
	if math.Abs(sol.X-10) > 1e-6 || math.Abs(sol.Y-0) > 1e-6 || math.Abs(sol.F-(-10)) > 1e-6 {
		t.Fatalf("optimum %+v, want (10, 0, -10)", sol)
	}
}

func TestLinConString(t *testing.T) {
	s := LinCon{A: 2, B: -3, C: 4}.String()
	if s != "2·x + -3·y <= 4" {
		t.Fatalf("String = %q", s)
	}
}
