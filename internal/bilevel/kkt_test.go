package bilevel

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestKKTMershaDempe(t *testing.T) {
	lb := MershaDempe().ToLinearBilevel()
	sol, err := lb.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-8) > 1e-6 || math.Abs(sol.Y[0]-6) > 1e-6 ||
		math.Abs(sol.F-(-20)) > 1e-6 {
		t.Fatalf("KKT optimum (%v, %v, %v), want (8, 6, -20)", sol.X, sol.Y, sol.F)
	}
	// 2 LL rows + y≥0 → 2^3 = 8 patterns.
	if sol.Patterns != 8 {
		t.Fatalf("patterns = %d, want 8", sol.Patterns)
	}
}

func TestKKTMatchesScalarSolverOnRandomPrograms(t *testing.T) {
	// Cross-validation: random scalar bi-level programs solved by both
	// the breakpoint solver and the KKT enumeration must agree.
	r := rng.New(91)
	agreements := 0
	for trial := 0; trial < 60; trial++ {
		p1 := randomScalarBilevel(r)
		s1, err1 := p1.Solve()
		lb := p1.ToLinearBilevel()
		s2, err2 := lb.SolveKKT()
		if (err1 == nil) != (err2 == nil) {
			// The breakpoint solver declares feasibility on a finite
			// candidate grid; disagreement on *feasibility* can only
			// stem from boundary tolerance. Accept when the feasible
			// side's optimum sits within tolerance of a constraint
			// boundary; otherwise fail loudly.
			t.Fatalf("trial %d: feasibility disagreement: scalar err=%v kkt err=%v (program %+v)",
				trial, err1, err2, p1)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(s1.F-s2.F) > 1e-6*(1+math.Abs(s1.F)) {
			t.Fatalf("trial %d: objectives differ: scalar %v vs KKT %v (program %+v)",
				trial, s1.F, s2.F, p1)
		}
		agreements++
	}
	if agreements < 20 {
		t.Fatalf("only %d feasible cross-checks; generator too restrictive", agreements)
	}
}

// randomScalarBilevel generates a bounded scalar bi-level program: the
// follower's y is always capped by a y ≤ U row, so a rational reaction
// exists whenever the LL is feasible.
func randomScalarBilevel(r *rng.Rand) *Linear1D {
	p := &Linear1D{
		Fx:  r.Range(-2, 2),
		Fy:  r.Range(-2, 2),
		Gy:  []float64{-1, 1}[r.Intn(2)],
		XLo: 0,
		XHi: r.Range(4, 10),
	}
	// One or two UL constraints.
	for i := 0; i < r.IntRange(1, 2); i++ {
		p.UL = append(p.UL, LinCon{
			A: r.Range(-1, 1), B: r.Range(-1, 1), C: r.Range(2, 12),
		})
	}
	// LL: a cap row plus one or two random rows.
	p.LL = append(p.LL, LinCon{A: 0, B: 1, C: r.Range(3, 12)})
	for i := 0; i < r.IntRange(1, 2); i++ {
		p.LL = append(p.LL, LinCon{
			A: r.Range(-1.5, 1.5), B: r.Range(0.2, 1.5), C: r.Range(1, 12),
		})
	}
	return p
}

func TestKKTValidation(t *testing.T) {
	bad := []*LinearBilevel{
		{},
		{Fx: []float64{1}, Fy: []float64{1}, Gy: []float64{1, 2}},
		{Fx: []float64{1}, Fy: []float64{1}, Gy: []float64{1},
			AGx: [][]float64{{1}}, AGy: [][]float64{{1}}, BG: []float64{1, 2}},
		{Fx: []float64{1}, Fy: []float64{1}, Gy: []float64{1},
			ACx: [][]float64{{1, 2}}, ACy: [][]float64{{1}}, D: []float64{1}},
	}
	for i, p := range bad {
		if _, err := p.SolveKKT(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestKKTEnumerationCap(t *testing.T) {
	p := &LinearBilevel{
		Fx: []float64{1}, Fy: make([]float64, 25), Gy: make([]float64, 25),
	}
	if _, err := p.SolveKKT(); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

func TestKKTTwoDimensionalFollower(t *testing.T) {
	// Leader pays the follower's y₁ on top of earning x: F = −x + y₁,
	// x ≤ 4. Follower: min y₁+y₂ s.t. y₁+y₂ ≥ x (encoded
	// x − y₁ − y₂ ≤ 0), yⱼ ≤ 3. Rational reaction: y₁+y₂ = x with the
	// optimistic split y₁ = max(0, x−3). Hence
	// F(x) = −x + max(0, x−3) = max(−x, −3): a plateau at −3 for x ≥ 3.
	p := &LinearBilevel{
		Fx:  []float64{-1},
		Fy:  []float64{1, 0},
		AGx: [][]float64{{1}},
		AGy: [][]float64{{0, 0}},
		BG:  []float64{4},
		Gy:  []float64{1, 1},
		ACx: [][]float64{{1}, {0}, {0}},
		ACy: [][]float64{{-1, -1}, {1, 0}, {0, 1}},
		D:   []float64{0, 3, 3},
	}
	sol, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.F-(-3)) > 1e-6 {
		t.Fatalf("F = %v, want -3 (x=%v y=%v)", sol.F, sol.X, sol.Y)
	}
	// Follower rationality: the basket sums exactly to x.
	if math.Abs(sol.Y[0]+sol.Y[1]-sol.X[0]) > 1e-6 {
		t.Fatalf("follower not rational: y sums to %v for x=%v",
			sol.Y[0]+sol.Y[1], sol.X[0])
	}
	// Optimistic split: y₁ carries only the overflow past y₂'s cap.
	wantY1 := math.Max(0, sol.X[0]-3)
	if math.Abs(sol.Y[0]-wantY1) > 1e-6 {
		t.Fatalf("optimistic tie-break failed: y1 = %v, want %v", sol.Y[0], wantY1)
	}
}

func TestKKTInfeasible(t *testing.T) {
	// UL constraint y ≤ −1 can never hold with y ≥ 0.
	p := &LinearBilevel{
		Fx: []float64{1}, Fy: []float64{0},
		AGx: [][]float64{{0}}, AGy: [][]float64{{1}}, BG: []float64{-1},
		Gy:  []float64{1},
		ACx: [][]float64{{0}}, ACy: [][]float64{{1}}, D: []float64{5},
	}
	if _, err := p.SolveKKT(); err == nil {
		t.Fatal("infeasible program solved")
	}
}
