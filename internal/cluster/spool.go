package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The router's spool mirrors serve's discipline: every record lands via
// temp+rename so a crash leaves either the old file or the new one,
// never a torn read; torn files found at startup are quarantined aside
// as evidence, and their IDs burned so fresh routes never collide.
//
// Layout, per fleet job f000001:
//
//	f000001.route.json   where the job lives (worker, worker job ID, spec)
//	f000001.ckpt.json    last mirrored checkpoint envelope (failover seed)
//	fleet.spans.jsonl    the router's own trace spans
func writeFileAtomic(path string, b []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func writeJSONAtomic(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(b, '\n'))
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	return nil
}

// quarantine moves a corrupt spool artifact aside for post-mortem.
func quarantine(path string) {
	_ = os.Rename(path, path+".corrupt")
}
