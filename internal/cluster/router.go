package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"carbon/internal/serve"
	"carbon/internal/slo"
	"carbon/internal/span"
	"carbon/internal/telemetry"
)

// Options configures a Router.
type Options struct {
	// Workers are the carbond base URLs the router shards jobs across
	// (e.g. "http://127.0.0.1:8081"). At least one is required.
	Workers []string
	// Weights are per-worker capacity weights for PolicyWeighted,
	// aligned with Workers (missing or ≤0 entries count as 1).
	Weights []float64
	// Policy picks the routing policy ("" = round-robin).
	Policy string

	// SpoolDir holds the crash-safe route spool (required).
	SpoolDir string

	// ProbeEvery is the health-check cadence (default 2s); ProbeTimeout
	// bounds each probe and mirror request (default 1s). A worker is
	// declared dead — and its jobs re-homed — after DeadAfter
	// consecutive missed probes (default 3).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	DeadAfter    int

	// Rate and Burst shape per-tenant token-bucket admission: Rate
	// tokens per second (0 = unlimited), bucket capacity Burst. Quota
	// overrides the rate per tenant (a 0 quota blocks the tenant).
	Rate  float64
	Burst int
	Quota map[string]float64

	// Spans writes the router's trace spans to SpoolDir/fleet.spans.jsonl.
	Spans bool

	// Metrics is the router's own instrument registry (a fresh one is
	// created when nil). Its families join the federated fleet view
	// under worker="router".
	Metrics *telemetry.Registry

	// SLORules are evaluated against the federated metric view every
	// probe tick; firing rules surface on /v1/fleet/alerts and as
	// carbonfleet_alert gauges. Nil means only the built-in search
	// dynamics detectors (stagnation, disengagement, bloat) run.
	SLORules []slo.Rule

	// Client is the HTTP client for worker traffic (default: a client
	// with no global timeout; per-request timeouts come from the
	// probe/proxy contexts).
	Client *http.Client
}

// route is the spooled record of where a fleet job lives. Everything a
// failover needs travels with it: the normalized spec to resubmit, the
// tenant it was admitted under, and the router-side trace context every
// incarnation of the job parents into.
type route struct {
	FleetID     string        `json:"fleet_id"`
	Worker      string        `json:"worker"` // base URL currently hosting the job
	JobID       string        `json:"job_id"` // the worker's own job ID
	Spec        serve.JobSpec `json:"spec"`
	Tenant      string        `json:"tenant,omitempty"`
	TraceParent string        `json:"traceparent,omitempty"`
	Failovers   int           `json:"failovers,omitempty"`
	Done        bool          `json:"done,omitempty"` // reached a terminal state on its worker
}

type worker struct {
	url    string
	weight float64

	// Guarded by Router.mu.
	healthy bool
	misses  int
	health  serve.Health
}

// Router shards jobs across a fleet of carbond workers and keeps them
// alive through worker failures: it health-checks the fleet, mirrors
// running jobs' checkpoints into its spool, and when a worker goes dead
// re-submits its unfinished jobs to survivors seeded from the last
// clean checkpoint — zero job loss, and (by core.Restore's contract)
// results bit-identical to an undisturbed run.
type Router struct {
	opts    Options
	client  *http.Client
	buckets *buckets
	tracer  *span.Tracer
	spanExp *span.FileExporter

	// Observability plane (see federate.go and events.go): the router's
	// own registry, the federation cache, and proxied event streams.
	metrics      *telemetry.Registry
	fed          *federation
	metFailovers *telemetry.Counter // cluster.failovers
	metScrapeErr *telemetry.Counter // cluster.scrape_errors
	metEvtDrop   *telemetry.Counter // cluster.events_dropped
	metReconnect *telemetry.Counter // cluster.event_reconnects

	mu        sync.Mutex
	seq       int
	rr        int // round-robin cursor
	workers   []*worker
	routes    map[string]*route
	orphans   map[string][]string // worker URL → job IDs to delete when it revives
	streams   map[string]*fleetStream
	failovers int
	closed    bool

	stop chan struct{}
	done chan struct{}
}

// NewRouter validates opts, recovers the route spool, takes one
// synchronous probe round (so routing starts from real health, not
// optimism), and starts the probe loop.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: router needs at least one worker")
	}
	if opts.SpoolDir == "" {
		return nil, errors.New("cluster: router needs a spool directory")
	}
	if !validPolicy(opts.Policy) {
		return nil, fmt.Errorf("cluster: unknown routing policy %q", opts.Policy)
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 3
	}
	if err := os.MkdirAll(opts.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Router{
		opts:    opts,
		client:  opts.Client,
		buckets: newBuckets(opts.Rate, opts.Burst, opts.Quota, nil),
		metrics: reg,
		fed:     newFederation(opts.SLORules),
		routes:  make(map[string]*route),
		orphans: make(map[string][]string),
		streams: make(map[string]*fleetStream),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.metFailovers = reg.Counter("cluster.failovers")
	r.metScrapeErr = reg.Counter("cluster.scrape_errors")
	r.metEvtDrop = reg.Counter("cluster.events_dropped")
	r.metReconnect = reg.Counter("cluster.event_reconnects")
	if r.client == nil {
		r.client = &http.Client{}
	}
	for i, u := range opts.Workers {
		w := &worker{url: strings.TrimRight(u, "/"), weight: 1}
		if i < len(opts.Weights) && opts.Weights[i] > 0 {
			w.weight = opts.Weights[i]
		}
		r.workers = append(r.workers, w)
	}
	if opts.Spans {
		r.spanExp = span.NewFileExporter(filepath.Join(opts.SpoolDir, "fleet.spans.jsonl"))
		r.spanExp.SetDropCounter(reg.Counter("span.dropped_writes"))
		r.tracer = span.New(r.spanExp)
	}
	if err := r.recover(); err != nil {
		return nil, err
	}
	r.probeTick()
	go r.probeLoop()
	return r, nil
}

// recover rebuilds the route table from the spool: torn route files are
// quarantined, and every fleet ID embedded in any spool file — route,
// checkpoint mirror, quarantined sibling — is burned so fresh routes
// never collide with leftovers.
func (r *Router) recover() error {
	entries, err := os.ReadDir(r.opts.SpoolDir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		var n int
		if _, err := fmt.Sscanf(name, "f%d", &n); err == nil && n > r.seq {
			r.seq = n
		}
		id, ok := strings.CutSuffix(name, ".route.json")
		if !ok {
			continue
		}
		rt := new(route)
		if err := readJSON(r.routePath(id), rt); err != nil {
			quarantine(r.routePath(id))
			continue
		}
		r.routes[rt.FleetID] = rt
	}
	return nil
}

func (r *Router) routePath(id string) string {
	return filepath.Join(r.opts.SpoolDir, id+".route.json")
}

func (r *Router) mirrorPath(id string) string {
	return filepath.Join(r.opts.SpoolDir, id+".ckpt.json")
}

// Close stops the probe loop and flushes the span file. It does not
// touch the workers: their jobs keep running, and a restarted router
// reattaches to them through the spool.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	if r.spanExp != nil {
		return r.spanExp.Close()
	}
	return nil
}

func (r *Router) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeTick()
		}
	}
}

// probeTick is one round of fleet upkeep: probe every worker, sweep
// revived workers' orphans, sync route states and mirror checkpoints
// from healthy workers, then re-home the jobs of dead ones.
func (r *Router) probeTick() {
	type probe struct {
		h   serve.Health
		err error
	}
	results := make([]probe, len(r.workers))
	var wg sync.WaitGroup
	for i, w := range r.workers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			results[i].h, results[i].err = r.fetchHealth(url)
		}(i, w.url)
	}
	wg.Wait()

	var revived []string
	r.mu.Lock()
	for i, w := range r.workers {
		if results[i].err != nil {
			w.misses++
			w.healthy = false
			continue
		}
		if w.misses >= r.opts.DeadAfter || len(r.orphans[w.url]) > 0 {
			revived = append(revived, w.url)
		}
		w.misses = 0
		w.healthy = results[i].h.OK
		w.health = results[i].h
	}
	r.mu.Unlock()

	for _, url := range revived {
		r.sweepOrphans(url)
	}
	r.syncRoutes()
	r.failoverDead()
	r.federate()
}

func (r *Router) fetchHealth(url string) (serve.Health, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
	defer cancel()
	var h serve.Health
	if err := r.getJSON(ctx, url+"/v1/healthz", &h); err != nil {
		return serve.Health{}, err
	}
	return h, nil
}

// sweepOrphans deletes the abandoned incarnations of re-homed jobs from
// a worker that came back from the dead: its copies were resubmitted
// elsewhere, so whatever it still holds is a duplicate that must not
// burn cycles or answer queries.
func (r *Router) sweepOrphans(url string) {
	r.mu.Lock()
	ids := r.orphans[url]
	delete(r.orphans, url)
	r.mu.Unlock()
	var kept []string
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
		req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, url+"/v1/jobs/"+id, nil)
		resp, err := r.client.Do(req)
		cancel()
		if err != nil {
			kept = append(kept, id) // worker flapped again; retry next revival
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if len(kept) > 0 {
		r.mu.Lock()
		r.orphans[url] = append(r.orphans[url], kept...)
		r.mu.Unlock()
	}
}

// syncRoutes refreshes every live route from its healthy worker: a
// terminal job marks the route done (and drops its mirror), a running
// one gets its latest clean checkpoint mirrored into the router spool.
// The mirror is what failover seeds from — a dead worker cannot be
// asked for anything, so the router hoards state while it can.
func (r *Router) syncRoutes() {
	for _, rt := range r.liveRoutes() {
		r.mu.Lock()
		w := r.workerByURL(rt.Worker)
		healthy := w != nil && w.healthy
		r.mu.Unlock()
		if !healthy {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
		var st serve.Status
		err := r.getJSON(ctx, rt.Worker+"/v1/jobs/"+rt.JobID, &st)
		cancel()
		if err != nil {
			continue
		}
		if st.Latest != nil {
			// The status poll doubles as the dynamics feed: detectors
			// dedupe generations replayed after a failover by number.
			r.fed.dynMu.Lock()
			r.fed.dyn.Observe(rt.FleetID, *st.Latest)
			r.fed.dynMu.Unlock()
		}
		if st.State.Terminal() {
			r.mu.Lock()
			rt.Done = true
			r.mu.Unlock()
			r.fed.dynMu.Lock()
			r.fed.dyn.Forget(rt.FleetID)
			r.fed.dynMu.Unlock()
			_ = writeJSONAtomic(r.routePath(rt.FleetID), rt)
			_ = os.Remove(r.mirrorPath(rt.FleetID))
			continue
		}
		ctx, cancel = context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
		b, err := r.getBytes(ctx, rt.Worker+"/v1/jobs/"+rt.JobID+"/checkpoint")
		cancel()
		if err == nil && len(b) > 0 {
			_ = writeFileAtomic(r.mirrorPath(rt.FleetID), b)
		}
	}
}

// failoverDead re-homes the unfinished jobs of every dead worker onto
// survivors, seeding each from its mirrored checkpoint. A job with no
// mirror yet restarts from generation 0 on the survivor — recomputed
// generations, never a lost job. Routes that cannot move (no healthy
// survivor) stay put and are retried next tick.
func (r *Router) failoverDead() {
	for _, rt := range r.liveRoutes() {
		r.mu.Lock()
		w := r.workerByURL(rt.Worker)
		dead := w != nil && w.misses >= r.opts.DeadAfter
		r.mu.Unlock()
		if !dead {
			continue
		}
		r.failover(rt)
	}
}

func (r *Router) failover(rt *route) {
	var ckpt []byte
	if b, err := os.ReadFile(r.mirrorPath(rt.FleetID)); err == nil {
		ckpt = b
	}
	sp := r.startSpan(rt.TraceParent, "fleet.failover").
		Attr("fleet_id", rt.FleetID).Attr("from", rt.Worker).
		Attr("checkpointed", len(ckpt) > 0)
	defer sp.End()

	req := serve.RestoreRequest{Spec: rt.Spec}
	if len(ckpt) > 0 {
		req.CheckpointB64 = base64.StdEncoding.EncodeToString(ckpt)
	}
	order, err := r.candidates()
	if err != nil {
		return
	}
	for _, idx := range order {
		dst := r.workers[idx]
		if dst.url == rt.Worker {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
		st, code, err := r.postJob(ctx, dst.url, "/v1/jobs/restore", req, rt.TraceParent)
		cancel()
		if err != nil || code != http.StatusCreated {
			continue
		}
		sp.Attr("to", dst.url)
		// If the dead worker ever revives, its abandoned copy of this
		// job must be deleted, not raced against the new incarnation.
		r.abandonOldIncarnation(rt.Worker, rt.JobID)
		r.mu.Lock()
		rt.Worker = dst.url
		rt.JobID = st.ID
		rt.Failovers++
		r.failovers++
		r.mu.Unlock()
		r.metFailovers.Inc()
		_ = writeJSONAtomic(r.routePath(rt.FleetID), rt)
		return
	}
	sp.Attr("stranded", true) // retried next probe tick
}

// abandonOldIncarnation queues the dead worker's copy of a re-homed job
// for deletion if that worker ever comes back.
func (r *Router) abandonOldIncarnation(url, jobID string) {
	r.mu.Lock()
	r.orphans[url] = append(r.orphans[url], jobID)
	r.mu.Unlock()
}

func (r *Router) liveRoutes() []*route {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*route
	for _, rt := range r.routes {
		if !rt.Done {
			out = append(out, rt)
		}
	}
	return out
}

func (r *Router) workerByURL(url string) *worker {
	for _, w := range r.workers {
		if w.url == url {
			return w
		}
	}
	return nil
}

// candidates returns healthy worker indices in the active policy's
// preference order, advancing the round-robin cursor.
func (r *Router) candidates() ([]int, error) {
	r.mu.Lock()
	views := make([]workerView, len(r.workers))
	for i, w := range r.workers {
		views[i] = workerView{
			index: i, healthy: w.healthy, weight: w.weight,
			queued: w.health.QueueDepth, running: w.health.Running,
		}
	}
	rr := r.rr
	r.rr++
	r.mu.Unlock()
	return rank(r.opts.Policy, views, rr)
}

// startSpan opens a router span parented into tp (remote) when tp is a
// valid traceparent, or a fresh root otherwise. Nil-safe with spans off.
func (r *Router) startSpan(tp, name string) *span.Span {
	if r.tracer == nil {
		return nil
	}
	if parent, err := span.ParseTraceParent(tp); err == nil {
		return r.tracer.StartRemote(parent, name).Kind(span.KindQueue).Announce()
	}
	return r.tracer.Start(span.Context{}, name).Kind(span.KindQueue).Announce()
}

// --- worker HTTP helpers ---

func (r *Router) getJSON(ctx context.Context, url string, v any) error {
	b, err := r.getBytes(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

func (r *Router) getBytes(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET %s: %s", url, resp.Status)
	}
	return b, nil
}

// postJob submits body to url+path with the traceparent header set and
// decodes the worker's Status reply. The status code comes back even on
// refusals so the caller can distinguish "queue full, try the next
// worker" from "bad spec, give up".
func (r *Router) postJob(ctx context.Context, url, path string, body any, tp string) (serve.Status, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return serve.Status{}, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path, bytes.NewReader(buf))
	if err != nil {
		return serve.Status{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return serve.Status{}, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.Status{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusCreated {
		return serve.Status{}, resp.StatusCode, fmt.Errorf("cluster: POST %s: %s: %s", url+path, resp.Status, strings.TrimSpace(string(b)))
	}
	var st serve.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return serve.Status{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}
