// Package cluster implements the carbonfleet router: a front-end that
// shards jobs across a fleet of carbond workers, health-checks them,
// and re-homes a dead worker's jobs onto survivors from their last
// mirrored checkpoints. It also fronts the networked island model
// (internal/cluster/netmigrate), so one run's islands can live on
// different workers while staying bit-identical to the in-process path.
package cluster

import (
	"math"
	"sync"
	"time"
)

// buckets is per-tenant token-bucket admission control. Every tenant
// owns an independent bucket refilling at its quota (or the default
// rate); a submission costs one token. When the bucket is dry the
// caller learns how long until the next token — the Retry-After the
// handler surfaces with the 429.
type buckets struct {
	rate  float64            // default tokens per second (0 = unlimited)
	burst float64            // bucket capacity
	quota map[string]float64 // per-tenant rate overrides

	mu  sync.Mutex
	m   map[string]*bucket
	now func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(rate float64, burst int, quota map[string]float64, now func() time.Time) *buckets {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, rate)
	}
	return &buckets{rate: rate, burst: b, quota: quota, m: make(map[string]*bucket), now: now}
}

// take spends one token from tenant's bucket. When the bucket is dry it
// reports false plus the wait until a token accrues (never below 1s —
// Retry-After is whole seconds and "0" would invite a busy-loop).
func (bs *buckets) take(tenant string) (bool, time.Duration) {
	rate := bs.rate
	if q, ok := bs.quota[tenant]; ok {
		rate = q
	}
	if rate <= 0 {
		return true, 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	now := bs.now()
	b := bs.m[tenant]
	if b == nil {
		b = &bucket{tokens: bs.burst, last: now}
		bs.m[tenant] = b
	}
	b.tokens = math.Min(bs.burst, b.tokens+now.Sub(b.last).Seconds()*rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
