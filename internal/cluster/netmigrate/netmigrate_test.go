package netmigrate

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"carbon/internal/core"
	"carbon/internal/serve"
)

func islandSpec() serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3,
		Seed: 7, Pop: 10, ULEvals: 800, LLEvals: 1600,
		PreySample: 2, Workers: 1,
	}
}

// flatIsland mirrors the comparable surface the core golden tests use.
type flatIsland struct {
	Gens, ULEvals, LLEvals      int
	Revenue, Gap                float64
	Tree, Simplified            string
	Price, ULX, ULY, GapX, GapY []float64
}

func flattenRecord(r *serve.ResultRecord) flatIsland {
	return flatIsland{
		Gens: r.Gens, ULEvals: r.ULEvals, LLEvals: r.LLEvals,
		Revenue: r.BestRevenue, Gap: r.BestGapPct,
		Tree: r.BestTree, Simplified: r.Simplified, Price: r.BestPrice,
		ULX: r.ULCurveX, ULY: r.ULCurveY, GapX: r.GapCurveX, GapY: r.GapCurveY,
	}
}

func flattenResult(r *core.Result) flatIsland {
	return flatIsland{
		Gens: r.Gens, ULEvals: r.ULEvals, LLEvals: r.LLEvals,
		Revenue: r.Best.Revenue, Gap: r.Best.GapPct,
		Tree: r.Best.TreeStr, Simplified: r.Best.Simplified, Price: r.Best.Price,
		ULX: r.ULCurve.X, ULY: r.ULCurve.Y, GapX: r.GapCurve.X, GapY: r.GapCurve.Y,
	}
}

// TestNetworkedIslandsBitIdentical is the subsystem's defining test:
// islands spread across three HTTP peers — migrants, barriers and
// results all crossing real sockets as JSON — must reproduce the
// in-process RunIslands bit for bit, for both topologies.
func TestNetworkedIslandsBitIdentical(t *testing.T) {
	spec := islandSpec().Normalize()
	mk, err := spec.Market()
	if err != nil {
		t.Fatal(err)
	}

	for _, topo := range []core.Topology{core.TopologyRing, core.TopologyBroadcast} {
		t.Run(string(topo), func(t *testing.T) {
			ic := core.IslandConfig{Islands: 4, MigrateEvery: 3, Migrants: 1, Topology: topo}
			ref, err := core.RunIslands(mk, spec.Config(), ic)
			if err != nil {
				t.Fatal(err)
			}

			var peers []string
			for i := 0; i < 3; i++ {
				srv := httptest.NewServer(NewPeer(PeerOptions{}).Handler())
				defer srv.Close()
				peers = append(peers, srv.URL)
			}
			job := IslandJob{
				Spec: spec, Islands: 4, MigrateEvery: 3, Migrants: 1,
				Topology: string(topo),
			}
			rec, err := Coordinate(context.Background(), nil, "run-"+string(topo), peers, job, "")
			if err != nil {
				t.Fatal(err)
			}

			// Merged best fields, field for field.
			if rec.BestRevenue != ref.Best.Revenue || rec.BestGapPct != ref.Best.GapPct ||
				rec.BestTree != ref.Best.TreeStr || rec.Simplified != ref.Best.Simplified ||
				rec.BestIsland != ref.BestIsland || rec.Migrations != ref.Migrations ||
				!reflect.DeepEqual(rec.BestPrice, ref.Best.Price) {
				t.Fatalf("merged record diverged:\n got  %+v\n want best %+v island %d migrations %d",
					rec, ref.Best, ref.BestIsland, ref.Migrations)
			}
			// Every island, bit for bit.
			if len(rec.PerIsland) != len(ref.PerIsland) {
				t.Fatalf("%d island records, want %d", len(rec.PerIsland), len(ref.PerIsland))
			}
			for i := range ref.PerIsland {
				if !reflect.DeepEqual(flattenRecord(rec.PerIsland[i]), flattenResult(ref.PerIsland[i])) {
					t.Fatalf("island %d diverged:\n got  %+v\n want %+v",
						i, flattenRecord(rec.PerIsland[i]), flattenResult(ref.PerIsland[i]))
				}
			}
			// Round-robin assignment: 4 islands over 3 peers.
			if !reflect.DeepEqual(rec.Shards, [][]int{{0, 3}, {1}, {2}}) {
				t.Fatalf("assignment %v", rec.Shards)
			}
		})
	}
}

// TestShardJobValidation pins the wire-level contract.
func TestShardJobValidation(t *testing.T) {
	good := ShardJob{
		Run: "r1", Spec: islandSpec(), Islands: 4, MigrateEvery: 3, Migrants: 1,
		Me: 0, Peers: []string{"a", "b"}, Assign: [][]int{{0, 2}, {1, 3}},
	}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []func(*ShardJob){
		func(j *ShardJob) { j.Run = "" },
		func(j *ShardJob) { j.Me = 2 },
		func(j *ShardJob) { j.Peers = j.Peers[:1] },
		func(j *ShardJob) { j.Assign = [][]int{{0, 2}, {1}} },       // island 3 uncovered
		func(j *ShardJob) { j.Assign = [][]int{{0, 2}, {0, 1, 3}} }, // island 0 twice
		func(j *ShardJob) { j.Topology = "mesh" },
		func(j *ShardJob) { j.Islands = 1 },
	}
	for i, m := range mutate {
		j := good
		m(&j)
		if err := j.validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

// TestPeerRejectsDuplicateRun: resubmitting a run ID to the same peer
// is a conflict, not a silent double execution.
func TestPeerRejectsDuplicateRun(t *testing.T) {
	p := NewPeer(PeerOptions{})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	spec := islandSpec()
	job := IslandJob{Spec: spec, Islands: 2, MigrateEvery: 3, Migrants: 1}
	if _, err := Coordinate(context.Background(), nil, "dup", []string{srv.URL}, job, ""); err != nil {
		t.Fatal(err)
	}
	// The sweep after Coordinate forgot the run, so the same ID is
	// usable again — by design (retries reuse IDs).
	if _, err := Coordinate(context.Background(), nil, "dup", []string{srv.URL}, job, ""); err != nil {
		t.Fatal(err)
	}
}
