package netmigrate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"carbon/internal/serve"
)

// IslandJob is one distributed island-model run as the router's client
// submits it: the base spec plus the island parameters.
type IslandJob struct {
	Spec serve.JobSpec `json:"spec"`

	Islands      int    `json:"islands"`
	MigrateEvery int    `json:"migrate_every"`
	Migrants     int    `json:"migrants"`
	Topology     string `json:"topology,omitempty"`

	WaitTimeoutSec float64 `json:"wait_timeout_sec,omitempty"`
}

// IslandRecord is the merged outcome of a distributed island run. The
// Best* fields are selected exactly the way core.MergeShards selects
// them — islands in ascending order, best revenue wins the price, best
// (lowest) gap wins the heuristic — so a networked run's record equals
// the in-process RunIslands result field for field.
type IslandRecord struct {
	Run string `json:"run"`

	BestRevenue float64   `json:"best_revenue"`
	BestGapPct  float64   `json:"best_gap_pct"`
	BestTree    string    `json:"best_tree"`
	Simplified  string    `json:"simplified"`
	BestPrice   []float64 `json:"best_price"`
	BestIsland  int       `json:"best_island"`
	Migrations  int       `json:"migrations"`

	PerIsland []*serve.ResultRecord `json:"per_island"`
	Shards    [][]int               `json:"shards"` // island assignment, by peer
	Peers     []string              `json:"peers"`
}

// Coordinate runs one island job across peers: islands are dealt
// round-robin (island i → peer i mod S, which keeps every shard's list
// ascending), each peer runs its shard against the others over the
// fleet endpoints, and the shard records are merged. Blocks until the
// run finishes or ctx expires; finished runs are swept off the peers.
func Coordinate(ctx context.Context, client *http.Client, runID string, peers []string, job IslandJob, tp string) (*IslandRecord, error) {
	if client == nil {
		client = &http.Client{}
	}
	if runID == "" {
		return nil, fmt.Errorf("netmigrate: coordinate needs a run ID")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("netmigrate: coordinate needs at least one peer")
	}
	shards := len(peers)
	if shards > job.Islands {
		shards = job.Islands
	}
	peers = peers[:shards]
	assign := make([][]int, shards)
	for i := 0; i < job.Islands; i++ {
		assign[i%shards] = append(assign[i%shards], i)
	}

	base := ShardJob{
		Run: runID, Spec: job.Spec.Normalize(),
		Islands: job.Islands, MigrateEvery: job.MigrateEvery, Migrants: job.Migrants,
		Topology: job.Topology, Peers: peers, Assign: assign,
		TraceParent: tp, WaitTimeoutSec: job.WaitTimeoutSec,
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	if err := base.Spec.Validate(); err != nil {
		return nil, err
	}
	defer sweep(client, peers, runID)
	for s := range peers {
		sj := base
		sj.Me = s
		if err := postShard(ctx, client, peers[s], sj); err != nil {
			return nil, err
		}
	}

	// Poll every peer until all shards land. A failed shard fails the
	// run with that shard's error — partial island runs are worthless,
	// the client simply retries.
	recs := make([]*ShardRecord, shards)
	for done := 0; done < shards; {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netmigrate: run %s: %w", runID, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
		done = 0
		for s := range peers {
			if recs[s] != nil {
				done++
				continue
			}
			st, err := getShard(ctx, client, peers[s], runID)
			if err != nil {
				return nil, err
			}
			switch st.State {
			case stateFailed:
				return nil, fmt.Errorf("netmigrate: run %s: shard %d on %s failed: %s", runID, s, peers[s], st.Error)
			case stateDone:
				recs[s] = st.Result
				done++
			}
		}
	}
	rec := mergeRecords(runID, job.Islands, recs)
	rec.Shards = assign
	rec.Peers = peers
	return rec, nil
}

// mergeRecords replicates core.MergeShards at the record level:
// ascending islands, strictly-greater revenue takes the price fields,
// strictly-lower gap takes the heuristic fields, migrations is the max.
func mergeRecords(runID string, islands int, shardRecs []*ShardRecord) *IslandRecord {
	byIsland := make(map[int]*serve.ResultRecord)
	migrations := 0
	for _, sr := range shardRecs {
		if sr == nil {
			continue
		}
		for k, i := range sr.Islands {
			byIsland[i] = sr.Records[k]
		}
		if sr.Migrations > migrations {
			migrations = sr.Migrations
		}
	}
	rec := &IslandRecord{Run: runID, Migrations: migrations}
	bestRevenue := -1.0
	bestGap := -1.0
	for i := 0; i < islands; i++ {
		r := byIsland[i]
		if r == nil {
			continue
		}
		rec.PerIsland = append(rec.PerIsland, r)
		if r.BestRevenue > bestRevenue {
			bestRevenue = r.BestRevenue
			rec.BestPrice = r.BestPrice
			rec.BestRevenue = r.BestRevenue
			rec.BestIsland = i
		}
		if bestGap < 0 || r.BestGapPct < bestGap {
			bestGap = r.BestGapPct
			rec.BestTree = r.BestTree
			rec.Simplified = r.Simplified
			rec.BestGapPct = r.BestGapPct
		}
	}
	return rec
}

func postShard(ctx context.Context, client *http.Client, peer string, sj ShardJob) error {
	b, err := json.Marshal(sj)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/fleet/shards", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if sj.TraceParent != "" {
		req.Header.Set("traceparent", sj.TraceParent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("netmigrate: shard %d on %s: %w", sj.Me, peer, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("netmigrate: shard %d on %s: %s: %s", sj.Me, peer, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

func getShard(ctx context.Context, client *http.Client, peer, runID string) (ShardStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/fleet/shards/"+runID, nil)
	if err != nil {
		return ShardStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return ShardStatus{}, fmt.Errorf("netmigrate: poll %s on %s: %w", runID, peer, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return ShardStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ShardStatus{}, fmt.Errorf("netmigrate: poll %s on %s: %s", runID, peer, resp.Status)
	}
	var st ShardStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return ShardStatus{}, err
	}
	return st, nil
}

// sweep forgets a finished run on every peer, best-effort.
func sweep(client *http.Client, peers []string, runID string) {
	for _, peer := range peers {
		req, err := http.NewRequest(http.MethodDelete, peer+"/v1/fleet/shards/"+runID, nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}
