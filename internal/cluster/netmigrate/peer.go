// Package netmigrate is the HTTP/JSON implementation of core.Transport:
// it lets one island-model run spread its islands across several carbond
// peers while staying bit-identical — per (seed, topology) — to the
// in-process RunIslands. Each peer hosts a shard of the run's islands
// (core.RunIslandsShard) and exchanges migrant batches and per-generation
// liveness over three endpoints mounted under /v1/fleet/:
//
//	POST   /v1/fleet/shards        start a shard of a run here (202)
//	GET    /v1/fleet/shards/{run}  shard state and, when done, its results
//	DELETE /v1/fleet/shards/{run}  forget a finished run
//	POST   /v1/fleet/migrants      deliver one migrant batch (peer→peer)
//	POST   /v1/fleet/progress      deliver one liveness report (peer→peer)
//
// The determinism contract is inherited from core.Transport: batches
// cross the wire as pure JSON (prey as float64 slices — exact under
// encoding/json's shortest-round-trip rendering — predators as their
// canonical gp encoding), and the liveness barrier returns the same
// global OR on every shard. Traceparent propagates on every hop, so a
// distributed run's generation spans from all peers stitch into one
// trace.
package netmigrate

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"carbon/internal/core"
	"carbon/internal/serve"
	"carbon/internal/span"
)

// ShardJob tells a peer to run a shard of a distributed island run.
type ShardJob struct {
	// Run identifies the distributed run; every message of the run —
	// shard jobs, migrants, progress — carries it.
	Run string `json:"run"`
	// Spec is the base job (instance, seed, budgets). Peers normalize it
	// identically (serve.JobSpec.Normalize), so defaults can never make
	// two shards disagree about the configuration.
	Spec serve.JobSpec `json:"spec"`

	Islands      int    `json:"islands"`
	MigrateEvery int    `json:"migrate_every"`
	Migrants     int    `json:"migrants"`
	Topology     string `json:"topology,omitempty"`

	// Me indexes this peer in Peers; Assign[Me] is the ascending list of
	// global island indices this peer runs. Every shard of the run gets
	// the same Peers and Assign, so all sides agree where each island
	// lives.
	Me     int      `json:"me"`
	Peers  []string `json:"peers"`
	Assign [][]int  `json:"assign"`

	TraceParent string `json:"traceparent,omitempty"`
	// WaitTimeoutSec bounds every transport wait (migrant receive,
	// barrier). Default 60s: a vanished peer fails the shard loudly
	// instead of hanging it.
	WaitTimeoutSec float64 `json:"wait_timeout_sec,omitempty"`
}

func (j *ShardJob) validate() error {
	ic := j.islandConfig()
	if err := ic.Validate(); err != nil {
		return err
	}
	switch {
	case j.Run == "":
		return fmt.Errorf("netmigrate: shard job without a run ID")
	case len(j.Peers) == 0 || len(j.Assign) != len(j.Peers):
		return fmt.Errorf("netmigrate: %d peers but %d assignments", len(j.Peers), len(j.Assign))
	case j.Me < 0 || j.Me >= len(j.Peers):
		return fmt.Errorf("netmigrate: shard index %d outside %d peers", j.Me, len(j.Peers))
	}
	covered := make(map[int]bool)
	for _, islands := range j.Assign {
		for _, i := range islands {
			if i < 0 || i >= j.Islands || covered[i] {
				return fmt.Errorf("netmigrate: assignment %v does not partition %d islands", j.Assign, j.Islands)
			}
			covered[i] = true
		}
	}
	if len(covered) != j.Islands {
		return fmt.Errorf("netmigrate: assignment %v does not cover %d islands", j.Assign, j.Islands)
	}
	return nil
}

func (j *ShardJob) islandConfig() core.IslandConfig {
	return core.IslandConfig{
		Islands:      j.Islands,
		MigrateEvery: j.MigrateEvery,
		Migrants:     j.Migrants,
		Topology:     core.Topology(j.Topology),
	}
}

func (j *ShardJob) waitTimeout() time.Duration {
	if j.WaitTimeoutSec > 0 {
		return time.Duration(j.WaitTimeoutSec * float64(time.Second))
	}
	return time.Minute
}

// ShardRecord is a finished shard's contribution: one ResultRecord per
// hosted island, aligned with Islands (ascending global indices).
type ShardRecord struct {
	Run        string                `json:"run"`
	Islands    []int                 `json:"islands"`
	Records    []*serve.ResultRecord `json:"records"`
	Migrations int                   `json:"migrations"`
}

// ShardStatus is GET /v1/fleet/shards/{run}.
type ShardStatus struct {
	Run    string       `json:"run"`
	State  string       `json:"state"` // pending | running | done | failed
	Error  string       `json:"error,omitempty"`
	Result *ShardRecord `json:"result,omitempty"`
}

// progressReport is one shard's liveness flag for one generation.
type progressReport struct {
	Run        string `json:"run"`
	Gen        int    `json:"gen"`
	Shard      int    `json:"shard"`
	Progressed bool   `json:"progressed"`
}

// PeerOptions configures a Peer.
type PeerOptions struct {
	// Client is used for peer→peer traffic (default http.DefaultClient
	// semantics with no global timeout).
	Client *http.Client
	// Tracer, when set, records the shard's spans (fleet.shard plus the
	// engine's generation/migration spans beneath it) — typically
	// carbond's span file, so a distributed run is traceable per worker.
	Tracer *span.Tracer
}

// Peer hosts shards of distributed island runs. One Peer serves many
// concurrent runs; state is per-run and created on first contact, so
// migrants arriving before the shard job (peers start at different
// times) park in the inbox instead of being dropped.
type Peer struct {
	client *http.Client
	tracer *span.Tracer

	mu   sync.Mutex
	runs map[string]*run
}

func NewPeer(opts PeerOptions) *Peer {
	p := &Peer{client: opts.Client, tracer: opts.Tracer, runs: make(map[string]*run)}
	if p.client == nil {
		p.client = &http.Client{}
	}
	return p
}

const (
	statePending = "pending"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// run is one distributed run's local state: the shard execution plus
// the inbox the HTTP transport drains. The notify channel is a
// broadcast: closed and replaced whenever anything arrives, so waiters
// re-check their predicate (same pattern as core.LocalTransport).
type run struct {
	id string

	mu       sync.Mutex
	notify   chan struct{}
	state    string
	errMsg   string
	rec      *ShardRecord
	migrants map[[3]int]core.MigrantBatch
	progress map[int]map[int]bool // gen → shard → progressed
}

func (p *Peer) run(id string) *run {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.runs[id]
	if r == nil {
		r = &run{
			id: id, state: statePending,
			notify:   make(chan struct{}),
			migrants: make(map[[3]int]core.MigrantBatch),
			progress: make(map[int]map[int]bool),
		}
		p.runs[id] = r
	}
	return r
}

func (r *run) wake() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// wait blocks until pred (evaluated under r.mu) holds, or the deadline
// passes.
func (r *run) wait(what string, timeout time.Duration, pred func() bool) error {
	deadline := time.Now().Add(timeout)
	r.mu.Lock()
	for !pred() {
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("netmigrate: run %s: timed out waiting for %s", r.id, what)
		}
		r.mu.Lock()
	}
	r.mu.Unlock()
	return nil
}

func (r *run) deliverMigrant(b core.MigrantBatch) {
	r.mu.Lock()
	r.migrants[[3]int{b.From, b.To, b.Gen}] = b
	r.wake()
	r.mu.Unlock()
}

func (r *run) awaitMigrant(from, to, gen int, timeout time.Duration) (core.MigrantBatch, error) {
	key := [3]int{from, to, gen}
	if err := r.wait(fmt.Sprintf("migrants %d→%d gen %d", from, to, gen), timeout, func() bool {
		_, ok := r.migrants[key]
		return ok
	}); err != nil {
		return core.MigrantBatch{}, err
	}
	r.mu.Lock()
	b := r.migrants[key]
	delete(r.migrants, key)
	r.mu.Unlock()
	return b, nil
}

func (r *run) deliverProgress(rep progressReport) {
	r.mu.Lock()
	g := r.progress[rep.Gen]
	if g == nil {
		g = make(map[int]bool)
		r.progress[rep.Gen] = g
	}
	g[rep.Shard] = rep.Progressed
	r.wake()
	r.mu.Unlock()
}

// awaitBarrier blocks until all `shards` liveness reports for gen are
// in, then returns their OR — the global "anyone still has budget"
// signal. Settled rounds two generations back are swept to keep the map
// bounded.
func (r *run) awaitBarrier(gen, shards int, timeout time.Duration) (bool, error) {
	if err := r.wait(fmt.Sprintf("barrier gen %d", gen), timeout, func() bool {
		return len(r.progress[gen]) == shards
	}); err != nil {
		return false, err
	}
	r.mu.Lock()
	any := false
	for _, p := range r.progress[gen] {
		any = any || p
	}
	delete(r.progress, gen-2)
	r.mu.Unlock()
	return any, nil
}

func (r *run) status() ShardStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ShardStatus{Run: r.id, State: r.state, Error: r.errMsg, Result: r.rec}
}

// Handler serves the fleet endpoints. Mount it at "/v1/fleet/" — the
// patterns carry the full path, so it composes onto carbond's mux.
func (p *Peer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/shards", func(w http.ResponseWriter, req *http.Request) {
		var job ShardJob
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&job); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := job.validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		r := p.run(job.Run)
		r.mu.Lock()
		if r.state != statePending {
			st := r.state
			r.mu.Unlock()
			writeError(w, http.StatusConflict, fmt.Errorf("netmigrate: run %s already %s here", job.Run, st))
			return
		}
		r.state = stateRunning
		r.mu.Unlock()
		go p.execute(job, r)
		writeJSONStatus(w, http.StatusAccepted, r.status())
	})
	mux.HandleFunc("GET /v1/fleet/shards/{run}", func(w http.ResponseWriter, req *http.Request) {
		p.mu.Lock()
		r, ok := p.runs[req.PathValue("run")]
		p.mu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("netmigrate: unknown run %s", req.PathValue("run")))
			return
		}
		writeJSONStatus(w, http.StatusOK, r.status())
	})
	mux.HandleFunc("DELETE /v1/fleet/shards/{run}", func(w http.ResponseWriter, req *http.Request) {
		p.mu.Lock()
		delete(p.runs, req.PathValue("run"))
		p.mu.Unlock()
		writeJSONStatus(w, http.StatusOK, map[string]string{"run": req.PathValue("run"), "status": "forgotten"})
	})
	mux.HandleFunc("POST /v1/fleet/migrants", func(w http.ResponseWriter, req *http.Request) {
		var b core.MigrantBatch
		if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if b.Run == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("netmigrate: migrant batch without a run ID"))
			return
		}
		p.run(b.Run).deliverMigrant(b)
		writeJSONStatus(w, http.StatusAccepted, map[string]string{"status": "delivered"})
	})
	mux.HandleFunc("POST /v1/fleet/progress", func(w http.ResponseWriter, req *http.Request) {
		var rep progressReport
		if err := json.NewDecoder(req.Body).Decode(&rep); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if rep.Run == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("netmigrate: progress report without a run ID"))
			return
		}
		p.run(rep.Run).deliverProgress(rep)
		writeJSONStatus(w, http.StatusAccepted, map[string]string{"status": "delivered"})
	})
	return mux
}

// execute runs this peer's shard to completion. It owns the run's state
// transitions: running → done (with results) or failed (with the error).
func (p *Peer) execute(job ShardJob, r *run) {
	var parent span.Context
	if ctx, err := span.ParseTraceParent(job.TraceParent); err == nil {
		parent = ctx
	}
	var sp *span.Span
	if p.tracer != nil {
		sp = p.tracer.StartRemote(parent, "fleet.shard").Kind(span.KindCompute).
			Attr("run", job.Run).Attr("shard", job.Me).
			Attr("islands", fmt.Sprint(job.Assign[job.Me])).Announce()
	}
	rec, err := p.runShard(job, sp)
	if sp != nil {
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	r.mu.Lock()
	if err != nil {
		r.state = stateFailed
		r.errMsg = err.Error()
	} else {
		r.state = stateDone
		r.rec = rec
	}
	r.wake()
	r.mu.Unlock()
}

func (p *Peer) runShard(job ShardJob, sp *span.Span) (*ShardRecord, error) {
	spec := job.Spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mk, err := spec.Market()
	if err != nil {
		return nil, err
	}
	cfg := spec.Config()
	cfg.RunLabel = "fleet/" + job.Run
	if p.tracer != nil && sp != nil {
		cfg.Spans = p.tracer
		cfg.SpanParent = sp.Context()
	}
	tr := &Transport{
		run: p.run(job.Run), client: p.client,
		me: job.Me, peers: job.Peers,
		shardOf: islandShardMap(job.Assign),
		timeout: job.waitTimeout(),
		tp:      job.TraceParent,
	}
	sh, err := core.RunIslandsShard(context.Background(), mk, cfg, job.islandConfig(), job.Assign[job.Me], tr)
	if err != nil {
		return nil, err
	}
	rec := &ShardRecord{Run: job.Run, Islands: sh.Islands, Migrations: sh.Migrations}
	for k, i := range sh.Islands {
		rec.Records = append(rec.Records,
			serve.NewResultRecord(fmt.Sprintf("%s/i%02d", job.Run, i), spec, sh.PerIsland[k]))
	}
	return rec, nil
}

func islandShardMap(assign [][]int) map[int]int {
	m := make(map[int]int)
	for s, islands := range assign {
		for _, i := range islands {
			m[i] = s
		}
	}
	return m
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}
