package netmigrate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"carbon/internal/core"
)

// Transport is the HTTP core.Transport: migrants and liveness reports
// addressed to islands on this peer short-circuit into the local inbox;
// everything else is POSTed to the owning peer. Barrier is symmetric
// all-to-all — every shard reports its progress flag to every shard,
// and each waits until it holds all reports for the generation — so no
// shard is a coordinator and the OR is computed identically everywhere.
type Transport struct {
	run     *run
	client  *http.Client
	me      int
	peers   []string
	shardOf map[int]int // global island index → shard index
	timeout time.Duration
	tp      string // traceparent for peer→peer hops
}

var _ core.Transport = (*Transport)(nil)

// Send routes one migrant batch to the shard hosting island b.To.
func (t *Transport) Send(b core.MigrantBatch) error {
	b.Run = t.run.id
	dst, ok := t.shardOf[b.To]
	if !ok {
		return fmt.Errorf("netmigrate: no shard hosts island %d", b.To)
	}
	if dst == t.me {
		t.run.deliverMigrant(b)
		return nil
	}
	return t.post(t.peers[dst]+"/v1/fleet/migrants", b)
}

// Recv drains the local inbox; the owed batch may arrive before or
// after the call — the inbox parks early deliveries.
func (t *Transport) Recv(from, to, gen int) (core.MigrantBatch, error) {
	return t.run.awaitMigrant(from, to, gen, t.timeout)
}

// Barrier publishes this shard's progress to every shard (itself
// included) and blocks until all reports for gen are in.
func (t *Transport) Barrier(gen int, progressed bool) (bool, error) {
	rep := progressReport{Run: t.run.id, Gen: gen, Shard: t.me, Progressed: progressed}
	for s := range t.peers {
		if s == t.me {
			t.run.deliverProgress(rep)
			continue
		}
		if err := t.post(t.peers[s]+"/v1/fleet/progress", rep); err != nil {
			return false, err
		}
	}
	return t.run.awaitBarrier(gen, len(t.peers), t.timeout)
}

func (t *Transport) post(url string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if t.tp != "" {
		req.Header.Set("traceparent", t.tp)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("netmigrate: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("netmigrate: POST %s: %s", url, resp.Status)
	}
	return nil
}
