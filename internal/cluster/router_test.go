package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"carbon/internal/core"
	"carbon/internal/serve"
)

func tinySpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3,
		Seed: seed, Pop: 16, ULEvals: 160, LLEvals: 480,
		PreySample: 2, Workers: 1,
	}
}

func longSpec(seed uint64) serve.JobSpec {
	s := tinySpec(seed)
	s.ULEvals, s.LLEvals = 16*400, 32*400
	return s
}

// reference is the uninterrupted in-process run — the bits every routed
// job must reproduce no matter how many workers it crossed.
func reference(t testing.TB, spec serve.JobSpec) *core.Result {
	t.Helper()
	spec = spec.Normalize()
	mk, err := spec.Market()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(mk, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testWorker boots a real carbond-equivalent: a serve.Manager behind
// its API handler on an ephemeral listener.
func testWorker(t *testing.T, opts serve.Options) (*serve.Manager, *httptest.Server) {
	t.Helper()
	if opts.SpoolDir == "" {
		opts.SpoolDir = t.TempDir()
	}
	m, err := serve.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.APIHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m, srv
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	if opts.SpoolDir == "" {
		opts.SpoolDir = t.TempDir()
	}
	if opts.ProbeEvery == 0 {
		// Probing is driven explicitly via Probe() so tests are
		// deterministic; the background loop just idles.
		opts.ProbeEvery = time.Hour
	}
	r, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func do(t *testing.T, h http.Handler, method, path string, body any, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	// Generous: a race-instrumented engine on a loaded single-core
	// machine runs the long failover jobs 10-20x slower than bare.
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitDone(t *testing.T, h http.Handler, id string) {
	t.Helper()
	waitFor(t, "fleet job "+id, func() bool {
		rr, body := do(t, h, "GET", "/v1/jobs/"+id, nil, nil)
		if rr.Code != http.StatusOK {
			return false
		}
		var st serve.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateDead {
			t.Fatalf("fleet job %s died: %s", id, st.Error)
		}
		return st.State == serve.StateDone
	})
}

func fetchResult(t *testing.T, h http.Handler, id string) *serve.ResultRecord {
	t.Helper()
	rr, body := do(t, h, "GET", "/v1/jobs/"+id+"/result", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("result %s: got %d: %s", id, rr.Code, body)
	}
	rec := new(serve.ResultRecord)
	if err := json.Unmarshal(body, rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func assertRecordMatches(t *testing.T, rec *serve.ResultRecord, want *core.Result) {
	t.Helper()
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		t.Fatalf("budget trace diverged: got %d gens %d/%d, want %d gens %d/%d",
			rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr || !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		t.Fatalf("best pairing diverged:\n got  (%v, %q, %v)\n want (%v, %q, %v)",
			rec.BestRevenue, rec.BestTree, rec.BestGapPct,
			want.Best.Revenue, want.Best.TreeStr, want.Best.GapPct)
	}
	if !reflect.DeepEqual(rec.ULCurveX, want.ULCurve.X) || !reflect.DeepEqual(rec.ULCurveY, want.ULCurve.Y) {
		t.Fatal("convergence curves diverged")
	}
}

func TestRouterShardsAndProxies(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 2})
	_, w2 := testWorker(t, serve.Options{Workers: 2})
	r := newTestRouter(t, Options{Workers: []string{w1.URL, w2.URL}})
	h := r.Handler()

	// Round-robin spreads consecutive submissions across both workers.
	hosts := map[string]int{}
	var ids []string
	for i := 0; i < 4; i++ {
		rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(uint64(70+i)), nil)
		if rr.Code != http.StatusCreated {
			t.Fatalf("submit %d: got %d: %s", i, rr.Code, body)
		}
		var st serve.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.ID != fmt.Sprintf("f%06d", i+1) {
			t.Fatalf("fleet ID %q", st.ID)
		}
		ids = append(ids, st.ID)
		hosts[rr.Header().Get("X-Carbon-Worker")]++
	}
	if hosts[w1.URL] != 2 || hosts[w2.URL] != 2 {
		t.Fatalf("round-robin spread %v", hosts)
	}

	for i, id := range ids {
		waitDone(t, h, id)
		assertRecordMatches(t, fetchResult(t, h, id), reference(t, tinySpec(uint64(70+i))))
	}

	// The route table and fleet health agree.
	var fh FleetHealth
	if rr, body := do(t, h, "GET", "/v1/healthz", nil, nil); rr.Code == http.StatusOK {
		if err := json.Unmarshal(body, &fh); err != nil {
			t.Fatal(err)
		}
	}
	if !fh.OK || fh.Healthy != 2 || fh.Routes != 4 || fh.Failovers != 0 {
		t.Fatalf("fleet health %+v", fh)
	}

	// Delete removes the route and the worker's job.
	if rr, _ := do(t, h, "DELETE", "/v1/jobs/"+ids[0], nil, nil); rr.Code != http.StatusOK {
		t.Fatalf("delete: got %d", rr.Code)
	}
	if rr, _ := do(t, h, "GET", "/v1/jobs/"+ids[0], nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("deleted fleet job still visible: got %d", rr.Code)
	}
	if rr, _ := do(t, h, "GET", "/v1/jobs/zzz", nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown fleet job: got %d", rr.Code)
	}
}

// TestRouterFailover is the subsystem's core promise end to end: a
// worker dies mid-job, the router re-homes the job onto the survivor
// from the mirrored checkpoint, and the finished result is bit-identical
// to a run that never moved.
func TestRouterFailover(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 1, CheckpointEvery: 1})
	m2, w2 := testWorker(t, serve.Options{Workers: 1, CheckpointEvery: 1})
	r := newTestRouter(t, Options{
		Workers: []string{w1.URL, w2.URL}, DeadAfter: 2, Spans: true,
	})
	h := r.Handler()

	spec := longSpec(81)
	rr, body := do(t, h, "POST", "/v1/jobs", spec, nil)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got := rr.Header().Get("X-Carbon-Worker"); got != w1.URL {
		t.Fatalf("round-robin first pick %q, want %q", got, w1.URL)
	}

	// Let the job run long enough to checkpoint, then mirror it.
	waitFor(t, "checkpoint mirror", func() bool {
		r.Probe()
		_, err := os.Stat(r.mirrorPath(st.ID))
		return err == nil
	})

	// Kill worker 1 and probe past DeadAfter: the route must move to
	// worker 2 with a restore submission.
	w1.Close()
	r.Probe()
	r.Probe()
	rt, ok := r.lookup(st.ID)
	if !ok {
		t.Fatal("route vanished")
	}
	if rt.Worker != w2.URL || rt.Failovers != 1 {
		t.Fatalf("route after failover: %+v", rt)
	}
	if h := r.Health(); h.Failovers != 1 || h.Healthy != 1 {
		t.Fatalf("fleet health after failover: %+v", h)
	}

	waitDone(t, h, st.ID)
	assertRecordMatches(t, fetchResult(t, h, st.ID), reference(t, spec))

	// The survivor really resumed mid-stream rather than recomputing
	// from scratch.
	var resumed bool
	for _, ws := range m2.List() {
		resumed = resumed || ws.Resumed
	}
	if !resumed {
		t.Fatal("survivor did not resume from the mirrored checkpoint")
	}
}

// TestRouterSpoolRecovery: a restarted router reattaches to in-flight
// jobs through its spool — the client's fleet IDs keep working.
func TestRouterSpoolRecovery(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 1})
	spool := t.TempDir()
	r1 := newTestRouter(t, Options{Workers: []string{w1.URL}, SpoolDir: spool})
	rr, body := do(t, r1.Handler(), "POST", "/v1/jobs", tinySpec(91), nil)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// Hostile debris next to the route: quarantined files burn their
	// IDs, stray names are ignored.
	if err := os.WriteFile(filepath.Join(spool, "f000007.route.json.corrupt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spool, "f000003.route.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newTestRouter(t, Options{Workers: []string{w1.URL}, SpoolDir: spool})
	h := r2.Handler()
	waitDone(t, h, st.ID)
	assertRecordMatches(t, fetchResult(t, h, st.ID), reference(t, tinySpec(91)))
	if _, err := os.Stat(filepath.Join(spool, "f000003.route.json.corrupt")); err != nil {
		t.Fatalf("torn route not quarantined: %v", err)
	}
	// Burned IDs: the next submission must start past f000007.
	rr, body = do(t, h, "POST", "/v1/jobs", tinySpec(92), nil)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit after recovery: got %d: %s", rr.Code, body)
	}
	var st2 serve.Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID != "f000008" {
		t.Fatalf("post-recovery fleet ID %q, want f000008", st2.ID)
	}
}

func TestRouterAdmission(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 1, QueueDepth: 64})
	r := newTestRouter(t, Options{
		Workers: []string{w1.URL},
		Rate:    0.001, Burst: 2, // two submissions, then a long dry spell
		Quota: map[string]float64{"vip": 1000},
	})
	h := r.Handler()

	for i := 0; i < 2; i++ {
		if rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(uint64(95+i)), nil); rr.Code != http.StatusCreated {
			t.Fatalf("submit %d: got %d: %s", i, rr.Code, body)
		}
	}
	rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(97), nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: got %d: %s", rr.Code, body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Admission is per tenant: the throttled default tenant does not
	// starve a tenant with its own quota.
	vip := map[string]string{TenantHeader: "vip"}
	if rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(98), vip); rr.Code != http.StatusCreated {
		t.Fatalf("vip submit: got %d: %s", rr.Code, body)
	}
}

func TestPolicyRanking(t *testing.T) {
	views := []workerView{
		{index: 0, healthy: true, queued: 5, running: 1, weight: 1},
		{index: 1, healthy: false, queued: 0, running: 0, weight: 1},
		{index: 2, healthy: true, queued: 0, running: 1, weight: 1},
		{index: 3, healthy: true, queued: 2, running: 0, weight: 8},
	}
	ll, err := rank(PolicyLeastLoaded, views, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ll, []int{2, 3, 0}) {
		t.Fatalf("least-loaded order %v", ll)
	}
	wt, err := rank(PolicyWeighted, views, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted: worker 3 carries weight 8, so its 2 jobs score 3/8 —
	// ahead of idle worker 2's 1/1.
	if !reflect.DeepEqual(wt, []int{3, 2, 0}) {
		t.Fatalf("weighted order %v", wt)
	}
	rr1, err := rank(PolicyRoundRobin, views, 0)
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := rank(PolicyRoundRobin, views, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr1, []int{0, 2, 3}) || !reflect.DeepEqual(rr2, []int{2, 3, 0}) {
		t.Fatalf("round-robin orders %v / %v", rr1, rr2)
	}
	if _, err := rank("mesh", views, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	bs := newBuckets(1, 1, nil, func() time.Time { return now })
	if ok, _ := bs.take("a"); !ok {
		t.Fatal("fresh bucket refused")
	}
	ok, wait := bs.take("a")
	if ok || wait < time.Second {
		t.Fatalf("dry bucket: ok=%v wait=%v", ok, wait)
	}
	now = now.Add(1500 * time.Millisecond)
	if ok, _ := bs.take("a"); !ok {
		t.Fatal("refilled bucket refused")
	}
	// Tenants are independent.
	if ok, _ := bs.take("b"); !ok {
		t.Fatal("tenant b throttled by tenant a")
	}
	// A zero quota blocks the tenant outright... but rate 0 in the
	// default means unlimited; quota overrides use the same convention.
	free := newBuckets(0, 0, nil, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		if ok, _ := free.take("x"); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

// BenchmarkRouteSubmit measures pure router overhead per submission:
// admission, policy ranking, spool write, proxy hop — against a worker
// stub that accepts instantly.
func BenchmarkRouteSubmit(b *testing.B) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Path == "/v1/healthz":
			fmt.Fprint(w, `{"ok":true}`)
		default:
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, `{"id":"j000001","state":"queued","spec":{"n":60,"m":5},"submitted":"2026-01-01T00:00:00Z"}`)
		}
	}))
	defer stub.Close()
	r, err := NewRouter(Options{
		Workers: []string{stub.URL}, SpoolDir: b.TempDir(), ProbeEvery: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	spec := tinySpec(1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Submit(ctx, spec, "bench", ""); err != nil {
			b.Fatal(err)
		}
	}
}
