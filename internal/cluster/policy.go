package cluster

import (
	"fmt"
	"sort"
)

// Routing policies rank the live workers for one submission. They
// return a preference order rather than a single pick so the submit
// path can fall through to the next candidate when a worker refuses
// (queue full) or fails mid-request — a routing decision is advice,
// acceptance is the worker's.
const (
	PolicyRoundRobin  = "round-robin"  // rotate through workers in order
	PolicyLeastLoaded = "least-loaded" // fewest queued+running jobs first
	PolicyWeighted    = "weighted"     // least load per unit of capacity weight
)

// workerView is the slice of worker state a policy is allowed to see.
type workerView struct {
	index   int
	healthy bool
	queued  int // queue_depth from the last health probe
	running int
	weight  float64
}

func (v workerView) load() int { return v.queued + v.running }

// rank returns healthy worker indices in preference order. rrNext is
// the round-robin cursor (the caller advances it per submission).
func rank(policy string, views []workerView, rrNext int) ([]int, error) {
	live := make([]workerView, 0, len(views))
	for _, v := range views {
		if v.healthy {
			live = append(live, v)
		}
	}
	switch policy {
	case PolicyRoundRobin, "":
		// Rotate the healthy list so successive submissions start from
		// successive workers; fall-through order keeps rotating too.
		order := make([]int, 0, len(live))
		for k := 0; k < len(live); k++ {
			order = append(order, live[(rrNext+k)%len(live)].index)
		}
		return order, nil
	case PolicyLeastLoaded:
		sort.SliceStable(live, func(a, b int) bool {
			if live[a].load() != live[b].load() {
				return live[a].load() < live[b].load()
			}
			return live[a].index < live[b].index
		})
	case PolicyWeighted:
		// Load per unit of capacity: a weight-2 worker absorbs twice the
		// jobs of a weight-1 worker before ranking behind it. The +1
		// makes an empty heavyweight beat an empty lightweight.
		score := func(v workerView) float64 {
			w := v.weight
			if w <= 0 {
				w = 1
			}
			return float64(v.load()+1) / w
		}
		sort.SliceStable(live, func(a, b int) bool {
			if score(live[a]) != score(live[b]) {
				return score(live[a]) < score(live[b])
			}
			return live[a].index < live[b].index
		})
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q", policy)
	}
	order := make([]int, len(live))
	for k, v := range live {
		order[k] = v.index
	}
	return order, nil
}

func validPolicy(p string) bool {
	switch p {
	case "", PolicyRoundRobin, PolicyLeastLoaded, PolicyWeighted:
		return true
	}
	return false
}
