package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"carbon/internal/serve"
	"carbon/internal/slo"
	"carbon/internal/telemetry"
)

// testWorkerObs is testWorker with the telemetry surface attached —
// the same mux shape cmd/carbond serves, so the router's federation
// scrape hits a real /metrics/prometheus.
func testWorkerObs(t *testing.T, opts serve.Options) (*serve.Manager, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	if opts.SpoolDir == "" {
		opts.SpoolDir = t.TempDir()
	}
	m, err := serve.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/", serve.APIHandler(m))
	mux.Handle("/", telemetry.DynamicHandler(
		func() map[string]*telemetry.Registry { return map[string]*telemetry.Registry{"carbond": reg} },
		m.MetricsTargets))
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m, srv, reg
}

func findSeries(t *testing.T, fams []telemetry.Family, name string) *telemetry.Family {
	t.Helper()
	f := telemetry.FindFamily(fams, name)
	if f == nil {
		names := make([]string, 0, len(fams))
		for _, fam := range fams {
			names = append(names, fam.Name)
		}
		t.Fatalf("family %s missing from federated view; have %v", name, names)
	}
	return f
}

// TestFleetMetricsFederation: counters sum across workers, gauges stay
// per-worker under a worker label, and the router's own registry joins
// the view as worker="router".
func TestFleetMetricsFederation(t *testing.T) {
	_, w1, reg1 := testWorkerObs(t, serve.Options{Workers: 1})
	_, w2, reg2 := testWorkerObs(t, serve.Options{Workers: 1})
	r := newTestRouter(t, Options{Workers: []string{w1.URL, w2.URL}})
	h := r.Handler()

	// One job per worker (round-robin) so both registries carry real
	// engine counters.
	for seed := uint64(1); seed <= 2; seed++ {
		rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(seed), nil)
		if rr.Code != http.StatusCreated {
			t.Fatalf("submit: got %d: %s", rr.Code, body)
		}
		var st serve.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		waitDone(t, h, st.ID)
	}
	reg1.Gauge("test.depth").Set(3)
	reg2.Gauge("test.depth").Set(7)
	r.Probe()

	rr, body := do(t, h, "GET", "/metrics/prometheus", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("fleet metrics: got %d", rr.Code)
	}
	fams, err := telemetry.ParseFamilies(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}

	// Counter conservation: the fleet total is exactly the sum of the
	// per-worker registries.
	lp := findSeries(t, fams, "carbond_bcpop_lp_solves")
	wantLP := float64(reg1.Counter("bcpop.lp_solves").Load() + reg2.Counter("bcpop.lp_solves").Load())
	if wantLP <= 0 {
		t.Fatal("workers report zero LP solves; jobs did not run")
	}
	var gotLP float64
	for _, s := range lp.Series {
		gotLP += s.Value
	}
	if gotLP != wantLP {
		t.Fatalf("federated lp_solves = %v, want sum of workers %v", gotLP, wantLP)
	}

	// Gauges stay per-worker, distinguished by the worker label.
	depth := findSeries(t, fams, "carbond_test_depth")
	if depth.Kind != "gauge" || len(depth.Series) != 2 {
		t.Fatalf("test.depth federated as %s with %d series, want gauge with 2", depth.Kind, len(depth.Series))
	}
	got := map[string]float64{}
	for _, s := range depth.Series {
		got[s.Labels[telemetry.WorkerLabel]] = s.Value
	}
	want := map[string]float64{workerLabel(w1.URL): 3, workerLabel(w2.URL): 7}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("gauge per-worker view = %v, want %v", got, want)
		}
	}

	// The router contributes its own health as worker="router".
	healthy := findSeries(t, fams, "carbonfleet_cluster_workers_healthy")
	if len(healthy.Series) != 1 || healthy.Series[0].Labels[telemetry.WorkerLabel] != "router" ||
		healthy.Series[0].Value != 2 {
		t.Fatalf("router self-series: %+v", healthy.Series)
	}

	// JSON rollup agrees on coverage.
	rr, body = do(t, h, "GET", "/v1/fleet/metrics", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("fleet metrics JSON: got %d", rr.Code)
	}
	var snap FleetMetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scraped != 2 || len(snap.Families) == 0 || snap.MergeError != "" {
		t.Fatalf("rollup: scraped=%d families=%d mergeErr=%q", snap.Scraped, len(snap.Families), snap.MergeError)
	}
}

// TestFleetSLOAlerts: a declarative rule over the federated view fires
// on /v1/fleet/alerts and as a carbonfleet_alert gauge, then clears
// when the metric recovers.
func TestFleetSLOAlerts(t *testing.T) {
	_, w1, reg := testWorkerObs(t, serve.Options{Workers: 1})
	rules, err := slo.ParseRules("depth carbond_test_depth value > 10\n")
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRouter(t, Options{Workers: []string{w1.URL}, SLORules: rules})
	h := r.Handler()

	reg.Gauge("test.depth").Set(50)
	r.Probe()
	rr, body := do(t, h, "GET", "/v1/fleet/alerts", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("alerts: got %d", rr.Code)
	}
	var alerts []slo.Alert
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "depth" || alerts[0].State != slo.StateFiring {
		t.Fatalf("alerts after breach: %+v", alerts)
	}
	if alerts[0].Value != 50 {
		t.Fatalf("alert observed value %v, want 50", alerts[0].Value)
	}

	// The alert is also a metric on the federated endpoint.
	_, body = do(t, h, "GET", "/metrics/prometheus", nil, nil)
	if !strings.Contains(string(body), `carbonfleet_alert{rule="depth"} 1`) {
		t.Fatalf("alert gauge missing from exposition:\n%s", body)
	}

	reg.Gauge("test.depth").Set(5)
	r.Probe()
	_, body = do(t, h, "GET", "/v1/fleet/alerts", nil, nil)
	alerts = nil
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("alert did not clear: %+v", alerts)
	}
}

// --- SSE proxy ---

type sseFrame struct {
	id    string
	event string
	data  string
}

func parseSSEBody(s string) []sseFrame {
	var out []sseFrame
	var cur sseFrame
	for _, line := range strings.Split(s, "\n") {
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

// checkStream asserts the fleet-surface invariants on a proxied
// stream: router-stamped ids strictly ascending, payloads carrying the
// fleet ID, generations strictly increasing with no duplicates, a
// terminal state, and the eof frame last. Returns the highest id and
// the number of gen events.
func checkStream(t *testing.T, frames []sseFrame, fleetID string) (lastID uint64, gens int) {
	t.Helper()
	if len(frames) == 0 {
		t.Fatal("empty stream")
	}
	if last := frames[len(frames)-1]; last.event != "eof" {
		t.Fatalf("stream did not end with eof: %+v", last)
	}
	lastGen := 0
	var lastState serve.State
	for _, f := range frames[:len(frames)-1] {
		if f.event == "dropped" {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %+v: %v", f, err)
		}
		if ev.Job != fleetID {
			t.Fatalf("event names job %q, want fleet ID %q", ev.Job, fleetID)
		}
		var id uint64
		if _, err := fmt.Sscanf(f.id, "%d", &id); err != nil {
			t.Fatalf("frame id %q: %v", f.id, err)
		}
		if id <= lastID {
			t.Fatalf("ids not ascending: %d after %d", id, lastID)
		}
		if id != ev.Seq {
			t.Fatalf("id line %d != payload seq %d", id, ev.Seq)
		}
		lastID = id
		switch ev.Type {
		case serve.EventGen:
			if ev.Gen == nil || ev.Gen.Gen <= lastGen {
				t.Fatalf("gen sequence broken at %+v after gen %d", ev.Gen, lastGen)
			}
			lastGen = ev.Gen.Gen
			gens++
		case serve.EventState:
			lastState = ev.State
		}
	}
	if !lastState.Terminal() {
		t.Fatalf("stream's final state %q is not terminal", lastState)
	}
	return lastID, gens
}

// TestFleetEventProxyStreamsAndResumes: the router proxies a job's SSE
// stream under its fleet ID with router-owned sequence numbers, and
// Last-Event-ID resumes replay only the tail.
func TestFleetEventProxyStreamsAndResumes(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 1})
	r := newTestRouter(t, Options{Workers: []string{w1.URL}})
	h := r.Handler()

	rr, body := do(t, h, "POST", "/v1/jobs", tinySpec(7), nil)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h, st.ID)

	rr, body = do(t, h, "GET", "/v1/jobs/"+st.ID+"/events", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("events: got %d: %s", rr.Code, body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	frames := parseSSEBody(string(body))
	lastID, gens := checkStream(t, frames, st.ID)
	if gens == 0 {
		t.Fatal("no generation events streamed")
	}

	// Resume from the midpoint: exactly the tail replays, ending in eof.
	resumeAfter := lastID / 2
	rr, body = do(t, h, "GET", "/v1/jobs/"+st.ID+"/events", nil,
		map[string]string{"Last-Event-ID": fmt.Sprint(resumeAfter)})
	if rr.Code != http.StatusOK {
		t.Fatalf("resume: got %d", rr.Code)
	}
	tail := parseSSEBody(string(body))
	if last := tail[len(tail)-1]; last.event != "eof" {
		t.Fatalf("resumed stream did not end with eof: %+v", last)
	}
	var want, got int
	want = int(lastID - resumeAfter)
	for _, f := range tail {
		if f.id != "" {
			got++
		}
	}
	if got != want {
		t.Fatalf("resume replayed %d events, want %d", got, want)
	}

	rr, _ = do(t, h, "GET", "/v1/jobs/f999999/events", nil, nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown job events: got %d, want 404", rr.Code)
	}
}

// TestFleetEventStreamStitchesAcrossFailover: a client watching one
// fleet stream sees a seamless event sequence — generations strictly
// increasing, no duplicates from the post-failover replay, one
// terminal state — while the job is killed off one worker and restored
// on another. The run's result stays bit-identical to the reference.
func TestFleetEventStreamStitchesAcrossFailover(t *testing.T) {
	_, w1 := testWorker(t, serve.Options{Workers: 1, CheckpointEvery: 1})
	_, w2 := testWorker(t, serve.Options{Workers: 1, CheckpointEvery: 1})
	r := newTestRouter(t, Options{Workers: []string{w1.URL, w2.URL}, DeadAfter: 2})
	h := r.Handler()
	front := httptest.NewServer(h)
	t.Cleanup(front.Close)

	spec := longSpec(81)
	rr, body := do(t, h, "POST", "/v1/jobs", spec, nil)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Attach the stream before the kill and read it live to completion.
	framesCh := make(chan []sseFrame, 1)
	errCh := make(chan error, 1)
	resp, err := http.Get(front.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer resp.Body.Close()
		var frames []sseFrame
		var cur sseFrame
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				frames = append(frames, cur)
				if cur.event == "eof" {
					framesCh <- frames
					return
				}
				cur = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				cur.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			}
		}
		errCh <- fmt.Errorf("stream ended without eof: %v", sc.Err())
	}()

	waitFor(t, "checkpoint mirror", func() bool {
		r.Probe()
		_, err := os.Stat(r.mirrorPath(st.ID))
		return err == nil
	})
	w1.Close()
	r.Probe()
	r.Probe()
	rt, ok := r.lookup(st.ID)
	if !ok || rt.Worker != w2.URL {
		t.Fatalf("route did not fail over: %+v", rt)
	}
	waitDone(t, h, st.ID)
	assertRecordMatches(t, fetchResult(t, h, st.ID), reference(t, spec))

	var frames []sseFrame
	select {
	case frames = <-framesCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the stream to complete")
	}
	lastID, gens := checkStream(t, frames, st.ID)

	// Seamless coverage: the stream carries every generation the final
	// result accounts for, exactly once (checkStream already proved
	// strict monotonicity, so count == max means no holes).
	rec := fetchResult(t, h, st.ID)
	if gens != rec.Gens {
		t.Fatalf("streamed %d generations across failover, result ran %d", gens, rec.Gens)
	}

	// Client-side resume still works after the re-home: the router ring
	// owns the numbering, so a late Last-Event-ID replays just the tail.
	rr, body = do(t, h, "GET", "/v1/jobs/"+st.ID+"/events", nil,
		map[string]string{"Last-Event-ID": fmt.Sprint(lastID - 3)})
	if rr.Code != http.StatusOK {
		t.Fatalf("post-failover resume: got %d", rr.Code)
	}
	tail := parseSSEBody(string(body))
	var replayed int
	for _, f := range tail {
		if f.id != "" {
			replayed++
		}
	}
	if replayed != 3 || tail[len(tail)-1].event != "eof" {
		t.Fatalf("post-failover resume replayed %d frames (want 3), tail %+v", replayed, tail[len(tail)-1])
	}
}
