package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"carbon/internal/serve"
)

// eventRingSize bounds each proxied job's router-side event ring —
// same drop-oldest semantics as the worker rings (serve.EventRing).
const eventRingSize = 256

// fleetStream is the router's stream state for one fleet job: a ring
// the proxy handler serves clients from, filled by a pump goroutine
// that follows the job across workers. The ring stamps the router's
// own sequence numbers, so a client's Last-Event-ID keeps meaning
// "events I have seen on THIS connection's surface" even after the job
// re-homes and the worker-side numbering restarts from 1.
type fleetStream struct {
	ring *serve.EventRing
}

// pumpState is what survives across upstream reconnects: the highest
// generation forwarded (failover replays recompute — deterministically
// identical — generations the mirror checkpoint predates, and a fresh
// subscription replays the whole worker ring) and the forwarded
// lifecycle history, used to suppress the queued/running transitions a
// restored incarnation re-announces. Fleet clients see one seamless
// lifecycle; the Failovers counter on the status endpoint is where
// re-homing is accounted, not the stream.
type pumpState struct {
	lastGen   int
	stateLog  []string // forwarded state transitions, in order
	replayIdx int      // prefix of stateLog matched so far this connection
}

func stateKey(ev serve.Event) string {
	return fmt.Sprintf("%s|%d|%s", ev.State, ev.Attempts, ev.Error)
}

// ServeJobEvents proxies GET /v1/jobs/{id}/events under fleet IDs: the
// same SSE frames a worker serves, with router-owned sequence numbers
// and the fleet ID in the payload. Resume via Last-Event-ID works
// across worker failover because the ring outlives the incarnations.
func (r *Router) ServeJobEvents(w http.ResponseWriter, req *http.Request, fleetID string) {
	fs, ok := r.eventStream(fleetID)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: no job %s", fleetID))
		return
	}
	sub := fs.ring.Subscribe(serve.ParseAfter(req))
	defer sub.Close()
	serve.StreamSSE(w, req, sub, fleetID)
}

// eventStream returns the job's stream, starting its pump on first
// use. Streams are created lazily — a fleet where nobody watches pays
// nothing — and live until the job reaches a terminal state.
func (r *Router) eventStream(fleetID string) (*fleetStream, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.routes[fleetID]; !ok {
		return nil, false
	}
	if fs, ok := r.streams[fleetID]; ok {
		return fs, true
	}
	fs := &fleetStream{ring: serve.NewEventRing(eventRingSize, r.metEvtDrop)}
	r.streams[fleetID] = fs
	go r.pumpEvents(fleetID, fs)
	return fs, true
}

// pumpEvents follows one fleet job across workers: subscribe to the
// current host's event stream, forward into the router ring, and on
// disconnect re-resolve the route — which failover may have pointed at
// a different worker by then — and subscribe again. Exits (closing the
// ring, so clients get `event: eof`) when the upstream stream ends
// terminally, the route disappears (cancel), or the router closes.
func (r *Router) pumpEvents(fleetID string, fs *fleetStream) {
	defer fs.ring.Close()
	st := &pumpState{}
	retry := r.opts.ProbeEvery / 4
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	if retry > 500*time.Millisecond {
		retry = 500 * time.Millisecond
	}
	first := true
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		r.mu.Lock()
		rt, ok := r.routes[fleetID]
		var workerURL, jobID string
		var done bool
		if ok {
			workerURL, jobID, done = rt.Worker, rt.JobID, rt.Done
		}
		r.mu.Unlock()
		if !ok {
			return // route dropped (canceled): complete the stream
		}
		if !first {
			r.metReconnect.Inc()
		}
		first = false
		if r.streamWorker(workerURL, jobID, fleetID, fs, st) {
			return // upstream said eof: job terminal
		}
		if done {
			// The route was marked terminal by a status poll but the
			// upstream connection died before its eof frame arrived (or
			// the worker is unreachable). The final state was forwarded
			// if we ever saw it; either way the stream is over.
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(retry):
		}
	}
}

// streamWorker holds one SSE connection to a worker and forwards its
// frames. Returns true when the stream ended with the job terminal
// (`event: eof`), false on any disconnect worth retrying.
func (r *Router) streamWorker(workerURL, jobID, fleetID string, fs *fleetStream, st *pumpState) bool {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-r.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}

	// Each (re)connect replays the worker ring from its oldest retained
	// event; the prefix match below skips what was already forwarded.
	st.replayIdx = 0

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if r.forwardFrame(event, data, fleetID, fs, st) {
				return true
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
			// id: lines carry the worker's per-incarnation seq — ignored;
			// the router ring stamps its own on Publish.
		}
	}
	return false
}

// forwardFrame filters one upstream frame into the ring. Returns true
// on the terminal eof frame.
func (r *Router) forwardFrame(event, data, fleetID string, fs *fleetStream, st *pumpState) bool {
	switch event {
	case "eof":
		return true
	case "dropped":
		// A worker-side eviction gap: there is nothing to replay, and
		// the gen numbers in the payloads already make the hole visible
		// to consumers — forwarding a synthetic frame would double-count
		// it once this ring evicts too.
		return false
	}
	var ev serve.Event
	if json.Unmarshal([]byte(data), &ev) != nil {
		return false
	}
	switch ev.Type {
	case serve.EventGen:
		if ev.Gen == nil || ev.Gen.Gen <= st.lastGen {
			return false // replay overlap (reconnect or post-failover recompute)
		}
		st.lastGen = ev.Gen.Gen
	case serve.EventState:
		key := stateKey(ev)
		if st.replayIdx < len(st.stateLog) && st.stateLog[st.replayIdx] == key {
			st.replayIdx++ // already forwarded this transition
			return false
		}
		st.stateLog = append(st.stateLog, key)
		st.replayIdx = len(st.stateLog)
	default:
		return false
	}
	ev.Job = fleetID
	ev.Seq = 0 // the ring re-stamps with the router's own sequence
	fs.ring.Publish(ev)
	return false
}
