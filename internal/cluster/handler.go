package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"carbon/internal/serve"
	"carbon/internal/span"
)

// WorkerStatus is one worker's entry in GET /v1/workers.
type WorkerStatus struct {
	URL     string       `json:"url"`
	Healthy bool         `json:"healthy"`
	Dead    bool         `json:"dead"` // missed probes reached DeadAfter
	Misses  int          `json:"misses"`
	Weight  float64      `json:"weight"`
	Health  serve.Health `json:"health"`
}

// FleetHealth is the router's own GET /v1/healthz payload.
type FleetHealth struct {
	OK         bool   `json:"ok"` // at least one healthy worker
	Policy     string `json:"policy"`
	Workers    int    `json:"workers"`
	Healthy    int    `json:"healthy"`
	Routes     int    `json:"routes"`
	Unfinished int    `json:"unfinished"`
	Failovers  int    `json:"failovers"`
}

// Handler exposes the router over HTTP — the same job surface as a
// single carbond, plus fleet introspection:
//
//	POST   /v1/jobs             admit, route and submit to a worker (201 + Status)
//	GET    /v1/jobs             route table (where every fleet job lives)
//	GET    /v1/jobs/{id}        proxy status from the hosting worker
//	GET    /v1/jobs/{id}/result proxy the final result
//	DELETE /v1/jobs/{id}        cancel on the worker, drop the route
//	POST   /v1/islands          run one island-model job across the fleet
//	GET    /v1/workers          per-worker health, as the router sees it
//	GET    /v1/healthz          fleet summary (policy, healthy count, failovers)
//	GET    /v1/jobs/{id}/events live SSE stream, stitched across failover
//	GET    /v1/fleet/metrics    federated metric rollup as JSON
//	GET    /v1/fleet/alerts     firing/pending SLO and dynamics alerts
//	GET    /metrics/prometheus  the federated view in text exposition format
//
// Job IDs on this surface are fleet IDs ("f000001"); the worker that
// hosts a job — and the worker-side ID — is the router's business, and
// survives failover without the client noticing beyond latency.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Routes())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		r.proxyStatus(w, req, req.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, req *http.Request) {
		r.proxyResult(w, req, req.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, req *http.Request) {
		r.ServeJobEvents(w, req, req.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/fleet/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.FleetMetrics())
	})
	mux.HandleFunc("GET /v1/fleet/alerts", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Alerts())
	})
	mux.HandleFunc("GET /metrics/prometheus", func(w http.ResponseWriter, req *http.Request) {
		r.ServeFleetProm(w)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleDelete)
	mux.HandleFunc("POST /v1/islands", r.handleIslands)
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.WorkerStatuses())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Health())
	})
	return mux
}

// Tenant is the admission identity header. Absent means tenant
// "default" — admission control still applies.
const TenantHeader = "X-Carbon-Tenant"

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	tenant := req.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "default"
	}
	if ok, wait := r.buckets.take(tenant); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(wait.Round(time.Second)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":  fmt.Sprintf("cluster: tenant %q over admission quota", tenant),
			"tenant": tenant,
		})
		return
	}
	var spec serve.JobSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, workerURL, code, err := r.Submit(req.Context(), spec, tenant, req.Header.Get("traceparent"))
	if err != nil {
		httpError(w, code, err)
		return
	}
	w.Header().Set("X-Carbon-Worker", workerURL)
	if st.Spec.TraceParent != "" {
		w.Header().Set("Traceparent", st.Spec.TraceParent)
	}
	writeJSON(w, http.StatusCreated, st)
}

// Submit admits, routes and forwards one job. The returned Status is
// the worker's, with the ID rewritten to the fleet ID the client must
// use from now on. Candidates are tried in policy order: a queue-full
// or unreachable worker falls through to the next; a spec rejection
// (400) stops immediately — every worker would say the same.
func (r *Router) Submit(ctx context.Context, spec serve.JobSpec, tenant, callerTP string) (serve.Status, string, int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return serve.Status{}, "", http.StatusServiceUnavailable, fmt.Errorf("cluster: router closed")
	}
	r.seq++
	fid := fmt.Sprintf("f%06d", r.seq)
	r.mu.Unlock()

	sp := r.startSpan(callerTP, "route.submit").
		Attr("fleet_id", fid).Attr("tenant", tenant)
	defer sp.End()
	// Every hop below — and every later incarnation of the job — parents
	// into the router's submit span, so one trace covers the job's whole
	// fleet life regardless of which workers hosted it.
	tp := callerTP
	if c := sp.Context(); c.Valid() {
		tp = c.TraceParent()
	}

	order, err := r.candidates()
	if err != nil {
		return serve.Status{}, "", http.StatusInternalServerError, err
	}
	if len(order) == 0 {
		sp.Attr("error", true)
		return serve.Status{}, "", http.StatusServiceUnavailable, fmt.Errorf("cluster: no healthy workers")
	}
	var lastErr error
	for _, idx := range order {
		dst := r.workers[idx]
		st, code, err := r.postJob(ctx, dst.url, "/v1/jobs", spec, tp)
		if code == http.StatusBadRequest {
			sp.Attr("error", true)
			return serve.Status{}, "", code, err
		}
		if err != nil {
			lastErr = err
			continue
		}
		rt := &route{
			FleetID: fid, Worker: dst.url, JobID: st.ID,
			Spec: st.Spec, Tenant: tenant, TraceParent: tp,
		}
		// The route is spooled before the client hears "created": once
		// Submit returns, a router crash cannot lose track of the job.
		if werr := writeJSONAtomic(r.routePath(fid), rt); werr != nil {
			r.deleteWorkerJob(dst.url, st.ID)
			sp.Attr("error", true)
			return serve.Status{}, "", http.StatusInternalServerError, werr
		}
		r.mu.Lock()
		r.routes[fid] = rt
		r.mu.Unlock()
		sp.Attr("worker", dst.url).Attr("job", st.ID)
		st.ID = fid
		return st, dst.url, http.StatusCreated, nil
	}
	sp.Attr("error", true)
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no worker accepted the job")
	}
	return serve.Status{}, "", http.StatusServiceUnavailable,
		fmt.Errorf("cluster: all workers refused: %w", lastErr)
}

func (r *Router) lookup(id string) (*route, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[id]
	return rt, ok
}

func (r *Router) proxyStatus(w http.ResponseWriter, req *http.Request, id string) {
	rt, ok := r.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: no job %s", id))
		return
	}
	var st serve.Status
	if err := r.getJSON(req.Context(), rt.Worker+"/v1/jobs/"+rt.JobID, &st); err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("cluster: job %s on %s: %w", id, rt.Worker, err))
		return
	}
	st.ID = id
	if st.Spec.TraceParent != "" {
		w.Header().Set("Traceparent", st.Spec.TraceParent)
	}
	w.Header().Set("X-Carbon-Worker", rt.Worker)
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) proxyResult(w http.ResponseWriter, req *http.Request, id string) {
	rt, ok := r.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: no job %s", id))
		return
	}
	b, err := r.getBytes(req.Context(), rt.Worker+"/v1/jobs/"+rt.JobID+"/result")
	if err != nil {
		// The worker answered but refused (result not ready → 409 inside
		// the error string) or is unreachable. Either way the honest
		// translation for "not terminal yet" is 409; a dead worker with
		// an unfinished job is about to fail over, which is the same
		// "try again" story.
		httpError(w, http.StatusConflict, fmt.Errorf("cluster: job %s: %w", id, err))
		return
	}
	var rec serve.ResultRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	rec.ID = id
	w.Header().Set("X-Carbon-Worker", rt.Worker)
	writeJSON(w, http.StatusOK, rec)
}

func (r *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	rt, ok := r.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: no job %s", id))
		return
	}
	r.deleteWorkerJob(rt.Worker, rt.JobID)
	r.mu.Lock()
	delete(r.routes, id)
	r.mu.Unlock()
	_ = os.Remove(r.routePath(id))
	_ = os.Remove(r.mirrorPath(id))
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "canceled"})
}

func (r *Router) deleteWorkerJob(url, jobID string) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	if resp, err := r.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// Routes returns the route table sorted by fleet ID.
func (r *Router) Routes() []route {
	r.mu.Lock()
	out := make([]route, 0, len(r.routes))
	for _, rt := range r.routes {
		out = append(out, *rt)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].FleetID < out[b].FleetID })
	return out
}

// WorkerStatuses reports the fleet as the router sees it.
func (r *Router) WorkerStatuses() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerStatus{
			URL: w.url, Healthy: w.healthy, Dead: w.misses >= r.opts.DeadAfter,
			Misses: w.misses, Weight: w.weight, Health: w.health,
		}
	}
	return out
}

// Health summarizes the fleet.
func (r *Router) Health() FleetHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := FleetHealth{
		Policy:    r.opts.Policy,
		Workers:   len(r.workers),
		Failovers: r.failovers,
		Routes:    len(r.routes),
	}
	if h.Policy == "" {
		h.Policy = PolicyRoundRobin
	}
	for _, w := range r.workers {
		if w.healthy {
			h.Healthy++
		}
	}
	for _, rt := range r.routes {
		if !rt.Done {
			h.Unfinished++
		}
	}
	h.OK = h.Healthy > 0
	return h
}

// Probe runs one upkeep round on demand — tests and the fleet smoke use
// it to advance the router deterministically instead of sleeping.
func (r *Router) Probe() { r.probeTick() }

// Tracer exposes the router's span tracer (nil with Spans off) so
// colocated subsystems — the islands coordinator — share the trace file.
func (r *Router) Tracer() *span.Tracer { return r.tracer }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
