package cluster

import (
	"bytes"
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"carbon/internal/slo"
	"carbon/internal/telemetry"
)

// federation is the router's observability state: the latest merged
// fleet-wide metric view, the SLO evaluator that watches it, and the
// search-dynamics detectors fed from the router's own status polls.
// Scrape/evaluate rounds run on the probe goroutine; the HTTP handlers
// read the cached result under mu, so a slow worker can delay the next
// refresh but never an operator's query.
type federation struct {
	eval *slo.Evaluator

	// dynMu guards dyn: Observe/Forget run from syncRoutes and Alerts
	// from federate — usually the same probe goroutine, but Probe() is
	// exported and may race the ticker.
	dynMu sync.Mutex
	dyn   *slo.Dynamics

	mu        sync.Mutex
	fams      []telemetry.Family
	alerts    []slo.Alert
	scrapedAt time.Time
	scraped   int               // workers that answered this round
	scrapeErr map[string]string // worker URL → last scrape failure
	mergeErr  string            // non-empty when the cached view is stale
}

func newFederation(rules []slo.Rule) *federation {
	return &federation{
		eval:      slo.NewEvaluator(rules),
		dyn:       slo.NewDynamics(0),
		scrapeErr: map[string]string{},
	}
}

// FleetMetricsSnapshot is the JSON rollup served on /v1/fleet/metrics:
// the merged families plus the metadata an operator needs to judge how
// fresh and complete the view is.
type FleetMetricsSnapshot struct {
	ScrapedAt    time.Time          `json:"scraped_at"`
	Scraped      int                `json:"workers_scraped"`
	ScrapeErrors map[string]string  `json:"scrape_errors,omitempty"`
	MergeError   string             `json:"merge_error,omitempty"`
	Alerts       []slo.Alert        `json:"alerts"`
	Families     []telemetry.Family `json:"families"`
}

// federate is one scrape round: pull every healthy worker's
// /metrics/prometheus, fold the samples into one fleet-wide view
// (counters and histograms summed, gauges kept per-worker under a
// `worker` label — telemetry.Merge's contract), run the SLO rules and
// dynamics detectors over it, and cache the result for the metrics and
// alerts endpoints. Dead workers are skipped, so fleet counter totals
// are exactly the sum of the survivors — the conservation property the
// observability smoke asserts after a kill.
func (r *Router) federate() {
	r.mu.Lock()
	var targets []string
	unfinished := 0
	for _, w := range r.workers {
		if w.healthy {
			targets = append(targets, w.url)
		}
	}
	for _, rt := range r.routes {
		if !rt.Done {
			unfinished++
		}
	}
	failovers := r.failovers
	r.mu.Unlock()

	// Self-view gauges refresh before the self-scrape below renders them.
	r.metrics.Gauge("cluster.workers_healthy").Set(float64(len(targets)))
	r.metrics.Gauge("cluster.routes_unfinished").Set(float64(unfinished))
	r.metrics.Gauge("cluster.failovers_total").Set(float64(failovers))

	type scrapeRes struct {
		url  string
		fams []telemetry.Family
		err  error
	}
	results := make([]scrapeRes, len(targets))
	var wg sync.WaitGroup
	for i, url := range targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			results[i] = scrapeRes{url: url}
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
			defer cancel()
			b, err := r.getBytes(ctx, url+"/metrics/prometheus")
			if err != nil {
				results[i].err = err
				return
			}
			results[i].fams, results[i].err = telemetry.ParseFamilies(bytes.NewReader(b))
		}(i, url)
	}
	wg.Wait()

	// The router contributes its own registry as one more scrape, under
	// worker="router" — fleet dashboards see routing health next to
	// worker health in one namespace.
	scrapes := []telemetry.Scrape{}
	var self bytes.Buffer
	if err := telemetry.WritePrometheus(&self, telemetry.PromTarget{Name: "carbonfleet", Registry: r.metrics}); err == nil {
		if fams, err := telemetry.ParseFamilies(&self); err == nil {
			scrapes = append(scrapes, telemetry.Scrape{Worker: "router", Families: fams})
		}
	}
	errs := map[string]string{}
	scraped := 0
	for _, res := range results {
		if res.err != nil {
			errs[res.url] = res.err.Error()
			r.metScrapeErr.Inc()
			continue
		}
		scraped++
		scrapes = append(scrapes, telemetry.Scrape{Worker: workerLabel(res.url), Families: res.fams})
	}

	now := time.Now()
	merged, err := telemetry.Merge(scrapes...)
	var mergeErr string
	if err != nil {
		// A worker exporting incompatible histogram bounds (a version
		// skew, usually) must not blank the fleet view: keep the last
		// good merge and flag the staleness instead.
		mergeErr = err.Error()
		r.fed.mu.Lock()
		merged = r.fed.fams
		r.fed.mu.Unlock()
	}

	alerts := r.fed.eval.Evaluate(merged, now)
	r.fed.dynMu.Lock()
	alerts = append(alerts, r.fed.dyn.Alerts(now)...)
	r.fed.dynMu.Unlock()
	sort.Slice(alerts, func(a, b int) bool {
		if alerts[a].Rule != alerts[b].Rule {
			return alerts[a].Rule < alerts[b].Rule
		}
		return alerts[a].Metric < alerts[b].Metric
	})

	r.fed.mu.Lock()
	r.fed.fams = merged
	r.fed.alerts = alerts
	r.fed.scrapedAt = now
	r.fed.scraped = scraped
	r.fed.scrapeErr = errs
	r.fed.mergeErr = mergeErr
	r.fed.mu.Unlock()
}

// workerLabel shortens a worker base URL into its `worker` label value:
// the host:port, scheme stripped — stable across restarts and short
// enough for a terminal column.
func workerLabel(url string) string {
	url = strings.TrimPrefix(url, "http://")
	url = strings.TrimPrefix(url, "https://")
	return strings.TrimRight(url, "/")
}

// FleetMetrics returns the latest federated rollup (copies, safe to
// serialize while the next scrape round runs).
func (r *Router) FleetMetrics() FleetMetricsSnapshot {
	r.fed.mu.Lock()
	defer r.fed.mu.Unlock()
	snap := FleetMetricsSnapshot{
		ScrapedAt:  r.fed.scrapedAt,
		Scraped:    r.fed.scraped,
		MergeError: r.fed.mergeErr,
		Alerts:     append([]slo.Alert(nil), r.fed.alerts...),
		Families:   append([]telemetry.Family(nil), r.fed.fams...),
	}
	if len(r.fed.scrapeErr) > 0 {
		snap.ScrapeErrors = make(map[string]string, len(r.fed.scrapeErr))
		for k, v := range r.fed.scrapeErr {
			snap.ScrapeErrors[k] = v
		}
	}
	return snap
}

// Alerts returns the current SLO and dynamics alerts, sorted by rule
// then metric.
func (r *Router) Alerts() []slo.Alert {
	r.fed.mu.Lock()
	defer r.fed.mu.Unlock()
	return append([]slo.Alert(nil), r.fed.alerts...)
}

// ServeFleetProm renders the federated view — merged worker families
// plus the alert gauges — in Prometheus text exposition format, the
// single endpoint a fleet-level Prometheus scrapes instead of N worker
// endpoints.
func (r *Router) ServeFleetProm(w http.ResponseWriter) {
	r.fed.mu.Lock()
	fams := append([]telemetry.Family(nil), r.fed.fams...)
	alerts := append([]slo.Alert(nil), r.fed.alerts...)
	r.fed.mu.Unlock()
	fams = append(fams, slo.AlertFamilies(alerts)...)
	sort.Slice(fams, func(a, b int) bool { return fams[a].Name < fams[b].Name })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WriteFamilies(w, fams)
}
