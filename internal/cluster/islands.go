package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"carbon/internal/cluster/netmigrate"
)

// handleIslands runs one island-model job across the fleet: healthy
// workers become netmigrate peers, each hosting a round-robin shard of
// the islands, and the merged record comes back once every shard
// finishes. Synchronous by design — the caller picked a distributed
// run, and the barrier protocol means no shard outlives the slowest
// anyway. Bit-identity with the in-process RunIslands per (seed,
// topology) is the contract the fleet smoke checks on every build.
func (r *Router) handleIslands(w http.ResponseWriter, req *http.Request) {
	var job netmigrate.IslandJob
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	r.mu.Lock()
	r.seq++
	runID := fmt.Sprintf("f%06d", r.seq)
	var peers []string
	for _, wk := range r.workers {
		if wk.healthy {
			peers = append(peers, wk.url)
		}
	}
	r.mu.Unlock()
	if len(peers) == 0 {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no healthy workers"))
		return
	}

	sp := r.startSpan(req.Header.Get("traceparent"), "route.islands").
		Attr("run", runID).Attr("peers", len(peers))
	defer sp.End()
	tp := req.Header.Get("traceparent")
	if c := sp.Context(); c.Valid() {
		tp = c.TraceParent()
	}

	rec, err := netmigrate.Coordinate(req.Context(), r.client, runID, peers, job, tp)
	if err != nil {
		sp.Attr("error", true)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
