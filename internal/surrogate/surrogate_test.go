package surrogate

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func resolved(dim int) Config {
	return Config{Enabled: true}.Resolved(16, dim)
}

// The model must recover an exactly-linear target once it has seen
// more observations than features.
func TestRecoversLinearFunction(t *testing.T) {
	dim := 3
	m := New(dim, resolved(dim))
	rng := rand.New(rand.NewSource(1))
	f := func(x []float64) (lb, rev float64) {
		lb = 2 + 3*x[0] - x[1] + 0.5*x[2]
		rev = -1 + x[0] + 4*x[1] - 2*x[2]
		return
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		lb, rev := f(x)
		m.Observe(x, lb, rev)
	}
	if !m.Ready() {
		t.Fatalf("model not ready after 50 fits (minFit=%d)", m.minFit)
	}
	x := []float64{0.3, 0.7, 0.1}
	lb, rev := f(x)
	p := m.Predict(x)
	// The ridge term biases weights by O(λ)=1e-3; exact recovery is up
	// to that bias.
	if math.Abs(p.LB-lb) > 5e-3 {
		t.Errorf("LB prediction %.9f, want %.9f", p.LB, lb)
	}
	if math.Abs(p.Rev-rev) > 5e-3 {
		t.Errorf("Rev prediction %.9f, want %.9f", p.Rev, rev)
	}
}

// Residuals returned by Observe are pre-update: observing the same
// point twice must show a smaller (or equal) error the second time.
func TestObserveReturnsPreUpdateResidual(t *testing.T) {
	dim := 2
	m := New(dim, resolved(dim))
	x := []float64{1.5, -0.5}
	rev1, lb1 := m.Observe(x, 10, 20)
	if rev1 != 20 || lb1 != 10 {
		t.Fatalf("first residuals (%g,%g), want (20,10) from zero model", rev1, lb1)
	}
	rev2, lb2 := m.Observe(x, 10, 20)
	if rev2 >= rev1 || lb2 >= lb1 {
		t.Errorf("second residuals (%g,%g) not smaller than first (%g,%g)", rev2, lb2, rev1, lb1)
	}
}

// Uncertainty (leverage) must shrink at observed points and stay
// comparatively large far from all observations.
func TestUncertaintyShrinksAtObservedPoints(t *testing.T) {
	dim := 2
	m := New(dim, resolved(dim))
	seen := []float64{0.2, 0.4}
	before := m.Predict(seen).Unc
	for i := 0; i < 10; i++ {
		m.Observe(seen, 1, 2)
	}
	after := m.Predict(seen).Unc
	if after >= before {
		t.Errorf("leverage at observed point grew: %g -> %g", before, after)
	}
	far := m.Predict([]float64{50, -50}).Unc
	if far <= after {
		t.Errorf("leverage far from data (%g) not above leverage at data (%g)", far, after)
	}
}

// Two models fed the identical observation stream must agree
// bit-for-bit: the model is deterministic and RNG-free.
func TestDeterministicAcrossInstances(t *testing.T) {
	dim := 4
	a, b := New(dim, resolved(dim)), New(dim, resolved(dim))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		lb, rev := rng.NormFloat64(), rng.NormFloat64()
		ar, al := a.Observe(x, lb, rev)
		br, bl := b.Observe(x, lb, rev)
		if ar != br || al != bl {
			t.Fatalf("fit %d: residuals diverge (%x,%x) vs (%x,%x)",
				i, math.Float64bits(ar), math.Float64bits(al),
				math.Float64bits(br), math.Float64bits(bl))
		}
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	pa, pb := a.Predict(x), b.Predict(x)
	if pa != pb {
		t.Fatalf("predictions diverge: %+v vs %+v", pa, pb)
	}
}

// State -> JSON -> FromState must reproduce the model bit-for-bit,
// including future behavior (predictions AND subsequent updates).
func TestStateRoundTripBitExact(t *testing.T) {
	dim := 3
	cfg := resolved(dim)
	m := New(dim, cfg)
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 0, 30)
	for i := 0; i < 30; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		m.Observe(x, rng.NormFloat64(), rng.NormFloat64())
	}

	blob, err := json.Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	r, err := FromState(cfg, &st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fits() != m.Fits() || r.Ready() != m.Ready() {
		t.Fatalf("restored fits=%d ready=%t, want %d/%t", r.Fits(), r.Ready(), m.Fits(), m.Ready())
	}
	for _, x := range xs {
		pm, pr := m.Predict(x), r.Predict(x)
		if pm != pr {
			t.Fatalf("restored prediction diverges at %v: %+v vs %+v", x, pm, pr)
		}
	}
	// Updates after restore must track too.
	mr, ml := m.Observe(xs[0], 7, 8)
	rr, rl := r.Observe(xs[0], 7, 8)
	if mr != rr || ml != rl {
		t.Fatalf("post-restore residuals diverge: (%g,%g) vs (%g,%g)", mr, ml, rr, rl)
	}
}

func TestStateValidate(t *testing.T) {
	good := New(2, resolved(2)).State()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	cases := map[string]func(*State){
		"nil-state":      nil,
		"bad-dim":        func(s *State) { s.Dim = 0 },
		"negative-fits":  func(s *State) { s.Fits = -1 },
		"short-p":        func(s *State) { s.P = s.P[:1] },
		"short-weights":  func(s *State) { s.WRev = nil },
		"nan-value":      func(s *State) { s.P[0] = math.NaN() },
		"inf-weight":     func(s *State) { s.WLB[0] = math.Inf(1) },
		"mismatched-dim": func(s *State) { s.Dim = 5 },
	}
	for name, mutate := range cases {
		var st *State
		if mutate != nil {
			st = New(2, resolved(2)).State()
			mutate(st)
		}
		if err := st.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad state", name)
		}
		if _, err := FromState(resolved(2), st); err == nil {
			t.Errorf("%s: FromState accepted bad state", name)
		}
	}
}

func TestConfigValidateAndResolved(t *testing.T) {
	bad := []Config{
		{TopK: -1},
		{Uncertain: -2},
		{Warmup: -1},
		{MinFit: -3},
		{Ridge: -0.5},
		{Ridge: math.NaN()},
		{Ridge: math.Inf(1)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, c)
		}
	}
	r := Config{}.Resolved(16, 5)
	if r.TopK != 4 || r.Uncertain != 2 || r.Warmup != 5 || r.MinFit != 24 || r.Ridge != 1e-3 {
		t.Errorf("unexpected defaults: %+v", r)
	}
	// Explicit knobs survive resolution.
	r = Config{TopK: 9, Uncertain: 1, Warmup: 2, MinFit: 7, Ridge: 0.5}.Resolved(16, 5)
	if r.TopK != 9 || r.Uncertain != 1 || r.Warmup != 2 || r.MinFit != 7 || r.Ridge != 0.5 {
		t.Errorf("explicit knobs clobbered: %+v", r)
	}
	// Tiny populations still resolve to at least one exact slot.
	r = Config{}.Resolved(1, 2)
	if r.TopK < 1 || r.Uncertain < 1 {
		t.Errorf("pop=1 resolved to zero exact slots: %+v", r)
	}
}
