// Package surrogate implements the online lower-level value model
// behind surrogate-assisted LP skipping (DESIGN.md §5l, ROADMAP item 1).
//
// Every exact evaluation the engine performs yields two ground-truth
// observations about a pricing decision x: the LP bound LB(x) of the
// induced instance (from Prepare) and the leader revenue the prey earns
// under the current best heuristic (from the prey wave). The Model fits
// both with one shared recursive-least-squares system over the affine
// features [1, x₁..x_L]: rank-based upper-level value-function
// approximation in the sense of Ong (arXiv 2604.02888) — the surrogate
// is used to *rank* prey so the engine pays for exact LP solves only
// where the ranking decides something (the predicted top-k) or where the
// model has no evidence (high-leverage, never-seen regions of the price
// box), the pseudo-feasible shortcut of the optimistic-variants work.
//
// Determinism: the model consumes no RNG and its state is a pure
// function of the observation sequence, which the engine feeds in prey-
// index order on the coordinating goroutine. Prediction and update are
// plain float64 arithmetic in a fixed order, so a run is reproducible
// bit-for-bit per (Seed, Workers) and a Snapshot/Restore round trip
// (State/FromState) resumes bit-identically.
//
// The Model is NOT safe for concurrent use — it is coordinator-side
// scratch, like the engine's RNG.
package surrogate

import (
	"errors"
	"fmt"
	"math"
)

// Config carries the skip-policy knobs. The zero value of every field
// means "use the default resolved by Resolved"; Enabled false disables
// the whole layer (the engine then never constructs a Model, keeping
// the exact path byte-for-byte identical to the pre-surrogate engine).
type Config struct {
	// Enabled turns surrogate-assisted LP skipping on.
	Enabled bool

	// TopK is how many predicted-best distinct prey genotypes are solved
	// exactly each generation (0 = max(1, pop/4)). The predicted winners
	// must be exact: archives and the reported Result only ever contain
	// exactly-evaluated prey.
	TopK int

	// Uncertain is how many additional highest-uncertainty genotypes are
	// solved exactly (0 = max(1, pop/8)). Uncertainty is the RLS
	// leverage φᵀPφ — large for prices far from everything the model has
	// seen — so exploration keeps feeding the model before it is trusted
	// on new regions.
	Uncertain int

	// Warmup is how many generations run fully exact before skipping
	// starts (0 = 5). Skipping also waits for MinFit observations, so a
	// model restored empty from an old checkpoint re-warms itself.
	Warmup int

	// MinFit is the number of observations the model needs before its
	// ranking is trusted (0 = 4·(dim+1)).
	MinFit int

	// Ridge is the RLS regularizer λ (0 = 1e-3).
	Ridge float64
}

// Resolved returns the config with every zero knob replaced by its
// default for a prey population of size pop over dim price genes.
func (c Config) Resolved(pop, dim int) Config {
	if c.TopK == 0 {
		c.TopK = max(1, pop/4)
	}
	if c.Uncertain == 0 {
		c.Uncertain = max(1, pop/8)
	}
	if c.Warmup == 0 {
		c.Warmup = 5
	}
	if c.MinFit == 0 {
		c.MinFit = 4 * (dim + 1)
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-3
	}
	return c
}

// Validate rejects knob values no resolution could make sense of.
func (c Config) Validate() error {
	switch {
	case c.TopK < 0:
		return errors.New("surrogate: negative TopK")
	case c.Uncertain < 0:
		return errors.New("surrogate: negative Uncertain")
	case c.Warmup < 0:
		return errors.New("surrogate: negative Warmup")
	case c.MinFit < 0:
		return errors.New("surrogate: negative MinFit")
	case c.Ridge < 0 || math.IsNaN(c.Ridge) || math.IsInf(c.Ridge, 0):
		return errors.New("surrogate: bad Ridge")
	}
	return nil
}

// Prediction is the model's view of one pricing decision.
type Prediction struct {
	Rev float64 // predicted leader revenue under the current best heuristic
	LB  float64 // predicted LP bound LB(x) of the induced instance
	Unc float64 // leverage φᵀPφ: how far x sits from the training data
}

// Model is the online value model: one shared RLS precision matrix (the
// feature stream is the same for both targets, so their P matrices are
// identical by construction) with separate weight vectors for revenue
// and LB.
type Model struct {
	dim  int // price genes; features are [1, x₁..x_dim]
	n    int // dim + 1
	fits int

	minFit int

	p    []float64 // n×n row-major precision proxy P = (λI + ΣφφᵀT)⁻¹
	wRev []float64
	wLB  []float64

	phi  []float64 // scratch: feature vector
	pphi []float64 // scratch: P·φ
}

// New builds an empty model for dim price genes. cfg must be resolved
// (Resolved) — New only reads MinFit and Ridge.
func New(dim int, cfg Config) *Model {
	n := dim + 1
	m := &Model{
		dim:    dim,
		n:      n,
		minFit: cfg.MinFit,
		p:      make([]float64, n*n),
		wRev:   make([]float64, n),
		wLB:    make([]float64, n),
		phi:    make([]float64, n),
		pphi:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.p[i*n+i] = 1 / cfg.Ridge
	}
	return m
}

// Fits returns the number of observations consumed so far.
func (m *Model) Fits() int { return m.fits }

// Ready reports whether the model has seen enough ground truth for its
// ranking to be trusted (fits ≥ MinFit).
func (m *Model) Ready() bool { return m.fits >= m.minFit }

// features fills m.phi for x.
func (m *Model) features(x []float64) {
	m.phi[0] = 1
	copy(m.phi[1:], x)
}

// Predict scores one pricing decision. It shares the model's scratch
// buffers, so calls must not be concurrent.
func (m *Model) Predict(x []float64) Prediction {
	m.features(x)
	rev, lb := 0.0, 0.0
	for i, f := range m.phi {
		rev += m.wRev[i] * f
		lb += m.wLB[i] * f
	}
	return Prediction{Rev: rev, LB: lb, Unc: m.leverage()}
}

// leverage computes φᵀPφ for the φ already in m.phi, filling m.pphi.
func (m *Model) leverage() float64 {
	n := m.n
	for i := 0; i < n; i++ {
		s := 0.0
		row := m.p[i*n : (i+1)*n]
		for j, f := range m.phi {
			s += row[j] * f
		}
		m.pphi[i] = s
	}
	u := 0.0
	for i, f := range m.phi {
		u += f * m.pphi[i]
	}
	return u
}

// Observe feeds one exact evaluation back into the model and returns
// the pre-update absolute residuals |ŷ−y| for both targets — the honest
// out-of-sample error of the prediction the skip policy just acted on.
// Residuals from a model that is not yet Ready are meaningless; callers
// gate their telemetry on Ready *before* the generation's observations.
func (m *Model) Observe(x []float64, lb, rev float64) (revErr, lbErr float64) {
	m.features(x)
	s := 1 + m.leverage() // fills m.pphi = P·φ
	predRev, predLB := 0.0, 0.0
	for i, f := range m.phi {
		predRev += m.wRev[i] * f
		predLB += m.wLB[i] * f
	}
	revErr = math.Abs(predRev - rev)
	lbErr = math.Abs(predLB - lb)
	// Sherman–Morrison: k = Pφ/s; w += k·e; P -= k⊗(Pφ). The update
	// order is fixed, so the resulting floats are reproducible.
	n := m.n
	for i := 0; i < n; i++ {
		k := m.pphi[i] / s
		m.wRev[i] += k * (rev - predRev)
		m.wLB[i] += k * (lb - predLB)
	}
	for i := 0; i < n; i++ {
		k := m.pphi[i] / s
		row := m.p[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] -= k * m.pphi[j]
		}
	}
	m.fits++
	return revErr, lbErr
}

// State is the serializable model snapshot, embedded in the engine
// checkpoint (checkpoint.State.Surrogate). All floats are finite —
// Validate enforces it — so the state survives JSON exactly (Go's
// shortest-float encoding round-trips every finite float64 bit-for-bit).
type State struct {
	Dim  int       `json:"dim"`
	Fits int       `json:"fits"`
	P    []float64 `json:"p"`
	WRev []float64 `json:"w_rev"`
	WLB  []float64 `json:"w_lb"`
}

// Validate rejects structurally inconsistent or non-finite states.
func (st *State) Validate() error {
	if st == nil {
		return errors.New("surrogate: nil state")
	}
	n := st.Dim + 1
	switch {
	case st.Dim <= 0:
		return fmt.Errorf("surrogate: bad state dimension %d", st.Dim)
	case st.Fits < 0:
		return errors.New("surrogate: negative fit count")
	case len(st.P) != n*n:
		return fmt.Errorf("surrogate: P has %d entries, want %d", len(st.P), n*n)
	case len(st.WRev) != n || len(st.WLB) != n:
		return fmt.Errorf("surrogate: weights have %d/%d entries, want %d",
			len(st.WRev), len(st.WLB), n)
	}
	for _, s := range [][]float64{st.P, st.WRev, st.WLB} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return errors.New("surrogate: non-finite state value")
			}
		}
	}
	return nil
}

// State snapshots the model. The copy owns its storage.
func (m *Model) State() *State {
	return &State{
		Dim:  m.dim,
		Fits: m.fits,
		P:    append([]float64(nil), m.p...),
		WRev: append([]float64(nil), m.wRev...),
		WLB:  append([]float64(nil), m.wLB...),
	}
}

// FromState rebuilds a model from a snapshot. The restored model
// predicts and updates bit-identically to the one that was snapshotted.
// cfg must be resolved for the same dimension.
func FromState(cfg Config, st *State) (*Model, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	m := New(st.Dim, cfg)
	m.fits = st.Fits
	copy(m.p, st.P)
	copy(m.wRev, st.WRev)
	copy(m.wLB, st.WLB)
	return m, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
