package covering

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestRemoveDominatedRowsHandBuilt(t *testing.T) {
	// Row 1 = 2× row 0 with b doubled: proportional (mutual domination,
	// keep row 0). Row 2 is strictly implied by row 0 (same q, smaller
	// relative requirement). Row 3 is independent.
	in, err := New(
		[]float64{3, 4, 5},
		[][]float64{
			{2, 2, 2},
			{4, 4, 4},
			{2, 2, 2},
			{1, 0, 3},
		},
		[]float64{2, 4, 1, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	red, keep := in.RemoveDominatedRows()
	want := []int{0, 3}
	if len(keep) != len(want) || keep[0] != 0 || keep[1] != 3 {
		t.Fatalf("keep = %v, want %v", keep, want)
	}
	if red.N() != 2 || red.M() != 3 {
		t.Fatalf("reduced dims %dx%d", red.M(), red.N())
	}
}

func TestRemoveDominatedRowsVacuousRow(t *testing.T) {
	in, err := New(
		[]float64{1, 1},
		[][]float64{
			{1, 1},
			{0, 0}, // b = 0: vacuous
		},
		[]float64{1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, keep := in.RemoveDominatedRows()
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("keep = %v", keep)
	}
}

func TestRemoveDominatedRowsNothingToDo(t *testing.T) {
	in := tiny(t)
	red, keep := in.RemoveDominatedRows()
	if red != in {
		t.Fatal("untouched instance should be returned as-is")
	}
	if len(keep) != in.N() {
		t.Fatalf("keep = %v", keep)
	}
}

func TestRemoveDominatedRowsPreservesEverything(t *testing.T) {
	// The reduction leaves the feasible region exactly unchanged, so the
	// ILP optimum AND the LP bound must match to numerical noise.
	r := rng.New(97)
	checked := 0
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(t, r, 14, 6)
		// Inject a dominated row: double a random row, halve its
		// relative requirement.
		k := r.Intn(in.N())
		extraQ := make([]float64, in.M())
		for j := range extraQ {
			extraQ[j] = 2 * in.Q[k][j]
		}
		q := append(append([][]float64{}, in.Q...), extraQ)
		b := append(append([]float64{}, in.B...), in.B[k]) // 2q vs b: dominated
		aug, err := New(in.C, q, b)
		if err != nil {
			t.Fatal(err)
		}
		red, keep := aug.RemoveDominatedRows()
		if len(keep) == aug.N() {
			t.Fatal("injected dominated row not removed")
		}
		exA := aug.SolveExact(0)
		exR := red.SolveExact(0)
		if !exA.Optimal || !exR.Optimal {
			t.Fatal("exact failed")
		}
		if math.Abs(exA.Cost-exR.Cost) > 1e-9 {
			t.Fatalf("trial %d: optimum changed %v → %v", trial, exA.Cost, exR.Cost)
		}
		rxA, err := aug.Relax()
		if err != nil {
			t.Fatal(err)
		}
		rxR, err := red.Relax()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rxA.LB-rxR.LB) > 1e-6*(1+rxA.LB) {
			t.Fatalf("trial %d: LP bound changed %v → %v", trial, rxA.LB, rxR.LB)
		}
		// Feasibility equivalence on random selections.
		for probe := 0; probe < 10; probe++ {
			x := make([]bool, aug.M())
			for j := range x {
				x[j] = r.Bool(0.5)
			}
			if aug.SelectionFeasible(x) != red.SelectionFeasible(x) {
				t.Fatal("feasible regions differ")
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

func TestRemoveDominatedRowsIdempotent(t *testing.T) {
	r := rng.New(101)
	in := randomInstance(t, r, 10, 8)
	red, _ := in.RemoveDominatedRows()
	red2, keep2 := red.RemoveDominatedRows()
	if red2 != red {
		t.Fatalf("second pass removed more rows (kept %d of %d)", len(keep2), red.N())
	}
}
