package covering

import (
	"testing"

	"carbon/internal/rng"
)

func TestGRASPFeasibleAndBounded(t *testing.T) {
	r := rng.New(151)
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, r, 30, 6)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		res := in.GRASP(r, 10, 0.3)
		if !res.Feasible || !in.SelectionFeasible(res.X) {
			t.Fatal("GRASP infeasible on feasible instance")
		}
		if res.Cost < rx.LB-1e-6 {
			t.Fatalf("GRASP cost %v below LP bound %v", res.Cost, rx.LB)
		}
		if res.Cost != in.SelectionCost(res.X) {
			t.Fatal("cost accounting broke")
		}
	}
}

func TestGRASPAlphaZeroMatchesChvatal(t *testing.T) {
	r := rng.New(153)
	in := randomInstance(t, r, 25, 5)
	g := in.GRASP(r, 1, 0)
	c := in.ChvatalGreedy()
	if g.Cost != c.Cost {
		t.Fatalf("alpha=0 GRASP cost %v != Chvátal %v", g.Cost, c.Cost)
	}
}

func TestGRASPMultistartHelps(t *testing.T) {
	// More starts can only improve (the best construction is kept).
	r1, r2 := rng.New(155), rng.New(155)
	in := randomInstance(t, rng.New(154), 40, 8)
	one := in.GRASP(r1, 1, 0.4)
	many := in.GRASP(r2, 20, 0.4)
	if many.Cost > one.Cost+1e-9 {
		t.Fatalf("20 starts (%v) worse than 1 start (%v)", many.Cost, one.Cost)
	}
}

func TestGRASPBeatsOrMatchesPureRandom(t *testing.T) {
	// A small-alpha GRASP should beat a fully random constructive on
	// average.
	r := rng.New(157)
	winsOrTies := 0
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(t, r, 30, 6)
		guided := in.GRASP(r, 5, 0.1)
		random := in.GRASP(r, 5, 1.0)
		if guided.Cost <= random.Cost+1e-9 {
			winsOrTies++
		}
	}
	if winsOrTies < 11 {
		t.Fatalf("guided GRASP won/tied only %d/15", winsOrTies)
	}
}

func TestGRASPInfeasibleInstance(t *testing.T) {
	in, err := New([]float64{1}, [][]float64{{0}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	res := in.GRASP(rng.New(1), 3, 0.5)
	if res.Feasible {
		t.Fatal("GRASP claimed feasibility on an uncoverable instance")
	}
}

func TestGRASPParameterClamping(t *testing.T) {
	r := rng.New(159)
	in := randomInstance(t, r, 15, 4)
	// Out-of-range parameters must be clamped, not panic.
	if res := in.GRASP(r, 0, -1); !res.Feasible {
		t.Fatal("clamped GRASP failed")
	}
	if res := in.GRASP(r, 2, 7); !res.Feasible {
		t.Fatal("clamped GRASP failed")
	}
}

func BenchmarkGRASP100x10(b *testing.B) {
	r := rng.New(161)
	in := randomInstance(b, r, 100, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.GRASP(r, 5, 0.3)
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	r := rng.New(181)
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(t, r, 25, 6)
		start := in.ChvatalGreedy()
		polished := in.LocalSearch(start.X)
		if !polished.Feasible || !in.SelectionFeasible(polished.X) {
			t.Fatal("local search broke feasibility")
		}
		if polished.Cost > start.Cost+1e-9 {
			t.Fatalf("local search worsened %v → %v", start.Cost, polished.Cost)
		}
		if polished.Cost != in.SelectionCost(polished.X) {
			t.Fatal("cost accounting broke")
		}
	}
}

func TestLocalSearchInfeasibleInput(t *testing.T) {
	in := tiny(t)
	res := in.LocalSearch([]bool{false, false, false})
	if res.Feasible {
		t.Fatal("infeasible input reported feasible")
	}
}

func TestLocalSearchFindsSwap(t *testing.T) {
	// Item A (cost 5) and item B (cost 2) both cover everything:
	// starting from {A}, the swap move must land on {B}.
	in, err := New(
		[]float64{5, 2},
		[][]float64{{1, 1}, {1, 1}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := in.LocalSearch([]bool{true, false})
	if !res.X[1] || res.X[0] || res.Cost != 2 {
		t.Fatalf("swap not found: %v cost %v", res.X, res.Cost)
	}
}

func TestLocalSearchIdempotent(t *testing.T) {
	r := rng.New(191)
	in := randomInstance(t, r, 20, 5)
	a := in.LocalSearch(in.ChvatalGreedy().X)
	b := in.LocalSearch(a.X)
	if b.Cost != a.Cost {
		t.Fatalf("not idempotent: %v → %v", a.Cost, b.Cost)
	}
}

func TestGRASPWithLSAtLeastAsGoodAsGRASP(t *testing.T) {
	r1, r2 := rng.New(193), rng.New(193)
	better := 0
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(t, rng.New(uint64(300+trial)), 30, 6)
		plain := in.GRASP(r1, 5, 0.3)
		polished := in.GRASPWithLS(r2, 5, 0.3)
		if !polished.Feasible {
			t.Fatal("GRASP+LS infeasible")
		}
		// Same constructions (same rng stream), so polish can only help.
		if polished.Cost > plain.Cost+1e-9 {
			t.Fatalf("trial %d: LS worsened %v → %v", trial, plain.Cost, polished.Cost)
		}
		if polished.Cost < plain.Cost-1e-9 {
			better++
		}
	}
	if better == 0 {
		t.Log("note: local search never strictly improved on these instances")
	}
}
