package covering

import (
	"math"

	"carbon/internal/lp"
)

// ExactResult is the outcome of the branch-and-bound oracle.
type ExactResult struct {
	X        []bool
	Cost     float64
	Optimal  bool // proven optimal within the node budget
	Feasible bool
	Nodes    int
}

// SolveExact finds a provably optimal covering selection by LP-based
// branch and bound. It exists as a test oracle and for small example
// instances — covering is NP-hard, so the node budget caps the effort;
// when exceeded, the incumbent is returned with Optimal=false.
func (in *Instance) SolveExact(maxNodes int) ExactResult {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	m := in.M()

	// Incumbent from the classic greedy.
	inc := in.ChvatalGreedy()
	res := ExactResult{Feasible: inc.Feasible}
	bestCost := math.Inf(1)
	var bestX []bool
	if inc.Feasible {
		bestCost = inc.Cost
		bestX = append([]bool(nil), inc.X...)
	}

	base := in.lpProblem()
	lo := make([]float64, m)
	up := make([]float64, m)
	for j := range up {
		up[j] = 1
	}
	nodes := 0
	proven := true

	var dfs func()
	dfs = func() {
		if nodes >= maxNodes {
			proven = false
			return
		}
		nodes++
		prob := *base
		prob.Lo = lo
		prob.Up = up
		sol, err := lp.Solve(&prob)
		if err != nil || sol.Status == lp.Infeasible {
			return
		}
		if sol.Status != lp.Optimal {
			proven = false
			return
		}
		if sol.Obj >= bestCost-1e-9 {
			return // bound prune
		}
		// Most fractional variable.
		branch, frac := -1, 0.0
		for j := 0; j < m; j++ {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > 1e-6 && f > frac {
				branch, frac = j, f
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			bestCost = sol.Obj
			nx := make([]bool, m)
			for j := 0; j < m; j++ {
				nx[j] = sol.X[j] > 0.5
			}
			bestX = nx
			return
		}
		// x_branch = 1 first: covering instances reach feasibility fast.
		lo[branch], up[branch] = 1, 1
		dfs()
		lo[branch], up[branch] = 0, 0
		dfs()
		lo[branch], up[branch] = 0, 1
	}
	dfs()

	res.Nodes = nodes
	if bestX != nil {
		res.Feasible = true
		res.X = bestX
		res.Cost = bestCost
	}
	res.Optimal = res.Feasible && proven
	return res
}
