package covering

import (
	"carbon/internal/gp"
)

// TableITerms is the paper's Table I terminal set, in environment-vector
// order: cost cⱼ, coefficient qⱼᵏ, requirement bᵏ, LP dual d_k, relaxed
// solution value x̄ⱼ.
var TableITerms = []string{"c", "q", "b", "d", "xbar"}

// TableISet returns a fresh primitive set implementing the paper's
// Table I exactly: operators {+, -, *, %, mod} over the five terminals.
func TableISet() *gp.Set {
	return &gp.Set{Ops: gp.TableIOps(), Terms: append([]string(nil), TableITerms...)}
}

// EnvLen is the scorer environment-vector length — Table I's terminal
// count. The scorer hands trees exactly this many features, so a
// primitive set routed into it may declare at most EnvLen terminals;
// bcpop.NewEvaluator enforces that bound, which is what keeps a tree
// decoded against a larger terminal set from indexing past the
// environment at evaluation time.
const EnvLen = 5

// TreeScorer evaluates a GP tree into per-item scores for GreedyByScore.
// Three of Table I's terminals are indexed by service k while the tree
// scores item j, so the scorer evaluates the tree once per (item,
// service) pair and sums over services:
//
//	score(j) = Σₖ tree(cⱼ, qⱼᵏ, bᵏ, d_k, x̄ⱼ)
//
// This additive aggregation is the natural reading of Table I — it makes
// the LP-guided orderings expressible (e.g. the tree (* q d) yields
// score(j) = Σₖ qⱼᵏ·d_k, the dual-weighted coverage whose descending
// order reproduces the reduced-cost greedy) while degenerating gracefully
// for service-independent trees (they scale by N uniformly, preserving
// the order).
type TreeScorer struct {
	Set *gp.Set
	rx  *Relaxation
	in  *Instance
	env [EnvLen]float64
}

// NewTreeScorer binds a scorer to an instance and its relaxation data.
func NewTreeScorer(set *gp.Set, in *Instance, rx *Relaxation) *TreeScorer {
	return &TreeScorer{Set: set, in: in, rx: rx}
}

// Score fills scores[j] for every item. len(scores) must be M.
func (ts *TreeScorer) Score(tree gp.Tree, scores []float64) {
	in, rx := ts.in, ts.rx
	n := in.N()
	for j := range scores {
		col := in.Cols[j]
		ts.env[0] = in.C[j]
		ts.env[4] = rx.XBar[j]
		total := 0.0
		for k := 0; k < n; k++ {
			ts.env[1] = col[k]
			ts.env[2] = in.B[k]
			ts.env[3] = rx.Dual[k]
			total += tree.Eval(ts.Set, ts.env[:])
		}
		scores[j] = total
	}
}

// ScoreProgram is Score for a compiled tree: the same (item, service)
// sweep and the same additive aggregation, but each pair is evaluated
// by replaying bytecode instead of re-decoding tree nodes. The VM
// reproduces gp.Tree.Eval bit-for-bit, so scores are bit-identical to
// Score on the program's source tree.
func (ts *TreeScorer) ScoreProgram(vm *gp.VM, p *gp.Program, scores []float64) {
	ScoreProgramInto(ts.in, ts.rx, vm, p, scores)
}

// ScoreProgramInto is the allocation-free form of ScoreProgram used by
// the evaluation hot path: no scorer object, the environment scratch
// lives on the caller's stack, and the VM's operand stack is reused
// across calls. One compiled predator is swept across all M×N
// (item, service) pairs of a prepared context in a single batched pass.
func ScoreProgramInto(in *Instance, rx *Relaxation, vm *gp.VM, p *gp.Program, scores []float64) {
	var env [EnvLen]float64
	n := in.N()
	for j := range scores {
		col := in.Cols[j]
		env[0] = in.C[j]
		env[4] = rx.XBar[j]
		total := 0.0
		for k := 0; k < n; k++ {
			env[1] = col[k]
			env[2] = in.B[k]
			env[3] = rx.Dual[k]
			total += vm.Eval(p, env[:])
		}
		scores[j] = total
	}
}

// ApplyHeuristic scores the items with the tree and runs the greedy,
// returning the greedy result — one lower-level fitness evaluation in
// the paper's accounting.
func (ts *TreeScorer) ApplyHeuristic(tree gp.Tree, eliminate bool) GreedyResult {
	scores := make([]float64, ts.in.M())
	ts.Score(tree, scores)
	return ts.in.GreedyByScore(scores, eliminate)
}
