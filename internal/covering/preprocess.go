package covering

// RemoveDominatedRows returns an instance without redundant requirement
// rows and the mapping from reduced row indices back to the originals.
//
// Row k is dominated by row k' when, for every item j,
//
//	q_jᵏ / bᵏ  ≥  q_jᵏ' / bᵏ',
//
// because then any selection satisfying k' satisfies k:
// Σ q_jᵏ xⱼ ≥ (bᵏ/bᵏ')·Σ q_jᵏ' xⱼ ≥ bᵏ. Dropping k leaves the feasible
// region — and hence the ILP optimum, the LP relaxation, every greedy
// answer's feasibility — exactly unchanged, while shrinking the work per
// greedy pass and LP solve.
//
// Note what this deliberately is NOT: column (item) dominance. In
// *generalized* covering (numeric coefficients, b > 1), removing an item
// whose column is pointwise worse than a cheaper item's is unsound — an
// optimal basket may contain both, since coverage is additive rather
// than union-based. The classic set-cover column rule only applies to
// binary matrices with unit requirements.
//
// Ties (rows dominating each other, i.e. proportional rows) keep the
// lowest index.
func (in *Instance) RemoveDominatedRows() (*Instance, []int) {
	m, n := in.M(), in.N()
	removed := make([]bool, n)
	// Precompute scaled rows q_j^k / b^k; b > 0 is guaranteed for
	// generated instances, and a zero-b row is dominated by everything
	// (it is vacuous) — handle it first.
	scaled := make([][]float64, n)
	for k := 0; k < n; k++ {
		if in.B[k] <= 0 {
			removed[k] = true
			continue
		}
		s := make([]float64, m)
		for j := 0; j < m; j++ {
			s[j] = in.Q[k][j] / in.B[k]
		}
		scaled[k] = s
	}
	for k := 0; k < n; k++ {
		if removed[k] {
			continue
		}
		for k2 := 0; k2 < n && !removed[k]; k2++ {
			if k2 == k || removed[k2] {
				continue
			}
			// Does k2 dominate k (k is implied by k2)?
			dom := true
			tie := true
			for j := 0; j < m; j++ {
				if scaled[k][j] < scaled[k2][j] {
					dom = false
					break
				}
				if scaled[k][j] != scaled[k2][j] {
					tie = false
				}
			}
			if !dom {
				continue
			}
			if tie && k < k2 {
				continue // proportional rows: keep the lower index
			}
			removed[k] = true
		}
	}
	keep := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if !removed[k] {
			keep = append(keep, k)
		}
	}
	if len(keep) == n {
		return in, keep // nothing dominated: share the instance
	}
	q := make([][]float64, len(keep))
	b := make([]float64, len(keep))
	for r, k := range keep {
		q[r] = in.Q[k]
		b[r] = in.B[k]
	}
	out, err := New(in.C, q, b)
	if err != nil {
		// The reduction of a valid instance is always valid.
		panic("covering: reduction produced invalid instance: " + err.Error())
	}
	return out, keep
}
