// Package covering models the lower-level problem of the Bi-level Cloud
// Pricing Optimization Problem (Program 2 in the paper): a generalized
// covering problem
//
//	min  Σⱼ cⱼ·xⱼ
//	s.t. Σⱼ qⱼᵏ·xⱼ ≥ bᵏ   for every service k
//	     xⱼ ∈ {0,1}
//
// with non-binary coefficient matrices (the paper's modified-MKP
// instances). The package provides:
//
//   - the Instance type with feasibility/cost accounting,
//   - the LP relaxation (lower bound LB, duals d_k, relaxed solution x̄ⱼ
//     — the data the paper's Table I terminals and Eq. 1 gap need),
//   - a sort-once greedy driven by an arbitrary per-item score vector
//     (the paper's generated-heuristic shape: "a scoring function that
//     permits to sort bundles", then add until covered),
//   - Chvátal's adaptive ratio greedy as a classic baseline and repair
//     completion for infeasible binary vectors (COBRA's LL needs this),
//   - an exact branch-and-bound oracle for small instances (tests).
package covering

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is one covering instance. Q is stored row-major
// (Q[k][j] = qⱼᵏ, row per service k); Cols caches the column view for
// per-item scans. Build instances with New, which validates and caches.
type Instance struct {
	C    []float64   // item costs, length M
	Q    [][]float64 // N×M requirement matrix
	B    []float64   // service requirements, length N
	Cols [][]float64 // M×N column view of Q (derived)
}

// New validates the data and builds the column cache.
func New(c []float64, q [][]float64, b []float64) (*Instance, error) {
	in := &Instance{C: c, Q: q, B: b}
	if err := in.validate(); err != nil {
		return nil, err
	}
	in.buildCols()
	return in, nil
}

// M returns the number of items (bundles).
func (in *Instance) M() int { return len(in.C) }

// N returns the number of services (constraints).
func (in *Instance) N() int { return len(in.B) }

func (in *Instance) validate() error {
	m, n := len(in.C), len(in.B)
	if m == 0 || n == 0 {
		return errors.New("covering: empty instance")
	}
	if len(in.Q) != n {
		return fmt.Errorf("covering: %d rows in Q, want %d", len(in.Q), n)
	}
	for k, row := range in.Q {
		if len(row) != m {
			return fmt.Errorf("covering: row %d has %d entries, want %d", k, len(row), m)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("covering: bad coefficient q[%d][%d] = %v", k, j, v)
			}
		}
	}
	for j, c := range in.C {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("covering: bad cost c[%d] = %v", j, c)
		}
	}
	for k, b := range in.B {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("covering: bad requirement b[%d] = %v", k, b)
		}
	}
	return nil
}

func (in *Instance) buildCols() {
	m, n := in.M(), in.N()
	flat := make([]float64, m*n)
	in.Cols = make([][]float64, m)
	for j := 0; j < m; j++ {
		col := flat[j*n : (j+1)*n]
		for k := 0; k < n; k++ {
			col[k] = in.Q[k][j]
		}
		in.Cols[j] = col
	}
}

// WithCosts returns a shallow variant of the instance sharing Q/B but
// using the given cost vector. The BCPOP leader re-prices items without
// copying the matrix.
func (in *Instance) WithCosts(c []float64) (*Instance, error) {
	if len(c) != in.M() {
		return nil, fmt.Errorf("covering: got %d costs, want %d", len(c), in.M())
	}
	for j, v := range c {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("covering: bad cost c[%d] = %v", j, v)
		}
	}
	out := *in
	out.C = c
	return &out, nil
}

// SelectionFeasible reports whether the selection covers every service.
func (in *Instance) SelectionFeasible(x []bool) bool {
	for k, row := range in.Q {
		got := 0.0
		for j, sel := range x {
			if sel {
				got += row[j]
			}
		}
		if got < in.B[k]-1e-9 {
			return false
		}
	}
	return true
}

// SelectionCost returns the total cost of the selection.
func (in *Instance) SelectionCost(x []bool) float64 {
	total := 0.0
	for j, sel := range x {
		if sel {
			total += in.C[j]
		}
	}
	return total
}

// FullSelectionFeasible reports whether buying everything covers all
// requirements — the basic sanity check the paper applies when deriving
// instances ("we also ensure that each modified instance has a non-empty
// search space").
func (in *Instance) FullSelectionFeasible() bool {
	x := make([]bool, in.M())
	for j := range x {
		x[j] = true
	}
	return in.SelectionFeasible(x)
}

// GreedyResult reports one greedy (or repair) run.
type GreedyResult struct {
	X        []bool
	Cost     float64
	Feasible bool
	Added    int // items added by the sweep (before redundancy removal)
}

// GreedyByScore runs the paper's generated-heuristic execution model:
// items are sorted once by descending score (ties by index), then added
// in order — skipping items that no longer contribute to any unmet
// requirement — until every requirement is covered. When eliminate is
// true a reverse-order redundancy pass drops items whose removal keeps
// the selection feasible. The returned selection is freshly allocated;
// the evaluation hot path uses GreedyByScoreInto with reused scratch.
func (in *Instance) GreedyByScore(scores []float64, eliminate bool) GreedyResult {
	var sc GreedyScratch
	return in.GreedyByScoreInto(scores, eliminate, &sc)
}

// GreedyScratch holds the reusable working state of GreedyByScoreInto:
// the sort permutation, residual-requirement and surplus vectors, the
// selection itself and the pick order. One scratch per worker makes
// steady-state greedy runs allocation-free. The zero value is ready to
// use; buffers grow to the instance size on first call.
type GreedyScratch struct {
	order     []int
	resid     []float64
	x         []bool
	pickOrder []int
	surplus   []float64
	sorter    scoreSorter
}

// scoreSorter sorts an index permutation by descending score with
// index tiebreak. The comparator is a strict total order whenever no
// score is NaN, so the permutation — and every downstream greedy
// decision — is independent of the sort algorithm's internals.
type scoreSorter struct {
	order  []int
	scores []float64
}

func (s *scoreSorter) Len() int { return len(s.order) }
func (s *scoreSorter) Less(a, b int) bool {
	sa, sb := s.scores[s.order[a]], s.scores[s.order[b]]
	if sa != sb {
		return sa > sb
	}
	return s.order[a] < s.order[b]
}
func (s *scoreSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// grow returns buf resized to n, reusing capacity.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// GreedyByScoreInto is GreedyByScore with caller-owned scratch: same
// decisions, same result, zero allocations once the scratch has grown
// to the instance size. The returned selection (X) aliases sc.x and is
// only valid until the next call with the same scratch — callers that
// retain it must copy.
func (in *Instance) GreedyByScoreInto(scores []float64, eliminate bool, sc *GreedyScratch) GreedyResult {
	m, n := in.M(), in.N()
	sc.order = grow(sc.order, m)
	order := sc.order
	for j := range order {
		order[j] = j
	}
	sc.sorter.order, sc.sorter.scores = order, scores
	sort.Sort(&sc.sorter)
	sc.sorter.order, sc.sorter.scores = nil, nil

	sc.resid = grow(sc.resid, n)
	resid := sc.resid
	copy(resid, in.B)
	remaining := 0
	for _, r := range resid {
		if r > 1e-9 {
			remaining++
		}
	}
	sc.x = grow(sc.x, m)
	x := sc.x
	for j := range x {
		x[j] = false
	}
	cost := 0.0
	added := 0
	pickOrder := sc.pickOrder[:0]
	for _, j := range order {
		if remaining == 0 {
			break
		}
		col := in.Cols[j]
		contributes := false
		for k := 0; k < n; k++ {
			if resid[k] > 1e-9 && col[k] > 0 {
				contributes = true
				break
			}
		}
		if !contributes {
			continue
		}
		x[j] = true
		cost += in.C[j]
		added++
		pickOrder = append(pickOrder, j)
		for k := 0; k < n; k++ {
			if resid[k] > 1e-9 {
				resid[k] -= col[k]
				if resid[k] <= 1e-9 {
					remaining--
				}
			}
		}
	}
	sc.pickOrder = pickOrder
	feasible := remaining == 0
	if feasible && eliminate {
		sc.surplus = grow(sc.surplus, n)
		cost = in.eliminateRedundantInto(x, pickOrder, cost, sc.surplus)
	}
	return GreedyResult{X: x, Cost: cost, Feasible: feasible, Added: added}
}

// eliminateRedundant drops items in reverse pick order when the
// remaining selection still covers everything. It returns the new cost.
func (in *Instance) eliminateRedundant(x []bool, pickOrder []int, cost float64) float64 {
	return in.eliminateRedundantInto(x, pickOrder, cost, make([]float64, in.N()))
}

// eliminateRedundantInto is eliminateRedundant with a caller-owned
// surplus buffer (len ≥ N).
func (in *Instance) eliminateRedundantInto(x []bool, pickOrder []int, cost float64, surplus []float64) float64 {
	n := in.N()
	// Track per-service surplus: Σ q - b.
	surplus = surplus[:n]
	for k, row := range in.Q {
		got := 0.0
		for j, sel := range x {
			if sel {
				got += row[j]
			}
		}
		surplus[k] = got - in.B[k]
	}
	for i := len(pickOrder) - 1; i >= 0; i-- {
		j := pickOrder[i]
		col := in.Cols[j]
		removable := true
		for k := 0; k < n; k++ {
			if col[k] > surplus[k]+1e-9 {
				removable = false
				break
			}
		}
		if !removable {
			continue
		}
		x[j] = false
		cost -= in.C[j]
		for k := 0; k < n; k++ {
			surplus[k] -= col[k]
		}
	}
	return cost
}

// ChvatalGreedy is the classic adaptive ratio greedy: repeatedly add the
// item maximizing covered-residual-demand per unit cost. It serves as the
// hand-written baseline heuristic and as the repair engine.
func (in *Instance) ChvatalGreedy() GreedyResult {
	x := make([]bool, in.M())
	return in.repairFrom(x, 0)
}

// Repair completes an arbitrary selection to feasibility by Chvátal
// steps, then removes redundant items (cheapest-completion repair used
// for COBRA's raw binary LL vectors). The input is not mutated.
func (in *Instance) Repair(x []bool) GreedyResult {
	if len(x) != in.M() {
		panic("covering: repair selection length mismatch")
	}
	clone := append([]bool(nil), x...)
	cost := in.SelectionCost(clone)
	return in.repairFrom(clone, cost)
}

func (in *Instance) repairFrom(x []bool, cost float64) GreedyResult {
	n := in.N()
	resid := append([]float64(nil), in.B...)
	for j, sel := range x {
		if sel {
			col := in.Cols[j]
			for k := 0; k < n; k++ {
				resid[k] -= col[k]
			}
		}
	}
	remaining := 0
	for k := range resid {
		if resid[k] > 1e-9 {
			remaining++
		}
	}
	added := 0
	pickOrder := make([]int, 0, in.M())
	for j, sel := range x {
		if sel {
			pickOrder = append(pickOrder, j)
		}
	}
	for remaining > 0 {
		bestJ, bestRatio := -1, 0.0
		for j, sel := range x {
			if sel {
				continue
			}
			col := in.Cols[j]
			gain := 0.0
			for k := 0; k < n; k++ {
				if resid[k] > 1e-9 {
					gain += math.Min(col[k], resid[k])
				}
			}
			if gain <= 0 {
				continue
			}
			ratio := gain / math.Max(in.C[j], 1e-12)
			if bestJ < 0 || ratio > bestRatio {
				bestJ, bestRatio = j, ratio
			}
		}
		if bestJ < 0 {
			// No item can reduce the residual: infeasible instance.
			return GreedyResult{X: x, Cost: cost, Feasible: false, Added: added}
		}
		x[bestJ] = true
		cost += in.C[bestJ]
		added++
		pickOrder = append(pickOrder, bestJ)
		col := in.Cols[bestJ]
		for k := 0; k < n; k++ {
			if resid[k] > 1e-9 {
				resid[k] -= col[k]
				if resid[k] <= 1e-9 {
					remaining--
				}
			}
		}
	}
	cost = in.eliminateRedundant(x, pickOrder, cost)
	return GreedyResult{X: x, Cost: cost, Feasible: true, Added: added}
}
