package covering

import (
	"math"

	"carbon/internal/rng"
)

// GRASP runs a greedy randomized adaptive search procedure for the
// covering instance: `starts` randomized Chvátal constructions, each
// picking uniformly from a restricted candidate list (the items whose
// cost-effectiveness is within `alpha` of the best), followed by
// redundancy elimination; the cheapest construction wins.
//
// GRASP is the standard "stochastic but fixed" lower-level solver the
// hyper-heuristics literature compares generated heuristics against: it
// spends evaluations per instance instead of learning across instances.
// alpha = 0 reduces to the deterministic Chvátal greedy; alpha = 1 is a
// uniform random constructive. One GRASP start costs about one greedy
// application, so CARBON's accounting charges `starts` LL evaluations
// for a call.
func (in *Instance) GRASP(r *rng.Rand, starts int, alpha float64) GreedyResult {
	if starts < 1 {
		starts = 1
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	best := GreedyResult{Cost: math.Inf(1)}
	for s := 0; s < starts; s++ {
		res := in.graspConstruct(r, alpha)
		if res.Feasible && res.Cost < best.Cost {
			best = res
		}
	}
	if math.IsInf(best.Cost, 1) {
		// No start reached feasibility: the instance is uncoverable.
		return GreedyResult{X: make([]bool, in.M()), Feasible: false}
	}
	return best
}

// graspConstruct is one randomized adaptive construction.
func (in *Instance) graspConstruct(r *rng.Rand, alpha float64) GreedyResult {
	m, n := in.M(), in.N()
	resid := append([]float64(nil), in.B...)
	remaining := 0
	for _, v := range resid {
		if v > 1e-9 {
			remaining++
		}
	}
	x := make([]bool, m)
	cost := 0.0
	added := 0
	pickOrder := make([]int, 0, m)
	ratios := make([]float64, m)
	rcl := make([]int, 0, m)
	for remaining > 0 {
		// Score all unselected contributing items by gain/cost.
		bestRatio := -1.0
		for j := 0; j < m; j++ {
			ratios[j] = -1
			if x[j] {
				continue
			}
			col := in.Cols[j]
			gain := 0.0
			for k := 0; k < n; k++ {
				if resid[k] > 1e-9 {
					gain += math.Min(col[k], resid[k])
				}
			}
			if gain <= 0 {
				continue
			}
			ratios[j] = gain / math.Max(in.C[j], 1e-12)
			if ratios[j] > bestRatio {
				bestRatio = ratios[j]
			}
		}
		if bestRatio < 0 {
			return GreedyResult{X: x, Cost: cost, Feasible: false, Added: added}
		}
		// Restricted candidate list: ratio ≥ (1−alpha)·best.
		cutoff := (1 - alpha) * bestRatio
		rcl = rcl[:0]
		for j := 0; j < m; j++ {
			if ratios[j] >= cutoff && ratios[j] >= 0 {
				rcl = append(rcl, j)
			}
		}
		j := rcl[r.Intn(len(rcl))]
		x[j] = true
		cost += in.C[j]
		added++
		pickOrder = append(pickOrder, j)
		col := in.Cols[j]
		for k := 0; k < n; k++ {
			if resid[k] > 1e-9 {
				resid[k] -= col[k]
				if resid[k] <= 1e-9 {
					remaining--
				}
			}
		}
	}
	cost = in.eliminateRedundant(x, pickOrder, cost)
	return GreedyResult{X: x, Cost: cost, Feasible: true, Added: added}
}
