package covering

import (
	"math"

	"carbon/internal/rng"
)

// LocalSearch improves a feasible selection by first-improvement moves
// until a local optimum:
//
//	drop:  remove a redundant item (feasibility kept by surplus);
//	swap:  replace one selected item with one cheaper unselected item
//	       when the swap keeps every requirement covered.
//
// The input is not mutated; the result is never worse and never
// infeasible. LocalSearch is the canonical companion of GRASP (see
// GRASPWithLS) and is also useful to polish heuristic answers before
// reporting.
func (in *Instance) LocalSearch(x []bool) GreedyResult {
	m, n := in.M(), in.N()
	cur := append([]bool(nil), x...)
	if !in.SelectionFeasible(cur) {
		return GreedyResult{X: cur, Cost: in.SelectionCost(cur), Feasible: false}
	}
	// Surplus per service: Σ q − b.
	surplus := make([]float64, n)
	for k, row := range in.Q {
		got := 0.0
		for j, sel := range cur {
			if sel {
				got += row[j]
			}
		}
		surplus[k] = got - in.B[k]
	}
	cost := in.SelectionCost(cur)

	improved := true
	for improved {
		improved = false
		// Drop moves.
		for j := 0; j < m; j++ {
			if !cur[j] {
				continue
			}
			col := in.Cols[j]
			ok := true
			for k := 0; k < n; k++ {
				if col[k] > surplus[k]+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur[j] = false
			cost -= in.C[j]
			for k := 0; k < n; k++ {
				surplus[k] -= col[k]
			}
			improved = true
		}
		// Swap moves: out ∈ selection, in ∉ selection, cheaper, feasible.
		for out := 0; out < m && !improved; out++ {
			if !cur[out] {
				continue
			}
			outCol := in.Cols[out]
			for inn := 0; inn < m; inn++ {
				if cur[inn] || in.C[inn] >= in.C[out]-1e-12 {
					continue
				}
				innCol := in.Cols[inn]
				ok := true
				for k := 0; k < n; k++ {
					if surplus[k]-outCol[k]+innCol[k] < -1e-9 {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				cur[out], cur[inn] = false, true
				cost += in.C[inn] - in.C[out]
				for k := 0; k < n; k++ {
					surplus[k] += innCol[k] - outCol[k]
				}
				improved = true
				break
			}
		}
	}
	return GreedyResult{X: cur, Cost: cost, Feasible: true}
}

// GRASPWithLS runs GRASP with a local-search polish after each
// construction — the textbook GRASP shape. Costs roughly
// starts × (one construction + one local search).
func (in *Instance) GRASPWithLS(r *rng.Rand, starts int, alpha float64) GreedyResult {
	if starts < 1 {
		starts = 1
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	best := GreedyResult{Cost: math.Inf(1)}
	for s := 0; s < starts; s++ {
		res := in.graspConstruct(r, alpha)
		if !res.Feasible {
			continue
		}
		res = in.LocalSearch(res.X)
		if res.Cost < best.Cost {
			best = res
		}
	}
	if math.IsInf(best.Cost, 1) {
		return GreedyResult{X: make([]bool, in.M()), Feasible: false}
	}
	return best
}
