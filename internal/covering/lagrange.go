package covering

import (
	"math"
)

// LagrangianResult is the outcome of subgradient optimization of the
// covering problem's Lagrangian dual.
type LagrangianResult struct {
	Bound      float64   // best lower bound found, ≤ optimal ILP cost
	Lambda     []float64 // multipliers achieving it (length N)
	Iterations int
}

// LagrangianBound computes a lower bound on the covering optimum by
// subgradient ascent on the Lagrangian dual
//
//	L(λ) = Σₖ λₖ·bₖ + Σⱼ min(0, cⱼ − Σₖ λₖ·qⱼᵏ),    λ ≥ 0,
//
// whose inner minimization decomposes per item (xⱼ = 1 exactly when the
// Lagrangian reduced cost is negative). It is the classic alternative to
// the LP bound used in Eq. 1's denominator: because the inner problem
// has the integrality property, max_λ L(λ) equals the LP-relaxation
// value, so this routine doubles as an independent cross-check of the
// simplex solver (see TestLagrangianApproachesLPBound) and as a
// fallback when an LP solve is unwanted.
//
// ub is an upper bound used by the Polyak step rule (any feasible
// selection cost works; pass the Chvátal greedy's). iters caps the
// subgradient steps; 200 is plenty for the paper's instance sizes.
func (in *Instance) LagrangianBound(ub float64, iters int) LagrangianResult {
	m, n := in.M(), in.N()
	if iters <= 0 {
		iters = 200
	}
	lambda := make([]float64, n)
	bestLambda := make([]float64, n)
	// Warm start: uniform multipliers scaled so that an average item is
	// roughly break-even — purely heuristic, any λ ≥ 0 is valid.
	avgC, avgQ := 0.0, 0.0
	for _, c := range in.C {
		avgC += c
	}
	avgC /= float64(m)
	for k := 0; k < n; k++ {
		for j := 0; j < m; j++ {
			avgQ += in.Q[k][j]
		}
	}
	avgQ /= float64(m * n)
	if avgQ > 0 {
		init := avgC / (avgQ * float64(n))
		for k := range lambda {
			lambda[k] = init
		}
	}

	best := math.Inf(-1)
	theta := 2.0 // Polyak step scale, halved on stalls
	stall := 0
	g := make([]float64, n)
	red := make([]float64, m)

	for it := 0; it < iters; it++ {
		// Inner minimization: reduced costs and the dual value.
		val := 0.0
		for k := 0; k < n; k++ {
			val += lambda[k] * in.B[k]
		}
		for j := 0; j < m; j++ {
			rc := in.C[j]
			col := in.Cols[j]
			for k := 0; k < n; k++ {
				rc -= lambda[k] * col[k]
			}
			red[j] = rc
			if rc < 0 {
				val += rc
			}
		}
		if val > best {
			best = val
			copy(bestLambda, lambda)
			stall = 0
		} else {
			stall++
			if stall >= 10 {
				theta /= 2
				stall = 0
				if theta < 1e-4 {
					return LagrangianResult{Bound: best, Lambda: bestLambda, Iterations: it + 1}
				}
			}
		}

		// Subgradient g = b − Q·x(λ).
		norm2 := 0.0
		for k := 0; k < n; k++ {
			gk := in.B[k]
			for j := 0; j < m; j++ {
				if red[j] < 0 {
					gk -= in.Q[k][j]
				}
			}
			g[k] = gk
			norm2 += gk * gk
		}
		if norm2 < 1e-18 {
			// x(λ) satisfies every requirement exactly: λ is optimal.
			return LagrangianResult{Bound: best, Lambda: bestLambda, Iterations: it + 1}
		}
		step := theta * (ub - val) / norm2
		if step <= 0 {
			step = theta*math.Abs(val)*1e-3/norm2 + 1e-9
		}
		for k := 0; k < n; k++ {
			lambda[k] += step * g[k]
			if lambda[k] < 0 {
				lambda[k] = 0
			}
		}
	}
	return LagrangianResult{Bound: best, Lambda: bestLambda, Iterations: iters}
}
