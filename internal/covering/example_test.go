package covering_test

import (
	"fmt"

	"carbon/internal/covering"
	"carbon/internal/gp"
)

// A three-bundle market: bundle 0 covers both services for 3; bundles 1
// and 2 cover one service each for 2. The LP bound, the classic greedy
// and the Eq. 1 gap in a few lines.
func Example() {
	in, err := covering.New(
		[]float64{3, 2, 2},
		[][]float64{
			{1, 1, 0},
			{1, 0, 1},
		},
		[]float64{1, 1},
	)
	if err != nil {
		panic(err)
	}
	rx, err := in.Relax()
	if err != nil {
		panic(err)
	}
	res := in.ChvatalGreedy()
	fmt.Printf("LP bound %.0f, greedy cost %.0f, gap %.0f%%\n",
		rx.LB, res.Cost, covering.Gap(res.Cost, rx.LB))

	// The same greedy driven by a GP scoring tree over Table I.
	set := covering.TableISet()
	tree := gp.MustParse(set, "(% (* q d) c)")
	ts := covering.NewTreeScorer(set, in, rx)
	out := ts.ApplyHeuristic(tree, true)
	fmt.Printf("tree-driven cost %.0f\n", out.Cost)
	// Output:
	// LP bound 3, greedy cost 3, gap 0%
	// tree-driven cost 3
}
