package covering

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestLagrangianIsValidLowerBound(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, r, 15, 5)
		gr := in.ChvatalGreedy()
		lag := in.LagrangianBound(gr.Cost, 300)
		ex := in.SolveExact(0)
		if !ex.Optimal {
			t.Fatal("exact failed")
		}
		if lag.Bound > ex.Cost+1e-6 {
			t.Fatalf("trial %d: Lagrangian bound %v exceeds optimum %v",
				trial, lag.Bound, ex.Cost)
		}
		for _, l := range lag.Lambda {
			if l < 0 {
				t.Fatalf("negative multiplier %v", l)
			}
		}
	}
}

func TestLagrangianApproachesLPBound(t *testing.T) {
	// The per-item inner problem has the integrality property, so the
	// Lagrangian dual optimum equals the LP relaxation value. Subgradient
	// ascent should close most of the distance — an independent
	// cross-check of the simplex solver.
	r := rng.New(53)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, r, 40, 8)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		gr := in.ChvatalGreedy()
		lag := in.LagrangianBound(gr.Cost, 500)
		if lag.Bound > rx.LB+1e-6*(1+rx.LB) {
			t.Fatalf("trial %d: Lagrangian %v above LP bound %v", trial, lag.Bound, rx.LB)
		}
		if lag.Bound < 0.90*rx.LB {
			t.Fatalf("trial %d: Lagrangian %v too far below LP bound %v",
				trial, lag.Bound, rx.LB)
		}
	}
}

func TestLagrangianGapUsable(t *testing.T) {
	// Gaps computed against the Lagrangian bound must upper-bound gaps
	// computed against the LP bound (smaller denominator & bound ⇒
	// larger gap), staying finite and ordered.
	r := rng.New(57)
	in := randomInstance(t, r, 30, 6)
	rx, err := in.Relax()
	if err != nil {
		t.Fatal(err)
	}
	gr := in.ChvatalGreedy()
	lag := in.LagrangianBound(gr.Cost, 300)
	gapLP := Gap(gr.Cost, rx.LB)
	gapLag := Gap(gr.Cost, lag.Bound)
	if gapLag < gapLP-1e-9 {
		t.Fatalf("Lagrangian gap %v below LP gap %v", gapLag, gapLP)
	}
	if math.IsInf(gapLag, 0) || math.IsNaN(gapLag) {
		t.Fatalf("unusable gap %v", gapLag)
	}
}

func TestLagrangianTinyExact(t *testing.T) {
	in := tiny(t)
	lag := in.LagrangianBound(4, 500)
	// LP bound of the tiny instance: min 3x0+2x1+2x2 with both services
	// covered; optimum of the relaxation is 3 (x0=1).
	if lag.Bound > 3+1e-6 {
		t.Fatalf("bound %v above optimum 3", lag.Bound)
	}
	if lag.Bound < 2.4 {
		t.Fatalf("bound %v too loose for a 3-item instance", lag.Bound)
	}
}

func TestLagrangianDefaults(t *testing.T) {
	in := tiny(t)
	lag := in.LagrangianBound(4, 0) // iters <= 0 selects the default
	if lag.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
}

func BenchmarkLagrangian500x30(b *testing.B) {
	r := rng.New(59)
	in := randomInstance(b, r, 500, 30)
	gr := in.ChvatalGreedy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.LagrangianBound(gr.Cost, 100)
	}
}
