package covering

import (
	"fmt"

	"carbon/internal/lp"
)

// Relaxation holds the LP-relaxation data of one instance: the lower
// bound LB(x) of Eq. 1 and the two LP-derived terminals of Table I
// (dual values d_k and relaxed solution values x̄ⱼ).
type Relaxation struct {
	LB     float64
	Dual   []float64 // length N, one per service
	XBar   []float64 // length M, one per item
	Status lp.Status
}

// Clone returns a deep copy of the relaxation whose slices are owned by
// the caller. Cached relaxations (bcpop's shared-relaxation evaluation
// cache) are cloned once at preparation time so they stay valid no
// matter what the producing solver does afterwards — the solver is free
// to reuse its buffers on future solves.
func (rx *Relaxation) Clone() *Relaxation {
	return &Relaxation{
		LB:     rx.LB,
		Dual:   append([]float64(nil), rx.Dual...),
		XBar:   append([]float64(nil), rx.XBar...),
		Status: rx.Status,
	}
}

// lpProblem builds min c·x, Qx ≥ b, 0 ≤ x ≤ 1 for the instance.
func (in *Instance) lpProblem() *lp.Problem {
	m, n := in.M(), in.N()
	rel := make([]lp.Relation, n)
	lo := make([]float64, m)
	up := make([]float64, m)
	for j := range up {
		up[j] = 1
	}
	return &lp.Problem{C: in.C, A: in.Q, Rel: rel, B: in.B, Lo: lo, Up: up}
}

// Relax solves the LP relaxation from scratch.
func (in *Instance) Relax() (*Relaxation, error) {
	sol, err := lp.Solve(in.lpProblem())
	if err != nil {
		return nil, err
	}
	return relaxationFrom(sol), nil
}

func relaxationFrom(sol *lp.Solution) *Relaxation {
	return &Relaxation{
		LB:     sol.Obj,
		Dual:   sol.Dual,
		XBar:   sol.X,
		Status: sol.Status,
	}
}

// Relaxer solves a stream of relaxations that share Q and b but carry
// different costs, using the warm-started simplex. This is the hot path
// of CARBON: every upper-level pricing decision changes only the costs
// of the leader's bundles. A Relaxer is not safe for concurrent use;
// create one per worker.
type Relaxer struct {
	ws *lp.WarmSolver
	m  int
}

// NewRelaxer prepares a warm solver for the instance's matrix.
func NewRelaxer(in *Instance) (*Relaxer, error) {
	ws, err := lp.NewWarmSolver(in.lpProblem())
	if err != nil {
		return nil, err
	}
	return &Relaxer{ws: ws, m: in.M()}, nil
}

// Reset discards the warm basis so the next Relax solves cold (see
// lp.WarmSolver.Reset). CARBON resets its relaxers at every generation
// boundary, making each generation's relaxation results a pure function
// of that generation's costs — the property that lets a restored
// checkpoint replay the remaining generations bit-identically.
func (r *Relaxer) Reset() { r.ws.Reset() }

// SetFault installs (or, with nil, clears) a fault hook on the
// underlying warm solver: it is consulted before every solve, and a
// non-nil return aborts that solve without disturbing the warm basis.
// Wired through bcpop.Evaluator.SetLPFault for fault-injection runs.
func (r *Relaxer) SetFault(h func() error) { r.ws.Fault = h }

// Relax solves the relaxation with the given item costs.
func (r *Relaxer) Relax(costs []float64) (*Relaxation, error) {
	if len(costs) != r.m {
		return nil, fmt.Errorf("covering: got %d costs, want %d", len(costs), r.m)
	}
	sol, err := r.ws.SolveWithCosts(costs)
	if err != nil {
		return nil, err
	}
	return relaxationFrom(sol), nil
}

// Gap returns the paper's Eq. 1 lower-level optimality gap in percent:
// 100·(value − LB)/LB. The instance generator guarantees LB > 0; a
// non-positive LB (degenerate hand-built instance) yields gap 0 when the
// value matches and +Inf-free large gap otherwise, keeping comparisons
// total.
func Gap(value, lb float64) float64 {
	if lb <= 1e-12 {
		if value <= 1e-12 {
			return 0
		}
		return 100 * value // degenerate: treat LB as 1
	}
	return 100 * (value - lb) / lb
}
