package covering

import (
	"math"
	"testing"

	"carbon/internal/gp"
	"carbon/internal/rng"
)

// tiny returns a hand-checkable instance: item 0 covers both services
// for cost 3; items 1 and 2 cover one service each for cost 2.
// Optimum: {0} at cost 3.
func tiny(t *testing.T) *Instance {
	t.Helper()
	in, err := New(
		[]float64{3, 2, 2},
		[][]float64{
			{1, 1, 0},
			{1, 0, 1},
		},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// randomInstance builds a feasible random covering instance.
func randomInstance(t testing.TB, r *rng.Rand, m, n int) *Instance {
	t.Helper()
	c := make([]float64, m)
	q := make([][]float64, n)
	b := make([]float64, n)
	for j := 0; j < m; j++ {
		c[j] = float64(r.IntRange(1, 100))
	}
	for k := 0; k < n; k++ {
		q[k] = make([]float64, m)
		rowSum := 0.0
		for j := 0; j < m; j++ {
			if r.Bool(0.5) {
				q[k][j] = float64(r.IntRange(1, 9))
				rowSum += q[k][j]
			}
		}
		b[k] = math.Max(1, math.Floor(rowSum*r.Range(0.2, 0.6)))
	}
	in, err := New(c, q, b)
	if err != nil {
		t.Fatal(err)
	}
	if !in.FullSelectionFeasible() {
		t.Fatal("random instance infeasible")
	}
	return in
}

func TestNewValidation(t *testing.T) {
	_, err := New(nil, nil, nil)
	if err == nil {
		t.Fatal("empty instance accepted")
	}
	_, err = New([]float64{1}, [][]float64{{1, 2}}, []float64{1})
	if err == nil {
		t.Fatal("ragged Q accepted")
	}
	_, err = New([]float64{-1}, [][]float64{{1}}, []float64{1})
	if err == nil {
		t.Fatal("negative cost accepted")
	}
	_, err = New([]float64{1}, [][]float64{{-2}}, []float64{1})
	if err == nil {
		t.Fatal("negative coefficient accepted")
	}
	_, err = New([]float64{1}, [][]float64{{1}}, []float64{math.NaN()})
	if err == nil {
		t.Fatal("NaN requirement accepted")
	}
}

func TestColsView(t *testing.T) {
	in := tiny(t)
	if in.Cols[0][0] != 1 || in.Cols[0][1] != 1 {
		t.Fatalf("column 0 = %v", in.Cols[0])
	}
	if in.Cols[2][0] != 0 || in.Cols[2][1] != 1 {
		t.Fatalf("column 2 = %v", in.Cols[2])
	}
}

func TestSelectionFeasibleAndCost(t *testing.T) {
	in := tiny(t)
	if !in.SelectionFeasible([]bool{true, false, false}) {
		t.Fatal("item 0 alone should be feasible")
	}
	if in.SelectionFeasible([]bool{false, true, false}) {
		t.Fatal("item 1 alone covers only service 0")
	}
	if !in.SelectionFeasible([]bool{false, true, true}) {
		t.Fatal("items 1+2 should be feasible")
	}
	if got := in.SelectionCost([]bool{true, false, true}); got != 5 {
		t.Fatalf("cost = %v", got)
	}
}

func TestWithCosts(t *testing.T) {
	in := tiny(t)
	v, err := in.WithCosts([]float64{10, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.SelectionCost([]bool{true, false, false}) != 10 {
		t.Fatal("new costs not applied")
	}
	if in.C[0] != 3 {
		t.Fatal("original instance mutated")
	}
	if _, err := in.WithCosts([]float64{1}); err == nil {
		t.Fatal("wrong-length costs accepted")
	}
	if _, err := in.WithCosts([]float64{1, -2, 3}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestGreedyByScoreFindsCover(t *testing.T) {
	in := tiny(t)
	// Scores favouring the expensive pair first: still must cover.
	res := in.GreedyByScore([]float64{-1, 5, 4}, false)
	if !res.Feasible {
		t.Fatal("greedy failed on feasible instance")
	}
	if !in.SelectionFeasible(res.X) {
		t.Fatal("greedy result reported feasible but is not")
	}
	if res.Cost != in.SelectionCost(res.X) {
		t.Fatalf("cost mismatch: %v vs %v", res.Cost, in.SelectionCost(res.X))
	}
	// With scores preferring item 0 the greedy must find the optimum.
	res0 := in.GreedyByScore([]float64{9, 0, 0}, false)
	if res0.Cost != 3 {
		t.Fatalf("score-led greedy cost %v, want 3", res0.Cost)
	}
}

func TestGreedySkipsNonContributing(t *testing.T) {
	// Item 1 contributes nothing once item 0 is taken; greedy must skip
	// it even with the best score... but item 0 has the second-best, so
	// ordering is [1,0,2]; after 1, service 1 still unmet, 0 covers it.
	in := tiny(t)
	res := in.GreedyByScore([]float64{5, 9, 0}, false)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.X[2] {
		t.Fatal("item 2 added although it no longer contributed")
	}
}

func TestRedundancyElimination(t *testing.T) {
	in := tiny(t)
	// Order [1, 2, 0]: greedy adds 1 (covers svc0), 2 (covers svc1) →
	// feasible without 0; nothing redundant. Order [2, 1, 0]: same.
	// Order [1, 0, ...]: adds 1, then 0 → 1 becomes redundant.
	res := in.GreedyByScore([]float64{5, 9, 0}, true)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.X[1] && res.X[0] {
		t.Fatal("redundant item survived elimination")
	}
	if res.Cost != in.SelectionCost(res.X) {
		t.Fatalf("cost tracking broke: %v vs %v", res.Cost, in.SelectionCost(res.X))
	}
}

func TestEliminationNeverIncreasesCostOrBreaksFeasibility(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(t, r, 30, 8)
		scores := make([]float64, in.M())
		for j := range scores {
			scores[j] = r.Range(-10, 10)
		}
		plain := in.GreedyByScore(scores, false)
		elim := in.GreedyByScore(scores, true)
		if plain.Feasible != elim.Feasible {
			t.Fatal("elimination changed feasibility")
		}
		if !plain.Feasible {
			continue
		}
		if !in.SelectionFeasible(elim.X) {
			t.Fatal("eliminated selection infeasible")
		}
		if elim.Cost > plain.Cost+1e-9 {
			t.Fatalf("elimination increased cost: %v > %v", elim.Cost, plain.Cost)
		}
	}
}

func TestGreedyInfeasibleInstance(t *testing.T) {
	in, err := New(
		[]float64{1},
		[][]float64{{1}, {0}},
		[]float64{1, 5}, // service 1 can never be covered
	)
	if err != nil {
		t.Fatal(err)
	}
	res := in.GreedyByScore([]float64{1}, true)
	if res.Feasible {
		t.Fatal("greedy claimed feasibility on an uncoverable instance")
	}
	if in.FullSelectionFeasible() {
		t.Fatal("FullSelectionFeasible wrong")
	}
}

func TestChvatalGreedy(t *testing.T) {
	in := tiny(t)
	res := in.ChvatalGreedy()
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	// Ratio: item 0 gain 2 / cost 3 ≈ 0.67 beats 0.5 of items 1,2.
	if !res.X[0] || res.X[1] || res.X[2] {
		t.Fatalf("Chvátal picked %v, want item 0 only", res.X)
	}
	if res.Cost != 3 {
		t.Fatalf("cost %v", res.Cost)
	}
}

func TestRepairCompletesInfeasibleVector(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(t, r, 25, 6)
		x := make([]bool, in.M())
		for j := range x {
			x[j] = r.Bool(0.2)
		}
		orig := append([]bool(nil), x...)
		res := in.Repair(x)
		if !res.Feasible {
			t.Fatal("repair failed on feasible instance")
		}
		if !in.SelectionFeasible(res.X) {
			t.Fatal("repaired selection infeasible")
		}
		if res.Cost != in.SelectionCost(res.X) {
			t.Fatal("repair cost mismatch")
		}
		for j := range x {
			if x[j] != orig[j] {
				t.Fatal("Repair mutated its input")
			}
		}
	}
}

func TestRepairOnFeasibleOnlyRemovesRedundancy(t *testing.T) {
	in := tiny(t)
	res := in.Repair([]bool{true, true, true})
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.Cost > 4+1e-9 {
		t.Fatalf("repair left cost %v", res.Cost)
	}
}

func TestRelaxBoundsExact(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, r, 14, 5)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		ex := in.SolveExact(0)
		if !ex.Optimal {
			t.Fatal("exact did not prove optimality on small instance")
		}
		if rx.LB > ex.Cost+1e-6 {
			t.Fatalf("LP bound %v exceeds exact optimum %v", rx.LB, ex.Cost)
		}
		for k, d := range rx.Dual {
			if d < -1e-9 {
				t.Fatalf("negative dual %v on >= row %d", d, k)
			}
		}
		for j, xb := range rx.XBar {
			if xb < -1e-9 || xb > 1+1e-9 {
				t.Fatalf("x̄[%d] = %v outside [0,1]", j, xb)
			}
		}
		// Any heuristic must sit between LB and... above LB.
		gr := in.ChvatalGreedy()
		if gr.Cost < rx.LB-1e-6 {
			t.Fatalf("greedy %v beat the LP bound %v", gr.Cost, rx.LB)
		}
		if gr.Cost < ex.Cost-1e-9 {
			t.Fatalf("greedy %v beat the exact optimum %v", gr.Cost, ex.Cost)
		}
	}
}

func TestExactTiny(t *testing.T) {
	in := tiny(t)
	ex := in.SolveExact(0)
	if !ex.Optimal || ex.Cost != 3 {
		t.Fatalf("exact = %+v, want optimal cost 3", ex)
	}
}

func TestExactInfeasible(t *testing.T) {
	in, err := New([]float64{1}, [][]float64{{0}}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	ex := in.SolveExact(0)
	if ex.Feasible {
		t.Fatal("exact claimed feasibility")
	}
}

func TestExactNodeBudget(t *testing.T) {
	r := rng.New(6)
	in := randomInstance(t, r, 30, 10)
	ex := in.SolveExact(1)
	if ex.Nodes > 1 {
		t.Fatalf("node budget ignored: %d nodes", ex.Nodes)
	}
	// Should still return the greedy incumbent.
	if !ex.Feasible {
		t.Fatal("no incumbent returned")
	}
}

func TestRelaxerMatchesCold(t *testing.T) {
	r := rng.New(7)
	in := randomInstance(t, r, 40, 8)
	rl, err := NewRelaxer(in)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		costs := make([]float64, in.M())
		for j := range costs {
			costs[j] = float64(r.IntRange(1, 100))
		}
		warm, err := rl.Relax(costs)
		if err != nil {
			t.Fatal(err)
		}
		v, err := in.WithCosts(costs)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := v.Relax()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warm.LB-cold.LB) > 1e-6*(1+math.Abs(cold.LB)) {
			t.Fatalf("warm LB %v != cold LB %v", warm.LB, cold.LB)
		}
	}
	if _, err := rl.Relax([]float64{1}); err == nil {
		t.Fatal("wrong-length costs accepted")
	}
}

func TestGap(t *testing.T) {
	if g := Gap(110, 100); math.Abs(g-10) > 1e-12 {
		t.Fatalf("Gap(110,100) = %v", g)
	}
	if g := Gap(100, 100); g != 0 {
		t.Fatalf("Gap(100,100) = %v", g)
	}
	if g := Gap(0, 0); g != 0 {
		t.Fatalf("Gap(0,0) = %v", g)
	}
	if g := Gap(5, 0); g != 500 {
		t.Fatalf("Gap(5,0) = %v", g)
	}
}

func TestTableISet(t *testing.T) {
	s := TableISet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Terms) != 5 {
		t.Fatalf("Table I has 5 terminals, got %d", len(s.Terms))
	}
	want := []string{"c", "q", "b", "d", "xbar"}
	for i, term := range s.Terms {
		if term != want[i] {
			t.Fatalf("terminal %d = %q", i, term)
		}
	}
}

func TestTreeScorerDualGuidedTreeBeatsAntiGreedy(t *testing.T) {
	// The dual-weighted coverage tree (* q d) should produce far better
	// covers than an adversarial tree (- b b) (all-zero scores: index
	// order).
	r := rng.New(8)
	set := TableISet()
	dualTree := gp.MustParse(set, "(% (* q d) c)")
	flatTree := gp.MustParse(set, "(- b b)")
	better, worse := 0, 0
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, r, 40, 8)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		ts := NewTreeScorer(set, in, rx)
		rd := ts.ApplyHeuristic(dualTree, true)
		rf := ts.ApplyHeuristic(flatTree, true)
		if !rd.Feasible || !rf.Feasible {
			t.Fatal("heuristic infeasible on feasible instance")
		}
		if rd.Cost < rf.Cost-1e-9 {
			better++
		} else if rd.Cost > rf.Cost+1e-9 {
			worse++
		}
	}
	if better <= worse {
		t.Fatalf("dual-guided tree won %d, lost %d", better, worse)
	}
}

func TestTreeScorerGapNonNegative(t *testing.T) {
	r := rng.New(9)
	set := TableISet()
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, r, 25, 6)
		rx, err := in.Relax()
		if err != nil {
			t.Fatal(err)
		}
		ts := NewTreeScorer(set, in, rx)
		tree := set.Ramped(r, 1, 4)
		res := ts.ApplyHeuristic(tree, true)
		if !res.Feasible {
			t.Fatal("infeasible")
		}
		if g := Gap(res.Cost, rx.LB); g < -1e-6 {
			t.Fatalf("negative gap %v", g)
		}
	}
}

func BenchmarkGreedyByScore500x30(b *testing.B) {
	r := rng.New(10)
	in := randomInstance(b, r, 500, 30)
	scores := make([]float64, in.M())
	for j := range scores {
		scores[j] = r.Range(-5, 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := in.GreedyByScore(scores, true)
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkTreeScore500x30(b *testing.B) {
	r := rng.New(11)
	in := randomInstance(b, r, 500, 30)
	rx, err := in.Relax()
	if err != nil {
		b.Fatal(err)
	}
	set := TableISet()
	tree := set.Full(r, 4)
	ts := NewTreeScorer(set, in, rx)
	scores := make([]float64, in.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Score(tree, scores)
	}
}
