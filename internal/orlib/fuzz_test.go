package orlib

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMKP: arbitrary bytes must never panic the parser; any input
// that parses must validate and survive a write/parse round trip.
func FuzzParseMKP(f *testing.F) {
	f.Add(sampleFile)
	f.Add("1\n2 1 0\n5 6\n1 2\n3\n")
	f.Add("")
	f.Add("1")
	f.Add("0")
	f.Add("-1")
	f.Add("1 1000000000 1000000000 0")
	f.Add("2\n1 1 0\n1\n1\n1\n1 1 0\n1\n1\n1\n")
	f.Fuzz(func(t *testing.T, src string) {
		ps, err := ParseMKP(strings.NewReader(src))
		if err != nil {
			return
		}
		for i := range ps {
			if err := ps[i].Validate(); err != nil {
				t.Fatalf("parsed problem %d invalid: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteMKP(&buf, ps); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ParseMKP(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(back) != len(ps) {
			t.Fatalf("round trip count %d != %d", len(back), len(ps))
		}
	})
}
