package orlib

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"carbon/internal/rng"
)

const sampleFile = `2
3 2 41
10 20 30
1 2 3
4 5 6
4 10
2 1 0
7 8
9 9
15
`

func TestParseMKP(t *testing.T) {
	ps, err := ParseMKP(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %d problems", len(ps))
	}
	p := ps[0]
	if p.N != 3 || p.M != 2 || p.Opt != 41 {
		t.Fatalf("header: %+v", p)
	}
	if p.Profit[2] != 30 {
		t.Fatalf("profit: %v", p.Profit)
	}
	if p.W[1][0] != 4 || p.W[1][2] != 6 {
		t.Fatalf("weights: %v", p.W)
	}
	if p.Cap[1] != 10 {
		t.Fatalf("capacities: %v", p.Cap)
	}
	q := ps[1]
	if q.N != 2 || q.M != 1 || q.Opt != 0 {
		t.Fatalf("second header: %+v", q)
	}
	if q.W[0][1] != 9 || q.Cap[0] != 15 {
		t.Fatalf("second problem: %+v", q)
	}
}

func TestParseMKPErrors(t *testing.T) {
	bad := []string{
		"",                   // no count
		"1",                  // truncated header
		"1 3 2",              // truncated opt
		"1 3 2 41 10 20",     // truncated profits
		"0",                  // zero problems
		"-3",                 // negative count
		"1 3 2 41 10 20 x 1", // non-numeric
		"1 2.5 2 41",         // fractional dimension
	}
	for _, src := range bad {
		if _, err := ParseMKP(strings.NewReader(src)); err == nil {
			t.Fatalf("ParseMKP(%q) succeeded", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	r := rng.New(1)
	var problems []MKP
	for _, sz := range []struct{ n, m int }{{5, 2}, {30, 7}} {
		p, err := GenerateMKP(r, sz.n, sz.m, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		problems = append(problems, p)
	}
	var buf bytes.Buffer
	if err := WriteMKP(&buf, problems); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMKP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(problems) {
		t.Fatalf("round trip count %d", len(back))
	}
	for pi := range problems {
		a, b := problems[pi], back[pi]
		if a.N != b.N || a.M != b.M || a.Opt != b.Opt {
			t.Fatalf("problem %d header changed", pi)
		}
		for j := range a.Profit {
			if a.Profit[j] != b.Profit[j] {
				t.Fatalf("profit %d changed", j)
			}
		}
		for i := range a.W {
			for j := range a.W[i] {
				if a.W[i][j] != b.W[i][j] {
					t.Fatalf("weight (%d,%d) changed", i, j)
				}
			}
		}
		for i := range a.Cap {
			if a.Cap[i] != b.Cap[i] {
				t.Fatalf("capacity %d changed", i)
			}
		}
	}
}

func TestGenerateMKPConventions(t *testing.T) {
	r := rng.New(2)
	p, err := GenerateMKP(r, 100, 10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, row := range p.W {
		sum := 0.0
		for _, w := range row {
			if w < 1 || w > 1000 || w != math.Trunc(w) {
				t.Fatalf("weight %v out of Chu–Beasley range", w)
			}
			sum += w
		}
		want := math.Floor(0.25 * sum)
		if p.Cap[i] != want {
			t.Fatalf("capacity %d = %v, want %v", i, p.Cap[i], want)
		}
	}
	for _, pr := range p.Profit {
		if pr < 1 || pr != math.Trunc(pr) {
			t.Fatalf("profit %v not a positive integer", pr)
		}
	}
}

func TestGenerateMKPValidation(t *testing.T) {
	r := rng.New(3)
	if _, err := GenerateMKP(r, 0, 5, 0.25); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GenerateMKP(r, 5, 5, 0); err == nil {
		t.Fatal("tightness 0 accepted")
	}
	if _, err := GenerateMKP(r, 5, 5, 1); err == nil {
		t.Fatal("tightness 1 accepted")
	}
}

func TestToCovering(t *testing.T) {
	r := rng.New(4)
	p, err := GenerateMKP(r, 50, 5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	in, err := p.ToCovering()
	if err != nil {
		t.Fatal(err)
	}
	if in.M() != 50 || in.N() != 5 {
		t.Fatalf("covering dims %dx%d", in.M(), in.N())
	}
	// The flip preserves the data: costs = profits, Q = W, B = Cap.
	for j := range p.Profit {
		if in.C[j] != p.Profit[j] {
			t.Fatal("costs differ from profits")
		}
	}
	for i := range p.Cap {
		if in.B[i] != p.Cap[i] {
			t.Fatal("requirements differ from capacities")
		}
	}
	if !in.FullSelectionFeasible() {
		t.Fatal("generated covering instance infeasible")
	}
}

func TestToCoveringRejectsEmptySearchSpace(t *testing.T) {
	p := MKP{
		N: 2, M: 1,
		Profit: []float64{1, 1},
		W:      [][]float64{{1, 1}},
		Cap:    []float64{5}, // Σw = 2 < 5: even buying all is infeasible
	}
	if _, err := p.ToCovering(); err == nil {
		t.Fatal("empty search space accepted")
	}
}

func TestPaperClasses(t *testing.T) {
	if len(PaperClasses) != 9 {
		t.Fatalf("%d classes", len(PaperClasses))
	}
	seen := map[string]bool{}
	for _, cl := range PaperClasses {
		if cl.N != 100 && cl.N != 250 && cl.N != 500 {
			t.Fatalf("bad N %d", cl.N)
		}
		if cl.M != 5 && cl.M != 10 && cl.M != 30 {
			t.Fatalf("bad M %d", cl.M)
		}
		if seen[cl.String()] {
			t.Fatalf("duplicate class %v", cl)
		}
		seen[cl.String()] = true
	}
	if PaperClasses[0].String() != "n100_m5" {
		t.Fatalf("class naming: %s", PaperClasses[0])
	}
}

func TestGenerateCoveringDeterministic(t *testing.T) {
	a, err := GenerateCovering(Class{100, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCovering(Class{100, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.C {
		if a.C[j] != b.C[j] {
			t.Fatal("same (class,index) produced different instances")
		}
	}
	c, err := GenerateCovering(Class{100, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.C {
		if a.C[j] != c.C[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different indices produced identical instances")
	}
}

func TestGenerateCoveringAllClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full class sweep in -short mode")
	}
	for _, cl := range PaperClasses {
		in, err := GenerateCovering(cl, 0)
		if err != nil {
			t.Fatalf("%v: %v", cl, err)
		}
		if in.M() != cl.N || in.N() != cl.M {
			t.Fatalf("%v: got %dx%d", cl, in.M(), in.N())
		}
		rx, err := in.Relax()
		if err != nil {
			t.Fatalf("%v: relax: %v", cl, err)
		}
		if rx.LB <= 0 {
			t.Fatalf("%v: non-positive LP bound %v", cl, rx.LB)
		}
	}
}
