// Package orlib reproduces the paper's §V-A instance setup. The paper
// takes Multidimensional Knapsack Problem (MKP) instances from the
// OR-library, flips every ≤-constraint to ≥ and checks the resulting
// covering instance has a non-empty search space.
//
// The module is offline, so alongside a parser/writer for the genuine
// OR-library text format (drop the real files in and they parse
// unchanged), the package provides a seeded synthetic generator that
// follows the Chu–Beasley conventions the OR-library MKP files were
// built with: integer weights uniform on [1,1000], capacities set as a
// tightness fraction of the column sums, and profits correlated with the
// weight sums. The nine paper classes (n ∈ {100,250,500} ×
// m ∈ {5,10,30}) are exposed as a registry.
package orlib

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"carbon/internal/covering"
	"carbon/internal/rng"
)

// MKP is one multidimensional knapsack instance:
// max p·x  s.t.  W·x ≤ cap,  x binary. Opt is the known optimum
// recorded in the file (0 when unknown).
type MKP struct {
	N      int // variables
	M      int // constraints
	Opt    float64
	Profit []float64   // length N
	W      [][]float64 // M×N
	Cap    []float64   // length M
}

// Validate checks internal consistency.
func (p *MKP) Validate() error {
	if p.N <= 0 || p.M <= 0 {
		return fmt.Errorf("orlib: bad dimensions %dx%d", p.N, p.M)
	}
	if len(p.Profit) != p.N || len(p.Cap) != p.M || len(p.W) != p.M {
		return errors.New("orlib: slice lengths disagree with dimensions")
	}
	for i, row := range p.W {
		if len(row) != p.N {
			return fmt.Errorf("orlib: row %d has %d weights, want %d", i, len(row), p.N)
		}
	}
	return nil
}

// ParseMKP reads the OR-library multi-problem MKP format
// (mknap/mknapcb): a problem count, then for each problem a header
// "n m opt" followed by n profits, m×n weights and m capacities.
// Whitespace (including newlines) is insignificant.
func ParseMKP(r io.Reader) ([]MKP, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	sc.Split(bufio.ScanWords)
	next := func() (float64, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return 0, io.ErrUnexpectedEOF
		}
		return strconv.ParseFloat(sc.Text(), 64)
	}
	nextInt := func() (int, error) {
		v, err := next()
		if err != nil {
			return 0, err
		}
		if v != math.Trunc(v) {
			return 0, fmt.Errorf("orlib: expected integer, got %v", v)
		}
		return int(v), nil
	}

	count, err := nextInt()
	if err != nil {
		return nil, fmt.Errorf("orlib: reading problem count: %w", err)
	}
	if count <= 0 || count > 1000 {
		return nil, fmt.Errorf("orlib: implausible problem count %d", count)
	}
	problems := make([]MKP, 0, count)
	for pi := 0; pi < count; pi++ {
		var p MKP
		if p.N, err = nextInt(); err != nil {
			return nil, fmt.Errorf("orlib: problem %d: n: %w", pi, err)
		}
		if p.M, err = nextInt(); err != nil {
			return nil, fmt.Errorf("orlib: problem %d: m: %w", pi, err)
		}
		if p.Opt, err = next(); err != nil {
			return nil, fmt.Errorf("orlib: problem %d: opt: %w", pi, err)
		}
		if p.N <= 0 || p.M <= 0 || p.N > 1_000_000 || p.M > 10_000 {
			return nil, fmt.Errorf("orlib: problem %d: implausible size %dx%d", pi, p.N, p.M)
		}
		p.Profit = make([]float64, p.N)
		for j := range p.Profit {
			if p.Profit[j], err = next(); err != nil {
				return nil, fmt.Errorf("orlib: problem %d: profit %d: %w", pi, j, err)
			}
		}
		p.W = make([][]float64, p.M)
		for i := range p.W {
			p.W[i] = make([]float64, p.N)
			for j := range p.W[i] {
				if p.W[i][j], err = next(); err != nil {
					return nil, fmt.Errorf("orlib: problem %d: weight (%d,%d): %w", pi, i, j, err)
				}
			}
		}
		p.Cap = make([]float64, p.M)
		for i := range p.Cap {
			if p.Cap[i], err = next(); err != nil {
				return nil, fmt.Errorf("orlib: problem %d: capacity %d: %w", pi, i, err)
			}
		}
		problems = append(problems, p)
	}
	return problems, nil
}

// WriteMKP emits problems in the same OR-library format ParseMKP reads.
func WriteMKP(w io.Writer, problems []MKP) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(problems))
	for _, p := range problems {
		if err := p.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(bw, "%d %d %s\n", p.N, p.M, trimFloat(p.Opt))
		writeVec(bw, p.Profit)
		for _, row := range p.W {
			writeVec(bw, row)
		}
		writeVec(bw, p.Cap)
	}
	return bw.Flush()
}

func writeVec(w *bufio.Writer, v []float64) {
	for j, x := range v {
		if j > 0 {
			if j%10 == 0 {
				w.WriteByte('\n')
			} else {
				w.WriteByte(' ')
			}
		}
		w.WriteString(trimFloat(x))
	}
	w.WriteByte('\n')
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// ToCovering applies the paper's transformation: every ≤-constraint of
// the MKP becomes a ≥-constraint, profits become costs, producing
// min p·x s.t. W·x ≥ cap over binary x. It errors when the result has an
// empty search space (the paper discards such instances).
func (p *MKP) ToCovering() (*covering.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in, err := covering.New(p.Profit, p.W, p.Cap)
	if err != nil {
		return nil, err
	}
	if !in.FullSelectionFeasible() {
		return nil, errors.New("orlib: transformed instance has an empty search space")
	}
	return in, nil
}

// GenerateMKP builds a synthetic MKP following the Chu–Beasley
// conventions: integer weights uniform on [1,1000], capacities
// tightness·Σⱼwᵢⱼ, profits Σᵢwᵢⱼ/m + U[0,500] (correlated with weight).
// tightness must lie in (0,1).
func GenerateMKP(r *rng.Rand, n, m int, tightness float64) (MKP, error) {
	if n <= 0 || m <= 0 {
		return MKP{}, fmt.Errorf("orlib: bad dimensions %dx%d", n, m)
	}
	if tightness <= 0 || tightness >= 1 {
		return MKP{}, fmt.Errorf("orlib: tightness %v outside (0,1)", tightness)
	}
	p := MKP{N: n, M: m}
	p.W = make([][]float64, m)
	rowSums := make([]float64, m)
	colSums := make([]float64, n)
	for i := 0; i < m; i++ {
		p.W[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			w := float64(r.IntRange(1, 1000))
			p.W[i][j] = w
			rowSums[i] += w
			colSums[j] += w
		}
	}
	p.Cap = make([]float64, m)
	for i := 0; i < m; i++ {
		p.Cap[i] = math.Floor(tightness * rowSums[i])
		if p.Cap[i] < 1 {
			p.Cap[i] = 1
		}
	}
	p.Profit = make([]float64, n)
	for j := 0; j < n; j++ {
		p.Profit[j] = math.Floor(colSums[j]/float64(m) + 500*r.Float64())
		if p.Profit[j] < 1 {
			p.Profit[j] = 1
		}
	}
	return p, nil
}

// Class identifies one of the paper's nine instance classes.
type Class struct {
	N int // decision variables ("# Variables" in Tables III/IV)
	M int // constraints ("# Constraints")
}

func (c Class) String() string { return fmt.Sprintf("n%d_m%d", c.N, c.M) }

// PaperClasses are the nine classes of §V-A in table order.
var PaperClasses = []Class{
	{100, 5}, {100, 10}, {100, 30},
	{250, 5}, {250, 10}, {250, 30},
	{500, 5}, {500, 10}, {500, 30},
}

// DefaultTightness is the capacity fraction used for generated
// instances; 0.25 is the canonical Chu–Beasley setting.
const DefaultTightness = 0.25

// GenerateCovering produces a covering instance of the given class with
// a deterministic per-(class, index) seed, applying the MKP→covering
// flip and the non-empty-search-space guarantee.
func GenerateCovering(cl Class, index int) (*covering.Instance, error) {
	seed := uint64(cl.N)*1_000_003 + uint64(cl.M)*10_007 + uint64(index)*101 + 12345
	r := rng.New(seed)
	mkp, err := GenerateMKP(r, cl.N, cl.M, DefaultTightness)
	if err != nil {
		return nil, err
	}
	return mkp.ToCovering()
}
