package codba

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/orlib"
	"carbon/internal/stats"
)

func smallMarket(t testing.TB) *bcpop.Market {
	t.Helper()
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: 60, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize = 10
	cfg.ULArchiveSize = 10
	cfg.ULEvalBudget = 100
	cfg.SubPopSize = 4
	cfg.SubGens = 3
	cfg.LLArchiveSize = 10
	cfg.LLEvalBudget = 1500
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ULCrossoverProb != 0.85 || cfg.ULMutationProb != 0.01 {
		t.Fatalf("Table II UL operators: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.ULPopSize = 1 },
		func(c *Config) { c.SubPopSize = 1 },
		func(c *Config) { c.SubGens = 0 },
		func(c *Config) { c.LLEvalBudget = 1 },
		func(c *Config) { c.Elites = -1 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRunProducesResult(t *testing.T) {
	mk := smallMarket(t)
	res, err := Run(mk, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gens == 0 {
		t.Fatal("no generations")
	}
	if res.ULEvals > 100 || res.LLEvals > 1500 {
		t.Fatalf("budgets exceeded: %d/%d", res.ULEvals, res.LLEvals)
	}
	if len(res.BestPrice) != mk.Leaders() {
		t.Fatalf("price length %d", len(res.BestPrice))
	}
	if res.BestGapPct < 0 {
		t.Fatalf("gap %v", res.BestGapPct)
	}
	// The defining property of the nested scheme: LL evaluations dwarf
	// UL evaluations per generation.
	if res.LLEvals <= res.ULEvals {
		t.Fatalf("nested decomposition should burn LL budget fastest: UL=%d LL=%d",
			res.ULEvals, res.LLEvals)
	}
	if m := stats.Monotonicity(res.ULCurve.Y, +1); m != 1 {
		t.Fatalf("archive curve not monotone: %v", m)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := smallMarket(t)
	a, err := Run(mk, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRevenue != b.BestRevenue || a.BestGapPct != b.BestGapPct ||
		a.LLEvals != b.LLEvals {
		t.Fatal("same seed diverged")
	}
}

func TestEarlyStopSavesBudget(t *testing.T) {
	// With SubGens large, early stopping must kick in well before the
	// worst-case spend on at least some candidates.
	mk := smallMarket(t)
	cfg := smallConfig(3)
	cfg.SubGens = 50
	cfg.LLEvalBudget = 100000
	cfg.ULEvalBudget = 20 // two generations of 10
	res, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worstCase := res.Gens*cfg.ULPopSize*cfg.SubPopSize*cfg.SubGens + res.Gens
	if res.LLEvals >= worstCase {
		t.Fatalf("no early stopping: %d LL evals = worst case %d", res.LLEvals, worstCase)
	}
}
