// Package codba re-implements CODBA (Chaabani, Bechikh & Ben Said,
// CEC 2015), the third bi-level algorithm discussed in the paper's
// related-work section: "a co-evolutionary decomposition-based
// algorithm... generating from the upper-level solutions many LL
// populations. The authors then evaluate in parallel each
// sub-population. Each individual of these LL populations mates using
// crossover with the best archived LL solutions until no more
// improvement occurs at LL."
//
// The paper's criticism — that despite the "co-evolutionary" label the
// scheme is a nested optimizer, because every upper-level candidate
// spawns and drains its own lower-level sub-population — is visible in
// this implementation's budget accounting: lower-level evaluations are
// consumed per upper-level candidate, so the upper level sees only
// LLBudget / (SubPopSize × SubGens) candidates in total. The
// sub-populations do run in parallel (the part of CODBA that is honestly
// parallel), via the same striped-worker scheme as the other algorithms.
package codba

import (
	"errors"
	"fmt"

	"carbon/internal/archive"
	"carbon/internal/bcpop"
	"carbon/internal/covering"
	"carbon/internal/ga"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/stats"
)

// Config parameterizes CODBA. Upper-level operators mirror Table II so
// cross-algorithm comparisons isolate the architecture.
type Config struct {
	Seed uint64

	ULPopSize       int
	ULArchiveSize   int
	ULEvalBudget    int
	ULCrossoverProb float64
	ULMutationProb  float64
	ULSBXEta        float64
	ULPolyEta       float64

	// Decomposition: each UL candidate gets its own LL sub-population
	// evolved for at most SubGens generations, stopping early when a
	// generation brings no improvement (the paper's "until no more
	// improvement occurs at LL").
	SubPopSize      int
	SubGens         int
	LLArchiveSize   int // archive of elite baskets that sub-populations mate with
	LLEvalBudget    int
	LLCrossoverProb float64
	LLMutationProb  float64 // 0 = auto 1/#variables

	Elites  int
	Workers int
}

// DefaultConfig returns Table II-compatible parameters with the CODBA
// decomposition knobs at the cited paper's scale.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		ULPopSize:       100,
		ULArchiveSize:   100,
		ULEvalBudget:    50000,
		ULCrossoverProb: 0.85,
		ULMutationProb:  0.01,
		ULSBXEta:        15,
		ULPolyEta:       20,
		SubPopSize:      10,
		SubGens:         5,
		LLArchiveSize:   100,
		LLEvalBudget:    50000,
		LLCrossoverProb: 0.85,
		Elites:          1,
	}
}

// Validate rejects unusable configurations.
func (c *Config) Validate() error {
	switch {
	case c.ULPopSize < 2:
		return errors.New("codba: UL population must be at least 2")
	case c.ULArchiveSize < 1 || c.LLArchiveSize < 1:
		return errors.New("codba: archive sizes must be positive")
	case c.SubPopSize < 2 || c.SubGens < 1:
		return errors.New("codba: sub-population needs size >= 2 and gens >= 1")
	case c.ULEvalBudget < c.ULPopSize:
		return errors.New("codba: UL budget below one generation")
	case c.LLEvalBudget < c.SubPopSize:
		return errors.New("codba: LL budget below one sub-generation")
	case c.Elites < 0 || c.Elites >= c.ULPopSize:
		return errors.New("codba: bad elite count")
	}
	return nil
}

// Result summarizes one CODBA run.
type Result struct {
	BestPrice   []float64
	BestRevenue float64
	BestGapPct  float64
	ULEvals     int
	LLEvals     int
	Gens        int
	ULCurve     stats.Series
	GapCurve    stats.Series
}

// Run executes CODBA until either budget is exhausted.
func Run(mk *bcpop.Market, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LLMutationProb == 0 {
		cfg.LLMutationProb = 1 / float64(mk.Bundles())
	}
	workers := par.Workers(cfg.Workers)
	evs := make([]*bcpop.Evaluator, workers)
	for i := range evs {
		ev, err := bcpop.NewEvaluator(mk, covering.TableISet())
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	r := rng.New(cfg.Seed)
	bounds := mk.PriceBounds()
	m := mk.Bundles()

	pop := make([][]float64, cfg.ULPopSize)
	for i := range pop {
		pop[i] = bounds.RandomVector(r)
	}
	fit := make([]float64, cfg.ULPopSize)
	gaps := make([]float64, cfg.ULPopSize)
	ulArch := archive.New[[]float64](cfg.ULArchiveSize, false, nil)
	llArch := archive.New[[]bool](cfg.LLArchiveSize, true, nil)

	res := &Result{}
	ulUsed, llUsed := 0, 0
	llPerCandidate := cfg.SubPopSize * cfg.SubGens
	bestGap := 0.0

	// Per-candidate rng seeds are pre-drawn on the main goroutine so the
	// parallel sub-population solves stay deterministic.
	for ulUsed+cfg.ULPopSize <= cfg.ULEvalBudget &&
		llUsed+cfg.ULPopSize*llPerCandidate <= cfg.LLEvalBudget {

		seeds := make([]uint64, len(pop))
		for i := range seeds {
			seeds[i] = r.Uint64()
		}
		elite := llArch.Entries()
		llSpent := make([]int, len(pop))
		evalStriped(len(pop), workers, func(i, w int) {
			out, spent := solveSub(evs[w], pop[i], rng.New(seeds[i]), elite, cfg, m)
			llSpent[i] = spent
			if out.Feasible {
				fit[i] = out.Revenue
			} else {
				fit[i] = 0
			}
			gaps[i] = out.GapPct
		})
		ulUsed += len(pop)
		for _, s := range llSpent {
			llUsed += s
		}

		bestI := 0
		for i := range fit {
			if fit[i] > fit[bestI] {
				bestI = i
			}
		}
		for i, x := range pop {
			if ulArch.Add(append([]float64(nil), x...), fit[i]) && i == bestI {
				bestGap = gaps[i]
			}
		}
		res.Gens++
		xAxis := float64(ulUsed + llUsed)
		if be, ok := ulArch.Best(); ok {
			res.ULCurve.X = append(res.ULCurve.X, xAxis)
			res.ULCurve.Y = append(res.ULCurve.Y, be.Fitness)
		}
		res.GapCurve.X = append(res.GapCurve.X, xAxis)
		res.GapCurve.Y = append(res.GapCurve.Y, gaps[bestI])

		// Refresh the elite-basket archive from the generation winner:
		// re-solve the best candidate's lower level once and archive the
		// basket the next generation's sub-populations will mate with.
		if llUsed < cfg.LLEvalBudget {
			if out, basket, err := evs[0].EvalSelection(pop[bestI], make([]bool, m)); err == nil {
				llUsed++
				llArch.Add(append([]bool(nil), basket...), out.LLCost)
			}
		}

		pop = breed(r, pop, fit, bounds, cfg)
	}

	res.ULEvals, res.LLEvals = ulUsed, llUsed
	if be, ok := ulArch.Best(); ok {
		res.BestPrice = be.Item
		res.BestRevenue = be.Fitness
		res.BestGapPct = bestGap
	}
	return res, nil
}

// solveSub evolves one lower-level sub-population for the candidate
// pricing: random baskets seeded with archived elites, two-point
// crossover against the elite pool, bit-swap mutation, early stop when a
// generation brings no improvement. Returns the best paired result and
// the number of LL evaluations consumed.
func solveSub(ev *bcpop.Evaluator, price []float64, r *rng.Rand,
	elite []archive.Entry[[]bool], cfg Config, m int) (bcpop.Result, int) {

	sub := make([][]bool, cfg.SubPopSize)
	for i := range sub {
		if i < len(elite) {
			sub[i] = append([]bool(nil), elite[i].Item...)
			continue
		}
		y := make([]bool, m)
		for j := range y {
			y[j] = r.Bool(0.5)
		}
		sub[i] = y
	}
	fit := make([]float64, cfg.SubPopSize)
	spent := 0
	var best bcpop.Result
	bestCost := 0.0
	haveBest := false

	evaluate := func() int {
		bestI := 0
		for i, y := range sub {
			out, _, err := ev.EvalSelection(price, y)
			if err != nil {
				panic(fmt.Sprintf("codba: %v", err))
			}
			spent++
			fit[i] = out.LLCost
			if fit[i] < fit[bestI] {
				bestI = i
			}
			if !haveBest || out.LLCost < bestCost {
				best, bestCost, haveBest = out, out.LLCost, true
			}
		}
		return bestI
	}
	evaluate()
	for g := 1; g < cfg.SubGens; g++ {
		prevBest := bestCost
		better := func(i, j int) bool { return fit[i] < fit[j] }
		next := make([][]bool, 0, len(sub))
		// Keep the current best.
		bi := 0
		for i := range fit {
			if fit[i] < fit[bi] {
				bi = i
			}
		}
		next = append(next, append([]bool(nil), sub[bi]...))
		for len(next) < len(sub) {
			p1 := sub[ga.BinaryTournament(r, len(sub), better)]
			// Mate with an archived elite when available (the cited
			// paper's "mate using crossover with the best archived LL
			// solutions"), otherwise within the sub-population.
			var p2 []bool
			if len(elite) > 0 && r.Bool(0.5) {
				p2 = elite[r.Intn(len(elite))].Item
			} else {
				p2 = sub[ga.BinaryTournament(r, len(sub), better)]
			}
			var c1, c2 []bool
			if r.Bool(cfg.LLCrossoverProb) {
				c1, c2 = ga.TwoPointCrossover(r, p1, p2)
			} else {
				c1 = append([]bool(nil), p1...)
				c2 = append([]bool(nil), p2...)
			}
			ga.SwapMutateInPlace(r, c1, cfg.LLMutationProb)
			ga.SwapMutateInPlace(r, c2, cfg.LLMutationProb)
			next = append(next, c1)
			if len(next) < len(sub) {
				next = append(next, c2)
			}
		}
		sub = next
		evaluate()
		if bestCost >= prevBest-1e-9 {
			break // no more improvement at LL
		}
	}
	return best, spent
}

func breed(r *rng.Rand, pop [][]float64, fit []float64, bounds ga.Bounds, cfg Config) [][]float64 {
	better := func(i, j int) bool { return fit[i] > fit[j] }
	next := make([][]float64, 0, len(pop))
	bi := 0
	for i := range fit {
		if better(i, bi) {
			bi = i
		}
	}
	for e := 0; e < cfg.Elites; e++ {
		next = append(next, append([]float64(nil), pop[bi]...))
	}
	for len(next) < len(pop) {
		p1 := pop[ga.BinaryTournament(r, len(pop), better)]
		p2 := pop[ga.BinaryTournament(r, len(pop), better)]
		var c1, c2 []float64
		if r.Bool(cfg.ULCrossoverProb) {
			c1, c2 = ga.SBX(r, p1, p2, bounds, cfg.ULSBXEta)
		} else {
			c1 = append([]float64(nil), p1...)
			c2 = append([]float64(nil), p2...)
		}
		ga.PolynomialMutateInPlace(r, c1, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		ga.PolynomialMutateInPlace(r, c2, bounds, cfg.ULPolyEta, cfg.ULMutationProb)
		next = append(next, c1)
		if len(next) < len(pop) {
			next = append(next, c2)
		}
	}
	return next
}

// evalStriped mirrors core.evalStriped: one stripe per worker, each
// owning its warm LP solver; deterministic because all randomness comes
// from pre-drawn per-item seeds.
func evalStriped(n, workers int, fn func(i, worker int)) {
	if workers > n {
		workers = n
	}
	par.ForEach(workers, workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		for i := lo; i < hi; i++ {
			fn(i, w)
		}
	})
}
