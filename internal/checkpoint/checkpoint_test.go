package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample returns a structurally valid state for codec tests.
func sample() *State {
	return &State{
		Fingerprint: "v1|pop=4/4|test",
		RngState:    [4]uint64{1, 2, 3, 4},
		Prey:        [][]float64{{1, 2}, {3, 4}},
		Predators:   []string{"(+ c q)", "d"},
		ULUsed:      8,
		LLUsed:      16,
		Gens:        2,
		ULArchP:     [][]float64{{1, 2}},
		ULArchF:     []float64{42.5},
		GPArchT:     []string{"(+ c q)"},
		GPArchF:     []float64{0.25},
		ULCurveX:    []float64{24, 48},
		ULCurveY:    []float64{40, 42.5},
		GapCurveX:   []float64{24, 48},
		GapCurveY:   []float64{1, 0.25},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sample()
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(st)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed state:\n%s\n%s", a, b)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":        "",
		"not json":     "hello",
		"truncated":    good[:len(good)/2],
		"trailing":     good + "{}",
		"wrong schema": strings.Replace(good, Schema, "carbon.checkpoint/v999", 1),
		"bit flip":     strings.Replace(good, `"ul_used": 8`, `"ul_used": 9`, 1),
		"crc zero":     strings.Replace(good, `"crc32": `, `"crc32": 1`, 1),
	}
	if cases["bit flip"] == good {
		t.Fatal("bit-flip case did not alter the payload; update the test")
	}
	for name, src := range cases {
		if _, err := DecodeBytes([]byte(src)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestValidateRejectsInconsistentStates(t *testing.T) {
	breaks := map[string]func(*State){
		"no fingerprint": func(s *State) { s.Fingerprint = "" },
		"zero rng":       func(s *State) { s.RngState = [4]uint64{} },
		"no prey":        func(s *State) { s.Prey = nil },
		"no predators":   func(s *State) { s.Predators = nil },
		"ragged prey":    func(s *State) { s.Prey[1] = []float64{1} },
		"empty prey":     func(s *State) { s.Prey = [][]float64{{}, {}} },
		"empty tree":     func(s *State) { s.Predators[0] = "" },
		"negative gens":  func(s *State) { s.Gens = -1 },
		"ragged UL arch": func(s *State) { s.ULArchF = s.ULArchF[:0] },
		"ragged GP arch": func(s *State) { s.GPArchT = append(s.GPArchT, "c") },
		"ragged curve":   func(s *State) { s.ULCurveY = s.ULCurveY[:1] },
		"ragged gaps":    func(s *State) { s.GapCurveX = nil },
	}
	for name, mutate := range breaks {
		st := sample()
		mutate(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		var buf bytes.Buffer
		if err := st.Encode(&buf); err == nil {
			t.Errorf("%s: encoded", name)
		}
	}
	if err := (*State)(nil).Validate(); err == nil {
		t.Error("nil state accepted")
	}
}

func TestWriteFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.ckpt.json")

	first := sample()
	if err := first.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Gens = 7
	if err := second.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gens != 7 {
		t.Fatalf("loaded generation %d, want 7", got.Gens)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteFileCleansUpOnEncodeFailure(t *testing.T) {
	dir := t.TempDir()
	bad := sample()
	bad.Fingerprint = ""
	if err := bad.WriteFile(filepath.Join(dir, "x.json")); err == nil {
		t.Fatal("invalid state written")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("directory not clean after failed write: %v", entries)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); !os.IsNotExist(err) {
		t.Fatalf("want os.IsNotExist error, got %v", err)
	}
}
