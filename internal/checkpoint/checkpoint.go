// Package checkpoint defines the durable snapshot format for CARBON
// engine state: a versioned, integrity-checked, human-inspectable JSON
// envelope holding everything a run needs to continue exactly where it
// stopped — populations with their encodings, archives, convergence
// curves, budget counters and the PRNG stream.
//
// The package is pure data: it knows how to serialize, validate and
// atomically persist a State, but not how to build one from an engine
// or rebuild an engine from one. That wiring lives in internal/core
// (Engine.Snapshot / core.Restore), which keeps the dependency arrow
// pointing one way — core imports checkpoint, never the reverse — so
// tools that only shuffle snapshot files (spool scanners, inspectors)
// need none of the evolutionary machinery.
//
// On-disk format: a JSON envelope
//
//	{"schema": "carbon.checkpoint/v2", "crc32": N, "state": {...}}
//
// where crc32 is the IEEE checksum of the exact state bytes. Decode
// rejects unknown schemas, checksum mismatches, trailing garbage and
// structurally inconsistent states, so a truncated or bit-flipped spool
// file surfaces as an error instead of a half-restored engine.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"carbon/internal/surrogate"
)

// Schema versions the snapshot format. v1 was the unversioned,
// unchecksummed core.Checkpoint JSON; v2 added this envelope. Decode
// refuses anything else — resuming from a format you do not understand
// is how half-restored state corrupts a run.
const Schema = "carbon.checkpoint/v2"

// State is a complete engine snapshot between generations. Trees travel
// as their canonical S-expressions (gp.Tree.String / gp.Parse), price
// vectors as plain float slices, so the file stays inspectable with any
// JSON tool.
//
// What is deliberately NOT stored: the market (instances are regenerable
// from their (class, index) spec or loadable from OR-library files) and
// the warm-LP solver caches (the first generation after resume re-warms
// them; see the determinism note on core.Restore).
type State struct {
	// Fingerprint identifies the (config, market shape) pair the state
	// belongs to. core.Restore refuses a mismatch.
	Fingerprint string `json:"fingerprint"`

	RngState  [4]uint64   `json:"rng_state"`
	Prey      [][]float64 `json:"prey"`
	Predators []string    `json:"predators"`
	ULUsed    int         `json:"ul_used"`
	LLUsed    int         `json:"ll_used"`
	Gens      int         `json:"gens"`
	ULArchP   [][]float64 `json:"ul_arch_prices"`
	ULArchF   []float64   `json:"ul_arch_fitness"`
	GPArchT   []string    `json:"gp_arch_trees"`
	GPArchF   []float64   `json:"gp_arch_fitness"`
	ULCurveX  []float64   `json:"ul_curve_x"`
	ULCurveY  []float64   `json:"ul_curve_y"`
	GapCurveX []float64   `json:"gap_curve_x"`
	GapCurveY []float64   `json:"gap_curve_y"`

	// Surrogate is the online value model's state (nil when the run had
	// surrogate-assisted skipping off). Additive and optional: v2
	// envelopes without it decode fine, and core.Restore ignores it when
	// the restoring config has the surrogate disabled — which is what
	// lets a resume flip surrogate mode without a fingerprint change.
	Surrogate *surrogate.State `json:"surrogate,omitempty"`
}

// envelope is the on-disk frame around a State.
type envelope struct {
	Schema string          `json:"schema"`
	CRC32  uint32          `json:"crc32"`
	State  json.RawMessage `json:"state"`
}

// Validate checks the structural invariants every decodable State must
// satisfy. It cannot know population sizes or gene counts — those are
// config-dependent and checked again by core.Restore — but it rejects
// everything that is inconsistent on its own terms.
func (st *State) Validate() error {
	switch {
	case st == nil:
		return errors.New("checkpoint: nil state")
	case st.Fingerprint == "":
		return errors.New("checkpoint: empty fingerprint")
	case st.RngState[0]|st.RngState[1]|st.RngState[2]|st.RngState[3] == 0:
		return errors.New("checkpoint: all-zero rng state")
	case len(st.Prey) == 0:
		return errors.New("checkpoint: no prey population")
	case len(st.Predators) == 0:
		return errors.New("checkpoint: no predator population")
	case st.ULUsed < 0 || st.LLUsed < 0 || st.Gens < 0:
		return errors.New("checkpoint: negative counters")
	case len(st.ULArchP) != len(st.ULArchF):
		return fmt.Errorf("checkpoint: UL archive arrays disagree (%d prices, %d fitnesses)",
			len(st.ULArchP), len(st.ULArchF))
	case len(st.GPArchT) != len(st.GPArchF):
		return fmt.Errorf("checkpoint: GP archive arrays disagree (%d trees, %d fitnesses)",
			len(st.GPArchT), len(st.GPArchF))
	case len(st.ULCurveX) != len(st.ULCurveY):
		return errors.New("checkpoint: UL curve arrays disagree")
	case len(st.GapCurveX) != len(st.GapCurveY):
		return errors.New("checkpoint: gap curve arrays disagree")
	}
	dim := len(st.Prey[0])
	if dim == 0 {
		return errors.New("checkpoint: zero-dimensional prey")
	}
	for i, x := range st.Prey {
		if len(x) != dim {
			return fmt.Errorf("checkpoint: prey %d has %d genes, others have %d", i, len(x), dim)
		}
	}
	for i, t := range st.Predators {
		if t == "" {
			return fmt.Errorf("checkpoint: predator %d is empty", i)
		}
	}
	if st.Surrogate != nil {
		if err := st.Surrogate.Validate(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}

// Encode writes the state as a checksummed envelope. The state payload
// is marshaled compactly; the envelope itself is indented so the schema
// stamp and checksum stay eyeballable at the top of the file.
func (st *State) Encode(w io.Writer) error {
	if err := st.Validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("checkpoint: marshaling state: %w", err)
	}
	env := envelope{Schema: Schema, CRC32: crc32.ChecksumIEEE(payload), State: payload}
	out, err := json.MarshalIndent(&env, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshaling envelope: %w", err)
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// Decode parses and verifies an envelope written by Encode. Any
// corruption — truncation, bit flips, trailing garbage, schema drift,
// structural inconsistency — returns an error; Decode never panics and
// never returns a partially valid State.
func Decode(r io.Reader) (*State, error) {
	dec := json.NewDecoder(r)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing envelope: %w", err)
	}
	if dec.More() {
		return nil, errors.New("checkpoint: trailing data after envelope")
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("checkpoint: schema %q, want %q", env.Schema, Schema)
	}
	// The checksum covers the compacted payload, so it is insensitive to
	// JSON reformatting (Encode itself indents the envelope) but catches
	// any content change.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.State); err != nil {
		return nil, fmt.Errorf("checkpoint: compacting state: %w", err)
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != env.CRC32 {
		return nil, fmt.Errorf("checkpoint: crc mismatch (have %08x, header says %08x)", got, env.CRC32)
	}
	st := &State{}
	if err := json.Unmarshal(env.State, st); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing state: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// DecodeBytes is Decode over an in-memory snapshot.
func DecodeBytes(b []byte) (*State, error) { return Decode(bytes.NewReader(b)) }

// WriteFile persists the state atomically: encode to a temp file in the
// target directory, fsync, then rename over path. A crash at any moment
// leaves either the previous snapshot or the new one, never a torn mix —
// the property the serve spool depends on.
func (st *State) WriteFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := st.Encode(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("checkpoint: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads and verifies a snapshot written by WriteFile.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return st, nil
}
