package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the snapshot decoder with arbitrary bytes: it must
// never panic, and anything it accepts must be internally consistent and
// re-encodable to an equivalent snapshot. This is the crash-recovery
// guarantee of the serve spool — a torn or garbage file is an error, not
// a half-restored engine.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":"carbon.checkpoint/v2","crc32":0,"state":{}}`))
	f.Add(good[:len(good)/2])
	f.Add(append(append([]byte(nil), good...), '0'))
	f.Add(bytes.Replace(good, []byte(`"gens"`), []byte(`"gexs"`), 1))
	f.Add(bytes.ToUpper(good))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("decoded state fails Validate: %v", verr)
		}
		var out bytes.Buffer
		if eerr := st.Encode(&out); eerr != nil {
			t.Fatalf("decoded state fails to re-encode: %v", eerr)
		}
		again, rerr := Decode(&out)
		if rerr != nil {
			t.Fatalf("re-encoded state fails to decode: %v", rerr)
		}
		if again.Fingerprint != st.Fingerprint || again.Gens != st.Gens ||
			len(again.Prey) != len(st.Prey) || len(again.Predators) != len(st.Predators) {
			t.Fatal("re-encode round trip changed the state")
		}
	})
}
