package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func collect(s *Site, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = s.Strike() != nil
	}
	return out
}

func TestNilSiteAndInjectorAreInert(t *testing.T) {
	var s *Site
	if err := s.Strike(); err != nil {
		t.Fatalf("nil site fired: %v", err)
	}
	if c, f := s.Stats(); c != 0 || f != 0 {
		t.Fatalf("nil site stats = %d, %d", c, f)
	}
	var inj *Injector
	if got := inj.Lookup(SiteLPSolve); got != nil {
		t.Fatalf("nil injector Lookup = %v", got)
	}
	if got := inj.Names(); got != nil {
		t.Fatalf("nil injector Names = %v", got)
	}
}

func TestEveryAfterLimit(t *testing.T) {
	inj := New(1)
	s := inj.Site("x", Rule{Every: 2, After: 3, Limit: 2})
	// Calls 1..3 immune; eligible indices 4,5,6,... fire when
	// (n-After)%Every==0 → calls 5, 7 fire, then Limit stops it.
	want := []bool{false, false, false, false, true, false, true, false, false, false}
	got := collect(s, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if c, f := s.Stats(); c != 10 || f != 2 {
		t.Fatalf("stats = %d, %d; want 10, 2", c, f)
	}
}

func TestEveryOneFiresEachEligibleCall(t *testing.T) {
	s := New(1).Site("x", Rule{Every: 1, After: 2})
	got := collect(s, 5)
	want := []bool{false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		return collect(New(seed).Site("p", Rule{Prob: 0.5}), 64)
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-call fire patterns")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times — hash looks degenerate", fired, len(a))
	}
}

func TestErrorWrapsSentinel(t *testing.T) {
	s := New(1).Site(SiteLPSolve, Rule{Every: 1})
	err := s.Strike()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), SiteLPSolve) {
		t.Fatalf("err %q does not name the site", err)
	}
}

func TestLatencyOnly(t *testing.T) {
	s := New(1).Site("slow", Rule{Every: 1, Latency: time.Millisecond, LatencyOnly: true})
	start := time.Now()
	if err := s.Strike(); err != nil {
		t.Fatalf("latency-only strike returned error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency-only strike did not sleep")
	}
	if _, f := s.Stats(); f != 1 {
		t.Fatalf("fired = %d, want 1", f)
	}
}

func TestConcurrentStrikeHonorsLimit(t *testing.T) {
	s := New(1).Site("c", Rule{Every: 1, Limit: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if s.Strike() != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 10 {
		t.Fatalf("fired %d times under concurrency, want exactly 10", fired)
	}
	if c, f := s.Stats(); c != 800 || f != 10 {
		t.Fatalf("stats = %d, %d; want 800, 10", c, f)
	}
}

func TestParse(t *testing.T) {
	inj, err := Parse("lp.solve:every=1,after=30,limit=8; spool.write : prob=0.25 , latency=5ms", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := inj.Lookup(SiteLPSolve)
	if s == nil {
		t.Fatal("lp.solve site missing")
	}
	if s.rule != (Rule{Every: 1, After: 30, Limit: 8}) {
		t.Fatalf("lp.solve rule = %+v", s.rule)
	}
	w := inj.Lookup(SiteSpoolWrite)
	if w == nil {
		t.Fatal("spool.write site missing")
	}
	if w.rule.Prob != 0.25 || w.rule.Latency != 5*time.Millisecond {
		t.Fatalf("spool.write rule = %+v", w.rule)
	}
	if names := inj.Names(); len(names) != 2 || names[0] != SiteLPSolve || names[1] != SiteSpoolWrite {
		t.Fatalf("Names = %v", names)
	}
	if inj.Lookup("checkpoint.write") != nil {
		t.Fatal("uninstalled site should Lookup to nil")
	}
}

func TestParseEmptyIsOff(t *testing.T) {
	inj, err := Parse("   ", 1)
	if err != nil || inj != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"lp.solve",                  // no colon
		":every=1",                  // empty site
		"lp.solve:every",            // no value
		"lp.solve:bogus=1",          // unknown key
		"lp.solve:every=x",          // non-numeric
		"lp.solve:prob=1.5",         // out of range
		"lp.solve:every=-1",         // negative
		"lp.solve:latency=1",        // bad duration
		"lp.solve:after=3",          // never fires
		"lp.solve:latencyonly=nope", // bad bool
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
