// Package fault is a deterministic, seed-driven fault-injection layer.
//
// Production code exposes narrow injection points — a hook consulted
// before an LP solve, a checkpoint write, a spool write, a trace emit —
// and an Injector decides, per call, whether that point fails (and how
// slowly). Decisions are a pure function of (injector seed, site name,
// 1-based call index), so a chaos run is reproducible: the same seed
// and the same call sequence fire the same faults, which is what lets
// cmd/chaossmoke assert bit-identical recovery rather than "it did not
// crash".
//
// A nil *Injector and a nil *Site are both valid and inert, so
// production paths pay one nil check when injection is off.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Canonical site names. Production code strikes these by constant so a
// CLI spec ("lp.solve:every=7") and the wired hook always agree.
const (
	// SiteLPSolve gates lp.WarmSolver.SolveWithCosts — every warm or
	// cold LP relaxation solve of the engine's evaluation waves.
	SiteLPSolve = "lp.solve"
	// SiteCheckpoint gates serve.Manager's periodic and drain-time
	// checkpoint writes. A strike leaves a torn checkpoint artifact.
	SiteCheckpoint = "checkpoint.write"
	// SiteSpoolWrite gates serve.Manager's spec and result spool
	// writes. A strike leaves a torn spool artifact.
	SiteSpoolWrite = "spool.write"
	// SiteTraceEmit gates telemetry.JSONL.Emit — the trace sink behind
	// core's JSONLObserver.
	SiteTraceEmit = "trace.emit"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// handlers (and tests) can tell a synthetic fault from an organic one.
var ErrInjected = errors.New("fault: injected failure")

// Rule says when a site fires and what a strike does. The zero Rule
// never fires. Call indices are 1-based.
type Rule struct {
	// Every fires on each Every-th eligible call (calls past After):
	// with After=20, Every=1 the calls 21, 22, … fire. Takes precedence
	// over Prob when both are set.
	Every int
	// Prob fires each eligible call independently with this
	// probability. The coin is a hash of (seed, site, call index) —
	// deterministic, not sampled from a shared stream.
	Prob float64
	// After makes the first After calls immune. Combined with Limit it
	// carves a finite failure window, the shape chaos tests use to let
	// retries eventually succeed.
	After int
	// Limit caps the total number of strikes (0 = unlimited).
	Limit int
	// Latency is slept on every strike before returning (0 = none).
	Latency time.Duration
	// LatencyOnly makes a strike slow instead of failing: Latency is
	// slept but Strike returns nil.
	LatencyOnly bool
}

// Site is one named injection point. Strike is safe for concurrent use;
// a nil *Site never fires.
type Site struct {
	name string
	rule Rule
	seed uint64

	mu    sync.Mutex
	calls int64
	fired int64
}

// Strike records one call through the site and returns the injected
// error when the rule says this call fails. The decision depends only
// on (seed, site name, call index) and the strikes already spent
// against Limit — never on wall clock or a shared RNG.
func (s *Site) Strike() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.calls++
	n := s.calls
	fire := s.decide(n)
	if fire {
		s.fired++
	}
	s.mu.Unlock()
	if !fire {
		return nil
	}
	if s.rule.Latency > 0 {
		time.Sleep(s.rule.Latency)
	}
	if s.rule.LatencyOnly {
		return nil
	}
	return fmt.Errorf("fault: %s call %d: %w", s.name, n, ErrInjected)
}

// decide is called with s.mu held.
func (s *Site) decide(n int64) bool {
	r := s.rule
	if n <= int64(r.After) {
		return false
	}
	if r.Limit > 0 && s.fired >= int64(r.Limit) {
		return false
	}
	switch {
	case r.Every > 0:
		return (n-int64(r.After))%int64(r.Every) == 0
	case r.Prob > 0:
		return coin(s.seed, s.name, n) < r.Prob
	}
	return false
}

// Stats reports how often the site was consulted and how often it fired.
func (s *Site) Stats() (calls, fired int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, s.fired
}

// coin hashes (seed, site, call index) into [0, 1) with splitmix64 —
// cheap, stateless and identical across runs.
func coin(seed uint64, name string, n int64) float64 {
	h := seed
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h ^= uint64(n)
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// Injector owns a set of named sites. The zero value is unusable; use
// New. A nil *Injector is valid and inert (Lookup returns nil).
type Injector struct {
	seed uint64

	mu    sync.Mutex
	sites map[string]*Site
}

// New returns an empty injector whose probabilistic decisions derive
// from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*Site)}
}

// Site installs (or replaces) the rule for a named injection point and
// returns its Site. Counters start fresh on replacement.
func (inj *Injector) Site(name string, r Rule) *Site {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	s := &Site{name: name, rule: r, seed: inj.seed}
	inj.sites[name] = s
	return s
}

// Lookup returns the named site, or nil when it was never installed —
// including on a nil injector, so callers wire hooks unconditionally:
//
//	if s := inj.Lookup(fault.SiteLPSolve); s != nil { cfg.LPFault = s.Strike }
func (inj *Injector) Lookup(name string) *Site {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.sites[name]
}

// Names returns the installed site names, sorted.
func (inj *Injector) Names() []string {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	names := make([]string, 0, len(inj.sites))
	for n := range inj.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse builds an injector from a CLI spec:
//
//	site:key=val[,key=val...][;site2:...]
//
// e.g. "lp.solve:every=1,after=30,limit=8;spool.write:prob=0.2".
// Keys: every, prob, after, limit, latency (a Go duration), latencyonly
// (a bool). An empty spec yields a nil injector (injection off).
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := New(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, args, ok := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: bad site spec %q (want site:key=val,...)", part)
		}
		var r Rule
		for _, kv := range strings.Split(args, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: site %s: bad option %q (want key=val)", name, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "every":
				r.Every, err = strconv.Atoi(val)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob)) {
					err = fmt.Errorf("probability %v outside [0,1]", r.Prob)
				}
			case "after":
				r.After, err = strconv.Atoi(val)
			case "limit":
				r.Limit, err = strconv.Atoi(val)
			case "latency":
				r.Latency, err = time.ParseDuration(val)
			case "latencyonly":
				r.LatencyOnly, err = strconv.ParseBool(val)
			default:
				return nil, fmt.Errorf("fault: site %s: unknown option %q", name, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: site %s: option %s: %v", name, key, err)
			}
		}
		if r.Every < 0 || r.After < 0 || r.Limit < 0 || r.Latency < 0 {
			return nil, fmt.Errorf("fault: site %s: negative option", name)
		}
		if r.Every == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("fault: site %s: rule never fires (set every or prob)", name)
		}
		inj.Site(name, r)
	}
	return inj, nil
}
