// Package tracestat analyzes carbon.trace JSONL run logs — the files
// JSONLObserver emits and cmd/carbonstat reads. It groups interleaved
// events into per-run streams (keyed label#island), summarizes
// convergence and search dynamics, flags pathological runs (stagnation,
// bloat explosion, co-evolutionary disengagement) and diffs two traces.
// Both trace schema versions are accepted; v1 traces simply have no
// search-dynamics blocks, and every consumer here degrades gracefully
// to the fields the trace actually carries.
package tracestat

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"carbon/internal/core"
)

// Run is one engine's event stream extracted from a trace: the
// generation snapshots in order, the migrations it initiated, and its
// done event when the trace has one.
type Run struct {
	Label      string
	Island     int
	Gens       []core.GenStats
	Migrations []core.MigrationStats
	Done       *core.DoneStats
}

// Key is the run's identity inside a multiplexed trace, matching
// exp.TraceFigure's convention.
func (r *Run) Key() string { return fmt.Sprintf("%s#%d", r.Label, r.Island) }

// HasSearch reports whether any generation carries a v2 search block.
func (r *Run) HasSearch() bool {
	for _, gs := range r.Gens {
		if gs.Search != nil {
			return true
		}
	}
	return false
}

// File is a parsed trace: runs in order of first appearance, plus
// whether a torn final line was dropped (tail-truncated file from a
// killed run).
type File struct {
	Runs      []*Run
	Truncated bool
}

// Run returns the named run (label#island key), or nil.
func (f *File) Run(key string) *Run {
	for _, r := range f.Runs {
		if r.Key() == key {
			return r
		}
	}
	return nil
}

// Load parses a trace stream leniently (a truncated tail is tolerated
// and reported via File.Truncated) and demultiplexes it into runs.
// Done events carry their own label/island in v2; in v1 traces they are
// attributed to the sole run when the trace has exactly one, and
// dropped otherwise (v1 gave no way to attribute them).
func Load(r io.Reader) (*File, error) {
	events, truncated, err := core.ReadTraceLenient(r)
	if err != nil {
		return nil, err
	}
	f := &File{Truncated: truncated}
	byKey := map[string]*Run{}
	get := func(label string, island int) *Run {
		key := fmt.Sprintf("%s#%d", label, island)
		run, ok := byKey[key]
		if !ok {
			run = &Run{Label: label, Island: island}
			byKey[key] = run
			f.Runs = append(f.Runs, run)
		}
		return run
	}
	for _, ev := range events {
		switch ev.Event {
		case "generation":
			run := get(ev.Gen.Label, ev.Gen.Island)
			run.Gens = append(run.Gens, *ev.Gen)
		case "migration":
			run := get(ev.Migration.Label, ev.Migration.From)
			run.Migrations = append(run.Migrations, *ev.Migration)
		case "done":
			if ev.Schema == core.TraceSchemaV1 {
				if len(f.Runs) == 1 {
					d := *ev.Done
					f.Runs[0].Done = &d
				}
				continue
			}
			run := get(ev.Done.Label, ev.Done.Island)
			d := *ev.Done
			run.Done = &d
		}
	}
	return f, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Load(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Summary condenses one run for the per-run table. Search-derived
// fields are zero and HasSearch false for v1 traces.
type Summary struct {
	Key         string
	Gens        int
	ULEvals     int
	LLEvals     int
	BestRevenue float64
	BestGap     float64
	Migrations  int
	Done        bool

	HasSearch      bool
	FinalDiversity float64
	FinalEntropy   float64
	FinalSizeMean  float64
	FinalGapP50    float64

	Anomalies []Anomaly
}

// Summarize builds the run's Summary, including anomaly detection.
func (r *Run) Summarize() Summary {
	s := Summary{
		Key:        r.Key(),
		Gens:       len(r.Gens),
		Migrations: len(r.Migrations),
		Done:       r.Done != nil,
		HasSearch:  r.HasSearch(),
		Anomalies:  r.DetectAnomalies(),
	}
	if len(r.Gens) == 0 {
		return s
	}
	last := r.Gens[len(r.Gens)-1]
	s.ULEvals, s.LLEvals = last.ULEvals, last.LLEvals
	s.BestRevenue, s.BestGap = last.BestRevenue, last.BestGap
	if r.Done != nil {
		s.BestRevenue, s.BestGap = r.Done.BestRevenue, r.Done.BestGap
	}
	if st := last.Search; st != nil {
		s.FinalDiversity = st.PreyDiversity
		s.FinalEntropy = st.PreyEntropy
		s.FinalSizeMean = st.PredSizeMean
		s.FinalGapP50 = st.GapP50
	}
	return s
}

// Anomaly flags one pathological pattern in a run's dynamics.
type Anomaly struct {
	Kind   string // "stagnation" | "bloat" | "disengagement" | "surrogate-drift"
	Gen    int    // generation where the pattern starts
	Detail string
}

// Detection thresholds. Deliberately conservative: an anomaly flag
// should mean "look at this run", not fire on every healthy plateau.
const (
	// stagnationFrac flags a run whose best revenue last improved in
	// the first (1-frac) of its generations (minimum stagnationMinGens
	// stalled generations so short runs don't trip it).
	stagnationFrac    = 0.5
	stagnationMinGens = 10
	// bloatFactor flags mean predator size growing past this multiple
	// of its minimum over the run.
	bloatFactor = 3.0
	// disengageGens flags this many consecutive generations whose
	// %-gap spread (P90-P10) is below disengageSpread while the median
	// gap stays above disengageFloor: every predator scores the same
	// but none is good — selection has lost its gradient.
	disengageGens   = 5
	disengageSpread = 1e-9
	disengageFloor  = 1e-6
	// surrogate-drift: the surrogate's out-of-sample LB error, which
	// sits around 1% in-distribution (the LP bound is nearly linear in
	// price), jumping past max(driftFactor × its baseline, driftFloor)
	// for driftGens consecutive active generations means the model is
	// predicting a market that no longer exists — a mid-stream market
	// shift, exactly what the fingerprint's shape-only market check
	// deliberately lets through. The baseline is the mean ErrLB of the
	// first driftBaseGens active generations.
	driftBaseGens = 5
	driftFactor   = 3.0
	driftFloor    = 0.05
	driftGens     = 2
)

// DetectAnomalies scans the run for stagnation, bloat explosion and
// co-evolutionary disengagement. Search-based detectors need v2 blocks
// and report nothing on v1 traces.
func (r *Run) DetectAnomalies() []Anomaly {
	var out []Anomaly
	n := len(r.Gens)
	if n == 0 {
		return nil
	}

	// Stagnation: last improvement of the best archived revenue.
	lastImprove := 0
	best := r.Gens[0].BestRevenue
	for i := 1; i < n; i++ {
		if r.Gens[i].BestRevenue > best {
			best = r.Gens[i].BestRevenue
			lastImprove = i
		}
	}
	if stalled := n - 1 - lastImprove; stalled >= stagnationMinGens &&
		float64(stalled) >= stagnationFrac*float64(n) {
		out = append(out, Anomaly{
			Kind: "stagnation", Gen: r.Gens[lastImprove].Gen,
			Detail: fmt.Sprintf("best revenue flat for final %d of %d generations", stalled, n),
		})
	}

	// Bloat explosion: mean tree size vs its running minimum.
	minSize, minGen := 0.0, 0
	for _, gs := range r.Gens {
		st := gs.Search
		if st == nil || st.PredSizeMean <= 0 {
			continue
		}
		if minSize == 0 || st.PredSizeMean < minSize {
			minSize, minGen = st.PredSizeMean, gs.Gen
		}
		if minSize > 0 && st.PredSizeMean > bloatFactor*minSize {
			out = append(out, Anomaly{
				Kind: "bloat", Gen: gs.Gen,
				Detail: fmt.Sprintf("mean tree size %.1f is %.1fx the gen-%d minimum %.1f",
					st.PredSizeMean, st.PredSizeMean/minSize, minGen, minSize),
			})
			break
		}
	}

	// Disengagement: the paired-gap distribution collapses to a point
	// away from zero for a sustained stretch.
	streak, start := 0, 0
	for _, gs := range r.Gens {
		st := gs.Search
		if st == nil {
			streak = 0
			continue
		}
		if st.GapP90-st.GapP10 < disengageSpread && st.GapP50 > disengageFloor {
			if streak == 0 {
				start = gs.Gen
			}
			streak++
			if streak == disengageGens {
				out = append(out, Anomaly{
					Kind: "disengagement", Gen: start,
					Detail: fmt.Sprintf("%%-gap spread below %.0e for %d straight generations (median %.3g)",
						disengageSpread, streak, st.GapP50),
				})
				break
			}
		} else {
			streak = 0
		}
	}

	// Surrogate drift: LB-error spike sustained over active generations.
	// Warmup and inactive generations (model still fully exact) don't
	// count toward the baseline — their residuals describe a model that
	// no skip decision acted on.
	baseSum, baseN := 0.0, 0
	streak, start = 0, 0
	for _, gs := range r.Gens {
		su := gs.Surr
		if su == nil || !su.Active {
			continue
		}
		if baseN < driftBaseGens {
			baseSum += su.ErrLB
			baseN++
			continue
		}
		base := baseSum / float64(baseN)
		threshold := driftFactor * base
		if threshold < driftFloor {
			threshold = driftFloor
		}
		if su.ErrLB > threshold {
			if streak == 0 {
				start = gs.Gen
			}
			streak++
			if streak == driftGens {
				out = append(out, Anomaly{
					Kind: "surrogate-drift", Gen: start,
					Detail: fmt.Sprintf("surrogate LB error %.3f is %.1fx its %.3f baseline for %d straight generations",
						su.ErrLB, su.ErrLB/math.Max(base, 1e-12), base, streak),
				})
				break
			}
		} else {
			streak = 0
		}
	}
	return out
}

// TableRow is one line of a convergence/diversity table.
type TableRow struct {
	Gen         int
	BestRevenue float64
	BestGap     float64
	Diversity   float64
	Entropy     float64
	SizeMean    float64
	GapP50      float64
	ULArchAdds  int
	GPArchAdds  int
}

// Table samples the run every 'every' generations (plus the final one).
func (r *Run) Table(every int) []TableRow {
	if every < 1 {
		every = 1
	}
	var rows []TableRow
	for i, gs := range r.Gens {
		if i%every != 0 && i != len(r.Gens)-1 {
			continue
		}
		row := TableRow{Gen: gs.Gen, BestRevenue: gs.BestRevenue, BestGap: gs.BestGap}
		if st := gs.Search; st != nil {
			row.Diversity = st.PreyDiversity
			row.Entropy = st.PreyEntropy
			row.SizeMean = st.PredSizeMean
			row.GapP50 = st.GapP50
			row.ULArchAdds = st.ULArchiveAdds
			row.GPArchAdds = st.GPArchiveAdds
		}
		rows = append(rows, row)
	}
	return rows
}

// DiffRow compares one metric across two runs.
type DiffRow struct {
	Metric string
	A, B   float64
	Delta  float64 // B - A
}

// Diff compares two runs metric by metric (final-generation values;
// search metrics appear only when both runs carry them).
func Diff(a, b *Run) []DiffRow {
	sa, sb := a.Summarize(), b.Summarize()
	rows := []DiffRow{
		{Metric: "gens", A: float64(sa.Gens), B: float64(sb.Gens)},
		{Metric: "ul_evals", A: float64(sa.ULEvals), B: float64(sb.ULEvals)},
		{Metric: "ll_evals", A: float64(sa.LLEvals), B: float64(sb.LLEvals)},
		{Metric: "best_revenue", A: sa.BestRevenue, B: sb.BestRevenue},
		{Metric: "best_gap", A: sa.BestGap, B: sb.BestGap},
	}
	if sa.HasSearch && sb.HasSearch {
		rows = append(rows,
			DiffRow{Metric: "final_diversity", A: sa.FinalDiversity, B: sb.FinalDiversity},
			DiffRow{Metric: "final_entropy", A: sa.FinalEntropy, B: sb.FinalEntropy},
			DiffRow{Metric: "final_size_mean", A: sa.FinalSizeMean, B: sb.FinalSizeMean},
			DiffRow{Metric: "final_gap_p50", A: sa.FinalGapP50, B: sb.FinalGapP50},
		)
	}
	for i := range rows {
		rows[i].Delta = rows[i].B - rows[i].A
	}
	return rows
}

// OperatorTotals aggregates per-operator offspring counts and
// improvement rates over the whole run, sorted by operator name.
func (r *Run) OperatorTotals() []core.OperatorStats {
	agg := map[string]*core.OperatorStats{}
	for _, gs := range r.Gens {
		if gs.Search == nil {
			continue
		}
		for _, op := range gs.Search.Ops {
			t, ok := agg[op.Op]
			if !ok {
				t = &core.OperatorStats{Op: op.Op}
				agg[op.Op] = t
			}
			t.Count += op.Count
			t.Improved += op.Improved
		}
	}
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]core.OperatorStats, 0, len(names))
	for _, name := range names {
		out = append(out, *agg[name])
	}
	return out
}
