package tracestat

import (
	"fmt"
	"strings"
	"testing"

	"carbon/internal/core"
)

// genLine fabricates one v2 generation event line.
func genLine(label string, island, gen int, rev float64, search string) string {
	s := ""
	if search != "" {
		s = `,"search":` + search
	}
	return fmt.Sprintf(`{"schema":"carbon.trace/v2","event":"generation","gen":{"label":%q,"island":%d,"gen":%d,"ul_evals":%d,"ll_evals":%d,"ul_budget":0,"ll_budget":0,"best_revenue":%g,"best_gap":1.5,"prey_best":0,"prey_mean":0,"prey_std":0,"pred_best":0,"pred_mean":0,"ul_archive":0,"gp_archive":0,"eval_ns":0,"breed_ns":0%s}}`,
		label, island, gen, gen*10, gen*20, rev, s)
}

// surrGenLine fabricates a v2 generation line carrying a surrogate
// telemetry block (healthy size/spread so only drift can fire).
func surrGenLine(gen int, active bool, errLB float64) string {
	surr := fmt.Sprintf(`,"surr":{"skips":5,"exact":9,"err":0.08,"err_lb":%g,"active":%t}`, errLB, active)
	return fmt.Sprintf(`{"schema":"carbon.trace/v2","event":"generation","gen":{"label":"s","island":0,"gen":%d,"ul_evals":%d,"ll_evals":%d,"ul_budget":0,"ll_budget":0,"best_revenue":%g,"best_gap":1.5,"prey_best":0,"prey_mean":0,"prey_std":0,"pred_best":0,"pred_mean":0,"ul_archive":0,"gp_archive":0,"eval_ns":0,"breed_ns":0,"search":%s%s}}`,
		gen, gen*10, gen*20, 100+float64(gen), searchBlock(8, 1, 2, 3), surr)
}

func searchBlock(sizeMean, p10, p50, p90 float64) string {
	return fmt.Sprintf(`{"prey_diversity":0.3,"prey_entropy":0.5,"pred_size_mean":%g,"pred_size_max":20,"pred_depth_mean":3,"pred_depth_max":6,"bloat_rate":0,"gap_p10":%g,"gap_p50":%g,"gap_p90":%g,"gap_min":0,"gap_max":5,"prey_sel_corr":0,"pred_sel_corr":0,"ul_archive_adds":1,"gp_archive_adds":1,"ops":[{"op":"sbx","count":8,"improved":2},{"op":"de","count":4,"improved":3}]}`,
		sizeMean, p10, p50, p90)
}

func TestLoadDemuxesRunsByLabelAndIsland(t *testing.T) {
	trace := strings.Join([]string{
		genLine("a", 0, 1, 100, ""),
		genLine("a", 1, 1, 101, ""),
		genLine("a", 0, 2, 102, ""),
		`{"schema":"carbon.trace/v2","event":"migration","migration":{"label":"a","gen":2,"from":0,"to":1,"migrants":2}}`,
		genLine("a", 1, 2, 103, ""),
		`{"schema":"carbon.trace/v2","event":"done","done":{"label":"a","island":1,"gens":2,"ul_evals":20,"ll_evals":40,"best_revenue":103,"best_gap":1.5,"best_tree":"c"}}`,
	}, "\n") + "\n"

	f, err := Load(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if f.Truncated {
		t.Fatal("intact trace reported truncated")
	}
	if len(f.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(f.Runs))
	}
	r0, r1 := f.Run("a#0"), f.Run("a#1")
	if r0 == nil || r1 == nil {
		t.Fatalf("missing runs: %v %v", r0, r1)
	}
	if len(r0.Gens) != 2 || len(r1.Gens) != 2 {
		t.Fatalf("gens split wrong: %d/%d", len(r0.Gens), len(r1.Gens))
	}
	if len(r0.Migrations) != 1 || r0.Migrations[0].To != 1 {
		t.Fatalf("migration misattributed: %+v", r0.Migrations)
	}
	if r0.Done != nil || r1.Done == nil || r1.Done.BestRevenue != 103 {
		t.Fatalf("done misattributed: r0=%v r1=%v", r0.Done, r1.Done)
	}
	if f.Run("b#0") != nil {
		t.Fatal("lookup of absent run succeeded")
	}
}

func TestLoadV1DoneAttribution(t *testing.T) {
	v1gen := `{"schema":"carbon.trace/v1","event":"generation","gen":{"island":0,"gen":1,"ul_evals":10,"ll_evals":20,"ul_budget":0,"ll_budget":0,"best_revenue":100,"best_gap":2,"prey_best":0,"prey_mean":0,"prey_std":0,"pred_best":0,"pred_mean":0,"ul_archive":0,"gp_archive":0,"eval_ns":0,"breed_ns":0}}`
	v1done := `{"schema":"carbon.trace/v1","event":"done","done":{"gens":1,"ul_evals":10,"ll_evals":20,"best_revenue":100,"best_gap":2,"best_tree":"c"}}`

	// Single run: the unattributed v1 done event belongs to it.
	f, err := Load(strings.NewReader(v1gen + "\n" + v1done + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(f.Runs))
	}
	if f.Runs[0].Done == nil || f.Runs[0].Done.BestRevenue != 100 {
		t.Fatalf("v1 done not attached to sole run: %+v", f.Runs[0].Done)
	}
	if f.Runs[0].HasSearch() {
		t.Fatal("v1 run claims search blocks")
	}

	// Two runs: attribution is ambiguous, the done event is dropped and
	// must not fabricate a phantom run.
	two := genLine("x", 0, 1, 100, "") + "\n" + genLine("x", 1, 1, 100, "") + "\n" + v1done + "\n"
	f2, err := Load(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Runs) != 2 {
		t.Fatalf("v1 done fabricated a run: %d runs", len(f2.Runs))
	}
	for _, r := range f2.Runs {
		if r.Done != nil {
			t.Fatalf("ambiguous v1 done attached to %s", r.Key())
		}
	}
}

func TestLoadTruncatedTail(t *testing.T) {
	whole := genLine("t", 0, 1, 100, "") + "\n" + genLine("t", 0, 2, 101, "") + "\n"
	cut := whole[:len(whole)-30] // tear the final line mid-JSON

	f, err := Load(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Truncated {
		t.Fatal("torn tail not reported")
	}
	if len(f.Runs) != 1 || len(f.Runs[0].Gens) != 1 {
		t.Fatalf("kept wrong events: %d runs", len(f.Runs))
	}
}

func TestSummarize(t *testing.T) {
	trace := genLine("s", 0, 1, 100, searchBlock(10, 1, 2, 3)) + "\n" +
		genLine("s", 0, 2, 110, searchBlock(11, 1, 2, 3)) + "\n" +
		`{"schema":"carbon.trace/v2","event":"done","done":{"label":"s","island":0,"gens":2,"ul_evals":20,"ll_evals":40,"best_revenue":111,"best_gap":0.9,"best_tree":"c"}}` + "\n"
	f, err := Load(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	s := f.Runs[0].Summarize()
	if s.Key != "s#0" || s.Gens != 2 || !s.Done || !s.HasSearch {
		t.Fatalf("summary header wrong: %+v", s)
	}
	// Done event values win over the last generation's running best.
	if s.BestRevenue != 111 || s.BestGap != 0.9 {
		t.Fatalf("summary best wrong: %+v", s)
	}
	if s.ULEvals != 20 || s.LLEvals != 40 {
		t.Fatalf("summary evals wrong: %+v", s)
	}
	if s.FinalSizeMean != 11 || s.FinalGapP50 != 2 || s.FinalDiversity != 0.3 {
		t.Fatalf("summary search fields wrong: %+v", s)
	}
	if len(s.Anomalies) != 0 {
		t.Fatalf("short healthy run flagged: %+v", s.Anomalies)
	}
}

func TestDetectAnomalies(t *testing.T) {
	var lines []string
	// 30 generations: revenue improves until gen 5 then goes flat
	// (stagnation), size triples (bloat), and the last 6 generations have
	// zero gap spread at median 2 (disengagement).
	for g := 1; g <= 30; g++ {
		rev := 100.0 + float64(g)
		if g > 5 {
			rev = 105
		}
		size := 8.0
		if g > 20 {
			size = 30
		}
		spread := 1.0
		if g > 24 {
			spread = 0
		}
		lines = append(lines, genLine("bad", 0, g, rev, searchBlock(size, 2-spread/2, 2, 2+spread/2)))
	}
	f, err := Load(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Anomaly{}
	for _, a := range f.Runs[0].DetectAnomalies() {
		got[a.Kind] = a
	}
	if a, ok := got["stagnation"]; !ok || a.Gen != 5 {
		t.Fatalf("stagnation: %+v (ok=%v)", a, ok)
	}
	if a, ok := got["bloat"]; !ok || a.Gen != 21 {
		t.Fatalf("bloat: %+v (ok=%v)", a, ok)
	}
	if a, ok := got["disengagement"]; !ok || a.Gen != 25 {
		t.Fatalf("disengagement: %+v (ok=%v)", a, ok)
	}

	// A steadily improving run with stable size and healthy spread must
	// be clean.
	lines = lines[:0]
	for g := 1; g <= 30; g++ {
		lines = append(lines, genLine("good", 0, g, 100+float64(g), searchBlock(8, 1, 2, 3)))
	}
	f2, err := Load(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if as := f2.Runs[0].DetectAnomalies(); len(as) != 0 {
		t.Fatalf("healthy run flagged: %+v", as)
	}
}

func TestDetectSurrogateDrift(t *testing.T) {
	// The numbers mirror a measured run (core's drift test): in-market
	// LB error sits around 0.006-0.016; after a market shift it jumps to
	// ~0.14, 10-20x the baseline. Generations 1-5 are warmup (inactive),
	// 6-10 form the baseline, 11-12 drift.
	var lines []string
	healthy := []float64{0.008, 0.012, 0.006, 0.015, 0.010}
	for g := 1; g <= 5; g++ {
		lines = append(lines, surrGenLine(g, false, 0))
	}
	for i, e := range healthy {
		lines = append(lines, surrGenLine(6+i, true, e))
	}
	lines = append(lines, surrGenLine(11, true, 0.14), surrGenLine(12, true, 0.13))
	f, err := Load(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	var drift *Anomaly
	for _, a := range f.Runs[0].DetectAnomalies() {
		if a.Kind == "surrogate-drift" {
			a := a
			drift = &a
		}
	}
	if drift == nil {
		t.Fatal("drifting run not flagged")
	}
	if drift.Gen != 11 {
		t.Fatalf("drift anchored at gen %d, want 11", drift.Gen)
	}

	// A single-generation spike is noise, not drift: the streak resets
	// and no anomaly fires.
	spike := append([]string(nil), lines[:len(lines)-2]...)
	spike = append(spike, surrGenLine(11, true, 0.14), surrGenLine(12, true, 0.012))
	f2, err := Load(strings.NewReader(strings.Join(spike, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f2.Runs[0].DetectAnomalies() {
		if a.Kind == "surrogate-drift" {
			t.Fatalf("one-generation spike flagged: %+v", a)
		}
	}

	// Post-baseline error within 3x baseline and under the 0.05 floor
	// stays clean, and a run with no surrogate blocks at all never trips
	// the detector.
	clean := append([]string(nil), lines[:len(lines)-2]...)
	clean = append(clean, surrGenLine(11, true, 0.02), surrGenLine(12, true, 0.025))
	f3, err := Load(strings.NewReader(strings.Join(clean, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range f3.Runs[0].DetectAnomalies() {
		if a.Kind == "surrogate-drift" {
			t.Fatalf("healthy run flagged: %+v", a)
		}
	}
}

func TestTableSampling(t *testing.T) {
	var lines []string
	for g := 1; g <= 25; g++ {
		lines = append(lines, genLine("t", 0, g, 100+float64(g), searchBlock(8, 1, 2, 3)))
	}
	f, err := Load(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	rows := f.Runs[0].Table(10)
	// Indices 0, 10, 20 plus the final generation (index 24).
	wantGens := []int{1, 11, 21, 25}
	if len(rows) != len(wantGens) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantGens))
	}
	for i, w := range wantGens {
		if rows[i].Gen != w {
			t.Fatalf("row %d gen %d, want %d", i, rows[i].Gen, w)
		}
	}
	if rows[0].SizeMean != 8 || rows[0].GapP50 != 2 {
		t.Fatalf("search columns not filled: %+v", rows[0])
	}
}

func TestDiff(t *testing.T) {
	mk := func(label string, rev float64, size float64) *Run {
		trace := genLine(label, 0, 1, rev, searchBlock(size, 1, 2, 3)) + "\n"
		f, err := Load(strings.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		return f.Runs[0]
	}
	a, b := mk("a", 100, 8), mk("b", 120, 12)
	rows := Diff(a, b)
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	if r := byName["best_revenue"]; r.A != 100 || r.B != 120 || r.Delta != 20 {
		t.Fatalf("best_revenue diff: %+v", r)
	}
	if r := byName["final_size_mean"]; r.Delta != 4 {
		t.Fatalf("final_size_mean diff: %+v", r)
	}

	// When one side is a v1 trace the search rows disappear.
	v1 := `{"schema":"carbon.trace/v1","event":"generation","gen":{"island":0,"gen":1,"ul_evals":1,"ll_evals":2,"ul_budget":0,"ll_budget":0,"best_revenue":90,"best_gap":2,"prey_best":0,"prey_mean":0,"prey_std":0,"pred_best":0,"pred_mean":0,"ul_archive":0,"gp_archive":0,"eval_ns":0,"breed_ns":0}}` + "\n"
	fv1, err := Load(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	mixed := Diff(fv1.Runs[0], b)
	for _, r := range mixed {
		if strings.HasPrefix(r.Metric, "final_") {
			t.Fatalf("search row %q in mixed-schema diff", r.Metric)
		}
	}
}

func TestOperatorTotals(t *testing.T) {
	trace := genLine("o", 0, 1, 100, searchBlock(8, 1, 2, 3)) + "\n" +
		genLine("o", 0, 2, 101, searchBlock(8, 1, 2, 3)) + "\n"
	f, err := Load(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	totals := f.Runs[0].OperatorTotals()
	if len(totals) != 2 {
		t.Fatalf("got %d operators, want 2: %+v", len(totals), totals)
	}
	// Sorted by name: de before sbx. Each block has sbx 8/2 and de 4/3.
	if totals[0].Op != "de" || totals[0].Count != 8 || totals[0].Improved != 6 {
		t.Fatalf("de totals: %+v", totals[0])
	}
	if totals[1].Op != "sbx" || totals[1].Count != 16 || totals[1].Improved != 4 {
		t.Fatalf("sbx totals: %+v", totals[1])
	}
}

func TestRoundTripFromObserver(t *testing.T) {
	// A trace produced by the real observer must demux cleanly.
	var sb strings.Builder
	obs := core.NewJSONLObserver(&sb)
	obs.OnGeneration(core.GenStats{Label: "rt", Gen: 1, BestRevenue: 50})
	obs.OnMigration(core.MigrationStats{Label: "rt", Gen: 1, From: 0, To: 1, Migrants: 1})
	obs.OnDone(&core.Result{Label: "rt", Gens: 1})
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Run("rt#0")
	if r == nil || len(r.Gens) != 1 || len(r.Migrations) != 1 || r.Done == nil {
		t.Fatalf("round trip lost events: %+v", f.Runs)
	}
}
