package tracestat

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"carbon/internal/span"
)

// specRec builds one span record with hand-picked timestamps — the
// analyzer tests need exact geometry, so they fabricate the JSONL
// stream instead of racing real clocks.
func specRec(id, parent, name, kind string, start, end int64, remote bool, attrs map[string]any) span.Record {
	return span.Record{
		Schema: span.Schema, Trace: "0123456789abcdef0123456789abcdef",
		Span: id, Parent: parent, Remote: remote,
		Name: name, Kind: kind, StartNS: start, EndNS: end, Attrs: attrs,
	}
}

func encodeRecs(t *testing.T, recs []span.Record) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// jobRecs fabricates a plausible single-attempt job waterfall:
//
//	job [100..1000]
//	├─ queue.wait [100..200]           (queue)
//	├─ attempt    [200..900]           (compute)
//	│   ├─ gen 1 [200..500]
//	│   │   ├─ relax     [200..350]  ── lp.solve [210..260]
//	│   │   └─ pred_eval [350..500]
//	│   ├─ gen 2 [500..800]
//	│   └─ checkpoint.write [800..850] (io)
//	└─ result.write [900..950]         (io)
func jobRecs() []span.Record {
	return []span.Record{
		specRec("aa01", "", "job", span.KindCompute, 100, 0, false, map[string]any{"job": "j1"}), // announce
		specRec("aa02", "aa01", "queue.wait", span.KindQueue, 100, 200, false, nil),
		specRec("aa03", "aa01", "attempt", span.KindCompute, 200, 0, false, map[string]any{"attempt": 1}), // announce
		specRec("aa04", "aa03", "gen", span.KindCompute, 200, 500, false, map[string]any{"gen": 1}),
		specRec("aa05", "aa04", "relax", span.KindCompute, 200, 350, false, nil),
		specRec("aa06", "aa05", "lp.solve", span.KindCompute, 210, 260, false, nil),
		specRec("aa07", "aa04", "pred_eval", span.KindCompute, 350, 500, false, nil),
		specRec("aa08", "aa03", "gen", span.KindCompute, 500, 800, false, map[string]any{"gen": 2}),
		specRec("aa09", "aa03", "checkpoint.write", span.KindIO, 800, 850, false, map[string]any{"gen": 2}),
		specRec("aa03", "aa01", "attempt", span.KindCompute, 200, 900, false, map[string]any{"attempt": 1}), // ended copy
		specRec("aa10", "aa01", "result.write", span.KindIO, 900, 950, false, nil),
		specRec("aa01", "", "job", span.KindCompute, 100, 1000, false, map[string]any{"job": "j1", "state": "done"}),
	}
}

func TestLoadSpansTree(t *testing.T) {
	tree, err := LoadSpans(encodeRecs(t, jobRecs()))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("unexpected truncation")
	}
	if got := tree.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10 (announce/end pairs deduped)", got)
	}
	if len(tree.Traces) != 1 || len(tree.Roots) != 1 || len(tree.Orphans) != 0 {
		t.Fatalf("traces=%d roots=%d orphans=%d, want 1/1/0",
			len(tree.Traces), len(tree.Roots), len(tree.Orphans))
	}
	root := tree.Roots[0]
	if root.Record.Name != "job" || root.Open || root.Record.EndNS != 1000 {
		t.Fatalf("root wrong: %+v", root.Record)
	}
	// The ended copy must have superseded the announce for the attempt too.
	att := tree.Node("aa03")
	if att == nil || att.Open || att.Record.EndNS != 900 {
		t.Fatalf("attempt announce not superseded: %+v", att)
	}
	// Children sorted by start under the root.
	var names []string
	for _, c := range root.Children {
		names = append(names, c.Record.Name)
	}
	want := []string{"queue.wait", "attempt", "result.write"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("root children = %v, want %v", names, want)
		}
	}
	if tree.WallNS() != 900 {
		t.Fatalf("WallNS = %d, want 900", tree.WallNS())
	}
}

func TestSpanBreakdownSums(t *testing.T) {
	tree, err := LoadSpans(encodeRecs(t, jobRecs()))
	if err != nil {
		t.Fatal(err)
	}
	b := tree.Breakdown()
	if b.Wall != 900 {
		t.Fatalf("Wall = %d, want 900", b.Wall)
	}
	// The root span covers [100..1000] with no gaps, so every nanosecond
	// of the wall is attributed to some span.
	if b.Covered != b.Wall {
		t.Fatalf("Covered = %d, want %d (no gaps in this waterfall)", b.Covered, b.Wall)
	}
	var byKind, byName time.Duration
	for _, d := range b.ByKind {
		byKind += d
	}
	for _, d := range b.ByName {
		byName += d
	}
	if byKind != b.Covered || byName != b.Covered {
		t.Fatalf("kind sum %d / name sum %d != covered %d", byKind, byName, b.Covered)
	}
	// Hand-checked attribution: queue.wait owns [100..200]=100;
	// io owns checkpoint [800..850]=50 + result [900..950]=50.
	if b.ByKind[span.KindQueue] != 100 {
		t.Fatalf("queue = %d, want 100", b.ByKind[span.KindQueue])
	}
	if b.ByKind[span.KindIO] != 100 {
		t.Fatalf("io = %d, want 100", b.ByKind[span.KindIO])
	}
	// lp.solve is the deepest over [210..260].
	if b.ByName["lp.solve"] != 50 {
		t.Fatalf("lp.solve self = %d, want 50", b.ByName["lp.solve"])
	}
	// relax's self time is its extent minus the solve: 150-50.
	if b.ByName["relax"] != 100 {
		t.Fatalf("relax self = %d, want 100", b.ByName["relax"])
	}
}

func TestSpanCriticalPath(t *testing.T) {
	tree, err := LoadSpans(encodeRecs(t, jobRecs()))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, n := range tree.CriticalPath() {
		names = append(names, n.Record.Name)
	}
	// The chain gating completion: job ends at 1000, result.write at 950
	// is its latest-ending child, and is a leaf.
	want := []string{"job", "result.write"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	// Every hop must be parent-linked.
	path := tree.CriticalPath()
	for i := 1; i < len(path); i++ {
		if path[i].Record.Parent != path[i-1].Record.Span {
			t.Fatalf("hop %d not parent-linked: %q under %q",
				i, path[i].Record.Span, path[i-1].Record.Span)
		}
	}
}

// TestSpanOrphanAndOpen: a span whose in-process parent is absent is an
// orphan (dropped-record detector); a remote link to an absent parent
// is NOT — it crossed a process boundary by design. An announce-only
// span is Open, and its extent is inferred from its children.
func TestSpanOrphanAndOpen(t *testing.T) {
	recs := []span.Record{
		specRec("bb01", "", "job", span.KindCompute, 100, 0, false, nil), // announce only: crashed
		specRec("bb02", "bb01", "attempt", span.KindCompute, 150, 0, false, nil),
		specRec("bb03", "bb02", "gen", span.KindCompute, 150, 400, false, nil),
		specRec("bb04", "dead", "relax", span.KindCompute, 200, 300, false, nil),  // orphan
		specRec("bb05", "gone", "attempt", span.KindCompute, 500, 800, true, nil), // remote → root
	}
	tree, err := LoadSpans(encodeRecs(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Orphans) != 1 || tree.Orphans[0].Record.Span != "bb04" {
		t.Fatalf("orphans = %+v, want exactly bb04", tree.Orphans)
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (true root + remote re-root)", len(tree.Roots))
	}
	root := tree.Node("bb01")
	if !root.Open {
		t.Fatal("announce-only root not marked Open")
	}
	// Inferred extent: bb01 → bb02 → bb03 ends at 400.
	if root.EndNS() != 400 {
		t.Fatalf("inferred root end = %d, want 400", root.EndNS())
	}
	// Wall spans both incarnations: 100 → 800.
	if tree.WallNS() != 700 {
		t.Fatalf("WallNS = %d, want 700", tree.WallNS())
	}
}

// TestSpanAttemptsStitched reconstructs the retry timeline of a job
// that crashed mid-attempt and resumed in a new process: attempt 1 is
// open, attempt 2 is remote+resumed, and they sort by start.
func TestSpanAttemptsStitched(t *testing.T) {
	recs := []span.Record{
		specRec("cc01", "", "job", span.KindCompute, 100, 0, false, nil),
		specRec("cc02", "cc01", "attempt", span.KindCompute, 150, 0, false,
			map[string]any{"attempt": 1}),
		specRec("cc03", "cc02", "gen", span.KindCompute, 150, 300, false, nil),
		specRec("cc04", "cc01", "attempt", span.KindCompute, 600, 900, true,
			map[string]any{"attempt": 2, "resumed": true, "error": "lp fault"}),
		specRec("cc05", "cc04", "gen", span.KindCompute, 600, 700, false, nil),
		specRec("cc06", "cc04", "gen", span.KindCompute, 700, 880, false, nil),
	}
	tree, err := LoadSpans(encodeRecs(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	atts := tree.Attempts()
	if len(atts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(atts))
	}
	a1, a2 := atts[0], atts[1]
	if a1.Number != 1 || !a1.Open || a1.Remote || a1.Gens != 1 || a1.EndNS != 300 {
		t.Fatalf("attempt 1 wrong: %+v", a1)
	}
	if a2.Number != 2 || a2.Open || !a2.Remote || !a2.Resumed || a2.Gens != 2 || a2.Error != "lp fault" {
		t.Fatalf("attempt 2 wrong: %+v", a2)
	}
}

func TestSpanPhasesQuantiles(t *testing.T) {
	recs := []span.Record{
		specRec("dd01", "", "job", span.KindCompute, 1, 1000, false, nil),
	}
	// Ten gen spans of durations 10,20,...,100; one open span that must
	// not contribute.
	for i := 1; i <= 10; i++ {
		recs = append(recs, specRec(
			// unique 4-hex ids
			[]string{"", "e001", "e002", "e003", "e004", "e005", "e006", "e007", "e008", "e009", "e00a"}[i],
			"dd01", "gen", span.KindCompute, int64(i*100), int64(i*100+i*10), false, nil))
	}
	recs = append(recs, specRec("e00b", "dd01", "gen", span.KindCompute, 990, 0, false, nil))
	tree, err := LoadSpans(encodeRecs(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	phases := SpanPhases(tree)
	var gen *SpanPhase
	for i := range phases {
		if phases[i].Name == "gen" {
			gen = &phases[i]
		}
	}
	if gen == nil {
		t.Fatal("no gen phase")
	}
	if gen.Count != 10 {
		t.Fatalf("gen count = %d, want 10 (open span must not count)", gen.Count)
	}
	// Nearest-rank on sorted [10..100]: p50 → index 5 → 60, p90 → index 9 → 100.
	if gen.P50 != 60 || gen.P90 != 100 || gen.Max != 100 || gen.Total != 550 {
		t.Fatalf("gen stats wrong: %+v", gen)
	}
	// Phases sorted by total descending: job (999) before gen (550).
	if phases[0].Name != "job" {
		t.Fatalf("phase order wrong: %+v", phases)
	}
}

func TestLoadSpansTruncatedTail(t *testing.T) {
	buf := encodeRecs(t, jobRecs())
	b := buf.Bytes()
	cut := b[:len(b)-20] // tear the final line
	tree, err := LoadSpans(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Truncated {
		t.Fatal("torn tail not reported")
	}
	// The final line was the root's ended copy: the root stays Open.
	if !tree.Roots[0].Open {
		t.Fatal("root should be open when its ended record was torn")
	}
}
