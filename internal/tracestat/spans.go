package tracestat

import (
	"fmt"
	"io"
	"sort"
	"time"

	"carbon/internal/span"
)

// SpanNode is one span placed in its trace's tree. Open marks a span
// that never ended — the announce record is all that survived, the
// signature of a SIGKILL (or of a root whose job drained and resumed in
// a later process). Its effective end is inferred from its children.
type SpanNode struct {
	Record   span.Record
	Children []*SpanNode // sorted by StartNS
	Open     bool
}

// EndNS is the node's effective end: its recorded end, or for an open
// span the latest effective end among its children (its own start when
// it has none — a zero-length placeholder rather than a lie).
func (n *SpanNode) EndNS() int64 {
	if n.Record.EndNS != 0 {
		return n.Record.EndNS
	}
	end := n.Record.StartNS
	for _, c := range n.Children {
		if ce := c.EndNS(); ce > end {
			end = ce
		}
	}
	return end
}

// Duration is the node's effective extent.
func (n *SpanNode) Duration() time.Duration {
	return time.Duration(n.EndNS() - n.Record.StartNS)
}

// selfNS is the portion of the node's extent not covered by any child —
// the time this span itself was the deepest thing running. Children are
// sorted by start, so a single sweep with a cursor merges overlaps.
func (n *SpanNode) selfNS() int64 {
	s, e := n.Record.StartNS, n.EndNS()
	covered := int64(0)
	cur := s
	for _, c := range n.Children {
		cs, ce := c.Record.StartNS, c.EndNS()
		if cs < cur {
			cs = cur
		}
		if ce > e {
			ce = e
		}
		if ce > cs {
			covered += ce - cs
			cur = ce
		}
	}
	return (e - s) - covered
}

// SpanTree is one job's span file assembled into parent-linked trees.
// Roots are spans with no parent or a remote parent (the link crosses a
// process or HTTP boundary, so the parent legitimately lives in another
// file). Orphans are spans whose in-process parent is missing from the
// file — evidence of a dropped record, the defect the orphan check in
// `carbonstat -spans` exists to surface.
type SpanTree struct {
	Traces    []string // distinct trace ids, in first-seen order (one, for a healthy job file)
	Roots     []*SpanNode
	Orphans   []*SpanNode
	Truncated bool // the file ended mid-line (torn tail dropped)

	byID map[string]*SpanNode
}

// LoadSpans assembles a span JSONL stream into trees. Announce records
// (EndNS 0) are superseded by their ended copy when one exists; a span
// seen only as an announce is kept and marked Open.
func LoadSpans(r io.Reader) (*SpanTree, error) {
	recs, truncated, err := span.ReadRecordsLenient(r)
	if err != nil {
		return nil, err
	}
	t := buildSpanTree(recs)
	t.Truncated = truncated
	return t, nil
}

// LoadSpansFile is LoadSpans over one <id>.spans.jsonl file.
func LoadSpansFile(path string) (*SpanTree, error) {
	recs, truncated, err := span.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := buildSpanTree(recs)
	t.Truncated = truncated
	return t, nil
}

func buildSpanTree(recs []span.Record) *SpanTree {
	t := &SpanTree{byID: make(map[string]*SpanNode, len(recs))}
	seenTrace := map[string]bool{}
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if !seenTrace[r.Trace] {
			seenTrace[r.Trace] = true
			t.Traces = append(t.Traces, r.Trace)
		}
		if prev, ok := t.byID[r.Span]; ok {
			// Duplicate identity: an ended copy supersedes the announce.
			if prev.Record.EndNS == 0 && r.EndNS != 0 {
				prev.Record = r
				prev.Open = false
			}
			continue
		}
		t.byID[r.Span] = &SpanNode{Record: r, Open: r.EndNS == 0}
		order = append(order, r.Span)
	}
	for _, id := range order {
		n := t.byID[id]
		r := n.Record
		switch {
		case r.Parent == "":
			t.Roots = append(t.Roots, n)
		case t.byID[r.Parent] != nil:
			p := t.byID[r.Parent]
			p.Children = append(p.Children, n)
		case r.Remote:
			// Parent crossed a process boundary (pre-restart root, HTTP
			// caller): not in this file by design. Treat as a root here.
			t.Roots = append(t.Roots, n)
		default:
			t.Orphans = append(t.Orphans, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Record.StartNS < ns[j].Record.StartNS })
	}
	for _, n := range t.byID {
		byStart(n.Children)
	}
	byStart(t.Roots)
	byStart(t.Orphans)
	return t
}

// Node returns the tree's span by hex id, or nil.
func (t *SpanTree) Node(id string) *SpanNode { return t.byID[id] }

// Len is the number of distinct spans in the tree (orphans included).
func (t *SpanTree) Len() int { return len(t.byID) }

// WallNS is the trace's end-to-end extent: earliest root start to
// latest effective end over all roots. Zero for an empty tree.
func (t *SpanTree) WallNS() int64 {
	if len(t.Roots) == 0 {
		return 0
	}
	start, end := t.Roots[0].Record.StartNS, int64(0)
	for _, r := range t.Roots {
		if r.Record.StartNS < start {
			start = r.Record.StartNS
		}
		if re := r.EndNS(); re > end {
			end = re
		}
	}
	return end - start
}

// SpanBreakdown attributes every nanosecond under some span to the
// deepest span covering it, bucketed by kind ("" groups as "other").
// ByKind and ByName each sum to Covered; Wall−Covered is time inside
// the trace's extent that no span claims (gaps between roots, or the
// stretch a crashed incarnation was dead).
type SpanBreakdown struct {
	Wall    time.Duration
	Covered time.Duration
	ByKind  map[string]time.Duration
	ByName  map[string]time.Duration
}

// Breakdown computes the deepest-span attribution over the whole tree
// (orphans excluded — their position in the waterfall is unknowable).
func (t *SpanTree) Breakdown() SpanBreakdown {
	b := SpanBreakdown{
		Wall:   time.Duration(t.WallNS()),
		ByKind: map[string]time.Duration{},
		ByName: map[string]time.Duration{},
	}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		self := time.Duration(n.selfNS())
		kind := n.Record.Kind
		if kind == "" {
			kind = "other"
		}
		b.ByKind[kind] += self
		b.ByName[n.Record.Name] += self
		b.Covered += self
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return b
}

// CriticalPath walks from the latest-ending root down through the
// child that gates each span's completion (the one with the latest
// effective end), yielding the parent-linked chain of spans that
// determined when the job finished.
func (t *SpanTree) CriticalPath() []*SpanNode {
	if len(t.Roots) == 0 {
		return nil
	}
	cur := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.EndNS() > cur.EndNS() {
			cur = r
		}
	}
	path := []*SpanNode{cur}
	for {
		var next *SpanNode
		for _, c := range cur.Children {
			if next == nil || c.EndNS() > next.EndNS() {
				next = c
			}
		}
		if next == nil {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// SpanAttempt is one execution attempt reconstructed from the trace,
// stitched across carbond restarts: a Remote attempt ran in a later
// incarnation than the one that announced the root.
type SpanAttempt struct {
	Number  int // attrs["attempt"], 0 when absent
	StartNS int64
	EndNS   int64 // effective end (inferred for an open attempt)
	Open    bool  // never ended: the process died mid-attempt
	Remote  bool  // ran in a restarted process
	Resumed bool  // picked up from a checkpoint (attrs["resumed"])
	Gens    int   // generation spans under this attempt
	Error   string
}

// Attempts collects the trace's "attempt" spans in start order,
// wherever they sit in the tree (under the live root, or re-rooted by a
// remote link after a restart).
func (t *SpanTree) Attempts() []SpanAttempt {
	var out []SpanAttempt
	for _, n := range t.byID {
		if n.Record.Name != "attempt" {
			continue
		}
		a := SpanAttempt{
			StartNS: n.Record.StartNS,
			EndNS:   n.EndNS(),
			Open:    n.Open,
			Remote:  n.Record.Remote,
		}
		if v, ok := n.Record.Attrs["attempt"]; ok {
			a.Number = int(toFloat(v))
		}
		if v, ok := n.Record.Attrs["resumed"]; ok {
			b, _ := v.(bool)
			a.Resumed = b
		}
		if v, ok := n.Record.Attrs["error"]; ok {
			a.Error = fmt.Sprint(v)
		}
		for _, c := range n.Children {
			if c.Record.Name == "gen" {
				a.Gens++
			}
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// toFloat coerces the number shapes a JSON round trip produces.
func toFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

// SpanPhase is one span name's duration distribution across a set of
// traces — the cross-job phase table (`carbonstat -spans` prints it as
// count/p50/p90/total per name). Only ended spans contribute; open
// spans have no honest duration.
type SpanPhase struct {
	Name  string
	Kind  string
	Count int
	P50   time.Duration
	P90   time.Duration
	Max   time.Duration
	Total time.Duration
}

// SpanPhases aggregates ended spans by name over one or more trees,
// sorted by total descending (the expensive phases first).
func SpanPhases(trees ...*SpanTree) []SpanPhase {
	durs := map[string][]time.Duration{}
	kinds := map[string]string{}
	for _, t := range trees {
		for _, n := range t.byID {
			if n.Record.EndNS == 0 {
				continue
			}
			d := n.Record.Duration()
			durs[n.Record.Name] = append(durs[n.Record.Name], d)
			if n.Record.Kind != "" {
				kinds[n.Record.Name] = n.Record.Kind
			}
		}
	}
	out := make([]SpanPhase, 0, len(durs))
	for name, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		out = append(out, SpanPhase{
			Name:  name,
			Kind:  kinds[name],
			Count: len(ds),
			P50:   quantileDur(ds, 0.50),
			P90:   quantileDur(ds, 0.90),
			Max:   ds[len(ds)-1],
			Total: total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// quantileDur reads the q-quantile from an ascending-sorted slice by
// nearest-rank — small samples are the norm here, interpolation would
// only invent precision.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
