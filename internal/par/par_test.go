package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was not propagated")
		}
		pe, ok := r.(*panicErr)
		if !ok {
			t.Fatalf("unexpected panic payload %T", r)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("panic message lost: %v", pe)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachPanicSequential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sequential panic not propagated")
		}
	}()
	ForEach(3, 1, func(i int) { panic("seq") })
}

func TestMapOrder(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	got := MapSlice(in, 2, func(s string) int { return len(s) })
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapSlice = %v", got)
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	f := func(nRaw, chunkRaw uint8) bool {
		n := int(nRaw)
		chunk := int(chunkRaw % 16)
		hits := make([]int32, n)
		Chunks(n, 4, chunk, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	got := Reduce(1000, 4, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("Reduce sum = %d", got)
	}
}

func TestReduceNonCommutativeAssociative(t *testing.T) {
	// String concatenation is associative but not commutative; Reduce
	// must merge partials in index order.
	got := Reduce(10, 4, "", func(i int) string { return string(rune('a' + i)) },
		func(a, b string) string { return a + b })
	if got != "abcdefghij" {
		t.Fatalf("Reduce order broken: %q", got)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) != GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-1) != GOMAXPROCS")
	}
}

func TestPoolWaves(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for wave := 0; wave < 5; wave++ {
		var count int32
		for i := 0; i < 100; i++ {
			p.Submit(func() { atomic.AddInt32(&count, 1) })
		}
		p.Wait()
		if count != 100 {
			t.Fatalf("wave %d: %d/100 tasks ran before Wait returned", wave, count)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic
}

func BenchmarkForEachSmallBody(b *testing.B) {
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(256, 0, func(j int) { atomic.AddInt64(&sink, int64(j)) })
	}
	_ = sink
}

func BenchmarkChunksSmallBody(b *testing.B) {
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Chunks(256, 0, 0, func(lo, hi int) {
			var local int64
			for j := lo; j < hi; j++ {
				local += int64(j)
			}
			atomic.AddInt64(&sink, local)
		})
	}
	_ = sink
}
