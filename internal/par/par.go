// Package par provides the parallel-execution primitives used across the
// repository: bounded worker pools, deterministic parallel map/for over
// index ranges, and chunked scheduling.
//
// The evolutionary loops in internal/core and internal/cobra evaluate
// whole populations per generation, and the experiment harness in
// internal/exp fans out independent runs; both express their parallelism
// through this package so that concurrency policy (worker count, chunk
// size, panic propagation) lives in one place.
//
// Determinism contract: callers must not share rng state across work
// items. ForEach guarantees that item i is processed exactly once and
// that all writes made by workers happen-before ForEach returns, but the
// *order* of processing is unspecified. Deterministic algorithms
// therefore pre-split their generators per item (see rng.Rand.Split).
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"carbon/internal/telemetry"
)

// Workers returns the effective worker count for a requested value:
// n <= 0 selects GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines (Workers(workers) resolves the count). It blocks until all
// items complete. A panic in any fn is captured and re-raised on the
// calling goroutine, wrapped with the item index, after all other
// workers drain.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		mu   sync.Mutex
		perr *panicErr
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if !safeCall(i, fn, &mu, &perr) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if perr != nil {
		panic(perr)
	}
}

// WaveMetrics instruments ForEachTimed waves: dispatch volume, the wall
// time of each wave and the busy time of each work item. Occupancy()
// derives mean worker utilization from them — the "are my workers
// actually busy?" number for sizing Config.Workers.
type WaveMetrics struct {
	Waves *telemetry.Counter // completed waves
	Items *telemetry.Counter // work items dispatched
	Wall  *telemetry.Timer   // wall time per wave
	Busy  *telemetry.Timer   // busy time per work item
}

// NewWaveMetrics registers the wave instruments under prefix in reg
// (prefix.waves, prefix.items, prefix.wall, prefix.busy). A nil
// registry yields nil — ForEachTimed treats that as "off".
func NewWaveMetrics(reg *telemetry.Registry, prefix string) *WaveMetrics {
	if reg == nil {
		return nil
	}
	return &WaveMetrics{
		Waves: reg.Counter(prefix + ".waves"),
		Items: reg.Counter(prefix + ".items"),
		Wall:  reg.Timer(prefix + ".wall"),
		Busy:  reg.Timer(prefix + ".busy"),
	}
}

// Occupancy reports the mean number of busy workers over the recorded
// wall time (total busy time / total wall time). With w workers, w is
// perfect parallel efficiency; values near 1 mean the waves ran
// effectively sequentially.
func (m *WaveMetrics) Occupancy() float64 {
	if m == nil {
		return 0
	}
	wall := m.Wall.Total()
	if wall <= 0 {
		return 0
	}
	return float64(m.Busy.Total()) / float64(wall)
}

// ForEachTimed is ForEach plus per-wave instrumentation. A nil m takes
// the identical zero-overhead path as plain ForEach — no clock reads,
// no allocation — which is how disabled telemetry stays free on the
// evaluation hot path.
func ForEachTimed(n, workers int, m *WaveMetrics, fn func(i int)) {
	if m == nil {
		ForEach(n, workers, fn)
		return
	}
	start := time.Now()
	ForEach(n, workers, func(i int) {
		t0 := time.Now()
		fn(i)
		m.Busy.Observe(time.Since(t0))
	})
	m.Wall.Observe(time.Since(start))
	m.Waves.Inc()
	m.Items.Add(int64(n))
}

// panicErr carries a worker panic back to the caller.
type panicErr struct {
	item  int
	value any
}

func (p *panicErr) Error() string {
	return fmt.Sprintf("par: panic processing item %d: %v", p.item, p.value)
}

// safeCall runs fn(i), converting a panic into a stored panicErr.
// It returns false when a panic (from this or another worker) means the
// worker should stop early.
func safeCall(i int, fn func(int), mu *sync.Mutex, perr **panicErr) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			mu.Lock()
			if *perr == nil {
				*perr = &panicErr{item: i, value: r}
			}
			mu.Unlock()
			ok = false
		}
	}()
	mu.Lock()
	stop := *perr != nil
	mu.Unlock()
	if stop {
		return false
	}
	fn(i)
	return true
}

// Map applies fn to every index in [0, n) in parallel and returns the
// results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapSlice applies fn to every element of in, in parallel, preserving
// order.
func MapSlice[S, T any](in []S, workers int, fn func(S) T) []T {
	return Map(len(in), workers, func(i int) T { return fn(in[i]) })
}

// Chunks invokes fn(lo, hi) over contiguous half-open chunks covering
// [0, n), in parallel. Chunked scheduling amortizes per-item dispatch
// for cheap loop bodies. chunk <= 0 selects ceil(n/ (4*workers)) with a
// floor of 1.
func Chunks(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if chunk <= 0 {
		chunk = (n + 4*w - 1) / (4 * w)
		if chunk < 1 {
			chunk = 1
		}
	}
	nChunks := (n + chunk - 1) / chunk
	ForEach(nChunks, w, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Reduce computes a parallel reduction: fn maps each index to a partial
// value, merge folds partials pairwise. merge must be associative;
// identity is the zero of the reduction. Partials are merged in
// deterministic index order, so non-commutative merges are safe as long
// as they are associative.
func Reduce[T any](n, workers int, identity T, fn func(i int) T, merge func(a, b T) T) T {
	parts := Map(n, workers, fn)
	acc := identity
	for _, p := range parts {
		acc = merge(acc, p)
	}
	return acc
}

// Pool is a reusable fixed-size worker pool for repeated waves of tasks
// (e.g. one wave per evolutionary generation). Submit enqueues work;
// Wait blocks until every task submitted since the last Wait has
// finished. A Pool is cheaper than spawning goroutines per generation
// when generations are short.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool with Workers(workers) goroutines.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{tasks: make(chan func(), 4*w)}
	for i := 0; i < w; i++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Submit enqueues fn for execution. It must not be called concurrently
// with Close.
func (p *Pool) Submit(fn func()) {
	p.wg.Add(1)
	p.tasks <- func() {
		defer p.wg.Done()
		fn()
	}
}

// SubmitLabeled is Submit with pprof labels (key/value pairs) applied
// for the duration of the task. Pool goroutines are long-lived, so
// labels must wrap each task rather than the goroutine: a label set at
// pool construction would outlive the task it described and mislabel
// every later one. Goroutines the task itself spawns (ForEach workers,
// engine waves) inherit the labels, which is what makes a CPU profile
// attributable per job.
func (p *Pool) SubmitLabeled(fn func(), kv ...string) {
	p.wg.Add(1)
	p.tasks <- func() {
		defer p.wg.Done()
		pprof.Do(context.Background(), pprof.Labels(kv...),
			func(context.Context) { fn() })
	}
}

// Wait blocks until all submitted tasks have completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close shuts the pool down after draining outstanding tasks. The pool
// must not be used afterwards.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.wg.Wait()
		close(p.tasks)
	})
}
