package par

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

// goroutineProfile captures the debug=1 goroutine profile, retrying
// until pred is satisfied or the deadline passes — a goroutine parked
// moments ago can take a beat to show up in the profile snapshot.
func goroutineProfile(t *testing.T, pred func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var out string
	for {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		out = buf.String()
		if pred(out) || time.Now().After(deadline) {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolSubmitLabeled: labels must be visible on the pool goroutine
// while the task runs (the goroutine profile is how an operator
// attributes a hot worker to a job) and must not leak onto the next
// task — pool goroutines are long-lived, so a leak would mislabel every
// later job.
func TestPoolSubmitLabeled(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	p.SubmitLabeled(func() {
		close(started)
		<-release
	}, "job", "j000042", "phase", "test")
	<-started
	out := goroutineProfile(t, func(s string) bool {
		return strings.Contains(s, `"job":"j000042"`)
	})
	close(release)
	p.Wait()
	if !strings.Contains(out, `"job":"j000042"`) || !strings.Contains(out, `"phase":"test"`) {
		t.Fatalf("goroutine profile missing task labels:\n%s", out)
	}

	// Inheritance: goroutines the task spawns (ForEach workers, engine
	// waves) carry the labels too.
	started2 := make(chan struct{})
	release2 := make(chan struct{})
	var wg sync.WaitGroup
	p.SubmitLabeled(func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			close(started2)
			<-release2
		}()
		wg.Wait()
	}, "job", "j000043")
	<-started2
	out = goroutineProfile(t, func(s string) bool {
		return strings.Contains(s, `"job":"j000043"`)
	})
	close(release2)
	p.Wait()
	if !strings.Contains(out, `"job":"j000043"`) {
		t.Fatalf("spawned goroutine did not inherit task labels:\n%s", out)
	}

	// No leak: a plain Submit on the same (sole) goroutine must run
	// unlabeled.
	clean := make(chan bool, 1)
	p.Submit(func() {
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		prof := buf.String()
		// Our own goroutine must not carry the previous task's labels.
		clean <- !strings.Contains(prof, "j000042") && !strings.Contains(prof, "j000043")
	})
	p.Wait()
	if !<-clean {
		t.Fatal("labels leaked from SubmitLabeled onto a later plain task")
	}
}
