package stats

import (
	"math"
	"testing"

	"carbon/internal/rng"
)

func TestFriedmanKnownExample(t *testing.T) {
	// Classic textbook data (Conover): 3 treatments, 4 blocks.
	data := [][]float64{
		{9.5, 11.4, 12.8},
		{9.8, 11.2, 12.4},
		{9.1, 10.9, 12.9},
		{9.4, 11.0, 12.5},
	}
	chi2, p, ranks, err := Friedman(data)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect ordering in every block: ranks 1, 2, 3; chi2 = 12·n/(k(k+1))·Σ(r−2)² = 8.
	if math.Abs(chi2-8) > 1e-9 {
		t.Fatalf("chi2 = %v, want 8", chi2)
	}
	want := []float64{1, 2, 3}
	for j := range ranks {
		if math.Abs(ranks[j]-want[j]) > 1e-12 {
			t.Fatalf("ranks = %v", ranks)
		}
	}
	if p > 0.02 || p < 0.01 {
		t.Fatalf("p = %v, want ≈ 0.018 (chi2=8, df=2)", p)
	}
}

func TestFriedmanNoDifference(t *testing.T) {
	// Identical treatments: all ranks tie at (k+1)/2, chi2 = 0, p = 1.
	data := [][]float64{
		{5, 5, 5}, {7, 7, 7}, {2, 2, 2},
	}
	chi2, p, ranks, err := Friedman(data)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 != 0 || p != 1 {
		t.Fatalf("chi2=%v p=%v", chi2, p)
	}
	for _, r := range ranks {
		if r != 2 {
			t.Fatalf("ranks = %v", ranks)
		}
	}
}

func TestFriedmanFalsePositiveRate(t *testing.T) {
	r := rng.New(113)
	rejections := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		data := make([][]float64, 12)
		for i := range data {
			data[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		_, p, _, err := Friedman(data)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.05 {
			rejections++
		}
	}
	if rate := float64(rejections) / trials; rate > 0.10 {
		t.Fatalf("false positive rate %v", rate)
	}
}

func TestFriedmanDetectsRealDifference(t *testing.T) {
	r := rng.New(127)
	data := make([][]float64, 20)
	for i := range data {
		data[i] = []float64{
			r.NormFloat64(),     // algo 0: baseline
			r.NormFloat64() + 2, // algo 1: clearly worse
			r.NormFloat64() + 4, // algo 2: much worse
		}
	}
	_, p, ranks, err := Friedman(data)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-4 {
		t.Fatalf("p = %v for clearly separated algorithms", p)
	}
	if !(ranks[0] < ranks[1] && ranks[1] < ranks[2]) {
		t.Fatalf("ranks not ordered: %v", ranks)
	}
}

func TestFriedmanValidation(t *testing.T) {
	if _, _, _, err := Friedman(nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, _, _, err := Friedman([][]float64{{1}, {2}}); err == nil {
		t.Fatal("single treatment accepted")
	}
	if _, _, _, err := Friedman([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged data accepted")
	}
}

func TestNemenyiCD(t *testing.T) {
	// Demšar's canonical setup: k=4, n=30, alpha=0.05 → CD ≈ 0.857·q…
	cd, err := NemenyiCD(4, 30, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.569 * math.Sqrt(float64(4*5)/(6*30))
	if math.Abs(cd-want) > 1e-9 {
		t.Fatalf("CD = %v, want %v", cd, want)
	}
	if _, err := NemenyiCD(15, 30, 0.05); err == nil {
		t.Fatal("k out of range accepted")
	}
	if _, err := NemenyiCD(4, 1, 0.05); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NemenyiCD(4, 30, 0.01); err == nil {
		t.Fatal("unsupported alpha accepted")
	}
	cd10, err := NemenyiCD(4, 30, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cd10 >= cd {
		t.Fatal("CD at alpha 0.10 should be smaller than at 0.05")
	}
}

func TestChiSquaredSurvival(t *testing.T) {
	// Reference values: P(X > 3.841; df=1) = 0.05, P(X > 5.991; df=2) = 0.05,
	// P(X > 7.815; df=3) = 0.05.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{0, 5, 1},
		{2.366, 3, 0.50},
	}
	for _, c := range cases {
		if got := chiSquaredSurvival(c.x, c.df); math.Abs(got-c.want) > 2e-3 {
			t.Fatalf("chi2 survival(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}
