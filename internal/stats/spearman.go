package stats

import (
	"math"
	"sort"
)

// Spearman returns the Spearman rank correlation ρ of the paired
// samples x and y, using average ranks for ties (the textbook
// definition: Pearson correlation of the rank vectors). It returns 0
// when the samples have fewer than two pairs, differ in length, or
// either side is constant — the cases where a correlation is undefined.
//
// In CARBON it measures selection pressure: the correlation between
// parents' fitness and their offspring's fitness within one generation.
// Values near 1 mean fitness is strongly heritable (selection is
// driving the search); values near 0 mean variation has decoupled
// offspring quality from parent quality.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx, ry := Ranks(x), Ranks(y)
	mx, my := Mean(rx), Mean(ry)
	var sxy, sxx, syy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks assigns 1-based ranks to xs, averaging over ties.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j share a value; each gets the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
