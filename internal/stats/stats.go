// Package stats implements the descriptive and inferential statistics
// used by the experiment harness: per-cell summaries for Tables III/IV
// (mean, stddev, median, best), the Mann–Whitney/Wilcoxon rank-sum test
// used to claim that CARBON's gaps dominate COBRA's, and alignment and
// averaging of convergence series for Figures 4/5.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It panics on an empty
// sample: every experiment cell must contain at least one run.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RankSum performs a two-sided Mann–Whitney U test (normal approximation
// with tie correction and continuity correction) for samples a and b.
// It returns the U statistic for a and the two-sided p-value. Suitable
// for the 30-run samples the paper uses; the normal approximation is
// standard for n >= 8 per group.
func RankSum(a, b []float64) (u float64, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		panic("stats: RankSum with empty sample")
	}
	type obs struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate tie correction term Σ(t³-t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - float64(n1*(n1+1))/2
	mu := float64(n1) * float64(n2) / 2
	nTot := float64(n1 + n2)
	sigma2 := float64(n1) * float64(n2) / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of difference.
		return u, 1
	}
	// Continuity correction toward the mean.
	diff := u - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	z := diff / math.Sqrt(sigma2)
	p = 2 * normalSurvival(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normalSurvival returns P(Z > z) for a standard normal Z.
func normalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Series is a convergence curve: Y[i] is the tracked quantity after
// X[i] fitness evaluations.
type Series struct {
	X []float64
	Y []float64
}

// SampleAt returns the series value at evaluation count x using
// step-function (last-observation-carried-forward) interpolation; before
// the first point it returns the first Y.
func (s Series) SampleAt(x float64) float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	// Binary search for the last index with X[i] <= x.
	lo, hi := 0, len(s.X)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.X[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return s.Y[0]
	}
	return s.Y[lo-1]
}

// AverageSeries resamples every input series onto a common grid of
// `points` evaluation counts spanning [0, maxX] and returns the mean
// curve. It is how Figures 4/5 average 30 runs whose archive-improvement
// events happen at different evaluation counts.
func AverageSeries(runs []Series, points int) Series {
	if len(runs) == 0 || points <= 0 {
		return Series{}
	}
	maxX := 0.0
	for _, r := range runs {
		if n := len(r.X); n > 0 && r.X[n-1] > maxX {
			maxX = r.X[n-1]
		}
	}
	out := Series{X: make([]float64, points), Y: make([]float64, points)}
	for i := 0; i < points; i++ {
		x := maxX * float64(i) / float64(points-1)
		if points == 1 {
			x = maxX
		}
		sum, n := 0.0, 0
		for _, r := range runs {
			v := r.SampleAt(x)
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		out.X[i] = x
		if n > 0 {
			out.Y[i] = sum / float64(n)
		} else {
			out.Y[i] = math.NaN()
		}
	}
	return out
}

// Monotonicity quantifies how monotone a curve is in the given
// direction (+1 increasing, -1 decreasing): the fraction of consecutive
// steps that move in that direction or stay equal, in [0,1]. A smooth
// CARBON curve scores near 1; COBRA's see-saw scores visibly lower.
func Monotonicity(y []float64, direction int) float64 {
	if len(y) < 2 {
		return 1
	}
	good := 0
	for i := 1; i < len(y); i++ {
		d := y[i] - y[i-1]
		if (direction >= 0 && d >= 0) || (direction < 0 && d <= 0) {
			good++
		}
	}
	return float64(good) / float64(len(y)-1)
}

// SeeSaw counts direction reversals (sign changes of consecutive
// differences, ignoring zero steps). Higher means more oscillation —
// the signature shape of COBRA's curves in Fig. 5.
func SeeSaw(y []float64) int {
	prev := 0
	reversals := 0
	for i := 1; i < len(y); i++ {
		d := y[i] - y[i-1]
		s := 0
		if d > 0 {
			s = 1
		} else if d < 0 {
			s = -1
		}
		if s != 0 {
			if prev != 0 && s != prev {
				reversals++
			}
			prev = s
		}
	}
	return reversals
}
