package stats

import (
	"math"
	"testing"
	"testing/quick"

	"carbon/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.Median != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("bad single-element summary: %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if got := Summarize([]float64{9, 1, 5}).Median; got != 5 {
		t.Fatalf("odd median = %v", got)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestSummarizeProperties(t *testing.T) {
	r := rng.New(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-100, 100)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestRankSumIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	_, p := RankSum(a, a)
	if p < 0.9 {
		t.Fatalf("identical samples: p = %v, want ~1", p)
	}
}

func TestRankSumClearlySeparated(t *testing.T) {
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = float64(i)        // 0..29
		b[i] = float64(i) + 1000 // 1000..1029
	}
	u, p := RankSum(a, b)
	if u != 0 {
		t.Fatalf("U = %v, want 0 when a entirely below b", u)
	}
	if p > 1e-6 {
		t.Fatalf("separated samples: p = %v, want tiny", p)
	}
}

func TestRankSumSymmetry(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 20)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = r.NormFloat64() + 0.5
	}
	ua, pa := RankSum(a, b)
	ub, pb := RankSum(b, a)
	if math.Abs(pa-pb) > 1e-9 {
		t.Fatalf("p not symmetric: %v vs %v", pa, pb)
	}
	if math.Abs(ua+ub-float64(len(a)*len(b))) > 1e-9 {
		t.Fatalf("U_a + U_b = %v, want n1*n2 = %d", ua+ub, len(a)*len(b))
	}
}

func TestRankSumAllTied(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5, 5, 5}
	_, p := RankSum(a, b)
	if p != 1 {
		t.Fatalf("all-tied p = %v, want 1", p)
	}
}

func TestRankSumFalsePositiveRate(t *testing.T) {
	// Under H0, p < 0.05 should occur ~5% of the time.
	r := rng.New(3)
	const trials = 400
	rejections := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 15)
		b := make([]float64, 15)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		if _, p := RankSum(a, b); p < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.10 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestSeriesSampleAt(t *testing.T) {
	s := Series{X: []float64{10, 20, 30}, Y: []float64{1, 2, 3}}
	cases := []struct{ x, want float64 }{
		{0, 1}, {10, 1}, {15, 1}, {20, 2}, {29.9, 2}, {30, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := s.SampleAt(c.x); got != c.want {
			t.Fatalf("SampleAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSeriesSampleAtEmpty(t *testing.T) {
	if !math.IsNaN((Series{}).SampleAt(5)) {
		t.Fatal("empty series should sample NaN")
	}
}

func TestAverageSeries(t *testing.T) {
	runs := []Series{
		{X: []float64{0, 100}, Y: []float64{0, 10}},
		{X: []float64{0, 100}, Y: []float64{0, 20}},
	}
	avg := AverageSeries(runs, 11)
	if len(avg.X) != 11 {
		t.Fatalf("len = %d", len(avg.X))
	}
	if avg.Y[10] != 15 {
		t.Fatalf("final average = %v, want 15", avg.Y[10])
	}
	if avg.X[0] != 0 || avg.X[10] != 100 {
		t.Fatalf("grid endpoints = %v..%v", avg.X[0], avg.X[10])
	}
}

func TestAverageSeriesEmpty(t *testing.T) {
	if got := AverageSeries(nil, 10); len(got.X) != 0 {
		t.Fatal("empty input should give empty series")
	}
	if got := AverageSeries([]Series{{X: []float64{1}, Y: []float64{1}}}, 0); len(got.X) != 0 {
		t.Fatal("zero points should give empty series")
	}
}

func TestMonotonicity(t *testing.T) {
	inc := []float64{1, 2, 3, 4, 5}
	if m := Monotonicity(inc, +1); m != 1 {
		t.Fatalf("increasing curve: %v", m)
	}
	if m := Monotonicity(inc, -1); m != 0 {
		t.Fatalf("increasing curve judged decreasing: %v", m)
	}
	saw := []float64{1, 3, 2, 4, 3, 5}
	if m := Monotonicity(saw, +1); m != 0.6 {
		t.Fatalf("see-saw monotonicity = %v, want 0.6", m)
	}
	if m := Monotonicity([]float64{7}, +1); m != 1 {
		t.Fatalf("singleton monotonicity = %v", m)
	}
}

func TestSeeSaw(t *testing.T) {
	if s := SeeSaw([]float64{1, 2, 3, 4}); s != 0 {
		t.Fatalf("monotone SeeSaw = %d", s)
	}
	if s := SeeSaw([]float64{1, 3, 2, 4, 3, 5}); s != 4 {
		t.Fatalf("oscillating SeeSaw = %d, want 4", s)
	}
	if s := SeeSaw([]float64{1, 1, 1}); s != 0 {
		t.Fatalf("flat SeeSaw = %d", s)
	}
	// Zero steps must not reset direction tracking.
	if s := SeeSaw([]float64{1, 2, 2, 1}); s != 1 {
		t.Fatalf("plateau SeeSaw = %d, want 1", s)
	}
}
