package stats

import (
	"fmt"
	"math"
	"sort"
)

// Friedman performs the Friedman rank test for k related samples
// (algorithms) over n blocks (runs/instances): data[i][j] is algorithm
// j's measurement in block i, lower = better. It returns the Friedman
// chi-squared statistic, its p-value (chi-squared approximation with
// k−1 degrees of freedom), and the mean rank of each algorithm.
//
// This is the standard omnibus test for comparing multiple evolutionary
// algorithms across runs (Demšar 2006); the taxonomy comparison uses it
// before pairwise Nemenyi distances.
func Friedman(data [][]float64) (chi2, p float64, meanRanks []float64, err error) {
	n := len(data)
	if n < 2 {
		return 0, 0, nil, fmt.Errorf("stats: Friedman needs at least 2 blocks, got %d", n)
	}
	k := len(data[0])
	if k < 2 {
		return 0, 0, nil, fmt.Errorf("stats: Friedman needs at least 2 treatments, got %d", k)
	}
	for i, row := range data {
		if len(row) != k {
			return 0, 0, nil, fmt.Errorf("stats: block %d has %d entries, want %d", i, len(row), k)
		}
	}
	meanRanks = make([]float64, k)
	type obs struct {
		v float64
		j int
	}
	row := make([]obs, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			row[j] = obs{data[i][j], j}
		}
		sort.Slice(row, func(a, b int) bool { return row[a].v < row[b].v })
		// Midranks for ties.
		for a := 0; a < k; {
			b := a
			for b < k && row[b].v == row[a].v {
				b++
			}
			mid := float64(a+b+1) / 2
			for c := a; c < b; c++ {
				meanRanks[row[c].j] += mid
			}
			a = b
		}
	}
	for j := range meanRanks {
		meanRanks[j] /= float64(n)
	}
	sum := 0.0
	for _, r := range meanRanks {
		d := r - float64(k+1)/2
		sum += d * d
	}
	chi2 = 12 * float64(n) / float64(k*(k+1)) * sum
	p = chiSquaredSurvival(chi2, k-1)
	return chi2, p, meanRanks, nil
}

// NemenyiCD returns the critical difference of mean ranks at the given
// significance for k treatments over n blocks: pairs of algorithms whose
// mean-rank distance exceeds the CD differ significantly. Supported
// alphas: 0.05 and 0.10 for k in [2, 10].
func NemenyiCD(k, n int, alpha float64) (float64, error) {
	// Studentized-range derived q_alpha values (Demšar 2006, Table 5):
	// q_alpha / sqrt(2) already folded in the CD formula below uses raw
	// q_alpha values.
	q05 := []float64{0, 0, 1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164}
	q10 := []float64{0, 0, 1.645, 2.052, 2.291, 2.459, 2.589, 2.693, 2.780, 2.855, 2.920}
	if k < 2 || k > 10 {
		return 0, fmt.Errorf("stats: NemenyiCD supports k in [2,10], got %d", k)
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: NemenyiCD needs n >= 2, got %d", n)
	}
	var q float64
	switch alpha {
	case 0.05:
		q = q05[k]
	case 0.10:
		q = q10[k]
	default:
		return 0, fmt.Errorf("stats: NemenyiCD supports alpha 0.05 or 0.10, got %v", alpha)
	}
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n))), nil
}

// chiSquaredSurvival returns P(X > x) for a chi-squared variable with
// df degrees of freedom, via the regularized upper incomplete gamma
// function Q(df/2, x/2).
func chiSquaredSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(float64(df)/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) using the series
// for x < a+1 and the continued fraction otherwise (Numerical Recipes
// style), accurate to ~1e-12 for the small df used here.
func upperGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// P(a,x) by series, Q = 1 - P.
		sum := 1 / a
		term := sum
		for n := 1; n < 500; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		p := sum * math.Exp(-x+a*math.Log(x)-lg)
		return 1 - p
	}
	// Q(a,x) by continued fraction (modified Lentz).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
