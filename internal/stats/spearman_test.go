package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	if !reflect.DeepEqual(got, []float64{1, 3, 2}) {
		t.Fatalf("ranks %v", got)
	}
	// Ties share the average of the ranks they span: 20,20 at positions
	// 2 and 3 both get 2.5.
	got = Ranks([]float64{10, 20, 20, 40})
	if !reflect.DeepEqual(got, []float64{1, 2.5, 2.5, 4}) {
		t.Fatalf("tied ranks %v", got)
	}
	if got = Ranks(nil); len(got) != 0 {
		t.Fatalf("empty ranks %v", got)
	}
}

func TestSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	down := []float64{5, 4, 3, 2, 1}

	// Any monotone relationship is ±1 regardless of scale or shape.
	if r := Spearman(x, up); math.Abs(r-1) > 1e-12 {
		t.Fatalf("increasing ρ=%v, want 1", r)
	}
	if r := Spearman(x, down); math.Abs(r+1) > 1e-12 {
		t.Fatalf("decreasing ρ=%v, want -1", r)
	}
	exp := []float64{math.Exp(1), math.Exp(2), math.Exp(3), math.Exp(4), math.Exp(5)}
	if r := Spearman(x, exp); math.Abs(r-1) > 1e-12 {
		t.Fatalf("nonlinear monotone ρ=%v, want 1", r)
	}

	// Textbook worked example with a tie.
	xs := []float64{86, 97, 99, 100, 101, 103, 106, 110, 112, 113}
	ys := []float64{2, 20, 28, 27, 50, 29, 7, 17, 6, 12}
	if r := Spearman(xs, ys); math.Abs(r+0.17575757575757575) > 1e-12 {
		t.Fatalf("worked-example ρ=%v", r)
	}

	// Undefined cases → 0.
	if r := Spearman(x, x[:3]); r != 0 {
		t.Fatalf("length mismatch ρ=%v", r)
	}
	if r := Spearman([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("single pair ρ=%v", r)
	}
	if r := Spearman(x, []float64{7, 7, 7, 7, 7}); r != 0 {
		t.Fatalf("constant side ρ=%v", r)
	}
}
