package archive

import (
	"fmt"
	"testing"
	"testing/quick"

	"carbon/internal/rng"
)

func TestOrderingMinimize(t *testing.T) {
	a := New[string](3, true, nil)
	a.Add("c", 3)
	a.Add("a", 1)
	a.Add("b", 2)
	got := a.Entries()
	want := []float64{1, 2, 3}
	for i, e := range got {
		if e.Fitness != want[i] {
			t.Fatalf("order %v", got)
		}
	}
	best, ok := a.Best()
	if !ok || best.Item != "a" {
		t.Fatalf("Best = %+v", best)
	}
}

func TestOrderingMaximize(t *testing.T) {
	a := New[int](3, false, nil)
	a.Add(1, 1)
	a.Add(3, 3)
	a.Add(2, 2)
	if best, _ := a.Best(); best.Fitness != 3 {
		t.Fatalf("max archive best = %v", best.Fitness)
	}
}

func TestCapacityEviction(t *testing.T) {
	a := New[int](2, true, nil)
	if !a.Add(1, 10) || !a.Add(2, 20) {
		t.Fatal("initial adds rejected")
	}
	if a.Add(3, 30) {
		t.Fatal("worse-than-worst accepted at capacity")
	}
	if !a.Add(4, 5) {
		t.Fatal("better item rejected")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	es := a.Entries()
	if es[0].Fitness != 5 || es[1].Fitness != 10 {
		t.Fatalf("entries after eviction: %v", es)
	}
}

func TestEqualFitnessAtCapacityRejected(t *testing.T) {
	a := New[int](1, true, nil)
	a.Add(1, 10)
	if a.Add(2, 10) {
		t.Fatal("equal fitness should not evict")
	}
}

func TestBestEmpty(t *testing.T) {
	a := New[int](4, true, nil)
	if _, ok := a.Best(); ok {
		t.Fatal("Best on empty archive returned ok")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int](0, true, nil)
}

func TestDedupKeepsBetter(t *testing.T) {
	key := func(s string) string { return s }
	a := New[string](10, true, key)
	a.Add("x", 5)
	if a.Add("x", 7) {
		t.Fatal("worse duplicate accepted")
	}
	if !a.Add("x", 3) {
		t.Fatal("better duplicate rejected")
	}
	if a.Len() != 1 {
		t.Fatalf("dedup failed: Len = %d", a.Len())
	}
	if best, _ := a.Best(); best.Fitness != 3 {
		t.Fatalf("best = %v", best.Fitness)
	}
}

func TestDedupWithEviction(t *testing.T) {
	key := func(s string) string { return s }
	a := New[string](2, true, key)
	a.Add("a", 1)
	a.Add("b", 2)
	a.Add("c", 0) // evicts b
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	// b's key must have been forgotten: re-adding b at a better fitness
	// must work as a fresh insert.
	if !a.Add("b", 0.5) {
		t.Fatal("evicted key still blocking")
	}
	es := a.Entries()
	if es[0].Item != "c" || es[1].Item != "b" {
		t.Fatalf("entries %v", es)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	r := rng.New(42)
	f := func(capRaw uint8, seed uint16) bool {
		capacity := int(capRaw%10) + 1
		rr := rng.New(uint64(seed))
		a := New[int](capacity, true, func(v int) string { return fmt.Sprint(v % 7) })
		for op := 0; op < 200; op++ {
			a.Add(rr.Intn(50), float64(rr.Intn(30)))
			if a.Len() > capacity {
				return false
			}
			// best-first order
			es := a.Entries()
			for i := 1; i < len(es); i++ {
				if es[i-1].Fitness > es[i].Fitness {
					return false
				}
			}
			// dedup: no two entries share a key
			keys := map[string]bool{}
			for _, e := range es {
				k := fmt.Sprint(e.Item % 7)
				if keys[k] {
					return false
				}
				keys[k] = true
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAtAccess(t *testing.T) {
	a := New[int](5, true, nil)
	for i := 5; i > 0; i-- {
		a.Add(i, float64(i))
	}
	for i := 0; i < 5; i++ {
		if a.At(i).Fitness != float64(i+1) {
			t.Fatalf("At(%d) = %v", i, a.At(i).Fitness)
		}
	}
}

func TestBestNeverWorsensUnderAdds(t *testing.T) {
	// Monotone improvement invariant used by the convergence recorders.
	r := rng.New(7)
	a := New[int](10, true, nil)
	bestSeen := 1e18
	for i := 0; i < 1000; i++ {
		f := r.Range(0, 100)
		a.Add(i, f)
		if f < bestSeen {
			bestSeen = f
		}
		if got, _ := a.Best(); got.Fitness != bestSeen {
			t.Fatalf("best %v != running min %v", got.Fitness, bestSeen)
		}
	}
}
