// Package archive implements the bounded elite archives both CARBON and
// COBRA maintain at each level (Table II: "UL/LL Archive size 100";
// Algorithm 1 lines 6 and 9). An archive keeps the best K entries ever
// offered to it, ordered best-first, with optional deduplication by a
// caller-supplied key.
package archive

import "sort"

// Entry pairs an archived item with the fitness it was archived at.
type Entry[T any] struct {
	Item    T
	Fitness float64
}

// Archive is a bounded best-K container. Lower fitness is better when
// Minimize is true, higher otherwise. The zero value is unusable; use New.
type Archive[T any] struct {
	cap      int
	minimize bool
	key      func(T) string // optional dedup key; nil disables dedup
	entries  []Entry[T]
	seen     map[string]int // key → index in entries
}

// New creates an archive holding at most capacity entries. key may be
// nil (no deduplication); when set, offering an item whose key is
// already present keeps only the better of the two.
func New[T any](capacity int, minimize bool, key func(T) string) *Archive[T] {
	if capacity <= 0 {
		panic("archive: non-positive capacity")
	}
	a := &Archive[T]{cap: capacity, minimize: minimize, key: key}
	if key != nil {
		a.seen = make(map[string]int)
	}
	return a
}

func (a *Archive[T]) better(x, y float64) bool {
	if a.minimize {
		return x < y
	}
	return x > y
}

// Add offers an item. It returns true if the archive changed (the item
// was inserted, possibly evicting the worst entry or a duplicate).
func (a *Archive[T]) Add(item T, fitness float64) bool {
	if a.key != nil {
		k := a.key(item)
		if idx, dup := a.seen[k]; dup {
			if !a.better(fitness, a.entries[idx].Fitness) {
				return false
			}
			// Replace in place, then restore order.
			a.entries[idx].Fitness = fitness
			a.entries[idx].Item = item
			a.resort()
			return true
		}
	}
	if len(a.entries) >= a.cap {
		worst := a.entries[len(a.entries)-1].Fitness
		if !a.better(fitness, worst) {
			return false
		}
		evicted := a.entries[len(a.entries)-1]
		a.entries = a.entries[:len(a.entries)-1]
		if a.key != nil {
			delete(a.seen, a.key(evicted.Item))
		}
	}
	// Insert keeping best-first order.
	pos := sort.Search(len(a.entries), func(i int) bool {
		return a.better(fitness, a.entries[i].Fitness)
	})
	a.entries = append(a.entries, Entry[T]{})
	copy(a.entries[pos+1:], a.entries[pos:])
	a.entries[pos] = Entry[T]{Item: item, Fitness: fitness}
	if a.key != nil {
		a.reindex(pos)
	}
	return true
}

func (a *Archive[T]) resort() {
	sort.SliceStable(a.entries, func(i, j int) bool {
		return a.better(a.entries[i].Fitness, a.entries[j].Fitness)
	})
	if a.key != nil {
		a.reindex(0)
	}
}

func (a *Archive[T]) reindex(from int) {
	for i := from; i < len(a.entries); i++ {
		a.seen[a.key(a.entries[i].Item)] = i
	}
}

// Len returns the number of archived entries.
func (a *Archive[T]) Len() int { return len(a.entries) }

// Best returns the best entry; ok is false when the archive is empty.
func (a *Archive[T]) Best() (Entry[T], bool) {
	if len(a.entries) == 0 {
		return Entry[T]{}, false
	}
	return a.entries[0], true
}

// At returns the i-th best entry (0 = best).
func (a *Archive[T]) At(i int) Entry[T] { return a.entries[i] }

// Entries returns a copy of all entries, best-first.
func (a *Archive[T]) Entries() []Entry[T] {
	return append([]Entry[T](nil), a.entries...)
}
