package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	var all uint64
	for i := 0; i < 10; i++ {
		all |= r.Uint64()
	}
	if all == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatal("sibling children produced identical output")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(9), New(9)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	// Chi-squared with 9 dof; 99.9% critical value ≈ 27.88.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn uniformity chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestIntRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 4)
		if v < -3 || v > 4 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2.5, 7.5)
		if v < -2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(23)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(37)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		p := r.Perm(n)
		counts[p[0]]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 0.05*expected {
			t.Fatalf("element %d first with count %d, expected ~%v", v, c, expected)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(41)
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleDistinct(k, n)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctPanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleDistinct(5, 3)
}

func TestSampleDistinctFull(t *testing.T) {
	s := New(43).SampleDistinct(8, 8)
	seen := make([]bool, 8)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("full sample missing %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
