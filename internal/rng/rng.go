// Package rng provides a small, fast, deterministic and splittable
// pseudo-random number generator for reproducible parallel experiments.
//
// The generator is xoshiro256** seeded through splitmix64, the
// combination recommended by Blackman & Vigna. Every stochastic
// component in this repository (instance generation, GA/GP operators,
// CARBON/COBRA runs) draws from an *explicit* *rng.Rand so that a run is
// fully determined by its seed, independent of goroutine scheduling:
// parallel work is given independent child generators via Split, never a
// shared one.
package rng

import "math"

// Rand is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; use Split to derive independent generators for
// concurrent workers.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used both to seed xoshiro state and to derive child seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed (including 0) is
// valid: splitmix64 expansion guarantees a non-zero xoshiro state.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically
// independent of r's. The child is seeded by hashing fresh output of r
// through splitmix64, so repeated Splits yield distinct children.
func (r *Rand) Split() *Rand {
	x := r.Uint64()
	c := &Rand{}
	for i := range c.s {
		c.s[i] = splitmix64(&x)
	}
	return c
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits → uniform dyadic rationals in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// IntRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher–Yates shuffle.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle using swap, like
// math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// State returns the generator's internal state for checkpointing.
func (r *Rand) State() [4]uint64 { return r.s }

// Restore overwrites the generator's state with a previously captured
// State, resuming the exact stream. An all-zero state is rejected (it is
// the one invalid xoshiro state and can never be produced by State).
func (r *Rand) Restore(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroState
	}
	r.s = s
	return nil
}

var errZeroState = errorString("rng: all-zero state is invalid")

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

// SampleDistinct returns k distinct uniform indices from [0, n).
// Panics if k > n. Uses Floyd's algorithm: O(k) draws, no O(n) scratch.
func (r *Rand) SampleDistinct(k, n int) []int {
	if k > n {
		panic("rng: SampleDistinct with k > n")
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
