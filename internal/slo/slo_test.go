package slo

import (
	"strings"
	"testing"
	"time"

	"carbon/internal/core"
	"carbon/internal/telemetry"
)

func gaugeFam(name string, vals map[string]float64) telemetry.Family {
	f := telemetry.Family{Name: name, Kind: "gauge"}
	for w, v := range vals {
		f.Series = append(f.Series, telemetry.Series{
			Labels: map[string]string{telemetry.WorkerLabel: w}, Value: v,
		})
	}
	return f
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(`
# fleet SLOs
queue-wait-p90  carbond_span_queue_wait_ms  p90  >  500  for 2s
dead-jobs       carbond_serve_jobs_dead     sum  >  0
retry-rate      carbond_serve_retries       rate >  0.5  for 5s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if rules[0].For != 2*time.Second || rules[0].Agg != "p90" || rules[0].Threshold != 500 {
		t.Fatalf("rule 0: %+v", rules[0])
	}
	if rules[1].For != 0 || rules[1].Op != ">" {
		t.Fatalf("rule 1: %+v", rules[1])
	}

	for _, bad := range []string{
		"r m value > x",                // bad threshold
		"r m max > 1",                  // unknown agg
		"r m value ~ 1",                // unknown op
		"r m value > 1 for -2s",        // negative window
		"r m value > 1 until 2s",       // not `for`
		"a m value > 1\na m value > 2", // duplicate name
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("parsed %q without error", bad)
		}
	}
}

func TestEvaluatorValueSumFireAndClear(t *testing.T) {
	ev := NewEvaluator([]Rule{
		{Name: "deep-queue", Metric: "m_depth", Agg: "value", Op: ">", Threshold: 4},
		{Name: "dead", Metric: "m_dead", Agg: "sum", Op: ">", Threshold: 0},
	})
	t0 := time.Unix(1000, 0)
	fams := []telemetry.Family{
		gaugeFam("m_depth", map[string]float64{"w0": 2, "w1": 7}),
		gaugeFam("m_dead", map[string]float64{"w0": 0, "w1": 0}),
	}
	alerts := ev.Evaluate(fams, t0)
	if len(alerts) != 1 || alerts[0].Rule != "deep-queue" || alerts[0].State != StateFiring {
		t.Fatalf("alerts: %+v", alerts)
	}
	if alerts[0].Value != 7 { // worst worker, not the sum
		t.Fatalf("value agg took %v, want 7", alerts[0].Value)
	}

	// Queue drains, a job dies: deep-queue clears, dead fires.
	fams = []telemetry.Family{
		gaugeFam("m_depth", map[string]float64{"w0": 1, "w1": 1}),
		gaugeFam("m_dead", map[string]float64{"w0": 1, "w1": 0}),
	}
	alerts = ev.Evaluate(fams, t0.Add(time.Second))
	if len(alerts) != 1 || alerts[0].Rule != "dead" || alerts[0].Value != 1 {
		t.Fatalf("after clear: %+v", alerts)
	}
}

func TestEvaluatorForWindow(t *testing.T) {
	ev := NewEvaluator([]Rule{
		{Name: "sustained", Metric: "m", Agg: "value", Op: ">=", Threshold: 1, For: 3 * time.Second},
	})
	t0 := time.Unix(2000, 0)
	hot := []telemetry.Family{gaugeFam("m", map[string]float64{"w0": 1})}
	cold := []telemetry.Family{gaugeFam("m", map[string]float64{"w0": 0})}

	if a := ev.Evaluate(hot, t0); len(a) != 1 || a[0].State != StatePending {
		t.Fatalf("t0: %+v", a)
	}
	if a := ev.Evaluate(hot, t0.Add(2*time.Second)); len(a) != 1 || a[0].State != StatePending {
		t.Fatalf("t+2: %+v", a)
	}
	a := ev.Evaluate(hot, t0.Add(3*time.Second))
	if len(a) != 1 || a[0].State != StateFiring || !a[0].Since.Equal(t0) {
		t.Fatalf("t+3: %+v", a)
	}
	// A dip resets the window: pending again from scratch.
	if a := ev.Evaluate(cold, t0.Add(4*time.Second)); len(a) != 0 {
		t.Fatalf("cold: %+v", a)
	}
	if a := ev.Evaluate(hot, t0.Add(5*time.Second)); len(a) != 1 || a[0].State != StatePending {
		t.Fatalf("re-arm: %+v", a)
	}
}

func TestEvaluatorRate(t *testing.T) {
	ev := NewEvaluator([]Rule{
		{Name: "retry-rate", Metric: "m_retries", Agg: "rate", Op: ">", Threshold: 0.5},
	})
	t0 := time.Unix(3000, 0)
	at := func(v float64) []telemetry.Family {
		return []telemetry.Family{{Name: "m_retries", Kind: "counter",
			Series: []telemetry.Series{{Value: v}}}}
	}
	// First sight: no rate yet, never fires.
	if a := ev.Evaluate(at(10), t0); len(a) != 0 {
		t.Fatalf("first eval fired: %+v", a)
	}
	// +8 over 10s = 0.8/s > 0.5.
	a := ev.Evaluate(at(18), t0.Add(10*time.Second))
	if len(a) != 1 || a[0].Value != 0.8 {
		t.Fatalf("rate: %+v", a)
	}
	// Flat counter clears.
	if a := ev.Evaluate(at(18), t0.Add(20*time.Second)); len(a) != 0 {
		t.Fatalf("flat: %+v", a)
	}
}

func TestEvaluatorQuantile(t *testing.T) {
	ev := NewEvaluator([]Rule{
		{Name: "slow-wait", Metric: "m_wait_ms", Agg: "p90", Op: ">", Threshold: 50},
	})
	hist := func(buckets []float64, count, sum float64) []telemetry.Family {
		return []telemetry.Family{{Name: "m_wait_ms", Kind: "histogram",
			Series: []telemetry.Series{{
				Bounds: []float64{10, 100, 1000}, Buckets: buckets, Count: count, Sum: sum,
			}}}}
	}
	// 10 obs all ≤10ms: p90 ≈ 9 — quiet.
	if a := ev.Evaluate(hist([]float64{10, 10, 10}, 10, 50), time.Unix(0, 0)); len(a) != 0 {
		t.Fatalf("fast: %+v", a)
	}
	// 10 obs in (10,100]: p90 > 50 — fires.
	a := ev.Evaluate(hist([]float64{0, 10, 10}, 10, 500), time.Unix(1, 0))
	if len(a) != 1 {
		t.Fatalf("slow: %+v", a)
	}
	// Absent family never fires.
	if a := ev.Evaluate(nil, time.Unix(2, 0)); len(a) != 0 {
		t.Fatalf("absent: %+v", a)
	}
}

func TestAlertFamilies(t *testing.T) {
	fams := AlertFamilies([]Alert{
		{Rule: "a", State: StateFiring},
		{Rule: "b", State: StatePending},
	})
	per := telemetry.FindFamily(fams, "carbonfleet_alert")
	if per == nil || len(per.Series) != 2 {
		t.Fatalf("per-rule family: %+v", per)
	}
	total := telemetry.FindFamily(fams, "carbonfleet_alerts_firing")
	if total == nil || total.Series[0].Value != 1 {
		t.Fatalf("firing count: %+v", total)
	}
	// The families must merge and render like any scrape.
	merged, err := telemetry.Merge(telemetry.Scrape{Worker: "router", Families: fams})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetry.WriteFamilies(&sb, merged); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `carbonfleet_alert{rule="a",worker="router"} 1`) {
		t.Fatalf("rendered alerts:\n%s", sb.String())
	}
}

func TestDynamicsStagnation(t *testing.T) {
	d := NewDynamics(0)
	t0 := time.Unix(5000, 0)
	// 30 generations, improvement stops after gen 5: the final 24 flat
	// generations trip the stagnation detector (≥10 stalled, ≥50% of n).
	for g := 1; g <= 30; g++ {
		rev := float64(g)
		if g > 5 {
			rev = 5
		}
		d.Observe("f000001", core.GenStats{Gen: g, BestRevenue: rev})
	}
	alerts := d.Alerts(t0)
	if len(alerts) != 1 || alerts[0].Rule != "dynamics-stagnation" {
		t.Fatalf("alerts: %+v", alerts)
	}
	if alerts[0].Metric != "job:f000001" || alerts[0].State != StateFiring {
		t.Fatalf("alert shape: %+v", alerts[0])
	}
	// Since is stable across re-evaluations.
	again := d.Alerts(t0.Add(time.Minute))
	if !again[0].Since.Equal(t0) {
		t.Fatalf("since drifted: %v vs %v", again[0].Since, t0)
	}
	// Resumed improvement clears the alert.
	d.Observe("f000001", core.GenStats{Gen: 31, BestRevenue: 99})
	for g := 32; g <= 60; g++ {
		d.Observe("f000001", core.GenStats{Gen: g, BestRevenue: float64(60 + g)})
	}
	if a := d.Alerts(t0.Add(2 * time.Minute)); len(a) != 0 {
		t.Fatalf("stagnation did not clear: %+v", a)
	}
	d.Forget("f000001")
	if d.Jobs() != 0 {
		t.Fatal("forget left the job tracked")
	}
}

func TestDynamicsDisengagementAndDedupe(t *testing.T) {
	d := NewDynamics(0)
	collapsed := &core.SearchStats{GapP10: 0.5, GapP50: 0.5, GapP90: 0.5}
	for g := 1; g <= 5; g++ {
		d.Observe("f000002", core.GenStats{Gen: g, BestRevenue: float64(g), Search: collapsed})
		// A failover replay of the same generation must not extend the
		// streak artificially.
		d.Observe("f000002", core.GenStats{Gen: g, BestRevenue: float64(g), Search: collapsed})
	}
	alerts := d.Alerts(time.Unix(0, 0))
	if len(alerts) != 1 || alerts[0].Rule != "dynamics-disengagement" {
		t.Fatalf("alerts: %+v", alerts)
	}
}

func TestDynamicsWindowBound(t *testing.T) {
	d := NewDynamics(8)
	for g := 1; g <= 100; g++ {
		d.Observe("j", core.GenStats{Gen: g, BestRevenue: float64(g)})
	}
	if n := len(d.jobs["j"].run.Gens); n != 8 {
		t.Fatalf("window kept %d gens, want 8", n)
	}
	if d.jobs["j"].run.Gens[7].Gen != 100 {
		t.Fatal("window dropped the newest generations")
	}
}
