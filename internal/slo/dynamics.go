package slo

import (
	"fmt"
	"sort"
	"time"

	"carbon/internal/core"
	"carbon/internal/tracestat"
)

// Dynamics watches live per-generation streams and re-runs the
// tracestat anomaly detectors on them, turning post-hoc trace analysis
// (stagnation, bloat, predator–prey disengagement) into standing
// alerts while runs execute. The router feeds it every GenStats it
// sees — from job status polls and the event stream alike; duplicate
// generations (failover replays) are dropped by generation number, so
// a re-homed job never double-counts.
type Dynamics struct {
	capacity int
	jobs     map[string]*jobTrack
}

type jobTrack struct {
	run     tracestat.Run
	lastGen int
	// since remembers when each anomaly kind first appeared, so the
	// alert's Since survives re-evaluations.
	since map[string]time.Time
}

// NewDynamics bounds each job's retained window to capacity
// generations (≤0 means the 2048 default). The detectors see at most
// that much history; a stagnation plateau longer than the window still
// alerts — it is the recent half that matters.
func NewDynamics(capacity int) *Dynamics {
	if capacity <= 0 {
		capacity = 2048
	}
	return &Dynamics{capacity: capacity, jobs: make(map[string]*jobTrack)}
}

// Observe appends one streamed generation for a job. Out-of-order or
// duplicate generations are ignored.
func (d *Dynamics) Observe(job string, gs core.GenStats) {
	t, ok := d.jobs[job]
	if !ok {
		t = &jobTrack{run: tracestat.Run{Label: job}, since: make(map[string]time.Time)}
		d.jobs[job] = t
	}
	if gs.Gen <= t.lastGen {
		return
	}
	t.lastGen = gs.Gen
	t.run.Gens = append(t.run.Gens, gs)
	if len(t.run.Gens) > d.capacity {
		t.run.Gens = t.run.Gens[len(t.run.Gens)-d.capacity:]
	}
}

// Forget drops a job's window (terminal jobs stop alerting).
func (d *Dynamics) Forget(job string) { delete(d.jobs, job) }

// Jobs reports how many jobs are currently tracked.
func (d *Dynamics) Jobs() int { return len(d.jobs) }

// Alerts runs the detectors over every tracked job and returns one
// firing alert per (job, anomaly kind), sorted. Kinds that stopped
// being detected clear automatically.
func (d *Dynamics) Alerts(now time.Time) []Alert {
	var out []Alert
	for job, t := range d.jobs {
		anomalies := t.run.DetectAnomalies()
		active := make(map[string]bool, len(anomalies))
		for _, an := range anomalies {
			if active[an.Kind] {
				continue // one alert per kind, earliest detection wins
			}
			active[an.Kind] = true
			if _, ok := t.since[an.Kind]; !ok {
				t.since[an.Kind] = now
			}
			out = append(out, Alert{
				Rule:   "dynamics-" + an.Kind,
				Metric: "job:" + job,
				State:  StateFiring,
				Value:  float64(an.Gen),
				Since:  t.since[an.Kind],
				Detail: fmt.Sprintf("%s: %s", job, an.Detail),
			})
		}
		for kind := range t.since {
			if !active[kind] {
				delete(t.since, kind) // cleared
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Rule != out[b].Rule {
			return out[a].Rule < out[b].Rule
		}
		return out[a].Metric < out[b].Metric
	})
	return out
}
